#!/usr/bin/env bash
# serve-smoke.sh — end-to-end integration check for scalana-serve.
#
# Builds the real binaries, starts the server over a fresh store,
# uploads the committed cg profile-set fixtures, queries a detect
# report, and diffs it against the offline `scalana-detect -json`
# output over the same files. Exercises the full wire contract:
# upload -> content-addressed store -> byte-identical retrieval ->
# served report identical to the one-shot CLI. Then uploads a second
# run at np=8 and checks GET /v1/watch against scalana-detect -watch
# over the same store — the streaming-regression byte-parity contract.
#
# Usage: scripts/serve-smoke.sh [port]
set -euo pipefail

cd "$(dirname "$0")/.."
port="${1:-8135}"
addr="127.0.0.1:${port}"
work="$(mktemp -d)"
trap 'kill "${server_pid:-}" 2>/dev/null || true; rm -rf "$work"' EXIT

go build -o "$work/scalana-serve" ./cmd/scalana-serve
go build -o "$work/scalana-detect" ./cmd/scalana-detect
go build -o "$work/scalana-prof" ./cmd/scalana-prof

# Offline report via the legacy profiles-directory path.
mkdir -p "$work/profiles"
cp testdata/cg.4.json testdata/cg.8.json "$work/profiles/"
"$work/scalana-detect" -app cg -scales 4,8 -profiles "$work/profiles" \
  -json "$work/offline.json" >/dev/null

"$work/scalana-serve" -addr "$addr" -store "$work/store" -quiet &
server_pid=$!

for _ in $(seq 100); do
  if curl -fs "http://$addr/healthz" >/dev/null 2>&1; then break; fi
  sleep 0.1
done
curl -fs "http://$addr/healthz" >/dev/null || { echo "server did not come up" >&2; exit 1; }

# Upload both fixtures; capture the second upload's content hash.
curl -fs --data-binary @testdata/cg.4.json "http://$addr/v1/profiles" >/dev/null
hash8=$(curl -fs --data-binary @testdata/cg.8.json "http://$addr/v1/profiles" \
  | sed -n 's/.*"hash": "\([0-9a-f]*\)".*/\1/p')

# Stored bytes must round-trip exactly.
curl -fs "http://$addr/v1/profiles/cg/8/$hash8" > "$work/roundtrip.json"
cmp testdata/cg.8.json "$work/roundtrip.json"

# The served detect report must match the offline CLI byte-for-byte.
curl -fs -X POST -d '{"app":"cg","scales":[4,8]}' "http://$addr/v1/detect" > "$work/served.json"
diff "$work/offline.json" "$work/served.json"

# The store-backed CLI path reads the same store the server wrote.
"$work/scalana-detect" -app cg -scales 4,8 -store "$work/store" \
  -json "$work/cli-store.json" >/dev/null
diff "$work/offline.json" "$work/cli-store.json"

# Sweep comparison and stats respond.
curl -fs "http://$addr/v1/sweep?app=cg&scales=4,8" >/dev/null
curl -fs "http://$addr/v1/stats" >/dev/null

# --- watch mode: upload a second np=8 run, then score the newest run
# against the rolling baseline, served and offline, byte for byte.
"$work/scalana-prof" -app cg -np 8 -hz 500 -o "$work/cg.8b.json" >/dev/null
curl -fs --data-binary @"$work/cg.8b.json" "http://$addr/v1/profiles" >/dev/null
curl -fs -X POST -d '{"app":"cg"}' "http://$addr/v1/baseline" >/dev/null
curl -fs "http://$addr/v1/watch?app=cg&np=8&min-runs=1" > "$work/watch-served.json"

# scalana-detect -watch exits 2 when regressions are flagged — either
# outcome is fine here; only a real failure (exit 1) may kill the smoke.
watch_rc=0
"$work/scalana-detect" -app cg -store "$work/store" -watch -np 8 -min-runs 1 \
  -json "$work/watch-cli.json" >/dev/null || watch_rc=$?
if [ "$watch_rc" -ne 0 ] && [ "$watch_rc" -ne 2 ]; then
  echo "scalana-detect -watch failed with exit $watch_rc" >&2
  exit 1
fi
diff "$work/watch-served.json" "$work/watch-cli.json"

# Identical repeated requests must serve identical bytes.
curl -fs "http://$addr/v1/watch?app=cg&np=8&min-runs=1" > "$work/watch-again.json"
cmp "$work/watch-served.json" "$work/watch-again.json"

kill "$server_pid"
wait "$server_pid" 2>/dev/null || true
echo "serve-smoke: OK (served detect and watch reports byte-identical to offline scalana-detect)"
