#!/usr/bin/env bash
# bench-snapshot.sh — run the sweep and profiler benchmarks with -benchmem
# and write a machine-readable JSON snapshot.
#
# Usage:
#   scripts/bench-snapshot.sh OUT.json [vm|interp|sched]
#
# The second argument selects the execution engine for program runs: the
# bytecode VM (default) or the tree-walking interpreter (via the
# SCALANA_BENCH_EXEC environment variable the benchmarks honor). The
# sched mode is the VM engine under the cooperative run-to-block
# scheduler — the label distinguishes post-scheduler snapshots from the
# pre-scheduler BENCH_vm.json numbers. The committed snapshots pair the
# modes:
#
#   scripts/bench-snapshot.sh BENCH_baseline.json interp
#   scripts/bench-snapshot.sh BENCH_vm.json vm
#   scripts/bench-snapshot.sh BENCH_sched.json sched
#
# TestBenchBaselinesParse keeps the files loadable, holds the VM snapshot
# to its speedup/allocation gates against the baseline, and holds the
# scheduler snapshot to >= 2x over BENCH_vm.json on BenchmarkSweepNP64.
# BENCHTIME overrides the go test -benchtime value (default 1s).
set -euo pipefail

out=${1:?usage: bench-snapshot.sh OUT.json [vm|interp|sched]}
mode=${2:-vm}
case "$mode" in
vm | sched) exec_env="" ;;
interp) exec_env="interp" ;;
*)
	echo "bench-snapshot.sh: unknown mode \"$mode\" (want vm, interp, or sched)" >&2
	exit 2
	;;
esac

cd "$(dirname "$0")/.."
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

SCALANA_BENCH_EXEC="$exec_env" go test -run '^$' -bench Sweep -benchmem \
	-benchtime "${BENCHTIME:-1s}" . | tee "$tmp"
SCALANA_BENCH_EXEC="$exec_env" go test -run '^$' -bench . -benchmem \
	-benchtime "${BENCHTIME:-1s}" ./internal/prof | tee -a "$tmp"

# An empty snapshot is worse than no snapshot: TestBenchBaselinesParse
# would load it and gate against nothing.
if ! grep -q '^Benchmark' "$tmp"; then
	echo "bench-snapshot.sh: no benchmark output captured" >&2
	exit 1
fi

awk -v mode="$mode" -v goversion="$(go env GOVERSION)" \
	-v created="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
	-v gomaxprocs="${GOMAXPROCS:-$(nproc)}" \
	-v cpus="$(nproc)" \
	-v gitsha="$(git rev-parse HEAD 2>/dev/null || echo unknown)" '
BEGIN {
	printf "{\n \"created\": \"%s\",\n \"go\": \"%s\",\n \"exec\": \"%s\",\n \"gomaxprocs\": %s,\n \"cpus\": %s,\n \"git_sha\": \"%s\",\n \"benchmarks\": [", created, goversion, mode, gomaxprocs, cpus, gitsha
}
/^Benchmark/ {
	name = $1; iters = $2; ns = ""; bytes = ""; allocs = ""
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "B/op") bytes = $i
		if ($(i + 1) == "allocs/op") allocs = $i
	}
	if (ns == "") next
	if (n++) printf ","
	printf "\n  {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", name, iters, ns
	if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
	if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
	printf "}"
}
END { printf "\n ]\n}\n" }
' "$tmp" >"$out"

echo "snapshot written to $out"
