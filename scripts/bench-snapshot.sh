#!/usr/bin/env bash
# bench-snapshot.sh — run the sweep and profiler benchmarks with -benchmem
# and write a machine-readable JSON snapshot.
#
# Usage:
#   scripts/bench-snapshot.sh OUT.json [vm|interp]
#
# The second argument selects the execution engine for program runs: the
# bytecode VM (default) or the tree-walking interpreter (via the
# SCALANA_BENCH_EXEC environment variable the benchmarks honor). The
# committed snapshots pair the two modes:
#
#   scripts/bench-snapshot.sh BENCH_baseline.json interp
#   scripts/bench-snapshot.sh BENCH_vm.json vm
#
# TestBenchBaselinesParse keeps both files loadable and holds the VM
# snapshot to its speedup/allocation gates against the baseline.
# BENCHTIME overrides the go test -benchtime value (default 1s).
set -euo pipefail

out=${1:?usage: bench-snapshot.sh OUT.json [vm|interp]}
mode=${2:-vm}
case "$mode" in
vm) exec_env="" ;;
interp) exec_env="interp" ;;
*)
	echo "bench-snapshot.sh: unknown mode \"$mode\" (want vm or interp)" >&2
	exit 2
	;;
esac

cd "$(dirname "$0")/.."
tmp=$(mktemp)
trap 'rm -f "$tmp"' EXIT

SCALANA_BENCH_EXEC="$exec_env" go test -run '^$' -bench Sweep -benchmem \
	-benchtime "${BENCHTIME:-1s}" . | tee "$tmp"
SCALANA_BENCH_EXEC="$exec_env" go test -run '^$' -bench . -benchmem \
	-benchtime "${BENCHTIME:-1s}" ./internal/prof | tee -a "$tmp"

awk -v mode="$mode" -v goversion="$(go env GOVERSION)" \
	-v created="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN {
	printf "{\n \"created\": \"%s\",\n \"go\": \"%s\",\n \"exec\": \"%s\",\n \"benchmarks\": [", created, goversion, mode
}
/^Benchmark/ {
	name = $1; iters = $2; ns = ""; bytes = ""; allocs = ""
	for (i = 3; i < NF; i++) {
		if ($(i + 1) == "ns/op") ns = $i
		if ($(i + 1) == "B/op") bytes = $i
		if ($(i + 1) == "allocs/op") allocs = $i
	}
	if (ns == "") next
	if (n++) printf ","
	printf "\n  {\"name\": \"%s\", \"iters\": %s, \"ns_per_op\": %s", name, iters, ns
	if (bytes != "") printf ", \"bytes_per_op\": %s", bytes
	if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
	printf "}"
}
END { printf "\n ]\n}\n" }
' "$tmp" >"$out"

echo "snapshot written to $out"
