package scalana_test

import (
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"scalana/internal/detect"
	"scalana/internal/ppg"
	"scalana/internal/prof"

	scalana "scalana"
)

// The fixtures under testdata/ were written by the pre-VID build
// (string-keyed profiles, ISSUE 2): cg.4.json and cg.8.json are
// scalana-prof outputs for NPB-CG at 1 kHz with seed 0, and
// cg.profiles.report.txt is the report that build produced from them.
// The tests below prove the interning refactor did not move the wire
// format: old profile directories load, produce the identical report,
// and a profile saved by this build round-trips byte-for-byte.

// loadFixtureRuns loads the legacy profile sets against a freshly
// compiled graph, exactly like scalana-detect -profiles does.
func loadFixtureRuns(t *testing.T) []detect.ScaleRun {
	t.Helper()
	app := scalana.GetApp("cg")
	_, graph, err := scalana.Compile(app)
	if err != nil {
		t.Fatal(err)
	}
	var runs []detect.ScaleRun
	for _, np := range []int{4, 8} {
		ps, err := prof.LoadProfileSet(filepath.Join("testdata", fixtureName("cg", np)), graph)
		if err != nil {
			t.Fatal(err)
		}
		pg, err := ppg.Build(graph, ps.Profiles)
		if err != nil {
			t.Fatal(err)
		}
		runs = append(runs, detect.ScaleRun{NP: np, PPG: pg})
	}
	return runs
}

func fixtureName(app string, np int) string {
	return fmt.Sprintf("%s.%d.json", app, np)
}

// TestWireFormatLegacyProfilesProduceIdenticalReport loads profile sets
// written by the pre-VID wire code through the refactored loader and
// asserts the rendered detection report matches the pre-refactor golden
// byte for byte.
func TestWireFormatLegacyProfilesProduceIdenticalReport(t *testing.T) {
	runs := loadFixtureRuns(t)
	rep, err := scalana.DetectScalingLoss(runs, detect.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	app := scalana.GetApp("cg")
	prog, err := app.Parse()
	if err != nil {
		t.Fatal(err)
	}
	want, err := os.ReadFile(filepath.Join("testdata", "cg.profiles.report.txt"))
	if err != nil {
		t.Fatal(err)
	}
	if got := rep.Render(prog); got != string(want) {
		t.Errorf("report from legacy profiles diverged from pre-refactor golden:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestWireFormatSaveReloadReportIdentical runs the profiler live, saves
// the profile set, reloads it, and asserts the detect.Report built from
// the reloaded profiles is identical to the one built from the in-memory
// profiles — the loader loses nothing the detector needs.
func TestWireFormatSaveReloadReportIdentical(t *testing.T) {
	app := scalana.GetApp("cg")
	_, graph, err := scalana.Compile(app)
	if err != nil {
		t.Fatal(err)
	}
	cfg := prof.DefaultConfig()
	cfg.SampleHz = 1000
	dir := t.TempDir()
	var live, reloaded []detect.ScaleRun
	for _, np := range []int{4, 8} {
		out, err := scalana.Run(scalana.RunConfig{App: app, NP: np, Tool: scalana.ToolScalAna, Prof: cfg})
		if err != nil {
			t.Fatal(err)
		}
		live = append(live, detect.ScaleRun{NP: np, PPG: out.PPG()})
		ps := &prof.ProfileSet{App: app.Name, NP: np, Elapsed: out.Result.Elapsed, Profiles: out.Profiles()}
		path := filepath.Join(dir, fixtureName(app.Name, np))
		if err := ps.Save(path); err != nil {
			t.Fatal(err)
		}
		loaded, err := prof.LoadProfileSet(path, graph)
		if err != nil {
			t.Fatal(err)
		}
		pg, err := ppg.Build(graph, loaded.Profiles)
		if err != nil {
			t.Fatal(err)
		}
		reloaded = append(reloaded, detect.ScaleRun{NP: np, PPG: pg})
	}
	repLive, err := scalana.DetectScalingLoss(live, detect.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	repReloaded, err := scalana.DetectScalingLoss(reloaded, detect.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(repLive, repReloaded) {
		t.Errorf("report changed across save/reload:\nlive:     %+v\nreloaded: %+v", repLive, repReloaded)
	}
}

// TestWireFormatResaveIsByteIdentical proves the refactored marshaller
// emits exactly the bytes the pre-VID build wrote: loading a legacy
// fixture and saving it again reproduces the file.
func TestWireFormatResaveIsByteIdentical(t *testing.T) {
	app := scalana.GetApp("cg")
	_, graph, err := scalana.Compile(app)
	if err != nil {
		t.Fatal(err)
	}
	for _, np := range []int{4, 8} {
		name := fixtureName("cg", np)
		ps, err := prof.LoadProfileSet(filepath.Join("testdata", name), graph)
		if err != nil {
			t.Fatal(err)
		}
		out := filepath.Join(t.TempDir(), name)
		if err := ps.Save(out); err != nil {
			t.Fatal(err)
		}
		got, err := os.ReadFile(out)
		if err != nil {
			t.Fatal(err)
		}
		want, err := os.ReadFile(filepath.Join("testdata", name))
		if err != nil {
			t.Fatal(err)
		}
		if string(got) != string(want) {
			t.Errorf("%s: resaved profile set is not byte-identical to the legacy file", name)
		}
	}
}
