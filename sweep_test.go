package scalana

import (
	"strings"
	"testing"

	"scalana/internal/detect"
	"scalana/internal/psg"
)

// zeusmpSweep runs the zeusmp {8,16,32} sweep on a fresh engine with the
// given parallelism and returns the detection report plus the engine.
func zeusmpSweep(t *testing.T, parallelism int, seed int64) (*detect.Report, *Engine) {
	t.Helper()
	e := NewEngine()
	runs, err := e.Sweep(GetApp("zeusmp"), []int{8, 16, 32}, SweepConfig{
		Parallelism: parallelism,
		Prof:        sweepCfg(),
		Seed:        seed,
	})
	if err != nil {
		t.Fatalf("sweep (parallelism=%d): %v", parallelism, err)
	}
	rep, err := DetectScalingLoss(runs, detect.Config{})
	if err != nil {
		t.Fatalf("detect: %v", err)
	}
	return rep, e
}

// TestSweepParallelMatchesSerial is the sweep engine's determinism
// contract: a parallel sweep and a serial sweep with equal seeds must
// produce byte-identical detection reports.
func TestSweepParallelMatchesSerial(t *testing.T) {
	serial, _ := zeusmpSweep(t, 1, 42)
	parallel, _ := zeusmpSweep(t, 4, 42)

	prog, err := GetApp("zeusmp").Parse()
	if err != nil {
		t.Fatal(err)
	}
	a, b := serial.Render(prog), parallel.Render(prog)
	if a != b {
		t.Errorf("parallel report differs from serial report:\n--- serial ---\n%s\n--- parallel ---\n%s", a, b)
	}
	if len(serial.NonScalable) == 0 || len(serial.Paths) == 0 {
		t.Errorf("degenerate report: %d non-scalable, %d paths", len(serial.NonScalable), len(serial.Paths))
	}
}

// TestSweepCompilesOncePerApp asserts the compile cache works: a
// three-scale sweep must parse and contract the app exactly once.
func TestSweepCompilesOncePerApp(t *testing.T) {
	_, e := zeusmpSweep(t, 4, 0)
	stats := e.CacheStats()
	if stats.Misses != 1 {
		t.Errorf("sweep compiled %d times, want 1", stats.Misses)
	}
	if stats.Hits != 2 {
		t.Errorf("cache hits = %d, want 2", stats.Hits)
	}
	if stats.Entries != 1 {
		t.Errorf("cache entries = %d, want 1", stats.Entries)
	}

	// A second sweep on the same engine reuses the entry entirely.
	if _, err := e.Sweep(GetApp("zeusmp"), []int{8, 16}, SweepConfig{Prof: sweepCfg()}); err != nil {
		t.Fatal(err)
	}
	stats = e.CacheStats()
	if stats.Misses != 1 || stats.Hits != 4 {
		t.Errorf("after second sweep: misses=%d hits=%d, want 1/4", stats.Misses, stats.Hits)
	}

	// Different PSG options are a different compilation.
	if _, _, err := e.Compile(GetApp("zeusmp"), psg.Options{MaxLoopDepth: 10, Contract: false}); err != nil {
		t.Fatal(err)
	}
	if stats := e.CacheStats(); stats.Misses != 2 || stats.Entries != 2 {
		t.Errorf("distinct options should miss: misses=%d entries=%d", stats.Misses, stats.Entries)
	}
}

// TestRunCompiledMatchesRun checks the compile/execute split: running a
// pre-compiled program is identical to the one-shot Run path.
func TestRunCompiledMatchesRun(t *testing.T) {
	app := GetApp("mg")
	cfg := RunConfig{App: app, NP: 8, Tool: ToolScalAna, Seed: 7}

	oneShot, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	prog, graph, err := Compile(app)
	if err != nil {
		t.Fatal(err)
	}
	split, err := RunCompiled(prog, graph, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if oneShot.Result.Elapsed != split.Result.Elapsed {
		t.Errorf("elapsed differs: %g vs %g", oneShot.Result.Elapsed, split.Result.Elapsed)
	}
	if oneShot.StorageBytes() != split.StorageBytes() {
		t.Errorf("storage differs: %d vs %d", oneShot.StorageBytes(), split.StorageBytes())
	}
	if len(oneShot.PPG().Perf) != len(split.PPG().Perf) {
		t.Errorf("PPG vertex counts differ: %d vs %d", len(oneShot.PPG().Perf), len(split.PPG().Perf))
	}
}

// TestEngineRunSharesGraphAcrossRuns verifies that engine runs at
// different scales reuse one compiled graph and still match the
// fresh-compile path exactly.
func TestEngineRunSharesGraphAcrossRuns(t *testing.T) {
	e := NewEngine()
	a, err := e.Run(RunConfig{App: GetApp("cg"), NP: 8, Tool: ToolScalAna})
	if err != nil {
		t.Fatal(err)
	}
	b, err := e.Run(RunConfig{App: GetApp("cg"), NP: 16, Tool: ToolScalAna})
	if err != nil {
		t.Fatal(err)
	}
	if a.Graph != b.Graph {
		t.Error("engine runs of one app should share the compiled graph")
	}
	fresh, err := Run(RunConfig{App: GetApp("cg"), NP: 16, Tool: ToolScalAna})
	if err != nil {
		t.Fatal(err)
	}
	if fresh.Result.Elapsed != b.Result.Elapsed || fresh.StorageBytes() != b.StorageBytes() {
		t.Errorf("shared-graph run differs from fresh-compile run: elapsed %g vs %g, storage %d vs %d",
			b.Result.Elapsed, fresh.Result.Elapsed, b.StorageBytes(), fresh.StorageBytes())
	}
}

// TestSweepSharedGraphIndirectCalls stresses the historically hazardous
// part of graph sharing: concurrent worlds executing indirect calls
// against the same cached PSG. The kernel bodies deliberately contain
// contractible structure (consecutive statements that merge into one
// Comp vertex, an MPI-free branch) — before targets were
// pre-materialized at compile time, runtime materialization of such a
// subtree rewrote every instance's node attribution while other scales
// were reading it. Both targets must be attributed at every scale and
// the sweep must be deterministic.
func TestSweepSharedGraphIndirectCalls(t *testing.T) {
	app := &App{
		Name: "indirect-sweep", File: "ind.mp", MinNP: 1,
		Source: `
func lightKernel(w) {
	var a = w / 2;
	var b = a + 1;
	if (b > 0) {
		b = b - 1;
	}
	for (var i = 0; i < 2; i = i + 1) { compute(b, w / 20, w / 40, 4096); }
}
func heavyKernel(w) {
	var c = w * 1;
	var d = c + 0;
	for (var i = 0; i < 8; i = i + 1) { compute(d, w / 10, w / 20, 65536); }
}
func main() {
	var k = &lightKernel;
	if (mpi_rank() % 2 == 1) {
		k = &heavyKernel;
	}
	k(1e7);
	mpi_barrier();
}`,
	}
	sweepOnce := func(parallelism int) []detect.ScaleRun {
		runs, err := NewEngine().Sweep(app, []int{2, 4, 8}, SweepConfig{
			Parallelism: parallelism,
			Prof:        sweepCfg(),
		})
		if err != nil {
			t.Fatalf("parallelism=%d: %v", parallelism, err)
		}
		return runs
	}
	serial, parallel := sweepOnce(1), sweepOnce(3)
	for i := range serial {
		if len(serial[i].PPG.PresentVIDs()) != len(parallel[i].PPG.PresentVIDs()) {
			t.Errorf("np=%d: PPG vertex counts differ: %d vs %d",
				serial[i].NP, len(serial[i].PPG.PresentVIDs()), len(parallel[i].PPG.PresentVIDs()))
		}
	}
	for _, run := range parallel {
		light, heavy := false, false
		keys := run.PPG.PSG.Keys()
		for _, vid := range run.PPG.PresentVIDs() {
			if strings.Contains(keys[vid], "@lightKernel") {
				light = true
			}
			if strings.Contains(keys[vid], "@heavyKernel") {
				heavy = true
			}
		}
		if run.NP > 1 && (!light || !heavy) {
			t.Errorf("np=%d: indirect targets missing from shared graph (light=%v heavy=%v)", run.NP, light, heavy)
		}
	}
}

// TestSweepDeepIndirectChain covers nested indirect calls — an indirect
// target that itself makes an indirect call, four levels deep, with
// contractible structure in the leaf. Pre-materialization must cover
// the whole chain (a depth cutoff here once re-opened a data race on
// the shared graph), so a parallel shared-graph sweep must attribute
// the leaf at every scale.
func TestSweepDeepIndirectChain(t *testing.T) {
	app := &App{
		Name: "indirect-deep", File: "deep.mp", MinNP: 1,
		Source: `
func leaf(w) {
	var a = w + 1;
	var b = a * 2;
	compute(b, w / 10, w / 20, 4096);
}
func l3(w) {
	var f = &leaf;
	f(w);
}
func l2(w) {
	var f = &l3;
	f(w);
}
func l1(w) {
	var f = &l2;
	f(w);
}
func main() {
	var k = &l1;
	k(1e6);
	mpi_barrier();
}`,
	}
	runs, err := NewEngine().Sweep(app, []int{2, 4, 8}, SweepConfig{
		Parallelism: 3,
		Prof:        sweepCfg(),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, run := range runs {
		found := false
		keys := run.PPG.PSG.Keys()
		for _, vid := range run.PPG.PresentVIDs() {
			if strings.Contains(keys[vid], "@leaf") {
				found = true
			}
		}
		if !found {
			t.Errorf("np=%d: leaf of the 4-deep indirect chain not attributed", run.NP)
		}
	}
}

func TestSweepEmptyScales(t *testing.T) {
	runs, err := NewEngine().Sweep(GetApp("cg"), nil, SweepConfig{})
	if err != nil || runs != nil {
		t.Errorf("empty sweep = (%v, %v), want (nil, nil)", runs, err)
	}
}
