package scalana

import (
	"fmt"

	"scalana/internal/hpctk"
	"scalana/internal/minilang"
	"scalana/internal/mpisim"
	"scalana/internal/ppg"
	"scalana/internal/prof"
	"scalana/internal/psg"
	"scalana/internal/trace"
)

// The bundled measurement tools register like any external one; nothing
// in the dispatch path knows their names.
func init() {
	RegisterTool(scalAnaTool{})
	RegisterTool(tracerTool{})
	RegisterTool(callPathTool{})
}

// ---- "scalana": the graph-based profiler (paper's tool) ----

type scalAnaTool struct{}

func (scalAnaTool) Name() string { return "scalana" }
func (scalAnaTool) Description() string {
	return "graph-based profiler: sampled per-vertex performance + compressed communication dependence (the paper's tool)"
}

func (scalAnaTool) NewRun(tc ToolContext) (ToolRun, error) {
	pc := tc.Config.Prof
	if pc.SampleHz == 0 {
		pc = prof.DefaultConfig()
		pc.Seed = tc.Config.Seed
	}
	np := tc.Config.NP
	return &scalAnaRun{
		cfg:       pc,
		graph:     tc.Graph,
		np:        np,
		profilers: make([]*prof.Profiler, np),
		profiles:  make([]*prof.RankProfile, np),
	}, nil
}

type scalAnaRun struct {
	cfg       prof.Config
	graph     *psg.Graph
	np        int
	profilers []*prof.Profiler
	profiles  []*prof.RankProfile
}

func (r *scalAnaRun) HooksForRank(rank int) []mpisim.Hook {
	pr := prof.New(r.cfg, r.graph, rank, r.np)
	r.profilers[rank] = pr
	return []mpisim.Hook{pr}
}

func (r *scalAnaRun) FinalizeRank(rank int) int64 {
	r.profiles[rank] = r.profilers[rank].Profile()
	return r.profiles[rank].StorageBytes()
}

func (r *scalAnaRun) Finish() (any, error) {
	pg, err := ppg.Build(r.graph, r.profiles)
	if err != nil {
		return nil, fmt.Errorf("assemble PPG: %w", err)
	}
	return &ScalAnaData{Profiles: r.profiles, PPG: pg}, nil
}

// ObserveIndirect forwards runtime indirect-call resolutions to the
// resolving rank's profiler (paper §III-B3).
func (r *scalAnaRun) ObserveIndirect(rank int, inst *psg.Instance, site minilang.NodeID, target string) {
	r.profilers[rank].ObserveIndirect(rank, inst, site, target)
}

var _ IndirectObserver = (*scalAnaRun)(nil)

// ---- "tracer": the Scalasca-like tracing baseline ----

type tracerTool struct{}

func (tracerTool) Name() string { return "tracer" }
func (tracerTool) Description() string {
	return "Scalasca-like tracer: every MPI event and region transition logged as a timestamped record"
}

func (tracerTool) NewRun(tc ToolContext) (ToolRun, error) {
	c := tc.Config.Trace
	if c.EventCost == 0 {
		c = trace.DefaultConfig()
	}
	np := tc.Config.NP
	return &tracerRun{
		cfg:     c,
		tracers: make([]*trace.Tracer, np),
		traces:  make([]*trace.RankTrace, np),
	}, nil
}

type tracerRun struct {
	cfg     trace.Config
	tracers []*trace.Tracer
	traces  []*trace.RankTrace
}

func (r *tracerRun) HooksForRank(rank int) []mpisim.Hook {
	tr := trace.New(r.cfg, rank)
	r.tracers[rank] = tr
	return []mpisim.Hook{tr}
}

func (r *tracerRun) FinalizeRank(rank int) int64 {
	r.traces[rank] = r.tracers[rank].Trace()
	return r.traces[rank].StorageBytes()
}

func (r *tracerRun) Finish() (any, error) { return r.traces, nil }

// ---- "hpctk": the HPCToolkit-like call-path profiling baseline ----

type callPathTool struct{}

func (callPathTool) Name() string { return "hpctk" }
func (callPathTool) Description() string {
	return "HPCToolkit-like call-path profiler: pure calling-context sampling, no inter-process dependence"
}

func (callPathTool) NewRun(tc ToolContext) (ToolRun, error) {
	c := tc.Config.CallPath
	if c.SampleHz == 0 {
		c = hpctk.DefaultConfig()
	}
	np := tc.Config.NP
	return &callPathRun{
		cfg:       c,
		profilers: make([]*hpctk.Profiler, np),
		profiles:  make([]*hpctk.RankProfile, np),
	}, nil
}

type callPathRun struct {
	cfg       hpctk.Config
	profilers []*hpctk.Profiler
	profiles  []*hpctk.RankProfile
}

func (r *callPathRun) HooksForRank(rank int) []mpisim.Hook {
	pr := hpctk.New(r.cfg, rank)
	r.profilers[rank] = pr
	return []mpisim.Hook{pr}
}

func (r *callPathRun) FinalizeRank(rank int) int64 {
	r.profiles[rank] = r.profilers[rank].Profile()
	return r.profiles[rank].StorageBytes()
}

func (r *callPathRun) Finish() (any, error) { return r.profiles, nil }
