package scalana_test

import (
	"testing"
	"time"

	"scalana/internal/prof"

	scalana "scalana"
)

// TestSweepNP1024WithinBudget is the CI smoke for the headline scheduler
// claim: a full profiled np=1024 zeusmp sweep completes inside a CI-sized
// wall-clock budget. Under the old free-running goroutine core this scale
// thrashed the 1-CPU runner; run-to-block scheduling makes it an ordinary
// sub-second simulation (the budget leaves ~100x headroom for a cold,
// loaded runner).
func TestSweepNP1024WithinBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("np=1024 smoke skipped in -short mode")
	}
	const budget = 60 * time.Second
	cfg := prof.DefaultConfig()
	cfg.SampleHz = 2000
	e := scalana.NewEngine()
	start := time.Now()
	runs, err := e.Sweep(scalana.GetApp("zeusmp"), []int{1024}, scalana.SweepConfig{
		Parallelism: 1,
		Prof:        cfg,
	})
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 1 || runs[0].NP != 1024 {
		t.Fatalf("sweep returned %d runs, want one np=1024 run", len(runs))
	}
	if elapsed > budget {
		t.Errorf("np=1024 sweep took %v, want under %v", elapsed, budget)
	}
	t.Logf("np=1024 sweep completed in %v", elapsed)
}
