package scalana_test

import (
	"fmt"
	"os"
	"testing"

	"scalana/internal/detect"
	"scalana/internal/prof"

	scalana "scalana"
)

// BenchmarkSweepNP64 is the benchmark the committed snapshots
// (BENCH_baseline.json / BENCH_vm.json) are gated on: one zeusmp np=64
// profiled run through the full sweep path. SCALANA_BENCH_EXEC=interp
// pins execution to the tree-walking interpreter, so the same benchmark
// name measures both engines and scripts/bench-snapshot.sh can snapshot
// each mode. Compilation — PSG and bytecode alike — is warmed before the
// timed loop: the numbers measure execution, not compile.
func BenchmarkSweepNP64(b *testing.B) {
	app := scalana.GetApp("zeusmp")
	cfg := prof.DefaultConfig()
	cfg.SampleHz = 2000
	scfg := scalana.SweepConfig{
		Parallelism: 1,
		Prof:        cfg,
		Interp:      os.Getenv("SCALANA_BENCH_EXEC") == "interp",
	}
	e := scalana.NewEngine()
	if _, err := e.Sweep(app, []int{64}, scfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Sweep(app, []int{64}, scfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepParallelism measures the sweep engine on the zeusmp
// {8,16,32,64} sweep at increasing worker counts. The serial
// (parallel1) sub-benchmark is the baseline the speedup claim is made
// against; every variant must produce an identical detection report.
func BenchmarkSweepParallelism(b *testing.B) {
	app := scalana.GetApp("zeusmp")
	nps := []int{8, 16, 32, 64}
	cfg := prof.DefaultConfig()
	cfg.SampleHz = 2000
	// One engine for every variant and iteration: the app compiles once
	// (PSG and bytecode land in shared caches), so the timed loop
	// measures sweep execution rather than repeated compilation.
	e := scalana.NewEngine()
	if _, err := e.Sweep(app, nps, scalana.SweepConfig{Parallelism: 1, Prof: cfg}); err != nil {
		b.Fatal(err)
	}

	var baseline string
	for _, parallelism := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallel%d", parallelism), func(b *testing.B) {
			var rep *detect.Report
			for i := 0; i < b.N; i++ {
				runs, err := e.Sweep(app, nps, scalana.SweepConfig{
					Parallelism: parallelism,
					Prof:        cfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				rep, err = scalana.DetectScalingLoss(runs, detect.Config{})
				if err != nil {
					b.Fatal(err)
				}
			}
			prog, err := app.Parse()
			if err != nil {
				b.Fatal(err)
			}
			rendered := rep.Render(prog)
			if baseline == "" {
				baseline = rendered
			} else if rendered != baseline {
				b.Fatal("parallel sweep report differs from the serial baseline")
			}
			b.ReportMetric(float64(len(rep.NonScalable)), "nonscalable_found")
		})
	}
}

// BenchmarkSweepCompileCache isolates the compile-cache win: the same
// four-scale sweep with the cache (one compile) vs a fresh compile per
// scale (the pre-engine behavior).
func BenchmarkSweepCompileCache(b *testing.B) {
	app := scalana.GetApp("zeusmp")
	nps := []int{8, 16, 32, 64}
	cfg := prof.DefaultConfig()
	cfg.SampleHz = 2000

	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := scalana.NewEngine()
			if _, err := e.Sweep(app, nps, scalana.SweepConfig{Parallelism: 1, Prof: cfg}); err != nil {
				b.Fatal(err)
			}
			if stats := e.CacheStats(); stats.Misses != 1 {
				b.Fatalf("compiled %d times, want 1", stats.Misses)
			}
		}
	})
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, np := range nps {
				if _, err := scalana.Run(scalana.RunConfig{App: app, NP: np, Tool: scalana.ToolScalAna, Prof: cfg}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
