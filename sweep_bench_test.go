package scalana_test

import (
	"fmt"
	"os"
	"testing"

	"scalana/internal/detect"
	"scalana/internal/prof"

	scalana "scalana"
)

// benchmarkSweepNP runs one zeusmp profiled sweep at the given scale
// through the full sweep path. SCALANA_BENCH_EXEC=interp pins execution
// to the tree-walking interpreter, so the same benchmark names measure
// both engines and scripts/bench-snapshot.sh can snapshot each mode.
// Compilation — PSG and bytecode alike — is warmed before the timed
// loop: the numbers measure execution, not compile.
func benchmarkSweepNP(b *testing.B, np int) {
	app := scalana.GetApp("zeusmp")
	cfg := prof.DefaultConfig()
	cfg.SampleHz = 2000
	scfg := scalana.SweepConfig{
		Parallelism: 1,
		Prof:        cfg,
		Interp:      os.Getenv("SCALANA_BENCH_EXEC") == "interp",
	}
	e := scalana.NewEngine()
	if _, err := e.Sweep(app, []int{np}, scfg); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := e.Sweep(app, []int{np}, scfg); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSweepNP64 is the benchmark the committed snapshots
// (BENCH_baseline.json / BENCH_vm.json / BENCH_sched.json) are gated on.
func BenchmarkSweepNP64(b *testing.B) { benchmarkSweepNP(b, 64) }

// BenchmarkSweepNP256 and BenchmarkSweepNP1024 track scheduler scaling:
// the cooperative run-to-block scheduler keeps one runnable rank at a
// time, so cost grows with total events, not with goroutine contention.
func BenchmarkSweepNP256(b *testing.B) { benchmarkSweepNP(b, 256) }

// BenchmarkSweepNP1024 is the paper-scale point (ScalAna's evaluation
// tops out at 4,096 processes); np=1024 must fit inside CI budgets.
func BenchmarkSweepNP1024(b *testing.B) { benchmarkSweepNP(b, 1024) }

// BenchmarkSweepParallelism measures the sweep engine on the zeusmp
// {8,16,32,64} sweep at increasing worker counts. The serial
// (parallel1) sub-benchmark is the baseline the speedup claim is made
// against; every variant must produce an identical detection report.
func BenchmarkSweepParallelism(b *testing.B) {
	app := scalana.GetApp("zeusmp")
	nps := []int{8, 16, 32, 64}
	cfg := prof.DefaultConfig()
	cfg.SampleHz = 2000
	// One engine for every variant and iteration: the app compiles once
	// (PSG and bytecode land in shared caches), so the timed loop
	// measures sweep execution rather than repeated compilation.
	e := scalana.NewEngine()
	if _, err := e.Sweep(app, nps, scalana.SweepConfig{Parallelism: 1, Prof: cfg}); err != nil {
		b.Fatal(err)
	}

	var baseline string
	for _, parallelism := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("parallel%d", parallelism), func(b *testing.B) {
			var rep *detect.Report
			for i := 0; i < b.N; i++ {
				runs, err := e.Sweep(app, nps, scalana.SweepConfig{
					Parallelism: parallelism,
					Prof:        cfg,
				})
				if err != nil {
					b.Fatal(err)
				}
				rep, err = scalana.DetectScalingLoss(runs, detect.Config{})
				if err != nil {
					b.Fatal(err)
				}
			}
			prog, err := app.Parse()
			if err != nil {
				b.Fatal(err)
			}
			rendered := rep.Render(prog)
			if baseline == "" {
				baseline = rendered
			} else if rendered != baseline {
				b.Fatal("parallel sweep report differs from the serial baseline")
			}
			b.ReportMetric(float64(len(rep.NonScalable)), "nonscalable_found")
		})
	}
}

// BenchmarkSweepCompileCache isolates the compile-cache win: the same
// four-scale sweep with the cache (one compile) vs a fresh compile per
// scale (the pre-engine behavior).
func BenchmarkSweepCompileCache(b *testing.B) {
	app := scalana.GetApp("zeusmp")
	nps := []int{8, 16, 32, 64}
	cfg := prof.DefaultConfig()
	cfg.SampleHz = 2000

	b.Run("cached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			e := scalana.NewEngine()
			if _, err := e.Sweep(app, nps, scalana.SweepConfig{Parallelism: 1, Prof: cfg}); err != nil {
				b.Fatal(err)
			}
			if stats := e.CacheStats(); stats.Misses != 1 {
				b.Fatalf("compiled %d times, want 1", stats.Misses)
			}
		}
	})
	b.Run("uncached", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			for _, np := range nps {
				if _, err := scalana.Run(scalana.RunConfig{App: app, NP: np, Tool: scalana.ToolScalAna, Prof: cfg}); err != nil {
					b.Fatal(err)
				}
			}
		}
	})
}
