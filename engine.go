package scalana

import (
	"fmt"
	"sync"
	"sync/atomic"

	"scalana/internal/detect"
	"scalana/internal/minilang"
	"scalana/internal/par"
	"scalana/internal/prof"
	"scalana/internal/psg"
)

// Engine executes profiled runs and sweeps on top of a PSG compile
// cache. The cache is keyed by (app, psg.Options), so a multi-scale
// sweep — or any set of runs sharing an app and options — parses and
// contracts the app exactly once; every execution then shares the one
// compiled graph. Sharing is safe and deterministic: compiled graphs
// are immutable during execution (indirect-call targets are
// pre-materialized by psg.Build) and vertex keys are stable, so
// profiles and detection reports are identical whether the graph is
// shared or rebuilt per run.
//
// An Engine is safe for concurrent use. The zero value is not usable;
// call NewEngine.
type Engine struct {
	mu    sync.Mutex
	cache map[compileKey]*compileEntry

	hits   atomic.Int64
	misses atomic.Int64
}

// compileKey identifies one cached compilation. Apps are compared by
// pointer: registered apps are process-wide singletons, and distinct
// ad-hoc App values are distinct programs even when their names collide.
type compileKey struct {
	app  *App
	opts psg.Options
}

// compileEntry is one cache slot. The sync.Once gives single-flight
// semantics: concurrent first requests for a key compile once and the
// rest wait for that result (including a sticky error).
type compileEntry struct {
	once  sync.Once
	prog  *minilang.Program
	graph *psg.Graph
	err   error
}

// NewEngine returns an empty engine.
func NewEngine() *Engine {
	return &Engine{cache: map[compileKey]*compileEntry{}}
}

// CacheStats reports compile-cache effectiveness.
type CacheStats struct {
	// Hits counts Compile calls answered from the cache (including calls
	// that waited on an in-flight compilation of the same key).
	Hits int64
	// Misses counts Compile calls that performed a compilation.
	Misses int64
	// Entries is the number of distinct (app, options) pairs cached.
	Entries int
}

// CacheStats returns a snapshot of the compile cache counters.
func (e *Engine) CacheStats() CacheStats {
	e.mu.Lock()
	entries := len(e.cache)
	e.mu.Unlock()
	return CacheStats{Hits: e.hits.Load(), Misses: e.misses.Load(), Entries: entries}
}

// Compile is CompileOptions backed by the engine's cache. Options are
// normalized (psg.Options.Normalize) before keying, so every spelling of
// the defaults — the zero value, Options{Contract: true}, or
// DefaultOptions() — shares one cache entry.
func (e *Engine) Compile(app *App, opts psg.Options) (*minilang.Program, *psg.Graph, error) {
	if app == nil {
		return nil, nil, fmt.Errorf("scalana: Engine.Compile: app is nil")
	}
	opts = opts.Normalize()
	key := compileKey{app: app, opts: opts}
	e.mu.Lock()
	ent, ok := e.cache[key]
	if !ok {
		ent = &compileEntry{}
		e.cache[key] = ent
	}
	e.mu.Unlock()
	if ok {
		e.hits.Add(1)
	} else {
		e.misses.Add(1)
	}
	ent.once.Do(func() {
		ent.prog, ent.graph, ent.err = CompileOptions(app, opts)
	})
	return ent.prog, ent.graph, ent.err
}

// Run is the package-level Run with the compile phase served from the
// engine's cache.
func (e *Engine) Run(cfg RunConfig) (*RunOutput, error) {
	if err := validateRunConfig(cfg); err != nil {
		return nil, err
	}
	prog, graph, err := e.Compile(cfg.App, cfg.PSGOptions)
	if err != nil {
		return nil, err
	}
	return RunCompiled(prog, graph, cfg)
}

// SweepConfig configures a multi-scale sweep.
type SweepConfig struct {
	// Parallelism bounds how many scales execute concurrently: 0 uses one
	// worker per CPU, 1 runs the scales one at a time. It is the only
	// concurrency knob over simulation: within a run the cooperative
	// scheduler executes exactly one rank at a time (see DESIGN.md §11),
	// so rank-level parallelism does not exist and adding workers only
	// helps when the sweep has multiple scales to overlap. (Post-run
	// finalization still fans per-rank conversion across a CPU-bounded
	// pool, but that is not tunable and not simulation.) Results never
	// depend on this value: each scale is its own deterministic simulated
	// world, and runs are returned in nps order either way.
	Parallelism int
	// Prof configures the ScalAna profiler for every scale (zero value =
	// paper defaults).
	Prof prof.Config
	// Seed is applied to every run; sweeps with equal seeds are identical.
	Seed int64
	// PSGOptions overrides contraction settings (zero value = defaults).
	PSGOptions psg.Options
	// Interp runs every scale on the tree-walking interpreter instead of
	// the bytecode VM (see RunConfig.Interp).
	Interp bool
}

// Sweep profiles the app at every scale in nps using the engine's
// compile cache, fanning the scales out across a bounded worker pool.
// Runs are returned in nps order. A failing scale stops further scales
// from starting, and the lowest-indexed error among the scales that ran
// is returned; with Parallelism 1 that is exactly the serial loop's
// behavior.
func (e *Engine) Sweep(app *App, nps []int, cfg SweepConfig) ([]detect.ScaleRun, error) {
	if len(nps) == 0 {
		return nil, nil
	}
	return par.MapErr(len(nps), cfg.Parallelism, func(i int) (detect.ScaleRun, error) {
		out, err := e.Run(RunConfig{
			App:        app,
			NP:         nps[i],
			ToolName:   "scalana",
			Prof:       cfg.Prof,
			Seed:       cfg.Seed,
			PSGOptions: cfg.PSGOptions,
			Interp:     cfg.Interp,
		})
		if err != nil {
			return detect.ScaleRun{}, err
		}
		return detect.ScaleRun{NP: nps[i], PPG: out.PPG()}, nil
	})
}
