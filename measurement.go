package scalana

import (
	"scalana/internal/hpctk"
	"scalana/internal/ppg"
	"scalana/internal/prof"
	"scalana/internal/trace"
)

// Measurement is the unified result of one measurement tool's
// collection: the tool that produced it, the total measurement-data
// size, and a tool-specific payload. The typed accessors below cover the
// bundled tools; externally registered tools expose their results
// through Data. All accessors are nil-receiver safe, so callers can
// chain through a bare run's nil Measurement.
type Measurement struct {
	tool    string
	storage int64
	data    any
}

// ScalAnaData is the payload of the "scalana" tool: per-rank profiles
// plus the assembled Program Performance Graph.
type ScalAnaData struct {
	Profiles []*prof.RankProfile
	PPG      *ppg.Graph
}

// ToolName returns the registered name of the tool that produced the
// measurement.
func (m *Measurement) ToolName() string {
	if m == nil {
		return ""
	}
	return m.tool
}

// StorageBytes is the tool's total measurement-data size across ranks.
func (m *Measurement) StorageBytes() int64 {
	if m == nil {
		return 0
	}
	return m.storage
}

// Data returns the tool-specific payload (the value ToolRun.Finish
// produced). Externally registered tools document their own payload
// type; the bundled tools are covered by the typed accessors.
func (m *Measurement) Data() any {
	if m == nil {
		return nil
	}
	return m.data
}

// Profiles returns the per-rank ScalAna profiles, or nil when the
// measurement was not produced by the "scalana" tool.
func (m *Measurement) Profiles() []*prof.RankProfile {
	if m == nil {
		return nil
	}
	if d, ok := m.data.(*ScalAnaData); ok {
		return d.Profiles
	}
	return nil
}

// PPG returns the assembled Program Performance Graph, or nil when the
// measurement was not produced by the "scalana" tool.
func (m *Measurement) PPG() *ppg.Graph {
	if m == nil {
		return nil
	}
	if d, ok := m.data.(*ScalAnaData); ok {
		return d.PPG
	}
	return nil
}

// Traces returns the per-rank traces, or nil when the measurement was
// not produced by the "tracer" tool.
func (m *Measurement) Traces() []*trace.RankTrace {
	if m == nil {
		return nil
	}
	if d, ok := m.data.([]*trace.RankTrace); ok {
		return d
	}
	return nil
}

// CtxProfiles returns the per-rank call-path profiles, or nil when the
// measurement was not produced by the "hpctk" tool.
func (m *Measurement) CtxProfiles() []*hpctk.RankProfile {
	if m == nil {
		return nil
	}
	if d, ok := m.data.([]*hpctk.RankProfile); ok {
		return d
	}
	return nil
}
