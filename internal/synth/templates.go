package synth

// Structural templates and defect emitters. A template writes a healthy
// MiniMP program — balanced strong-scaling computation plus the
// communication skeleton that names it — and calls the emitter's inject
// hooks at its injection sites; each planned defect then writes its own
// marked region and records the line span for the ground-truth label.
//
// Defect regions are written so contraction cannot smear them into
// neighboring code: every computation defect opens with a `for` loop
// (Loop vertices never merge with adjacent Comp vertices, and shallow
// MPI-free loops are always retained), and communication defects are
// MPI statements, which are always retained. The vertices the compiled
// graph places inside the span are therefore exactly the defect's.

import (
	"fmt"
	"math/rand"
	"strings"
)

// site says where in a template a defect region is injected.
type site int

const (
	// sitePre injects before the main time loop (one-shot defects).
	sitePre site = iota
	// siteIter injects inside the main time loop body (per-step defects).
	siteIter
)

// params are the randomized healthy-baseline knobs of one case.
type params struct {
	iters int     // main time-loop iterations
	work  float64 // total balanced work, split 1/np per rank
	bytes int     // baseline p2p message size
	ws    int     // working-set bytes for compute()
}

// refNP is the reference scale defect magnitudes are tuned against: a
// defect is sized to clearly dominate the (shrinking) balanced work at
// this scale while staying a minor perturbation at the smallest one.
const refNP = 32

// defectPlan is one planned injection: the archetype, the site, and the
// knobs drawn at planning time (so rng consumption is independent of
// emission order).
type defectPlan struct {
	at   site
	gt   GroundTruth
	emit func(e *emitter, indent string)
}

// emitter accumulates source lines and ground-truth spans.
type emitter struct {
	file    string
	p       params
	defects map[site][]*defectPlan
	lines   []string
	truths  []GroundTruth
}

func (e *emitter) addf(format string, args ...any) {
	e.lines = append(e.lines, fmt.Sprintf(format, args...))
}

// inject emits every defect planned for the site and records its span.
func (e *emitter) inject(s site, indent string) {
	for _, d := range e.defects[s] {
		start := len(e.lines) + 1
		d.emit(e, indent)
		gt := d.gt
		gt.File = e.file
		gt.LineStart = start
		gt.LineEnd = len(e.lines)
		e.truths = append(e.truths, gt)
	}
}

func (e *emitter) source() string { return strings.Join(e.lines, "\n") + "\n" }

// template is one structural program family.
type template struct {
	name string
	// supports lists the archetypes this skeleton can host.
	supports []DefectKind
	emit     func(e *emitter)
}

func (t *template) hosts(k DefectKind) bool {
	for _, s := range t.supports {
		if s == k {
			return true
		}
	}
	return false
}

// templates returns the template registry in rotation order.
func templates() []*template {
	return []*template{
		{
			name:     "stencil",
			supports: []DefectKind{DefectImbalance, DefectCollective, DefectWaitChain, DefectSerial, DefectSkew},
			emit:     emitStencil,
		},
		{
			name:     "reduce",
			supports: []DefectKind{DefectImbalance, DefectCollective, DefectSerial, DefectSkew},
			emit:     emitReduce,
		},
		{
			// The iter site sits inside the worker-only branch, so
			// collectives (all ranks must participate) and the serial token
			// chain (needs rank 0) cannot be hosted here.
			name:     "masterworker",
			supports: []DefectKind{DefectImbalance, DefectSkew},
			emit:     emitMasterWorker,
		},
		{
			name:     "pipeline",
			supports: []DefectKind{DefectImbalance, DefectWaitChain, DefectSerial, DefectSkew},
			emit:     emitPipeline,
		},
		{
			name:     "itersolve",
			supports: []DefectKind{DefectImbalance, DefectCollective, DefectWaitChain, DefectSkew},
			emit:     emitIterSolve,
		},
	}
}

// templateByName returns the named template, or nil.
func templateByName(name string) *template {
	for _, t := range templates() {
		if t.name == name {
			return t
		}
	}
	return nil
}

// ---- structural templates ----
//
// Every template binds `rank` and `np`, splits `work` 1/np per rank
// (strong scaling: healthy vertices have log-log slope ≈ -1 and are
// never flagged), and ends with a small collective so ranks rejoin.

func emitStencil(e *emitter) {
	p := e.p
	e.addf("// %s: synthetic stencil with ring halo exchange", e.file)
	e.addf("func main() {")
	e.addf("	var rank = mpi_rank();")
	e.addf("	var np = mpi_size();")
	e.addf("	var next = (rank + 1) %% np;")
	e.addf("	var prev = (rank - 1 + np) %% np;")
	e.addf("	var work = %g / np;", p.work)
	e.inject(sitePre, "\t")
	e.addf("	for (var t = 0; t < %d; t = t + 1) {", p.iters)
	e.addf("		mpi_sendrecv(next, 1, %d, prev, 1, %d);", p.bytes, p.bytes)
	e.addf("		compute(work, work / 16, work / 32, %d);", p.ws)
	e.inject(siteIter, "\t\t")
	e.addf("	}")
	e.addf("	mpi_allreduce(8);")
	e.addf("}")
}

func emitReduce(e *emitter) {
	p := e.p
	e.addf("// %s: synthetic butterfly-reduction solver", e.file)
	e.addf("func main() {")
	e.addf("	var rank = mpi_rank();")
	e.addf("	var np = mpi_size();")
	e.addf("	var work = %g / np;", p.work)
	e.inject(sitePre, "\t")
	e.addf("	for (var t = 0; t < %d; t = t + 1) {", p.iters)
	e.addf("		compute(work, work / 16, work / 32, %d);", p.ws)
	e.addf("		for (var s = 1; s < np; s = s * 2) {")
	e.addf("			var bit = floor(rank / s) %% 2;")
	e.addf("			var partner = rank + s * (1 - 2 * bit);")
	e.addf("			if (partner < np) {")
	e.addf("				mpi_sendrecv(partner, 2, %d, partner, 2, %d);", p.bytes, p.bytes)
	e.addf("			}")
	e.addf("		}")
	e.inject(siteIter, "\t\t")
	e.addf("		mpi_allreduce(8);")
	e.addf("	}")
	e.addf("}")
}

func emitMasterWorker(e *emitter) {
	p := e.p
	e.addf("// %s: synthetic master/worker task farm", e.file)
	e.addf("func main() {")
	e.addf("	var rank = mpi_rank();")
	e.addf("	var np = mpi_size();")
	e.addf("	var work = %g / np;", p.work)
	e.inject(sitePre, "\t")
	e.addf("	for (var t = 0; t < %d; t = t + 1) {", p.iters)
	e.addf("		if (rank == 0) {")
	e.addf("			for (var w = 1; w < np; w = w + 1) {")
	e.addf("				mpi_recv(w, 1, %d);", p.bytes)
	e.addf("			}")
	e.addf("			for (var w2 = 1; w2 < np; w2 = w2 + 1) {")
	e.addf("				mpi_send(w2, 2, %d);", p.bytes)
	e.addf("			}")
	e.addf("		} else {")
	e.addf("			compute(work, work / 16, work / 32, %d);", p.ws)
	e.inject(siteIter, "\t\t\t")
	e.addf("			mpi_send(0, 1, %d);", p.bytes)
	e.addf("			mpi_recv(0, 2, %d);", p.bytes)
	e.addf("		}")
	e.addf("	}")
	e.addf("	mpi_barrier();")
	e.addf("}")
}

func emitPipeline(e *emitter) {
	p := e.p
	e.addf("// %s: synthetic pipelined wavefront", e.file)
	e.addf("func main() {")
	e.addf("	var rank = mpi_rank();")
	e.addf("	var np = mpi_size();")
	e.addf("	var work = %g / np;", p.work)
	e.inject(sitePre, "\t")
	e.addf("	for (var t = 0; t < %d; t = t + 1) {", p.iters)
	e.addf("		if (rank > 0) {")
	e.addf("			mpi_recv(rank - 1, 5, %d);", p.bytes)
	e.addf("		}")
	e.addf("		compute(work, work / 16, work / 32, %d);", p.ws)
	e.inject(siteIter, "\t\t")
	e.addf("		if (rank < np - 1) {")
	e.addf("			mpi_send(rank + 1, 5, %d);", p.bytes)
	e.addf("		}")
	e.addf("	}")
	e.addf("	mpi_allreduce(8);")
	e.addf("}")
}

func emitIterSolve(e *emitter) {
	p := e.p
	e.addf("// %s: synthetic iterative solver with nonblocking halo", e.file)
	e.addf("func halo(next, prev, bytes) {")
	e.addf("	var r1 = mpi_irecv(prev, 3, bytes);")
	e.addf("	var r2 = mpi_irecv(next, 4, bytes);")
	e.addf("	mpi_isend(next, 3, bytes);")
	e.addf("	mpi_isend(prev, 4, bytes);")
	e.addf("	mpi_waitall();")
	e.addf("}")
	e.addf("func main() {")
	e.addf("	var rank = mpi_rank();")
	e.addf("	var np = mpi_size();")
	e.addf("	var next = (rank + 1) %% np;")
	e.addf("	var prev = (rank - 1 + np) %% np;")
	e.addf("	var work = %g / np;", p.work)
	e.inject(sitePre, "\t")
	e.addf("	for (var t = 0; t < %d; t = t + 1) {", p.iters)
	e.addf("		halo(next, prev, %d);", p.bytes)
	e.addf("		compute(work, work / 16, work / 32, %d);", p.ws)
	e.inject(siteIter, "\t\t")
	e.addf("		mpi_allreduce(8);")
	e.addf("	}")
	e.addf("}")
}

// ---- defect emitters ----

// planDefect draws a defect's knobs from rng and returns the plan. The
// baseline params scope the magnitudes so the defect dominates at refNP
// but stays modest at the smallest scale.
func planDefect(kind DefectKind, p params, rng *rand.Rand) *defectPlan {
	switch kind {
	case DefectImbalance:
		m := 2 + rng.Intn(2) // every m-th rank misbehaves
		alpha := 2.0 + 2.0*rng.Float64()
		c := alpha * p.work / (refNP * refNP)
		return &defectPlan{
			at: siteIter,
			gt: GroundTruth{
				Kind:          DefectImbalance,
				AffectedRanks: fmt.Sprintf("rank %% %d == 0", m),
				GrowsWithNP:   true,
				Note:          fmt.Sprintf("every %d-th rank computes %.3g*np extra flops per step", m, 2*c),
			},
			emit: func(e *emitter, in string) {
				e.addf("%s// DEFECT[imbalance]: extra work on every %d-th rank, growing with np", in, m)
				e.addf("%sfor (var dj = 0; dj < 2; dj = dj + 1) {", in)
				e.addf("%s	if (rank %% %d == 0) {", in, m)
				e.addf("%s		compute(%g * np, %g * np, %g * np, %d);", in, c, c/16, c/32, p.ws)
				e.addf("%s	}", in)
				e.addf("%s}", in)
			},
		}

	case DefectCollective:
		bc := 49152 + rng.Intn(3)*16384 // per-rank volume coefficient
		return &defectPlan{
			at: siteIter,
			gt: GroundTruth{
				Kind:          DefectCollective,
				AffectedRanks: "all",
				GrowsWithNP:   true,
				Note:          fmt.Sprintf("allgather volume %d*np bytes per rank: total traffic grows with np^2", bc),
			},
			emit: func(e *emitter, in string) {
				e.addf("%s// DEFECT[collective]: allgather volume grows with np", in)
				e.addf("%smpi_allgather(%d * np);", in, bc)
			},
		}

	case DefectWaitChain:
		k := 1 + rng.Intn(3) // the slow rank (cases run with MinNP >= 4)
		beta := 1.5 + 1.5*rng.Float64()
		c := beta * p.work / refNP
		return &defectPlan{
			at: siteIter,
			gt: GroundTruth{
				Kind:          DefectWaitChain,
				AffectedRanks: fmt.Sprintf("rank == %d", k),
				GrowsWithNP:   false,
				Note:          fmt.Sprintf("rank %d stalls every step by %.3g constant flops; partners inherit the delay through p2p waits", k, 2*c),
			},
			emit: func(e *emitter, in string) {
				e.addf("%s// DEFECT[waitchain]: rank %d is the slow link of the chain", in, k)
				e.addf("%sfor (var dw = 0; dw < 2; dw = dw + 1) {", in)
				e.addf("%s	if (rank == %d) {", in, k)
				e.addf("%s		compute(%g, %g, %g, %d);", in, c, c/16, c/32, p.ws)
				e.addf("%s	}", in)
				e.addf("%s}", in)
			},
		}

	case DefectSerial:
		gamma := 1.5 + 1.0*rng.Float64()
		c := gamma * p.work / refNP
		tag := 71
		return &defectPlan{
			at: siteIter,
			gt: GroundTruth{
				Kind:          DefectSerial,
				AffectedRanks: "all",
				GrowsWithNP:   true,
				Note:          fmt.Sprintf("token-serialized critical section of %.3g flops per rank: region wall time grows with np", c),
			},
			emit: func(e *emitter, in string) {
				e.addf("%s// DEFECT[serial]: token-serialized critical section", in)
				e.addf("%sif (rank > 0) {", in)
				e.addf("%s	mpi_recv(rank - 1, %d, 16);", in, tag)
				e.addf("%s}", in)
				e.addf("%sfor (var dc = 0; dc < 1; dc = dc + 1) {", in)
				e.addf("%s	compute(%g, %g, %g, %d);", in, c, c/16, c/32, p.ws)
				e.addf("%s}", in)
				e.addf("%sif (rank < np - 1) {", in)
				e.addf("%s	mpi_send(rank + 1, %d, 16);", in, tag)
				e.addf("%s}", in)
			},
		}

	case DefectSkew:
		amp := 5.0 + 4.0*rng.Float64()
		pw := 6
		delta := 1.0 + rng.Float64()
		c := delta * p.work / refNP
		reps := 8
		return &defectPlan{
			at: sitePre,
			gt: GroundTruth{
				Kind:          DefectSkew,
				AffectedRanks: "heavy-tailed subset (per-rank pseudo-random factor)",
				GrowsWithNP:   false,
				Note:          fmt.Sprintf("per-rank load factor 1 + %.2f*rand()^%d over %d blocks of %.3g flops", amp, pw, reps, c),
			},
			emit: func(e *emitter, in string) {
				e.addf("%s// DEFECT[skew]: input-dependent per-rank load factor", in)
				e.addf("%sfor (var dk = 0; dk < 1; dk = dk + 1) {", in)
				e.addf("%s	var fk = 1 + %g * pow(rand(), %d);", in, amp, pw)
				e.addf("%s	for (var dk2 = 0; dk2 < %d; dk2 = dk2 + 1) {", in, reps)
				e.addf("%s		compute(%g * fk, %g * fk, %g * fk, %d);", in, c, c/16, c/32, p.ws)
				e.addf("%s	}", in)
				e.addf("%s}", in)
			},
		}
	}
	return nil
}
