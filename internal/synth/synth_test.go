package synth

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"scalana/internal/detect"
	"scalana/internal/prof"

	scalana "scalana"
)

// gateSeed/gateCases pin the committed corpus the CI accuracy gate runs
// on; regenerate testdata/corpus-seed1.json with
// `go run ./cmd/scalana-synth -seed 1 -cases 25 -corpus <path>` if the
// generator intentionally changes.
const (
	gateSeed  = 1
	gateCases = 25
	// gateTop1 is the accuracy floor recorded in this PR: the committed
	// corpus localizes every archetype perfectly, so a drop below 0.8
	// overall or per archetype signals a real detection regression.
	gateTop1 = 0.8
)

func gateCorpus(t *testing.T) *Corpus {
	t.Helper()
	corpus, err := Generate(GenConfig{Seed: gateSeed, Cases: gateCases})
	if err != nil {
		t.Fatal(err)
	}
	return corpus
}

// TestGenerateReproducible: the same seed generates the identical corpus
// byte-for-byte, and case i does not depend on how many cases follow it.
func TestGenerateReproducible(t *testing.T) {
	a, err := Generate(GenConfig{Seed: 7, Cases: 12})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenConfig{Seed: 7, Cases: 12})
	if err != nil {
		t.Fatal(err)
	}
	aj, err := a.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, _ := b.EncodeJSON()
	if !bytes.Equal(aj, bj) {
		t.Error("two generations with one seed differ")
	}

	prefix, err := Generate(GenConfig{Seed: 7, Cases: 5})
	if err != nil {
		t.Fatal(err)
	}
	for i, c := range prefix.Cases {
		if c.Source != a.Cases[i].Source || c.Name != a.Cases[i].Name {
			t.Errorf("case %d differs between a 5-case and a 12-case corpus", i)
		}
	}

	c, err := Generate(GenConfig{Seed: 8, Cases: 12})
	if err != nil {
		t.Fatal(err)
	}
	cj, _ := c.EncodeJSON()
	if bytes.Equal(aj, cj) {
		t.Error("different seeds generated identical corpora")
	}
}

// TestCommittedCorpusByteIdentical: regenerating the committed
// fixed-seed corpus reproduces the file byte-for-byte — the
// `scalana-synth -seed 1 -cases 25` reproducibility contract.
func TestCommittedCorpusByteIdentical(t *testing.T) {
	want, err := os.ReadFile(filepath.Join("testdata", "corpus-seed1.json"))
	if err != nil {
		t.Fatal(err)
	}
	got, err := gateCorpus(t).EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, want) {
		t.Fatalf("regenerated seed-%d corpus differs from testdata/corpus-seed1.json (%d vs %d bytes); if the generator changed intentionally, regenerate the file and re-baseline the accuracy gate", gateSeed, len(got), len(want))
	}
}

// TestCorpusRoundTrip: corpus JSON decode/encode is lossless.
func TestCorpusRoundTrip(t *testing.T) {
	corpus, err := Generate(GenConfig{Seed: 3, Cases: 4})
	if err != nil {
		t.Fatal(err)
	}
	enc, err := corpus.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeCorpus(enc)
	if err != nil {
		t.Fatal(err)
	}
	enc2, err := dec.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Error("corpus decode/encode is not lossless")
	}
}

// TestGroundTruthLabels: every generated case compiles and every defect
// span resolves to at least one PSG vertex whose position lies inside it.
func TestGroundTruthLabels(t *testing.T) {
	corpus := gateCorpus(t)
	seenKind := map[DefectKind]bool{}
	seenTmpl := map[string]bool{}
	for _, c := range corpus.Cases {
		if len(c.Truth) == 0 {
			t.Errorf("%s has no ground truth", c.Name)
		}
		seenTmpl[c.Template] = true
		for _, gt := range c.Truth {
			seenKind[gt.Kind] = true
			if len(gt.VertexKeys) == 0 {
				t.Errorf("%s: defect %s has no vertex keys", c.Name, gt.Kind)
			}
			if gt.LineStart <= 0 || gt.LineEnd < gt.LineStart {
				t.Errorf("%s: defect %s has bad span %d-%d", c.Name, gt.Kind, gt.LineStart, gt.LineEnd)
			}
		}
	}
	for _, k := range AllDefects() {
		if !seenKind[k] {
			t.Errorf("corpus covers no %s case", k)
		}
	}
	if len(seenTmpl) < 4 {
		t.Errorf("corpus uses only %d templates", len(seenTmpl))
	}
}

// TestAccuracyGate is the CI gate: the committed fixed-seed corpus must
// localize root causes with top-1 accuracy >= 0.8 overall and for every
// archetype. A drop means a detection-quality regression.
func TestAccuracyGate(t *testing.T) {
	res, err := Evaluate(gateCorpus(t), EvalConfig{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res.Top1Accuracy < gateTop1 {
		t.Errorf("overall top-1 localization accuracy %.2f below the %.2f gate\n%s", res.Top1Accuracy, float64(gateTop1), res.Render())
	}
	for i := range res.Kinds {
		m := &res.Kinds[i]
		if m.Cases == 0 {
			t.Errorf("archetype %s has no cases", m.Kind)
			continue
		}
		if acc := m.Top1Accuracy(); acc < gateTop1 {
			t.Errorf("archetype %s top-1 accuracy %.2f below the %.2f gate", m.Kind, acc, float64(gateTop1))
		}
	}
	if res.TopKAccuracy < res.Top1Accuracy {
		t.Errorf("top-%d accuracy %.2f below top-1 %.2f", res.TopK, res.TopKAccuracy, res.Top1Accuracy)
	}
}

// TestEvaluateDeterministic: evaluating one corpus twice — once serially,
// once with case-level parallelism — produces byte-identical JSON.
func TestEvaluateDeterministic(t *testing.T) {
	corpus, err := Generate(GenConfig{Seed: 5, Cases: 5})
	if err != nil {
		t.Fatal(err)
	}
	a, err := Evaluate(corpus, EvalConfig{Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Evaluate(corpus, EvalConfig{Parallelism: 4})
	if err != nil {
		t.Fatal(err)
	}
	aj, err := a.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	bj, _ := b.EncodeJSON()
	if !bytes.Equal(aj, bj) {
		t.Errorf("parallel evaluation differs from serial:\n--- serial ---\n%s\n--- parallel ---\n%s", aj, bj)
	}
	if a.Render() != b.Render() {
		t.Error("rendered evaluation differs between serial and parallel runs")
	}
}

// TestCaseSweepParallelismIdentity: for generated cases, a Sweep at
// Parallelism 1 and 4 produces byte-identical detection reports (the CI
// container has one CPU, so this asserts identity, not speedup).
func TestCaseSweepParallelismIdentity(t *testing.T) {
	corpus, err := Generate(GenConfig{Seed: 9, Cases: 3})
	if err != nil {
		t.Fatal(err)
	}
	profCfg := prof.DefaultConfig()
	profCfg.SampleHz = 5000
	dcfg := detect.DefaultConfig()
	dcfg.CommCauses = true
	for _, c := range corpus.Cases {
		var reports [][]byte
		for _, parallelism := range []int{1, 4} {
			runs, err := scalana.NewEngine().Sweep(c.App(), []int{4, 8, 16}, scalana.SweepConfig{
				Parallelism: parallelism,
				Prof:        profCfg,
			})
			if err != nil {
				t.Fatalf("%s parallelism=%d: %v", c.Name, parallelism, err)
			}
			rep, err := detect.Detect(runs, dcfg)
			if err != nil {
				t.Fatal(err)
			}
			enc, err := rep.EncodeJSON()
			if err != nil {
				t.Fatal(err)
			}
			reports = append(reports, enc)
		}
		if !bytes.Equal(reports[0], reports[1]) {
			t.Errorf("%s: parallel sweep report differs from serial", c.Name)
		}
	}
}
