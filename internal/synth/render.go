package synth

// Text rendering of evaluation results: the per-archetype accuracy
// table (the repo's analog of the paper's accuracy evaluation) plus a
// per-case summary.

import (
	"encoding/json"
	"fmt"
	"strings"

	"scalana/internal/report"
)

// Render formats the evaluation as a terminal report.
func (res *EvalResult) Render() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "=== synthetic-corpus root-cause localization (scales %v, top-%d) ===\n\n", res.Scales, res.TopK)

	rows := make([][]string, 0, len(res.Kinds)+1)
	for i := range res.Kinds {
		m := &res.Kinds[i]
		rows = append(rows, []string{
			string(m.Kind),
			fmt.Sprintf("%d", m.Cases),
			fmt.Sprintf("%.2f", m.Top1Accuracy()),
			fmt.Sprintf("%.2f", m.TopKAccuracy()),
			fmt.Sprintf("%.2f", m.Recall()),
		})
	}
	rows = append(rows, []string{
		"overall",
		fmt.Sprintf("%d", len(res.Cases)),
		fmt.Sprintf("%.2f", res.Top1Accuracy),
		fmt.Sprintf("%.2f", res.TopKAccuracy),
		fmt.Sprintf("%.2f", res.Recall),
	})
	sb.WriteString(report.Table("localization accuracy by defect archetype",
		[]string{"archetype", "cases", "top-1", fmt.Sprintf("top-%d", res.TopK), "recall"}, rows))

	fmt.Fprintf(&sb, "\nprecision over top-%d causes: %.2f\n\ncases:\n", res.TopK, res.Precision)
	for i := range res.Cases {
		cr := &res.Cases[i]
		verdict := "MISS "
		switch {
		case cr.Top1Hit:
			verdict = "top-1"
		case cr.TopKHit:
			verdict = fmt.Sprintf("top-%d", cr.FirstHitRank)
		case cr.FirstHitRank > 0:
			verdict = fmt.Sprintf("rank %d", cr.FirstHitRank)
		}
		loc := ""
		if len(cr.Causes) > 0 {
			loc = fmt.Sprintf("  cause: %s:%d %s", cr.Causes[0].File, cr.Causes[0].Line, cr.Causes[0].VertexKey)
		}
		fmt.Fprintf(&sb, "  %-36s %-6s%s\n", cr.Name, verdict, loc)
	}
	return sb.String()
}

// EncodeJSON serializes the evaluation result deterministically.
func (res *EvalResult) EncodeJSON() ([]byte, error) {
	return json.MarshalIndent(res, "", " ")
}
