package synth

// Corpus generation. Each case derives from (Seed, case index) alone:
// the per-case rng is seeded with seed + i*caseSeedStride, so case i is
// identical whether the corpus has 10 cases or 10000, and a corpus is
// reproducible byte-for-byte from its seed. No wall clock anywhere.

import (
	"fmt"
	"math/rand"
	"sort"

	"scalana/internal/psg"

	scalana "scalana"
)

// caseSeedStride decorrelates per-case seeds (a large odd constant so
// neighboring cases land far apart in the generator's state space).
const caseSeedStride = 1_000_003

// caseMinNP is the smallest scale generated cases support: defect
// parameters (affected-rank strides, slow-rank indices, token chains)
// assume at least four ranks.
const caseMinNP = 4

// GenConfig configures corpus generation.
type GenConfig struct {
	// Seed is the corpus seed; equal seeds generate identical corpora.
	Seed int64
	// Cases is the number of cases to generate.
	Cases int
	// Archetypes restricts the injected defect kinds (empty = AllDefects).
	// Case i's primary defect is Archetypes[i % len(Archetypes)], so every
	// archetype is covered evenly.
	Archetypes []DefectKind
	// Templates restricts the structural templates by name (empty = all).
	Templates []string
	// SecondDefectProb is the probability a case carries a second defect
	// of a different archetype (default 0.2; negative disables).
	SecondDefectProb float64
}

// Generate builds a labeled corpus. Every generated case is compiled
// once to validate it and to resolve each defect span to the PSG vertex
// keys inside it; a case whose span contains no vertex is a generator
// bug and fails loudly.
func Generate(cfg GenConfig) (*Corpus, error) {
	if cfg.Cases <= 0 {
		return nil, fmt.Errorf("synth: GenConfig.Cases must be positive, got %d", cfg.Cases)
	}
	kinds := cfg.Archetypes
	if len(kinds) == 0 {
		kinds = AllDefects()
	}
	var tmpls []*template
	if len(cfg.Templates) == 0 {
		tmpls = templates()
	} else {
		for _, name := range cfg.Templates {
			t := templateByName(name)
			if t == nil {
				return nil, fmt.Errorf("synth: unknown template %q", name)
			}
			tmpls = append(tmpls, t)
		}
	}
	secondProb := cfg.SecondDefectProb
	if secondProb == 0 {
		secondProb = 0.2
	}
	if secondProb < 0 {
		secondProb = 0
	}

	corpus := &Corpus{Seed: cfg.Seed, Archetypes: kinds}
	for i := 0; i < cfg.Cases; i++ {
		c, err := generateCase(cfg.Seed, i, kinds, tmpls, secondProb)
		if err != nil {
			return nil, err
		}
		corpus.Cases = append(corpus.Cases, c)
	}
	return corpus, nil
}

// generateCase builds case i of a corpus.
func generateCase(seed int64, i int, kinds []DefectKind, tmpls []*template, secondProb float64) (*Case, error) {
	caseSeed := seed + int64(i)*caseSeedStride
	rng := rand.New(rand.NewSource(caseSeed))

	primary := kinds[i%len(kinds)]
	var hosts []*template
	for _, t := range tmpls {
		if t.hosts(primary) {
			hosts = append(hosts, t)
		}
	}
	if len(hosts) == 0 {
		return nil, fmt.Errorf("synth: no template hosts archetype %q", primary)
	}
	tmpl := hosts[rng.Intn(len(hosts))]

	p := params{
		iters: 5 + rng.Intn(4),
		work:  (1.2 + 2.4*rng.Float64()) * 1e8,
		bytes: 4096 << rng.Intn(3),
		ws:    262144,
	}

	// Plan the defects: the primary, plus sometimes a secondary of a
	// different archetype the template can also host. All rng draws
	// happen at planning time, in a fixed order.
	plans := []*defectPlan{planDefect(primary, p, rng)}
	if rng.Float64() < secondProb {
		var others []DefectKind
		for _, k := range kinds {
			if k != primary && tmpl.hosts(k) {
				others = append(others, k)
			}
		}
		if len(others) > 0 {
			plans = append(plans, planDefect(others[rng.Intn(len(others))], p, rng))
		}
	}

	name := fmt.Sprintf("synth-%04d-%s-%s", i, tmpl.name, primary)
	e := &emitter{file: name + ".mp", p: p, defects: map[site][]*defectPlan{}}
	for _, d := range plans {
		e.defects[d.at] = append(e.defects[d.at], d)
	}
	tmpl.emit(e)

	c := &Case{
		Name:     name,
		Template: tmpl.name,
		Seed:     caseSeed,
		MinNP:    caseMinNP,
		Source:   e.source(),
		Truth:    e.truths,
	}
	// The emitter appends truths in site order (pre before iter); restore
	// plan order so Truth[0] is always the primary defect.
	sort.SliceStable(c.Truth, func(a, b int) bool {
		return planIndex(plans, c.Truth[a].Kind) < planIndex(plans, c.Truth[b].Kind)
	})

	if err := labelCase(c); err != nil {
		return nil, fmt.Errorf("synth: case %s: %w", name, err)
	}
	return c, nil
}

func planIndex(plans []*defectPlan, k DefectKind) int {
	for i, d := range plans {
		if d.gt.Kind == k {
			return i
		}
	}
	return len(plans)
}

// labelCase compiles the case and resolves each ground-truth span to the
// PSG vertex keys inside it.
func labelCase(c *Case) error {
	_, graph, err := scalana.Compile(c.App())
	if err != nil {
		return fmt.Errorf("generated program does not compile: %w", err)
	}
	for ti := range c.Truth {
		gt := &c.Truth[ti]
		var keys []string
		for _, v := range graph.Vertices {
			if v.Kind == psg.KindRoot || v.Pos.File != gt.File {
				continue
			}
			if v.Pos.Line >= gt.LineStart && v.Pos.Line <= gt.LineEnd {
				keys = append(keys, v.Key)
			}
		}
		if len(keys) == 0 {
			return fmt.Errorf("defect %s span %d-%d contains no PSG vertex (contraction smeared it?)", gt.Kind, gt.LineStart, gt.LineEnd)
		}
		sort.Strings(keys)
		gt.VertexKeys = keys
	}
	return nil
}
