package synth

// The accuracy harness: run the full pipeline (Engine sweep across
// scales -> PPG -> detect) over every case of a corpus and score the
// ranked root causes against the ground-truth labels, mirroring the
// paper's localization-accuracy evaluation.

import (
	"fmt"

	"scalana/internal/detect"
	"scalana/internal/par"
	"scalana/internal/prof"

	scalana "scalana"
)

// EvalConfig configures one accuracy evaluation.
type EvalConfig struct {
	// NPs are the job scales each case is swept across (default
	// 4, 8, 16, 32).
	NPs []int
	// Parallelism bounds how many cases evaluate concurrently (0 = one
	// worker per CPU). Results never depend on it.
	Parallelism int
	// SampleHz is the profiler sampling rate (default 5000, the rate the
	// repo's detection-quality experiments use).
	SampleHz float64
	// Seed seeds every simulated run (0 = the corpus seed, so one seed
	// drives generation and simulation alike).
	Seed int64
	// Detect overrides detection parameters. The zero value uses the
	// paper defaults plus CommCauses (non-scalable collectives must be
	// blamable for the collective archetype to be locatable at all).
	Detect detect.Config
	// TopK is the cause-rank cutoff for top-k metrics (default 3).
	TopK int
	// Engine optionally supplies a shared compile cache.
	Engine *scalana.Engine
	// Interp evaluates on the tree-walking interpreter instead of the
	// bytecode VM (see scalana.RunConfig.Interp).
	Interp bool
}

// CausePred is one reported root cause, normalized for matching.
type CausePred struct {
	VertexKey string  `json:"vertex_key"`
	Kind      string  `json:"kind"`
	File      string  `json:"file"`
	Line      int     `json:"line"`
	Score     float64 `json:"score"`
	// Truth is the index of the ground-truth defect this cause matches,
	// or -1.
	Truth int `json:"truth"`
}

// CaseResult scores one case.
type CaseResult struct {
	Name     string       `json:"name"`
	Template string       `json:"template"`
	Kinds    []DefectKind `json:"kinds"`
	// Causes are the report's top-K causes in rank order.
	Causes []CausePred `json:"causes,omitempty"`
	// Top1Hit: the top-ranked cause matches a labeled defect.
	Top1Hit bool `json:"top1_hit"`
	// TopKHit: some top-K cause matches a labeled defect.
	TopKHit bool `json:"topk_hit"`
	// FirstHitRank is the 1-based rank of the first matching cause
	// (0 = no cause in the whole report matched).
	FirstHitRank int `json:"first_hit_rank"`
}

// KindMetrics aggregates accuracy over one archetype. Case-level
// metrics (Cases, Top1Hits, TopKHits) attribute each case to its
// primary defect; truth-level recall counts every labeled defect under
// its own kind.
type KindMetrics struct {
	Kind         DefectKind `json:"kind"`
	Cases        int        `json:"cases"`
	Top1Hits     int        `json:"top1_hits"`
	TopKHits     int        `json:"topk_hits"`
	TruthTotal   int        `json:"truth_total"`
	TruthMatched int        `json:"truth_matched"`
}

// Top1Accuracy is the archetype's top-1 localization accuracy.
func (m *KindMetrics) Top1Accuracy() float64 { return ratio(m.Top1Hits, m.Cases) }

// TopKAccuracy is the archetype's top-k localization accuracy.
func (m *KindMetrics) TopKAccuracy() float64 { return ratio(m.TopKHits, m.Cases) }

// Recall is the fraction of this archetype's labeled defects matched by
// some top-k cause.
func (m *KindMetrics) Recall() float64 { return ratio(m.TruthMatched, m.TruthTotal) }

// EvalResult is the scored evaluation of one corpus.
type EvalResult struct {
	// Scales are the job scales each case was swept across.
	Scales []int        `json:"scales"`
	TopK   int          `json:"top_k"`
	Cases  []CaseResult `json:"cases"`
	// Kinds holds per-archetype metrics in rotation order.
	Kinds []KindMetrics `json:"kinds"`
	// Top1Accuracy and TopKAccuracy are corpus-wide case-level rates.
	Top1Accuracy float64 `json:"top1_accuracy"`
	TopKAccuracy float64 `json:"topk_accuracy"`
	// Precision is matched top-K predictions over all top-K predictions;
	// Recall is matched labeled defects over all labeled defects.
	Precision float64 `json:"precision"`
	Recall    float64 `json:"recall"`
}

func ratio(num, den int) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// DefaultEvalConfig returns the evaluation defaults.
func DefaultEvalConfig() EvalConfig {
	dcfg := detect.DefaultConfig()
	dcfg.CommCauses = true
	return EvalConfig{
		NPs:      []int{4, 8, 16, 32},
		SampleHz: 5000,
		Detect:   dcfg,
		TopK:     3,
	}
}

func (cfg EvalConfig) withDefaults() EvalConfig {
	def := DefaultEvalConfig()
	if len(cfg.NPs) == 0 {
		cfg.NPs = def.NPs
	}
	if cfg.SampleHz == 0 {
		cfg.SampleHz = def.SampleHz
	}
	if cfg.Detect == (detect.Config{}) {
		cfg.Detect = def.Detect
	}
	if cfg.TopK == 0 {
		cfg.TopK = def.TopK
	}
	if cfg.Engine == nil {
		cfg.Engine = scalana.NewEngine()
	}
	return cfg
}

// Evaluate sweeps every case of the corpus across the configured scales,
// runs detection, and scores the ranked causes against ground truth.
// Cases fan out across a bounded worker pool; each case's own sweep runs
// its scales serially so the pool is the only source of parallelism.
func Evaluate(corpus *Corpus, cfg EvalConfig) (*EvalResult, error) {
	if len(corpus.Cases) == 0 {
		return nil, fmt.Errorf("synth: empty corpus")
	}
	for i, c := range corpus.Cases {
		if c == nil || c.Name == "" || c.Source == "" {
			return nil, fmt.Errorf("synth: corpus case %d is incomplete", i)
		}
		if len(c.Truth) == 0 {
			return nil, fmt.Errorf("synth: case %s carries no ground truth", c.Name)
		}
	}
	cfg = cfg.withDefaults()
	if cfg.Seed == 0 {
		cfg.Seed = corpus.Seed
	}
	profCfg := prof.DefaultConfig()
	profCfg.SampleHz = cfg.SampleHz

	results, err := par.MapErr(len(corpus.Cases), cfg.Parallelism, func(i int) (CaseResult, error) {
		c := corpus.Cases[i]
		runs, err := cfg.Engine.Sweep(c.App(), cfg.NPs, scalana.SweepConfig{
			Parallelism: 1,
			Prof:        profCfg,
			Seed:        cfg.Seed,
			Interp:      cfg.Interp,
		})
		if err != nil {
			return CaseResult{}, fmt.Errorf("synth: sweep %s: %w", c.Name, err)
		}
		rep, err := detect.Detect(runs, cfg.Detect)
		if err != nil {
			return CaseResult{}, fmt.Errorf("synth: detect %s: %w", c.Name, err)
		}
		return scoreCase(c, rep, cfg.TopK), nil
	})
	if err != nil {
		return nil, err
	}

	res := &EvalResult{TopK: cfg.TopK, Cases: results, Scales: append([]int(nil), cfg.NPs...)}
	aggregate(res, corpus)
	return res, nil
}

// scoreCase matches a report's ranked causes against the case's labels.
func scoreCase(c *Case, rep *detect.Report, topK int) CaseResult {
	cr := CaseResult{Name: c.Name, Template: c.Template, Kinds: c.Kinds()}
	for rank, cause := range rep.Causes {
		pred := CausePred{
			VertexKey: cause.VertexKey,
			Score:     cause.Score,
			Truth:     -1,
		}
		if cause.Vertex != nil {
			pred.Kind = cause.Vertex.Kind.String()
			pred.File = cause.Vertex.Pos.File
			pred.Line = cause.Vertex.Pos.Line
		}
		for ti := range c.Truth {
			if c.Truth[ti].Covers(pred.VertexKey, pred.File, pred.Line) {
				pred.Truth = ti
				break
			}
		}
		if pred.Truth >= 0 && cr.FirstHitRank == 0 {
			cr.FirstHitRank = rank + 1
		}
		if rank < topK {
			cr.Causes = append(cr.Causes, pred)
		}
	}
	cr.Top1Hit = cr.FirstHitRank == 1
	cr.TopKHit = cr.FirstHitRank >= 1 && cr.FirstHitRank <= topK
	return cr
}

// aggregate fills the per-archetype and corpus-wide metrics.
func aggregate(res *EvalResult, corpus *Corpus) {
	declared := corpus.Archetypes
	if len(declared) == 0 {
		declared = AllDefects()
	}
	// Deduplicate while preserving rotation order: res.Kinds gets one row
	// per archetype even if the corpus declares one twice.
	var kinds []DefectKind
	byKind := map[DefectKind]*KindMetrics{}
	for _, k := range declared {
		if byKind[k] == nil {
			byKind[k] = &KindMetrics{Kind: k}
			kinds = append(kinds, k)
		}
	}
	kindOf := func(k DefectKind) *KindMetrics {
		m := byKind[k]
		if m == nil {
			m = &KindMetrics{Kind: k}
			byKind[k] = m
			kinds = append(kinds, k)
		}
		return m
	}

	var top1, topk, predTotal, predMatched, truthTotal, truthMatched int
	for i := range res.Cases {
		cr := &res.Cases[i]
		c := corpus.Cases[i]
		m := kindOf(cr.Kinds[0])
		m.Cases++
		if cr.Top1Hit {
			m.Top1Hits++
			top1++
		}
		if cr.TopKHit {
			m.TopKHits++
			topk++
		}
		matched := map[int]bool{}
		for _, pred := range cr.Causes {
			predTotal++
			if pred.Truth >= 0 {
				predMatched++
				matched[pred.Truth] = true
			}
		}
		for ti := range c.Truth {
			tm := kindOf(c.Truth[ti].Kind)
			tm.TruthTotal++
			truthTotal++
			if matched[ti] {
				tm.TruthMatched++
				truthMatched++
			}
		}
	}
	for _, k := range kinds {
		res.Kinds = append(res.Kinds, *byKind[k])
	}
	res.Top1Accuracy = ratio(top1, len(res.Cases))
	res.TopKAccuracy = ratio(topk, len(res.Cases))
	res.Precision = ratio(predMatched, predTotal)
	res.Recall = ratio(truthMatched, truthTotal)
}
