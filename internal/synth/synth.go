// Package synth generates seeded synthetic MiniMP workloads with
// injected, labeled scaling defects, and scores the full ScalAna
// pipeline against that ground truth.
//
// ScalAna's central claim is not that it builds graphs but that
// backtracking on them locates the right root cause; the paper's
// evaluation injects known defects and reports localization accuracy.
// This package is the repo's version of that experiment, made
// repeatable: Generate composes structural templates (stencil halo
// exchange, butterfly reduction, master/worker, pipeline, iterative
// solver) with defect archetypes (computation imbalance growing with np,
// superlinear collective volume, p2p wait chains, serialized critical
// sections, input-dependent load skew), each carrying a GroundTruth
// record naming the culprit source span and PSG vertex keys; Evaluate
// sweeps every case across scales, runs detection, and matches the
// ranked causes against the labels to produce per-archetype
// precision/recall/top-k metrics.
//
// Everything is deterministic: generation derives each case from
// (Seed, case index) alone — no wall clock — so one seed reproduces the
// identical corpus byte-for-byte, and case i does not depend on how many
// cases follow it.
package synth

import (
	"encoding/json"
	"fmt"
	"os"
	"sync"

	scalana "scalana"
)

// DefectKind names one injected scaling-defect archetype.
type DefectKind string

// The defect archetypes.
const (
	// DefectImbalance: a fixed subset of ranks does extra work that grows
	// linearly with np while the balanced work shrinks — the Zeus-MP
	// bval3d pattern.
	DefectImbalance DefectKind = "imbalance"
	// DefectCollective: a collective whose per-rank message volume grows
	// with np, so its cost scales superlinearly with the job size.
	DefectCollective DefectKind = "collective"
	// DefectWaitChain: one rank is intrinsically slow and stalls its
	// communication partners through p2p wait chains (paper Fig. 8).
	DefectWaitChain DefectKind = "waitchain"
	// DefectSerial: a token-serialized critical section — per-rank cost is
	// constant, but ranks execute it one after another, so the wall time
	// of the region grows linearly with np.
	DefectSerial DefectKind = "serial"
	// DefectSkew: input-dependent load skew — each rank's work is scaled
	// by a deterministic per-rank pseudo-random factor with a heavy tail.
	DefectSkew DefectKind = "skew"
)

// AllDefects lists every archetype in corpus rotation order.
func AllDefects() []DefectKind {
	return []DefectKind{DefectImbalance, DefectCollective, DefectWaitChain, DefectSerial, DefectSkew}
}

// GroundTruth labels one injected defect: where it lives in the
// generated source and which PSG vertices a correct localization may
// point at.
type GroundTruth struct {
	// Kind is the defect archetype.
	Kind DefectKind `json:"kind"`
	// File is the generated source file name.
	File string `json:"file"`
	// LineStart and LineEnd delimit the injected region (inclusive,
	// 1-based). A reported cause inside this span is a hit.
	LineStart int `json:"line_start"`
	LineEnd   int `json:"line_end"`
	// VertexKeys are the stable PSG keys of every vertex the compiled
	// graph places inside the span (computed at generation time).
	VertexKeys []string `json:"vertex_keys"`
	// AffectedRanks describes which ranks misbehave ("rank % 2 == 0",
	// "rank == 3", "all").
	AffectedRanks string `json:"affected_ranks"`
	// GrowsWithNP records whether the defect's cost grows with the scale.
	GrowsWithNP bool `json:"grows_with_np"`
	// Note is a human-readable description of the injection.
	Note string `json:"note"`
}

// Covers reports whether a reported cause location matches this defect:
// either its vertex key was labeled at generation time, or its source
// position falls inside the injected span.
func (gt *GroundTruth) Covers(vertexKey, file string, line int) bool {
	for _, k := range gt.VertexKeys {
		if k == vertexKey {
			return true
		}
	}
	return file == gt.File && line >= gt.LineStart && line <= gt.LineEnd
}

// Case is one generated workload with its labeled defects.
type Case struct {
	// Name is the unique case name ("synth-0007-stencil-imbalance").
	Name string `json:"name"`
	// Template is the structural template the case was built from.
	Template string `json:"template"`
	// Seed is the per-case seed everything about the case derives from.
	Seed int64 `json:"seed"`
	// MinNP is the smallest rank count the case supports.
	MinNP int `json:"min_np"`
	// Source is the complete generated MiniMP program.
	Source string `json:"source"`
	// Truth labels the injected defects; Truth[0] is the primary one.
	Truth []GroundTruth `json:"truth"`

	appOnce sync.Once
	app     *scalana.App
}

// Kinds returns the case's defect archetypes, primary first.
func (c *Case) Kinds() []DefectKind {
	out := make([]DefectKind, len(c.Truth))
	for i := range c.Truth {
		out[i] = c.Truth[i].Kind
	}
	return out
}

// File returns the case's generated source file name.
func (c *Case) File() string { return c.Name + ".mp" }

// App returns the runnable workload for the case. The value is cached:
// every sweep of one Case shares one *App, so an Engine compiles the
// case exactly once.
func (c *Case) App() *scalana.App {
	c.appOnce.Do(func() {
		c.app = &scalana.App{
			Name:        c.Name,
			File:        c.File(),
			Description: fmt.Sprintf("synthetic %s workload with injected %v", c.Template, c.Kinds()),
			Source:      c.Source,
			MinNP:       c.MinNP,
		}
	})
	return c.app
}

// Corpus is a generated set of cases plus the configuration that
// produced it.
type Corpus struct {
	// Seed is the corpus seed.
	Seed int64 `json:"seed"`
	// Archetypes lists the defect kinds in rotation order.
	Archetypes []DefectKind `json:"archetypes"`
	// Cases are the generated workloads.
	Cases []*Case `json:"cases"`
}

// EncodeJSON serializes the corpus deterministically.
func (c *Corpus) EncodeJSON() ([]byte, error) {
	return json.MarshalIndent(c, "", " ")
}

// DecodeCorpus parses a corpus written by EncodeJSON.
func DecodeCorpus(data []byte) (*Corpus, error) {
	var c Corpus
	if err := json.Unmarshal(data, &c); err != nil {
		return nil, fmt.Errorf("synth: parse corpus: %w", err)
	}
	return &c, nil
}

// Save writes the corpus to a JSON file.
func (c *Corpus) Save(path string) error {
	data, err := c.EncodeJSON()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadCorpus reads a corpus written by Save.
func LoadCorpus(path string) (*Corpus, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return DecodeCorpus(data)
}
