package ir

import (
	"fmt"
	"sort"

	"scalana/internal/minilang"
)

// CallSite is one static call site within a function.
type CallSite struct {
	Caller   string
	Callee   string // "" for indirect calls
	Node     minilang.Node
	Indirect bool
}

// CallGraph is the program call graph (PCG, paper §III-A): nodes are
// functions, edges are direct call sites. Indirect call sites are listed
// separately because their targets are only known at runtime.
type CallGraph struct {
	Funcs         map[string]*Func
	Callees       map[string][]string   // deduplicated, sorted
	Sites         map[string][]CallSite // per caller, in lowering order
	IndirectSites []CallSite
}

// BuildCallGraph lowers the program (if fns is nil) and scans every
// instruction for call sites.
func BuildCallGraph(prog *minilang.Program, fns map[string]*Func) *CallGraph {
	if fns == nil {
		fns = LowerProgram(prog)
	}
	cg := &CallGraph{
		Funcs:   fns,
		Callees: map[string][]string{},
		Sites:   map[string][]CallSite{},
	}
	for _, fd := range prog.Funcs {
		fn := fns[fd.Name]
		seen := map[string]bool{}
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				switch in.Op {
				case OpCall:
					site := CallSite{Caller: fd.Name, Callee: in.Callee, Node: in.Node}
					cg.Sites[fd.Name] = append(cg.Sites[fd.Name], site)
					if !seen[in.Callee] {
						seen[in.Callee] = true
						cg.Callees[fd.Name] = append(cg.Callees[fd.Name], in.Callee)
					}
				case OpIndirectCall:
					site := CallSite{Caller: fd.Name, Node: in.Node, Indirect: true}
					cg.Sites[fd.Name] = append(cg.Sites[fd.Name], site)
					cg.IndirectSites = append(cg.IndirectSites, site)
				}
			}
		}
		sort.Strings(cg.Callees[fd.Name])
	}
	return cg
}

// Recursive reports whether fn participates in a call cycle (including
// self-recursion) considering only direct calls.
func (cg *CallGraph) Recursive(fn string) bool {
	// DFS from each callee of fn looking for fn again.
	var dfs func(cur string, visited map[string]bool) bool
	dfs = func(cur string, visited map[string]bool) bool {
		if cur == fn {
			return true
		}
		if visited[cur] {
			return false
		}
		visited[cur] = true
		for _, c := range cg.Callees[cur] {
			if dfs(c, visited) {
				return true
			}
		}
		return false
	}
	for _, c := range cg.Callees[fn] {
		if dfs(c, map[string]bool{}) {
			return true
		}
	}
	return false
}

// TopDownOrder returns functions reachable from main in a deterministic
// top-down order (breadth-first over direct call edges). Functions not
// reachable from main are excluded; unknown callees are an error.
func (cg *CallGraph) TopDownOrder() ([]string, error) {
	if _, ok := cg.Funcs["main"]; !ok {
		return nil, fmt.Errorf("ir: call graph has no main")
	}
	order := []string{"main"}
	seen := map[string]bool{"main": true}
	for i := 0; i < len(order); i++ {
		for _, c := range cg.Callees[order[i]] {
			if _, ok := cg.Funcs[c]; !ok {
				return nil, fmt.Errorf("ir: call to unknown function %q from %q", c, order[i])
			}
			if !seen[c] {
				seen[c] = true
				order = append(order, c)
			}
		}
	}
	return order, nil
}
