package ir

// Static scalability lint (the `scalana-static -lint` pass): flag MPI
// collectives that execute inside loops whose trip count grows with the
// job size. A collective synchronizes all np ranks, so a collective in
// an np-dependent loop costs Ω(np) global synchronizations — the exact
// shape of the paper's zeusmp-style scalability defects, visible
// statically long before a sweep measures it.
//
// The pass reuses the CFG machinery the PSG builder runs on: natural
// loops from FindLoops give nesting depth and the originating loop
// statement; the program call graph extends the check through direct
// calls (a collective buried two calls deep inside an np-scaled loop is
// still flagged, with the call chain reported).

import (
	"fmt"
	"sort"

	"scalana/internal/minilang"
)

// ScaleFinding is one statically detected np-scaled collective.
type ScaleFinding struct {
	// Func is the function containing the np-dependent loop.
	Func string
	// LoopPos locates the loop statement whose trip count grows with np.
	LoopPos minilang.Pos
	// Depth is the loop's nesting depth (1 = outermost) in Func.
	Depth int
	// Collective is the flagged builtin name (mpi_allreduce, ...).
	Collective string
	// Pos locates the collective call site.
	Pos minilang.Pos
	// Via is the direct-call chain from the loop body to the function
	// containing the collective; empty when the collective is inline.
	Via []string
}

func (f ScaleFinding) String() string {
	s := fmt.Sprintf("%s: %s at %s inside np-dependent loop at %s (depth %d)",
		f.Func, f.Collective, f.Pos, f.LoopPos, f.Depth)
	if len(f.Via) > 0 {
		s += " via"
		for _, v := range f.Via {
			s += " " + v + "()"
		}
	}
	return s
}

// LintScaledCollectives analyzes every function of prog and returns the
// findings in deterministic (declaration, then position) order.
func LintScaledCollectives(prog *minilang.Program) []ScaleFinding {
	fns := LowerProgram(prog)
	cg := BuildCallGraph(prog, fns)
	collectiveVia := buildCollectiveVia(prog, cg)

	var out []ScaleFinding
	for _, fd := range prog.Funcs {
		fn := fns[fd.Name]
		dt := ComputeDominators(fn)
		loops := FindLoops(fn, dt)
		if len(loops) == 0 {
			continue
		}
		tainted := npTaintedVars(fd)

		// Innermost np-dependent loop per block: loops arrive
		// outermost-first, so deeper assignments overwrite shallower ones.
		byBlock := map[int]*Loop{}
		for _, l := range loops {
			if !npDependentLoop(l.Node, tainted) {
				continue
			}
			for id := range l.Blocks {
				byBlock[id] = l
			}
		}
		if len(byBlock) == 0 {
			continue
		}

		for _, b := range fn.Blocks {
			l := byBlock[b.ID]
			if l == nil {
				continue
			}
			for _, in := range b.Instrs {
				switch in.Op {
				case OpMPI:
					if minilang.IsCollective(in.Call) {
						out = append(out, ScaleFinding{
							Func: fd.Name, LoopPos: l.Node.Pos(), Depth: l.Depth,
							Collective: in.Call.Name, Pos: in.Call.Pos(),
						})
					}
				case OpCall:
					if via, ok := collectiveVia[in.Callee]; ok {
						out = append(out, ScaleFinding{
							Func: fd.Name, LoopPos: l.Node.Pos(), Depth: l.Depth,
							Collective: via.name, Pos: via.pos,
							Via: append([]string{in.Callee}, via.chain...),
						})
					}
				}
			}
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Pos.Line != out[j].Pos.Line {
			return out[i].Pos.Line < out[j].Pos.Line
		}
		return out[i].Pos.Col < out[j].Pos.Col
	})
	return out
}

// collectiveInfo describes how a function reaches a collective: the
// collective's name and position, plus the remaining call chain below
// the function itself.
type collectiveInfo struct {
	name  string
	pos   minilang.Pos
	chain []string
}

// buildCollectiveVia maps every function that (transitively, via direct
// calls) executes a collective to one representative collective site.
func buildCollectiveVia(prog *minilang.Program, cg *CallGraph) map[string]collectiveInfo {
	direct := map[string]collectiveInfo{}
	for _, fd := range prog.Funcs {
		fn := cg.Funcs[fd.Name]
		for _, b := range fn.Blocks {
			for _, in := range b.Instrs {
				if in.Op == OpMPI && minilang.IsCollective(in.Call) {
					if _, ok := direct[fd.Name]; !ok {
						direct[fd.Name] = collectiveInfo{name: in.Call.Name, pos: in.Call.Pos()}
					}
				}
			}
		}
	}
	// Propagate up the call graph to a fixed point. Callees lists are
	// sorted, so the representative chain chosen is deterministic.
	via := map[string]collectiveInfo{}
	for name, info := range direct {
		via[name] = info
	}
	for changed := true; changed; {
		changed = false
		for _, fd := range prog.Funcs {
			if _, ok := via[fd.Name]; ok {
				continue
			}
			for _, callee := range cg.Callees[fd.Name] {
				if sub, ok := via[callee]; ok {
					via[fd.Name] = collectiveInfo{
						name: sub.name, pos: sub.pos,
						chain: append([]string{callee}, sub.chain...),
					}
					changed = true
					break
				}
			}
		}
	}
	return via
}

// npTaintedVars computes, to a fixed point, the set of local variables
// whose value (conservatively) derives from mpi_size(). Assignments
// through other tainted variables propagate; array element writes taint
// the whole array.
func npTaintedVars(fd *minilang.FuncDecl) map[string]bool {
	tainted := map[string]bool{}
	for changed := true; changed; {
		changed = false
		var walkStmt func(s minilang.Stmt)
		mark := func(name string, val minilang.Expr) {
			if !tainted[name] && exprNPTainted(val, tainted) {
				tainted[name] = true
				changed = true
			}
		}
		walkStmt = func(s minilang.Stmt) {
			switch st := s.(type) {
			case *minilang.VarDecl:
				mark(st.Name, st.Init)
			case *minilang.AssignStmt:
				mark(st.Name, st.Val)
			case *minilang.Block:
				for _, inner := range st.Stmts {
					walkStmt(inner)
				}
			case *minilang.IfStmt:
				walkStmt(st.Then)
				if st.Else != nil {
					walkStmt(st.Else)
				}
			case *minilang.ForStmt:
				if st.Init != nil {
					walkStmt(st.Init)
				}
				if st.Post != nil {
					walkStmt(st.Post)
				}
				walkStmt(st.Body)
			case *minilang.WhileStmt:
				walkStmt(st.Body)
			}
		}
		walkStmt(fd.Body)
	}
	return tainted
}

// npDependentLoop reports whether the loop statement's condition
// mentions mpi_size() or an np-tainted variable — i.e. whether its trip
// count grows with the job size.
func npDependentLoop(node minilang.Node, tainted map[string]bool) bool {
	var cond minilang.Expr
	switch st := node.(type) {
	case *minilang.ForStmt:
		cond = st.Cond
	case *minilang.WhileStmt:
		cond = st.Cond
	}
	if cond == nil {
		return false
	}
	return exprNPTainted(cond, tainted)
}

// exprNPTainted reports whether the expression mentions mpi_size() or a
// tainted variable.
func exprNPTainted(e minilang.Expr, tainted map[string]bool) bool {
	switch ex := e.(type) {
	case nil:
		return false
	case *minilang.VarRef:
		return tainted[ex.Name]
	case *minilang.IndexExpr:
		return tainted[ex.Name] || exprNPTainted(ex.Idx, tainted)
	case *minilang.UnaryExpr:
		return exprNPTainted(ex.X, tainted)
	case *minilang.BinaryExpr:
		return exprNPTainted(ex.L, tainted) || exprNPTainted(ex.R, tainted)
	case *minilang.CallExpr:
		if ex.Builtin != nil && ex.Builtin.Name == "mpi_size" {
			return true
		}
		for _, a := range ex.Args {
			if exprNPTainted(a, tainted) {
				return true
			}
		}
	}
	return false
}
