package ir

// Dominator analysis using the Cooper–Harvey–Kennedy iterative algorithm
// ("A Simple, Fast Dominance Algorithm"). Natural-loop detection (loops.go)
// is built on top of it, mirroring how an LLVM-based PSG pass identifies
// loops in each procedure's CFG.

// DomTree holds the immediate-dominator relation for one function's CFG.
type DomTree struct {
	fn   *Func
	idom []int // immediate dominator by block ID; -1 for entry/unreachable
	rpo  []int // reverse postorder position by block ID; -1 if unreachable
}

// ComputeDominators builds the dominator tree of fn.
func ComputeDominators(fn *Func) *DomTree {
	n := len(fn.Blocks)
	dt := &DomTree{fn: fn, idom: make([]int, n), rpo: make([]int, n)}
	for i := range dt.idom {
		dt.idom[i] = -1
		dt.rpo[i] = -1
	}

	// Postorder DFS from the entry block.
	var order []*Block
	visited := make([]bool, n)
	var dfs func(b *Block)
	dfs = func(b *Block) {
		visited[b.ID] = true
		for _, s := range b.Succs {
			if !visited[s.ID] {
				dfs(s)
			}
		}
		order = append(order, b)
	}
	if n == 0 {
		return dt
	}
	entry := fn.Blocks[0]
	dfs(entry)

	// Reverse postorder numbering.
	for i := len(order) - 1; i >= 0; i-- {
		dt.rpo[order[i].ID] = len(order) - 1 - i
	}

	dt.idom[entry.ID] = entry.ID
	changed := true
	for changed {
		changed = false
		for i := len(order) - 2; i >= 0; i-- { // RPO, skipping entry
			b := order[i]
			newIdom := -1
			for _, p := range b.Preds {
				if dt.idom[p.ID] == -1 {
					continue // predecessor not processed yet / unreachable
				}
				if newIdom == -1 {
					newIdom = p.ID
				} else {
					newIdom = dt.intersect(p.ID, newIdom)
				}
			}
			if newIdom != -1 && dt.idom[b.ID] != newIdom {
				dt.idom[b.ID] = newIdom
				changed = true
			}
		}
	}
	return dt
}

func (dt *DomTree) intersect(a, b int) int {
	for a != b {
		for dt.rpo[a] > dt.rpo[b] {
			a = dt.idom[a]
		}
		for dt.rpo[b] > dt.rpo[a] {
			b = dt.idom[b]
		}
	}
	return a
}

// IDom returns the immediate dominator block ID of b, or -1 for the entry
// block and unreachable blocks.
func (dt *DomTree) IDom(b int) int {
	if b == dt.fn.Blocks[0].ID {
		return -1
	}
	return dt.idom[b]
}

// Dominates reports whether block a dominates block b.
func (dt *DomTree) Dominates(a, b int) bool {
	if dt.idom[b] == -1 {
		return false // b unreachable
	}
	for {
		if a == b {
			return true
		}
		if b == dt.fn.Blocks[0].ID {
			return false
		}
		b = dt.idom[b]
	}
}

// Reachable reports whether block b is reachable from the entry.
func (dt *DomTree) Reachable(b int) bool { return dt.idom[b] != -1 }
