// Package ir lowers MiniMP functions to a control-flow graph of basic
// blocks and provides the classic analyses ScalAna's static module relies
// on: dominator computation, natural-loop detection, and the program call
// graph (PCG). The paper builds its Program Structure Graph by traversing
// the control flow graph of each procedure at the IR level (§III-A); this
// package supplies that substrate.
package ir

import (
	"fmt"

	"scalana/internal/minilang"
)

// Op is the kind of an IR instruction.
type Op int

// Instruction kinds. Plain expression evaluation and assignment lower to
// OpEval; call-like constructs each get their own instruction so the PSG
// builder sees them in evaluation order.
const (
	OpEval Op = iota
	OpCall
	OpIndirectCall
	OpMPI
	OpCompute
	OpReturn
)

func (o Op) String() string {
	switch o {
	case OpEval:
		return "eval"
	case OpCall:
		return "call"
	case OpIndirectCall:
		return "icall"
	case OpMPI:
		return "mpi"
	case OpCompute:
		return "compute"
	case OpReturn:
		return "return"
	}
	return fmt.Sprintf("Op(%d)", int(o))
}

// Instr is one IR instruction.
type Instr struct {
	Op     Op
	Node   minilang.Node      // originating AST node
	Call   *minilang.CallExpr // non-nil for call-like ops
	Callee string             // for OpCall: target function name
}

// BlockKind annotates why a block was created; the PSG builder and tests
// use it to relate CFG structure back to syntax.
type BlockKind int

// Block kinds.
const (
	BlockPlain BlockKind = iota
	BlockEntry
	BlockExit
	BlockLoopHead // the condition block of a for/while loop
	BlockLoopBody
	BlockLoopPost // the post-statement block of a for loop
	BlockThen
	BlockElse
	BlockMerge
)

// Block is a basic block.
type Block struct {
	ID     int
	Kind   BlockKind
	Instrs []Instr
	Succs  []*Block
	Preds  []*Block

	// LoopNode is the ForStmt/WhileStmt that created this BlockLoopHead.
	LoopNode minilang.Node
}

// Func is the CFG of one function. Blocks[0] is the entry; Exit is the
// unique exit block (reached by returns and fall-through).
type Func struct {
	Name   string
	Decl   *minilang.FuncDecl
	Blocks []*Block
	Exit   *Block
}

// NumInstrs reports the total instruction count across all blocks.
func (f *Func) NumInstrs() int {
	n := 0
	for _, b := range f.Blocks {
		n += len(b.Instrs)
	}
	return n
}

type lowerer struct {
	fn     *Func
	cur    *Block
	breaks []*Block // innermost-last break targets
	conts  []*Block // innermost-last continue targets
}

// Lower builds the CFG for a single function.
func Lower(decl *minilang.FuncDecl) *Func {
	fn := &Func{Name: decl.Name, Decl: decl}
	lw := &lowerer{fn: fn}
	entry := lw.newBlock(BlockEntry)
	fn.Exit = &Block{Kind: BlockExit}
	lw.cur = entry
	lw.lowerBlock(decl.Body)
	lw.link(lw.cur, fn.Exit)
	fn.Exit.ID = len(fn.Blocks)
	fn.Blocks = append(fn.Blocks, fn.Exit)
	return fn
}

// LowerProgram lowers every function in the program.
func LowerProgram(prog *minilang.Program) map[string]*Func {
	out := make(map[string]*Func, len(prog.Funcs))
	for _, fd := range prog.Funcs {
		out[fd.Name] = Lower(fd)
	}
	return out
}

func (lw *lowerer) newBlock(kind BlockKind) *Block {
	b := &Block{ID: len(lw.fn.Blocks), Kind: kind}
	lw.fn.Blocks = append(lw.fn.Blocks, b)
	return b
}

func (lw *lowerer) link(from, to *Block) {
	if from == nil {
		return
	}
	from.Succs = append(from.Succs, to)
	to.Preds = append(to.Preds, from)
}

// emit appends an instruction to the current block (if reachable).
func (lw *lowerer) emit(in Instr) {
	if lw.cur != nil {
		lw.cur.Instrs = append(lw.cur.Instrs, in)
	}
}

func (lw *lowerer) lowerBlock(b *minilang.Block) {
	for _, s := range b.Stmts {
		lw.lowerStmt(s)
	}
}

func (lw *lowerer) lowerStmt(s minilang.Stmt) {
	switch st := s.(type) {
	case *minilang.VarDecl:
		lw.lowerExprCalls(st.Init)
		lw.emit(Instr{Op: OpEval, Node: st})
	case *minilang.AssignStmt:
		if st.Idx != nil {
			lw.lowerExprCalls(st.Idx)
		}
		lw.lowerExprCalls(st.Val)
		lw.emit(Instr{Op: OpEval, Node: st})
	case *minilang.ExprStmt:
		lw.lowerExprCalls(st.X)
	case *minilang.ReturnStmt:
		if st.Value != nil {
			lw.lowerExprCalls(st.Value)
		}
		lw.emit(Instr{Op: OpReturn, Node: st})
		lw.link(lw.cur, lw.fn.Exit)
		lw.cur = nil // code after return is unreachable
	case *minilang.BreakStmt:
		if n := len(lw.breaks); n > 0 {
			lw.link(lw.cur, lw.breaks[n-1])
		}
		lw.cur = nil
	case *minilang.ContinueStmt:
		if n := len(lw.conts); n > 0 {
			lw.link(lw.cur, lw.conts[n-1])
		}
		lw.cur = nil
	case *minilang.Block:
		lw.lowerBlock(st)
	case *minilang.IfStmt:
		lw.lowerIf(st)
	case *minilang.ForStmt:
		lw.lowerFor(st)
	case *minilang.WhileStmt:
		lw.lowerWhile(st)
	}
}

func (lw *lowerer) lowerIf(st *minilang.IfStmt) {
	lw.lowerExprCalls(st.Cond)
	lw.emit(Instr{Op: OpEval, Node: st}) // the branch decision itself
	condBlock := lw.cur

	thenB := lw.newBlock(BlockThen)
	merge := lw.newBlock(BlockMerge)
	lw.link(condBlock, thenB)
	lw.cur = thenB
	lw.lowerBlock(st.Then)
	lw.link(lw.cur, merge)

	if st.Else != nil {
		elseB := lw.newBlock(BlockElse)
		lw.link(condBlock, elseB)
		lw.cur = elseB
		lw.lowerBlock(st.Else)
		lw.link(lw.cur, merge)
	} else {
		lw.link(condBlock, merge)
	}
	lw.cur = merge
}

func (lw *lowerer) lowerFor(st *minilang.ForStmt) {
	if st.Init != nil {
		lw.lowerStmt(st.Init)
	}
	head := lw.newBlock(BlockLoopHead)
	head.LoopNode = st
	lw.link(lw.cur, head)
	lw.cur = head
	if st.Cond != nil {
		lw.lowerExprCalls(st.Cond)
	}
	lw.emit(Instr{Op: OpEval, Node: st})

	body := lw.newBlock(BlockLoopBody)
	post := lw.newBlock(BlockLoopPost)
	exit := lw.newBlock(BlockMerge)
	lw.link(head, body)
	lw.link(head, exit)

	lw.breaks = append(lw.breaks, exit)
	lw.conts = append(lw.conts, post)
	lw.cur = body
	lw.lowerBlock(st.Body)
	lw.link(lw.cur, post)
	lw.breaks = lw.breaks[:len(lw.breaks)-1]
	lw.conts = lw.conts[:len(lw.conts)-1]

	lw.cur = post
	if st.Post != nil {
		lw.lowerStmt(st.Post)
	}
	lw.link(lw.cur, head) // back edge
	lw.cur = exit
}

func (lw *lowerer) lowerWhile(st *minilang.WhileStmt) {
	head := lw.newBlock(BlockLoopHead)
	head.LoopNode = st
	lw.link(lw.cur, head)
	lw.cur = head
	lw.lowerExprCalls(st.Cond)
	lw.emit(Instr{Op: OpEval, Node: st})

	body := lw.newBlock(BlockLoopBody)
	exit := lw.newBlock(BlockMerge)
	lw.link(head, body)
	lw.link(head, exit)

	lw.breaks = append(lw.breaks, exit)
	lw.conts = append(lw.conts, head)
	lw.cur = body
	lw.lowerBlock(st.Body)
	lw.link(lw.cur, head) // back edge
	lw.breaks = lw.breaks[:len(lw.breaks)-1]
	lw.conts = lw.conts[:len(lw.conts)-1]
	lw.cur = exit
}

// lowerExprCalls walks an expression in evaluation order and emits one
// instruction per call-like subexpression. Short-circuit operators are
// treated as straight-line for instruction emission: the PSG's granularity
// is loops/branches/calls, so conditional evaluation inside a single
// expression does not change the graph shape.
func (lw *lowerer) lowerExprCalls(e minilang.Expr) {
	switch ex := e.(type) {
	case *minilang.NumLit, *minilang.StrLit, *minilang.VarRef, *minilang.FuncRefExpr:
	case *minilang.IndexExpr:
		lw.lowerExprCalls(ex.Idx)
	case *minilang.UnaryExpr:
		lw.lowerExprCalls(ex.X)
	case *minilang.BinaryExpr:
		lw.lowerExprCalls(ex.L)
		lw.lowerExprCalls(ex.R)
	case *minilang.CallExpr:
		for _, a := range ex.Args {
			lw.lowerExprCalls(a)
		}
		switch {
		case ex.Indirect:
			lw.emit(Instr{Op: OpIndirectCall, Node: ex, Call: ex})
		case ex.Builtin == nil:
			lw.emit(Instr{Op: OpCall, Node: ex, Call: ex, Callee: ex.Name})
		case ex.Builtin.Kind == minilang.BuiltinComm:
			lw.emit(Instr{Op: OpMPI, Node: ex, Call: ex})
		case ex.Builtin.Kind == minilang.BuiltinCompute:
			lw.emit(Instr{Op: OpCompute, Node: ex, Call: ex})
		default:
			// Query/math/alloc/IO builtins fold into surrounding evaluation.
		}
	}
}
