package ir

import (
	"strings"
	"testing"

	"scalana/internal/apps"
	"scalana/internal/minilang"
)

func lintSrc(t *testing.T, src string) []ScaleFinding {
	t.Helper()
	prog, err := minilang.Parse("t.mp", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return LintScaledCollectives(prog)
}

func TestScaleLintDirectCollective(t *testing.T) {
	findings := lintSrc(t, `
func main() {
	var np = mpi_size();
	for (var i = 0; i < np; i = i + 1) {
		mpi_allreduce(8);
	}
}
`)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Collective != "mpi_allreduce" || f.Func != "main" || f.Depth != 1 || len(f.Via) != 0 {
		t.Errorf("unexpected finding: %+v", f)
	}
	if f.Pos.Line != 5 {
		t.Errorf("collective reported at line %d, want 5", f.Pos.Line)
	}
}

func TestScaleLintTransitiveThroughCall(t *testing.T) {
	findings := lintSrc(t, `
func sync_step() {
	mpi_barrier();
}
func main() {
	var n = mpi_size() * 2;
	var j = 0;
	while (j < n) {
		sync_step();
		j = j + 1;
	}
}
`)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	f := findings[0]
	if f.Collective != "mpi_barrier" || f.Func != "main" {
		t.Errorf("unexpected finding: %+v", f)
	}
	if len(f.Via) != 1 || f.Via[0] != "sync_step" {
		t.Errorf("via chain = %v, want [sync_step]", f.Via)
	}
	if !strings.Contains(f.String(), "via sync_step()") {
		t.Errorf("rendered finding should show the call chain: %s", f)
	}
}

func TestScaleLintNestedDepth(t *testing.T) {
	// The np-dependent loop is the inner one; the finding must attribute
	// the collective to it with its real nesting depth.
	findings := lintSrc(t, `
func main() {
	var np = mpi_size();
	for (var it = 0; it < 10; it = it + 1) {
		for (var r = 0; r < np; r = r + 1) {
			mpi_bcast(0, 1024);
		}
	}
}
`)
	if len(findings) != 1 {
		t.Fatalf("got %d findings, want 1: %v", len(findings), findings)
	}
	if findings[0].Depth != 2 {
		t.Errorf("depth = %d, want 2 (inner np loop)", findings[0].Depth)
	}
}

func TestScaleLintCleanPatterns(t *testing.T) {
	// Fixed trip counts, collectives outside loops, and p2p inside np
	// loops are all legal: only np-scaled collectives are findings.
	findings := lintSrc(t, `
func main() {
	var np = mpi_size();
	for (var it = 0; it < 100; it = it + 1) {
		compute(1e6, 1e4, 1e3, 65536);
	}
	for (var s = 1; s < np; s = s * 2) {
		mpi_sendrecv(s, 0, 1024, s, 0, 1024);
	}
	mpi_allreduce(8);
}
`)
	if len(findings) != 0 {
		t.Fatalf("got %d findings, want 0: %v", len(findings), findings)
	}
}

// TestScaleLintBundledWorkloads runs the lint over every bundled app:
// none of them puts a collective inside an np-dependent loop (butterfly
// exchanges use sendrecv), so all must come back clean. This doubles as
// a determinism check on a real program corpus.
func TestScaleLintBundledWorkloads(t *testing.T) {
	for _, name := range apps.Names() {
		prog, err := apps.Get(name).Parse()
		if err != nil {
			t.Fatalf("%s: parse: %v", name, err)
		}
		if findings := LintScaledCollectives(prog); len(findings) != 0 {
			t.Errorf("%s: unexpected findings: %v", name, findings)
		}
	}
}
