package ir

import (
	"testing"

	"scalana/internal/minilang"
)

func lowerMain(t *testing.T, src string) *Func {
	t.Helper()
	prog, err := minilang.Parse("t.mp", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return Lower(prog.Func("main"))
}

func TestLowerStraightLine(t *testing.T) {
	fn := lowerMain(t, `func main() { var x = 1; var y = x + 2; }`)
	if len(fn.Blocks[0].Instrs) != 2 {
		t.Errorf("entry block has %d instrs, want 2", len(fn.Blocks[0].Instrs))
	}
	if len(fn.Blocks[0].Succs) != 1 || fn.Blocks[0].Succs[0] != fn.Exit {
		t.Error("entry should flow to exit")
	}
}

func TestLowerIfElseDiamond(t *testing.T) {
	fn := lowerMain(t, `func main() { var x = 1; if (x > 0) { x = 2; } else { x = 3; } x = 4; }`)
	entry := fn.Blocks[0]
	if len(entry.Succs) != 2 {
		t.Fatalf("cond block has %d successors, want 2", len(entry.Succs))
	}
	thenB, elseB := entry.Succs[0], entry.Succs[1]
	if thenB.Kind != BlockThen {
		t.Errorf("first successor kind = %v", thenB.Kind)
	}
	if elseB.Kind != BlockElse {
		t.Errorf("second successor kind = %v", elseB.Kind)
	}
	if thenB.Succs[0] != elseB.Succs[0] {
		t.Error("then/else must merge")
	}
}

func TestLowerForLoopShape(t *testing.T) {
	fn := lowerMain(t, `func main() { for (var i = 0; i < 3; i = i + 1) { var y = i; } }`)
	var head *Block
	for _, b := range fn.Blocks {
		if b.Kind == BlockLoopHead {
			head = b
		}
	}
	if head == nil {
		t.Fatal("no loop head block")
	}
	if head.LoopNode == nil {
		t.Error("loop head lacks its AST node")
	}
	// The head must have a back-edge predecessor (the post block).
	hasBack := false
	for _, p := range head.Preds {
		if p.Kind == BlockLoopPost {
			hasBack = true
		}
	}
	if !hasBack {
		t.Error("loop head has no back edge from the post block")
	}
}

func TestLowerBreakContinue(t *testing.T) {
	fn := lowerMain(t, `
func main() {
	for (var i = 0; i < 9; i = i + 1) {
		if (i == 2) { continue; }
		if (i == 5) { break; }
		var y = i;
	}
}`)
	// All blocks reachable except none; just verify dominators compute and
	// exactly one natural loop is found.
	dt := ComputeDominators(fn)
	loops := FindLoops(fn, dt)
	if len(loops) != 1 {
		t.Fatalf("found %d loops, want 1", len(loops))
	}
}

func TestLowerReturnMakesCodeUnreachable(t *testing.T) {
	fn := lowerMain(t, `func main() { return; var x = 1; }`)
	dt := ComputeDominators(fn)
	n := 0
	for _, b := range fn.Blocks {
		if b.Kind != BlockExit && dt.Reachable(b.ID) {
			n += len(b.Instrs)
		}
	}
	// only the return instruction is reachable
	if n != 1 {
		t.Errorf("%d reachable instructions, want 1", n)
	}
}

func TestDominatorsDiamond(t *testing.T) {
	fn := lowerMain(t, `func main() { var x = 1; if (x > 0) { x = 2; } else { x = 3; } x = 4; }`)
	dt := ComputeDominators(fn)
	entry := fn.Blocks[0]
	for _, b := range fn.Blocks {
		if dt.Reachable(b.ID) && !dt.Dominates(entry.ID, b.ID) {
			t.Errorf("entry must dominate block %d", b.ID)
		}
	}
	// The merge block's immediate dominator is the condition block.
	var merge *Block
	for _, b := range fn.Blocks {
		if b.Kind == BlockMerge {
			merge = b
		}
	}
	if dt.IDom(merge.ID) != entry.ID {
		t.Errorf("idom(merge) = %d, want %d", dt.IDom(merge.ID), entry.ID)
	}
	// Then-block does not dominate merge.
	if dt.Dominates(entry.Succs[0].ID, merge.ID) {
		t.Error("then block must not dominate merge")
	}
}

func TestNaturalLoopNesting(t *testing.T) {
	fn := lowerMain(t, `
func main() {
	for (var i = 0; i < 2; i = i + 1) {
		for (var j = 0; j < 2; j = j + 1) {
			while (j < 1) { j = j + 1; }
		}
	}
	while (1 < 0) { var z = 0; }
}`)
	dt := ComputeDominators(fn)
	loops := FindLoops(fn, dt)
	if len(loops) != 4 {
		t.Fatalf("found %d loops, want 4", len(loops))
	}
	depths := map[int]int{}
	for _, l := range loops {
		depths[l.Depth]++
	}
	if depths[1] != 2 || depths[2] != 1 || depths[3] != 1 {
		t.Errorf("loop depth histogram = %v, want 2 at depth 1, 1 at 2, 1 at 3", depths)
	}
	if MaxLoopDepth(fn) != 3 {
		t.Errorf("MaxLoopDepth = %d, want 3", MaxLoopDepth(fn))
	}
}

// TestCFGLoopsMatchASTLoops is the cross-check property: every natural
// loop detected in the CFG corresponds to a for/while statement, and every
// loop statement yields exactly one natural loop.
func TestCFGLoopsMatchASTLoops(t *testing.T) {
	src := `
func work(n) {
	var s = 0;
	for (var i = 0; i < n; i = i + 1) {
		if (i % 3 == 0) {
			for (var j = 0; j < i; j = j + 1) { s = s + j; }
		} else {
			while (s > 10) { s = s - 2; }
		}
	}
	return s;
}
func main() {
	var total = 0;
	for (var k = 0; k < 4; k = k + 1) { total = total + work(k); }
}`
	prog, err := minilang.Parse("t.mp", src)
	if err != nil {
		t.Fatal(err)
	}
	for _, fd := range prog.Funcs {
		fn := Lower(fd)
		dt := ComputeDominators(fn)
		loops := FindLoops(fn, dt)

		astLoops := countASTLoops(fd.Body)
		if len(loops) != astLoops {
			t.Errorf("%s: %d natural loops, %d AST loops", fd.Name, len(loops), astLoops)
		}
		for _, l := range loops {
			if l.Node == nil {
				t.Errorf("%s: natural loop with header %d has no AST node", fd.Name, l.Header.ID)
			}
		}
	}
}

func countASTLoops(b *minilang.Block) int {
	n := 0
	var walk func(s minilang.Stmt)
	walk = func(s minilang.Stmt) {
		switch st := s.(type) {
		case *minilang.ForStmt:
			n++
			walk(st.Body)
		case *minilang.WhileStmt:
			n++
			walk(st.Body)
		case *minilang.IfStmt:
			walk(st.Then)
			if st.Else != nil {
				walk(st.Else)
			}
		case *minilang.Block:
			for _, inner := range st.Stmts {
				walk(inner)
			}
		}
	}
	for _, s := range b.Stmts {
		walk(s)
	}
	return n
}

func TestInstrKinds(t *testing.T) {
	prog, err := minilang.Parse("t.mp", `
func helper(x) { return x; }
func main() {
	compute(1, 1, 1, 64);
	mpi_barrier();
	helper(3);
	var f = &helper;
	f(4);
	var y = sqrt(16);
}`)
	if err != nil {
		t.Fatal(err)
	}
	fn := Lower(prog.Func("main"))
	counts := map[Op]int{}
	for _, b := range fn.Blocks {
		for _, in := range b.Instrs {
			counts[in.Op]++
		}
	}
	if counts[OpCompute] != 1 || counts[OpMPI] != 1 || counts[OpCall] != 1 || counts[OpIndirectCall] != 1 {
		t.Errorf("instruction counts = %v", counts)
	}
	// sqrt folds into OpEval; two var decls + one eval = 3 OpEval minimum.
	if counts[OpEval] < 2 {
		t.Errorf("too few OpEval: %v", counts)
	}
}

func TestCallGraph(t *testing.T) {
	prog, err := minilang.Parse("t.mp", `
func leaf() { return 1; }
func middle() { return leaf() + leaf(); }
func recursive(n) { if (n > 0) { return recursive(n - 1); } return 0; }
func mutualA(n) { if (n > 0) { return mutualB(n - 1); } return 0; }
func mutualB(n) { return mutualA(n); }
func unreached() { return leaf(); }
func main() {
	middle();
	recursive(3);
	mutualA(2);
}`)
	if err != nil {
		t.Fatal(err)
	}
	cg := BuildCallGraph(prog, nil)
	if got := cg.Callees["middle"]; len(got) != 1 || got[0] != "leaf" {
		t.Errorf("middle callees = %v", got)
	}
	if !cg.Recursive("recursive") {
		t.Error("recursive not detected as recursive")
	}
	if !cg.Recursive("mutualA") || !cg.Recursive("mutualB") {
		t.Error("mutual recursion not detected")
	}
	if cg.Recursive("leaf") || cg.Recursive("main") {
		t.Error("false positives in recursion detection")
	}
	order, err := cg.TopDownOrder()
	if err != nil {
		t.Fatal(err)
	}
	if order[0] != "main" {
		t.Errorf("order starts with %q", order[0])
	}
	for _, f := range order {
		if f == "unreached" {
			t.Error("unreached function in top-down order")
		}
	}
	pos := map[string]int{}
	for i, f := range order {
		pos[f] = i
	}
	if pos["middle"] > pos["leaf"] {
		// BFS from main: middle is discovered before leaf.
		t.Errorf("BFS order wrong: %v", order)
	}
}

func TestCallSitesRecorded(t *testing.T) {
	prog, err := minilang.Parse("t.mp", `
func f() { return 0; }
func main() { f(); f(); var g = &f; g(); }`)
	if err != nil {
		t.Fatal(err)
	}
	cg := BuildCallGraph(prog, nil)
	if len(cg.Sites["main"]) != 3 {
		t.Errorf("main has %d call sites, want 3", len(cg.Sites["main"]))
	}
	if len(cg.IndirectSites) != 1 {
		t.Errorf("%d indirect sites, want 1", len(cg.IndirectSites))
	}
}

func TestNumInstrs(t *testing.T) {
	fn := lowerMain(t, `func main() { var a = 1; var b = 2; var c = a + b; }`)
	if fn.NumInstrs() != 3 {
		t.Errorf("NumInstrs = %d, want 3", fn.NumInstrs())
	}
}
