package ir

import (
	"sort"

	"scalana/internal/minilang"
)

// Loop is one natural loop found in a function's CFG.
type Loop struct {
	Header *Block
	Blocks map[int]*Block // all blocks in the loop, by ID (includes header)
	Parent *Loop          // enclosing loop, nil for top level
	Depth  int            // 1 for outermost

	// Node is the syntactic loop statement that produced the header, when
	// the header carries one. All MiniMP loops are reducible and produced by
	// for/while, so this is always set; tests assert the CFG-detected loop
	// set exactly matches the AST loop set.
	Node minilang.Node
}

// FindLoops detects all natural loops of fn: for each back edge n->h where
// h dominates n, the loop body is h plus every block that reaches n without
// passing through h. Loops sharing a header are merged. The returned slice
// is ordered outermost-first (by depth, then header ID) and nesting links
// are populated.
func FindLoops(fn *Func, dt *DomTree) []*Loop {
	byHeader := map[int]*Loop{}
	for _, b := range fn.Blocks {
		if !dt.Reachable(b.ID) {
			continue
		}
		for _, succ := range b.Succs {
			if !dt.Dominates(succ.ID, b.ID) {
				continue // not a back edge
			}
			l := byHeader[succ.ID]
			if l == nil {
				l = &Loop{Header: succ, Blocks: map[int]*Block{succ.ID: succ}, Node: succ.LoopNode}
				byHeader[succ.ID] = l
			}
			// Collect the body by walking predecessors from the latch.
			stack := []*Block{b}
			for len(stack) > 0 {
				x := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				if _, ok := l.Blocks[x.ID]; ok {
					continue
				}
				l.Blocks[x.ID] = x
				for _, p := range x.Preds {
					if dt.Reachable(p.ID) {
						stack = append(stack, p)
					}
				}
			}
		}
	}

	headers := make([]int, 0, len(byHeader))
	for h := range byHeader {
		headers = append(headers, h)
	}
	sort.Ints(headers)
	loops := make([]*Loop, 0, len(headers))
	for _, h := range headers {
		loops = append(loops, byHeader[h])
	}
	// Establish nesting: the parent of l is the smallest loop that strictly
	// contains l's header and is not l itself.
	for _, l := range loops {
		var best *Loop
		for _, m := range loops {
			if m == l {
				continue
			}
			if _, ok := m.Blocks[l.Header.ID]; !ok {
				continue
			}
			if best == nil || len(m.Blocks) < len(best.Blocks) {
				best = m
			}
		}
		l.Parent = best
	}
	for _, l := range loops {
		d := 1
		for p := l.Parent; p != nil; p = p.Parent {
			d++
		}
		l.Depth = d
	}
	sort.Slice(loops, func(i, j int) bool {
		if loops[i].Depth != loops[j].Depth {
			return loops[i].Depth < loops[j].Depth
		}
		return loops[i].Header.ID < loops[j].Header.ID
	})
	return loops
}

// MaxLoopDepth returns the deepest loop nesting level in fn (0 if loop-free).
func MaxLoopDepth(fn *Func) int {
	dt := ComputeDominators(fn)
	maxd := 0
	for _, l := range FindLoops(fn, dt) {
		if l.Depth > maxd {
			maxd = l.Depth
		}
	}
	return maxd
}
