// Package ppg assembles the Program Performance Graph (paper §III-C): the
// per-process PSG is replicated across all ranks, each vertex carries the
// performance vector profiling collected on that rank, and inter-process
// communication dependence edges connect the vertices that waited to the
// vertices that kept them waiting.
//
// Storage is columnar (ISSUE 2, DESIGN.md §7): all per-vertex, per-rank
// performance vectors live in one contiguous block indexed
// [int(vid)*NP + rank], one allocation per scale instead of one map row
// per vertex, and dependence edges are keyed by interned psg.VID.
package ppg

import (
	"fmt"
	"sort"

	"scalana/internal/machine"
	"scalana/internal/par"
	"scalana/internal/prof"
	"scalana/internal/psg"
)

// EdgeFrom addresses the waiting side of a dependence edge: one vertex on
// one rank.
type EdgeFrom struct {
	VID  psg.VID
	Rank int
}

// DepEdge is one aggregated inter-process dependence edge: operations at
// (VID, Rank) waited TotalWait seconds in total on PeerRank, whose
// responsible code was PeerVID.
type DepEdge struct {
	PeerRank   int
	PeerVID    psg.VID
	Op         string
	Count      int64
	Bytes      float64
	TotalWait  float64
	MaxWait    float64
	Collective bool
}

// Graph is a Program Performance Graph for one job scale.
type Graph struct {
	PSG *psg.Graph
	NP  int
	// Perf is the columnar performance block: the vector profiling
	// collected for vertex vid on rank r is Perf[int(vid)*NP + r],
	// zero-valued where the rank never sampled the vertex. Use PerfAt /
	// TimeSeries / PMUSeries unless iterating the whole block.
	Perf []prof.PerfData
	// present[vid] records whether any rank attributed data to vid — the
	// equivalent of key presence in the old per-vertex map.
	present []bool
	// Edges holds inter-process dependence edges grouped by waiting side.
	Edges map[EdgeFrom][]*DepEdge
	// RankTime is each rank's total sampled time.
	RankTime []float64
	// Storage is the summed profile storage across ranks (bytes).
	Storage int64
}

// keyOf renders a VID through a symbol-table snapshot, with psg.VIDNone
// (and anything else out of range) as the empty string — the exact string
// the pre-VID representation stored for "no responsible vertex".
func keyOf(keys []string, vid psg.VID) string {
	if int(vid) >= len(keys) {
		return ""
	}
	return keys[vid]
}

// commKeyLess totally orders communication records so per-rank float
// aggregation happens in a reproducible order. The order is the string
// order of the interned keys, not VID order, so graphs assembled by this
// build sum floats in exactly the sequence the pre-VID build used.
func commKeyLess(keys []string, a, b prof.CommKey) bool {
	if ak, bk := keyOf(keys, a.VID), keyOf(keys, b.VID); ak != bk {
		return ak < bk
	}
	if a.Op != b.Op {
		return a.Op < b.Op
	}
	if a.DepRank != b.DepRank {
		return a.DepRank < b.DepRank
	}
	if ad, bd := keyOf(keys, a.DepVID), keyOf(keys, b.DepVID); ad != bd {
		return ad < bd
	}
	if a.Tag != b.Tag {
		return a.Tag < b.Tag
	}
	if a.Bytes != b.Bytes {
		return a.Bytes < b.Bytes
	}
	return !a.Collective && b.Collective
}

// rankPart is one rank's independently-computed contribution to the
// graph, produced by the parallel phase of Build. Edges live in one
// arena per rank (edgeVals) with per-bucket views sliced out of one
// pointer arena — no per-edge or per-bucket allocation.
type rankPart struct {
	storage  int64
	time     float64
	edgeVals []DepEdge
	froms    []EdgeFrom
	buckets  [][]*DepEdge
}

// Build assembles the PPG from the PSG and all rank profiles.
//
// Per-rank aggregation (storage sizing, rank time, dependence-edge
// compression) runs on a CPU-bounded worker pool; every rank writes only
// rank-owned state, and the cross-rank merge happens serially in rank
// order, so the assembled graph is identical to a serial build. Edge
// buckets are keyed by (vertex, rank) and therefore never shared between
// ranks; their final order comes from the deterministic sort below.
func Build(g *psg.Graph, profiles []*prof.RankProfile) (*Graph, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("ppg: no profiles")
	}
	np := profiles[0].NP
	if len(profiles) != np {
		return nil, fmt.Errorf("ppg: got %d profiles for np=%d", len(profiles), np)
	}
	seen := make([]bool, np)
	for _, rp := range profiles {
		if rp.NP != np {
			return nil, fmt.Errorf("ppg: profile for rank %d has np=%d, want %d", rp.Rank, rp.NP, np)
		}
		if rp.Rank < 0 || rp.Rank >= np {
			return nil, fmt.Errorf("ppg: profile rank %d out of range", rp.Rank)
		}
		if seen[rp.Rank] {
			return nil, fmt.Errorf("ppg: duplicate profile for rank %d", rp.Rank)
		}
		seen[rp.Rank] = true
	}
	nv := g.NumVIDs()
	for _, rp := range profiles {
		// VIDs are dense per graph instance: a profile collected against a
		// different graph would attribute every sample to the wrong vertex
		// without this check (string keys were immune to that mixup).
		if rp.Graph != nil && rp.Graph != g {
			return nil, fmt.Errorf("ppg: profile for rank %d was collected against a different graph", rp.Rank)
		}
		if len(rp.Vertex) > nv {
			return nil, fmt.Errorf("ppg: profile for rank %d indexes %d vertices, symbol table has %d", rp.Rank, len(rp.Vertex), nv)
		}
	}
	pg := &Graph{
		PSG:      g,
		NP:       np,
		Perf:     make([]prof.PerfData, nv*np), // ONE block for the whole scale
		present:  make([]bool, nv),
		RankTime: make([]float64, np),
	}

	// One symbol-table snapshot plus one key-sorted VID order for the
	// whole build; the pre-VID build sorted key strings once per rank.
	keys := g.Keys()
	order := make([]psg.VID, nv)
	for i := range order {
		order[i] = psg.VID(i)
	}
	sort.Slice(order, func(a, b int) bool { return keys[order[a]] < keys[order[b]] })

	parts := make([]rankPart, len(profiles))
	par.ForEach(len(profiles), 0, func(i int) {
		rp := profiles[i]
		part := rankPart{storage: rp.StorageBytes()}
		// Floating-point sums must not depend on storage order, or
		// "identical profiles in, identical graph out" breaks in the last
		// ulp: reduce in the fixed key-sorted order.
		for _, vid := range order {
			if pd := rp.PerfAt(vid); pd != nil {
				part.time += pd.Time
			}
		}
		// Aggregate dependence edges per (vertex, peer rank, peer vertex),
		// again in a fixed record order for the same reason. The sort key
		// starts with exactly the aggregation fields — vertex, op, peer
		// rank, peer vertex — so records of one aggregated edge form a
		// contiguous run and records of one waiting vertex form a
		// contiguous run of runs: aggregation is a linear scan into a
		// per-rank arena, and each (vertex, rank) bucket is a subslice of
		// one pointer arena.
		ckeys := make([]prof.CommKey, 0, len(rp.Comm))
		for key := range rp.Comm {
			ckeys = append(ckeys, key)
		}
		sort.Slice(ckeys, func(a, b int) bool { return commKeyLess(keys, ckeys[a], ckeys[b]) })
		part.edgeVals = make([]DepEdge, 0, len(ckeys))
		edgeFrom := make([]psg.VID, 0, len(ckeys)) // waiting vertex per arena slot
		var lastKey prof.CommKey
		for _, ck := range ckeys {
			rec := rp.Comm[ck]
			if rec.DepRank < 0 {
				continue
			}
			n := len(part.edgeVals)
			if n == 0 || lastKey.VID != rec.VID || lastKey.Op != rec.Op ||
				lastKey.DepRank != rec.DepRank || lastKey.DepVID != rec.DepVID {
				part.edgeVals = append(part.edgeVals, DepEdge{
					PeerRank: rec.DepRank, PeerVID: rec.DepVID, Op: rec.Op, Collective: rec.Collective,
				})
				edgeFrom = append(edgeFrom, rec.VID)
				n++
			}
			lastKey = ck
			e := &part.edgeVals[n-1]
			e.Count += rec.Count
			e.Bytes += rec.Bytes * float64(rec.Count)
			e.TotalWait += rec.TotalWait
			if rec.MaxWait > e.MaxWait {
				e.MaxWait = rec.MaxWait
			}
		}
		ptrs := make([]*DepEdge, len(part.edgeVals))
		for j := range part.edgeVals {
			ptrs[j] = &part.edgeVals[j]
		}
		for start := 0; start < len(ptrs); {
			end := start + 1
			for end < len(ptrs) && edgeFrom[end] == edgeFrom[start] {
				end++
			}
			part.froms = append(part.froms, EdgeFrom{VID: edgeFrom[start], Rank: rp.Rank})
			part.buckets = append(part.buckets, ptrs[start:end:end])
			start = end
		}
		parts[i] = part
	})

	// Serial merge in rank order: presence union, storage and time
	// reductions, edge bucket splicing.
	nBuckets := 0
	for i := range parts {
		nBuckets += len(parts[i].froms)
	}
	pg.Edges = make(map[EdgeFrom][]*DepEdge, nBuckets)
	for i, rp := range profiles {
		for vid := range rp.Vertex {
			if !pg.present[vid] && rp.Vertex[vid].Active() {
				pg.present[vid] = true
			}
		}
		pg.Storage += parts[i].storage
		pg.RankTime[rp.Rank] = parts[i].time
		for j, from := range parts[i].froms {
			pg.Edges[from] = parts[i].buckets[j]
		}
	}
	// Column filling touches disjoint rank slots of the one pre-allocated
	// block, so it fans out too.
	par.ForEach(len(profiles), 0, func(i int) {
		rp := profiles[i]
		for vid := range rp.Vertex {
			pg.Perf[vid*np+rp.Rank] = rp.Vertex[vid]
		}
	})

	// Deterministic edge ordering: heaviest wait first, with a total
	// tiebreak (on interned key strings, matching the pre-VID order) so
	// equal-wait edges order identically on every build.
	for from, edges := range pg.Edges {
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].TotalWait != edges[j].TotalWait {
				return edges[i].TotalWait > edges[j].TotalWait
			}
			if edges[i].PeerRank != edges[j].PeerRank {
				return edges[i].PeerRank < edges[j].PeerRank
			}
			if ik, jk := keyOf(keys, edges[i].PeerVID), keyOf(keys, edges[j].PeerVID); ik != jk {
				return ik < jk
			}
			return edges[i].Op < edges[j].Op
		})
		pg.Edges[from] = edges
	}
	return pg, nil
}

// NumVIDs returns the size of the symbol table this graph's columnar
// block is laid out for.
func (pg *Graph) NumVIDs() int { return len(pg.present) }

// Present reports whether any rank attributed performance data to the
// vertex.
func (pg *Graph) Present(vid psg.VID) bool {
	return int(vid) < len(pg.present) && pg.present[vid]
}

// PresentVIDs returns, in ascending VID order, the vertices at least one
// rank attributed data to.
func (pg *Graph) PresentVIDs() []psg.VID {
	var out []psg.VID
	for vid, ok := range pg.present {
		if ok {
			out = append(out, psg.VID(vid))
		}
	}
	return out
}

// PerfAt returns the performance vector of one vertex on one rank (the
// zero value when never sampled or out of range).
func (pg *Graph) PerfAt(vid psg.VID, rank int) prof.PerfData {
	if int(vid) >= pg.NumVIDs() || rank < 0 || rank >= pg.NP {
		return prof.PerfData{}
	}
	return pg.Perf[int(vid)*pg.NP+rank]
}

// row returns the contiguous per-rank slice of one vertex, or nil when
// the VID is out of range.
func (pg *Graph) row(vid psg.VID) []prof.PerfData {
	if int(vid) >= pg.NumVIDs() {
		return nil
	}
	return pg.Perf[int(vid)*pg.NP : (int(vid)+1)*pg.NP]
}

// TimeSeries returns the per-rank sampled time of one vertex (length NP,
// zeros where the vertex never ran).
func (pg *Graph) TimeSeries(vid psg.VID) []float64 {
	out := make([]float64, pg.NP)
	for r, pd := range pg.row(vid) {
		out[r] = pd.Time
	}
	return out
}

// PMUSeries returns one counter's per-rank values for a vertex (the data
// behind the paper's Figs. 15 and 16).
func (pg *Graph) PMUSeries(vid psg.VID, c machine.Counter) []float64 {
	out := make([]float64, pg.NP)
	for r, pd := range pg.row(vid) {
		out[r] = pd.PMU[c]
	}
	return out
}

// TotalTime is the summed sampled time across ranks.
func (pg *Graph) TotalTime() float64 {
	var s float64
	for _, t := range pg.RankTime {
		s += t
	}
	return s
}

// BestEdge returns the dominant dependence edge out of (vid, rank): the
// one with the largest total waiting time, or nil. When pruneWaitless is
// set, edges whose waiting time never exceeded waitEps are ignored —
// the paper's search-space pruning ("we only preserve the communication
// dependence edge if a waiting event exists").
func (pg *Graph) BestEdge(vid psg.VID, rank int, pruneWaitless bool, waitEps float64) *DepEdge {
	edges := pg.Edges[EdgeFrom{VID: vid, Rank: rank}]
	for _, e := range edges {
		if pruneWaitless && e.MaxWait < waitEps {
			continue
		}
		return e // edges are sorted by TotalWait descending
	}
	return nil
}

// NumEdges counts all dependence edges (testing/reporting aid).
func (pg *Graph) NumEdges() int {
	n := 0
	for _, es := range pg.Edges {
		n += len(es)
	}
	return n
}
