// Package ppg assembles the Program Performance Graph (paper §III-C): the
// per-process PSG is replicated across all ranks, each vertex carries the
// performance vector profiling collected on that rank, and inter-process
// communication dependence edges connect the vertices that waited to the
// vertices that kept them waiting.
package ppg

import (
	"fmt"
	"sort"

	"scalana/internal/machine"
	"scalana/internal/prof"
	"scalana/internal/psg"
)

// EdgeFrom addresses the waiting side of a dependence edge: one vertex on
// one rank.
type EdgeFrom struct {
	VertexKey string
	Rank      int
}

// DepEdge is one aggregated inter-process dependence edge: operations at
// (VertexKey, Rank) waited TotalWait seconds in total on PeerRank, whose
// responsible code was PeerVertexKey.
type DepEdge struct {
	PeerRank      int
	PeerVertexKey string
	Op            string
	Count         int64
	Bytes         float64
	TotalWait     float64
	MaxWait       float64
	Collective    bool
}

// Graph is a Program Performance Graph for one job scale.
type Graph struct {
	PSG *psg.Graph
	NP  int
	// Perf holds per-vertex, per-rank performance vectors; slices have
	// length NP and are zero-valued where a rank never sampled the vertex.
	Perf map[string][]prof.PerfData
	// Edges holds inter-process dependence edges grouped by waiting side.
	Edges map[EdgeFrom][]*DepEdge
	// RankTime is each rank's total sampled time.
	RankTime []float64
	// Storage is the summed profile storage across ranks (bytes).
	Storage int64
}

// Build assembles the PPG from the PSG and all rank profiles.
func Build(g *psg.Graph, profiles []*prof.RankProfile) (*Graph, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("ppg: no profiles")
	}
	np := profiles[0].NP
	if len(profiles) != np {
		return nil, fmt.Errorf("ppg: got %d profiles for np=%d", len(profiles), np)
	}
	pg := &Graph{
		PSG:      g,
		NP:       np,
		Perf:     map[string][]prof.PerfData{},
		Edges:    map[EdgeFrom][]*DepEdge{},
		RankTime: make([]float64, np),
	}
	for _, rp := range profiles {
		if rp.NP != np {
			return nil, fmt.Errorf("ppg: profile for rank %d has np=%d, want %d", rp.Rank, rp.NP, np)
		}
		if rp.Rank < 0 || rp.Rank >= np {
			return nil, fmt.Errorf("ppg: profile rank %d out of range", rp.Rank)
		}
		pg.Storage += rp.StorageBytes()
		for key, pd := range rp.Vertex {
			row := pg.Perf[key]
			if row == nil {
				row = make([]prof.PerfData, np)
				pg.Perf[key] = row
			}
			row[rp.Rank] = *pd
			pg.RankTime[rp.Rank] += pd.Time
		}
		// Aggregate dependence edges per (vertex, peer rank, peer vertex).
		type aggKey struct {
			from EdgeFrom
			peer int
			pkey string
			op   string
		}
		agg := map[aggKey]*DepEdge{}
		for _, rec := range rp.Comm {
			if rec.DepRank < 0 {
				continue
			}
			k := aggKey{
				from: EdgeFrom{VertexKey: rec.VertexKey, Rank: rp.Rank},
				peer: rec.DepRank,
				pkey: rec.DepVertex,
				op:   rec.Op,
			}
			e := agg[k]
			if e == nil {
				e = &DepEdge{PeerRank: rec.DepRank, PeerVertexKey: rec.DepVertex, Op: rec.Op, Collective: rec.Collective}
				agg[k] = e
			}
			e.Count += rec.Count
			e.Bytes += rec.Bytes * float64(rec.Count)
			e.TotalWait += rec.TotalWait
			if rec.MaxWait > e.MaxWait {
				e.MaxWait = rec.MaxWait
			}
		}
		for k, e := range agg {
			pg.Edges[k.from] = append(pg.Edges[k.from], e)
		}
	}
	// Deterministic edge ordering: heaviest wait first.
	for from, edges := range pg.Edges {
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].TotalWait != edges[j].TotalWait {
				return edges[i].TotalWait > edges[j].TotalWait
			}
			if edges[i].PeerRank != edges[j].PeerRank {
				return edges[i].PeerRank < edges[j].PeerRank
			}
			return edges[i].PeerVertexKey < edges[j].PeerVertexKey
		})
		pg.Edges[from] = edges
	}
	return pg, nil
}

// TimeSeries returns the per-rank sampled time of one vertex (length NP,
// zeros where the vertex never ran).
func (pg *Graph) TimeSeries(key string) []float64 {
	out := make([]float64, pg.NP)
	if row, ok := pg.Perf[key]; ok {
		for r := range row {
			out[r] = row[r].Time
		}
	}
	return out
}

// PMUSeries returns one counter's per-rank values for a vertex (the data
// behind the paper's Figs. 15 and 16).
func (pg *Graph) PMUSeries(key string, c machine.Counter) []float64 {
	out := make([]float64, pg.NP)
	if row, ok := pg.Perf[key]; ok {
		for r := range row {
			out[r] = row[r].PMU[c]
		}
	}
	return out
}

// TotalTime is the summed sampled time across ranks.
func (pg *Graph) TotalTime() float64 {
	var s float64
	for _, t := range pg.RankTime {
		s += t
	}
	return s
}

// BestEdge returns the dominant dependence edge out of (key, rank): the
// one with the largest total waiting time, or nil. When pruneWaitless is
// set, edges whose waiting time never exceeded waitEps are ignored —
// the paper's search-space pruning ("we only preserve the communication
// dependence edge if a waiting event exists").
func (pg *Graph) BestEdge(key string, rank int, pruneWaitless bool, waitEps float64) *DepEdge {
	edges := pg.Edges[EdgeFrom{VertexKey: key, Rank: rank}]
	for _, e := range edges {
		if pruneWaitless && e.MaxWait < waitEps {
			continue
		}
		return e // edges are sorted by TotalWait descending
	}
	return nil
}

// NumEdges counts all dependence edges (testing/reporting aid).
func (pg *Graph) NumEdges() int {
	n := 0
	for _, es := range pg.Edges {
		n += len(es)
	}
	return n
}
