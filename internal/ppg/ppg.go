// Package ppg assembles the Program Performance Graph (paper §III-C): the
// per-process PSG is replicated across all ranks, each vertex carries the
// performance vector profiling collected on that rank, and inter-process
// communication dependence edges connect the vertices that waited to the
// vertices that kept them waiting.
package ppg

import (
	"fmt"
	"sort"

	"scalana/internal/machine"
	"scalana/internal/par"
	"scalana/internal/prof"
	"scalana/internal/psg"
)

// EdgeFrom addresses the waiting side of a dependence edge: one vertex on
// one rank.
type EdgeFrom struct {
	VertexKey string
	Rank      int
}

// DepEdge is one aggregated inter-process dependence edge: operations at
// (VertexKey, Rank) waited TotalWait seconds in total on PeerRank, whose
// responsible code was PeerVertexKey.
type DepEdge struct {
	PeerRank      int
	PeerVertexKey string
	Op            string
	Count         int64
	Bytes         float64
	TotalWait     float64
	MaxWait       float64
	Collective    bool
}

// Graph is a Program Performance Graph for one job scale.
type Graph struct {
	PSG *psg.Graph
	NP  int
	// Perf holds per-vertex, per-rank performance vectors; slices have
	// length NP and are zero-valued where a rank never sampled the vertex.
	Perf map[string][]prof.PerfData
	// Edges holds inter-process dependence edges grouped by waiting side.
	Edges map[EdgeFrom][]*DepEdge
	// RankTime is each rank's total sampled time.
	RankTime []float64
	// Storage is the summed profile storage across ranks (bytes).
	Storage int64
}

// commKeyLess totally orders communication records so per-rank float
// aggregation happens in a reproducible order.
func commKeyLess(a, b prof.CommKey) bool {
	if a.VertexKey != b.VertexKey {
		return a.VertexKey < b.VertexKey
	}
	if a.Op != b.Op {
		return a.Op < b.Op
	}
	if a.DepRank != b.DepRank {
		return a.DepRank < b.DepRank
	}
	if a.DepVertex != b.DepVertex {
		return a.DepVertex < b.DepVertex
	}
	if a.Tag != b.Tag {
		return a.Tag < b.Tag
	}
	if a.Bytes != b.Bytes {
		return a.Bytes < b.Bytes
	}
	return !a.Collective && b.Collective
}

// rankPart is one rank's independently-computed contribution to the
// graph, produced by the parallel phase of Build.
type rankPart struct {
	storage int64
	time    float64
	edges   map[EdgeFrom][]*DepEdge
}

// Build assembles the PPG from the PSG and all rank profiles.
//
// Per-rank aggregation (storage sizing, rank time, dependence-edge
// compression) runs on a CPU-bounded worker pool; every rank writes only
// rank-owned state, and the cross-rank merge happens serially in rank
// order, so the assembled graph is identical to a serial build. Edge
// buckets are keyed by (vertex, rank) and therefore never shared between
// ranks; their final order comes from the deterministic sort below.
func Build(g *psg.Graph, profiles []*prof.RankProfile) (*Graph, error) {
	if len(profiles) == 0 {
		return nil, fmt.Errorf("ppg: no profiles")
	}
	np := profiles[0].NP
	if len(profiles) != np {
		return nil, fmt.Errorf("ppg: got %d profiles for np=%d", len(profiles), np)
	}
	seen := make([]bool, np)
	for _, rp := range profiles {
		if rp.NP != np {
			return nil, fmt.Errorf("ppg: profile for rank %d has np=%d, want %d", rp.Rank, rp.NP, np)
		}
		if rp.Rank < 0 || rp.Rank >= np {
			return nil, fmt.Errorf("ppg: profile rank %d out of range", rp.Rank)
		}
		if seen[rp.Rank] {
			return nil, fmt.Errorf("ppg: duplicate profile for rank %d", rp.Rank)
		}
		seen[rp.Rank] = true
	}
	pg := &Graph{
		PSG:      g,
		NP:       np,
		Perf:     map[string][]prof.PerfData{},
		Edges:    map[EdgeFrom][]*DepEdge{},
		RankTime: make([]float64, np),
	}

	parts := make([]rankPart, len(profiles))
	par.ForEach(len(profiles), 0, func(i int) {
		rp := profiles[i]
		part := rankPart{storage: rp.StorageBytes()}
		// Floating-point sums must not depend on Go map iteration order,
		// or "identical profiles in, identical graph out" breaks in the
		// last ulp: fix the reduction order by sorting keys first.
		vkeys := make([]string, 0, len(rp.Vertex))
		for key := range rp.Vertex {
			vkeys = append(vkeys, key)
		}
		sort.Strings(vkeys)
		for _, key := range vkeys {
			part.time += rp.Vertex[key].Time
		}
		// Aggregate dependence edges per (vertex, peer rank, peer vertex),
		// again in a fixed record order for the same reason.
		type aggKey struct {
			from EdgeFrom
			peer int
			pkey string
			op   string
		}
		ckeys := make([]prof.CommKey, 0, len(rp.Comm))
		for key := range rp.Comm {
			ckeys = append(ckeys, key)
		}
		sort.Slice(ckeys, func(a, b int) bool { return commKeyLess(ckeys[a], ckeys[b]) })
		agg := map[aggKey]*DepEdge{}
		for _, ck := range ckeys {
			rec := rp.Comm[ck]
			if rec.DepRank < 0 {
				continue
			}
			k := aggKey{
				from: EdgeFrom{VertexKey: rec.VertexKey, Rank: rp.Rank},
				peer: rec.DepRank,
				pkey: rec.DepVertex,
				op:   rec.Op,
			}
			e := agg[k]
			if e == nil {
				e = &DepEdge{PeerRank: rec.DepRank, PeerVertexKey: rec.DepVertex, Op: rec.Op, Collective: rec.Collective}
				agg[k] = e
			}
			e.Count += rec.Count
			e.Bytes += rec.Bytes * float64(rec.Count)
			e.TotalWait += rec.TotalWait
			if rec.MaxWait > e.MaxWait {
				e.MaxWait = rec.MaxWait
			}
		}
		part.edges = map[EdgeFrom][]*DepEdge{}
		for k, e := range agg {
			part.edges[k.from] = append(part.edges[k.from], e)
		}
		parts[i] = part
	})

	// Serial merge in rank order: allocate the union of performance rows,
	// then splice in each rank's part.
	for i, rp := range profiles {
		for key := range rp.Vertex {
			if pg.Perf[key] == nil {
				pg.Perf[key] = make([]prof.PerfData, np)
			}
		}
		pg.Storage += parts[i].storage
		pg.RankTime[rp.Rank] = parts[i].time
		for from, es := range parts[i].edges {
			pg.Edges[from] = es
		}
	}
	// Row filling touches disjoint rank slots of pre-allocated rows (map
	// reads only), so it fans out too.
	par.ForEach(len(profiles), 0, func(i int) {
		rp := profiles[i]
		for key, pd := range rp.Vertex {
			pg.Perf[key][rp.Rank] = *pd
		}
	})

	// Deterministic edge ordering: heaviest wait first, with a total
	// tiebreak so equal-wait edges order identically on every build.
	for from, edges := range pg.Edges {
		sort.Slice(edges, func(i, j int) bool {
			if edges[i].TotalWait != edges[j].TotalWait {
				return edges[i].TotalWait > edges[j].TotalWait
			}
			if edges[i].PeerRank != edges[j].PeerRank {
				return edges[i].PeerRank < edges[j].PeerRank
			}
			if edges[i].PeerVertexKey != edges[j].PeerVertexKey {
				return edges[i].PeerVertexKey < edges[j].PeerVertexKey
			}
			return edges[i].Op < edges[j].Op
		})
		pg.Edges[from] = edges
	}
	return pg, nil
}

// TimeSeries returns the per-rank sampled time of one vertex (length NP,
// zeros where the vertex never ran).
func (pg *Graph) TimeSeries(key string) []float64 {
	out := make([]float64, pg.NP)
	if row, ok := pg.Perf[key]; ok {
		for r := range row {
			out[r] = row[r].Time
		}
	}
	return out
}

// PMUSeries returns one counter's per-rank values for a vertex (the data
// behind the paper's Figs. 15 and 16).
func (pg *Graph) PMUSeries(key string, c machine.Counter) []float64 {
	out := make([]float64, pg.NP)
	if row, ok := pg.Perf[key]; ok {
		for r := range row {
			out[r] = row[r].PMU[c]
		}
	}
	return out
}

// TotalTime is the summed sampled time across ranks.
func (pg *Graph) TotalTime() float64 {
	var s float64
	for _, t := range pg.RankTime {
		s += t
	}
	return s
}

// BestEdge returns the dominant dependence edge out of (key, rank): the
// one with the largest total waiting time, or nil. When pruneWaitless is
// set, edges whose waiting time never exceeded waitEps are ignored —
// the paper's search-space pruning ("we only preserve the communication
// dependence edge if a waiting event exists").
func (pg *Graph) BestEdge(key string, rank int, pruneWaitless bool, waitEps float64) *DepEdge {
	edges := pg.Edges[EdgeFrom{VertexKey: key, Rank: rank}]
	for _, e := range edges {
		if pruneWaitless && e.MaxWait < waitEps {
			continue
		}
		return e // edges are sorted by TotalWait descending
	}
	return nil
}

// NumEdges counts all dependence edges (testing/reporting aid).
func (pg *Graph) NumEdges() int {
	n := 0
	for _, es := range pg.Edges {
		n += len(es)
	}
	return n
}
