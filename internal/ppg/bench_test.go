package ppg

import (
	"fmt"
	"strings"
	"testing"

	"scalana/internal/machine"
	"scalana/internal/minilang"
	"scalana/internal/mpisim"
	"scalana/internal/prof"
	"scalana/internal/psg"
)

// benchProfiles synthesizes np rank profiles against a PSG with nMPI MPI
// vertices by driving the real profiler hooks, so the profile shape (and
// its allocation behavior inside Build) matches production runs.
func benchProfiles(tb testing.TB, nMPI, np int) (*psg.Graph, []*prof.RankProfile) {
	tb.Helper()
	var sb strings.Builder
	sb.WriteString("func main() {\n")
	for i := 0; i < nMPI; i++ {
		fmt.Fprintf(&sb, "\tcompute(1e6, 1e4, 1e4, 4096);\n")
		fmt.Fprintf(&sb, "\tmpi_allreduce(%d);\n", 8*(i+1))
	}
	sb.WriteString("}\n")
	g := psg.MustBuild(minilang.MustParse("bench.mp", sb.String()))
	var mpis []*psg.Vertex
	for _, v := range g.Vertices {
		if v.Kind == psg.KindMPI {
			mpis = append(mpis, v)
		}
	}
	w := mpisim.NewWorld(mpisim.Config{NP: 1})
	p := w.Proc(0)
	profiles := make([]*prof.RankProfile, np)
	for r := 0; r < np; r++ {
		pr := prof.New(prof.DefaultConfig(), g, r, np)
		period := 1 / prof.DefaultConfig().SampleHz
		for i, v := range mpis {
			t0 := float64(i) * period
			pr.Advance(p, t0, t0+period, mpisim.AdvCompute, v, machine.Vec{100, 50, 10, 1, 5})
			pr.MPIEvent(p, &mpisim.Event{
				Kind: mpisim.EvRecv, Op: "mpi_recv", Rank: r, Peer: (r + 1) % np,
				Tag: i, Bytes: 1024, Wait: 1e-4, DepRank: (r + 1) % np, DepCtx: v, Ctx: v,
			})
		}
		profiles[r] = pr.Profile()
	}
	return g, profiles
}

// BenchmarkBuild measures PPG assembly; allocs/op is the headline the
// columnar-storage refactor targets (ISSUE 2, DESIGN.md §5).
func BenchmarkBuild(b *testing.B) {
	for _, np := range []int{8, 32} {
		b.Run(fmt.Sprintf("np=%d", np), func(b *testing.B) {
			g, profiles := benchProfiles(b, 32, np)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := Build(g, profiles); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// TestBuildAllocReduction pins the columnar-storage win (DESIGN.md §5):
// the pre-VID Build allocated one map row per vertex plus one DepEdge and
// one bucket slice per edge — 996 allocs for this np=8 workload. The
// columnar block plus per-rank edge arenas cut that by more than half.
// Allocation counts are deterministic, so this asserts cleanly even on a
// single-CPU runner where timing comparisons cannot.
func TestBuildAllocReduction(t *testing.T) {
	g, profiles := benchProfiles(t, 32, 8)
	allocs := testing.AllocsPerRun(20, func() {
		if _, err := Build(g, profiles); err != nil {
			t.Fatal(err)
		}
	})
	const preRefactor = 996
	if allocs >= preRefactor/2 {
		t.Errorf("ppg.Build allocates %.0f objects/op; want < %d (half the pre-interning count)", allocs, preRefactor/2)
	}
}
