package ppg

import (
	"testing"

	"scalana/internal/machine"
	"scalana/internal/minilang"
	"scalana/internal/prof"
	"scalana/internal/psg"
)

func testGraph(t *testing.T) *psg.Graph {
	t.Helper()
	prog := minilang.MustParse("t.mp", `
func main() {
	compute(1e6, 1e4, 1e4, 4096);
	mpi_allreduce(8);
}`)
	return psg.MustBuild(prog)
}

func mkProfile(rank, np int, g *psg.Graph, times []float64) *prof.RankProfile {
	rp := prof.NewRankProfile(g, rank, np)
	for i, v := range g.Root.Children {
		if i < len(times) {
			rp.Vertex[v.VID] = prof.PerfData{Time: times[i], Samples: int64(times[i] * 1000),
				PMU: machine.Vec{times[i] * 1e6, times[i] * 2e6, times[i] * 1e5, 0, 0}}
		}
	}
	return rp
}

func TestBuildBasics(t *testing.T) {
	g := testGraph(t)
	np := 3
	var profiles []*prof.RankProfile
	for r := 0; r < np; r++ {
		profiles = append(profiles, mkProfile(r, np, g, []float64{0.1 * float64(r+1), 0.05}))
	}
	pg, err := Build(g, profiles)
	if err != nil {
		t.Fatal(err)
	}
	comp := g.Root.Children[0]
	ts := pg.TimeSeries(comp.VID)
	if len(ts) != np || ts[0] != 0.1 || ts[2] < 0.3-1e-9 || ts[2] > 0.3+1e-9 {
		t.Errorf("time series = %v", ts)
	}
	pmu := pg.PMUSeries(comp.VID, machine.TotIns)
	if pmu[1] != 0.2*1e6 {
		t.Errorf("PMU series = %v", pmu)
	}
	wantTotal := (0.1 + 0.2 + 0.3) + 3*0.05
	if got := pg.TotalTime(); got < wantTotal-1e-9 || got > wantTotal+1e-9 {
		t.Errorf("total time = %g, want %g", got, wantTotal)
	}
	if pg.Storage <= 0 {
		t.Error("storage not accumulated")
	}
	if ts := pg.TimeSeries(psg.VID(1 << 30)); len(ts) != np {
		t.Errorf("missing vertex series length = %d", len(ts))
	}
}

func TestBuildEdgesAggregation(t *testing.T) {
	g := testGraph(t)
	mpiV := g.Root.Children[1]
	np := 2
	p0 := mkProfile(0, np, g, []float64{0.1, 0.05})
	key := prof.CommKey{VID: mpiV.VID, Op: "mpi_allreduce", DepRank: 1,
		DepVID: mpiV.VID, Bytes: 8, Collective: true}
	p0.Comm[key] = &prof.CommRecord{CommKey: key, Count: 10, TotalWait: 0.5, MaxWait: 0.1}
	// A second record with a different op but same peer aggregates into a
	// separate edge.
	key2 := key
	key2.Op = "mpi_barrier"
	p0.Comm[key2] = &prof.CommRecord{CommKey: key2, Count: 2, TotalWait: 0.01, MaxWait: 0.01}
	// Records without a dependence rank never become edges.
	key3 := key
	key3.DepRank = -1
	key3.Op = "mpi_isend"
	p0.Comm[key3] = &prof.CommRecord{CommKey: key3, Count: 5}
	p1 := mkProfile(1, np, g, []float64{0.1, 0.0})

	pg, err := Build(g, []*prof.RankProfile{p0, p1})
	if err != nil {
		t.Fatal(err)
	}
	edges := pg.Edges[EdgeFrom{VID: mpiV.VID, Rank: 0}]
	if len(edges) != 2 {
		t.Fatalf("%d edges, want 2", len(edges))
	}
	// Sorted by TotalWait descending.
	if edges[0].Op != "mpi_allreduce" || edges[0].TotalWait != 0.5 {
		t.Errorf("dominant edge = %+v", edges[0])
	}
	if pg.NumEdges() != 2 {
		t.Errorf("NumEdges = %d", pg.NumEdges())
	}

	best := pg.BestEdge(mpiV.VID, 0, true, 1e-6)
	if best == nil || best.Op != "mpi_allreduce" {
		t.Errorf("BestEdge = %+v", best)
	}
	// Prune threshold above MaxWait: allreduce pruned, barrier pruned too
	// (its max wait 0.01 < 0.05) -> nil.
	if e := pg.BestEdge(mpiV.VID, 0, true, 0.5); e != nil {
		t.Errorf("expected all edges pruned, got %+v", e)
	}
	// Unpruned returns the heaviest regardless.
	if e := pg.BestEdge(mpiV.VID, 0, false, 0.5); e == nil || e.Op != "mpi_allreduce" {
		t.Errorf("unpruned BestEdge = %+v", e)
	}
}

func TestBuildErrors(t *testing.T) {
	g := testGraph(t)
	if _, err := Build(g, nil); err == nil {
		t.Error("no profiles should error")
	}
	p0 := mkProfile(0, 2, g, []float64{0.1})
	if _, err := Build(g, []*prof.RankProfile{p0}); err == nil {
		t.Error("missing ranks should error")
	}
	bad := mkProfile(0, 3, g, []float64{0.1})
	p1 := mkProfile(1, 2, g, []float64{0.1})
	if _, err := Build(g, []*prof.RankProfile{bad, p1}); err == nil {
		t.Error("inconsistent np should error")
	}
	oob := mkProfile(5, 2, g, []float64{0.1})
	if _, err := Build(g, []*prof.RankProfile{p1, oob}); err == nil {
		t.Error("rank out of range should error")
	}
}
