package trace

import (
	"testing"

	"scalana/internal/machine"
	"scalana/internal/mpisim"
	"scalana/internal/psg"
)

func fakeProc(t *testing.T) *mpisim.Proc {
	t.Helper()
	return mpisim.NewWorld(mpisim.Config{NP: 1}).Proc(0)
}

func TestTracerRecordsEvents(t *testing.T) {
	tr := New(DefaultConfig(), 0)
	p := fakeProc(t)
	owed := tr.MPIEvent(p, &mpisim.Event{Kind: mpisim.EvRecv, Op: "mpi_recv",
		Peer: 1, Tag: 2, Bytes: 512, Wait: 0.002, DepRank: 1, TEnd: 1.5})
	if owed != DefaultConfig().EventCost {
		t.Errorf("owed = %g", owed)
	}
	recs := tr.Trace().Records
	if len(recs) != 1 || recs[0].Kind != RecComm || recs[0].Op != "mpi_recv" {
		t.Fatalf("records = %+v", recs)
	}
	if recs[0].Wait != 0.002 || recs[0].Dep != 1 || recs[0].T != 1.5 {
		t.Errorf("record fields = %+v", recs[0])
	}
}

func TestTracerRegionEnterExit(t *testing.T) {
	tr := New(DefaultConfig(), 0)
	p := fakeProc(t)
	ctxA, ctxB := "A", "B" // any comparable ctx works
	tr.Advance(p, 0, 1, mpisim.AdvCompute, ctxA, machine.Vec{})
	tr.Advance(p, 1, 2, mpisim.AdvCompute, ctxA, machine.Vec{}) // same region: no records
	tr.Advance(p, 2, 3, mpisim.AdvCompute, ctxB, machine.Vec{}) // switch: exit+enter
	recs := tr.Trace().Records
	// First advance: enter(A). Third advance: exit(A), enter(B).
	if len(recs) != 3 {
		t.Fatalf("%d region records, want 3: %+v", len(recs), recs)
	}
	if recs[0].Kind != RecEnter || recs[1].Kind != RecExit || recs[2].Kind != RecEnter {
		t.Errorf("record kinds = %v %v %v", recs[0].Kind, recs[1].Kind, recs[2].Kind)
	}
}

func TestTracerIgnoresPerturbRegions(t *testing.T) {
	tr := New(DefaultConfig(), 0)
	p := fakeProc(t)
	if owed := tr.Advance(p, 0, 1, mpisim.AdvPerturb, "X", machine.Vec{}); owed != 0 {
		t.Error("perturb advance should not be traced or charged")
	}
	if len(tr.Trace().Records) != 0 {
		t.Error("perturb advance produced records")
	}
}

func TestStorageBytes(t *testing.T) {
	tr := New(DefaultConfig(), 0)
	p := fakeProc(t)
	for i := 0; i < 100; i++ {
		tr.MPIEvent(p, &mpisim.Event{Kind: mpisim.EvSend, Op: "mpi_send", Peer: 1})
	}
	if got := tr.Trace().StorageBytes(); got != 100*recordBytes {
		t.Errorf("storage = %d, want %d", got, 100*recordBytes)
	}
}

func TestAnalyzeWaitStates(t *testing.T) {
	const v1, v2, v3 = psg.VID(1), psg.VID(2), psg.VID(3)
	traces := []*RankTrace{
		{Rank: 0, Records: []Record{
			{Kind: RecComm, Vertex: v1, Wait: 0.5, Dep: 2},
			{Kind: RecComm, Vertex: v1, Wait: 0.3, Dep: 2},
			{Kind: RecComm, Vertex: v2, Wait: 0.1, Dep: 1},
			{Kind: RecComm, Vertex: v3, Wait: 0, Dep: -1}, // no wait: excluded
			{Kind: RecEnter, Vertex: v1},                  // non-comm: excluded
		}},
		{Rank: 1, Records: []Record{
			{Kind: RecComm, Vertex: v1, Wait: 0.2, Dep: 2},
		}},
	}
	ws := AnalyzeWaitStates(traces)
	if len(ws) != 2 {
		t.Fatalf("%d wait states, want 2", len(ws))
	}
	if ws[0].Vertex != v1 || ws[0].TotalWait != 1.0 || ws[0].Count != 3 {
		t.Errorf("top wait state = %+v", ws[0])
	}
	if ws[0].CauseRanks[2] != 1.0 {
		t.Errorf("cause attribution = %v", ws[0].CauseRanks)
	}
	if ws[1].Vertex != v2 {
		t.Errorf("second wait state = %+v", ws[1])
	}
}

func TestBackwardReplayFollowsDelayChain(t *testing.T) {
	// Rank 0 waits on rank 1, whose last prior comm waited on rank 2.
	const recv0, recv1, send1, send2 = psg.VID(10), psg.VID(11), psg.VID(12), psg.VID(13)
	traces := []*RankTrace{
		{Rank: 0, Records: []Record{
			{Kind: RecComm, Vertex: recv0, T: 10, Wait: 5, Dep: 1},
		}},
		{Rank: 1, Records: []Record{
			{Kind: RecComm, Vertex: recv1, T: 4, Wait: 3, Dep: 2},
			{Kind: RecComm, Vertex: send1, T: 12, Wait: 0, Dep: -1},
		}},
		{Rank: 2, Records: []Record{
			{Kind: RecComm, Vertex: send2, T: 3, Wait: 0, Dep: -1},
		}},
	}
	chain := BackwardReplay(traces, 10)
	if len(chain) < 3 {
		t.Fatalf("chain too short: %+v", chain)
	}
	if chain[0].Rank != 0 || chain[0].Vertex != recv0 {
		t.Errorf("chain start = %+v", chain[0])
	}
	if chain[1].Rank != 1 || chain[1].Vertex != recv1 {
		t.Errorf("chain hop 1 = %+v", chain[1])
	}
	if chain[2].Rank != 2 || chain[2].Vertex != send2 {
		t.Errorf("chain hop 2 = %+v", chain[2])
	}
	if chain[len(chain)-1].Wait != 0 {
		t.Errorf("chain should end at a no-wait record: %+v", chain)
	}
}

func TestBackwardReplayEmptyTraces(t *testing.T) {
	if chain := BackwardReplay(nil, 5); chain != nil {
		t.Errorf("empty traces gave %+v", chain)
	}
}

func TestTracerEndToEndVolume(t *testing.T) {
	// Full tracing of a small run: record counts scale with events, which
	// is exactly why tracing storage explodes (paper Table I).
	tracers := make([]*Tracer, 4)
	cfg := mpisim.Config{NP: 4, HookFactory: func(rank int) []mpisim.Hook {
		tracers[rank] = New(DefaultConfig(), rank)
		return []mpisim.Hook{tracers[rank]}
	}}
	w := mpisim.NewWorld(cfg)
	const iters = 25
	_, err := w.Run(func(p *mpisim.Proc) {
		for i := 0; i < iters; i++ {
			next := (p.Rank + 1) % 4
			prev := (p.Rank + 3) % 4
			p.Sendrecv(next, 1, 1024, prev, 1, 1024)
			p.Allreduce(8)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for r, tr := range tracers {
		if n := len(tr.Trace().Records); n < 2*iters {
			t.Errorf("rank %d recorded %d events, want >= %d", r, n, 2*iters)
		}
	}
}
