// Package trace implements the tracing-based baseline tool the paper
// compares against (Scalasca): every MPI event and every enter/exit of a
// program region is logged as a timestamped record. Storage is counted in
// actual bytes of the OTF2-like binary layout, and each record charges the
// per-event logging overhead — the two costs that make tracing prohibitive
// at scale (paper Table I: 6.77 GB and 25.3% on NPB-CG at 128 ranks).
//
// The package also implements a simplified Böhme-style wait-state analysis
// (paper ref. [64]): a backward replay over the collected timelines that
// attributes waiting time to the remote code regions that caused it.
package trace

import (
	"sort"

	"scalana/internal/machine"
	"scalana/internal/mpisim"
	"scalana/internal/psg"
)

// Config controls the tracer.
type Config struct {
	// EventCost is the virtual CPU cost of logging one trace record.
	EventCost float64
	// RegionGranularity adds enter/exit records around every attribution
	// context switch, like compiler-instrumented Score-P regions.
	RegionGranularity bool
}

// DefaultConfig matches a Score-P/Scalasca-like setup.
func DefaultConfig() Config {
	return Config{EventCost: 1.6e-6, RegionGranularity: true}
}

// Record is one trace record. Regions are identified by interned
// psg.VID, matching the integer region IDs an OTF2 trace stores.
type Record struct {
	T      float64
	Kind   RecordKind
	Op     string
	Vertex psg.VID
	Peer   int
	Tag    int
	Bytes  float64
	Wait   float64
	Dep    int // rank that satisfied the dependence, -1 if none
}

// RecordKind classifies trace records.
type RecordKind int

// Record kinds.
const (
	RecEnter RecordKind = iota
	RecExit
	RecComm
)

// recordBytes is the on-disk size of one record in the OTF2-like binary
// layout: timestamp + kind + region/op id + peer + tag + size + 2 floats.
const recordBytes = 8 + 1 + 4 + 4 + 4 + 8 + 8 + 8

// RankTrace is one rank's trace buffer.
type RankTrace struct {
	Rank    int
	Records []Record
}

// StorageBytes is the rank's trace size on disk.
func (rt *RankTrace) StorageBytes() int64 {
	return int64(len(rt.Records)) * recordBytes
}

// Tracer is the per-rank hook implementing mpisim.Hook.
type Tracer struct {
	cfg     Config
	trace   *RankTrace
	lastCtx any
}

// New creates a tracer for one rank.
func New(cfg Config, rank int) *Tracer {
	if cfg.EventCost == 0 {
		cfg = DefaultConfig()
	}
	return &Tracer{cfg: cfg, trace: &RankTrace{Rank: rank}}
}

// Trace returns the collected records.
func (tr *Tracer) Trace() *RankTrace { return tr.trace }

func ctxVID(ctx any) psg.VID {
	if v, ok := ctx.(*psg.Vertex); ok && v != nil {
		return v.VID
	}
	return psg.VIDRoot
}

// Advance logs region enter/exit transitions.
func (tr *Tracer) Advance(p *mpisim.Proc, from, to float64, kind mpisim.AdvanceKind, ctx any, pmu machine.Vec) float64 {
	if !tr.cfg.RegionGranularity || kind == mpisim.AdvPerturb {
		return 0
	}
	if ctx == tr.lastCtx {
		return 0
	}
	var owed float64
	if tr.lastCtx != nil {
		tr.trace.Records = append(tr.trace.Records, Record{T: from, Kind: RecExit, Vertex: ctxVID(tr.lastCtx), Peer: -1, Dep: -1})
		owed += tr.cfg.EventCost
	}
	tr.trace.Records = append(tr.trace.Records, Record{T: from, Kind: RecEnter, Vertex: ctxVID(ctx), Peer: -1, Dep: -1})
	owed += tr.cfg.EventCost
	tr.lastCtx = ctx
	return owed
}

// MPIEvent logs one communication record.
func (tr *Tracer) MPIEvent(p *mpisim.Proc, ev *mpisim.Event) float64 {
	tr.trace.Records = append(tr.trace.Records, Record{
		T:      ev.TEnd,
		Kind:   RecComm,
		Op:     ev.Op,
		Vertex: ctxVID(ev.Ctx),
		Peer:   ev.Peer,
		Tag:    ev.Tag,
		Bytes:  ev.Bytes,
		Wait:   ev.Wait,
		Dep:    ev.DepRank,
	})
	return tr.cfg.EventCost
}

var _ mpisim.Hook = (*Tracer)(nil)

// WaitState is an aggregated wait state found by post-mortem analysis.
type WaitState struct {
	Vertex    psg.VID
	TotalWait float64
	Count     int64
	// CauseRanks histograms which remote ranks caused the waiting.
	CauseRanks map[int]float64
}

// AnalyzeWaitStates scans all rank traces and aggregates waiting time per
// code region, the first stage of Scalasca's trace analysis.
func AnalyzeWaitStates(traces []*RankTrace) []WaitState {
	agg := map[psg.VID]*WaitState{}
	for _, rt := range traces {
		for _, rec := range rt.Records {
			if rec.Kind != RecComm || rec.Wait <= 0 {
				continue
			}
			ws := agg[rec.Vertex]
			if ws == nil {
				ws = &WaitState{Vertex: rec.Vertex, CauseRanks: map[int]float64{}}
				agg[rec.Vertex] = ws
			}
			ws.TotalWait += rec.Wait
			ws.Count++
			if rec.Dep >= 0 {
				ws.CauseRanks[rec.Dep] += rec.Wait
			}
		}
	}
	verts := make([]psg.VID, 0, len(agg))
	for v := range agg {
		verts = append(verts, v)
	}
	sort.Slice(verts, func(i, j int) bool { return verts[i] < verts[j] })
	out := make([]WaitState, 0, len(verts))
	for _, v := range verts {
		out = append(out, *agg[v])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].TotalWait != out[j].TotalWait {
			return out[i].TotalWait > out[j].TotalWait
		}
		return out[i].Vertex < out[j].Vertex
	})
	return out
}

// DelayChainStep is one hop of a backward replay.
type DelayChainStep struct {
	Rank   int
	Vertex psg.VID
	Wait   float64
}

// BackwardReplay follows the largest wait state backwards across ranks,
// hopping to the causing rank's latest preceding communication record,
// like Böhme's backward trace replay. It stops after maxHops or when the
// chain reaches a record with no remote cause.
func BackwardReplay(traces []*RankTrace, maxHops int) []DelayChainStep {
	byRank := map[int]*RankTrace{}
	for _, rt := range traces {
		byRank[rt.Rank] = rt
	}
	// Seed: globally largest single wait.
	var cur *Record
	var curRank int
	for _, rt := range traces {
		for i := range rt.Records {
			r := &rt.Records[i]
			if r.Kind == RecComm && (cur == nil || r.Wait > cur.Wait) {
				cur = r
				curRank = rt.Rank
			}
		}
	}
	var chain []DelayChainStep
	for hop := 0; cur != nil && hop < maxHops; hop++ {
		chain = append(chain, DelayChainStep{Rank: curRank, Vertex: cur.Vertex, Wait: cur.Wait})
		if cur.Dep < 0 || cur.Wait <= 0 {
			break
		}
		dep := byRank[cur.Dep]
		if dep == nil {
			break
		}
		// Find the causing rank's last communication record before the
		// wait completed.
		t := cur.T
		cur = nil
		for i := len(dep.Records) - 1; i >= 0; i-- {
			r := &dep.Records[i]
			if r.Kind == RecComm && r.T < t {
				cur = r
				curRank = dep.Rank
				break
			}
		}
	}
	return chain
}
