package apps

import "scalana/internal/machine"

// Nekbone port (paper §VI-D3). Nekbone's CG iteration spends its time in
// a dgemm loop (blas.f:8941); the cluster's cores have differing memory
// speeds and ranks are pinned to cores, so the memory-bound naive dgemm
// runs at different speeds per rank (equal TOT_LST_INS, unequal TOT_CYC)
// and MPI_Waitall in comm_wait (comm.h:243) inherits the skew.
//
// The paper's fix, applied in -opt: an optimized BLAS with blocking that
// cuts load/store traffic ~90%, making the kernel compute-bound and
// insensitive to per-core memory speed.

func init() {
	register(&App{
		Name: "nekbone", File: "nekbone.mp", PaperKLoc: 31.8,
		Description: "Nekbone spectral-element CG: memory-bound dgemm on heterogeneous cores, halo Waitall + glsum allreduce",
		Source:      nekboneSource(false),
		CoreConfig:  nekboneCores,
	})
	register(&App{
		Name: "nekbone-opt", File: "nekbone.mp", PaperKLoc: 31.8,
		Description: "Nekbone with the paper's fix: blocked BLAS dgemm (~90% fewer loads/stores)",
		Source:      nekboneSource(true),
		CoreConfig:  nekboneCores,
	})
}

// nekboneCores models the heterogeneous memory speed the paper found:
// "the memory access speed of each processor core differs, and the
// processes are bound to different processor cores".
func nekboneCores(np int) machine.Config {
	cfg := machine.DefaultConfig()
	cfg.MemSpeed = func(rank int) float64 {
		return 1.0 + 0.8*float64((rank*11)%5)/4.0
	}
	return cfg
}

func nekboneSource(opt bool) string {
	optFlag := "0"
	if opt {
		optFlag = "1"
	}
	return `// nekbone.mp: Nekbone spectral-element proxy (simplified)
// semhat: spectral-element operator setup (GLL points, derivative
// matrices); scalar setup code that contracts away.
func semhat(order) {
	var zpts = alloc(16);
	var wts = alloc(16);
	for (var p = 0; p < order; p = p + 1) {
		zpts[p] = 0 - 1.0 + 2.0 * p / (order - 1);
		wts[p] = 2.0 / order;
	}
	var norm = 0;
	for (var q = 0; q < order; q = q + 1) {
		norm = norm + wts[q] * zpts[q] * zpts[q];
	}
	if (norm < 0.1) {
		norm = 0.1;
	}
	return norm;
}
// glmapm1: element-to-rank map for the gather-scatter setup.
func glmapm1(rank, np, nelt) {
	var base = floor(nelt / np);
	var extra = nelt % np;
	var mine = base;
	if (rank < extra) {
		mine = base + 1;
	}
	var first = rank * base + min(rank, extra);
	return first + mine * 0;
}
// dgemm: small dense matrix multiplies over all elements
// (analog of the LOOP in dgemm at blas.f:8941).
func dgemm(work, opt) {
	if (opt == 1) {
		// Blocked BLAS: ~90% fewer loads/stores, cache-resident tiles.
		for (var e = 0; e < 8; e = e + 1) {
			compute(work / 8, work / 256, work / 512, 131072);
		}
	} else {
		// Naive mxm: streams operands from memory every time.
		for (var e2 = 0; e2 < 8; e2 = e2 + 1) {
			compute(work / 8, work / 32, work / 64, 8388608);
		}
	}
}
// comm_wait: gather-scatter halo completion (analog of comm.h:243).
func comm_wait(rank, np) {
	var next = (rank + 1) % np;
	var prev = (rank - 1 + np) % np;
	var r1 = mpi_irecv(prev, 5, 65536);
	var r2 = mpi_irecv(next, 6, 65536);
	mpi_isend(next, 5, 65536);
	mpi_isend(prev, 6, 65536);
	mpi_waitall();              // comm.h:243 analog
}
func main() {
	var rank = mpi_rank();
	var np = mpi_size();
	var norm = semhat(10);
	var firstElt = glmapm1(rank, np, 16384);
	var work = 3.2e9 / np + norm * 0 + firstElt * 0;
	var opt = ` + optFlag + `;
	mpi_bcast(0, 64);           // distribute solver parameters
	for (var cg = 0; cg < 12; cg = cg + 1) {
		dgemm(work, opt);
		comm_wait(rank, np);
		mpi_allreduce(8);       // glsum
	}
}
`
}
