package apps

// Zeus-MP port (paper §VI-D1). The original code's scaling loss: only some
// busy ranks execute the boundary-value loop at bval3d.F:155 while the
// others idle in non-blocking P2P phases (nudt.F:227/269/328); the delay
// propagates through the exchanges and the MPI_Allreduce at nudt.F:361
// synchronizes everyone to the stragglers. A second root cause is the
// memory-bound hsmoc.F loop nest (high load/store and cache-miss counts).
//
// The paper's fixes, applied in the -opt variant: MPI+OpenMP multithreading
// of the bval3d loop (modelled as an 8x speedup of the busy loop) and loop
// tiling + scalar promotion in hsmoc (modelled as a working set that fits
// in cache).

func init() {
	register(&App{
		Name: "zeusmp", File: "zeusmp.mp", PaperKLoc: 44.1,
		Description: "Zeus-MP CFD: busy-rank bval3d boundary loop + non-blocking nudt exchanges + dt allreduce",
		Source:      zeusmpSource(1, 0),
		MinNP:       4,
	})
	register(&App{
		Name: "zeusmp-opt", File: "zeusmp.mp", PaperKLoc: 44.1,
		Description: "Zeus-MP with the paper's fixes: OpenMP-parallel bval3d and tiled hsmoc loops",
		Source:      zeusmpSource(8, 1),
		MinNP:       4,
	})
}

func zeusmpSource(ompThreads, tiled int) string {
	omp := "1"
	if ompThreads == 8 {
		omp = "8"
	}
	til := "0"
	if tiled == 1 {
		til = "1"
	}
	return `// zeusmp.mp: Zeus-MP astrophysical CFD (simplified)
// setup: grid geometry, equation-of-state tables, and CFL parameters
// (mgrid/ggen/nmlsts analogs; pure scalar code that contracts away).
func setup(rank, np) {
	var nx = 64;
	var ny = 64;
	var nz = 64;
	var gamma = 1.6667;
	var courant = 0.5;
	if (np > 64) {
		courant = 0.4;
	}
	var dx = 1.0 / nx;
	var dy = 1.0 / ny;
	var dz = 1.0 / nz;
	var tiles = floor(np / 4);
	if (tiles < 1) {
		tiles = 1;
	}
	var x0 = rank * dx * tiles;
	var ziso = 0;
	if (gamma > 1.5) {
		ziso = 1;
	} else {
		ziso = 0;
	}
	var eosTable = alloc(32);
	for (var t = 0; t < 32; t = t + 1) {
		eosTable[t] = pow(1.0 + t * dx, gamma);
	}
	var cfl = courant * min(dx, min(dy, dz));
	var buff = sqrt(x0 * x0 + cfl * cfl) + ziso;
	return buff + eosTable[31];
}
// bval3d: boundary-value update, executed only by "busy" ranks
// (analog of bval3d.F:155 -- the root cause of the scaling loss).
func bval3d(nloops) {
	for (var j = 0; j < nloops; j = j + 1) {
		compute(4.5e5, 2.2e5, 1.1e5, 262144);
	}
}
// hsmoc: MoC transport loop nest (analog of hsmoc.F:665/841/1041).
// Untiled, its working set thrashes the cache (high TOT_LST_INS/misses).
func hsmoc(work, tiled) {
	if (tiled == 1) {
		for (var i = 0; i < 3; i = i + 1) {
			compute(work / 3, work / 96, work / 192, 262144);
		}
	} else {
		for (var i2 = 0; i2 < 3; i2 = i2 + 1) {
			compute(work / 3, work / 96, work / 192, 524288);
		}
	}
}
// nudt: new-timestep computation with three non-blocking exchange phases
// and the dt Allreduce (analogs of nudt.F:227, 269, 328, and 361).
func nudt(rank, np) {
	var next = (rank + 1) % np;
	var prev = (rank - 1 + np) % np;
	var r1 = mpi_irecv(prev, 1, 16384);
	mpi_isend(next, 1, 16384);
	mpi_waitall();              // nudt.F:227 analog
	var r2 = mpi_irecv(next, 2, 16384);
	mpi_isend(prev, 2, 16384);
	mpi_waitall();              // nudt.F:269 analog
	var r3 = mpi_irecv(prev, 3, 16384);
	mpi_isend(next, 3, 16384);
	mpi_waitall();              // nudt.F:328 analog
	mpi_allreduce(8);           // nudt.F:361 analog: global dt
}
func main() {
	var rank = mpi_rank();
	var np = mpi_size();
	var scalefac = setup(rank, np);
	var work = 2.4e9 / np + scalefac * 0;
	var omp = ` + omp + `;      // OpenMP threads in the -opt variant
	var tiled = ` + til + `;    // hsmoc loop tiling in the -opt variant
	mpi_bcast(0, 256);          // broadcast runtime parameters (nmlsts)
	for (var it = 0; it < 10; it = it + 1) {
		hsmoc(work, tiled);
		if (rank % 4 == 0) {
			bval3d(72 / omp);   // only busy ranks pay the boundary update
		}
		nudt(rank, np);
	}
}
`
}
