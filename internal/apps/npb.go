package apps

// MiniMP ports of the NPB kernels (paper §VI uses CLASS C/D; the constants
// here are scaled so a simulated strong-scaling sweep finishes quickly
// while keeping each kernel's communication skeleton and loop structure).

func init() {
	register(&App{
		Name: "cg", File: "cg.mp", PaperKLoc: 2.0,
		Description: "NPB CG: conjugate gradient, butterfly sendrecv reduction per inner iteration plus allreduce",
		Source:      cgSource("0"),
	})
	register(&App{
		Name: "cg-delay", File: "cg.mp", PaperKLoc: 2.0,
		Description: "NPB CG with an injected delay on rank 4 (paper Fig. 2 motivating example)",
		Source:      cgSource("1"),
	})
	register(&App{
		Name: "ep", File: "ep.mp", PaperKLoc: 0.6,
		Description: "NPB EP: embarrassingly parallel random-number kernel, compute plus trailing allreduces",
		Source: `// ep.mp: embarrassingly parallel kernel
func main() {
	var np = mpi_size();
	var work = 6e9 / np;
	for (var blk = 0; blk < 16; blk = blk + 1) { // gaussian pair blocks
		compute(work / 16, work / 80, work / 160, 65536);
	}
	mpi_allreduce(8);  // sx
	mpi_allreduce(8);  // sy
	mpi_allreduce(80); // q counts
}
`,
	})
	register(&App{
		Name: "ft", File: "ft.mp", PaperKLoc: 2.5,
		Description: "NPB FT: 3-D FFT, all-to-all transpose per iteration plus checksum allreduce",
		Source: `// ft.mp: 3-D FFT kernel
func fft_slab(work) {
	for (var pass = 0; pass < 3; pass = pass + 1) { // 1-D FFTs along each axis
		compute(work / 3, work / 48, work / 96, 524288);
	}
}
func main() {
	var np = mpi_size();
	var work = 2.4e9 / np;
	var slab = 3.2e7 / (np * np); // transpose slice per pair
	mpi_bcast(0, 64); // problem setup
	for (var it = 0; it < 6; it = it + 1) {
		fft_slab(work);
		mpi_alltoall(slab);      // global transpose
		compute(work / 6, work / 96, work / 192, 524288); // evolve
		mpi_allreduce(16);       // checksum
	}
}
`,
	})
	register(&App{
		Name: "mg", File: "mg.mp", PaperKLoc: 2.8,
		Description: "NPB MG: V-cycle multigrid, per-level ring halo exchange, coarsest-level allreduce",
		Source: `// mg.mp: multigrid V-cycle
func halo(next, prev, bytes) {
	var r1 = mpi_irecv(prev, 3, bytes);
	var r2 = mpi_irecv(next, 4, bytes);
	mpi_isend(next, 3, bytes);
	mpi_isend(prev, 4, bytes);
	mpi_waitall();
}
func main() {
	var rank = mpi_rank();
	var np = mpi_size();
	var next = (rank + 1) % np;
	var prev = (rank - 1 + np) % np;
	var work = 1.6e9 / np;
	for (var it = 0; it < 8; it = it + 1) {
		for (var lev = 0; lev < 4; lev = lev + 1) {
			var scale = pow(8, lev);     // coarser levels shrink by 8x
			if (lev == 3) {
				mpi_allreduce(8);        // coarsest grid solve
				compute(work / (64 * scale), work / (1024 * scale), work / (2048 * scale), 8192);
			} else {
				halo(next, prev, 65536 / scale);
				compute(work / scale, work / (64 * scale), work / (128 * scale), 524288 / scale);
			}
		}
		mpi_allreduce(8); // residual norm
	}
}
`,
	})
	register(&App{
		Name: "lu", File: "lu.mp", PaperKLoc: 7.7,
		Description: "NPB LU: SSOR with pipelined lower/upper wavefront sweeps along the rank dimension",
		Source: `// lu.mp: SSOR pipelined wavefront
func main() {
	var rank = mpi_rank();
	var np = mpi_size();
	var work = 2.0e9 / np;
	for (var it = 0; it < 6; it = it + 1) {
		// Lower-triangular sweep: k-planes flow rank 0 -> np-1.
		for (var k = 0; k < 4; k = k + 1) {
			if (rank > 0) {
				mpi_recv(rank - 1, k, 16384);
			}
			compute(work / 8, work / 64, work / 128, 262144);
			if (rank < np - 1) {
				mpi_send(rank + 1, k, 16384);
			}
		}
		// Upper-triangular sweep: reverse direction.
		for (var k2 = 0; k2 < 4; k2 = k2 + 1) {
			if (rank < np - 1) {
				mpi_recv(rank + 1, 100 + k2, 16384);
			}
			compute(work / 8, work / 64, work / 128, 262144);
			if (rank > 0) {
				mpi_send(rank - 1, 100 + k2, 16384);
			}
		}
		mpi_allreduce(40); // rsdnm
	}
}
`,
	})
	register(&App{
		Name: "is", File: "is.mp", PaperKLoc: 1.3,
		Description: "NPB IS: integer bucket sort, alltoall key exchange plus allreduce verification",
		Source: `// is.mp: integer sort
func main() {
	var np = mpi_size();
	var keysPerRank = 1.6e8 / np;
	for (var it = 0; it < 10; it = it + 1) {
		compute(keysPerRank, keysPerRank / 8, keysPerRank / 16, 262144); // local bucket counts
		mpi_allreduce(4096);                 // bucket size exchange
		mpi_alltoall(keysPerRank * 4 / np);  // key redistribution
		compute(keysPerRank / 2, keysPerRank / 16, keysPerRank / 32, 262144); // local ranking
	}
	mpi_allreduce(8); // verification
}
`,
	})
	register(&App{
		Name: "bt", File: "bt.mp", PaperKLoc: 9.3,
		Description: "NPB BT: block-tridiagonal ADI, x/y/z sweeps with ring sendrecv per direction",
		Source:      adiSource("bt.mp", "3.0e9", "4"),
	})
	register(&App{
		Name: "sp", File: "sp.mp", PaperKLoc: 5.1,
		Description: "NPB SP: scalar-pentadiagonal ADI, x/y/z sweeps with ring sendrecv per direction",
		Source:      adiSource("sp.mp", "2.2e9", "5"),
	})
}

// cgSource builds the CG kernel; delay != "0" injects the Fig. 2 delay on
// rank 4.
func cgSource(delay string) string {
	return `// cg.mp: conjugate gradient kernel (paper Fig. 2 structure)
func conj_grad(rank, np, work) {
	for (var cgit = 0; cgit < 8; cgit = cgit + 1) {
		compute(work, work / 16, work / 32, 2097152 / np); // local A.p
		// Partition reduction: butterfly sendrecv over log2(np) strides
		// (the "for { mpi_sendrecv }" loops of Fig. 2(a)).
		for (var s = 1; s < np; s = s * 2) {
			var bit = floor(rank / s) % 2;
			var partner = rank + s * (1 - 2 * bit);
			if (partner < np) {
				mpi_sendrecv(partner, 1, 65536 / np, partner, 1, 65536 / np);
			}
		}
		compute(work / 4, work / 64, work / 128, 1048576 / np); // p, q updates
		mpi_allreduce(8); // rho
	}
}
func main() {
	var rank = mpi_rank();
	var np = mpi_size();
	var work = 1.8e8 / np;
	var injected = ` + delay + `;
	for (var it = 0; it < 12; it = it + 1) {
		if (injected == 1 && rank == 4) {
			compute(4.5e7, 1e6, 5e5, 262144); // injected delay (Fig. 2)
		}
		conj_grad(rank, np, work);
		mpi_allreduce(8); // zeta
	}
}
`
}

// adiSource builds the BT/SP-style ADI sweep kernel.
func adiSource(file, totalWork, iters string) string {
	return `// ` + file + `: ADI solver with x/y/z line sweeps
func sweep(rank, np, work, dir) {
	var next = (rank + 1) % np;
	var prev = (rank - 1 + np) % np;
	mpi_sendrecv(next, dir, 32768, prev, dir, 32768);
	compute(work, work / 16, work / 32, 524288);
	mpi_sendrecv(prev, 10 + dir, 32768, next, 10 + dir, 32768);
}
func main() {
	var rank = mpi_rank();
	var np = mpi_size();
	var work = ` + totalWork + ` / (np * 3 * ` + iters + `);
	for (var it = 0; it < ` + iters + `; it = it + 1) {
		compute(work / 2, work / 32, work / 64, 524288); // rhs
		for (var dir = 0; dir < 3; dir = dir + 1) {
			sweep(rank, np, work, dir);
		}
		mpi_allreduce(40); // residual
	}
}
`
}
