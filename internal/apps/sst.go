package apps

// SST port (paper §VI-D2). The Structural Simulation Toolkit's scaling
// loss: RequestGenCPU::handleEvent (mirandaCPU.cc:247) scans an array of
// pending requests per query — O(n) per query, O(n^2) per event batch —
// and batch sizes differ across ranks, so total instruction counts (and
// times) diverge. Every epoch ends in RankSyncSerialSkip::exchange:
// MPI_Waitall (rankSyncSerialSkip.cc:217) then MPI_Allreduce (:235),
// which synchronize all ranks to the slowest.
//
// The paper's fix, applied in -opt: replace the array scan with an
// unordered map, reducing the per-query cost to O(log n); instruction
// counts drop ~99.9% and the load balances out.

func init() {
	register(&App{
		Name: "sst", File: "sst.mp", PaperKLoc: 40.8,
		Description: "SST simulator: O(n^2) pending-request scan in handleEvent, Waitall+Allreduce epoch sync",
		Source:      sstSource(false),
	})
	register(&App{
		Name: "sst-opt", File: "sst.mp", PaperKLoc: 40.8,
		Description: "SST with the paper's fix: unordered-map lookup, O(n log n) handleEvent",
		Source:      sstSource(true),
	})
}

func sstSource(opt bool) string {
	optFlag := "0"
	if opt {
		optFlag = "1"
	}
	return `// sst.mp: Structural Simulation Toolkit (simplified)
// buildGraph: component-graph construction and partitioning
// (ConfigGraph/partitioner analog; scalar setup that contracts away).
func buildGraph(rank, np) {
	var components = 512;
	var linksPer = 4;
	var perRank = floor(components / np);
	if (perRank < 1) {
		perRank = 1;
	}
	var seedv = 17 + rank * 31;
	var weights = alloc(16);
	for (var w = 0; w < 16; w = w + 1) {
		weights[w] = 1.0 + (seedv * (w + 1)) % 97 / 97.0;
	}
	var crossRankLinks = perRank * linksPer / 2;
	if (np == 1) {
		crossRankLinks = 0;
	}
	var lookahead = 1.0;
	if (crossRankLinks > 128) {
		lookahead = 0.5;
	}
	return perRank + lookahead + weights[15] * 0;
}
// handleEvent: processes this epoch's queries against pendingRequests
// (analog of RequestGenCPU::handleEvent at mirandaCPU.cc:247).
func handleEvent(nreq, opt) {
	if (opt == 1) {
		// unordered_map lookups: O(log n) per query.
		for (var q = 0; q < 8; q = q + 1) {
			var c = nreq * log2(nreq) / 8;
			compute(c * 6, c * 2, c, 262144);
		}
	} else {
		// array scan: O(n) per query, O(n^2) per batch.
		for (var q2 = 0; q2 < 8; q2 = q2 + 1) {
			var c2 = nreq * nreq / 8;
			compute(c2 * 3, c2, c2 / 2, 4194304);
		}
	}
}
// exchange: RankSyncSerialSkip::exchange (rankSyncSerialSkip.cc:217/235).
func exchange(rank, np) {
	var next = (rank + 1) % np;
	var prev = (rank - 1 + np) % np;
	var r1 = mpi_irecv(prev, 9, 32768);
	mpi_isend(next, 9, 32768);
	mpi_waitall();              // rankSyncSerialSkip.cc:217 analog
	mpi_allreduce(8);           // rankSyncSerialSkip.cc:235 analog
}
func main() {
	var rank = mpi_rank();
	var np = mpi_size();
	var partition = buildGraph(rank, np);
	// Simulated components are partitioned unevenly: per-rank pending
	// request counts differ (the source of the TOT_INS imbalance).
	var nreq = 600 + 600 * ((rank * 13) % 7) / 7 + partition * 0;
	var opt = ` + optFlag + `;
	mpi_bcast(0, 128);  // distribute the partitioned configuration
	for (var epoch = 0; epoch < 10; epoch = epoch + 1) {
		handleEvent(nreq, opt);
		compute(2e6, 5e5, 2.5e5, 524288); // event scheduling bookkeeping
		exchange(rank, np);
	}
}
`
}
