package apps

// Demonstration programs for the paper's illustrative figures: the Fig. 3
// listing used to show PSG construction (Fig. 4), and the stencil code of
// Fig. 6/8 used to show the PPG and the backtracking walk.

func init() {
	register(&App{
		Name: "fig3", File: "example.mp", PaperKLoc: 0,
		Description: "the paper's Fig. 3 example program (PSG construction demo)",
		Source:      Fig3Source,
	})
	register(&App{
		Name: "stencil-demo", File: "stencil.mp", PaperKLoc: 0,
		Description: "the Fig. 6 stencil: warmup loop, sendrecv, two exchange loops",
		Source:      stencilSource(false),
	})
	register(&App{
		Name: "stencil-demo-imbalanced", File: "stencil.mp", PaperKLoc: 0,
		Description: "the Fig. 8 stencil with extra work on even ranks (problematic vertices demo)",
		Source:      stencilSource(true),
	})
}

// Fig3Source is the MiniMP port of the paper's Fig. 3 MPI program.
const Fig3Source = `// example.mp: the paper's Fig. 3 example
func foo() {
	if (mpi_rank() % 2 == 0) {
		mpi_send(mpi_rank() + 1, 0, 64);
	} else {
		mpi_recv(mpi_rank() - 1, 0, 64);
	}
}
func main() {
	var N = 16;
	var sum = 0;
	var product = 1;
	var A = alloc(N);
	for (var i = 0; i < N; i = i + 1) {      // Loop 1
		A[i] = rand();
		for (var j = 0; j < i; j = j + 1) {  // Loop 1.1
			sum = sum + A[j];
		}
		for (var k = 0; k < i; k = k + 1) {  // Loop 1.2
			product = product * A[k];
		}
	}
	foo();
	mpi_bcast(0, 64);
}
`

func stencilSource(imbalanced bool) string {
	imb := "0"
	if imbalanced {
		imb = "1"
	}
	return `// stencil.mp: the paper's Fig. 6 code shape
func main() {
	var rank = mpi_rank();
	var np = mpi_size();
	var next = (rank + 1) % np;
	var prev = (rank - 1 + np) % np;
	var imbalanced = ` + imb + `;
	for (var w = 0; w < 4; w = w + 1) {          // init loop
		compute(4e6, 2e5, 1e5, 131072);
	}
	mpi_sendrecv(next, 1, 8192, prev, 1, 8192);
	for (var t = 0; t < 6; t = t + 1) {          // exchange loop 1
		mpi_sendrecv(next, 2, 8192, prev, 2, 8192);
		compute(3e6, 1.5e5, 7.5e4, 131072);
		if (imbalanced == 1 && rank % 2 == 0) {
			compute(6e6, 3e5, 1.5e5, 131072);    // even ranks run long
		}
	}
	for (var u = 0; u < 6; u = u + 1) {          // exchange loop 2
		mpi_sendrecv(prev, 3, 8192, next, 3, 8192);
		compute(3e6, 1.5e5, 7.5e4, 131072);
	}
	mpi_allreduce(8);
}
`
}
