// Package apps contains the evaluated workloads rewritten in MiniMP: the
// eight NPB kernels and the three real applications from the paper's
// evaluation (Zeus-MP, SST, Nekbone), plus the injected-delay NPB-CG used
// in the motivating example (paper Fig. 2).
//
// The ports keep each code's communication skeleton (stencil halo
// exchanges, butterfly reductions, transposes, pipelined wavefronts,
// non-blocking boundary exchanges) and the computation scaling of a
// strong-scaling run, and — for the case studies — the exact pathology
// the paper diagnoses: the bval3d busy-rank boundary loop in Zeus-MP, the
// O(n) pending-request scan in SST, and the memory-bound dgemm on
// heterogeneous cores in Nekbone. Each case study has an "-opt" variant
// applying the paper's fix.
package apps

import (
	"fmt"
	"sort"

	"scalana/internal/machine"
	"scalana/internal/minilang"
)

// App is one registered workload.
type App struct {
	Name        string
	File        string
	Description string
	Source      string
	// KLoc is the original application's source size in thousands of
	// lines (paper Table II), reported alongside our measured PSG sizes.
	PaperKLoc float64
	// CoreConfig customizes the machine model (Nekbone's heterogeneous
	// memory speeds). Nil uses the default.
	CoreConfig func(np int) machine.Config
	// MinNP is the smallest rank count the port supports.
	MinNP int
}

// Parse parses the app's source.
func (a *App) Parse() (*minilang.Program, error) {
	return minilang.Parse(a.File, a.Source)
}

// MustParse parses the app's source, panicking on error.
func (a *App) MustParse() *minilang.Program {
	return minilang.MustParse(a.File, a.Source)
}

var registry = map[string]*App{}

func register(a *App) *App {
	if _, dup := registry[a.Name]; dup {
		panic(fmt.Sprintf("apps: duplicate app %q", a.Name))
	}
	if a.MinNP == 0 {
		a.MinNP = 2
	}
	registry[a.Name] = a
	return a
}

// Get returns a registered app by name, or nil.
func Get(name string) *App { return registry[name] }

// Names returns all registered app names, sorted.
func Names() []string {
	out := make([]string, 0, len(registry))
	for n := range registry {
		out = append(out, n)
	}
	sort.Strings(out)
	return out
}

// NPBNames lists the NPB kernels in the paper's Table II order.
func NPBNames() []string {
	return []string{"bt", "cg", "ep", "ft", "mg", "sp", "lu", "is"}
}

// EvaluationNames lists all programs of the paper's evaluation in Table II
// order: the NPB suite plus the three real applications.
func EvaluationNames() []string {
	return append(NPBNames(), "sst", "nekbone", "zeusmp")
}

// CaseStudies lists the §VI-D applications with their optimized variants.
func CaseStudies() [][2]string {
	return [][2]string{
		{"zeusmp", "zeusmp-opt"},
		{"sst", "sst-opt"},
		{"nekbone", "nekbone-opt"},
	}
}
