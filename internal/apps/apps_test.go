package apps

import (
	"strings"
	"testing"

	"scalana/internal/interp"
	"scalana/internal/ir"
	"scalana/internal/mpisim"
	"scalana/internal/psg"
)

// TestAllAppsParseAndBuild: every registered workload must compile and
// produce a valid contracted PSG.
func TestAllAppsParseAndBuild(t *testing.T) {
	for _, name := range Names() {
		app := Get(name)
		prog, err := app.Parse()
		if err != nil {
			t.Errorf("%s: parse: %v", name, err)
			continue
		}
		g, err := psg.Build(prog, psg.DefaultOptions())
		if err != nil {
			t.Errorf("%s: PSG: %v", name, err)
			continue
		}
		if err := g.CheckInvariants(); err != nil {
			t.Errorf("%s: invariants: %v", name, err)
		}
		if g.Stats.MPIs == 0 {
			t.Errorf("%s: no MPI vertices", name)
		}
	}
}

// TestAllAppsRun: every workload runs to completion at a small scale,
// deterministically.
func TestAllAppsRun(t *testing.T) {
	for _, name := range Names() {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			app := Get(name)
			np := app.MinNP
			if np < 4 {
				np = 4
			}
			prog := app.MustParse()
			g := psg.MustBuild(prog)
			run := func() mpisim.RunResult {
				r := interp.NewRunner(prog, g)
				cfg := mpisim.Config{NP: np, Seed: 7}
				if app.CoreConfig != nil {
					cfg.Core = app.CoreConfig(np)
				}
				res, err := r.Run(cfg)
				if err != nil {
					t.Fatalf("run: %v", err)
				}
				return res
			}
			a := run()
			b := run()
			if a.Elapsed != b.Elapsed {
				t.Errorf("non-deterministic: %g vs %g", a.Elapsed, b.Elapsed)
			}
			if a.Elapsed <= 0 {
				t.Error("no virtual time elapsed")
			}
		})
	}
}

// TestAppsStrongScaling: doubling ranks must shrink the makespan for every
// evaluation program (they are strong-scaling ports).
func TestAppsStrongScaling(t *testing.T) {
	for _, name := range []string{"cg", "ep", "ft", "mg", "lu", "is", "bt", "sp"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			app := Get(name)
			prog := app.MustParse()
			g := psg.MustBuild(prog)
			elapsed := func(np int) float64 {
				r := interp.NewRunner(prog, g)
				res, err := r.Run(mpisim.Config{NP: np})
				if err != nil {
					t.Fatal(err)
				}
				return res.Elapsed
			}
			t4, t16 := elapsed(4), elapsed(16)
			if t16 >= t4 {
				t.Errorf("no speedup from 4 to 16 ranks: %g -> %g", t4, t16)
			}
		})
	}
}

// TestZeusMPStructure verifies the port keeps the diagnostic structure the
// case study depends on: three Waitalls and the dt Allreduce inside nudt,
// and the bval3d loop.
func TestZeusMPStructure(t *testing.T) {
	g := psg.MustBuild(Get("zeusmp").MustParse())
	var waitalls, allreduces, bvalLoops int
	for _, v := range g.Vertices {
		if v.Name == "mpi_waitall" && strings.Contains(v.Key, "@nudt") {
			waitalls++
		}
		if v.Name == "mpi_allreduce" && strings.Contains(v.Key, "@nudt") {
			allreduces++
		}
		if v.Kind == psg.KindLoop && strings.Contains(v.Key, "@bval3d") {
			bvalLoops++
		}
	}
	if waitalls != 3 {
		t.Errorf("nudt waitalls = %d, want 3 (nudt.F:227/269/328 analogs)", waitalls)
	}
	if allreduces != 1 {
		t.Errorf("nudt allreduces = %d, want 1 (nudt.F:361 analog)", allreduces)
	}
	if bvalLoops != 1 {
		t.Errorf("bval3d loops = %d, want 1 (bval3d.F:155 analog)", bvalLoops)
	}
}

// TestSSTImbalanceByConstruction: per-rank pending-request counts differ.
func TestSSTImbalanceByConstruction(t *testing.T) {
	counts := map[float64]bool{}
	for rank := 0; rank < 32; rank++ {
		counts[600+600*float64((rank*13)%7)/7] = true
	}
	if len(counts) < 4 {
		t.Errorf("only %d distinct request counts across ranks", len(counts))
	}
}

// TestNekboneHeterogeneousCores: the core config must produce several
// distinct memory speeds.
func TestNekboneHeterogeneousCores(t *testing.T) {
	cfg := nekboneCores(32)
	speeds := map[float64]bool{}
	for r := 0; r < 32; r++ {
		speeds[cfg.MemSpeed(r)] = true
	}
	if len(speeds) != 5 {
		t.Errorf("%d distinct memory speeds, want 5", len(speeds))
	}
	for s := range speeds {
		if s < 1.0 || s > 1.8 {
			t.Errorf("memory speed %g out of [1.0, 1.8]", s)
		}
	}
}

// TestCGDelayVariantDiffersOnlyOnRank4 checks the injected-delay source
// differs from plain CG only by the injected flag.
func TestCGDelayVariantDiffersOnlyOnRank4(t *testing.T) {
	plain := Get("cg").Source
	delay := Get("cg-delay").Source
	if plain == delay {
		t.Fatal("variants identical")
	}
	if strings.Replace(delay, "var injected = 1;", "var injected = 0;", 1) != plain {
		t.Error("cg-delay should differ from cg only in the injected flag")
	}
}

// TestRegistryHelpers covers the lookup helpers.
func TestRegistryHelpers(t *testing.T) {
	if Get("nope") != nil {
		t.Error("unknown app should be nil")
	}
	if len(NPBNames()) != 8 {
		t.Errorf("NPB names = %v", NPBNames())
	}
	if len(EvaluationNames()) != 11 {
		t.Errorf("evaluation names = %v", EvaluationNames())
	}
	for _, n := range EvaluationNames() {
		if Get(n) == nil {
			t.Errorf("evaluation app %q not registered", n)
		}
	}
	for _, pair := range CaseStudies() {
		if Get(pair[0]) == nil || Get(pair[1]) == nil {
			t.Errorf("case study pair %v not registered", pair)
		}
	}
	names := Names()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Error("Names() not sorted")
		}
	}
}

// TestAppsLoopStructureMatchesIR cross-checks each app's AST loops against
// CFG natural-loop detection — the same property the PSG builder relies on.
func TestAppsLoopStructureMatchesIR(t *testing.T) {
	for _, name := range EvaluationNames() {
		prog := Get(name).MustParse()
		for _, fd := range prog.Funcs {
			fn := ir.Lower(fd)
			dt := ir.ComputeDominators(fn)
			loops := ir.FindLoops(fn, dt)
			for _, l := range loops {
				if l.Node == nil {
					t.Errorf("%s/%s: natural loop without AST node", name, fd.Name)
				}
			}
		}
	}
}
