package store

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
)

// fixture reads one of the repo's committed profile-set wire fixtures.
func fixture(t *testing.T, name string) []byte {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "testdata", name))
	if err != nil {
		t.Fatalf("read fixture: %v", err)
	}
	return data
}

func open(t *testing.T) *Store {
	t.Helper()
	s, err := Open(t.TempDir())
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	return s
}

// TestRoundTripFixtures stores the committed wire fixtures and asserts
// the store hands back byte-identical content — the property every
// served detect report depends on.
func TestRoundTripFixtures(t *testing.T) {
	s := open(t)
	for _, tc := range []struct {
		name string
		np   int
	}{{"cg.4.json", 4}, {"cg.8.json", 8}} {
		data := fixture(t, tc.name)
		k, err := s.Put("cg", tc.np, data)
		if err != nil {
			t.Fatalf("Put %s: %v", tc.name, err)
		}
		if k.App != "cg" || k.NP != tc.np || k.Hash != HashOf(data) {
			t.Fatalf("Put %s returned key %v", tc.name, k)
		}
		got, err := s.Get(k)
		if err != nil {
			t.Fatalf("Get %s: %v", tc.name, err)
		}
		if !bytes.Equal(got, data) {
			t.Fatalf("%s: stored bytes differ from fixture (%d vs %d bytes)", tc.name, len(got), len(data))
		}
		// Idempotent re-put returns the same address.
		k2, err := s.Put("cg", tc.np, data)
		if err != nil {
			t.Fatalf("re-Put %s: %v", tc.name, err)
		}
		if k2 != k {
			t.Fatalf("re-Put %s: key changed %v -> %v", tc.name, k, k2)
		}
	}
	entries, err := s.List()
	if err != nil {
		t.Fatalf("List: %v", err)
	}
	if len(entries) != 2 || entries[0].NP != 4 || entries[1].NP != 8 {
		t.Fatalf("List = %+v", entries)
	}
}

func TestGetVerifiesContentHash(t *testing.T) {
	s := open(t)
	k, err := s.Put("cg", 4, []byte(`{"app":"cg"}`))
	if err != nil {
		t.Fatal(err)
	}
	// Corrupt the stored file behind the store's back.
	if err := os.WriteFile(s.pathFor(k), []byte(`{"app":"evil"}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(k); err == nil {
		t.Fatal("Get returned corrupted bytes without error")
	}
}

func TestPutValidation(t *testing.T) {
	s := open(t)
	if _, err := s.Put("../evil", 4, []byte("x")); err == nil {
		t.Fatal("Put accepted a traversing app name")
	}
	if _, err := s.Put(".hidden", 4, []byte("x")); err == nil {
		t.Fatal("Put accepted a dot-leading app name")
	}
	if _, err := s.Put("cg", 0, []byte("x")); err == nil {
		t.Fatal("Put accepted scale 0")
	}
	if _, err := s.Put("cg", 4, nil); err == nil {
		t.Fatal("Put accepted empty bytes")
	}
	if _, err := s.Put("synth-0001-stencil-imbalance", 4, []byte("x")); err != nil {
		t.Fatalf("Put rejected a legal synth case name: %v", err)
	}
}

func TestOnlyAndResolve(t *testing.T) {
	s := open(t)
	if _, err := s.Only("cg", 4); err == nil {
		t.Fatal("Only succeeded on an empty store")
	}
	a, _ := s.Put("cg", 4, []byte("payload-a"))
	if e, err := s.Only("cg", 4); err != nil || e.Key != a {
		t.Fatalf("Only = %v, %v", e, err)
	}
	b, _ := s.Put("cg", 4, []byte("payload-b"))
	if _, err := s.Only("cg", 4); err == nil {
		t.Fatal("Only did not reject an ambiguous (app, np)")
	}
	if e, err := s.Resolve("cg", a.Hash[:12]); err != nil || e.Key != a {
		t.Fatalf("Resolve(a) = %v, %v", e, err)
	}
	if e, err := s.Resolve("cg", b.Hash); err != nil || e.Key != b {
		t.Fatalf("Resolve(full b) = %v, %v", e, err)
	}
	if _, err := s.Resolve("cg", "zz"); err == nil {
		t.Fatal("Resolve accepted a non-hex prefix")
	}
	if a.Hash[0] == b.Hash[0] {
		if _, err := s.Resolve("cg", a.Hash[:1]); err == nil {
			t.Fatal("Resolve did not reject an ambiguous prefix")
		}
	}
}

// TestConcurrentPutGet hammers one store from many goroutines — run
// under -race in CI. Writers repeatedly store both distinct and
// identical payloads while readers Get and List; every read must see
// complete, hash-consistent bytes.
func TestConcurrentPutGet(t *testing.T) {
	s := open(t)
	const writers, readers, rounds = 8, 8, 20

	payload := func(w, r int) []byte {
		return []byte(fmt.Sprintf(`{"app":"app%d","np":4,"round":%d,"pad":"%064d"}`, w%4, r%5, w*r))
	}

	var wg sync.WaitGroup
	errs := make(chan error, writers+readers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				data := payload(w, r)
				k, err := s.Put(fmt.Sprintf("app%d", w%4), 4, data)
				if err != nil {
					errs <- err
					return
				}
				got, err := s.Get(k)
				if err != nil {
					errs <- err
					return
				}
				if !bytes.Equal(got, data) {
					errs <- fmt.Errorf("writer %d round %d: bytes differ", w, r)
					return
				}
			}
		}(w)
	}
	for g := 0; g < readers; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := 0; r < rounds; r++ {
				entries, err := s.List()
				if err != nil {
					errs <- err
					return
				}
				for _, e := range entries {
					data, err := s.Get(e.Key)
					if err != nil {
						errs <- err
						return
					}
					if HashOf(data) != e.Hash {
						errs <- fmt.Errorf("entry %v: bytes do not hash to address", e.Key)
						return
					}
				}
			}
		}()
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every distinct payload is present exactly once per (app, np, hash).
	entries, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	seen := map[Key]bool{}
	for _, e := range entries {
		if seen[e.Key] {
			t.Fatalf("duplicate listing for %v", e.Key)
		}
		seen[e.Key] = true
	}
}

func TestListDeterministicOrder(t *testing.T) {
	s := open(t)
	// Insert out of order across apps and scales.
	s.Put("zeta", 8, []byte("z8"))
	s.Put("alpha", 16, []byte("a16"))
	s.Put("alpha", 4, []byte("a4"))
	s.Put("alpha", 4, []byte("a4-second"))
	s.Put("zeta", 2, []byte("z2"))
	first, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	second, err := s.List()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(first, second) {
		t.Fatal("List order is not stable")
	}
	var order []string
	for _, e := range first {
		order = append(order, fmt.Sprintf("%s/%d", e.App, e.NP))
	}
	want := []string{"alpha/4", "alpha/4", "alpha/16", "zeta/2", "zeta/8"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("List order = %v, want %v", order, want)
	}
	// The two alpha/4 entries come back hash-sorted.
	if first[0].Hash > first[1].Hash {
		t.Fatal("entries for one (app, np) are not hash-sorted")
	}
}

// TestHistoryUploadOrder pins the ordering contract the rolling
// baseline depends on: History returns entries in upload order (the
// per-scale history.log), not hash order, and an idempotent re-Put
// never duplicates a log line.
func TestHistoryUploadOrder(t *testing.T) {
	s := open(t)
	payloads := [][]byte{[]byte("run-one"), []byte("run-two"), []byte("run-three")}
	var keys []Key
	for _, p := range payloads {
		k, err := s.Put("cg", 8, p)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, k)
	}
	// Re-Put the first payload: content-addressed, must not re-log.
	if _, err := s.Put("cg", 8, payloads[0]); err != nil {
		t.Fatal(err)
	}
	hist, err := s.History("cg", 8)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != len(keys) {
		t.Fatalf("History returned %d entries for %d uploads", len(hist), len(keys))
	}
	for i, e := range hist {
		if e.Key != keys[i] {
			t.Fatalf("History[%d] = %v, want upload #%d %v", i, e.Key, i, keys[i])
		}
	}
	// The contract is non-trivial only if upload order differs from the
	// hash order ListScale uses; these payloads were picked to differ.
	listed, err := s.ListScale("cg", 8)
	if err != nil {
		t.Fatal(err)
	}
	sameOrder := true
	for i := range listed {
		if listed[i].Key != hist[i].Key {
			sameOrder = false
		}
	}
	if sameOrder {
		t.Fatal("test payloads hash in upload order; pick payloads whose hash order differs")
	}
	// history.log must stay invisible to the listing API.
	for _, e := range listed {
		if e.Hash == historyName {
			t.Fatal("history.log leaked into ListScale")
		}
	}
}

// TestHistoryLegacyUnlogged: stores written before the history log
// existed still produce a deterministic order — logged entries first in
// upload order, unlogged ones appended hash-ascending.
func TestHistoryLegacyUnlogged(t *testing.T) {
	s := open(t)
	a, _ := s.Put("cg", 4, []byte("logged-a"))
	b, _ := s.Put("cg", 4, []byte("logged-b"))
	// Rewrite the log so only the second upload is logged, as if the
	// first landed under an older store version.
	if err := os.WriteFile(s.historyPath("cg", 4), []byte(b.Hash+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	hist, err := s.History("cg", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 || hist[0].Key != b || hist[1].Key != a {
		t.Fatalf("History = %+v, want logged %v then legacy %v", hist, b, a)
	}
	// Removing the log entirely degrades to hash-ascending order.
	if err := os.Remove(s.historyPath("cg", 4)); err != nil {
		t.Fatal(err)
	}
	hist, err = s.History("cg", 4)
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 2 || hist[0].Hash > hist[1].Hash {
		t.Fatalf("logless History not hash-ascending: %+v", hist)
	}
}

// TestHistoryCorruptLog: a logged hash with no stored set is store
// corruption, reported via the ErrCorrupt sentinel (a 500, not a 4xx,
// at the serve layer).
func TestHistoryCorruptLog(t *testing.T) {
	s := open(t)
	k, _ := s.Put("cg", 4, []byte("present"))
	ghost := HashOf([]byte("never stored"))
	line := k.Hash + "\n" + ghost + "\n"
	if err := os.WriteFile(s.historyPath("cg", 4), []byte(line), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := s.History("cg", 4)
	if !errors.Is(err, ErrCorrupt) {
		t.Fatalf("History over a log naming a missing set: err = %v, want ErrCorrupt", err)
	}
	// Junk lines (bad hashes, blanks) are skipped, not errors.
	if err := os.WriteFile(s.historyPath("cg", 4), []byte("not-a-hash\n\n"+k.Hash+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	hist, err := s.History("cg", 4)
	if err != nil || len(hist) != 1 || hist[0].Key != k {
		t.Fatalf("History with junk lines = %+v, %v", hist, err)
	}
}

// TestErrorSentinels pins the error-classification contract the serve
// layer maps to HTTP statuses: every store error wraps exactly one of
// os.ErrInvalid (client error), os.ErrNotExist, ErrAmbiguous, or
// ErrCorrupt.
func TestErrorSentinels(t *testing.T) {
	s := open(t)
	a, _ := s.Put("cg", 4, []byte("payload-a"))
	b, _ := s.Put("cg", 4, []byte("payload-b"))

	if _, err := s.Get(Key{App: "../evil", NP: 4, Hash: a.Hash}); !errors.Is(err, os.ErrInvalid) {
		t.Fatalf("Get(bad app): %v, want os.ErrInvalid", err)
	}
	missing := Key{App: "cg", NP: 4, Hash: HashOf([]byte("missing"))}
	if _, err := s.Get(missing); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("Get(missing): %v, want os.ErrNotExist", err)
	}
	if _, err := s.History("../evil", 4); !errors.Is(err, os.ErrInvalid) {
		t.Fatalf("History(bad app): %v, want os.ErrInvalid", err)
	}
	if _, err := s.History("cg", 0); !errors.Is(err, os.ErrInvalid) {
		t.Fatalf("History(np=0): %v, want os.ErrInvalid", err)
	}
	if _, err := s.Resolve("cg", "zz"); !errors.Is(err, os.ErrInvalid) {
		t.Fatalf("Resolve(non-hex): %v, want os.ErrInvalid", err)
	}
	if a.Hash[0] == b.Hash[0] {
		if _, err := s.Resolve("cg", a.Hash[:1]); !errors.Is(err, ErrAmbiguous) {
			t.Fatalf("Resolve(ambiguous): %v, want ErrAmbiguous", err)
		}
	}
	if _, err := s.Only("cg", 4); !errors.Is(err, ErrAmbiguous) {
		t.Fatalf("Only(two sets): %v, want ErrAmbiguous", err)
	}
	if err := os.WriteFile(s.pathFor(a), []byte("tampered"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(a); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Get(tampered): %v, want ErrCorrupt", err)
	}
}
