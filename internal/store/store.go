// Package store is a content-addressed on-disk store for profile-set
// wire bytes (prof.EncodeProfileSet output). It is the persistence
// layer behind scalana-serve: uploads land here once and every later
// detect/sweep/comm query reads them back, so the store's contract is
// byte fidelity — Get returns exactly the bytes Put received, verified
// against the content hash on the way out.
//
// Layout: one file per stored set,
//
//	<root>/<app>/<np>/<sha256-hex>.json
//
// keyed by (app, scale, content hash). The hash is the address: storing
// the same bytes twice is a no-op that returns the same Key, and two
// different profile sets for one (app, np) coexist under different
// hashes (the server refuses to guess between them — queries either
// name a hash or require the pair to be unambiguous).
//
// Writes are atomic: bytes go to a temporary file in the destination
// directory and are renamed into place, so a concurrent reader sees
// either nothing or the complete file, never a partial write. The store
// is safe for concurrent use by any number of goroutines (and, because
// the rename is the commit point, by cooperating processes sharing the
// directory).
package store

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
	"sync"
)

// Sentinel errors, used by callers (the HTTP service in particular) to
// map store failures onto the right failure class instead of guessing
// from message text. Every error the store returns wraps exactly one of
// these or os.ErrNotExist / os.ErrInvalid:
//
//   - os.ErrInvalid: the caller's input was malformed (bad app name, bad
//     hash, non-positive scale) — a client error.
//   - os.ErrNotExist: the named content is not stored.
//   - ErrAmbiguous: the query matches more than one stored set and the
//     store refuses to guess.
//   - ErrCorrupt: stored state contradicts itself — bytes that no longer
//     match their content hash, or a history log naming a missing file.
var (
	ErrAmbiguous = errors.New("ambiguous")
	ErrCorrupt   = errors.New("store corrupt")
)

// Key addresses one stored profile set.
type Key struct {
	// App is the application name the set was stored under.
	App string `json:"app"`
	// NP is the job scale.
	NP int `json:"np"`
	// Hash is the lowercase hex SHA-256 of the stored bytes.
	Hash string `json:"hash"`
}

// String renders the key the way the HTTP API spells it.
func (k Key) String() string { return fmt.Sprintf("%s/%d/%s", k.App, k.NP, k.Hash) }

// Entry is one stored set in a listing.
type Entry struct {
	Key
	// Size is the stored byte count.
	Size int64 `json:"size"`
}

// Store is a content-addressed profile-set store rooted at one
// directory.
type Store struct {
	root string
	// mu serializes writes (Put and its history-log append) within this
	// process. Readers of stored sets need no lock — rename is the commit
	// point — but the upload-order log is append-only per (app, np) and
	// the append must pair atomically with the file landing.
	mu sync.Mutex
}

// Open returns a store rooted at dir, creating the directory if needed.
func Open(dir string) (*Store, error) {
	if dir == "" {
		return nil, fmt.Errorf("store: empty root directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("store: open %s: %w", dir, err)
	}
	return &Store{root: dir}, nil
}

// Root returns the store's root directory.
func (s *Store) Root() string { return s.root }

// ValidName reports whether an application name is usable as a store
// path component: ASCII letters, digits, dot, underscore, and dash, not
// starting with a dot (so names can never traverse or collide with
// temporary files).
func ValidName(app string) bool {
	if app == "" || app[0] == '.' {
		return false
	}
	for i := 0; i < len(app); i++ {
		c := app[i]
		switch {
		case c >= 'a' && c <= 'z', c >= 'A' && c <= 'Z', c >= '0' && c <= '9':
		case c == '.' || c == '_' || c == '-':
		default:
			return false
		}
	}
	return true
}

// HashOf returns the store address of a byte string: lowercase hex
// SHA-256.
func HashOf(data []byte) string {
	sum := sha256.Sum256(data)
	return hex.EncodeToString(sum[:])
}

func (s *Store) dirFor(app string, np int) string {
	return filepath.Join(s.root, app, strconv.Itoa(np))
}

func (s *Store) pathFor(k Key) string {
	return filepath.Join(s.dirFor(k.App, k.NP), k.Hash+".json")
}

// historyName is the per-(app, np) upload-order log: one content hash
// per line, appended when a Put first lands that content. The name is
// not a valid <hash>.json entry, so listings skip it automatically.
const historyName = "history.log"

func (s *Store) historyPath(app string, np int) string {
	return filepath.Join(s.dirFor(app, np), historyName)
}

// Put stores data under (app, np, HashOf(data)) and returns the key.
// Storing bytes that are already present is a no-op returning the same
// key — content addressing makes the write idempotent. The write is
// atomic (temp file + rename in the destination directory), and the
// first time a given content lands its hash is appended to the (app,
// np) history log, establishing the upload order History reports.
func (s *Store) Put(app string, np int, data []byte) (Key, error) {
	if !ValidName(app) {
		return Key{}, fmt.Errorf("store: invalid app name %q: %w", app, os.ErrInvalid)
	}
	if np < 1 {
		return Key{}, fmt.Errorf("store: invalid scale %d: %w", np, os.ErrInvalid)
	}
	if len(data) == 0 {
		return Key{}, fmt.Errorf("store: refusing to store an empty profile set: %w", os.ErrInvalid)
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	k := Key{App: app, NP: np, Hash: HashOf(data)}
	path := s.pathFor(k)
	if _, err := os.Stat(path); err == nil {
		return k, nil // content-addressed: same path means same bytes
	}
	dir := s.dirFor(app, np)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return Key{}, fmt.Errorf("store: put %s: %w", k, err)
	}
	tmp, err := os.CreateTemp(dir, ".put-*")
	if err != nil {
		return Key{}, fmt.Errorf("store: put %s: %w", k, err)
	}
	tmpName := tmp.Name()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmpName)
		return Key{}, fmt.Errorf("store: put %s: %w", k, err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmpName)
		return Key{}, fmt.Errorf("store: put %s: %w", k, err)
	}
	if err := os.Rename(tmpName, path); err != nil {
		os.Remove(tmpName)
		return Key{}, fmt.Errorf("store: put %s: %w", k, err)
	}
	if err := s.appendHistory(app, np, k.Hash); err != nil {
		return Key{}, err
	}
	return k, nil
}

// appendHistory records one newly landed hash in the upload-order log.
// Caller holds s.mu.
func (s *Store) appendHistory(app string, np int, hash string) error {
	f, err := os.OpenFile(s.historyPath(app, np), os.O_CREATE|os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		return fmt.Errorf("store: history %s/%d: %w", app, np, err)
	}
	_, werr := f.WriteString(hash + "\n")
	cerr := f.Close()
	if werr != nil {
		return fmt.Errorf("store: history %s/%d: %w", app, np, werr)
	}
	if cerr != nil {
		return fmt.Errorf("store: history %s/%d: %w", app, np, cerr)
	}
	return nil
}

// History returns the stored entries for one (app, np) in upload order —
// the order Puts first landed their content. The position of an entry in
// the returned slice is its stable history sequence number, the fold
// order rolling baselines use.
//
// The log is reconciled against the directory on every read: duplicate
// log lines collapse to their first occurrence, a logged hash whose file
// has vanished is ErrCorrupt (history names a run that no longer
// exists), and stored sets that predate the log (or were copied in by
// hand) are appended after all logged entries in hash order, so legacy
// stores keep a deterministic — if arbitrary — ordering.
func (s *Store) History(app string, np int) ([]Entry, error) {
	if !ValidName(app) {
		return nil, fmt.Errorf("store: invalid app name %q: %w", app, os.ErrInvalid)
	}
	if np < 1 {
		return nil, fmt.Errorf("store: invalid scale %d: %w", np, os.ErrInvalid)
	}
	stored, err := s.ListScale(app, np)
	if err != nil {
		return nil, err
	}
	byHash := make(map[string]Entry, len(stored))
	for _, e := range stored {
		byHash[e.Hash] = e
	}

	s.mu.Lock()
	raw, err := os.ReadFile(s.historyPath(app, np))
	s.mu.Unlock()
	if err != nil && !os.IsNotExist(err) {
		return nil, fmt.Errorf("store: history %s/%d: %w", app, np, err)
	}

	var out []Entry
	seen := map[string]bool{}
	for _, line := range strings.Split(string(raw), "\n") {
		hash := strings.TrimSpace(line)
		if !validHash(hash) || seen[hash] {
			continue
		}
		seen[hash] = true
		e, ok := byHash[hash]
		if !ok {
			return nil, fmt.Errorf("store: history %s/%d names %s but no such set is stored: %w",
				app, np, hash, ErrCorrupt)
		}
		out = append(out, e)
	}
	for _, e := range stored { // ListScale is hash-ascending, so unlogged legacy sets append deterministically
		if !seen[e.Hash] {
			out = append(out, e)
		}
	}
	return out, nil
}

// Get returns the stored bytes for a key, verified against the content
// hash — corruption on disk surfaces as an error here, never as wrong
// bytes downstream.
func (s *Store) Get(k Key) ([]byte, error) {
	if !ValidName(k.App) || !validHash(k.Hash) || k.NP < 1 {
		return nil, fmt.Errorf("store: invalid key %s: %w", k, os.ErrInvalid)
	}
	data, err := os.ReadFile(s.pathFor(k))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, fmt.Errorf("store: %s: %w", k, os.ErrNotExist)
		}
		return nil, fmt.Errorf("store: get %s: %w", k, err)
	}
	if got := HashOf(data); got != k.Hash {
		return nil, fmt.Errorf("store: %s: content hash mismatch (stored bytes hash to %s): %w", k, got, ErrCorrupt)
	}
	return data, nil
}

// Has reports whether a key is present.
func (s *Store) Has(k Key) bool {
	if !ValidName(k.App) || !validHash(k.Hash) || k.NP < 1 {
		return false
	}
	_, err := os.Stat(s.pathFor(k))
	return err == nil
}

// List returns every stored entry, sorted by app name, then scale
// ascending, then hash — a deterministic order independent of insertion
// history.
func (s *Store) List() ([]Entry, error) {
	apps, err := os.ReadDir(s.root)
	if err != nil {
		return nil, fmt.Errorf("store: list: %w", err)
	}
	var out []Entry
	for _, appDir := range apps {
		if !appDir.IsDir() || !ValidName(appDir.Name()) {
			continue
		}
		sub, err := s.ListApp(appDir.Name())
		if err != nil {
			return nil, err
		}
		out = append(out, sub...)
	}
	return out, nil
}

// ListApp returns the stored entries for one app, sorted by scale
// ascending then hash.
func (s *Store) ListApp(app string) ([]Entry, error) {
	if !ValidName(app) {
		return nil, fmt.Errorf("store: invalid app name %q: %w", app, os.ErrInvalid)
	}
	npDirs, err := os.ReadDir(filepath.Join(s.root, app))
	if err != nil {
		if os.IsNotExist(err) {
			return nil, nil
		}
		return nil, fmt.Errorf("store: list %s: %w", app, err)
	}
	type npEntry struct {
		np  int
		dir string
	}
	var nps []npEntry
	for _, d := range npDirs {
		if !d.IsDir() {
			continue
		}
		np, err := strconv.Atoi(d.Name())
		if err != nil || np < 1 {
			continue
		}
		nps = append(nps, npEntry{np: np, dir: d.Name()})
	}
	sort.Slice(nps, func(i, j int) bool { return nps[i].np < nps[j].np })
	var out []Entry
	for _, ne := range nps {
		files, err := os.ReadDir(filepath.Join(s.root, app, ne.dir))
		if err != nil {
			return nil, fmt.Errorf("store: list %s/%d: %w", app, ne.np, err)
		}
		for _, f := range files { // ReadDir sorts by name, so hashes come out ordered
			name := f.Name()
			hash, ok := strings.CutSuffix(name, ".json")
			if f.IsDir() || !ok || !validHash(hash) {
				continue
			}
			info, err := f.Info()
			if err != nil {
				return nil, fmt.Errorf("store: list %s/%d/%s: %w", app, ne.np, name, err)
			}
			out = append(out, Entry{Key: Key{App: app, NP: ne.np, Hash: hash}, Size: info.Size()})
		}
	}
	return out, nil
}

// ListScale returns the stored entries for one (app, scale), sorted by
// hash.
func (s *Store) ListScale(app string, np int) ([]Entry, error) {
	all, err := s.ListApp(app)
	if err != nil {
		return nil, err
	}
	var out []Entry
	for _, e := range all {
		if e.NP == np {
			out = append(out, e)
		}
	}
	return out, nil
}

// Resolve finds the unique stored entry for an app whose hash starts
// with prefix (a full hash is a prefix of itself). Ambiguous and
// missing prefixes are errors — the store never guesses.
func (s *Store) Resolve(app, prefix string) (Entry, error) {
	if prefix == "" || !validHashPrefix(prefix) {
		return Entry{}, fmt.Errorf("store: invalid hash prefix %q: %w", prefix, os.ErrInvalid)
	}
	all, err := s.ListApp(app)
	if err != nil {
		return Entry{}, err
	}
	var matches []Entry
	for _, e := range all {
		if strings.HasPrefix(e.Hash, prefix) {
			matches = append(matches, e)
		}
	}
	switch len(matches) {
	case 0:
		return Entry{}, fmt.Errorf("store: no stored profile set for app %s matches hash %q: %w", app, prefix, os.ErrNotExist)
	case 1:
		return matches[0], nil
	default:
		return Entry{}, fmt.Errorf("store: hash prefix %q is ambiguous for app %s (%d matches): %w", prefix, app, len(matches), ErrAmbiguous)
	}
}

// Only finds the unique stored entry for (app, np). Zero entries or
// more than one are errors: when several uploads exist for one scale, a
// query must name the hash it wants.
func (s *Store) Only(app string, np int) (Entry, error) {
	entries, err := s.ListScale(app, np)
	if err != nil {
		return Entry{}, err
	}
	switch len(entries) {
	case 0:
		return Entry{}, fmt.Errorf("store: no stored profile set for app %s at np=%d: %w", app, np, os.ErrNotExist)
	case 1:
		return entries[0], nil
	default:
		return Entry{}, fmt.Errorf("store: %d profile sets stored for app %s at np=%d; name the content hash to pick one: %w", len(entries), app, np, ErrAmbiguous)
	}
}

func validHash(h string) bool {
	if len(h) != sha256.Size*2 {
		return false
	}
	return validHashPrefix(h)
}

func validHashPrefix(h string) bool {
	if h == "" || len(h) > sha256.Size*2 {
		return false
	}
	for i := 0; i < len(h); i++ {
		c := h[i]
		if (c < '0' || c > '9') && (c < 'a' || c > 'f') {
			return false
		}
	}
	return true
}
