// Package machine models the processor cores and performance-monitoring
// unit (PMU) that ScalAna reads through PAPI on real hardware. The paper's
// detection logic consumes per-vertex vectors of hardware counters
// (TOT_INS, TOT_CYC, TOT_LST_INS, cache misses); this model produces the
// same vectors from a synthetic IPC + cache + memory cost model, including
// per-rank heterogeneous memory speed (the Nekbone case study's root cause).
package machine

import "fmt"

// Counter indexes one PMU counter in a Vec.
type Counter int

// PMU counters exposed to the tools (names follow PAPI presets used in the
// paper's case studies).
const (
	TotIns    Counter = iota // TOT_INS: total instructions
	TotCyc                   // TOT_CYC: total cycles
	TotLstIns                // TOT_LST_INS: load/store instructions
	L2Miss                   // L2_TCM: cache misses reaching memory
	FpOps                    // FP_OPS: floating point operations
	NumCounters
)

var counterNames = [NumCounters]string{"TOT_INS", "TOT_CYC", "TOT_LST_INS", "L2_MISS", "FP_OPS"}

func (c Counter) String() string {
	if c >= 0 && c < NumCounters {
		return counterNames[c]
	}
	return fmt.Sprintf("Counter(%d)", int(c))
}

// Vec is one PMU counter vector.
type Vec [NumCounters]float64

// Add accumulates other into v.
func (v *Vec) Add(other Vec) {
	for i := range v {
		v[i] += other[i]
	}
}

// Scale returns v scaled by f.
func (v Vec) Scale(f float64) Vec {
	for i := range v {
		v[i] *= f
	}
	return v
}

// Config describes the simulated core microarchitecture.
type Config struct {
	ClockHz       float64 // core frequency
	IPC           float64 // sustained non-memory instructions per cycle
	FlopsPerCycle float64 // peak FP throughput per cycle
	L1Bytes       float64
	L2Bytes       float64
	L1LatCycles   float64
	L2LatCycles   float64
	MemLatCycles  float64
	// InsOverhead is the fraction of extra control instructions charged on
	// top of flops+loads+stores.
	InsOverhead float64
	// MemSpeed returns the relative memory speed of the core hosting the
	// given rank (1.0 = nominal; >1 means slower memory). Nil means uniform.
	// This reproduces the heterogeneous-core effect behind the Nekbone
	// scaling loss (paper §VI-D3).
	MemSpeed func(rank int) float64
}

// DefaultConfig resembles one Xeon E5-2692v2 core (Tianhe-2's node CPU).
func DefaultConfig() Config {
	return Config{
		ClockHz:       2.2e9,
		IPC:           2.0,
		FlopsPerCycle: 4.0,
		L1Bytes:       32 << 10,
		L2Bytes:       256 << 10,
		L1LatCycles:   4,
		L2LatCycles:   12,
		MemLatCycles:  180,
		InsOverhead:   0.15,
	}
}

// Core is one simulated core's PMU state.
type Core struct {
	cfg       Config
	rank      int
	memFactor float64
	counters  Vec
}

// NewCore creates the core hosting the given rank.
func NewCore(cfg Config, rank int) *Core {
	mf := 1.0
	if cfg.MemSpeed != nil {
		mf = cfg.MemSpeed(rank)
	}
	if mf <= 0 {
		mf = 1.0
	}
	return &Core{cfg: cfg, rank: rank, memFactor: mf}
}

// Counters returns the accumulated PMU vector.
func (c *Core) Counters() Vec { return c.counters }

// MemFactor returns the relative memory slowdown of this core.
func (c *Core) MemFactor() float64 { return c.memFactor }

// Compute models executing a kernel performing the given floating point
// operations, loads, stores, over a working set of ws bytes. It returns the
// elapsed virtual time in seconds and the PMU counter deltas.
//
// The cost model overlaps computation and memory: cycles are the maximum of
// the FP pipeline time, the instruction issue time, and the memory time
// derived from a two-level cache hit model over the working set.
func (c *Core) Compute(flops, loads, stores, ws float64) (float64, Vec) {
	if flops < 0 || loads < 0 || stores < 0 {
		panic(fmt.Sprintf("machine: negative compute operands (%g,%g,%g)", flops, loads, stores))
	}
	mem := loads + stores
	ins := (flops + mem) * (1 + c.cfg.InsOverhead)

	// Two-level cache model: the fraction of the working set that fits in
	// each level hits there; the remainder goes to memory.
	hitL1, hitL2 := 1.0, 0.0
	if ws > c.cfg.L1Bytes && ws > 0 {
		hitL1 = c.cfg.L1Bytes / ws
		rem := 1 - hitL1
		hitL2 = rem
		if ws > c.cfg.L2Bytes {
			hitL2 = rem * (c.cfg.L2Bytes / ws)
		}
	}
	missMem := 1 - hitL1 - hitL2
	if missMem < 0 {
		missMem = 0
	}
	perAccess := hitL1*c.cfg.L1LatCycles + hitL2*c.cfg.L2LatCycles + missMem*c.cfg.MemLatCycles*c.memFactor

	cyclesFP := flops / c.cfg.FlopsPerCycle
	cyclesIssue := ins / c.cfg.IPC
	cyclesMem := mem * perAccess / 4 // pipelined memory accesses (MLP of 4)
	cycles := cyclesFP
	if cyclesIssue > cycles {
		cycles = cyclesIssue
	}
	if cyclesMem > cycles {
		cycles = cyclesMem
	}

	var d Vec
	d[TotIns] = ins
	d[TotCyc] = cycles
	d[TotLstIns] = mem
	d[L2Miss] = missMem * mem
	d[FpOps] = flops
	c.counters.Add(d)
	return cycles / c.cfg.ClockHz, d
}

// Overhead charges light bookkeeping work (interpreter glue, MPI call
// entry): n abstract instructions at the core's issue rate.
func (c *Core) Overhead(n float64) (float64, Vec) {
	var d Vec
	d[TotIns] = n
	d[TotCyc] = n / c.cfg.IPC
	// Only two counters move; skip the generic Vec.Add on this hot path
	// (one Overhead per interpreted statement).
	c.counters[TotIns] += d[TotIns]
	c.counters[TotCyc] += d[TotCyc]
	return d[TotCyc] / c.cfg.ClockHz, d
}
