package machine

import (
	"testing"
	"testing/quick"
)

func TestComputeBasics(t *testing.T) {
	c := NewCore(DefaultConfig(), 0)
	dt, d := c.Compute(1e6, 1e5, 5e4, 1024)
	if dt <= 0 {
		t.Fatalf("elapsed = %g, want > 0", dt)
	}
	if d[TotIns] < 1e6+1.5e5 {
		t.Errorf("TOT_INS = %g, want >= flops+mem", d[TotIns])
	}
	if d[TotLstIns] != 1.5e5 {
		t.Errorf("TOT_LST_INS = %g, want 1.5e5", d[TotLstIns])
	}
	if d[FpOps] != 1e6 {
		t.Errorf("FP_OPS = %g", d[FpOps])
	}
	if got := c.Counters(); got != d {
		t.Errorf("accumulated counters %v != delta %v after one call", got, d)
	}
	c.Compute(1e6, 1e5, 5e4, 1024)
	if got := c.Counters()[TotIns]; got != 2*d[TotIns] {
		t.Errorf("counters should accumulate: %g != %g", got, 2*d[TotIns])
	}
}

func TestComputeFlopsScaling(t *testing.T) {
	c := NewCore(DefaultConfig(), 0)
	t1, _ := c.Compute(1e7, 0, 0, 64)
	t2, _ := c.Compute(1e8, 0, 0, 64)
	ratio := t2 / t1
	if ratio < 9.5 || ratio > 10.5 {
		t.Errorf("10x flops gave %gx time", ratio)
	}
}

func TestCacheModelMonotonicInWorkingSet(t *testing.T) {
	cfg := DefaultConfig()
	prev := 0.0
	for _, ws := range []float64{1 << 10, 64 << 10, 512 << 10, 4 << 20, 64 << 20} {
		c := NewCore(cfg, 0)
		dt, _ := c.Compute(1e5, 1e6, 0, ws) // memory-dominated
		if dt < prev {
			t.Errorf("time decreased when working set grew to %g: %g < %g", ws, dt, prev)
		}
		prev = dt
	}
}

func TestCacheMissesIncreaseWithWorkingSet(t *testing.T) {
	cSmall := NewCore(DefaultConfig(), 0)
	_, dSmall := cSmall.Compute(1e5, 1e6, 0, 8<<10)
	cBig := NewCore(DefaultConfig(), 0)
	_, dBig := cBig.Compute(1e5, 1e6, 0, 32<<20)
	if dSmall[L2Miss] >= dBig[L2Miss] {
		t.Errorf("L2 misses: small ws %g >= big ws %g", dSmall[L2Miss], dBig[L2Miss])
	}
	if dSmall[L2Miss] != 0 {
		t.Errorf("fully cache-resident working set should have 0 misses, got %g", dSmall[L2Miss])
	}
}

func TestHeterogeneousMemorySpeed(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemSpeed = func(rank int) float64 {
		if rank == 1 {
			return 2.0
		}
		return 1.0
	}
	fast := NewCore(cfg, 0)
	slow := NewCore(cfg, 1)
	// Memory-bound kernel: the slow-memory core must take longer while
	// executing the identical instruction stream (the Nekbone signature).
	tf, df := fast.Compute(1e5, 2e6, 1e6, 32<<20)
	ts, ds := slow.Compute(1e5, 2e6, 1e6, 32<<20)
	if ts <= tf {
		t.Errorf("slow-memory core not slower: %g <= %g", ts, tf)
	}
	if df[TotLstIns] != ds[TotLstIns] {
		t.Errorf("TOT_LST_INS must be equal: %g vs %g", df[TotLstIns], ds[TotLstIns])
	}
	if ds[TotCyc] <= df[TotCyc] {
		t.Errorf("TOT_CYC must be higher on slow core: %g <= %g", ds[TotCyc], df[TotCyc])
	}
	// Compute-bound kernel: memory speed must not matter.
	tf2, _ := fast.Compute(1e7, 100, 0, 1024)
	ts2, _ := slow.Compute(1e7, 100, 0, 1024)
	if tf2 != ts2 {
		t.Errorf("compute-bound kernel affected by memory speed: %g vs %g", tf2, ts2)
	}
}

func TestMemSpeedZeroOrNegativeClamped(t *testing.T) {
	cfg := DefaultConfig()
	cfg.MemSpeed = func(rank int) float64 { return -1 }
	c := NewCore(cfg, 0)
	if c.MemFactor() != 1.0 {
		t.Errorf("negative mem factor should clamp to 1.0, got %g", c.MemFactor())
	}
}

func TestOverhead(t *testing.T) {
	c := NewCore(DefaultConfig(), 0)
	dt, d := c.Overhead(1000)
	if dt <= 0 || d[TotIns] != 1000 {
		t.Errorf("overhead: dt=%g ins=%g", dt, d[TotIns])
	}
	if d[TotLstIns] != 0 || d[FpOps] != 0 {
		t.Errorf("overhead should not touch mem/fp counters: %v", d)
	}
}

func TestComputePanicsOnNegative(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic on negative flops")
		}
	}()
	NewCore(DefaultConfig(), 0).Compute(-1, 0, 0, 0)
}

func TestVecAddScale(t *testing.T) {
	a := Vec{1, 2, 3, 4, 5}
	a.Add(Vec{10, 20, 30, 40, 50})
	if a != (Vec{11, 22, 33, 44, 55}) {
		t.Errorf("Add = %v", a)
	}
	if got := a.Scale(2); got != (Vec{22, 44, 66, 88, 110}) {
		t.Errorf("Scale = %v", got)
	}
}

func TestCounterNames(t *testing.T) {
	if TotIns.String() != "TOT_INS" || TotCyc.String() != "TOT_CYC" ||
		TotLstIns.String() != "TOT_LST_INS" || L2Miss.String() != "L2_MISS" || FpOps.String() != "FP_OPS" {
		t.Error("counter names wrong")
	}
	if Counter(42).String() == "" {
		t.Error("unknown counter should still render")
	}
}

// Property: for any non-negative operands, time and counters are finite,
// non-negative, and instructions cover at least the requested operations.
func TestComputePropertyNonNegative(t *testing.T) {
	c := NewCore(DefaultConfig(), 0)
	f := func(flops, loads, stores, ws uint32) bool {
		fl, ld, st, w := float64(flops), float64(loads), float64(stores), float64(ws)
		dt, d := c.Compute(fl, ld, st, w)
		if dt < 0 {
			return false
		}
		if d[TotIns] < fl+ld+st {
			return false
		}
		for _, x := range d {
			if x < 0 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

// Property: time is monotone in each operand.
func TestComputePropertyMonotone(t *testing.T) {
	cfg := DefaultConfig()
	f := func(base uint16, extra uint16) bool {
		b, e := float64(base)+1, float64(extra)
		c1 := NewCore(cfg, 0)
		c2 := NewCore(cfg, 0)
		t1, _ := c1.Compute(b, b, b, 4096)
		t2, _ := c2.Compute(b+e, b+e, b+e, 4096)
		return t2 >= t1
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
