// Package par provides the bounded fork-join primitives used by the
// sweep engine and the PPG assembler. All helpers preserve determinism
// by construction: workers only write to disjoint, index-addressed
// slots, and any order-sensitive reduction is left to the (serial)
// caller.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers clamps a requested parallelism degree to [1, n]: 0 (or any
// negative value) means "one worker per CPU", and the result never
// exceeds n, the number of work items.
func Workers(requested, n int) int {
	w := requested
	if w <= 0 {
		w = runtime.NumCPU()
	}
	if w > n {
		w = n
	}
	if w < 1 {
		w = 1
	}
	return w
}

// ForEach runs fn(i) for every i in [0, n) on at most workers
// goroutines (0 means one per CPU). fn must only touch state owned by
// index i; ForEach returns once every call has completed. With
// workers <= 1 (or n <= 1) everything runs on the calling goroutine in
// index order, reproducing a plain loop exactly.
func ForEach(n, workers int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers, n)
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	next := make(chan int)
	var wg sync.WaitGroup
	wg.Add(w)
	for k := 0; k < w; k++ {
		go func() {
			defer wg.Done()
			for i := range next {
				fn(i)
			}
		}()
	}
	for i := 0; i < n; i++ {
		next <- i
	}
	close(next)
	wg.Wait()
}

// MapErr runs fn(i) for every i in [0, n) on at most workers goroutines
// and collects each call's result into slot i of the returned slice.
// The first failure stops further items from starting (in-flight items
// finish), and the lowest-indexed error among the items that ran is
// returned — with one worker that is exactly the error a serial loop
// would have stopped on.
func MapErr[T any](n, workers int, fn func(i int) (T, error)) ([]T, error) {
	out := make([]T, n)
	errs := make([]error, n)
	var failed atomic.Bool
	ForEach(n, workers, func(i int) {
		if failed.Load() {
			return
		}
		out[i], errs[i] = fn(i)
		if errs[i] != nil {
			failed.Store(true)
		}
	})
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
