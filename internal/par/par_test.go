package par

import (
	"errors"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(0, 1000); got != min(runtime.NumCPU(), 1000) {
		t.Errorf("Workers(0, 1000) = %d", got)
	}
	if got := Workers(8, 3); got != 3 {
		t.Errorf("Workers(8, 3) = %d, want 3", got)
	}
	if got := Workers(-1, 0); got != 1 {
		t.Errorf("Workers(-1, 0) = %d, want 1", got)
	}
	if got := Workers(2, 100); got != 2 {
		t.Errorf("Workers(2, 100) = %d, want 2", got)
	}
}

func TestForEachCoversAllIndicesOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 0} {
		const n = 129
		var hits [n]int32
		ForEach(n, workers, func(i int) { atomic.AddInt32(&hits[i], 1) })
		for i, h := range hits {
			if h != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, h)
			}
		}
	}
}

func TestForEachSerialOrder(t *testing.T) {
	var order []int
	ForEach(5, 1, func(i int) { order = append(order, i) })
	for i, v := range order {
		if i != v {
			t.Fatalf("serial ForEach out of order: %v", order)
		}
	}
}

func TestMapErrResultsIndexed(t *testing.T) {
	out, err := MapErr(10, 4, func(i int) (int, error) { return i * i, nil })
	if err != nil {
		t.Fatal(err)
	}
	for i, v := range out {
		if v != i*i {
			t.Fatalf("out[%d] = %d", i, v)
		}
	}
}

func TestMapErrReturnsLowestIndexError(t *testing.T) {
	errA := errors.New("a")
	_, err := MapErr(8, 4, func(i int) (int, error) {
		if i >= 3 {
			return 0, fmt.Errorf("item %d: %w", i, errA)
		}
		return i, nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v, want a wrapped errA", err)
	}
	// Serial mode reproduces the serial loop exactly: item 3 errors and
	// nothing after it runs.
	var ran int32
	_, err = MapErr(8, 1, func(i int) (int, error) {
		atomic.AddInt32(&ran, 1)
		if i == 3 {
			return 0, errA
		}
		return i, nil
	})
	if !errors.Is(err, errA) {
		t.Fatalf("serial err = %v", err)
	}
	if ran != 4 {
		t.Errorf("serial MapErr ran %d items after an early error, want 4", ran)
	}
}

func TestMapErrStopsDispatchAfterFailure(t *testing.T) {
	errA := errors.New("a")
	var ran int32
	_, err := MapErr(1000, 2, func(i int) (int, error) {
		atomic.AddInt32(&ran, 1)
		return 0, errA
	})
	if !errors.Is(err, errA) {
		t.Fatalf("err = %v", err)
	}
	// With the first items failing, the vast majority of the 1000 items
	// must have been skipped (exact count depends on scheduling).
	if n := atomic.LoadInt32(&ran); n > 100 {
		t.Errorf("MapErr ran %d items after the first failure", n)
	}
}
