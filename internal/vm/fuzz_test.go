package vm_test

// FuzzVMvsInterp is the differential fuzz target: it generates a seeded
// synthetic MiniMP workload (the same generator that builds the detection
// accuracy corpus), executes it on the tree-walking interpreter and on
// the bytecode VM over raw simulator worlds with a recording hook, and
// asserts the two executions produce identical per-rank event streams and
// final virtual clocks. The interpreter is the oracle; any stream
// divergence is a VM bug.

import (
	"reflect"
	"testing"

	"scalana/internal/interp"
	"scalana/internal/machine"
	"scalana/internal/minilang"
	"scalana/internal/mpisim"
	"scalana/internal/psg"
	"scalana/internal/synth"
	"scalana/internal/vm"
)

// recEvent is one MPI event with the opaque attribution contexts
// flattened to interned vertex IDs, so whole streams compare with
// reflect.DeepEqual.
type recEvent struct {
	Kind         mpisim.EventKind
	Op           string
	Rank         int
	Peer         int
	Tag          int
	Bytes        float64
	TStart       float64
	TEnd         float64
	Wait         float64
	DepRank      int
	DepCtx       int
	Ctx          int
	Collective   bool
	Root         int
	Requests     int
	RecvRequests int
	SendPeer     int
	SendBytes    float64
	ReqID        int
}

func ctxVID(ctx any) int {
	if v, ok := ctx.(*psg.Vertex); ok {
		return int(v.VID)
	}
	return -1
}

// recorder copies every event's fields out of the simulator's reusable
// scratch storage (the Event pointer is only valid during the call).
type recorder struct{ events []recEvent }

func (r *recorder) Advance(p *mpisim.Proc, from, to float64, kind mpisim.AdvanceKind, ctx any, pmu machine.Vec) float64 {
	return 0
}

func (r *recorder) MPIEvent(p *mpisim.Proc, ev *mpisim.Event) float64 {
	r.events = append(r.events, recEvent{
		Kind: ev.Kind, Op: ev.Op, Rank: ev.Rank, Peer: ev.Peer, Tag: ev.Tag,
		Bytes: ev.Bytes, TStart: ev.TStart, TEnd: ev.TEnd, Wait: ev.Wait,
		DepRank: ev.DepRank, DepCtx: ctxVID(ev.DepCtx), Ctx: ctxVID(ev.Ctx),
		Collective: ev.Collective, Root: ev.Root, Requests: ev.Requests,
		RecvRequests: ev.RecvRequests, SendPeer: ev.SendPeer,
		SendBytes: ev.SendBytes, ReqID: ev.ReqID,
	})
	return 0
}

// runRecorded executes the program once on a fresh world and returns the
// per-rank event streams and final clocks.
func runRecorded(prog *minilang.Program, graph *psg.Graph, np int, useInterp bool) ([][]recEvent, []float64, error) {
	recs := make([]*recorder, np)
	world := mpisim.NewWorld(mpisim.Config{
		NP:   np,
		Seed: 1,
		HookFactory: func(rank int) []mpisim.Hook {
			recs[rank] = &recorder{}
			return []mpisim.Hook{recs[rank]}
		},
	})
	var body func(*mpisim.Proc)
	if useInterp {
		body = interp.NewRunner(prog, graph).Execute
	} else {
		vp, err := vm.Compile(prog, graph)
		if err != nil {
			return nil, nil, err
		}
		body = vm.NewRunner(vp).Execute
	}
	res, err := world.Run(body)
	if err != nil {
		return nil, nil, err
	}
	streams := make([][]recEvent, np)
	for r, rec := range recs {
		streams[r] = rec.events
	}
	return streams, res.Clocks, nil
}

func FuzzVMvsInterp(f *testing.F) {
	f.Add(int64(1), uint8(4))
	f.Add(int64(2), uint8(6))
	f.Add(int64(3), uint8(8))
	f.Add(int64(42), uint8(5))
	f.Add(int64(1234567), uint8(2))
	f.Fuzz(func(t *testing.T, seed int64, npRaw uint8) {
		corpus, err := synth.Generate(synth.GenConfig{Seed: seed, Cases: 1})
		if err != nil {
			t.Skip() // generator rejects the seed; nothing to compare
		}
		app := corpus.Cases[0].App()
		np := 2 + int(npRaw)%7
		if np < app.MinNP {
			np = app.MinNP
		}
		prog, err := app.Parse()
		if err != nil {
			t.Fatalf("generated program does not parse: %v", err)
		}
		graph, err := psg.Build(prog, psg.DefaultOptions())
		if err != nil {
			t.Fatalf("generated program does not build a PSG: %v", err)
		}

		vmStreams, vmClocks, vmErr := runRecorded(prog, graph, np, false)
		inStreams, inClocks, inErr := runRecorded(prog, graph, np, true)
		// Failed runs abort ranks at racy points, so streams are only
		// comparable for successful runs; both engines must still agree
		// on whether the run fails.
		if (vmErr != nil) != (inErr != nil) {
			t.Fatalf("engines disagree on failure: vm err=%v, interp err=%v", vmErr, inErr)
		}
		if vmErr != nil {
			return
		}
		if !reflect.DeepEqual(vmClocks, inClocks) {
			t.Fatalf("final clocks diverge:\nvm:     %v\ninterp: %v", vmClocks, inClocks)
		}
		for r := 0; r < np; r++ {
			if len(vmStreams[r]) != len(inStreams[r]) {
				t.Fatalf("rank %d: vm emitted %d events, interp %d", r, len(vmStreams[r]), len(inStreams[r]))
			}
			for i := range vmStreams[r] {
				if vmStreams[r][i] != inStreams[r][i] {
					t.Fatalf("rank %d event %d diverges:\nvm:     %+v\ninterp: %+v", r, i, vmStreams[r][i], inStreams[r][i])
				}
			}
		}
	})
}
