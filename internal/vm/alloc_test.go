package vm_test

import (
	"fmt"
	"testing"

	"scalana/internal/minilang"
	"scalana/internal/mpisim"
	"scalana/internal/psg"
	"scalana/internal/vm"
)

// The VM's execution hot path must not allocate per statement: frames are
// reused per call depth and values live in registers. The test compares
// whole-run allocation counts of a short and a long loop — any
// per-iteration allocation makes the long program allocate more.

func loopProgram(t *testing.T, iters int) (*minilang.Program, *psg.Graph, *vm.Program) {
	t.Helper()
	src := fmt.Sprintf(`func main() {
	var sum = 0;
	for (var i = 0; i < %d; i = i + 1) {
		var x = i * 3 + (i %% 7);
		if (x > 10) {
			sum = sum + x;
		} else {
			sum = sum - 1;
		}
	}
}
`, iters)
	prog, err := minilang.Parse("alloc.mp", src)
	if err != nil {
		t.Fatal(err)
	}
	graph, err := psg.Build(prog, psg.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	vp, err := vm.Compile(prog, graph)
	if err != nil {
		t.Fatal(err)
	}
	return prog, graph, vp
}

func TestExecuteAllocsIndependentOfIterations(t *testing.T) {
	_, _, shortProg := loopProgram(t, 100)
	_, _, longProg := loopProgram(t, 10000)
	world := mpisim.NewWorld(mpisim.Config{NP: 1, Seed: 1})
	p := world.Proc(0)

	measure := func(vp *vm.Program) float64 {
		r := vm.NewRunner(vp)
		r.Execute(p) // warm lazy state
		return testing.AllocsPerRun(20, func() { r.Execute(p) })
	}
	short := measure(shortProg)
	long := measure(longProg)
	if long > short {
		t.Errorf("100x more iterations allocate more: %.1f allocs vs %.1f — the VM loop body allocates per iteration", long, short)
	}
	// A run allocates only the machine and one frame; keep a generous
	// bound so harness changes don't flake, while still catching
	// per-statement regressions.
	if short > 16 {
		t.Errorf("Execute allocates %.1f objects per run, want a small constant", short)
	}
}
