package vm

import (
	"fmt"

	"scalana/internal/minilang"
)

// The bytecode compiler lowers one function's AST to a flat register
// machine. Registers are frame slots: parameters and locals get stable
// slots assigned by lexical scope (sound because the checker guarantees
// declare-before-use and per-scope uniqueness), and expression
// temporaries are allocated above the live locals and released at every
// statement boundary.
//
// The compiler's contract is behavioral identity with internal/interp:
// it emits explicit opSetCtx/opGlue instructions at exactly the points
// the tree-walker moves the attribution context and charges glue, keeps
// the interpreter's left-to-right evaluation and conversion order
// (opChkNum lets a binary operator convert its left operand before the
// right operand runs), and reproduces the interpreter's panic messages
// byte for byte. See DESIGN.md §10 for the full determinism contract.

type scope struct {
	names map[string]int32
	floor int32 // locals watermark to restore on exit
}

type loopPatch struct {
	breaks    []int32 // instruction indices whose target is the loop exit
	continues []int32 // instruction indices whose target is the continue point
}

type compiler struct {
	code   *Code
	scopes []scope
	floor  int32 // next local slot
	reg    int32 // next temporary slot (>= floor)
	loops  []*loopPatch

	posIdx  map[minilang.Pos]int32
	ctxIdx  map[minilang.NodeID]int32
	numIdx  map[float64]int32
	nameIdx map[string]int32
}

// compileFunc lowers one function declaration to bytecode.
func compileFunc(fn *minilang.FuncDecl) (*Code, error) {
	c := &compiler{
		code:    &Code{fn: fn},
		posIdx:  map[minilang.Pos]int32{},
		ctxIdx:  map[minilang.NodeID]int32{},
		numIdx:  map[float64]int32{},
		nameIdx: map[string]int32{},
	}
	c.pushScope()
	for _, p := range fn.Params {
		c.bind(p, c.declareSlot())
	}
	if err := c.block(fn.Body); err != nil {
		return nil, err
	}
	c.popScope()
	c.emit(instr{op: opRet, a: -1})
	return c.code, nil
}

func (c *compiler) emit(in instr) int32 {
	c.code.instrs = append(c.code.instrs, in)
	return int32(len(c.code.instrs) - 1)
}

func (c *compiler) pos(p minilang.Pos) int32 {
	if i, ok := c.posIdx[p]; ok {
		return i
	}
	i := int32(len(c.code.poss))
	c.code.poss = append(c.code.poss, p)
	c.posIdx[p] = i
	return i
}

// ctx interns an attribution site. One node can be the target of several
// opSetCtx instructions (an if statement sets its context twice), so
// sites are deduplicated by node ID.
func (c *compiler) ctx(n minilang.Node) int32 {
	id := n.ID()
	if i, ok := c.ctxIdx[id]; ok {
		return i
	}
	i := int32(len(c.code.ctxNodes))
	c.code.ctxNodes = append(c.code.ctxNodes, id)
	c.ctxIdx[id] = i
	return i
}

func (c *compiler) name(s string) int32 {
	if i, ok := c.nameIdx[s]; ok {
		return i
	}
	i := int32(len(c.code.names))
	c.code.names = append(c.code.names, s)
	c.nameIdx[s] = i
	return i
}

func (c *compiler) numConst(v float64) int32 {
	if i, ok := c.numIdx[v]; ok {
		return i
	}
	i := int32(len(c.code.consts))
	c.code.consts = append(c.code.consts, Value{Num: v})
	c.numIdx[v] = i
	return i
}

func (c *compiler) fnConst(name string) int32 {
	i := int32(len(c.code.consts))
	c.code.consts = append(c.code.consts, Value{Fn: name})
	return i
}

func (c *compiler) pushScope() {
	c.scopes = append(c.scopes, scope{names: map[string]int32{}, floor: c.floor})
}

func (c *compiler) popScope() {
	s := c.scopes[len(c.scopes)-1]
	c.scopes = c.scopes[:len(c.scopes)-1]
	c.floor = s.floor
	c.reg = c.floor
}

// declareSlot reserves the next local slot, keeping temporaries above it.
func (c *compiler) declareSlot() int32 {
	slot := c.floor
	c.floor++
	if c.reg < c.floor {
		c.reg = c.floor
	}
	c.grow(c.floor)
	return slot
}

func (c *compiler) bind(name string, slot int32) {
	c.scopes[len(c.scopes)-1].names[name] = slot
}

func (c *compiler) lookup(name string, pos minilang.Pos) (int32, error) {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if slot, ok := c.scopes[i].names[name]; ok {
			return slot, nil
		}
	}
	return 0, fmt.Errorf("vm: %s: undefined variable %q", pos, name)
}

func (c *compiler) tmp() int32 {
	r := c.reg
	c.reg++
	c.grow(c.reg)
	return r
}

func (c *compiler) grow(n int32) {
	if n > c.code.nSlots {
		c.code.nSlots = n
	}
}

// setCtx emits the context move every statement begins with.
func (c *compiler) setCtx(n minilang.Node) {
	c.emit(instr{op: opSetCtx, a: c.ctx(n)})
}

func (c *compiler) glue() {
	c.emit(instr{op: opGlue})
}

// patch points instruction i's jump target at the next emitted
// instruction.
func (c *compiler) patch(i int32) {
	in := &c.code.instrs[i]
	t := int32(len(c.code.instrs))
	if in.op == opJmp {
		in.a = t
	} else {
		in.b = t
	}
}

func (c *compiler) block(b *minilang.Block) error {
	c.pushScope()
	defer c.popScope()
	for _, s := range b.Stmts {
		if err := c.stmt(s); err != nil {
			return err
		}
	}
	return nil
}

func (c *compiler) stmt(s minilang.Stmt) error {
	// Temporaries never outlive a statement.
	defer func() { c.reg = c.floor }()
	c.setCtx(s)
	switch st := s.(type) {
	case *minilang.VarDecl:
		c.glue()
		// The slot is reserved before the initializer runs (temporaries
		// stay above it) but the name binds after, so the initializer
		// resolves any same-named variable to the enclosing scope, just
		// like the interpreter's eval-then-declare order.
		slot := c.declareSlot()
		if _, _, err := c.expr(st.Init, slot); err != nil {
			return err
		}
		c.bind(st.Name, slot)
	case *minilang.AssignStmt:
		c.glue()
		slot, err := c.lookup(st.Name, st.Pos())
		if err != nil {
			return err
		}
		if st.Idx != nil {
			p := c.pos(st.Pos())
			c.emit(instr{op: opArrChk, a: slot, d: c.name(st.Name), pos: p})
			idx, _, err := c.expr(st.Idx, -1)
			if err != nil {
				return err
			}
			// Index conversion and bounds check happen before the value
			// expression runs, matching the interpreter.
			c.emit(instr{op: opIdxChk, a: slot, b: idx, pos: p})
			val, _, err := c.expr(st.Val, -1)
			if err != nil {
				return err
			}
			c.emit(instr{op: opStoreIdx, a: slot, b: idx, c: val, pos: p})
			return nil
		}
		if _, _, err := c.expr(st.Val, slot); err != nil {
			return err
		}
	case *minilang.ExprStmt:
		c.glue()
		if _, _, err := c.expr(st.X, -1); err != nil {
			return err
		}
	case *minilang.ReturnStmt:
		if st.Value == nil {
			c.emit(instr{op: opRet, a: -1})
			return nil
		}
		r, _, err := c.expr(st.Value, -1)
		if err != nil {
			return err
		}
		c.emit(instr{op: opRet, a: r})
	case *minilang.BreakStmt:
		if len(c.loops) == 0 {
			return fmt.Errorf("vm: %s: break outside loop", st.Pos())
		}
		l := c.loops[len(c.loops)-1]
		l.breaks = append(l.breaks, c.emit(instr{op: opJmp}))
	case *minilang.ContinueStmt:
		if len(c.loops) == 0 {
			return fmt.Errorf("vm: %s: continue outside loop", st.Pos())
		}
		l := c.loops[len(c.loops)-1]
		l.continues = append(l.continues, c.emit(instr{op: opJmp}))
	case *minilang.Block:
		return c.block(st)
	case *minilang.IfStmt:
		return c.ifStmt(st)
	case *minilang.ForStmt:
		return c.forStmt(st)
	case *minilang.WhileStmt:
		return c.whileStmt(st)
	default:
		return fmt.Errorf("vm: unknown statement %T", s)
	}
	return nil
}

func (c *compiler) ifStmt(st *minilang.IfStmt) error {
	c.glue()
	cond, isNum, err := c.expr(st.Cond, -1)
	if err != nil {
		return err
	}
	p := c.pos(st.Pos())
	if !isNum {
		// The interpreter's truthiness check fires before the second
		// context move; keep that order for erroring runs too.
		c.emit(instr{op: opChkNum, a: cond, b: whatCond, pos: p})
	}
	c.setCtx(st)
	jf := c.emit(instr{op: opJmpFalse, a: cond, pos: p})
	c.reg = c.floor
	if err := c.block(st.Then); err != nil {
		return err
	}
	if st.Else == nil {
		c.patch(jf)
		return nil
	}
	end := c.emit(instr{op: opJmp})
	c.patch(jf)
	if err := c.block(st.Else); err != nil {
		return err
	}
	c.patch(end)
	return nil
}

func (c *compiler) forStmt(st *minilang.ForStmt) error {
	c.pushScope()
	defer c.popScope()
	if st.Init != nil {
		if err := c.stmt(st.Init); err != nil {
			return err
		}
	}
	head := int32(len(c.code.instrs))
	c.setCtx(st)
	c.glue()
	var jf int32 = -1
	if st.Cond != nil {
		cond, _, err := c.expr(st.Cond, -1)
		if err != nil {
			return err
		}
		jf = c.emit(instr{op: opJmpFalse, a: cond, pos: c.pos(st.Pos())})
		c.reg = c.floor
	}
	l := &loopPatch{}
	c.loops = append(c.loops, l)
	if err := c.block(st.Body); err != nil {
		return err
	}
	c.loops = c.loops[:len(c.loops)-1]
	// The continue point: the post statement if present, else the back
	// jump to the head.
	for _, i := range l.continues {
		c.patch(i)
	}
	if st.Post != nil {
		if err := c.stmt(st.Post); err != nil {
			return err
		}
	}
	c.emit(instr{op: opJmp, a: head})
	if jf >= 0 {
		c.patch(jf)
	}
	for _, i := range l.breaks {
		c.patch(i)
	}
	return nil
}

func (c *compiler) whileStmt(st *minilang.WhileStmt) error {
	head := int32(len(c.code.instrs))
	c.setCtx(st)
	c.glue()
	cond, _, err := c.expr(st.Cond, -1)
	if err != nil {
		return err
	}
	jf := c.emit(instr{op: opJmpFalse, a: cond, pos: c.pos(st.Pos())})
	c.reg = c.floor
	l := &loopPatch{}
	c.loops = append(c.loops, l)
	if err := c.block(st.Body); err != nil {
		return err
	}
	c.loops = c.loops[:len(c.loops)-1]
	for _, i := range l.continues {
		c.code.instrs[i].a = head
	}
	c.emit(instr{op: opJmp, a: head})
	c.patch(jf)
	for _, i := range l.breaks {
		c.patch(i)
	}
	return nil
}

// expr compiles e. dst >= 0 forces the result into that register;
// dst < 0 lets the result live anywhere (a variable's own slot for a
// plain reference). It reports the result register and whether the
// result is statically known to be a number, which elides operand
// checks that can never fire.
func (c *compiler) expr(e minilang.Expr, dst int32) (int32, bool, error) {
	switch x := e.(type) {
	case *minilang.NumLit:
		r := c.place(dst)
		c.emit(instr{op: opConst, a: r, b: c.numConst(x.Value)})
		return r, true, nil
	case *minilang.StrLit:
		// Checked programs cannot reach this; reproduce the
		// interpreter's runtime panic for unchecked ones.
		c.emit(instr{op: opStrPanic, pos: c.pos(x.Pos())})
		return c.place(dst), true, nil
	case *minilang.VarRef:
		slot, err := c.lookup(x.Name, x.Pos())
		if err != nil {
			return 0, false, err
		}
		if dst < 0 || dst == slot {
			return slot, false, nil
		}
		c.emit(instr{op: opMove, a: dst, b: slot})
		return dst, false, nil
	case *minilang.FuncRefExpr:
		r := c.place(dst)
		c.emit(instr{op: opConst, a: r, b: c.fnConst(x.Name)})
		return r, false, nil
	case *minilang.IndexExpr:
		slot, err := c.lookup(x.Name, x.Pos())
		if err != nil {
			return 0, false, err
		}
		p := c.pos(x.Pos())
		c.emit(instr{op: opArrChk, a: slot, d: c.name(x.Name), pos: p})
		idx, _, err := c.expr(x.Idx, -1)
		if err != nil {
			return 0, false, err
		}
		r := c.place(dst)
		c.emit(instr{op: opLoadIdx, a: slot, b: idx, c: r, pos: p})
		return r, true, nil
	case *minilang.UnaryExpr:
		v, _, err := c.expr(x.X, -1)
		if err != nil {
			return 0, false, err
		}
		r := c.place(dst)
		o := opNot
		if x.Op == minilang.TokMinus {
			o = opNeg
		}
		c.emit(instr{op: o, a: v, b: r, pos: c.pos(x.Pos())})
		return r, true, nil
	case *minilang.BinaryExpr:
		return c.binary(x, dst)
	case *minilang.CallExpr:
		return c.call(x, dst)
	}
	return 0, false, fmt.Errorf("vm: unknown expression %T", e)
}

// place resolves a destination register: the caller's requested one, or
// a fresh temporary.
func (c *compiler) place(dst int32) int32 {
	if dst >= 0 {
		return dst
	}
	return c.tmp()
}

var binOps = map[minilang.TokKind]op{
	minilang.TokPlus:    opAdd,
	minilang.TokMinus:   opSub,
	minilang.TokStar:    opMul,
	minilang.TokSlash:   opDiv,
	minilang.TokPercent: opMod,
	minilang.TokEq:      opEq,
	minilang.TokNe:      opNe,
	minilang.TokLt:      opLt,
	minilang.TokLe:      opLe,
	minilang.TokGt:      opGt,
	minilang.TokGe:      opGe,
}

func (c *compiler) binary(x *minilang.BinaryExpr, dst int32) (int32, bool, error) {
	p := c.pos(x.Pos())
	switch x.Op {
	case minilang.TokAndAnd, minilang.TokOrOr:
		// Short-circuit, with the interpreter's exact result values:
		// && yields Value{} when L is false, boolVal(truthy(R)) otherwise;
		// || yields Value{Num: 1} when L is true.
		r := c.place(dst)
		l, _, err := c.expr(x.L, -1)
		if err != nil {
			return 0, false, err
		}
		// opJmpFalse/opJmpTrue perform the interpreter's truthiness check
		// (numeric conversion with the "condition" role) themselves.
		jshort := c.emit(instr{op: opJmpFalse, a: l, pos: p})
		if x.Op == minilang.TokOrOr {
			c.code.instrs[jshort].op = opJmpTrue
		}
		rr, _, err := c.expr(x.R, -1)
		if err != nil {
			return 0, false, err
		}
		c.emit(instr{op: opBool, a: rr, b: r, pos: p})
		end := c.emit(instr{op: opJmp})
		c.patch(jshort)
		short := 0.0
		if x.Op == minilang.TokOrOr {
			short = 1
		}
		c.emit(instr{op: opConst, a: r, b: c.numConst(short)})
		c.patch(end)
		return r, true, nil
	}
	o, ok := binOps[x.Op]
	if !ok {
		return 0, false, fmt.Errorf("vm: unknown binary operator %v", x.Op)
	}
	l, lNum, err := c.expr(x.L, -1)
	if err != nil {
		return 0, false, err
	}
	if !lNum {
		// The interpreter converts the left operand before evaluating
		// the right one; check here so a non-number fails at the same
		// point in the event stream.
		c.emit(instr{op: opChkNum, a: l, b: whatLeft, pos: p})
	}
	r, rNum, err := c.expr(x.R, -1)
	if err != nil {
		return 0, false, err
	}
	if !rNum {
		c.emit(instr{op: opChkNum, a: r, b: whatRight, pos: p})
	}
	d := c.place(dst)
	c.emit(instr{op: o, a: l, b: r, c: d, pos: p})
	return d, true, nil
}

// args compiles a call's arguments into a fresh contiguous register
// block and returns its base.
func (c *compiler) args(list []minilang.Expr) (int32, error) {
	base := c.reg
	c.reg += int32(len(list))
	c.grow(c.reg)
	top := c.reg
	for i, a := range list {
		if _, _, err := c.expr(a, base+int32(i)); err != nil {
			return 0, err
		}
		c.reg = top // release argument subexpression temporaries
	}
	return base, nil
}

func (c *compiler) call(x *minilang.CallExpr, dst int32) (int32, bool, error) {
	if x.Builtin != nil {
		return c.builtin(x, dst)
	}
	r := c.place(dst)
	base, err := c.args(x.Args)
	if err != nil {
		return 0, false, err
	}
	if x.Indirect {
		slot, err := c.lookup(x.Name, x.Pos())
		if err != nil {
			return 0, false, err
		}
		site := int32(len(c.code.indirects))
		c.code.indirects = append(c.code.indirects, indSite{
			node: x.ID(), varName: x.Name, argc: int32(len(x.Args)), pos: x.Pos(),
		})
		c.emit(instr{op: opCallInd, a: site, b: base, c: r, d: slot, pos: c.pos(x.Pos())})
		return r, false, nil
	}
	site := int32(len(c.code.calls))
	c.code.calls = append(c.code.calls, callSite{
		node: x.ID(), callee: x.Name, argc: int32(len(x.Args)), pos: x.Pos(),
	})
	c.emit(instr{op: opCall, a: site, b: base, c: r, pos: c.pos(x.Pos())})
	return r, false, nil
}

func (c *compiler) builtin(x *minilang.CallExpr, dst int32) (int32, bool, error) {
	b := x.Builtin
	p := c.pos(x.Pos())
	switch b.Kind {
	case minilang.BuiltinIO:
		return c.print(x, dst)
	case minilang.BuiltinComm:
		r := c.place(dst)
		base, err := c.args(x.Args)
		if err != nil {
			return 0, false, err
		}
		mop, ok := mpiOpByName[b.Name]
		if !ok {
			return 0, false, fmt.Errorf("vm: unhandled MPI builtin %q", b.Name)
		}
		// Arguments evaluate under the enclosing context; the operation
		// itself runs at the MPI vertex.
		c.setCtx(x)
		c.emit(instr{op: opMPI, a: base, c: r, d: int32(mop), pos: p})
		return r, true, nil
	case minilang.BuiltinQuery:
		r := c.place(dst)
		o := opRank
		if b.Name == "mpi_size" {
			o = opSize
		}
		c.emit(instr{op: o, a: r})
		return r, true, nil
	case minilang.BuiltinCompute:
		r := c.place(dst)
		base, err := c.args(x.Args)
		if err != nil {
			return 0, false, err
		}
		c.setCtx(x)
		c.emit(instr{op: opCompute, a: base, c: r, pos: p})
		return r, true, nil
	case minilang.BuiltinAlloc:
		base, err := c.args(x.Args)
		if err != nil {
			return 0, false, err
		}
		r := c.place(dst)
		c.emit(instr{op: opAlloc, a: base, b: r, pos: p})
		return r, false, nil
	case minilang.BuiltinMath:
		switch b.Name {
		case "rand":
			r := c.place(dst)
			c.emit(instr{op: opRand, a: r})
			return r, true, nil
		case "len":
			base, err := c.args(x.Args)
			if err != nil {
				return 0, false, err
			}
			r := c.place(dst)
			c.emit(instr{op: opLen, a: base, b: r, pos: p})
			return r, true, nil
		}
		for i, n := range mathNames {
			if n != b.Name {
				continue
			}
			base, err := c.args(x.Args)
			if err != nil {
				return 0, false, err
			}
			r := c.place(dst)
			if b.Arity == 2 {
				c.emit(instr{op: opMath2, a: base, b: base + 1, c: r, d: int32(i), pos: p})
			} else {
				c.emit(instr{op: opMath1, a: base, b: r, d: int32(i), pos: p})
			}
			return r, true, nil
		}
	}
	return 0, false, fmt.Errorf("vm: unhandled builtin %q", b.Name)
}

func (c *compiler) print(x *minilang.CallExpr, dst int32) (int32, bool, error) {
	spec := printSpec{}
	// Evaluate the non-string arguments left to right into temporaries
	// that stay live until the print executes.
	nvals := 0
	for _, a := range x.Args {
		if _, isStr := a.(*minilang.StrLit); !isStr {
			nvals++
		}
	}
	base := c.reg
	c.reg += int32(nvals)
	c.grow(c.reg)
	top := c.reg
	vi := int32(0)
	for _, a := range x.Args {
		if s, isStr := a.(*minilang.StrLit); isStr {
			spec.parts = append(spec.parts, printPart{str: s.Value, isStr: true})
			continue
		}
		if _, _, err := c.expr(a, base+vi); err != nil {
			return 0, false, err
		}
		c.reg = top
		spec.parts = append(spec.parts, printPart{reg: base + vi})
		vi++
	}
	idx := int32(len(c.code.prints))
	c.code.prints = append(c.code.prints, spec)
	r := c.place(dst)
	c.emit(instr{op: opPrint, a: idx, b: r})
	return r, true, nil
}
