package vm

import (
	"fmt"
	"io"
	"math"

	"scalana/internal/interp"
	"scalana/internal/minilang"
	"scalana/internal/mpisim"
)

// Runner executes a compiled Program on simulated ranks. It is the
// bytecode counterpart of interp.Runner and keeps the same knobs so the
// two are drop-in interchangeable behind scalana.RunCompiled.
type Runner struct {
	Prog *Program
	// GlueIns is the abstract instruction count charged per statement,
	// identical in meaning to interp.Runner.GlueIns.
	GlueIns float64
	// Stdout receives print() output; nil discards it.
	Stdout io.Writer
	// OnIndirect observes runtime indirect-call resolution.
	OnIndirect interp.IndirectObserver
}

// NewRunner builds a Runner with the interpreter's defaults.
func NewRunner(p *Program) *Runner {
	return &Runner{Prog: p, GlueIns: 24}
}

// Execute runs the program's main function on rank p. It is the body
// passed to mpisim.World.Run.
func (r *Runner) Execute(p *mpisim.Proc) {
	main := r.Prog.main
	if len(main.code.fn.Params) != 0 {
		panic(fmt.Sprintf("vm: %s expects %d args, got 0", main.code.fn.Name, len(main.code.fn.Params)))
	}
	m := &machine{r: r, p: p}
	m.call(main, nil)
}

// machine is the per-rank execution state. Frames are reused across
// calls at the same depth, so steady-state execution performs no
// allocations: slots are written before they are read (the checker's
// declare-before-use guarantee), which makes zeroing unnecessary.
type machine struct {
	r      *Runner
	p      *mpisim.Proc
	frames [][]Value
	depth  int
}

// Precomputed conversion-role strings so the hot path never
// concatenates (the messages only surface in panics).
var (
	mpiArgWhats  [len(mpiNames)]string
	mathArgWhats [len(mathNames)]string
)

func init() {
	for i, n := range mpiNames {
		mpiArgWhats[i] = n + " argument"
	}
	for i, n := range mathNames {
		mathArgWhats[i] = n + " argument"
	}
}

// num, truthy, and boolVal mirror the interpreter's helpers, panic
// messages included.
//
//scalana:hot
func num(v Value, pos minilang.Pos, what string) float64 {
	if !v.IsNum() {
		badNum(v, pos, what)
	}
	return v.Num
}

// badNum is outlined from num so that num stays within the inlining
// budget: the fmt.Sprintf kept num (≈a quarter of sweep CPU) from
// inlining into every arithmetic opcode.
//
//go:noinline
func badNum(v Value, pos minilang.Pos, what string) {
	panic(fmt.Sprintf("%s: %s must be a number, got %s", pos, what, v))
}

// truthy coerces a condition value, panicking on non-numbers.
//
//scalana:hot
func truthy(v Value, pos minilang.Pos) bool {
	return num(v, pos, "condition") != 0
}

// boolVal converts a Go bool to the VM's numeric truth values.
//
//scalana:hot
func boolVal(b bool) Value {
	if b {
		return Value{Num: 1}
	}
	return Value{}
}

// call runs one function invocation. args is a subslice of the caller's
// frame; it is copied into the callee frame before execution.
//
//scalana:hot
func (m *machine) call(l *Link, args []Value) Value {
	code := l.code
	if m.depth == len(m.frames) {
		m.frames = append(m.frames, make([]Value, code.nSlots))
	}
	f := m.frames[m.depth]
	if int32(len(f)) < code.nSlots {
		f = make([]Value, code.nSlots)
		m.frames[m.depth] = f
	}
	copy(f, args)
	m.depth++
	v := m.run(l, f)
	m.depth--
	return v
}

// run is the bytecode dispatch loop — the hottest function in a sweep.
//
//scalana:hot
func (m *machine) run(l *Link, f []Value) Value {
	code := l.code
	instrs := code.instrs
	p := m.p
	for pc := 0; pc < len(instrs); {
		in := instrs[pc]
		pc++
		switch in.op {
		case opNop:
		case opConst:
			f[in.a] = code.consts[in.b]
		case opMove:
			f[in.a] = f[in.b]
		case opSetCtx:
			if v := l.ctx[in.a]; v != nil {
				p.Ctx = v
			}
		case opGlue:
			if m.r.GlueIns > 0 {
				p.Glue(m.r.GlueIns)
			}
		case opJmp:
			pc = int(in.a)
		case opJmpFalse:
			if !truthy(f[in.a], code.poss[in.pos]) {
				pc = int(in.b)
			}
		case opJmpTrue:
			if truthy(f[in.a], code.poss[in.pos]) {
				pc = int(in.b)
			}
		case opRet:
			if in.a < 0 {
				return Value{}
			}
			return f[in.a]
		case opChkNum:
			num(f[in.a], code.poss[in.pos], whats[in.b])

		case opNeg:
			f[in.b] = Value{Num: -num(f[in.a], code.poss[in.pos], "operand")}
		case opNot:
			f[in.b] = boolVal(num(f[in.a], code.poss[in.pos], "operand") == 0)
		case opBool:
			f[in.b] = boolVal(truthy(f[in.a], code.poss[in.pos]))
		case opAdd:
			f[in.c] = Value{Num: f[in.a].Num + f[in.b].Num}
		case opSub:
			f[in.c] = Value{Num: f[in.a].Num - f[in.b].Num}
		case opMul:
			f[in.c] = Value{Num: f[in.a].Num * f[in.b].Num}
		case opDiv:
			if f[in.b].Num == 0 {
				panic(fmt.Sprintf("%s: division by zero", code.poss[in.pos]))
			}
			f[in.c] = Value{Num: f[in.a].Num / f[in.b].Num}
		case opMod:
			if f[in.b].Num == 0 {
				panic(fmt.Sprintf("%s: modulo by zero", code.poss[in.pos]))
			}
			f[in.c] = Value{Num: math.Mod(f[in.a].Num, f[in.b].Num)}
		case opEq:
			f[in.c] = boolVal(f[in.a].Num == f[in.b].Num)
		case opNe:
			f[in.c] = boolVal(f[in.a].Num != f[in.b].Num)
		case opLt:
			f[in.c] = boolVal(f[in.a].Num < f[in.b].Num)
		case opLe:
			f[in.c] = boolVal(f[in.a].Num <= f[in.b].Num)
		case opGt:
			f[in.c] = boolVal(f[in.a].Num > f[in.b].Num)
		case opGe:
			f[in.c] = boolVal(f[in.a].Num >= f[in.b].Num)

		case opArrChk:
			if f[in.a].Arr == nil {
				panic(fmt.Sprintf("%s: %q is not an array", code.poss[in.pos], code.names[in.d]))
			}
		case opLoadIdx:
			arr := f[in.a].Arr
			idx := int(num(f[in.b], code.poss[in.pos], "index"))
			if idx < 0 || idx >= len(arr) {
				panic(fmt.Sprintf("%s: index %d out of range [0,%d)", code.poss[in.pos], idx, len(arr)))
			}
			f[in.c] = Value{Num: arr[idx]}
		case opIdxChk:
			arr := f[in.a].Arr
			idx := int(num(f[in.b], code.poss[in.pos], "index"))
			if idx < 0 || idx >= len(arr) {
				panic(fmt.Sprintf("%s: index %d out of range [0,%d)", code.poss[in.pos], idx, len(arr)))
			}
		case opStoreIdx:
			f[in.a].Arr[int(f[in.b].Num)] = num(f[in.c], code.poss[in.pos], "array element")
		case opAlloc:
			ln := int(num(f[in.a], code.poss[in.pos], "alloc argument"))
			if ln < 0 {
				panic(fmt.Sprintf("%s: alloc of negative length %d", code.poss[in.pos], ln))
			}
			f[in.b] = Value{Arr: make([]float64, ln)}
		case opLen:
			if f[in.a].Arr == nil {
				panic(fmt.Sprintf("%s: len of non-array", code.poss[in.pos]))
			}
			f[in.b] = Value{Num: float64(len(f[in.a].Arr))}

		case opMath1:
			v := num(f[in.a], code.poss[in.pos], mathArgWhats[in.d])
			var out float64
			switch mathFn(in.d) {
			case mathSqrt:
				out = math.Sqrt(v)
			case mathLog:
				out = math.Log(v)
			case mathLog2:
				out = math.Log2(v)
			case mathExp:
				out = math.Exp(v)
			case mathFloor:
				out = math.Floor(v)
			case mathCeil:
				out = math.Ceil(v)
			case mathAbs:
				out = math.Abs(v)
			}
			f[in.b] = Value{Num: out}
		case opMath2:
			what := mathArgWhats[in.d]
			v0 := num(f[in.a], code.poss[in.pos], what)
			v1 := num(f[in.b], code.poss[in.pos], what)
			var out float64
			switch mathFn(in.d) {
			case mathMin:
				out = math.Min(v0, v1)
			case mathMax:
				out = math.Max(v0, v1)
			case mathPow:
				out = math.Pow(v0, v1)
			}
			f[in.c] = Value{Num: out}
		case opRand:
			f[in.a] = Value{Num: p.Rand()}
		case opRank:
			f[in.a] = Value{Num: float64(p.Rank)}
		case opSize:
			f[in.a] = Value{Num: float64(p.NP())}
		case opCompute:
			pos := code.poss[in.pos]
			b := in.a
			n0 := num(f[b], pos, "compute argument")
			n1 := num(f[b+1], pos, "compute argument")
			n2 := num(f[b+2], pos, "compute argument")
			n3 := num(f[b+3], pos, "compute argument")
			p.Compute(n0, n1, n2, n3)
			f[in.c] = Value{}
		case opMPI:
			m.mpi(code, f, in)
		case opPrint:
			m.print(code, f, in)

		case opCall:
			cs := &code.calls[in.a]
			child := l.calls[in.a]
			if child == nil {
				panic(fmt.Sprintf("%s: no PSG instance for call to %q (site %d in %s)",
					cs.pos, cs.callee, cs.node, l.inst.Path))
			}
			f[in.c] = m.call(child, f[in.b:in.b+cs.argc])
		case opCallInd:
			is := &code.indirects[in.a]
			fnv := f[in.d]
			if fnv.Fn == "" {
				panic(fmt.Sprintf("%s: %q does not hold a function reference", is.pos, is.varName))
			}
			child := l.indirect[in.a][fnv.Fn]
			if child == nil {
				child = m.r.Prog.resolveSlow(l, in.a, fnv.Fn)
			}
			if got, want := is.argc, int32(len(child.code.fn.Params)); got != want {
				panic(fmt.Sprintf("vm: %s expects %d args, got %d", child.code.fn.Name, want, got))
			}
			if m.r.OnIndirect != nil {
				m.r.OnIndirect(p.Rank, l.inst, is.node, fnv.Fn)
			}
			f[in.c] = m.call(child, f[in.b:in.b+is.argc])

		case opStrPanic:
			panic(fmt.Sprintf("%s: string literal outside print", code.poss[in.pos]))
		default:
			panic(fmt.Sprintf("vm: unknown opcode %d", in.op))
		}
	}
	return Value{}
}

// mpi dispatches one MPI builtin. Argument conversion order and error
// roles match the interpreter's evalMPI exactly.
//
//scalana:hot
func (m *machine) mpi(code *Code, f []Value, in instr) {
	pos := code.poss[in.pos]
	o := mpiOp(in.d)
	what := mpiArgWhats[o]
	b := in.a
	p := m.p
	switch o {
	case mpiSend:
		a0 := int(num(f[b], pos, what))
		a1 := int(num(f[b+1], pos, what))
		a2 := num(f[b+2], pos, what)
		p.Send(a0, a1, a2)
		f[in.c] = Value{}
	case mpiRecv:
		a0 := int(num(f[b], pos, what))
		a1 := int(num(f[b+1], pos, what))
		a2 := num(f[b+2], pos, what)
		p.Recv(a0, a1, a2)
		f[in.c] = Value{}
	case mpiRecvAny:
		a0 := int(num(f[b], pos, what))
		a1 := num(f[b+1], pos, what)
		f[in.c] = Value{Num: float64(p.RecvAny(a0, a1))}
	case mpiIsend:
		a0 := int(num(f[b], pos, what))
		a1 := int(num(f[b+1], pos, what))
		a2 := num(f[b+2], pos, what)
		f[in.c] = Value{Num: float64(p.Isend(a0, a1, a2).ID())}
	case mpiIrecv:
		a0 := int(num(f[b], pos, what))
		a1 := int(num(f[b+1], pos, what))
		a2 := num(f[b+2], pos, what)
		f[in.c] = Value{Num: float64(p.Irecv(a0, a1, a2).ID())}
	case mpiIrecvAny:
		a0 := int(num(f[b], pos, what))
		a1 := num(f[b+1], pos, what)
		f[in.c] = Value{Num: float64(p.IrecvAny(a0, a1).ID())}
	case mpiWait:
		p.Wait(int(num(f[b], pos, what)))
		f[in.c] = Value{}
	case mpiWaitall:
		p.Waitall()
		f[in.c] = Value{}
	case mpiSendrecv:
		a0 := int(num(f[b], pos, what))
		a1 := int(num(f[b+1], pos, what))
		a2 := num(f[b+2], pos, what)
		a3 := int(num(f[b+3], pos, what))
		a4 := int(num(f[b+4], pos, what))
		a5 := num(f[b+5], pos, what)
		p.Sendrecv(a0, a1, a2, a3, a4, a5)
		f[in.c] = Value{}
	case mpiBarrier:
		p.Barrier()
		f[in.c] = Value{}
	case mpiBcast:
		a0 := int(num(f[b], pos, what))
		a1 := num(f[b+1], pos, what)
		p.Bcast(a0, a1)
		f[in.c] = Value{}
	case mpiReduce:
		a0 := int(num(f[b], pos, what))
		a1 := num(f[b+1], pos, what)
		p.Reduce(a0, a1)
		f[in.c] = Value{}
	case mpiAllreduce:
		p.Allreduce(num(f[b], pos, what))
		f[in.c] = Value{}
	case mpiAlltoall:
		p.Alltoall(num(f[b], pos, what))
		f[in.c] = Value{}
	case mpiAllgather:
		p.Allgather(num(f[b], pos, what))
		f[in.c] = Value{}
	default:
		panic(fmt.Sprintf("vm: unhandled MPI builtin %q", mpiNames[o]))
	}
}

// print mirrors interp's evalPrint output format; with a nil Stdout the
// arguments were still evaluated by the preceding instructions.
func (m *machine) print(code *Code, f []Value, in instr) {
	f[in.b] = Value{}
	if m.r.Stdout == nil {
		return
	}
	spec := &code.prints[in.a]
	out := fmt.Sprintf("[rank %d]", m.p.Rank)
	for _, part := range spec.parts {
		if part.isStr {
			out += " " + part.str
		} else {
			out += " " + f[part.reg].String()
		}
	}
	fmt.Fprintln(m.r.Stdout, out)
}
