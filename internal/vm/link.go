package vm

import (
	"fmt"
	"sync"

	"scalana/internal/minilang"
	"scalana/internal/psg"
)

// Program is a MiniMP program compiled to bytecode and linked against a
// PSG. The bytecode of each function is compiled once and shared by all
// of its instances; the Link side tables carry everything that differs
// per instance (attribution vertices and callee instances), so a
// Program is immutable after Compile and safe to execute from many
// ranks and many worlds concurrently.
type Program struct {
	prog  *minilang.Program
	graph *psg.Graph
	codes map[string]*Code
	main  *Link

	// mu guards links and the slow indirect-resolution path. The fast
	// paths never take it.
	mu    sync.Mutex
	links map[*psg.Instance]*Link
	// slow memoizes indirect targets resolved after linking (targets
	// that were never address-taken, reached only by direct API use).
	// Existing Link.indirect maps are never mutated — concurrent ranks
	// read them without synchronization.
	slow map[slowKey]*Link
}

type slowKey struct {
	link   *Link
	site   int32
	target string
}

// Link binds one function's shared bytecode to one psg.Instance. Its
// tables are indexed by the site indices the instructions carry.
type Link struct {
	inst *psg.Instance
	code *Code

	// ctx holds the attribution vertex per opSetCtx site; nil means the
	// node was contracted away in this instance and the context keeps
	// its previous value, exactly like the interpreter's setCtx.
	ctx []*psg.Vertex
	// calls holds the callee Link per direct call site.
	calls []*Link
	// indirect holds the pre-materialized targets per indirect site.
	indirect []map[string]*Link
}

// Compile lowers every function of prog to bytecode, cross-checks the
// lowering against the internal/ir CFG (see verify.go), and links the
// instance tree rooted at graph.Main.
func Compile(prog *minilang.Program, graph *psg.Graph) (*Program, error) {
	p := &Program{
		prog:  prog,
		graph: graph,
		codes: make(map[string]*Code, len(prog.Funcs)),
		links: map[*psg.Instance]*Link{},
		slow:  map[slowKey]*Link{},
	}
	for _, fn := range prog.Funcs {
		code, err := compileFunc(fn)
		if err != nil {
			return nil, err
		}
		if err := verifyLowering(fn, code); err != nil {
			return nil, err
		}
		p.codes[fn.Name] = code
	}
	if graph.Main == nil {
		return nil, fmt.Errorf("vm: PSG has no main instance")
	}
	p.mu.Lock()
	p.main = p.linkLocked(graph.Main)
	p.mu.Unlock()
	return p, nil
}

// linkLocked returns the Link for inst, building it (and, recursively,
// its callees) on first use. The memo entry is installed before the
// recursion so recursive call cycles resolve to the in-progress Link.
func (p *Program) linkLocked(inst *psg.Instance) *Link {
	if l, ok := p.links[inst]; ok {
		return l
	}
	code := p.codes[inst.Fn.Name]
	l := &Link{
		inst:     inst,
		code:     code,
		ctx:      make([]*psg.Vertex, len(code.ctxNodes)),
		calls:    make([]*Link, len(code.calls)),
		indirect: make([]map[string]*Link, len(code.indirects)),
	}
	p.links[inst] = l
	for i, id := range code.ctxNodes {
		l.ctx[i] = inst.VertexOf(id)
	}
	for i := range code.calls {
		if child := inst.CalleeInstance(code.calls[i].node); child != nil {
			l.calls[i] = p.linkLocked(child)
		}
	}
	for i := range code.indirects {
		targets := inst.IndirectTargets(code.indirects[i].node)
		if len(targets) == 0 {
			continue
		}
		m := make(map[string]*Link, len(targets))
		for name, ti := range targets {
			m[name] = p.linkLocked(ti)
		}
		l.indirect[i] = m
	}
	return l
}

// resolveSlow handles an indirect call whose target was not
// pre-materialized at link time. Program semantics cannot reach this
// (function values come only from &name, and every address-taken
// function is materialized by psg.Build), but psg keeps a slow path for
// direct API callers and the VM mirrors it. Panics carry the
// interpreter's messages.
func (p *Program) resolveSlow(l *Link, site int32, target string) *Link {
	is := &l.code.indirects[site]
	if p.prog.Func(target) == nil {
		panic(fmt.Sprintf("%s: indirect call to unknown function %q", is.pos, target))
	}
	inst, err := p.graph.ResolveIndirect(l.inst, is.node, target)
	if err != nil {
		panic(fmt.Sprintf("%s: %v", is.pos, err))
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	key := slowKey{link: l, site: site, target: target}
	if child, ok := p.slow[key]; ok {
		return child
	}
	child := p.linkLocked(inst)
	p.slow[key] = child
	return child
}
