package difftest

import (
	"testing"

	"scalana/internal/synth"

	scalana "scalana"
)

// TestAppsByteIdentical holds the VM to the interpreter oracle on every
// registered workload: the NPB kernels, the three case-study apps with
// their -opt variants, and the demo programs.
func TestAppsByteIdentical(t *testing.T) {
	for _, name := range scalana.AppNames() {
		app := scalana.GetApp(name)
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			if err := DiffApp(app, Config{}); err != nil {
				t.Fatal(err)
			}
		})
	}
}

// TestSynthCorpusByteIdentical holds the VM to the oracle on the full
// seeded synthetic-defect corpus (the same 25-case corpus the detection
// accuracy harness evaluates).
func TestSynthCorpusByteIdentical(t *testing.T) {
	corpus, err := synth.Generate(synth.GenConfig{Seed: 1, Cases: 25})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range corpus.Cases {
		app := c.App()
		t.Run(c.Name, func(t *testing.T) {
			t.Parallel()
			if err := DiffApp(app, Config{Seed: corpus.Seed}); err != nil {
				t.Fatal(err)
			}
		})
	}
}
