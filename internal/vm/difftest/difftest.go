// Package difftest is the differential harness that holds the bytecode
// VM and the tree-walking interpreter to identical observable behavior.
// The interpreter is the semantic oracle: for a given workload the
// harness executes every pipeline stage twice — once per execution
// engine — and demands byte-identical ScalAna profiles at every scale,
// byte-identical detect reports (rendered text and JSON), and identical
// communication matrices. Any divergence is a VM bug by definition.
package difftest

import (
	"bytes"
	"fmt"
	"reflect"

	"scalana/internal/commmatrix"
	"scalana/internal/detect"
	"scalana/internal/minilang"
	"scalana/internal/prof"
	"scalana/internal/psg"

	scalana "scalana"
)

// Config configures one differential comparison.
type Config struct {
	// NPs are the job scales swept (scales below the app's MinNP are
	// dropped; default 4 and 8, small enough for CI).
	NPs []int
	// SampleHz overrides the profiler sampling rate (0 = prof default).
	SampleHz float64
	// Seed seeds both executions identically.
	Seed int64
}

func (cfg Config) scales(app *scalana.App) []int {
	nps := cfg.NPs
	if len(nps) == 0 {
		nps = []int{4, 8}
	}
	var out []int
	for _, np := range nps {
		if np >= app.MinNP {
			out = append(out, np)
		}
	}
	if len(out) == 0 {
		out = []int{app.MinNP}
	}
	return out
}

// DiffApp runs the app through both execution engines and returns an
// error describing the first divergence, or nil when the interpreter and
// the VM agree byte-for-byte.
func DiffApp(app *scalana.App, cfg Config) error {
	nps := cfg.scales(app)
	prog, graph, err := scalana.Compile(app)
	if err != nil {
		return err
	}
	profCfg := prof.DefaultConfig()
	if cfg.SampleHz != 0 {
		profCfg.SampleHz = cfg.SampleHz
	}

	// Profile at every scale on both engines, comparing the encoded
	// profile sets, and keep each engine's PPGs for detection.
	runsByMode := [2][]detect.ScaleRun{}
	for _, np := range nps {
		var encoded [2][]byte
		for mode := 0; mode < 2; mode++ {
			out, enc, err := profileOnce(prog, graph, app, np, profCfg, cfg.Seed, mode == 1)
			if err != nil {
				return err
			}
			encoded[mode] = enc
			runsByMode[mode] = append(runsByMode[mode], detect.ScaleRun{NP: np, PPG: out.PPG()})
		}
		if !bytes.Equal(encoded[0], encoded[1]) {
			return fmt.Errorf("%s np=%d: VM and interpreter profiles diverge:\n--- vm ---\n%s\n--- interp ---\n%s",
				app.Name, np, encoded[0], encoded[1])
		}
	}

	// The full detect stage must agree too: same report text, same JSON.
	dcfg := detect.DefaultConfig()
	dcfg.CommCauses = true
	var renders [2]string
	var jsons [2][]byte
	for mode := 0; mode < 2; mode++ {
		rep, err := scalana.DetectScalingLoss(runsByMode[mode], dcfg)
		if err != nil {
			return fmt.Errorf("%s (interp=%v): detect: %w", app.Name, mode == 1, err)
		}
		renders[mode] = rep.Render(prog)
		jsons[mode], err = rep.EncodeJSON()
		if err != nil {
			return fmt.Errorf("%s (interp=%v): encode report: %w", app.Name, mode == 1, err)
		}
	}
	if renders[0] != renders[1] {
		return fmt.Errorf("%s: VM and interpreter detect reports diverge:\n--- vm ---\n%s\n--- interp ---\n%s",
			app.Name, renders[0], renders[1])
	}
	if !bytes.Equal(jsons[0], jsons[1]) {
		return fmt.Errorf("%s: VM and interpreter detect report JSON diverges:\n--- vm ---\n%s\n--- interp ---\n%s",
			app.Name, jsons[0], jsons[1])
	}

	// Communication matrices at the smallest scale.
	var mats [2]*commmatrix.Matrix
	for mode := 0; mode < 2; mode++ {
		out, err := scalana.RunCompiled(prog, graph, scalana.RunConfig{
			App: app, NP: nps[0], ToolName: "commmatrix", Seed: cfg.Seed, Interp: mode == 1,
		})
		if err != nil {
			return fmt.Errorf("%s np=%d (interp=%v): comm matrix run: %w", app.Name, nps[0], mode == 1, err)
		}
		m, ok := out.Measurement.Data().(*commmatrix.Matrix)
		if !ok {
			return fmt.Errorf("%s: commmatrix tool produced %T, want *commmatrix.Matrix", app.Name, out.Measurement.Data())
		}
		mats[mode] = m
	}
	if mats[0].NP != mats[1].NP ||
		!reflect.DeepEqual(mats[0].Bytes, mats[1].Bytes) ||
		!reflect.DeepEqual(mats[0].Msgs, mats[1].Msgs) {
		return fmt.Errorf("%s np=%d: VM and interpreter comm matrices diverge (vm total %g bytes, interp total %g bytes)",
			app.Name, nps[0], mats[0].TotalBytes(), mats[1].TotalBytes())
	}
	return nil
}

// profileOnce runs one profiled execution and returns the output plus the
// canonical encoding of its profile set.
func profileOnce(prog *minilang.Program, graph *psg.Graph, app *scalana.App, np int, profCfg prof.Config, seed int64, useInterp bool) (*scalana.RunOutput, []byte, error) {
	out, err := scalana.RunCompiled(prog, graph, scalana.RunConfig{
		App: app, NP: np, ToolName: "scalana", Prof: profCfg, Seed: seed, Interp: useInterp,
	})
	if err != nil {
		return nil, nil, fmt.Errorf("%s np=%d (interp=%v): %w", app.Name, np, useInterp, err)
	}
	ps := &prof.ProfileSet{App: app.Name, NP: np, Elapsed: out.Result.Elapsed, Profiles: out.Profiles()}
	enc, err := ps.Encode()
	if err != nil {
		return nil, nil, fmt.Errorf("%s np=%d (interp=%v): encode profiles: %w", app.Name, np, useInterp, err)
	}
	return out, enc, nil
}
