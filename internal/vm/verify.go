package vm

import (
	"fmt"

	"scalana/internal/ir"
	"scalana/internal/minilang"
)

// verifyLowering cross-checks freshly emitted bytecode against the
// internal/ir lowering of the same function: the reachable call-like
// instruction counts (direct, indirect, MPI, compute) and the natural
// loop count must agree between the CFG and the bytecode. The two
// lowerings are written independently, so agreement catches whole
// classes of compiler bugs (dropped calls, mis-wired loop back edges)
// at Compile time instead of as silent event-stream divergence.
func verifyLowering(fn *minilang.FuncDecl, code *Code) error {
	cfg := ir.Lower(fn)
	dt := ir.ComputeDominators(cfg)

	var irCalls, irInd, irMPI, irCompute int
	for _, b := range cfg.Blocks {
		if !dt.Reachable(b.ID) {
			continue
		}
		for _, in := range b.Instrs {
			switch in.Op {
			case ir.OpCall:
				irCalls++
			case ir.OpIndirectCall:
				irInd++
			case ir.OpMPI:
				irMPI++
			case ir.OpCompute:
				irCompute++
			}
		}
	}
	irLoops := len(ir.FindLoops(cfg, dt))

	reach := reachableInstrs(code)
	var bcCalls, bcInd, bcMPI, bcCompute int
	backTargets := map[int32]bool{}
	for i, in := range code.instrs {
		if !reach[i] {
			continue
		}
		switch in.op {
		case opCall:
			bcCalls++
		case opCallInd:
			bcInd++
		case opMPI:
			bcMPI++
		case opCompute:
			bcCompute++
		case opJmp:
			if in.a <= int32(i) {
				backTargets[in.a] = true
			}
		}
	}
	bcLoops := len(backTargets)

	if irCalls != bcCalls || irInd != bcInd || irMPI != bcMPI || irCompute != bcCompute || irLoops != bcLoops {
		return fmt.Errorf("vm: lowering of %s disagrees with ir CFG: "+
			"calls %d/%d, indirect %d/%d, mpi %d/%d, compute %d/%d, loops %d/%d (bytecode/ir)",
			fn.Name, bcCalls, irCalls, bcInd, irInd, bcMPI, irMPI, bcCompute, irCompute, bcLoops, irLoops)
	}
	return nil
}

// reachableInstrs marks the bytecode instructions reachable from entry,
// so dead code (statements after a return) is excluded from the
// comparison exactly as ir's lowering drops it.
func reachableInstrs(code *Code) []bool {
	reach := make([]bool, len(code.instrs))
	stack := []int32{0}
	for len(stack) > 0 {
		pc := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for pc < int32(len(code.instrs)) && !reach[pc] {
			reach[pc] = true
			in := code.instrs[pc]
			switch in.op {
			case opJmp:
				pc = in.a
			case opJmpFalse, opJmpTrue:
				stack = append(stack, in.b)
				pc++
			case opRet:
				pc = int32(len(code.instrs))
			default:
				pc++
			}
		}
	}
	return reach
}
