package vm

import (
	"scalana/internal/interp"
	"scalana/internal/minilang"
)

// Value is the MiniMP runtime value, shared with the tree-walking
// interpreter so both execution paths agree on representation, printing,
// and error formatting down to the byte.
type Value = interp.Value

// op is a bytecode opcode. The set is deliberately close to the
// interpreter's evaluation steps: every point where the tree-walker
// charges glue, moves the attribution context, or converts a value has a
// corresponding instruction, which is what makes the two paths emit
// byte-identical event streams.
type op uint8

const (
	opNop op = iota

	// Values and moves.
	opConst // R[a] = consts[b]
	opMove  // R[a] = R[b]

	// Attribution and accounting.
	opSetCtx // p.Ctx = link.ctx[a] unless nil
	opGlue   // charge GlueIns abstract instructions

	// Control flow.
	opJmp      // pc = a
	opJmpFalse // if !truthy(R[a]) pc = b (num check, "condition")
	opJmpTrue  // if truthy(R[a]) pc = b (num check, "condition")
	opRet      // return R[a]; a < 0 returns the zero Value

	// Checks. opChkNum verifies R[a] is a number with message whats[b];
	// it lets binary operators convert their left operand before the
	// right operand is evaluated, exactly like the interpreter.
	opChkNum

	// Unary and binary arithmetic/comparison: R[c] = R[a] op R[b].
	// Operands were verified numeric by opChkNum (or are statically
	// numeric), so these read .Num directly.
	opNeg // R[b] = -num(R[a], "operand")
	opNot // R[b] = bool(num(R[a], "operand") == 0)
	opBool
	opAdd
	opSub
	opMul
	opDiv // division-by-zero check
	opMod // modulo-by-zero check
	opEq
	opNe
	opLt
	opLe
	opGt
	opGe

	// Arrays. opArrChk verifies R[a] holds an array (d names it for the
	// error); opIdxChk converts and bounds-checks R[b] against R[a]
	// before an element store evaluates its right-hand side, matching
	// the interpreter's check-before-eval order.
	opArrChk
	opLoadIdx  // R[c] = R[a].Arr[int(num(R[b], "index"))], bounds-checked
	opIdxChk   // convert + bounds-check R[b] against R[a]
	opStoreIdx // R[a].Arr[int(R[b].Num)] = num(R[c], "array element")
	opAlloc    // R[b] = alloc(int(num(R[a], "alloc argument")))
	opLen      // R[b] = len(R[a].Arr)

	// Builtins.
	opMath1 // R[b] = mathFns1[d](num(R[a], name+" argument"))
	opMath2 // R[c] = mathFns2[d](num(R[a]), num(R[b]))
	opRand  // R[a] = p.Rand()
	opRank  // R[a] = rank
	opSize  // R[a] = np
	opCompute
	opMPI   // mpi op d, args R[a..], result R[c]
	opPrint // spec prints[a], result R[b] = Value{}

	// Calls.
	opCall    // site a, argBase b, dst c
	opCallInd // site a, argBase b, dst c, callee ref in R[d]

	// opStrPanic reproduces the interpreter's "string literal outside
	// print" runtime panic (unreachable after checking).
	opStrPanic
)

// instr is one bytecode instruction. Operand meaning is per-opcode (see
// the op constants); pos indexes Code.poss for error positions.
type instr struct {
	op         op
	a, b, c, d int32
	pos        int32
}

// whats are the operand-role strings used in conversion errors, indexed
// by opChkNum's b operand.
var whats = [...]string{"left operand", "right operand", "condition"}

const (
	whatLeft int32 = iota
	whatRight
	whatCond
)

// mathFn identifies a math builtin for opMath1/opMath2.
type mathFn int32

const (
	mathSqrt mathFn = iota
	mathLog
	mathLog2
	mathExp
	mathFloor
	mathCeil
	mathAbs
	mathMin
	mathMax
	mathPow
)

var mathNames = [...]string{"sqrt", "log", "log2", "exp", "floor", "ceil", "abs", "min", "max", "pow"}

// mpiOp identifies an MPI builtin for opMPI.
type mpiOp int32

const (
	mpiSend mpiOp = iota
	mpiRecv
	mpiRecvAny
	mpiIsend
	mpiIrecv
	mpiIrecvAny
	mpiWait
	mpiWaitall
	mpiSendrecv
	mpiBarrier
	mpiBcast
	mpiReduce
	mpiAllreduce
	mpiAlltoall
	mpiAllgather
)

var mpiNames = [...]string{
	"mpi_send", "mpi_recv", "mpi_recv_any", "mpi_isend", "mpi_irecv",
	"mpi_irecv_any", "mpi_wait", "mpi_waitall", "mpi_sendrecv",
	"mpi_barrier", "mpi_bcast", "mpi_reduce", "mpi_allreduce",
	"mpi_alltoall", "mpi_allgather",
}

var mpiOpByName = func() map[string]mpiOp {
	m := make(map[string]mpiOp, len(mpiNames))
	for i, n := range mpiNames {
		m[n] = mpiOp(i)
	}
	return m
}()

// printPart is one piece of a print() call: a literal string or the
// register holding an evaluated argument.
type printPart struct {
	str   string
	reg   int32
	isStr bool
}

// printSpec is the compiled form of one print() call.
type printSpec struct {
	parts []printPart
}

// callSite is one direct call site; the per-instance Link resolves its
// index to the callee Link.
type callSite struct {
	node   minilang.NodeID
	callee string
	argc   int32
	pos    minilang.Pos
}

// indSite is one indirect call site.
type indSite struct {
	node    minilang.NodeID
	varName string // the variable holding the function reference
	argc    int32
	pos     minilang.Pos
}

// Code is the compiled bytecode of one function. It is shared by every
// psg.Instance of the function; anything instance-specific (attribution
// vertices, callee instances) lives in the Link side tables, indexed by
// the site indices the instructions carry.
type Code struct {
	fn     *minilang.FuncDecl
	instrs []instr
	consts []Value
	poss   []minilang.Pos
	names  []string // variable names for array errors

	// ctxNodes are the attribution sites (opSetCtx's a indexes it).
	ctxNodes []minilang.NodeID
	// calls and indirects are the call-site tables (opCall/opCallInd's a).
	calls     []callSite
	indirects []indSite
	prints    []printSpec

	// nSlots is the frame size: parameters, locals, and temporaries.
	nSlots int32
}
