// Package baseline turns the content-addressed run history that
// scalana-serve accumulates into a streaming regression detector
// (ROADMAP: online/streaming detection over a rolling run history).
// ScalAna's offline pipeline answers "which vertices scale badly in this
// sweep"; this package answers the question a continuous deployment
// asks: did the newest uploaded run make vertex V worse than its own
// history says it should be?
//
// The mechanics follow the related work's change-detection-on-dynamic-
// graphs framing: successive runs of one app at one scale are snapshots
// of the same graph, and per-vertex statistics roll forward as flat
// arrays aligned with the columnar PPG layout —
//
//   - each ingested run collapses to one merged sample per VID
//     (fit.Merge across ranks, the same cross-rank aggregation detection
//     uses), stored as a []float64 indexed by VID with NaN marking
//     vertices the run never executed;
//   - per-VID mean and variance over the history fold with Welford's
//     update, skipping NaN samples exactly as fit.Merge/fit.Variance
//     ignore NaN ranks;
//   - the newest run is scored against that baseline with a z-score
//     (sudden regression) and a one-sided CUSUM over the whole history
//     (slow drift a single z-test misses);
//   - per-vertex scaling fits extend incrementally: the cross-scale
//     log-log model absorbs the newest run through fit.LogLogAccum
//     instead of refitting the sweep.
//
// Determinism contract: a State's output is a pure function of the runs
// it holds, never of the order they were added in. Runs carry an
// explicit history sequence number (their position in the store's
// upload-ordered history), Add keeps each scale's history sorted by it,
// and every fold walks that order — so feeding a history in upload
// order or shuffled produces byte-identical EncodeJSON output, the same
// regime the scheduler determinism test enforces for simulation.
package baseline

import (
	"fmt"
	"math"
	"sort"

	"scalana/internal/fit"
	"scalana/internal/ppg"
	"scalana/internal/prof"
	"scalana/internal/psg"
)

// Params are the user-tunable flagging thresholds.
type Params struct {
	// ZThd flags a vertex when the newest run's merged time sits at least
	// this many baseline standard deviations above the baseline mean.
	ZThd float64
	// CUSUMThd flags a vertex when the one-sided CUSUM over the history's
	// standardized deviations reaches this value — slow drift where no
	// single run clears ZThd.
	CUSUMThd float64
	// CUSUMK is the CUSUM slack: per-run deviations below K standard
	// deviations do not accumulate, so ordinary run-to-run noise decays
	// instead of compounding.
	CUSUMK float64
	// MinRuns is the minimum number of baseline runs (newest excluded)
	// that must have sampled a vertex before it is scored at all — a
	// baseline of one run has no variance to standardize against.
	MinRuns int
	// MinShare filters vertices whose share of the newest run's total
	// time is negligible, mirroring detect.Config.MinShare.
	MinShare float64
}

// DefaultParams returns the default watch thresholds.
func DefaultParams() Params {
	return Params{ZThd: 3, CUSUMThd: 5, CUSUMK: 0.5, MinRuns: 2, MinShare: 0.01}
}

// Normalized overlays defaults on zero fields (zero means "default",
// the same convention detect.Config uses on the service wire). Watch
// applies it internally; the service also calls it up front so its
// single-flight keys name the resolved thresholds.
func (p Params) Normalized() Params {
	def := DefaultParams()
	if p.ZThd == 0 {
		p.ZThd = def.ZThd
	}
	if p.CUSUMThd == 0 {
		p.CUSUMThd = def.CUSUMThd
	}
	if p.CUSUMK == 0 {
		p.CUSUMK = def.CUSUMK
	}
	if p.MinRuns == 0 {
		p.MinRuns = def.MinRuns
	}
	if p.MinShare == 0 {
		p.MinShare = def.MinShare
	}
	return p
}

// Sample is one ingested run reduced to its per-VID merged samples. It
// is content-addressed (derived from stored wire bytes and the compiled
// graph alone), so callers may cache Samples by store key forever.
type Sample struct {
	// NP is the run's job scale.
	NP int
	// Hash is the content hash of the stored profile set.
	Hash string
	// Elapsed is the run's wall-clock elapsed time from the wire
	// envelope.
	Elapsed float64
	// TotalTime is the summed sampled time across ranks (the share
	// denominator).
	TotalTime float64
	// Values holds the merged per-rank time per VID, NaN where no rank
	// sampled the vertex. Indexed by psg.VID — the flat-array layout the
	// columnar PPG uses.
	Values []float64
}

// Ingest reduces an assembled PPG to a Sample using the given cross-rank
// merge strategy.
func Ingest(pg *ppg.Graph, hash string, elapsed float64, merge fit.MergeStrategy) *Sample {
	nv := pg.NumVIDs()
	smp := &Sample{NP: pg.NP, Hash: hash, Elapsed: elapsed, TotalTime: pg.TotalTime(), Values: make([]float64, nv)}
	for vid := 0; vid < nv; vid++ {
		if pg.Present(psg.VID(vid)) {
			smp.Values[vid] = fit.Merge(pg.TimeSeries(psg.VID(vid)), merge)
		} else {
			smp.Values[vid] = math.NaN()
		}
	}
	return smp
}

// IngestBytes decodes profile-set wire bytes against the compiled graph,
// assembles the PPG, and reduces it to a Sample. This is the one
// ingestion path shared by the service and scalana-detect -watch, which
// is what makes their reports byte-identical.
func IngestBytes(data []byte, g *psg.Graph, hash string, merge fit.MergeStrategy) (*Sample, error) {
	ps, err := prof.DecodeProfileSet(data, g)
	if err != nil {
		return nil, err
	}
	pg, err := ppg.Build(g, ps.Profiles)
	if err != nil {
		return nil, err
	}
	return Ingest(pg, hash, ps.Elapsed, merge), nil
}

// Run is one entry of a scale's history: a Sample plus its position in
// the upload-ordered history.
type Run struct {
	// Seq is the run's position in the (app, np) history, assigned by the
	// store's upload-ordered listing. It is the canonical fold order: all
	// rolling statistics walk runs by ascending Seq.
	Seq int
	// Sample is the ingested per-VID data.
	Sample *Sample
}

// State holds the rolling baselines for one application: every ingested
// run, grouped by scale, ordered by history sequence.
type State struct {
	app   string
	merge fit.MergeStrategy
	keys  []string // symbol-table snapshot, VID -> stable key
	verts []*psg.Vertex
	byNP  map[int][]Run
}

// NewState creates an empty state for one application. The merge
// strategy is fixed per state: baselines built under one strategy are
// not comparable to samples merged under another.
func NewState(app string, g *psg.Graph, merge fit.MergeStrategy) *State {
	keys := g.Keys()
	verts := make([]*psg.Vertex, len(keys))
	for i := range verts {
		verts[i] = g.VertexByVID(psg.VID(i))
	}
	return &State{app: app, merge: merge, keys: keys, verts: verts, byNP: map[int][]Run{}}
}

// App returns the application name the state tracks.
func (s *State) App() string { return s.app }

// Merge returns the state's cross-rank merge strategy.
func (s *State) Merge() fit.MergeStrategy { return s.merge }

// Add inserts one run at its history position. Insertion order is
// irrelevant: the scale's history is kept sorted by Seq, with the
// content hash as a total tiebreak, and a (Seq, Hash) duplicate is a
// no-op. Samples whose VID space disagrees with the state's symbol
// table are rejected — they were ingested against a different graph.
func (s *State) Add(seq int, smp *Sample) error {
	if smp == nil {
		return fmt.Errorf("baseline: nil sample")
	}
	if len(smp.Values) != len(s.keys) {
		return fmt.Errorf("baseline: sample for np=%d has %d VIDs, state's symbol table has %d (ingested against a different graph?)",
			smp.NP, len(smp.Values), len(s.keys))
	}
	hist := s.byNP[smp.NP]
	i := sort.Search(len(hist), func(i int) bool {
		if hist[i].Seq != seq {
			return hist[i].Seq > seq
		}
		return hist[i].Sample.Hash >= smp.Hash
	})
	if i < len(hist) && hist[i].Seq == seq && hist[i].Sample.Hash == smp.Hash {
		return nil // idempotent re-add
	}
	hist = append(hist, Run{})
	copy(hist[i+1:], hist[i:])
	hist[i] = Run{Seq: seq, Sample: smp}
	s.byNP[smp.NP] = hist
	return nil
}

// NPs returns the scales with at least one run, ascending.
func (s *State) NPs() []int {
	nps := make([]int, 0, len(s.byNP))
	for np := range s.byNP {
		nps = append(nps, np)
	}
	sort.Ints(nps)
	return nps
}

// Runs returns one scale's history in fold order (ascending Seq).
func (s *State) Runs(np int) []Run { return s.byNP[np] }

// welford is the per-VID rolling mean/variance accumulator: three flat
// arrays indexed by VID, exactly the columnar layout the PPG uses for
// per-rank data.
type welford struct {
	count []int
	mean  []float64
	m2    []float64
}

func newWelford(nv int) *welford {
	return &welford{count: make([]int, nv), mean: make([]float64, nv), m2: make([]float64, nv)}
}

// add folds one run's samples in. NaN samples (vertex absent from the
// run) are skipped, mirroring fit.Merge/fit.Variance NaN semantics.
func (w *welford) add(values []float64) {
	for vid, x := range values {
		if math.IsNaN(x) {
			continue
		}
		w.count[vid]++
		delta := x - w.mean[vid]
		w.mean[vid] += delta / float64(w.count[vid])
		w.m2[vid] += delta * (x - w.mean[vid])
	}
}

// std returns the population standard deviation for one VID (0 with
// fewer than two samples, matching fit.Variance).
func (w *welford) std(vid int) float64 {
	if w.count[vid] < 2 {
		return 0
	}
	return math.Sqrt(w.m2[vid] / float64(w.count[vid]))
}

// Regression is one flagged vertex in a watch report.
type Regression struct {
	// Ref identifies the vertex (stable key plus source position).
	Ref VertexRef
	// Mean and Std are the baseline statistics over the prior runs that
	// sampled the vertex; BaselineRuns counts them.
	Mean, Std    float64
	BaselineRuns int
	// Value is the newest run's merged time; Z is its standardized
	// deviation above the baseline mean (+Inf when the baseline has zero
	// variance and the value moved).
	Value, Z float64
	// CUSUM is the one-sided cumulative sum of standardized deviations
	// over the whole history, newest run included.
	CUSUM float64
	// Share is the vertex's fraction of the newest run's total time.
	Share float64
	// SlopeOld and SlopeNew are the cross-scale log-log changing rates
	// fitted without and with the newest run (NaN when fewer than two
	// scales are available); SlopeDelta is their difference.
	SlopeOld, SlopeNew, SlopeDelta float64
}

// RunRef identifies one history entry in a report.
type RunRef struct {
	NP      int
	Seq     int
	Hash    string
	Elapsed float64
}

// Report is the output of one watch evaluation: the newest run at one
// scale scored against its rolling baseline.
type Report struct {
	// App and NP name the evaluated history.
	App string
	NP  int
	// Newest is the evaluated run (the last entry of the history).
	Newest RunRef
	// Runs is the history length at NP; BaselineRuns is Runs minus the
	// newest (what the statistics folded over).
	Runs, BaselineRuns int
	// Params are the thresholds the evaluation used (normalized).
	Params Params
	// Merge is the cross-rank merge strategy samples were built with.
	Merge fit.MergeStrategy
	// History lists every run of the scale in fold order.
	History []RunRef
	// Vertices counts the VIDs that were scored (present in the newest
	// run with at least MinRuns baseline observations).
	Vertices int
	// Regressions lists the flagged vertices, worst first.
	Regressions []Regression
}

// Quiet reports whether the evaluation flagged nothing.
func (rep *Report) Quiet() bool { return len(rep.Regressions) == 0 }

// Watch scores the newest run at one scale against the baseline built
// from every earlier run of that scale. An empty history is an error; a
// single-run history produces a report with zero scored vertices (there
// is nothing to compare against yet) rather than an error, so a watch
// loop over a fresh store stays quiet instead of failing.
func (s *State) Watch(np int, p Params) (*Report, error) {
	hist := s.byNP[np]
	if len(hist) == 0 {
		return nil, fmt.Errorf("baseline: no runs for %s at np=%d", s.app, np)
	}
	p = p.Normalized()
	newest := hist[len(hist)-1]
	base := hist[:len(hist)-1]

	rep := &Report{
		App: s.app, NP: np,
		Newest:       runRef(newest),
		Runs:         len(hist),
		BaselineRuns: len(base),
		Params:       p,
		Merge:        s.merge,
	}
	for _, r := range hist {
		rep.History = append(rep.History, runRef(r))
	}

	w := newWelford(len(s.keys))
	for _, r := range base {
		w.add(r.Sample.Values)
	}

	total := newest.Sample.TotalTime
	for vid := range s.keys {
		x := newest.Sample.Values[vid]
		if math.IsNaN(x) || w.count[vid] < p.MinRuns {
			continue
		}
		v := s.verts[vid]
		if v != nil && v.Kind == psg.KindRoot {
			continue
		}
		rep.Vertices++
		var share float64
		if total > 0 {
			share = x / total
		}
		if share < p.MinShare {
			continue
		}
		mean, std := w.mean[vid], w.std(vid)
		z := zScore(x, mean, std)
		cusum := s.cusumAt(hist, vid, mean, std, p.CUSUMK)
		if z < p.ZThd && cusum < p.CUSUMThd {
			continue
		}
		reg := Regression{
			Ref:          s.refOf(vid),
			Mean:         mean,
			Std:          std,
			BaselineRuns: w.count[vid],
			Value:        x,
			Z:            z,
			CUSUM:        cusum,
			Share:        share,
		}
		reg.SlopeOld, reg.SlopeNew = s.slopes(np, vid)
		reg.SlopeDelta = reg.SlopeNew - reg.SlopeOld
		rep.Regressions = append(rep.Regressions, reg)
	}

	// Worst first: z-weighted share, CUSUM as the second axis, vertex key
	// as the total tiebreak — the comparator must be total or report
	// bytes would depend on sort-internal ordering.
	sort.Slice(rep.Regressions, func(i, j int) bool {
		a, b := &rep.Regressions[i], &rep.Regressions[j]
		if sa, sb := severity(a.Z)*a.Share, severity(b.Z)*b.Share; sa != sb {
			return sa > sb
		}
		if a.CUSUM != b.CUSUM {
			return a.CUSUM > b.CUSUM
		}
		return a.Ref.Key < b.Ref.Key
	})
	return rep, nil
}

// zScore standardizes one observation. A zero-variance baseline means
// every prior run agreed exactly: any upward movement is infinitely
// surprising (+Inf, which the wire format carries), and no movement is
// no signal. Downward movement never flags — faster is not a
// regression.
func zScore(x, mean, std float64) float64 {
	diff := x - mean
	if std > 0 {
		z := diff / std
		if z < 0 {
			return 0
		}
		return z
	}
	// Zero variance: compare against the mean directly, with a relative
	// epsilon so a last-ulp wobble does not read as an infinite z.
	if diff > zeroVarEps*math.Max(math.Abs(mean), 1e-9) {
		return math.Inf(1)
	}
	return 0
}

const zeroVarEps = 1e-9

// cusumAt folds the one-sided CUSUM for one VID over the whole history
// in Seq order: s_i = max(0, s_{i-1} + z_i - k). Deviations are
// standardized against the fixed baseline statistics so the fold is a
// pure function of the history set.
func (s *State) cusumAt(hist []Run, vid int, mean, std, k float64) float64 {
	var acc float64
	for _, r := range hist {
		x := r.Sample.Values[vid]
		if math.IsNaN(x) {
			continue
		}
		z := zScore(x, mean, std)
		acc += z - k
		if acc < 0 {
			acc = 0
		}
	}
	return acc
}

// slopes fits the vertex's cross-scale log-log model twice: without and
// with the newest run at watchNP. Each scale contributes its latest
// sample; the "old" fit uses the previous run at watchNP when one
// exists and omits the scale otherwise. When the watched scale extends
// the frontier, the new fit is literally the old accumulator extended
// by one point — the incremental update the ROADMAP asks for.
func (s *State) slopes(watchNP, vid int) (old, new float64) {
	old, new = math.NaN(), math.NaN()
	var oldAcc fit.LogLogAccum
	oldOK := true
	for _, np := range s.NPs() {
		hist := s.byNP[np]
		r := hist[len(hist)-1]
		if np == watchNP {
			if len(hist) < 2 {
				continue // no prior run at this scale: omit it from the old fit
			}
			r = hist[len(hist)-2]
		}
		x := r.Sample.Values[vid]
		if math.IsNaN(x) {
			continue
		}
		if err := oldAcc.Add(float64(np), x); err != nil {
			oldOK = false
			break
		}
	}
	if oldOK {
		if m, err := oldAcc.Model(); err == nil {
			old = m.B
		}
	}

	nps := s.NPs()
	frontier := len(nps) > 0 && watchNP == nps[len(nps)-1] && len(s.byNP[watchNP]) == 1
	if frontier && oldOK {
		// The newest run introduces a new largest scale: extend a copy of
		// the old accumulator by exactly one point.
		newest := s.byNP[watchNP][0]
		x := newest.Sample.Values[vid]
		acc := oldAcc.Clone()
		if !math.IsNaN(x) && acc.Add(float64(watchNP), x) == nil {
			if m, err := acc.Model(); err == nil {
				new = m.B
			}
		}
		return old, new
	}

	var newAcc fit.LogLogAccum
	for _, np := range nps {
		hist := s.byNP[np]
		x := hist[len(hist)-1].Sample.Values[vid]
		if math.IsNaN(x) {
			continue
		}
		if err := newAcc.Add(float64(np), x); err != nil {
			return old, new
		}
	}
	if m, err := newAcc.Model(); err == nil {
		new = m.B
	}
	return old, new
}

// severity maps a z-score into the ranking scale, capping +Inf the same
// way detect's abnormal ranking does so Inf*0 shares cannot poison the
// sort with NaN.
func severity(z float64) float64 {
	if math.IsInf(z, 1) {
		return 100
	}
	return z
}

func (s *State) refOf(vid int) VertexRef {
	ref := VertexRef{Key: s.keys[vid]}
	if v := s.verts[vid]; v != nil {
		ref.Kind = v.Kind.String()
		ref.Name = v.Name
		ref.File = v.Pos.File
		ref.Line = v.Pos.Line
	}
	return ref
}

func runRef(r Run) RunRef {
	return RunRef{NP: r.Sample.NP, Seq: r.Seq, Hash: r.Sample.Hash, Elapsed: r.Sample.Elapsed}
}
