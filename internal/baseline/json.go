package baseline

// JSON wire format for watch reports. The report crosses process
// boundaries in both directions — `GET /v1/watch` serves it and
// `scalana-detect -watch -json` writes it — and the acceptance contract
// is byte determinism: identical history, identical bytes, whichever
// side rendered them. The format therefore reuses detect's wire
// conventions wholesale: detect.WireFloat so IEEE specials survive
// (zero-variance baselines legitimately produce z = +Inf), MarshalIndent
// with a single-space indent, and vertex references carried as
// detect.VertexRefJSON.
//
// Unlike detect.Report, a baseline Report holds wire-shaped data only
// (no live *psg.Vertex pointers), so DecodeReport is lossless without a
// graph and one encode/decode pass is a fixpoint — the property
// FuzzBaselineWire locks.

import (
	"encoding/json"
	"fmt"
	"math"
	"strings"

	"scalana/internal/detect"
	"scalana/internal/fit"
)

// VertexRef identifies one PSG vertex on the wire; it is detect's wire
// reference, shared so both report formats name vertices identically.
type VertexRef = detect.VertexRefJSON

type paramsJSON struct {
	ZThd     detect.WireFloat `json:"z_thd"`
	CUSUMThd detect.WireFloat `json:"cusum_thd"`
	CUSUMK   detect.WireFloat `json:"cusum_k"`
	MinRuns  int              `json:"min_runs"`
	MinShare detect.WireFloat `json:"min_share"`
}

type runRefJSON struct {
	NP      int              `json:"np"`
	Seq     int              `json:"seq"`
	Hash    string           `json:"hash,omitempty"`
	Elapsed detect.WireFloat `json:"elapsed"`
}

type regressionJSON struct {
	Vertex       VertexRef        `json:"vertex"`
	Mean         detect.WireFloat `json:"mean"`
	Std          detect.WireFloat `json:"std"`
	BaselineRuns int              `json:"baseline_runs"`
	Value        detect.WireFloat `json:"value"`
	Z            detect.WireFloat `json:"z"`
	CUSUM        detect.WireFloat `json:"cusum"`
	Share        detect.WireFloat `json:"share"`
	SlopeOld     detect.WireFloat `json:"slope_old"`
	SlopeNew     detect.WireFloat `json:"slope_new"`
	SlopeDelta   detect.WireFloat `json:"slope_delta"`
}

type reportJSON struct {
	App          string           `json:"app"`
	NP           int              `json:"np"`
	Newest       runRefJSON       `json:"newest"`
	Runs         int              `json:"runs"`
	BaselineRuns int              `json:"baseline_runs"`
	Merge        string           `json:"merge"`
	Params       paramsJSON       `json:"params"`
	History      []runRefJSON     `json:"history,omitempty"`
	Vertices     int              `json:"vertices"`
	Regressions  []regressionJSON `json:"regressions,omitempty"`
}

func runRefToJSON(r RunRef) runRefJSON {
	return runRefJSON{NP: r.NP, Seq: r.Seq, Hash: r.Hash, Elapsed: detect.WireFloat(r.Elapsed)}
}

func runRefFromJSON(j runRefJSON) RunRef {
	return RunRef{NP: j.NP, Seq: j.Seq, Hash: j.Hash, Elapsed: float64(j.Elapsed)}
}

// EncodeJSON serializes the report deterministically: fixed field order,
// history in fold order, regressions in ranked order, indented exactly
// as detect.Report.EncodeJSON so serve's framing (payload + '\n') is
// uniform across endpoints.
func (rep *Report) EncodeJSON() ([]byte, error) {
	dto := reportJSON{
		App:          rep.App,
		NP:           rep.NP,
		Newest:       runRefToJSON(rep.Newest),
		Runs:         rep.Runs,
		BaselineRuns: rep.BaselineRuns,
		Merge:        rep.Merge.String(),
		Params: paramsJSON{
			ZThd:     detect.WireFloat(rep.Params.ZThd),
			CUSUMThd: detect.WireFloat(rep.Params.CUSUMThd),
			CUSUMK:   detect.WireFloat(rep.Params.CUSUMK),
			MinRuns:  rep.Params.MinRuns,
			MinShare: detect.WireFloat(rep.Params.MinShare),
		},
		Vertices: rep.Vertices,
	}
	for _, r := range rep.History {
		dto.History = append(dto.History, runRefToJSON(r))
	}
	for _, reg := range rep.Regressions {
		dto.Regressions = append(dto.Regressions, regressionJSON{
			Vertex:       reg.Ref,
			Mean:         detect.WireFloat(reg.Mean),
			Std:          detect.WireFloat(reg.Std),
			BaselineRuns: reg.BaselineRuns,
			Value:        detect.WireFloat(reg.Value),
			Z:            detect.WireFloat(reg.Z),
			CUSUM:        detect.WireFloat(reg.CUSUM),
			Share:        detect.WireFloat(reg.Share),
			SlopeOld:     detect.WireFloat(reg.SlopeOld),
			SlopeNew:     detect.WireFloat(reg.SlopeNew),
			SlopeDelta:   detect.WireFloat(reg.SlopeDelta),
		})
	}
	return json.MarshalIndent(dto, "", " ")
}

// mergeFromString reverses fit.MergeStrategy.String for the wire format.
// Unknown strings normalize to MergeMedian (the default), mirroring how
// detect's kind decoding normalizes: one encode/decode pass is a
// fixpoint.
func mergeFromString(s string) fit.MergeStrategy {
	if m, err := fit.ParseMergeStrategy(s); err == nil {
		return m
	}
	return fit.MergeMedian
}

// DecodeReport parses a report written by EncodeJSON. The report holds
// wire-shaped data only, so no graph is needed and nothing is lost.
func DecodeReport(data []byte) (*Report, error) {
	var dto reportJSON
	if err := json.Unmarshal(data, &dto); err != nil {
		return nil, fmt.Errorf("baseline: parse report: %w", err)
	}
	rep := &Report{
		App:          dto.App,
		NP:           dto.NP,
		Newest:       runRefFromJSON(dto.Newest),
		Runs:         dto.Runs,
		BaselineRuns: dto.BaselineRuns,
		Merge:        mergeFromString(dto.Merge),
		Params: Params{
			ZThd:     float64(dto.Params.ZThd),
			CUSUMThd: float64(dto.Params.CUSUMThd),
			CUSUMK:   float64(dto.Params.CUSUMK),
			MinRuns:  dto.Params.MinRuns,
			MinShare: float64(dto.Params.MinShare),
		},
		Vertices: dto.Vertices,
	}
	for _, j := range dto.History {
		rep.History = append(rep.History, runRefFromJSON(j))
	}
	for _, j := range dto.Regressions {
		rep.Regressions = append(rep.Regressions, Regression{
			Ref:          j.Vertex,
			Mean:         float64(j.Mean),
			Std:          float64(j.Std),
			BaselineRuns: j.BaselineRuns,
			Value:        float64(j.Value),
			Z:            float64(j.Z),
			CUSUM:        float64(j.CUSUM),
			Share:        float64(j.Share),
			SlopeOld:     float64(j.SlopeOld),
			SlopeNew:     float64(j.SlopeNew),
			SlopeDelta:   float64(j.SlopeDelta),
		})
	}
	return rep, nil
}

// Render formats the report for terminal output (scalana-detect -watch
// without -json).
func (rep *Report) Render() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== watch: %s at np=%d ==\n", rep.App, rep.NP)
	fmt.Fprintf(&b, "newest run: seq=%d hash=%s elapsed=%s\n",
		rep.Newest.Seq, shortHash(rep.Newest.Hash), fmtFloat(rep.Newest.Elapsed))
	fmt.Fprintf(&b, "history: %d run(s), %d in baseline, merge=%s\n",
		rep.Runs, rep.BaselineRuns, rep.Merge)
	fmt.Fprintf(&b, "thresholds: z>=%s cusum>=%s (k=%s) min-runs=%d min-share=%s\n",
		fmtFloat(rep.Params.ZThd), fmtFloat(rep.Params.CUSUMThd), fmtFloat(rep.Params.CUSUMK),
		rep.Params.MinRuns, fmtFloat(rep.Params.MinShare))
	if rep.Quiet() {
		fmt.Fprintf(&b, "no regressions (%d vertices scored)\n", rep.Vertices)
		return b.String()
	}
	fmt.Fprintf(&b, "%d regression(s) across %d scored vertices:\n", len(rep.Regressions), rep.Vertices)
	for i, reg := range rep.Regressions {
		loc := ""
		if reg.Ref.File != "" {
			loc = fmt.Sprintf(" (%s:%d)", reg.Ref.File, reg.Ref.Line)
		}
		fmt.Fprintf(&b, " %d. %s%s\n", i+1, reg.Ref.Key, loc)
		fmt.Fprintf(&b, "    value=%s baseline=%s±%s over %d run(s) z=%s cusum=%s share=%s\n",
			fmtFloat(reg.Value), fmtFloat(reg.Mean), fmtFloat(reg.Std),
			reg.BaselineRuns, fmtFloat(reg.Z), fmtFloat(reg.CUSUM), fmtFloat(reg.Share))
		if !math.IsNaN(reg.SlopeOld) || !math.IsNaN(reg.SlopeNew) {
			fmt.Fprintf(&b, "    slope %s -> %s (delta %s)\n",
				fmtFloat(reg.SlopeOld), fmtFloat(reg.SlopeNew), fmtFloat(reg.SlopeDelta))
		}
	}
	return b.String()
}

func shortHash(h string) string {
	if len(h) > 12 {
		return h[:12]
	}
	if h == "" {
		return "-"
	}
	return h
}

func fmtFloat(v float64) string {
	switch {
	case math.IsInf(v, 1):
		return "inf"
	case math.IsInf(v, -1):
		return "-inf"
	case math.IsNaN(v):
		return "nan"
	}
	return fmt.Sprintf("%.6g", v)
}
