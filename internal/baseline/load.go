package baseline

import (
	"fmt"
	"sort"

	"scalana/internal/fit"
	"scalana/internal/psg"
	"scalana/internal/store"
)

// LoadStore builds a full rolling-baseline state for one application
// from a content-addressed store: every stored run at every scale,
// ingested in the store's upload order (store.History), which assigns
// each run its sequence number. scalana-detect -watch uses this
// directly; the service runs the same loop with a sample cache in
// front, so both produce identical states from identical stores.
func LoadStore(st *store.Store, appName string, g *psg.Graph, merge fit.MergeStrategy) (*State, error) {
	state := NewState(appName, g, merge)
	entries, err := st.ListApp(appName)
	if err != nil {
		return nil, err
	}
	npSet := map[int]bool{}
	for _, e := range entries {
		npSet[e.NP] = true
	}
	nps := make([]int, 0, len(npSet))
	for np := range npSet {
		nps = append(nps, np)
	}
	sort.Ints(nps)
	for _, np := range nps {
		hist, err := st.History(appName, np)
		if err != nil {
			return nil, err
		}
		for seq, e := range hist {
			data, err := st.Get(e.Key)
			if err != nil {
				return nil, err
			}
			smp, err := IngestBytes(data, g, e.Hash, merge)
			if err != nil {
				return nil, fmt.Errorf("baseline: ingest %s: %w", e.Key, err)
			}
			if smp.NP != np {
				return nil, fmt.Errorf("baseline: %s decodes to np=%d but is stored under np=%d: %w",
					e.Key, smp.NP, np, store.ErrCorrupt)
			}
			if err := state.Add(seq, smp); err != nil {
				return nil, err
			}
		}
	}
	return state, nil
}
