package baseline_test

// Acceptance tests for the rolling-baseline detector: a seeded
// regression in the newest run must be flagged at the correct vertex, a
// no-regression history must stay quiet, and — the determinism
// contract — the report bytes must not depend on the order runs were
// fed into the state (same regime as the scheduler determinism test:
// perturb the input order, demand byte-identical output).

import (
	"bytes"
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"

	"scalana/internal/baseline"
	"scalana/internal/fit"
	"scalana/internal/psg"

	scalana "scalana"
)

// cgGraph compiles the bundled cg workload once per test.
func cgGraph(t *testing.T) *psg.Graph {
	t.Helper()
	app := scalana.GetApp("cg")
	if app == nil {
		t.Fatal("bundled app cg missing")
	}
	_, g, err := scalana.Compile(app)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// mkSample fabricates a deterministic per-VID sample: a per-vertex base
// value plus a small run-dependent wiggle (so baselines have nonzero
// variance), with optional multiplicative bumps for seeding
// regressions. idx is the run's position in its scale's history.
func mkSample(g *psg.Graph, np, idx int, bump map[int]float64) *baseline.Sample {
	keys := g.Keys()
	values := make([]float64, len(keys))
	total := 0.0
	for vid := range values {
		v := 1 + 0.01*float64(vid)
		v *= 1 + 0.002*float64((idx*7+vid*3)%5)
		if m, ok := bump[vid]; ok {
			v *= m
		}
		values[vid] = v
		total += v
	}
	return &baseline.Sample{
		NP:        np,
		Hash:      fmt.Sprintf("%064d", np*1000+idx),
		Elapsed:   total,
		TotalTime: total,
		Values:    values,
	}
}

func addRuns(t *testing.T, st *baseline.State, smps []*baseline.Sample) {
	t.Helper()
	for seq, smp := range smps {
		if err := st.Add(seq, smp); err != nil {
			t.Fatal(err)
		}
	}
}

func TestWatchFlagsSeededRegression(t *testing.T) {
	g := cgGraph(t)
	const target = 2 // arbitrary non-root vertex
	st := baseline.NewState("cg", g, fit.MergeMedian)
	addRuns(t, st, []*baseline.Sample{
		mkSample(g, 8, 0, nil),
		mkSample(g, 8, 1, nil),
		mkSample(g, 8, 2, nil),
		mkSample(g, 8, 3, map[int]float64{target: 20}), // newest run: 20x on one vertex
	})
	rep, err := st.Watch(8, baseline.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quiet() {
		t.Fatal("seeded 20x regression was not flagged")
	}
	top := rep.Regressions[0]
	if want := g.Keys()[target]; top.Ref.Key != want {
		t.Fatalf("top regression at %q, want the seeded vertex %q", top.Ref.Key, want)
	}
	if len(rep.Regressions) != 1 {
		keys := make([]string, len(rep.Regressions))
		for i, r := range rep.Regressions {
			keys[i] = r.Ref.Key
		}
		t.Fatalf("expected exactly the seeded vertex, got %d: %s", len(rep.Regressions), strings.Join(keys, ", "))
	}
	if top.Z < baseline.DefaultParams().ZThd {
		t.Fatalf("flagged regression has z=%v below the threshold", top.Z)
	}
	if top.BaselineRuns != 3 || rep.BaselineRuns != 3 || rep.Runs != 4 {
		t.Fatalf("baseline accounting: vertex=%d report=%d/%d", top.BaselineRuns, rep.BaselineRuns, rep.Runs)
	}
	if top.Value <= top.Mean {
		t.Fatalf("regression value %v not above baseline mean %v", top.Value, top.Mean)
	}
}

func TestWatchQuietHistory(t *testing.T) {
	g := cgGraph(t)
	st := baseline.NewState("cg", g, fit.MergeMedian)
	addRuns(t, st, []*baseline.Sample{
		mkSample(g, 8, 0, nil),
		mkSample(g, 8, 1, nil),
		mkSample(g, 8, 2, nil),
		mkSample(g, 8, 3, nil),
	})
	rep, err := st.Watch(8, baseline.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Quiet() {
		t.Fatalf("no-regression history flagged %d vertices (first: %+v)", len(rep.Regressions), rep.Regressions[0])
	}
	if rep.Vertices == 0 {
		t.Fatal("quiet report scored no vertices at all")
	}
}

// TestWatchSingleRunHistory: one run has nothing to compare against —
// a defined quiet report with zero scored vertices, not an error.
func TestWatchSingleRunHistory(t *testing.T) {
	g := cgGraph(t)
	st := baseline.NewState("cg", g, fit.MergeMedian)
	addRuns(t, st, []*baseline.Sample{mkSample(g, 8, 0, nil)})
	rep, err := st.Watch(8, baseline.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Quiet() || rep.Vertices != 0 {
		t.Fatalf("single-run history: quiet=%t vertices=%d", rep.Quiet(), rep.Vertices)
	}
	if _, err := st.Watch(16, baseline.DefaultParams()); err == nil {
		t.Fatal("watching a scale with no runs did not error")
	}
}

// TestStateOrderDeterminism is the satellite acceptance test: feeding
// the same run history in upload order vs. shuffled order must produce
// byte-identical EncodeJSON output.
func TestStateOrderDeterminism(t *testing.T) {
	g := cgGraph(t)
	type run struct {
		seq int
		smp *baseline.Sample
	}
	var runs []run
	for i := 0; i < 3; i++ {
		runs = append(runs, run{i, mkSample(g, 4, i, nil)})
	}
	for i := 0; i < 4; i++ {
		bump := map[int]float64{3: 1 + 0.5*float64(i)} // drifting vertex: exercises CUSUM + slopes
		runs = append(runs, run{i, mkSample(g, 8, i, bump)})
	}

	encode := func(order []int) []byte {
		st := baseline.NewState("cg", g, fit.MergeMedian)
		for _, i := range order {
			if err := st.Add(runs[i].seq, runs[i].smp); err != nil {
				t.Fatal(err)
			}
		}
		rep, err := st.Watch(8, baseline.DefaultParams())
		if err != nil {
			t.Fatal(err)
		}
		data, err := rep.EncodeJSON()
		if err != nil {
			t.Fatal(err)
		}
		return data
	}

	natural := make([]int, len(runs))
	for i := range natural {
		natural[i] = i
	}
	want := encode(natural)
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 5; trial++ {
		got := encode(rng.Perm(len(runs)))
		if !bytes.Equal(want, got) {
			t.Fatalf("trial %d: shuffled feed order changed the report bytes", trial)
		}
	}
}

// TestAddValidation: duplicate (seq, hash) re-adds are idempotent and
// samples from a different graph are rejected.
func TestAddValidation(t *testing.T) {
	g := cgGraph(t)
	st := baseline.NewState("cg", g, fit.MergeMedian)
	smp := mkSample(g, 8, 0, nil)
	if err := st.Add(0, smp); err != nil {
		t.Fatal(err)
	}
	if err := st.Add(0, smp); err != nil {
		t.Fatalf("idempotent re-add errored: %v", err)
	}
	if got := len(st.Runs(8)); got != 1 {
		t.Fatalf("re-add duplicated the run: %d entries", got)
	}
	bad := &baseline.Sample{NP: 8, Hash: smp.Hash, Values: []float64{1, 2, 3}}
	if err := st.Add(1, bad); err == nil {
		t.Fatal("sample with a foreign VID space was accepted")
	}
	if err := st.Add(1, nil); err == nil {
		t.Fatal("nil sample was accepted")
	}
}

// TestWatchZeroVarianceBaseline: identical prior runs give a
// zero-variance baseline; an upward move must flag with z=+Inf and the
// wire format must carry it.
func TestWatchZeroVarianceBaseline(t *testing.T) {
	g := cgGraph(t)
	const target = 2
	st := baseline.NewState("cg", g, fit.MergeMedian)
	base := mkSample(g, 8, 0, nil)
	for seq := 0; seq < 3; seq++ {
		cp := *base
		cp.Hash = fmt.Sprintf("%064d", seq)
		if err := st.Add(seq, &cp); err != nil {
			t.Fatal(err)
		}
	}
	reg := mkSample(g, 8, 0, map[int]float64{target: 3})
	reg.Hash = fmt.Sprintf("%064d", 99)
	if err := st.Add(3, reg); err != nil {
		t.Fatal(err)
	}
	rep, err := st.Watch(8, baseline.DefaultParams())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quiet() {
		t.Fatal("zero-variance baseline did not flag an upward move")
	}
	if !math.IsInf(rep.Regressions[0].Z, 1) {
		t.Fatalf("zero-variance z = %v, want +Inf", rep.Regressions[0].Z)
	}
	enc, err := rep.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := baseline.DecodeReport(enc)
	if err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(dec.Regressions[0].Z, 1) {
		t.Fatalf("+Inf z did not survive the wire: %v", dec.Regressions[0].Z)
	}
}

// TestReportRoundTripLossless pins the wire contract: encode → decode →
// encode is byte-identical and every field survives.
func TestReportRoundTripLossless(t *testing.T) {
	g := cgGraph(t)
	st := baseline.NewState("cg", g, fit.MergeMax)
	addRuns(t, st, []*baseline.Sample{
		mkSample(g, 4, 0, nil),
		mkSample(g, 4, 1, nil),
	})
	addRuns(t, st, []*baseline.Sample{
		mkSample(g, 8, 0, nil),
		mkSample(g, 8, 1, nil),
		mkSample(g, 8, 2, map[int]float64{2: 10}),
	})
	rep, err := st.Watch(8, baseline.Params{ZThd: 2.5, MinRuns: 2})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quiet() {
		t.Fatal("expected a flagged regression for the round trip")
	}
	enc, err := rep.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := baseline.DecodeReport(enc)
	if err != nil {
		t.Fatal(err)
	}
	if dec.App != "cg" || dec.NP != 8 || dec.Merge != fit.MergeMax {
		t.Fatalf("envelope lost: %+v", dec)
	}
	if dec.Params.ZThd != 2.5 || dec.Params.MinRuns != 2 {
		t.Fatalf("params lost: %+v", dec.Params)
	}
	if len(dec.History) != len(rep.History) || dec.Newest != rep.Newest {
		t.Fatalf("history lost: %+v", dec.History)
	}
	enc2, err := dec.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Fatalf("encode-decode-encode differs:\n%s\nvs\n%s", enc, enc2)
	}
	if !strings.Contains(dec.Render(), "regression") {
		t.Fatal("decoded report does not render")
	}
}
