package baseline

// Native fuzz target for the watch-report wire format: decoding
// arbitrary bytes must never panic, any decoded report must render, and
// one decode -> encode pass is a normalization fixpoint (encoding again
// is byte-identical). Seed corpus: f.Add below plus the committed files
// under testdata/fuzz/FuzzBaselineWire/.

import (
	"bytes"
	"math"
	"testing"
)

// fuzzSeedReport builds a report exercising every wire feature: IEEE
// specials (a +Inf z from a zero-variance baseline, NaN slopes from a
// single-scale history), multi-run histories, and non-default params.
func fuzzSeedReport() *Report {
	return &Report{
		App:          "cg",
		NP:           8,
		Newest:       RunRef{NP: 8, Seq: 2, Hash: "00deadbeef", Elapsed: 3.25},
		Runs:         3,
		BaselineRuns: 2,
		Merge:        1, // fit.MergeMean
		Params:       Params{ZThd: 2.5, CUSUMThd: 4, CUSUMK: 0.25, MinRuns: 2, MinShare: 0.05},
		History: []RunRef{
			{NP: 8, Seq: 0, Hash: "aa", Elapsed: 1},
			{NP: 8, Seq: 1, Hash: "bb", Elapsed: 2},
			{NP: 8, Seq: 2, Hash: "00deadbeef", Elapsed: 3.25},
		},
		Vertices: 12,
		Regressions: []Regression{
			{
				Ref:  VertexRef{Key: "main:12", Kind: "comp", Name: "compute", File: "seed.mp", Line: 5},
				Mean: 1, Std: 0, BaselineRuns: 2,
				Value: 20, Z: math.Inf(1), CUSUM: 7.5, Share: 0.4,
				SlopeOld: math.NaN(), SlopeNew: math.NaN(), SlopeDelta: math.NaN(),
			},
			{
				Ref:  VertexRef{Key: "main:20", Kind: "mpi", Name: "mpi_allreduce", File: "seed.mp", Line: 9},
				Mean: 0.5, Std: 0.1, BaselineRuns: 2,
				Value: 0.9, Z: 4, CUSUM: 3.5, Share: 0.1,
				SlopeOld: 0.8, SlopeNew: 1.6, SlopeDelta: 0.8,
			},
		},
	}
}

func FuzzBaselineWire(f *testing.F) {
	seed, err := fuzzSeedReport().EncodeJSON()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte("{}"))
	f.Add([]byte("null"))
	f.Add([]byte(`{"np":-1,"merge":"weird","regressions":[{"vertex":{"key":"x"},"z":"inf"}]}`))
	f.Add([]byte(`{"app":"a","history":[{"np":4,"seq":0,"elapsed":"nan"}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := DecodeReport(data)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		_ = rep.Render() // every decoded report must render
		enc, err := rep.EncodeJSON()
		if err != nil {
			t.Fatalf("decoded report does not re-encode: %v", err)
		}
		rep2, err := DecodeReport(enc)
		if err != nil {
			t.Fatalf("re-encoded report does not decode: %v\n%s", err, enc)
		}
		enc2, err := rep2.EncodeJSON()
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("decode/encode is not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", enc, enc2)
		}
	})
}
