package scales

import (
	"reflect"
	"testing"
)

func TestParseValid(t *testing.T) {
	cases := []struct {
		in   string
		want []int
	}{
		{"4,8,16,32", []int{4, 8, 16, 32}},
		{" 4 , 8 ", []int{4, 8}},
		{"1", []int{1}},
		{"32,4,16", []int{32, 4, 16}}, // user order preserved, never sorted
	}
	for _, c := range cases {
		got, err := Parse(c.in)
		if err != nil {
			t.Fatalf("Parse(%q): %v", c.in, err)
		}
		if !reflect.DeepEqual(got, c.want) {
			t.Fatalf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

func TestParseRejects(t *testing.T) {
	for _, in := range []string{
		"",        // empty list
		"  ",      // blank list
		"4,,8",    // empty entry
		"4,x",     // non-integer
		"4,8,4",   // duplicate
		"0,4",     // below 1
		"-2",      // negative
		"4.5",     // non-integer
		"4,8,8,8", // repeated duplicate
	} {
		if got, err := Parse(in); err == nil {
			t.Errorf("Parse(%q) = %v, want error", in, got)
		}
	}
}

func TestValidate(t *testing.T) {
	if err := Validate([]int{4, 8, 16}); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if err := Validate([]int{4, 4}); err == nil {
		t.Fatal("Validate accepted a duplicate")
	}
	if err := Validate([]int{0}); err == nil {
		t.Fatal("Validate accepted zero")
	}
	if err := Validate(nil); err != nil {
		t.Fatalf("Validate(nil): %v", err)
	}
}

func TestSplitMin(t *testing.T) {
	kept, dropped := SplitMin([]int{1, 2, 4, 8}, 4)
	if !reflect.DeepEqual(kept, []int{4, 8}) || !reflect.DeepEqual(dropped, []int{1, 2}) {
		t.Fatalf("SplitMin = %v / %v", kept, dropped)
	}
	kept, dropped = SplitMin([]int{1, 2}, 4)
	if len(kept) != 0 || len(dropped) != 2 {
		t.Fatalf("SplitMin all-dropped = %v / %v", kept, dropped)
	}
	kept, dropped = SplitMin([]int{8, 4}, 2)
	if !reflect.DeepEqual(kept, []int{8, 4}) || dropped != nil {
		t.Fatalf("SplitMin none-dropped = %v / %v", kept, dropped)
	}
}
