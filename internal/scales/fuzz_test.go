package scales

// Native fuzz target for the scale-list parser: Parse must never panic
// on arbitrary input, and every accepted list must satisfy the package
// contract — entries >= 1, no duplicates (Validate agrees), and a
// round trip through rejoining reproduces the same list (the parser
// preserves user order exactly).

import (
	"strconv"
	"strings"
	"testing"
)

func FuzzParse(f *testing.F) {
	for _, seed := range []string{
		"4,8,16,32",
		"1",
		"",
		",",
		"a",
		"4,4",
		" 8 , 16 ",
		"-2",
		"0",
		"4,,8",
		"1000000000000000000000", // overflows int
		"4,8\n",
		"\t2 ,3",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, list string) {
		nps, err := Parse(list)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		if len(nps) == 0 {
			t.Fatalf("Parse(%q) accepted an empty scale list", list)
		}
		if err := Validate(nps); err != nil {
			t.Fatalf("Parse(%q) = %v violates Validate: %v", list, nps, err)
		}
		// Order preservation: re-rendering the parsed list and parsing
		// again must be a fixpoint.
		parts := make([]string, len(nps))
		for i, np := range nps {
			if np < 1 {
				t.Fatalf("Parse(%q) admitted scale %d < 1", list, np)
			}
			parts[i] = strconv.Itoa(np)
		}
		again, err := Parse(strings.Join(parts, ","))
		if err != nil {
			t.Fatalf("re-parsing Parse(%q) output failed: %v", list, err)
		}
		if len(again) != len(nps) {
			t.Fatalf("re-parse changed length: %v vs %v", nps, again)
		}
		for i := range nps {
			if again[i] != nps[i] {
				t.Fatalf("re-parse changed order: %v vs %v", nps, again)
			}
		}
	})
}
