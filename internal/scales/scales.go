// Package scales parses and validates the comma-separated job-scale
// lists every front end accepts (scalana-detect, scalana-synth,
// scalana-viewer, and scalana-serve's query parameters). The commands
// used to carry copy-pasted parsing loops with divergent validation:
// duplicates and non-positive rank counts slipped through and silently
// produced duplicate sweep runs. One parser, one rule set.
package scales

import (
	"fmt"
	"strconv"
	"strings"
)

// Parse parses a comma-separated scale list ("4,8,16,32"). Every entry
// must be an integer >= 1 and no entry may repeat; the user's order is
// preserved exactly (detection reports depend on run order, so the
// parser never reorders). Whitespace around entries is ignored.
func Parse(list string) ([]int, error) {
	if strings.TrimSpace(list) == "" {
		return nil, fmt.Errorf("empty scale list")
	}
	parts := strings.Split(list, ",")
	nps := make([]int, 0, len(parts))
	seen := make(map[int]bool, len(parts))
	for _, part := range parts {
		s := strings.TrimSpace(part)
		if s == "" {
			return nil, fmt.Errorf("empty scale entry in %q", list)
		}
		np, err := strconv.Atoi(s)
		if err != nil {
			return nil, fmt.Errorf("bad scale %q", s)
		}
		if np < 1 {
			return nil, fmt.Errorf("scale %d: rank counts must be at least 1", np)
		}
		if seen[np] {
			return nil, fmt.Errorf("duplicate scale %d: each scale may appear once", np)
		}
		seen[np] = true
		nps = append(nps, np)
	}
	return nps, nil
}

// Validate applies Parse's rules to an already-numeric scale list (the
// JSON request path): every scale >= 1, no duplicates, order preserved.
func Validate(nps []int) error {
	seen := make(map[int]bool, len(nps))
	for _, np := range nps {
		if np < 1 {
			return fmt.Errorf("scale %d: rank counts must be at least 1", np)
		}
		if seen[np] {
			return fmt.Errorf("duplicate scale %d: each scale may appear once", np)
		}
		seen[np] = true
	}
	return nil
}

// SplitMin partitions nps into the scales usable at an application's
// minimum rank count and the dropped remainder, preserving order in
// both. Callers warn about dropped and error when kept is empty —
// silently proceeding with a thinned (or empty) sweep is the
// scalana-viewer bug this helper exists to prevent.
func SplitMin(nps []int, minNP int) (kept, dropped []int) {
	for _, np := range nps {
		if np >= minNP {
			kept = append(kept, np)
		} else {
			dropped = append(dropped, np)
		}
	}
	return kept, dropped
}
