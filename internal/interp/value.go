// Package interp executes MiniMP programs on the mpisim runtime. It plays
// the role of the compiled application binary in the paper's pipeline: as
// it runs, it keeps the current PSG instance and vertex up to date on the
// simulated process (Proc.Ctx), so tool hooks — the ScalAna sampler, the
// PMPI layer, the tracer — can attribute time, PMU counters, and
// communication dependence to graph vertices exactly the way call-stack
// unwinding attributes samples on real hardware.
package interp

import (
	"fmt"

	"scalana/internal/minilang"
)

// Value is a MiniMP runtime value: a number, a function reference, or an
// array. The zero Value is the number 0.
type Value struct {
	Num float64
	Fn  string    // non-empty: function reference created by &name
	Arr []float64 // non-nil: array created by alloc(n)
}

// IsNum reports whether v is a plain number.
func (v Value) IsNum() bool { return v.Fn == "" && v.Arr == nil }

func (v Value) String() string {
	switch {
	case v.Fn != "":
		return "&" + v.Fn
	case v.Arr != nil:
		return fmt.Sprintf("array[%d]", len(v.Arr))
	default:
		return fmt.Sprintf("%g", v.Num)
	}
}

// num extracts a number, panicking with position context otherwise.
func num(v Value, pos minilang.Pos, what string) float64 {
	if !v.IsNum() {
		panic(fmt.Sprintf("%s: %s must be a number, got %s", pos, what, v))
	}
	return v.Num
}

func truthy(v Value, pos minilang.Pos) bool {
	return num(v, pos, "condition") != 0
}

func boolVal(b bool) Value {
	if b {
		return Value{Num: 1}
	}
	return Value{}
}
