package interp

import (
	"testing"

	"scalana/internal/minilang"
	"scalana/internal/mpisim"
	"scalana/internal/psg"
)

// BenchmarkInterpreterLoop measures statement-execution throughput.
func BenchmarkInterpreterLoop(b *testing.B) {
	prog := minilang.MustParse("bench.mp", `
func main() {
	var total = 0;
	for (var i = 0; i < 10000; i = i + 1) {
		total = total + i * 2 - 1;
	}
}`)
	g := psg.MustBuild(prog)
	r := NewRunner(prog, g)
	r.GlueIns = 0
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(mpisim.Config{NP: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkInterpreterMPIRing measures a communication-heavy run end to
// end (4 ranks, nonblocking ring).
func BenchmarkInterpreterMPIRing(b *testing.B) {
	prog := minilang.MustParse("bench.mp", `
func main() {
	var rank = mpi_rank();
	var np = mpi_size();
	var next = (rank + 1) % np;
	var prev = (rank - 1 + np) % np;
	for (var it = 0; it < 50; it = it + 1) {
		var r1 = mpi_irecv(prev, 1, 4096);
		mpi_isend(next, 1, 4096);
		compute(1e5, 1e3, 1e3, 8192);
		mpi_waitall();
	}
	mpi_allreduce(8);
}`)
	g := psg.MustBuild(prog)
	r := NewRunner(prog, g)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := r.Run(mpisim.Config{NP: 4}); err != nil {
			b.Fatal(err)
		}
	}
}
