package interp

import (
	"scalana/internal/mpisim"
)

// Run is the convenience entry point: it creates a world from cfg and
// executes the runner's program on every rank.
func (r *Runner) Run(cfg mpisim.Config) (mpisim.RunResult, error) {
	world := mpisim.NewWorld(cfg)
	return world.Run(r.Execute)
}
