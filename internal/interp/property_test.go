package interp

import (
	"fmt"
	"math"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"scalana/internal/minilang"
	"scalana/internal/mpisim"
	"scalana/internal/psg"
)

// genExpr builds a random arithmetic expression as MiniMP source together
// with its expected value, avoiding division/modulo by zero by
// construction. This drives the interpreter-correctness property test.
func genExpr(rng *rand.Rand, depth int) (string, float64) {
	if depth == 0 || rng.Intn(4) == 0 {
		v := float64(rng.Intn(19) - 9)
		if v < 0 {
			return fmt.Sprintf("(0 - %g)", -v), v
		}
		return fmt.Sprintf("%g", v), v
	}
	l, lv := genExpr(rng, depth-1)
	r, rv := genExpr(rng, depth-1)
	switch rng.Intn(6) {
	case 0:
		return fmt.Sprintf("(%s + %s)", l, r), lv + rv
	case 1:
		return fmt.Sprintf("(%s - %s)", l, r), lv - rv
	case 2:
		return fmt.Sprintf("(%s * %s)", l, r), lv * rv
	case 3:
		if rv == 0 {
			return fmt.Sprintf("(%s + %s)", l, r), lv + rv
		}
		return fmt.Sprintf("(%s / %s)", l, r), lv / rv
	case 4:
		return fmt.Sprintf("min(%s, %s)", l, r), math.Min(lv, rv)
	default:
		return fmt.Sprintf("max(%s, %s)", l, r), math.Max(lv, rv)
	}
}

// TestInterpreterArithmeticProperty: for random expression trees, the
// interpreter computes the same value as the Go-side evaluation.
func TestInterpreterArithmeticProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		expr, want := genExpr(rng, 5)
		src := fmt.Sprintf("func main() { print(%s); }", expr)
		prog, err := minilang.Parse("gen.mp", src)
		if err != nil {
			t.Logf("generated source failed to parse: %s: %v", src, err)
			return false
		}
		g := psg.MustBuild(prog)
		var sb strings.Builder
		r := NewRunner(prog, g)
		r.Stdout = &sb
		if _, err := r.Run(mpisim.Config{NP: 1}); err != nil {
			t.Logf("run failed: %s: %v", src, err)
			return false
		}
		var got float64
		if _, err := fmt.Sscanf(strings.TrimPrefix(sb.String(), "[rank 0] "), "%g", &got); err != nil {
			return false
		}
		if math.IsNaN(want) {
			return math.IsNaN(got)
		}
		return math.Abs(got-want) <= 1e-9*math.Max(1, math.Abs(want))
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// TestInterpreterLoopSumProperty: counted loops compute closed-form sums.
func TestInterpreterLoopSumProperty(t *testing.T) {
	f := func(nRaw uint8) bool {
		n := int(nRaw % 50)
		src := fmt.Sprintf(`
func main() {
	var s = 0;
	for (var i = 0; i < %d; i = i + 1) { s = s + i; }
	print(s);
}`, n)
		prog := minilang.MustParse("gen.mp", src)
		g := psg.MustBuild(prog)
		var sb strings.Builder
		r := NewRunner(prog, g)
		r.Stdout = &sb
		if _, err := r.Run(mpisim.Config{NP: 1}); err != nil {
			return false
		}
		want := fmt.Sprintf("[rank 0] %d\n", n*(n-1)/2)
		return sb.String() == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

// TestRingProperty: for any ring size, a full token circulation works and
// total time grows with the ring size.
func TestRingProperty(t *testing.T) {
	prev := 0.0
	for _, np := range []int{2, 4, 8, 16} {
		prog := minilang.MustParse("ring.mp", `
func main() {
	var rank = mpi_rank();
	var np = mpi_size();
	if (rank == 0) {
		mpi_send(1, 0, 64);
		mpi_recv(np - 1, 0, 64);
	} else {
		mpi_recv(rank - 1, 0, 64);
		mpi_send((rank + 1) % np, 0, 64);
	}
}`)
		g := psg.MustBuild(prog)
		r := NewRunner(prog, g)
		res, err := r.Run(mpisim.Config{NP: np})
		if err != nil {
			t.Fatalf("np=%d: %v", np, err)
		}
		if res.Elapsed <= prev {
			t.Errorf("ring of %d not slower than smaller ring: %g <= %g", np, res.Elapsed, prev)
		}
		prev = res.Elapsed
	}
}

// TestGlueCostAttribution: with glue enabled, interpreter bookkeeping
// accrues virtual time even without compute().
func TestGlueCostAttribution(t *testing.T) {
	prog := minilang.MustParse("glue.mp", `
func main() {
	var s = 0;
	for (var i = 0; i < 100; i = i + 1) { s = s + i; }
}`)
	g := psg.MustBuild(prog)
	withGlue := NewRunner(prog, g)
	res1, err := withGlue.Run(mpisim.Config{NP: 1})
	if err != nil {
		t.Fatal(err)
	}
	noGlue := NewRunner(prog, g)
	noGlue.GlueIns = 0
	res2, err := noGlue.Run(mpisim.Config{NP: 1})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Elapsed <= res2.Elapsed {
		t.Errorf("glue cost missing: %g <= %g", res1.Elapsed, res2.Elapsed)
	}
	if res2.Elapsed != 0 {
		t.Errorf("pure scalar code without glue should cost 0 virtual time, got %g", res2.Elapsed)
	}
}
