package interp

import (
	"fmt"
	"io"
	"math"

	"scalana/internal/minilang"
	"scalana/internal/mpisim"
	"scalana/internal/psg"
)

// IndirectObserver is notified when an indirect call resolves its target
// at run time (paper §III-B3). The ScalAna profiler records these to
// refine the PSG.
type IndirectObserver func(rank int, inst *psg.Instance, site minilang.NodeID, target string)

// Runner executes one MiniMP program against a PSG.
type Runner struct {
	Prog  *minilang.Program
	Graph *psg.Graph
	// GlueIns is the abstract instruction count charged per interpreted
	// statement, modelling scalar bookkeeping code between the bulk
	// compute/MPI operations. Zero disables glue accounting.
	GlueIns float64
	// Stdout receives print() output; nil discards it.
	Stdout io.Writer
	// OnIndirect observes runtime indirect-call resolution.
	OnIndirect IndirectObserver
}

// NewRunner builds a Runner with defaults.
func NewRunner(prog *minilang.Program, graph *psg.Graph) *Runner {
	return &Runner{Prog: prog, Graph: graph, GlueIns: 24}
}

// Execute runs the program's main function on rank p. It is the body
// passed to mpisim.World.Run.
func (r *Runner) Execute(p *mpisim.Proc) {
	ex := &exec{r: r, p: p}
	main := r.Prog.Func("main")
	ex.callFunction(r.Graph.Main, main, nil)
}

type frame struct {
	inst   *psg.Instance
	fn     *minilang.FuncDecl
	scopes []map[string]Value
	ret    Value
}

type ctrl int

const (
	ctrlNone ctrl = iota
	ctrlBreak
	ctrlContinue
	ctrlReturn
)

type exec struct {
	r      *Runner
	p      *mpisim.Proc
	frames []*frame
}

func (ex *exec) top() *frame { return ex.frames[len(ex.frames)-1] }

// setCtx points the simulated process at the vertex attributing node.
func (ex *exec) setCtx(node minilang.Node) {
	if v := ex.top().inst.VertexOf(node.ID()); v != nil {
		ex.p.Ctx = v
	}
}

func (ex *exec) callFunction(inst *psg.Instance, fn *minilang.FuncDecl, args []Value) Value {
	if len(args) != len(fn.Params) {
		panic(fmt.Sprintf("interp: %s expects %d args, got %d", fn.Name, len(fn.Params), len(args)))
	}
	f := &frame{inst: inst, fn: fn, scopes: []map[string]Value{{}}}
	for i, name := range fn.Params {
		f.scopes[0][name] = args[i]
	}
	ex.frames = append(ex.frames, f)
	ex.execBlock(fn.Body)
	ret := f.ret
	ex.frames = ex.frames[:len(ex.frames)-1]
	return ret
}

func (ex *exec) pushScope() { f := ex.top(); f.scopes = append(f.scopes, map[string]Value{}) }
func (ex *exec) popScope()  { f := ex.top(); f.scopes = f.scopes[:len(f.scopes)-1] }

func (ex *exec) lookup(name string, pos minilang.Pos) Value {
	f := ex.top()
	for i := len(f.scopes) - 1; i >= 0; i-- {
		if v, ok := f.scopes[i][name]; ok {
			return v
		}
	}
	panic(fmt.Sprintf("%s: undefined variable %q", pos, name))
}

func (ex *exec) assign(name string, v Value, pos minilang.Pos) {
	f := ex.top()
	for i := len(f.scopes) - 1; i >= 0; i-- {
		if _, ok := f.scopes[i][name]; ok {
			f.scopes[i][name] = v
			return
		}
	}
	panic(fmt.Sprintf("%s: assignment to undefined variable %q", pos, name))
}

func (ex *exec) declare(name string, v Value) {
	f := ex.top()
	f.scopes[len(f.scopes)-1][name] = v
}

func (ex *exec) glue() {
	if ex.r.GlueIns > 0 {
		ex.p.Glue(ex.r.GlueIns)
	}
}

func (ex *exec) execBlock(b *minilang.Block) ctrl {
	ex.pushScope()
	defer ex.popScope()
	for _, s := range b.Stmts {
		if c := ex.execStmt(s); c != ctrlNone {
			return c
		}
	}
	return ctrlNone
}

func (ex *exec) execStmt(s minilang.Stmt) ctrl {
	ex.setCtx(s)
	switch st := s.(type) {
	case *minilang.VarDecl:
		ex.glue()
		ex.declare(st.Name, ex.eval(st.Init))
	case *minilang.AssignStmt:
		ex.glue()
		if st.Idx != nil {
			arr := ex.lookup(st.Name, st.Pos())
			if arr.Arr == nil {
				panic(fmt.Sprintf("%s: %q is not an array", st.Pos(), st.Name))
			}
			idx := int(num(ex.eval(st.Idx), st.Pos(), "index"))
			if idx < 0 || idx >= len(arr.Arr) {
				panic(fmt.Sprintf("%s: index %d out of range [0,%d)", st.Pos(), idx, len(arr.Arr)))
			}
			arr.Arr[idx] = num(ex.eval(st.Val), st.Pos(), "array element")
			return ctrlNone
		}
		ex.assign(st.Name, ex.eval(st.Val), st.Pos())
	case *minilang.ExprStmt:
		ex.glue()
		ex.eval(st.X)
	case *minilang.ReturnStmt:
		if st.Value != nil {
			ex.top().ret = ex.eval(st.Value)
		}
		return ctrlReturn
	case *minilang.BreakStmt:
		return ctrlBreak
	case *minilang.ContinueStmt:
		return ctrlContinue
	case *minilang.Block:
		return ex.execBlock(st)
	case *minilang.IfStmt:
		ex.glue()
		cond := truthy(ex.eval(st.Cond), st.Pos())
		ex.setCtx(st)
		if cond {
			return ex.execBlock(st.Then)
		} else if st.Else != nil {
			return ex.execBlock(st.Else)
		}
	case *minilang.ForStmt:
		ex.pushScope()
		defer ex.popScope()
		if st.Init != nil {
			if c := ex.execStmt(st.Init); c != ctrlNone {
				return c
			}
		}
		for {
			ex.setCtx(st)
			ex.glue()
			if st.Cond != nil && !truthy(ex.eval(st.Cond), st.Pos()) {
				break
			}
			c := ex.execBlock(st.Body)
			if c == ctrlBreak {
				break
			}
			if c == ctrlReturn {
				return c
			}
			if st.Post != nil {
				ex.setCtx(st.Post)
				if c := ex.execStmt(st.Post); c != ctrlNone {
					return c
				}
			}
		}
	case *minilang.WhileStmt:
		for {
			ex.setCtx(st)
			ex.glue()
			if !truthy(ex.eval(st.Cond), st.Pos()) {
				break
			}
			c := ex.execBlock(st.Body)
			if c == ctrlBreak {
				break
			}
			if c == ctrlReturn {
				return c
			}
		}
	default:
		panic(fmt.Sprintf("interp: unknown statement %T", s))
	}
	return ctrlNone
}

func (ex *exec) eval(e minilang.Expr) Value {
	switch x := e.(type) {
	case *minilang.NumLit:
		return Value{Num: x.Value}
	case *minilang.StrLit:
		panic(fmt.Sprintf("%s: string literal outside print", x.Pos()))
	case *minilang.VarRef:
		return ex.lookup(x.Name, x.Pos())
	case *minilang.FuncRefExpr:
		return Value{Fn: x.Name}
	case *minilang.IndexExpr:
		arr := ex.lookup(x.Name, x.Pos())
		if arr.Arr == nil {
			panic(fmt.Sprintf("%s: %q is not an array", x.Pos(), x.Name))
		}
		idx := int(num(ex.eval(x.Idx), x.Pos(), "index"))
		if idx < 0 || idx >= len(arr.Arr) {
			panic(fmt.Sprintf("%s: index %d out of range [0,%d)", x.Pos(), idx, len(arr.Arr)))
		}
		return Value{Num: arr.Arr[idx]}
	case *minilang.UnaryExpr:
		v := num(ex.eval(x.X), x.Pos(), "operand")
		if x.Op == minilang.TokMinus {
			return Value{Num: -v}
		}
		return boolVal(v == 0)
	case *minilang.BinaryExpr:
		return ex.evalBinary(x)
	case *minilang.CallExpr:
		return ex.evalCall(x)
	}
	panic(fmt.Sprintf("interp: unknown expression %T", e))
}

func (ex *exec) evalBinary(x *minilang.BinaryExpr) Value {
	// Short-circuit logical operators.
	switch x.Op {
	case minilang.TokAndAnd:
		if !truthy(ex.eval(x.L), x.Pos()) {
			return Value{}
		}
		return boolVal(truthy(ex.eval(x.R), x.Pos()))
	case minilang.TokOrOr:
		if truthy(ex.eval(x.L), x.Pos()) {
			return Value{Num: 1}
		}
		return boolVal(truthy(ex.eval(x.R), x.Pos()))
	}
	l := num(ex.eval(x.L), x.Pos(), "left operand")
	r := num(ex.eval(x.R), x.Pos(), "right operand")
	switch x.Op {
	case minilang.TokPlus:
		return Value{Num: l + r}
	case minilang.TokMinus:
		return Value{Num: l - r}
	case minilang.TokStar:
		return Value{Num: l * r}
	case minilang.TokSlash:
		if r == 0 {
			panic(fmt.Sprintf("%s: division by zero", x.Pos()))
		}
		return Value{Num: l / r}
	case minilang.TokPercent:
		if r == 0 {
			panic(fmt.Sprintf("%s: modulo by zero", x.Pos()))
		}
		return Value{Num: math.Mod(l, r)}
	case minilang.TokEq:
		return boolVal(l == r)
	case minilang.TokNe:
		return boolVal(l != r)
	case minilang.TokLt:
		return boolVal(l < r)
	case minilang.TokLe:
		return boolVal(l <= r)
	case minilang.TokGt:
		return boolVal(l > r)
	case minilang.TokGe:
		return boolVal(l >= r)
	}
	panic(fmt.Sprintf("interp: unknown binary operator %v", x.Op))
}
