package interp

import (
	"math"
	"strings"
	"testing"

	"scalana/internal/minilang"
	"scalana/internal/mpisim"
	"scalana/internal/psg"
)

func runSource(t *testing.T, src string, np int) (mpisim.RunResult, *psg.Graph) {
	t.Helper()
	prog, err := minilang.Parse("test.mp", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g, err := psg.Build(prog, psg.DefaultOptions())
	if err != nil {
		t.Fatalf("psg: %v", err)
	}
	r := NewRunner(prog, g)
	res, err := r.Run(mpisim.Config{NP: np})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res, g
}

func TestSequentialArithmetic(t *testing.T) {
	var sb strings.Builder
	prog := minilang.MustParse("test.mp", `
func main() {
	var x = 3;
	var y = x * 4 + 2;
	var z = pow(2, 10);
	print("y=", y, "z=", z, "mod=", 17 % 5);
}
`)
	g := psg.MustBuild(prog)
	r := NewRunner(prog, g)
	r.Stdout = &sb
	if _, err := r.Run(mpisim.Config{NP: 1}); err != nil {
		t.Fatal(err)
	}
	got := sb.String()
	want := "[rank 0] y= 14 z= 1024 mod= 2\n"
	if got != want {
		t.Errorf("output = %q, want %q", got, want)
	}
}

func TestPingPong(t *testing.T) {
	res, _ := runSource(t, `
func main() {
	var rank = mpi_rank();
	if (rank == 0) {
		mpi_send(1, 7, 1024);
		mpi_recv(1, 8, 1024);
	} else {
		mpi_recv(0, 7, 1024);
		mpi_send(0, 8, 1024);
	}
}
`, 2)
	if res.Elapsed <= 0 {
		t.Fatalf("elapsed = %g, want > 0", res.Elapsed)
	}
}

func TestComputeAdvancesClockProportionally(t *testing.T) {
	small, _ := runSource(t, `
func main() {
	compute(1e6, 1e5, 1e4, 1024);
}
`, 1)
	big, _ := runSource(t, `
func main() {
	compute(1e8, 1e7, 1e6, 1024);
}
`, 1)
	ratio := big.Elapsed / small.Elapsed
	if ratio < 50 || ratio > 200 {
		t.Errorf("100x flops should be ~100x time, got ratio %.2f (small=%g big=%g)",
			ratio, small.Elapsed, big.Elapsed)
	}
}

func TestCollectiveSynchronizesClocks(t *testing.T) {
	// Rank 3 computes 10x longer; after the barrier all clocks must be >=
	// the straggler's arrival.
	res, _ := runSource(t, `
func main() {
	var rank = mpi_rank();
	if (rank == 3) {
		compute(2e8, 1e6, 1e6, 4096);
	} else {
		compute(2e6, 1e4, 1e4, 4096);
	}
	mpi_barrier();
}
`, 4)
	minClock := math.Inf(1)
	for _, c := range res.Clocks {
		minClock = math.Min(minClock, c)
	}
	if res.Elapsed-minClock > res.Elapsed*0.01 {
		t.Errorf("barrier should equalize clocks: min %g max %g", minClock, res.Elapsed)
	}
}

func TestNonBlockingHaloExchange(t *testing.T) {
	res, _ := runSource(t, `
func main() {
	var rank = mpi_rank();
	var np = mpi_size();
	var left = (rank - 1 + np) % np;
	var right = (rank + 1) % np;
	for (var it = 0; it < 5; it = it + 1) {
		var r1 = mpi_irecv(left, 1, 8192);
		var r2 = mpi_irecv(right, 2, 8192);
		mpi_isend(right, 1, 8192);
		mpi_isend(left, 2, 8192);
		compute(1e6, 2e5, 1e5, 65536);
		mpi_waitall();
	}
	mpi_allreduce(8);
}
`, 8)
	if res.Elapsed <= 0 {
		t.Fatal("no progress")
	}
	for r, c := range res.Clocks {
		if c <= 0 {
			t.Errorf("rank %d clock = %g", r, c)
		}
	}
}

func TestRecvAnyReturnsSource(t *testing.T) {
	var sb strings.Builder
	prog := minilang.MustParse("test.mp", `
func main() {
	var rank = mpi_rank();
	if (rank == 0) {
		var src = mpi_recv_any(5, 64);
		print("got from", src);
	} else {
		mpi_send(0, 5, 64);
	}
}
`)
	g := psg.MustBuild(prog)
	r := NewRunner(prog, g)
	r.Stdout = &sb
	if _, err := r.Run(mpisim.Config{NP: 2}); err != nil {
		t.Fatal(err)
	}
	if want := "[rank 0] got from 1\n"; sb.String() != want {
		t.Errorf("output = %q, want %q", sb.String(), want)
	}
}

func TestUserFunctionsAndRecursion(t *testing.T) {
	var sb strings.Builder
	prog := minilang.MustParse("test.mp", `
func fib(n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main() {
	print("fib10=", fib(10));
}
`)
	g := psg.MustBuild(prog)
	r := NewRunner(prog, g)
	r.Stdout = &sb
	if _, err := r.Run(mpisim.Config{NP: 1}); err != nil {
		t.Fatal(err)
	}
	if want := "[rank 0] fib10= 55\n"; sb.String() != want {
		t.Errorf("output = %q, want %q", sb.String(), want)
	}
}

func TestIndirectCallResolvesAndRuns(t *testing.T) {
	var sb strings.Builder
	prog := minilang.MustParse("test.mp", `
func double(x) { return x * 2; }
func triple(x) { return x * 3; }
func main() {
	var f = &double;
	if (mpi_rank() % 2 == 1) {
		f = &triple;
	}
	print("r=", f(7));
}
`)
	g := psg.MustBuild(prog)
	r := NewRunner(prog, g)
	r.Stdout = &sb
	var observed []string
	r.OnIndirect = func(rank int, inst *psg.Instance, site minilang.NodeID, target string) {
		observed = append(observed, target)
	}
	if _, err := r.Run(mpisim.Config{NP: 1}); err != nil {
		t.Fatal(err)
	}
	if want := "[rank 0] r= 14\n"; sb.String() != want {
		t.Errorf("output = %q, want %q", sb.String(), want)
	}
	if len(observed) != 1 || observed[0] != "double" {
		t.Errorf("indirect observations = %v, want [double]", observed)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Errorf("graph invariants after refinement: %v", err)
	}
}

func TestArraysAndWhile(t *testing.T) {
	var sb strings.Builder
	prog := minilang.MustParse("test.mp", `
func main() {
	var a = alloc(10);
	var i = 0;
	while (i < 10) {
		a[i] = i * i;
		i = i + 1;
	}
	var sum = 0;
	for (var j = 0; j < len(a); j = j + 1) {
		sum = sum + a[j];
	}
	print("sum=", sum);
}
`)
	g := psg.MustBuild(prog)
	r := NewRunner(prog, g)
	r.Stdout = &sb
	if _, err := r.Run(mpisim.Config{NP: 1}); err != nil {
		t.Fatal(err)
	}
	if want := "[rank 0] sum= 285\n"; sb.String() != want {
		t.Errorf("output = %q, want %q", sb.String(), want)
	}
}

func TestDeterministicAcrossRuns(t *testing.T) {
	src := `
func main() {
	var rank = mpi_rank();
	var np = mpi_size();
	for (var it = 0; it < 3; it = it + 1) {
		compute(1e6 * (rank + 1), 1e4, 1e4, 32768);
		mpi_sendrecv((rank + 1) % np, 1, 4096, (rank - 1 + np) % np, 1, 4096);
		mpi_allreduce(8);
	}
}
`
	a, _ := runSource(t, src, 6)
	b, _ := runSource(t, src, 6)
	if a.Elapsed != b.Elapsed {
		t.Errorf("non-deterministic elapsed: %g vs %g", a.Elapsed, b.Elapsed)
	}
	for r := range a.Clocks {
		if a.Clocks[r] != b.Clocks[r] {
			t.Errorf("rank %d clock differs: %g vs %g", r, a.Clocks[r], b.Clocks[r])
		}
	}
}

func TestRuntimeErrorPropagatesAsError(t *testing.T) {
	prog := minilang.MustParse("test.mp", `
func main() {
	var a = alloc(2);
	a[5] = 1;
}
`)
	g := psg.MustBuild(prog)
	r := NewRunner(prog, g)
	if _, err := r.Run(mpisim.Config{NP: 2}); err == nil {
		t.Fatal("expected out-of-range error, got nil")
	}
}
