package interp

import (
	"fmt"
	"math"

	"scalana/internal/minilang"
)

func (ex *exec) evalCall(call *minilang.CallExpr) Value {
	if call.Builtin != nil {
		return ex.evalBuiltin(call)
	}
	args := make([]Value, len(call.Args))
	for i, a := range call.Args {
		args[i] = ex.eval(a)
	}
	inst := ex.top().inst

	if call.Indirect {
		fnv := ex.lookup(call.Name, call.Pos())
		if fnv.Fn == "" {
			panic(fmt.Sprintf("%s: %q does not hold a function reference", call.Pos(), call.Name))
		}
		target := ex.r.Prog.Func(fnv.Fn)
		if target == nil {
			panic(fmt.Sprintf("%s: indirect call to unknown function %q", call.Pos(), fnv.Fn))
		}
		child, err := ex.r.Graph.ResolveIndirect(inst, call.ID(), fnv.Fn)
		if err != nil {
			panic(fmt.Sprintf("%s: %v", call.Pos(), err))
		}
		if ex.r.OnIndirect != nil {
			ex.r.OnIndirect(ex.p.Rank, inst, call.ID(), fnv.Fn)
		}
		return ex.callFunction(child, target, args)
	}

	target := ex.r.Prog.Func(call.Name)
	child := inst.CalleeInstance(call.ID())
	if child == nil {
		panic(fmt.Sprintf("%s: no PSG instance for call to %q (site %d in %s)", call.Pos(), call.Name, call.ID(), inst.Path))
	}
	return ex.callFunction(child, target, args)
}

func (ex *exec) evalBuiltin(call *minilang.CallExpr) Value {
	b := call.Builtin
	switch b.Kind {
	case minilang.BuiltinIO:
		return ex.evalPrint(call)
	case minilang.BuiltinComm:
		return ex.evalMPI(call)
	}

	args := make([]Value, len(call.Args))
	for i, a := range call.Args {
		args[i] = ex.eval(a)
	}
	n := func(i int) float64 { return num(args[i], call.Pos(), b.Name+" argument") }

	switch b.Kind {
	case minilang.BuiltinQuery:
		switch b.Name {
		case "mpi_rank":
			return Value{Num: float64(ex.p.Rank)}
		case "mpi_size":
			return Value{Num: float64(ex.p.NP())}
		}
	case minilang.BuiltinCompute:
		// Attribute the work to the compute call's own Comp vertex.
		ex.setCtx(call)
		ex.p.Compute(n(0), n(1), n(2), n(3))
		return Value{}
	case minilang.BuiltinAlloc:
		ln := int(n(0))
		if ln < 0 {
			panic(fmt.Sprintf("%s: alloc of negative length %d", call.Pos(), ln))
		}
		return Value{Arr: make([]float64, ln)}
	case minilang.BuiltinMath:
		switch b.Name {
		case "len":
			if args[0].Arr == nil {
				panic(fmt.Sprintf("%s: len of non-array", call.Pos()))
			}
			return Value{Num: float64(len(args[0].Arr))}
		case "sqrt":
			return Value{Num: math.Sqrt(n(0))}
		case "log":
			return Value{Num: math.Log(n(0))}
		case "log2":
			return Value{Num: math.Log2(n(0))}
		case "exp":
			return Value{Num: math.Exp(n(0))}
		case "floor":
			return Value{Num: math.Floor(n(0))}
		case "ceil":
			return Value{Num: math.Ceil(n(0))}
		case "abs":
			return Value{Num: math.Abs(n(0))}
		case "min":
			return Value{Num: math.Min(n(0), n(1))}
		case "max":
			return Value{Num: math.Max(n(0), n(1))}
		case "pow":
			return Value{Num: math.Pow(n(0), n(1))}
		case "rand":
			return Value{Num: ex.p.Rand()}
		}
	}
	panic(fmt.Sprintf("interp: unhandled builtin %q", b.Name))
}

func (ex *exec) evalMPI(call *minilang.CallExpr) Value {
	// Evaluate arguments with the enclosing context, then point the
	// process at the MPI vertex for the operation itself, so waiting time
	// lands on the MPI vertex exactly as a PAPI sample inside MPI would.
	args := make([]Value, len(call.Args))
	for i, a := range call.Args {
		args[i] = ex.eval(a)
	}
	n := func(i int) float64 { return num(args[i], call.Pos(), call.Name+" argument") }
	ni := func(i int) int { return int(n(i)) }
	ex.setCtx(call)
	p := ex.p

	switch call.Name {
	case "mpi_send":
		p.Send(ni(0), ni(1), n(2))
	case "mpi_recv":
		p.Recv(ni(0), ni(1), n(2))
	case "mpi_recv_any":
		return Value{Num: float64(p.RecvAny(ni(0), n(1)))}
	case "mpi_isend":
		return Value{Num: float64(p.Isend(ni(0), ni(1), n(2)).ID())}
	case "mpi_irecv":
		return Value{Num: float64(p.Irecv(ni(0), ni(1), n(2)).ID())}
	case "mpi_irecv_any":
		return Value{Num: float64(p.IrecvAny(ni(0), n(1)).ID())}
	case "mpi_wait":
		p.Wait(ni(0))
	case "mpi_waitall":
		p.Waitall()
	case "mpi_sendrecv":
		p.Sendrecv(ni(0), ni(1), n(2), ni(3), ni(4), n(5))
	case "mpi_barrier":
		p.Barrier()
	case "mpi_bcast":
		p.Bcast(ni(0), n(1))
	case "mpi_reduce":
		p.Reduce(ni(0), n(1))
	case "mpi_allreduce":
		p.Allreduce(n(0))
	case "mpi_alltoall":
		p.Alltoall(n(0))
	case "mpi_allgather":
		p.Allgather(n(0))
	default:
		panic(fmt.Sprintf("interp: unhandled MPI builtin %q", call.Name))
	}
	return Value{}
}

func (ex *exec) evalPrint(call *minilang.CallExpr) Value {
	if ex.r.Stdout == nil {
		// Still evaluate arguments for their side effects.
		for _, a := range call.Args {
			if _, isStr := a.(*minilang.StrLit); !isStr {
				ex.eval(a)
			}
		}
		return Value{}
	}
	out := fmt.Sprintf("[rank %d]", ex.p.Rank)
	for _, a := range call.Args {
		if s, isStr := a.(*minilang.StrLit); isStr {
			out += " " + s.Value
			continue
		}
		out += " " + ex.eval(a).String()
	}
	fmt.Fprintln(ex.r.Stdout, out)
	return Value{}
}
