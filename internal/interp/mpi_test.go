package interp

import (
	"strings"
	"testing"

	"scalana/internal/machine"
	"scalana/internal/minilang"
	"scalana/internal/mpisim"
	"scalana/internal/psg"
)

func mustRun(t *testing.T, src string, np int) mpisim.RunResult {
	t.Helper()
	prog := minilang.MustParse("t.mp", src)
	g := psg.MustBuild(prog)
	r := NewRunner(prog, g)
	res, err := r.Run(mpisim.Config{NP: np})
	if err != nil {
		t.Fatalf("run: %v", err)
	}
	return res
}

func mustFail(t *testing.T, src string, np int, substr string) {
	t.Helper()
	prog := minilang.MustParse("t.mp", src)
	g := psg.MustBuild(prog)
	r := NewRunner(prog, g)
	_, err := r.Run(mpisim.Config{NP: np})
	if err == nil {
		t.Fatalf("expected error containing %q", substr)
	}
	if !strings.Contains(err.Error(), substr) {
		t.Fatalf("error %q does not contain %q", err, substr)
	}
}

// TestAllCollectives drives every collective builtin through the
// interpreter.
func TestAllCollectives(t *testing.T) {
	res := mustRun(t, `
func main() {
	mpi_barrier();
	mpi_bcast(0, 1024);
	mpi_reduce(0, 512);
	mpi_allreduce(8);
	mpi_alltoall(256);
	mpi_allgather(128);
}`, 4)
	if res.Elapsed <= 0 {
		t.Error("collectives cost no time")
	}
}

// TestBlockingPairsAndWaits drives send/recv, isend/irecv/wait, and
// sendrecv together.
func TestBlockingPairsAndWaits(t *testing.T) {
	mustRun(t, `
func main() {
	var rank = mpi_rank();
	var np = mpi_size();
	var next = (rank + 1) % np;
	var prev = (rank - 1 + np) % np;
	// sendrecv ring
	mpi_sendrecv(next, 1, 512, prev, 1, 512);
	// explicit wait on a single request
	var r = mpi_irecv(prev, 2, 256);
	mpi_isend(next, 2, 256);
	mpi_wait(r);
	// waitall over several requests
	var r2 = mpi_irecv(prev, 3, 64);
	var r3 = mpi_irecv(next, 4, 64);
	mpi_isend(next, 3, 64);
	mpi_isend(prev, 4, 64);
	mpi_waitall();
}`, 4)
}

// TestWildcardBuiltins drives recv_any and irecv_any.
func TestWildcardBuiltins(t *testing.T) {
	mustRun(t, `
func main() {
	if (mpi_rank() == 0) {
		var src1 = mpi_recv_any(7, 64);
		var r = mpi_irecv_any(8, 64);
		mpi_wait(r);
	}
	if (mpi_rank() == 1) {
		mpi_send(0, 7, 64);
		mpi_send(0, 8, 64);
	}
}`, 2)
}

func TestRuntimeErrors(t *testing.T) {
	mustFail(t, `func main() { var x = 1 / 0; }`, 1, "division by zero")
	mustFail(t, `func main() { var x = 1 % 0; }`, 1, "modulo by zero")
	mustFail(t, `func main() { var a = alloc(0 - 3); }`, 1, "negative length")
	mustFail(t, `func main() { var x = 3; var y = x[0]; }`, 1, "not an array")
	mustFail(t, `func main() { var x = 3; x[0] = 1; }`, 1, "not an array")
	mustFail(t, `func main() { var a = alloc(2); var y = a[9]; }`, 1, "out of range")
	mustFail(t, `func main() { var x = 1; var f = x; f(2); }`, 1, "does not hold a function")
	mustFail(t, `func main() { var a = alloc(2); var y = a + 1; }`, 1, "must be a number")
	mustFail(t, `func main() { var a = alloc(2); if (a) { } }`, 1, "must be a number")
	mustFail(t, `func main() { var x = len(3); }`, 1, "len of non-array")
	mustFail(t, `func main() { mpi_send(99, 0, 8); }`, 2, "out of range")
	mustFail(t, `func main() { mpi_wait(123); }`, 1, "unknown request")
}

func TestMathBuiltins(t *testing.T) {
	var sb strings.Builder
	prog := minilang.MustParse("t.mp", `
func main() {
	print(sqrt(81), log2(8), exp(0), floor(2.9), ceil(2.1), abs(0 - 5), log(1));
}`)
	g := psg.MustBuild(prog)
	r := NewRunner(prog, g)
	r.Stdout = &sb
	if _, err := r.Run(mpisim.Config{NP: 1}); err != nil {
		t.Fatal(err)
	}
	if want := "[rank 0] 9 3 1 2 3 5 0\n"; sb.String() != want {
		t.Errorf("output = %q, want %q", sb.String(), want)
	}
}

func TestShortCircuitEvaluation(t *testing.T) {
	// The right operand of && must not evaluate when the left is false;
	// otherwise the out-of-range index would fault.
	mustRun(t, `
func main() {
	var a = alloc(1);
	var i = 5;
	if (i < 1 && a[i] > 0) {
		a[0] = 1;
	}
	if (i >= 1 || a[i] > 0) {
		a[0] = 2;
	}
}`, 1)
}

func TestElseIfChains(t *testing.T) {
	var sb strings.Builder
	prog := minilang.MustParse("t.mp", `
func classify(x) {
	if (x < 0) { return 0 - 1; }
	else if (x == 0) { return 0; }
	else if (x < 10) { return 1; }
	else { return 2; }
}
func main() {
	print(classify(0 - 5), classify(0), classify(5), classify(50));
}`)
	g := psg.MustBuild(prog)
	r := NewRunner(prog, g)
	r.Stdout = &sb
	if _, err := r.Run(mpisim.Config{NP: 1}); err != nil {
		t.Fatal(err)
	}
	if want := "[rank 0] -1 0 1 2\n"; sb.String() != want {
		t.Errorf("output = %q, want %q", sb.String(), want)
	}
}

func TestNestedFunctionCallsAcrossInstances(t *testing.T) {
	var sb strings.Builder
	prog := minilang.MustParse("t.mp", `
func inner(x) { return x * x; }
func outer(x) { return inner(x) + inner(x + 1); }
func main() {
	print(outer(2) + outer(3));
}`)
	g := psg.MustBuild(prog)
	r := NewRunner(prog, g)
	r.Stdout = &sb
	if _, err := r.Run(mpisim.Config{NP: 1}); err != nil {
		t.Fatal(err)
	}
	// outer(2)=4+9=13, outer(3)=9+16=25 -> 38
	if want := "[rank 0] 38\n"; sb.String() != want {
		t.Errorf("output = %q, want %q", sb.String(), want)
	}
}

func TestWhileWithBreakContinue(t *testing.T) {
	var sb strings.Builder
	prog := minilang.MustParse("t.mp", `
func main() {
	var s = 0;
	var i = 0;
	while (1 == 1) {
		i = i + 1;
		if (i % 2 == 0) { continue; }
		if (i > 9) { break; }
		s = s + i;
	}
	print(s); // 1+3+5+7+9 = 25
}`)
	g := psg.MustBuild(prog)
	r := NewRunner(prog, g)
	r.Stdout = &sb
	if _, err := r.Run(mpisim.Config{NP: 1}); err != nil {
		t.Fatal(err)
	}
	if want := "[rank 0] 25\n"; sb.String() != want {
		t.Errorf("output = %q, want %q", sb.String(), want)
	}
}

// TestVertexAttributionDuringRun verifies Proc.Ctx tracks the PSG: an MPI
// op's event carries the MPI vertex, compute carries its Comp vertex.
func TestVertexAttributionDuringRun(t *testing.T) {
	prog := minilang.MustParse("t.mp", `
func main() {
	compute(1e6, 1e3, 1e3, 4096);
	mpi_barrier();
}`)
	g := psg.MustBuild(prog)
	var events []*mpisim.Event
	hook := &ctxCapture{events: &events}
	r := NewRunner(prog, g)
	world := mpisim.NewWorld(mpisim.Config{NP: 2, HookFactory: func(rank int) []mpisim.Hook {
		if rank == 0 {
			return []mpisim.Hook{hook}
		}
		return nil
	}})
	if _, err := world.Run(r.Execute); err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("%d events", len(events))
	}
	v, ok := events[0].Ctx.(*psg.Vertex)
	if !ok || v.Kind != psg.KindMPI || v.Name != "mpi_barrier" {
		t.Errorf("event ctx = %v", events[0].Ctx)
	}
}

type ctxCapture struct{ events *[]*mpisim.Event }

func (h *ctxCapture) Advance(p *mpisim.Proc, from, to float64, kind mpisim.AdvanceKind, ctx any, pmu machine.Vec) float64 {
	return 0
}
func (h *ctxCapture) MPIEvent(p *mpisim.Proc, ev *mpisim.Event) float64 {
	cp := *ev
	*h.events = append(*h.events, &cp)
	return 0
}
