package commmatrix

import (
	"scalana/internal/mpisim"

	scalana "scalana"
)

// init wires the collector into the public tool registry. This is the
// whole integration: no switch arm, no dispatch edit — importing the
// package (even blank) makes `ToolName: "commmatrix"` work everywhere
// Run/RunCompiled/Engine do.
func init() {
	scalana.RegisterTool(tool{})
}

type tool struct{}

func (tool) Name() string { return "commmatrix" }
func (tool) Description() string {
	return "communication-volume collector: per-vertex send/recv bytes and message counts plus the rank-to-rank traffic matrix"
}

func (tool) NewRun(tc scalana.ToolContext) (scalana.ToolRun, error) {
	cfg, _ := tc.Config.ToolOptions.(Config)
	if cfg.RecordCost == 0 {
		cfg = DefaultConfig()
	}
	np := tc.Config.NP
	return &run{
		cfg:        cfg,
		np:         np,
		collectors: make([]*Collector, np),
		ranks:      make([]*RankComm, np),
	}, nil
}

type run struct {
	cfg        Config
	np         int
	collectors []*Collector
	ranks      []*RankComm
}

func (r *run) HooksForRank(rank int) []mpisim.Hook {
	c := New(r.cfg, rank, r.np)
	r.collectors[rank] = c
	return []mpisim.Hook{c}
}

func (r *run) FinalizeRank(rank int) int64 {
	r.ranks[rank] = r.collectors[rank].Comm()
	return r.ranks[rank].StorageBytes()
}

// Finish assembles the dense traffic matrix; Measurement.Data returns it
// as a *Matrix.
func (r *run) Finish() (any, error) { return Assemble(r.ranks) }
