package commmatrix_test

import (
	"reflect"
	"testing"

	"scalana/internal/commmatrix"

	scalana "scalana"
)

// pairApp moves a known volume: rank 0 sends 3×100 bytes to rank 1,
// then everyone joins an 8-byte allreduce.
var pairApp = &scalana.App{
	Name: "commmatrix-pair", File: "pair.mp", MinNP: 2,
	Source: `
func main() {
	for (var i = 0; i < 3; i = i + 1) {
		if (mpi_rank() == 0) {
			mpi_send(1, 7, 100);
		}
		if (mpi_rank() == 1) {
			mpi_recv(0, 7, 100);
		}
	}
	mpi_allreduce(8);
}`,
}

func runMatrix(t *testing.T, app *scalana.App, np int) (*scalana.RunOutput, *commmatrix.Matrix) {
	t.Helper()
	out, err := scalana.Run(scalana.RunConfig{App: app, NP: np, ToolName: "commmatrix"})
	if err != nil {
		t.Fatal(err)
	}
	m, ok := out.Measurement.Data().(*commmatrix.Matrix)
	if !ok {
		t.Fatalf("payload is %T, want *commmatrix.Matrix", out.Measurement.Data())
	}
	return out, m
}

// TestCollectorCountsKnownPattern checks exact byte and message
// accounting on a deterministic two-rank exchange — driven end to end
// through the public registry, not by poking the hook directly.
func TestCollectorCountsKnownPattern(t *testing.T) {
	out, m := runMatrix(t, pairApp, 2)
	if out.Tool != "commmatrix" || out.Measurement.ToolName() != "commmatrix" {
		t.Errorf("tool name = %q / %q", out.Tool, out.Measurement.ToolName())
	}
	if got := m.At(0, 1); got != 300 {
		t.Errorf("rank 0 -> 1 bytes = %g, want 300", got)
	}
	if got := m.At(1, 0); got != 300 {
		t.Errorf("rank 1 <- 0 bytes = %g, want 300", got)
	}
	if m.Msgs[0*2+1] != 3 || m.Msgs[1*2+0] != 3 {
		t.Errorf("message counts = %v, want 3 each way", m.Msgs)
	}
	if got := m.TotalBytes(); got != 600 {
		t.Errorf("total p2p bytes = %g, want 600", got)
	}

	// Per-vertex accounting: rank 0 all send, rank 1 all recv, one
	// collective each.
	var sends, recvs, colls int64
	for _, vc := range m.Ranks[0].ByVertex {
		sends += vc.SendMsgs
		recvs += vc.RecvMsgs
		colls += vc.CollMsgs
	}
	if sends != 3 || recvs != 0 || colls != 1 {
		t.Errorf("rank 0 msgs: send=%d recv=%d coll=%d, want 3/0/1", sends, recvs, colls)
	}
	sends, recvs, colls = 0, 0, 0
	var collBytes float64
	for _, vc := range m.Ranks[1].ByVertex {
		sends += vc.SendMsgs
		recvs += vc.RecvMsgs
		colls += vc.CollMsgs
		collBytes += vc.CollBytes
	}
	if sends != 0 || recvs != 3 || colls != 1 || collBytes != 8 {
		t.Errorf("rank 1: send=%d recv=%d coll=%d collBytes=%g, want 0/3/1/8", sends, recvs, colls, collBytes)
	}

	if out.StorageBytes() <= 0 {
		t.Error("no storage accounted")
	}
	var sum int64
	for _, rc := range m.Ranks {
		sum += rc.StorageBytes()
	}
	if sum != out.StorageBytes() {
		t.Errorf("storage sum %d != measurement total %d", sum, out.StorageBytes())
	}

	flows := m.TopFlows(10)
	if len(flows) != 2 || flows[0].Bytes != 300 {
		t.Errorf("top flows = %+v", flows)
	}
}

// ringApp shifts 200 bytes around a 4-rank ring via sendrecv (send to
// next, receive from prev), then overlaps an isend/irecv pair completed
// by waitall. Both patterns have asymmetric peers, which pins the
// direction attribution.
var ringApp = &scalana.App{
	Name: "commmatrix-ring", File: "ring.mp", MinNP: 4,
	Source: `
func main() {
	var np = mpi_size();
	var next = (mpi_rank() + 1) % np;
	var prev = (mpi_rank() + np - 1) % np;
	mpi_sendrecv(next, 5, 200, prev, 5, 200);
	mpi_isend(next, 9, 40);
	mpi_irecv(prev, 9, 40);
	mpi_waitall();
}`,
}

// TestSendrecvAndWaitallAttribution checks the asymmetric-peer paths:
// a sendrecv credits its send half to the send destination and its
// receive half to the matched source, and a waitall counts only the
// completed receives (the isend was already counted at post time).
func TestSendrecvAndWaitallAttribution(t *testing.T) {
	_, m := runMatrix(t, ringApp, 4)
	for r := 0; r < 4; r++ {
		next, prev := (r+1)%4, (r+3)%4
		if got := m.At(r, next); got != 240 {
			t.Errorf("rank %d -> next %d = %g bytes, want 240 (200 sendrecv + 40 isend)", r, next, got)
		}
		if got := m.At(r, prev); got != 200 {
			t.Errorf("rank %d <- prev %d = %g bytes, want 200 (sendrecv recv half; waitall recv skips the matrix)", r, prev, got)
		}
		var vsum commmatrix.VertexComm
		for _, vc := range m.Ranks[r].ByVertex {
			vsum.SendMsgs += vc.SendMsgs
			vsum.RecvMsgs += vc.RecvMsgs
			vsum.SendBytes += vc.SendBytes
			vsum.RecvBytes += vc.RecvBytes
		}
		// 1 sendrecv send half + 1 isend; 1 sendrecv recv half + 1
		// waitall-completed irecv (not the isend's completion).
		if vsum.SendMsgs != 2 || vsum.RecvMsgs != 2 {
			t.Errorf("rank %d msgs: send=%d recv=%d, want 2/2", r, vsum.SendMsgs, vsum.RecvMsgs)
		}
		if vsum.SendBytes != 240 || vsum.RecvBytes != 240 {
			t.Errorf("rank %d bytes: send=%g recv=%g, want 240/240", r, vsum.SendBytes, vsum.RecvBytes)
		}
	}
}

// TestCommMatrixDeterministic: equal seeds give deeply equal matrices on
// a real workload (this container is 1-CPU, so determinism is asserted
// via output identity).
func TestCommMatrixDeterministic(t *testing.T) {
	_, a := runMatrix(t, scalana.GetApp("cg"), 8)
	_, b := runMatrix(t, scalana.GetApp("cg"), 8)
	if !reflect.DeepEqual(a, b) {
		t.Error("repeated commmatrix runs diverged")
	}
	if a.TotalBytes() <= 0 {
		t.Error("cg exchanged no p2p bytes?")
	}
}

// TestToolOptionsReachTheCollector: RunConfig.ToolOptions carries the
// collector config through the registry; an absurd per-record cost must
// show up as measurement perturbation.
func TestToolOptionsReachTheCollector(t *testing.T) {
	app := scalana.GetApp("cg")
	cheap, err := scalana.Run(scalana.RunConfig{App: app, NP: 4, ToolName: "commmatrix"})
	if err != nil {
		t.Fatal(err)
	}
	dear, err := scalana.Run(scalana.RunConfig{App: app, NP: 4, ToolName: "commmatrix",
		ToolOptions: commmatrix.Config{RecordCost: 1e-3}})
	if err != nil {
		t.Fatal(err)
	}
	if dear.Result.PerturbTotal <= cheap.Result.PerturbTotal {
		t.Errorf("raising RecordCost did not raise perturbation: %g <= %g",
			dear.Result.PerturbTotal, cheap.Result.PerturbTotal)
	}
}

// TestOverheadBelowTracer: the collector's pitch is volume data at less
// than tracing cost on the same run.
func TestOverheadBelowTracer(t *testing.T) {
	app := scalana.GetApp("cg")
	base, err := scalana.Run(scalana.RunConfig{App: app, NP: 16})
	if err != nil {
		t.Fatal(err)
	}
	cm, err := scalana.Run(scalana.RunConfig{App: app, NP: 16, ToolName: "commmatrix"})
	if err != nil {
		t.Fatal(err)
	}
	tr, err := scalana.Run(scalana.RunConfig{App: app, NP: 16, ToolName: "tracer"})
	if err != nil {
		t.Fatal(err)
	}
	cmOvh := cm.Result.Elapsed - base.Result.Elapsed
	trOvh := tr.Result.Elapsed - base.Result.Elapsed
	if cmOvh >= trOvh {
		t.Errorf("commmatrix overhead %g should be below tracer %g", cmOvh, trOvh)
	}
	if cm.StorageBytes() >= tr.StorageBytes() {
		t.Errorf("commmatrix storage %d should be below tracer %d", cm.StorageBytes(), tr.StorageBytes())
	}
}
