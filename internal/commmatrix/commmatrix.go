// Package commmatrix implements a lightweight communication-volume
// collector: per-rank send/recv byte and message counts keyed by
// interned PSG vertex (psg.VID), plus the dense rank-to-rank traffic
// matrix. It is the kind of tool the ScalAna paper's evaluation invites
// as a further baseline — far cheaper than tracing (no timestamped
// records, only counters) while still exposing the communication
// structure that scalability-fault studies (Zhu et al.) start from.
//
// The collector registers with the scalana tool registry under the name
// "commmatrix" (see tool.go); nothing in the run dispatch path knows it
// exists, which is the point — it proves the registry is a real
// extension seam.
package commmatrix

import (
	"fmt"
	"sort"

	"scalana/internal/machine"
	"scalana/internal/mpisim"
	"scalana/internal/psg"
)

// Config controls the collector.
type Config struct {
	// RecordCost is the virtual CPU cost of updating the counters for
	// one MPI operation (a handful of hash-map adds — cheaper than the
	// ScalAna profiler's parameter recording).
	RecordCost float64
}

// DefaultConfig uses a per-operation cost below the ScalAna profiler's
// CommRecordCost: the collector touches two counters and a matrix cell,
// with no parameter compression to run.
func DefaultConfig() Config { return Config{RecordCost: 0.1e-6} }

// VertexComm aggregates the traffic one PSG vertex issued on one rank.
//
// Direction accounting: sends are counted when the operation posts
// (mpi_send, mpi_isend, the send half of a sendrecv); receives when the
// payload lands (mpi_recv, a wait completing a receive, waitall's
// aggregated receives, the receive half of a sendrecv). Collectives
// count separately: their payload is per-peer, not point-to-point.
type VertexComm struct {
	SendMsgs  int64
	RecvMsgs  int64
	CollMsgs  int64
	SendBytes float64
	RecvBytes float64
	CollBytes float64
	// Wait is the summed blocked time inside the vertex's operations.
	Wait float64
}

// RankComm is one rank's communication-volume profile.
type RankComm struct {
	Rank int
	NP   int
	// ByVertex aggregates traffic per interned PSG vertex.
	ByVertex map[psg.VID]*VertexComm
	// PeerBytes and PeerMsgs are this rank's row of the traffic matrix:
	// point-to-point payload exchanged with each peer, counted at the
	// local operation (sends at post, receives at completion).
	PeerBytes []float64
	PeerMsgs  []int64
}

// StorageBytes is the rank's on-disk size: a header, one counter record
// per touched vertex, and one cell per peer actually communicated with.
func (rc *RankComm) StorageBytes() int64 {
	const (
		header      = 64
		vertexEntry = 4 + 6*8 + 8 // vid + six counters + wait
		peerCell    = 4 + 8 + 8   // peer + bytes + msgs
	)
	var cells int64
	for p := range rc.PeerBytes {
		if rc.PeerBytes[p] != 0 || rc.PeerMsgs[p] != 0 {
			cells++
		}
	}
	return header + int64(len(rc.ByVertex))*vertexEntry + cells*peerCell
}

// Collector is the per-rank hook implementing mpisim.Hook.
type Collector struct {
	cfg  Config
	comm *RankComm
}

// New creates the collector for one rank.
func New(cfg Config, rank, np int) *Collector {
	if cfg.RecordCost == 0 {
		cfg = DefaultConfig()
	}
	return &Collector{
		cfg: cfg,
		comm: &RankComm{
			Rank:      rank,
			NP:        np,
			ByVertex:  map[psg.VID]*VertexComm{},
			PeerBytes: make([]float64, np),
			PeerMsgs:  make([]int64, np),
		},
	}
}

// Comm returns the collected rank profile.
func (c *Collector) Comm() *RankComm { return c.comm }

func ctxVID(ctx any) psg.VID {
	if v, ok := ctx.(*psg.Vertex); ok && v != nil {
		return v.VID
	}
	return psg.VIDRoot
}

func (c *Collector) vertex(ctx any) *VertexComm {
	vid := ctxVID(ctx)
	vc := c.comm.ByVertex[vid]
	if vc == nil {
		vc = &VertexComm{}
		c.comm.ByVertex[vid] = vc
	}
	return vc
}

// Advance is a no-op: the collector does no timer sampling, which is
// exactly why its runtime overhead sits below the sampling profilers.
func (c *Collector) Advance(p *mpisim.Proc, from, to float64, kind mpisim.AdvanceKind, ctx any, pmu machine.Vec) float64 {
	return 0
}

// MPIEvent updates the per-vertex counters and the peer matrix row.
// Bytes are counted exactly once per payload: sends at post time
// (mpi_send/mpi_isend), receives at completion (mpi_recv, a wait
// completing a receive, waitall). Posted irecvs and waits on send
// requests contribute nothing — their payload is counted elsewhere.
func (c *Collector) MPIEvent(p *mpisim.Proc, ev *mpisim.Event) float64 {
	vc := c.vertex(ev.Ctx)
	vc.Wait += ev.Wait
	switch ev.Kind {
	case mpisim.EvSend, mpisim.EvIsend:
		vc.SendMsgs++
		vc.SendBytes += ev.Bytes
		c.peer(ev.Peer, ev.Bytes)
	case mpisim.EvRecv:
		vc.RecvMsgs++
		vc.RecvBytes += ev.Bytes
		c.peer(ev.Peer, ev.Bytes)
	case mpisim.EvWait:
		// A wait on a send request (DepRank < 0) completed a payload
		// already counted at the isend.
		if ev.DepRank < 0 {
			return 0
		}
		vc.RecvMsgs++
		vc.RecvBytes += ev.Bytes
		c.peer(ev.Peer, ev.Bytes)
	case mpisim.EvWaitall:
		// Bytes aggregates exactly the completed receives (sends were
		// counted at their isend); the event names only the last-arriving
		// peer, so the matrix row is not updated.
		vc.RecvMsgs += int64(ev.RecvRequests)
		vc.RecvBytes += ev.Bytes
	case mpisim.EvSendrecv:
		// The event splits the combined exchange: SendPeer/SendBytes are
		// the posted send, the remainder is the matched receive.
		vc.SendMsgs++
		vc.RecvMsgs++
		vc.SendBytes += ev.SendBytes
		vc.RecvBytes += ev.Bytes - ev.SendBytes
		c.peer(ev.SendPeer, ev.SendBytes)
		c.peer(ev.Peer, ev.Bytes-ev.SendBytes)
	case mpisim.EvCollective:
		vc.CollMsgs++
		vc.CollBytes += ev.Bytes
	case mpisim.EvIrecv:
		// Posted only; the payload is counted when the wait completes.
		return 0
	}
	return c.cfg.RecordCost
}

func (c *Collector) peer(peer int, bytes float64) {
	if peer < 0 || peer >= c.comm.NP {
		return
	}
	c.comm.PeerBytes[peer] += bytes
	c.comm.PeerMsgs[peer]++
}

var _ mpisim.Hook = (*Collector)(nil)

// Matrix is the job-wide result: every rank's profile plus the dense
// np×np traffic matrix assembled from the per-rank rows.
type Matrix struct {
	NP    int
	Ranks []*RankComm
	// Bytes[src*NP+dst] is the point-to-point payload rank src observed
	// exchanging with rank dst (sends at post, receives at completion).
	Bytes []float64
	// Msgs[src*NP+dst] is the matching operation count.
	Msgs []int64
}

// Assemble builds the dense matrix from per-rank profiles.
func Assemble(ranks []*RankComm) (*Matrix, error) {
	np := len(ranks)
	m := &Matrix{NP: np, Ranks: ranks, Bytes: make([]float64, np*np), Msgs: make([]int64, np*np)}
	for _, rc := range ranks {
		if rc == nil || rc.NP != np {
			return nil, fmt.Errorf("commmatrix: inconsistent rank profiles (np=%d)", np)
		}
		copy(m.Bytes[rc.Rank*np:(rc.Rank+1)*np], rc.PeerBytes)
		copy(m.Msgs[rc.Rank*np:(rc.Rank+1)*np], rc.PeerMsgs)
	}
	return m, nil
}

// At returns the (src, dst) cell of the byte matrix.
func (m *Matrix) At(src, dst int) float64 { return m.Bytes[src*m.NP+dst] }

// TotalBytes sums the matrix.
func (m *Matrix) TotalBytes() float64 {
	var t float64
	for _, b := range m.Bytes {
		t += b
	}
	return t
}

// Flow is one rank pair's traffic, for top-talker reports.
type Flow struct {
	Src, Dst int
	Bytes    float64
	Msgs     int64
}

// TopFlows returns the n heaviest rank pairs in deterministic order
// (bytes descending, then src, then dst).
func (m *Matrix) TopFlows(n int) []Flow {
	flows := make([]Flow, 0, m.NP)
	for s := 0; s < m.NP; s++ {
		for d := 0; d < m.NP; d++ {
			if b := m.At(s, d); b > 0 {
				flows = append(flows, Flow{Src: s, Dst: d, Bytes: b, Msgs: m.Msgs[s*m.NP+d]})
			}
		}
	}
	sort.Slice(flows, func(i, j int) bool {
		if flows[i].Bytes != flows[j].Bytes {
			return flows[i].Bytes > flows[j].Bytes
		}
		if flows[i].Src != flows[j].Src {
			return flows[i].Src < flows[j].Src
		}
		return flows[i].Dst < flows[j].Dst
	})
	if len(flows) > n {
		flows = flows[:n]
	}
	return flows
}
