package minilang

// BuiltinKind classifies builtins for static analysis and the interpreter.
type BuiltinKind int

// Builtin kinds.
const (
	// BuiltinQuery is a side-effect-free runtime query (mpi_rank, mpi_size).
	BuiltinQuery BuiltinKind = iota
	// BuiltinComm is an MPI communication operation. These become MPI
	// vertices in the Program Structure Graph and are never contracted away.
	BuiltinComm
	// BuiltinCompute is the compute(flops, loads, stores, ws) intrinsic that
	// advances the machine model. It becomes (part of) a Comp vertex.
	BuiltinCompute
	// BuiltinMath is a pure math function.
	BuiltinMath
	// BuiltinAlloc allocates an array value.
	BuiltinAlloc
	// BuiltinIO is print.
	BuiltinIO
)

// Builtin describes one MiniMP builtin function.
type Builtin struct {
	Name  string
	Kind  BuiltinKind
	Arity int // -1 means variadic
	// Collective is true for MPI collectives; the backtracking algorithm
	// terminates at collective vertices (paper Algorithm 1).
	Collective bool
	// NonBlocking marks operations completed later by mpi_wait/mpi_waitall.
	NonBlocking bool
}

// Builtins is the table of all MiniMP builtins, keyed by name.
var Builtins = map[string]*Builtin{
	// Runtime queries.
	"mpi_rank": {Name: "mpi_rank", Kind: BuiltinQuery, Arity: 0},
	"mpi_size": {Name: "mpi_size", Kind: BuiltinQuery, Arity: 0},

	// Point-to-point communication: (peer, tag, bytes).
	"mpi_send":  {Name: "mpi_send", Kind: BuiltinComm, Arity: 3},
	"mpi_recv":  {Name: "mpi_recv", Kind: BuiltinComm, Arity: 3},
	"mpi_isend": {Name: "mpi_isend", Kind: BuiltinComm, Arity: 3, NonBlocking: true},
	"mpi_irecv": {Name: "mpi_irecv", Kind: BuiltinComm, Arity: 3, NonBlocking: true},
	// Wildcard-source receives: (tag, bytes); source resolved at completion
	// (exercises the "source or tag is uncertain" path of paper Fig. 5).
	"mpi_recv_any":  {Name: "mpi_recv_any", Kind: BuiltinComm, Arity: 2},
	"mpi_irecv_any": {Name: "mpi_irecv_any", Kind: BuiltinComm, Arity: 2, NonBlocking: true},
	// Completion of non-blocking operations.
	"mpi_wait":    {Name: "mpi_wait", Kind: BuiltinComm, Arity: 1},
	"mpi_waitall": {Name: "mpi_waitall", Kind: BuiltinComm, Arity: 0},
	// Combined exchange: (dest, stag, sbytes, src, rtag, rbytes).
	"mpi_sendrecv": {Name: "mpi_sendrecv", Kind: BuiltinComm, Arity: 6},

	// Collectives.
	"mpi_barrier":   {Name: "mpi_barrier", Kind: BuiltinComm, Arity: 0, Collective: true},
	"mpi_bcast":     {Name: "mpi_bcast", Kind: BuiltinComm, Arity: 2, Collective: true},  // (root, bytes)
	"mpi_reduce":    {Name: "mpi_reduce", Kind: BuiltinComm, Arity: 2, Collective: true}, // (root, bytes)
	"mpi_allreduce": {Name: "mpi_allreduce", Kind: BuiltinComm, Arity: 1, Collective: true},
	"mpi_alltoall":  {Name: "mpi_alltoall", Kind: BuiltinComm, Arity: 1, Collective: true},
	"mpi_allgather": {Name: "mpi_allgather", Kind: BuiltinComm, Arity: 1, Collective: true},

	// Computation intrinsic: compute(flops, loads, stores, workingSetBytes).
	"compute": {Name: "compute", Kind: BuiltinCompute, Arity: 4},

	// Arrays.
	"alloc": {Name: "alloc", Kind: BuiltinAlloc, Arity: 1},
	"len":   {Name: "len", Kind: BuiltinMath, Arity: 1},

	// Math.
	"sqrt":  {Name: "sqrt", Kind: BuiltinMath, Arity: 1},
	"log":   {Name: "log", Kind: BuiltinMath, Arity: 1},
	"log2":  {Name: "log2", Kind: BuiltinMath, Arity: 1},
	"exp":   {Name: "exp", Kind: BuiltinMath, Arity: 1},
	"floor": {Name: "floor", Kind: BuiltinMath, Arity: 1},
	"ceil":  {Name: "ceil", Kind: BuiltinMath, Arity: 1},
	"abs":   {Name: "abs", Kind: BuiltinMath, Arity: 1},
	"min":   {Name: "min", Kind: BuiltinMath, Arity: 2},
	"max":   {Name: "max", Kind: BuiltinMath, Arity: 2},
	"pow":   {Name: "pow", Kind: BuiltinMath, Arity: 2},
	// rand() returns a deterministic per-rank pseudo-random value in [0,1).
	"rand": {Name: "rand", Kind: BuiltinMath, Arity: 0},

	// Output.
	"print": {Name: "print", Kind: BuiltinIO, Arity: -1},
}

// IsMPIComm reports whether the call expression is an MPI communication
// operation (an MPI vertex in the PSG).
func IsMPIComm(c *CallExpr) bool {
	return c.Builtin != nil && c.Builtin.Kind == BuiltinComm
}

// IsCollective reports whether the call is an MPI collective.
func IsCollective(c *CallExpr) bool {
	return c.Builtin != nil && c.Builtin.Collective
}
