package minilang

// NodeID uniquely identifies an AST node within one parsed Program.
// PSG construction uses NodeIDs to map retained graph vertices back to the
// syntax that produced them, and the interpreter uses the same IDs to find
// the PSG vertex for the code it is currently executing.
type NodeID int

// Node is the interface implemented by every AST node.
type Node interface {
	Pos() Pos
	ID() NodeID
}

type base struct {
	pos Pos
	id  NodeID
}

func (b base) Pos() Pos   { return b.pos }
func (b base) ID() NodeID { return b.id }

// Expr is an expression node.
type Expr interface {
	Node
	exprNode()
}

// Stmt is a statement node.
type Stmt interface {
	Node
	stmtNode()
}

// NumLit is a numeric literal.
type NumLit struct {
	base
	Value float64
}

// StrLit is a string literal (only valid as an argument to print).
type StrLit struct {
	base
	Value string
}

// VarRef references a variable by name.
type VarRef struct {
	base
	Name string
}

// IndexExpr reads one element of an array variable: name[idx].
type IndexExpr struct {
	base
	Name string
	Idx  Expr
}

// FuncRefExpr takes the address of a function: &name. The resulting value
// may be stored in a variable and invoked later, producing an indirect call
// that static analysis cannot resolve (paper §III-B3).
type FuncRefExpr struct {
	base
	Name string
}

// BinaryExpr is a binary operation. Op is the operator token kind.
type BinaryExpr struct {
	base
	Op   TokKind
	L, R Expr
}

// UnaryExpr is -x or !x.
type UnaryExpr struct {
	base
	Op TokKind
	X  Expr
}

// CallExpr calls a function or builtin by name. If the name resolves to a
// variable holding a function reference, the call is indirect.
type CallExpr struct {
	base
	Name string
	Args []Expr

	// Filled in by the checker:
	Builtin  *Builtin // non-nil if this is a builtin call
	Indirect bool     // true if Name is a variable holding a func ref
}

// VarDecl declares a local variable with an initializer.
type VarDecl struct {
	base
	Name string
	Init Expr
}

// AssignStmt assigns to a variable or array element.
type AssignStmt struct {
	base
	Name string
	Idx  Expr // non-nil for array element assignment
	Val  Expr
}

// IfStmt is a conditional with an optional else block.
type IfStmt struct {
	base
	Cond Expr
	Then *Block
	Else *Block // nil if absent
}

// ForStmt is a C-style counted loop.
type ForStmt struct {
	base
	Init Stmt // nil or VarDecl/AssignStmt
	Cond Expr // nil means always true
	Post Stmt // nil or AssignStmt
	Body *Block
}

// WhileStmt loops while the condition is true.
type WhileStmt struct {
	base
	Cond Expr
	Body *Block
}

// ReturnStmt returns from the current function.
type ReturnStmt struct {
	base
	Value Expr // nil for bare return
}

// BreakStmt exits the innermost loop.
type BreakStmt struct{ base }

// ContinueStmt continues the innermost loop.
type ContinueStmt struct{ base }

// ExprStmt evaluates an expression for its side effects.
type ExprStmt struct {
	base
	X Expr
}

// Block is a brace-delimited statement list.
type Block struct {
	base
	Stmts []Stmt
}

// FuncDecl declares a function.
type FuncDecl struct {
	base
	Name   string
	Params []string
	Body   *Block
}

// Program is a parsed MiniMP compilation unit.
type Program struct {
	File   string
	Funcs  []*FuncDecl
	Source string // original source text, kept for the viewer

	byName map[string]*FuncDecl
	nodes  int // total number of AST nodes allocated
}

// Func returns the function declared with the given name, or nil.
func (p *Program) Func(name string) *FuncDecl {
	return p.byName[name]
}

// NumNodes reports how many AST nodes the program contains.
func (p *Program) NumNodes() int { return p.nodes }

// SourceLine returns the 1-based line of the program source, or "" if out
// of range. The viewer uses it to show code snippets for root causes.
func (p *Program) SourceLine(line int) string {
	if line < 1 {
		return ""
	}
	cur := 1
	start := 0
	for i := 0; i < len(p.Source); i++ {
		if cur == line {
			start = i
			for j := i; j < len(p.Source); j++ {
				if p.Source[j] == '\n' {
					return p.Source[start:j]
				}
			}
			return p.Source[start:]
		}
		if p.Source[i] == '\n' {
			cur++
		}
	}
	return ""
}

func (*NumLit) exprNode()      {}
func (*StrLit) exprNode()      {}
func (*VarRef) exprNode()      {}
func (*IndexExpr) exprNode()   {}
func (*FuncRefExpr) exprNode() {}
func (*BinaryExpr) exprNode()  {}
func (*UnaryExpr) exprNode()   {}
func (*CallExpr) exprNode()    {}

func (*VarDecl) stmtNode()      {}
func (*AssignStmt) stmtNode()   {}
func (*IfStmt) stmtNode()       {}
func (*ForStmt) stmtNode()      {}
func (*WhileStmt) stmtNode()    {}
func (*ReturnStmt) stmtNode()   {}
func (*BreakStmt) stmtNode()    {}
func (*ContinueStmt) stmtNode() {}
func (*ExprStmt) stmtNode()     {}
func (*Block) stmtNode()        {}
