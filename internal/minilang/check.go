package minilang

import "fmt"

// Check performs semantic analysis on a parsed program: it resolves every
// call to a builtin, a declared function, or an indirect call through a
// variable; verifies arities; and checks that variables are declared before
// use. It mutates CallExpr nodes in place (Builtin/Indirect fields).
func Check(prog *Program) error {
	c := &checker{prog: prog}
	for _, fn := range prog.Funcs {
		c.checkFunc(fn)
	}
	if prog.Func("main") == nil {
		c.errorf(Pos{File: prog.File, Line: 1, Col: 1}, "program has no main function")
	}
	if main := prog.Func("main"); main != nil && len(main.Params) != 0 {
		c.errorf(main.Pos(), "main must take no parameters")
	}
	if len(c.errs) > 0 {
		return joinErrors(c.errs)
	}
	return nil
}

type checker struct {
	prog   *Program
	errs   []error
	scopes []map[string]bool
	loops  int
}

func (c *checker) errorf(pos Pos, format string, args ...any) {
	c.errs = append(c.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
}

func (c *checker) push() { c.scopes = append(c.scopes, map[string]bool{}) }
func (c *checker) pop()  { c.scopes = c.scopes[:len(c.scopes)-1] }

func (c *checker) declare(name string, pos Pos) {
	top := c.scopes[len(c.scopes)-1]
	if top[name] {
		c.errorf(pos, "variable %q redeclared in this scope", name)
	}
	top[name] = true
}

func (c *checker) declared(name string) bool {
	for i := len(c.scopes) - 1; i >= 0; i-- {
		if c.scopes[i][name] {
			return true
		}
	}
	return false
}

func (c *checker) checkFunc(fn *FuncDecl) {
	c.push()
	for _, p := range fn.Params {
		c.scopes[len(c.scopes)-1][p] = true
	}
	c.checkBlock(fn.Body)
	c.pop()
}

func (c *checker) checkBlock(b *Block) {
	c.push()
	for _, s := range b.Stmts {
		c.checkStmt(s)
	}
	c.pop()
}

func (c *checker) checkStmt(s Stmt) {
	switch st := s.(type) {
	case *VarDecl:
		c.checkExpr(st.Init)
		c.declare(st.Name, st.Pos())
	case *AssignStmt:
		if !c.declared(st.Name) {
			c.errorf(st.Pos(), "assignment to undeclared variable %q", st.Name)
		}
		if st.Idx != nil {
			c.checkExpr(st.Idx)
		}
		c.checkExpr(st.Val)
	case *IfStmt:
		c.checkExpr(st.Cond)
		c.checkBlock(st.Then)
		if st.Else != nil {
			c.checkBlock(st.Else)
		}
	case *ForStmt:
		c.push()
		if st.Init != nil {
			c.checkStmt(st.Init)
		}
		if st.Cond != nil {
			c.checkExpr(st.Cond)
		}
		if st.Post != nil {
			c.checkStmt(st.Post)
		}
		c.loops++
		c.checkBlock(st.Body)
		c.loops--
		c.pop()
	case *WhileStmt:
		c.checkExpr(st.Cond)
		c.loops++
		c.checkBlock(st.Body)
		c.loops--
	case *ReturnStmt:
		if st.Value != nil {
			c.checkExpr(st.Value)
		}
	case *BreakStmt:
		if c.loops == 0 {
			c.errorf(st.Pos(), "break outside loop")
		}
	case *ContinueStmt:
		if c.loops == 0 {
			c.errorf(st.Pos(), "continue outside loop")
		}
	case *ExprStmt:
		c.checkExpr(st.X)
	case *Block:
		c.checkBlock(st)
	default:
		c.errorf(s.Pos(), "internal: unknown statement %T", s)
	}
}

func (c *checker) checkExpr(e Expr) {
	switch ex := e.(type) {
	case *NumLit:
	case *StrLit:
	case *VarRef:
		if !c.declared(ex.Name) {
			c.errorf(ex.Pos(), "use of undeclared variable %q", ex.Name)
		}
	case *IndexExpr:
		if !c.declared(ex.Name) {
			c.errorf(ex.Pos(), "index of undeclared variable %q", ex.Name)
		}
		c.checkExpr(ex.Idx)
	case *FuncRefExpr:
		if c.prog.Func(ex.Name) == nil {
			c.errorf(ex.Pos(), "&%s: no such function", ex.Name)
		}
	case *UnaryExpr:
		c.checkExpr(ex.X)
	case *BinaryExpr:
		c.checkExpr(ex.L)
		c.checkExpr(ex.R)
	case *CallExpr:
		c.resolveCall(ex)
		for _, a := range ex.Args {
			c.checkExpr(a)
		}
	default:
		c.errorf(e.Pos(), "internal: unknown expression %T", e)
	}
}

func (c *checker) resolveCall(call *CallExpr) {
	if b, ok := Builtins[call.Name]; ok {
		call.Builtin = b
		if b.Arity >= 0 && len(call.Args) != b.Arity {
			c.errorf(call.Pos(), "%s expects %d arguments, got %d", b.Name, b.Arity, len(call.Args))
		}
		for _, a := range call.Args {
			if _, isStr := a.(*StrLit); isStr && b.Kind != BuiltinIO {
				c.errorf(a.Pos(), "string literal argument only allowed in print")
			}
		}
		return
	}
	if fn := c.prog.Func(call.Name); fn != nil {
		if len(call.Args) != len(fn.Params) {
			c.errorf(call.Pos(), "%s expects %d arguments, got %d", fn.Name, len(fn.Params), len(call.Args))
		}
		return
	}
	if c.declared(call.Name) {
		// Call through a variable holding a function reference: an indirect
		// call site. Static analysis cannot know the target (paper §III-B3);
		// the runtime records it and the PSG is refined afterwards.
		call.Indirect = true
		return
	}
	c.errorf(call.Pos(), "call of undefined function %q", call.Name)
}
