package minilang

import (
	"strings"
	"testing"
)

func parseOK(t *testing.T, src string) *Program {
	t.Helper()
	prog, err := Parse("t.mp", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	return prog
}

func parseErr(t *testing.T, src, wantSubstr string) {
	t.Helper()
	_, err := Parse("t.mp", src)
	if err == nil {
		t.Fatalf("expected error containing %q, got nil", wantSubstr)
	}
	if !strings.Contains(err.Error(), wantSubstr) {
		t.Fatalf("error %q does not contain %q", err.Error(), wantSubstr)
	}
}

func TestParseAllStatementForms(t *testing.T) {
	prog := parseOK(t, `
func helper(a, b) {
	return a + b;
}
func main() {
	var x = 1;
	x = 2;
	var a = alloc(4);
	a[0] = x;
	a[x] = a[0] + 1;
	if (x > 0) { x = 3; } else { x = 4; }
	if (x > 0) { x = 5; } else if (x < 0) { x = 6; } else { x = 7; }
	for (var i = 0; i < 3; i = i + 1) { x = x + i; }
	for (; x < 100;) { x = x * 2; }
	while (x > 50) { x = x - 1; break; }
	for (var j = 0; j < 2; j = j + 1) { continue; }
	{ var scoped = 9; x = scoped; }
	helper(x, 1);
	return;
}
`)
	if prog.Func("main") == nil || prog.Func("helper") == nil {
		t.Fatal("functions missing")
	}
	if prog.NumNodes() < 40 {
		t.Errorf("expected a rich AST, got %d nodes", prog.NumNodes())
	}
}

func TestParsePrecedence(t *testing.T) {
	prog := parseOK(t, `func main() { var x = 1 + 2 * 3 - 4 / 2; var y = 1 < 2 && 3 > 2 || !(1 == 2); }`)
	body := prog.Func("main").Body.Stmts
	x := body[0].(*VarDecl).Init.(*BinaryExpr)
	// (1 + 2*3) - (4/2): top node is '-'
	if x.Op != TokMinus {
		t.Errorf("top op = %v, want -", x.Op)
	}
	l := x.L.(*BinaryExpr)
	if l.Op != TokPlus {
		t.Errorf("left op = %v, want +", l.Op)
	}
	if l.R.(*BinaryExpr).Op != TokStar {
		t.Errorf("1 + 2*3 shape wrong")
	}
	y := body[1].(*VarDecl).Init.(*BinaryExpr)
	if y.Op != TokOrOr {
		t.Errorf("logical top = %v, want ||", y.Op)
	}
}

func TestParseUnaryAndFuncRef(t *testing.T) {
	prog := parseOK(t, `
func f(x) { return 0 - x; }
func main() { var g = &f; var v = -g(3) + !0; }
`)
	main := prog.Func("main").Body.Stmts
	ref := main[0].(*VarDecl).Init.(*FuncRefExpr)
	if ref.Name != "f" {
		t.Errorf("func ref name = %q", ref.Name)
	}
	call := main[1].(*VarDecl).Init.(*BinaryExpr).L.(*UnaryExpr).X.(*CallExpr)
	if !call.Indirect {
		t.Error("g(3) should be an indirect call")
	}
}

func TestParseNestedCalls(t *testing.T) {
	prog := parseOK(t, `func main() { var v = max(min(1, 2), abs(0 - 3)); }`)
	call := prog.Func("main").Body.Stmts[0].(*VarDecl).Init.(*CallExpr)
	if call.Name != "max" || len(call.Args) != 2 {
		t.Fatalf("outer call wrong: %v", call.Name)
	}
	if call.Args[0].(*CallExpr).Name != "min" {
		t.Error("nested min missing")
	}
}

func TestParseErrors(t *testing.T) {
	parseErr(t, `func main() { var x = ; }`, "expected expression")
	parseErr(t, `func main() { x = 1; }`, "undeclared")
	parseErr(t, `func main() { var x = 1 }`, "expected ;")
	parseErr(t, `func main( { }`, "expected")
	parseErr(t, `func f() {} func f() {} func main() {}`, "redeclared")
	parseErr(t, `func f(a, a) { return a; } func main() { f(1, 2); }`, "duplicate parameter")
	parseErr(t, `var x = 3;`, "expected func")
	parseErr(t, `func main() { break; }`, "break outside loop")
	parseErr(t, `func main() { continue; }`, "continue outside loop")
	parseErr(t, `func helper() {}`, "no main function")
	parseErr(t, `func main(x) {}`, "main must take no parameters")
	parseErr(t, `func main() { nosuch(1); }`, "undefined function")
	parseErr(t, `func main() { var y = sqrt(1, 2); }`, "expects 1 arguments")
	parseErr(t, `func f(a) { return a; } func main() { f(); }`, "expects 1 arguments")
	parseErr(t, `func main() { var s = sqrt("hi"); }`, "string literal")
	parseErr(t, `func main() { var x = &nosuch; }`, "no such function")
	parseErr(t, `func main() { var x = 1; var x = 2; }`, "redeclared in this scope")
}

func TestParseShadowingAllowedAcrossScopes(t *testing.T) {
	parseOK(t, `
func main() {
	var x = 1;
	if (x > 0) {
		var x = 2;
		x = x + 1;
	}
}
`)
}

func TestNodeIDsUnique(t *testing.T) {
	prog := parseOK(t, `
func main() {
	var total = 0;
	for (var i = 0; i < 10; i = i + 1) {
		if (i % 2 == 0) { total = total + i; }
	}
}
`)
	seen := map[NodeID]bool{}
	var walkStmt func(s Stmt)
	var walkExpr func(e Expr)
	check := func(n Node) {
		if seen[n.ID()] {
			t.Errorf("duplicate node ID %d (%T)", n.ID(), n)
		}
		seen[n.ID()] = true
	}
	walkExpr = func(e Expr) {
		check(e)
		switch x := e.(type) {
		case *BinaryExpr:
			walkExpr(x.L)
			walkExpr(x.R)
		case *UnaryExpr:
			walkExpr(x.X)
		case *CallExpr:
			for _, a := range x.Args {
				walkExpr(a)
			}
		case *IndexExpr:
			walkExpr(x.Idx)
		}
	}
	walkStmt = func(s Stmt) {
		check(s)
		switch st := s.(type) {
		case *VarDecl:
			walkExpr(st.Init)
		case *AssignStmt:
			if st.Idx != nil {
				walkExpr(st.Idx)
			}
			walkExpr(st.Val)
		case *IfStmt:
			walkExpr(st.Cond)
			walkStmt(st.Then)
			if st.Else != nil {
				walkStmt(st.Else)
			}
		case *ForStmt:
			if st.Init != nil {
				walkStmt(st.Init)
			}
			if st.Cond != nil {
				walkExpr(st.Cond)
			}
			if st.Post != nil {
				walkStmt(st.Post)
			}
			walkStmt(st.Body)
		case *Block:
			for _, inner := range st.Stmts {
				walkStmt(inner)
			}
		}
	}
	for _, fn := range prog.Funcs {
		check(fn)
		walkStmt(fn.Body)
	}
}

func TestSourceLine(t *testing.T) {
	src := "line one\nline two\nline three"
	prog := &Program{Source: src}
	if got := prog.SourceLine(2); got != "line two" {
		t.Errorf("line 2 = %q", got)
	}
	if got := prog.SourceLine(3); got != "line three" {
		t.Errorf("line 3 = %q", got)
	}
	if got := prog.SourceLine(0); got != "" {
		t.Errorf("line 0 = %q", got)
	}
	if got := prog.SourceLine(99); got != "" {
		t.Errorf("line 99 = %q", got)
	}
}

func TestMustParsePanicsOnBadSource(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MustParse should panic on invalid source")
		}
	}()
	MustParse("bad.mp", "func main( {")
}

func TestParsePositionsPointAtSource(t *testing.T) {
	prog := parseOK(t, "func main() {\n\tvar x = 1;\n\tx = 2;\n}")
	stmts := prog.Func("main").Body.Stmts
	if stmts[0].Pos().Line != 2 {
		t.Errorf("var decl at line %d, want 2", stmts[0].Pos().Line)
	}
	if stmts[1].Pos().Line != 3 {
		t.Errorf("assign at line %d, want 3", stmts[1].Pos().Line)
	}
}
