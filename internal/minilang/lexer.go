package minilang

import (
	"fmt"
	"strconv"
	"strings"
	"unicode"
)

// Lexer turns MiniMP source text into tokens.
type Lexer struct {
	file string
	src  []rune
	off  int
	line int
	col  int
	errs []error
}

// NewLexer returns a lexer over src, reporting positions in file.
func NewLexer(file, src string) *Lexer {
	return &Lexer{file: file, src: []rune(src), line: 1, col: 1}
}

func (lx *Lexer) pos() Pos { return Pos{File: lx.file, Line: lx.line, Col: lx.col} }

func (lx *Lexer) peek() rune {
	if lx.off >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off]
}

func (lx *Lexer) peek2() rune {
	if lx.off+1 >= len(lx.src) {
		return 0
	}
	return lx.src[lx.off+1]
}

func (lx *Lexer) advance() rune {
	r := lx.src[lx.off]
	lx.off++
	if r == '\n' {
		lx.line++
		lx.col = 1
	} else {
		lx.col++
	}
	return r
}

func (lx *Lexer) errorf(p Pos, format string, args ...any) {
	lx.errs = append(lx.errs, fmt.Errorf("%s: %s", p, fmt.Sprintf(format, args...)))
}

func (lx *Lexer) skipSpaceAndComments() {
	for lx.off < len(lx.src) {
		r := lx.peek()
		switch {
		case r == ' ' || r == '\t' || r == '\r' || r == '\n':
			lx.advance()
		case r == '/' && lx.peek2() == '/':
			for lx.off < len(lx.src) && lx.peek() != '\n' {
				lx.advance()
			}
		case r == '/' && lx.peek2() == '*':
			p := lx.pos()
			lx.advance()
			lx.advance()
			closed := false
			for lx.off < len(lx.src) {
				if lx.peek() == '*' && lx.peek2() == '/' {
					lx.advance()
					lx.advance()
					closed = true
					break
				}
				lx.advance()
			}
			if !closed {
				lx.errorf(p, "unterminated block comment")
			}
		default:
			return
		}
	}
}

// Next returns the next token.
func (lx *Lexer) Next() Token {
	lx.skipSpaceAndComments()
	p := lx.pos()
	if lx.off >= len(lx.src) {
		return Token{Kind: TokEOF, Pos: p}
	}
	r := lx.peek()
	switch {
	case unicode.IsLetter(r) || r == '_':
		return lx.lexIdent(p)
	case unicode.IsDigit(r):
		return lx.lexNumber(p)
	case r == '"':
		return lx.lexString(p)
	}
	lx.advance()
	two := func(next rune, k2, k1 TokKind) Token {
		if lx.peek() == next {
			lx.advance()
			return Token{Kind: k2, Pos: p}
		}
		return Token{Kind: k1, Pos: p}
	}
	switch r {
	case '(':
		return Token{Kind: TokLParen, Pos: p}
	case ')':
		return Token{Kind: TokRParen, Pos: p}
	case '{':
		return Token{Kind: TokLBrace, Pos: p}
	case '}':
		return Token{Kind: TokRBrace, Pos: p}
	case '[':
		return Token{Kind: TokLBracket, Pos: p}
	case ']':
		return Token{Kind: TokRBracket, Pos: p}
	case ',':
		return Token{Kind: TokComma, Pos: p}
	case ';':
		return Token{Kind: TokSemi, Pos: p}
	case '+':
		return Token{Kind: TokPlus, Pos: p}
	case '-':
		return Token{Kind: TokMinus, Pos: p}
	case '*':
		return Token{Kind: TokStar, Pos: p}
	case '/':
		return Token{Kind: TokSlash, Pos: p}
	case '%':
		return Token{Kind: TokPercent, Pos: p}
	case '=':
		return two('=', TokEq, TokAssign)
	case '!':
		return two('=', TokNe, TokNot)
	case '<':
		return two('=', TokLe, TokLt)
	case '>':
		return two('=', TokGe, TokGt)
	case '&':
		return two('&', TokAndAnd, TokAmp)
	case '|':
		if lx.peek() == '|' {
			lx.advance()
			return Token{Kind: TokOrOr, Pos: p}
		}
		lx.errorf(p, "unexpected character %q (did you mean ||?)", r)
		return lx.Next()
	}
	lx.errorf(p, "unexpected character %q", r)
	return lx.Next()
}

func (lx *Lexer) lexIdent(p Pos) Token {
	var sb strings.Builder
	for lx.off < len(lx.src) {
		r := lx.peek()
		if unicode.IsLetter(r) || unicode.IsDigit(r) || r == '_' {
			sb.WriteRune(lx.advance())
		} else {
			break
		}
	}
	text := sb.String()
	if k, ok := keywords[text]; ok {
		return Token{Kind: k, Text: text, Pos: p}
	}
	return Token{Kind: TokIdent, Text: text, Pos: p}
}

func (lx *Lexer) lexNumber(p Pos) Token {
	var sb strings.Builder
	seenDot, seenExp := false, false
	for lx.off < len(lx.src) {
		r := lx.peek()
		switch {
		case unicode.IsDigit(r):
			sb.WriteRune(lx.advance())
		case r == '.' && !seenDot && !seenExp:
			seenDot = true
			sb.WriteRune(lx.advance())
		case (r == 'e' || r == 'E') && !seenExp:
			seenExp = true
			sb.WriteRune(lx.advance())
			if lx.peek() == '+' || lx.peek() == '-' {
				sb.WriteRune(lx.advance())
			}
		default:
			goto done
		}
	}
done:
	text := sb.String()
	v, err := strconv.ParseFloat(text, 64)
	if err != nil {
		lx.errorf(p, "bad number literal %q: %v", text, err)
	}
	return Token{Kind: TokNumber, Text: text, Num: v, Pos: p}
}

func (lx *Lexer) lexString(p Pos) Token {
	lx.advance() // opening quote
	var sb strings.Builder
	for lx.off < len(lx.src) {
		r := lx.advance()
		if r == '"' {
			return Token{Kind: TokString, Text: sb.String(), Pos: p}
		}
		if r == '\\' && lx.off < len(lx.src) {
			e := lx.advance()
			switch e {
			case 'n':
				sb.WriteRune('\n')
			case 't':
				sb.WriteRune('\t')
			case '"':
				sb.WriteRune('"')
			case '\\':
				sb.WriteRune('\\')
			default:
				lx.errorf(p, "unknown escape \\%c", e)
			}
			continue
		}
		sb.WriteRune(r)
	}
	lx.errorf(p, "unterminated string literal")
	return Token{Kind: TokString, Text: sb.String(), Pos: p}
}

// Tokenize scans the whole input and returns all tokens up to and
// including EOF, plus any lexical errors.
func Tokenize(file, src string) ([]Token, []error) {
	lx := NewLexer(file, src)
	var toks []Token
	for {
		t := lx.Next()
		toks = append(toks, t)
		if t.Kind == TokEOF {
			return toks, lx.errs
		}
	}
}
