package minilang

import (
	"strings"
	"testing"
)

func kinds(toks []Token) []TokKind {
	out := make([]TokKind, len(toks))
	for i, t := range toks {
		out[i] = t.Kind
	}
	return out
}

func TestTokenizeOperators(t *testing.T) {
	toks, errs := Tokenize("t.mp", "+ - * / % == != < <= > >= && || ! = & ( ) { } [ ] , ;")
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []TokKind{
		TokPlus, TokMinus, TokStar, TokSlash, TokPercent,
		TokEq, TokNe, TokLt, TokLe, TokGt, TokGe,
		TokAndAnd, TokOrOr, TokNot, TokAssign, TokAmp,
		TokLParen, TokRParen, TokLBrace, TokRBrace,
		TokLBracket, TokRBracket, TokComma, TokSemi, TokEOF,
	}
	got := kinds(toks)
	if len(got) != len(want) {
		t.Fatalf("got %d tokens, want %d: %v", len(got), len(want), toks)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
}

func TestTokenizeKeywordsAndIdents(t *testing.T) {
	toks, errs := Tokenize("t.mp", "func var if else for while return break continue foo _bar x9")
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []TokKind{TokFunc, TokVar, TokIf, TokElse, TokFor, TokWhile,
		TokReturn, TokBreak, TokContinue, TokIdent, TokIdent, TokIdent, TokEOF}
	got := kinds(toks)
	for i := range want {
		if got[i] != want[i] {
			t.Errorf("token %d = %v, want %v", i, got[i], want[i])
		}
	}
	if toks[9].Text != "foo" || toks[10].Text != "_bar" || toks[11].Text != "x9" {
		t.Errorf("identifier texts wrong: %v %v %v", toks[9], toks[10], toks[11])
	}
}

func TestTokenizeNumbers(t *testing.T) {
	cases := map[string]float64{
		"0":       0,
		"42":      42,
		"3.5":     3.5,
		"1e6":     1e6,
		"2.5e-3":  2.5e-3,
		"1E+9":    1e9,
		"0.001":   0.001,
		"1234567": 1234567,
	}
	for src, want := range cases {
		toks, errs := Tokenize("t.mp", src)
		if len(errs) != 0 {
			t.Errorf("%q: errors %v", src, errs)
			continue
		}
		if toks[0].Kind != TokNumber || toks[0].Num != want {
			t.Errorf("%q = %v (%g), want %g", src, toks[0].Kind, toks[0].Num, want)
		}
	}
}

func TestTokenizeStrings(t *testing.T) {
	toks, errs := Tokenize("t.mp", `"hello" "a\nb" "q\"q" "t\\t"`)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	want := []string{"hello", "a\nb", `q"q`, `t\t`}
	for i, w := range want {
		if toks[i].Kind != TokString || toks[i].Text != w {
			t.Errorf("string %d = %q, want %q", i, toks[i].Text, w)
		}
	}
}

func TestTokenizeComments(t *testing.T) {
	src := `
// line comment
x /* block
comment */ y // trailing
/* another */ z`
	toks, errs := Tokenize("t.mp", src)
	if len(errs) != 0 {
		t.Fatalf("errors: %v", errs)
	}
	var names []string
	for _, tok := range toks {
		if tok.Kind == TokIdent {
			names = append(names, tok.Text)
		}
	}
	if strings.Join(names, ",") != "x,y,z" {
		t.Errorf("idents = %v, want x,y,z", names)
	}
}

func TestTokenizePositions(t *testing.T) {
	src := "ab\n  cd"
	toks, _ := Tokenize("pos.mp", src)
	if toks[0].Pos.Line != 1 || toks[0].Pos.Col != 1 {
		t.Errorf("ab at %v, want 1:1", toks[0].Pos)
	}
	if toks[1].Pos.Line != 2 || toks[1].Pos.Col != 3 {
		t.Errorf("cd at %v, want 2:3", toks[1].Pos)
	}
	if toks[0].Pos.File != "pos.mp" {
		t.Errorf("file = %q", toks[0].Pos.File)
	}
}

func TestTokenizeErrors(t *testing.T) {
	cases := []string{
		`"unterminated`,
		`"bad \q escape"`,
		`@`,
		`/* unterminated block`,
		`a | b`,
	}
	for _, src := range cases {
		_, errs := Tokenize("t.mp", src)
		if len(errs) == 0 {
			t.Errorf("%q: expected lexical error", src)
		}
	}
}

func TestTokenKindString(t *testing.T) {
	if TokEOF.String() != "EOF" || TokIdent.String() != "identifier" {
		t.Error("token kind names wrong")
	}
	if TokKind(999).String() == "" {
		t.Error("unknown token kind should render")
	}
}
