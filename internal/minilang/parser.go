package minilang

import (
	"errors"
	"fmt"
	"strings"
)

// Parser builds an AST from tokens.
type Parser struct {
	toks   []Token
	pos    int
	errs   []error
	nextID NodeID
	file   string
	src    string
}

// Parse parses a MiniMP source file into a Program. It returns the program
// together with all lexical, syntactic, and semantic errors found.
func Parse(file, src string) (*Program, error) {
	toks, lexErrs := Tokenize(file, src)
	p := &Parser{toks: toks, file: file, src: src}
	p.errs = append(p.errs, lexErrs...)
	prog := p.parseProgram()
	if len(p.errs) > 0 {
		return prog, joinErrors(p.errs)
	}
	if err := Check(prog); err != nil {
		return prog, err
	}
	return prog, nil
}

// MustParse parses src and panics on error. Intended for embedded app
// sources and tests, where the source is a compile-time constant.
func MustParse(file, src string) *Program {
	prog, err := Parse(file, src)
	if err != nil {
		panic(fmt.Sprintf("minilang.MustParse(%s): %v", file, err))
	}
	return prog
}

func joinErrors(errs []error) error {
	if len(errs) == 1 {
		return errs[0]
	}
	msgs := make([]string, 0, len(errs))
	for _, e := range errs {
		msgs = append(msgs, e.Error())
	}
	const maxShown = 20
	if len(msgs) > maxShown {
		msgs = append(msgs[:maxShown], fmt.Sprintf("... and %d more errors", len(msgs)-maxShown))
	}
	return errors.New(strings.Join(msgs, "\n"))
}

func (p *Parser) id() NodeID {
	p.nextID++
	return p.nextID
}

func (p *Parser) cur() Token { return p.toks[p.pos] }
func (p *Parser) peek() Token {
	if p.pos+1 < len(p.toks) {
		return p.toks[p.pos+1]
	}
	return p.toks[len(p.toks)-1]
}

func (p *Parser) next() Token {
	t := p.toks[p.pos]
	if p.pos < len(p.toks)-1 {
		p.pos++
	}
	return t
}

func (p *Parser) at(k TokKind) bool { return p.cur().Kind == k }

func (p *Parser) accept(k TokKind) (Token, bool) {
	if p.at(k) {
		return p.next(), true
	}
	return Token{}, false
}

func (p *Parser) expect(k TokKind) Token {
	if p.at(k) {
		return p.next()
	}
	p.errorf(p.cur().Pos, "expected %s, found %s", k, p.cur())
	return Token{Kind: k, Pos: p.cur().Pos}
}

func (p *Parser) errorf(pos Pos, format string, args ...any) {
	p.errs = append(p.errs, fmt.Errorf("%s: %s", pos, fmt.Sprintf(format, args...)))
	if len(p.errs) > 200 {
		panic(tooManyErrors{})
	}
}

type tooManyErrors struct{}

func (p *Parser) parseProgram() *Program {
	prog := &Program{File: p.file, Source: p.src, byName: map[string]*FuncDecl{}}
	defer func() {
		prog.nodes = int(p.nextID)
		if r := recover(); r != nil {
			if _, ok := r.(tooManyErrors); !ok {
				panic(r)
			}
		}
	}()
	for !p.at(TokEOF) {
		if !p.at(TokFunc) {
			p.errorf(p.cur().Pos, "expected func declaration, found %s", p.cur())
			p.next()
			continue
		}
		fn := p.parseFunc()
		if prev, ok := prog.byName[fn.Name]; ok {
			p.errorf(fn.Pos(), "function %q redeclared (previous at %s)", fn.Name, prev.Pos())
		}
		prog.Funcs = append(prog.Funcs, fn)
		prog.byName[fn.Name] = fn
	}
	return prog
}

func (p *Parser) parseFunc() *FuncDecl {
	kw := p.expect(TokFunc)
	name := p.expect(TokIdent)
	fn := &FuncDecl{base: base{pos: kw.Pos, id: p.id()}, Name: name.Text}
	p.expect(TokLParen)
	seen := map[string]bool{}
	for !p.at(TokRParen) && !p.at(TokEOF) {
		param := p.expect(TokIdent)
		if seen[param.Text] {
			p.errorf(param.Pos, "duplicate parameter %q", param.Text)
		}
		seen[param.Text] = true
		fn.Params = append(fn.Params, param.Text)
		if _, ok := p.accept(TokComma); !ok {
			break
		}
	}
	p.expect(TokRParen)
	fn.Body = p.parseBlock()
	return fn
}

func (p *Parser) parseBlock() *Block {
	lb := p.expect(TokLBrace)
	blk := &Block{base: base{pos: lb.Pos, id: p.id()}}
	for !p.at(TokRBrace) && !p.at(TokEOF) {
		blk.Stmts = append(blk.Stmts, p.parseStmt())
	}
	p.expect(TokRBrace)
	return blk
}

func (p *Parser) parseStmt() Stmt {
	switch p.cur().Kind {
	case TokVar:
		s := p.parseVarDecl()
		p.expect(TokSemi)
		return s
	case TokIf:
		return p.parseIf()
	case TokFor:
		return p.parseFor()
	case TokWhile:
		return p.parseWhile()
	case TokReturn:
		kw := p.next()
		s := &ReturnStmt{base: base{pos: kw.Pos, id: p.id()}}
		if !p.at(TokSemi) {
			s.Value = p.parseExpr()
		}
		p.expect(TokSemi)
		return s
	case TokBreak:
		kw := p.next()
		p.expect(TokSemi)
		return &BreakStmt{base: base{pos: kw.Pos, id: p.id()}}
	case TokContinue:
		kw := p.next()
		p.expect(TokSemi)
		return &ContinueStmt{base: base{pos: kw.Pos, id: p.id()}}
	case TokLBrace:
		return p.parseBlock()
	default:
		s := p.parseSimpleStmt()
		p.expect(TokSemi)
		return s
	}
}

func (p *Parser) parseVarDecl() *VarDecl {
	kw := p.expect(TokVar)
	name := p.expect(TokIdent)
	d := &VarDecl{base: base{pos: kw.Pos, id: p.id()}, Name: name.Text}
	p.expect(TokAssign)
	d.Init = p.parseExpr()
	return d
}

// parseSimpleStmt parses an assignment or expression statement (the forms
// allowed in for-loop init/post clauses).
func (p *Parser) parseSimpleStmt() Stmt {
	if p.at(TokIdent) {
		switch p.peek().Kind {
		case TokAssign:
			name := p.next()
			p.next() // =
			st := &AssignStmt{base: base{pos: name.Pos, id: p.id()}, Name: name.Text}
			st.Val = p.parseExpr()
			return st
		case TokLBracket:
			// Could be `a[i] = x` or an expression starting with an index.
			save := p.pos
			name := p.next()
			p.next() // [
			idx := p.parseExpr()
			p.expect(TokRBracket)
			if _, ok := p.accept(TokAssign); ok {
				st := &AssignStmt{base: base{pos: name.Pos, id: p.id()}, Name: name.Text, Idx: idx}
				st.Val = p.parseExpr()
				return st
			}
			p.pos = save
		}
	}
	e := p.parseExpr()
	return &ExprStmt{base: base{pos: e.Pos(), id: p.id()}, X: e}
}

func (p *Parser) parseIf() *IfStmt {
	kw := p.expect(TokIf)
	st := &IfStmt{base: base{pos: kw.Pos, id: p.id()}}
	p.expect(TokLParen)
	st.Cond = p.parseExpr()
	p.expect(TokRParen)
	st.Then = p.parseBlock()
	if _, ok := p.accept(TokElse); ok {
		if p.at(TokIf) {
			inner := p.parseIf()
			st.Else = &Block{base: base{pos: inner.Pos(), id: p.id()}, Stmts: []Stmt{inner}}
		} else {
			st.Else = p.parseBlock()
		}
	}
	return st
}

func (p *Parser) parseFor() *ForStmt {
	kw := p.expect(TokFor)
	st := &ForStmt{base: base{pos: kw.Pos, id: p.id()}}
	p.expect(TokLParen)
	if !p.at(TokSemi) {
		if p.at(TokVar) {
			st.Init = p.parseVarDecl()
		} else {
			st.Init = p.parseSimpleStmt()
		}
	}
	p.expect(TokSemi)
	if !p.at(TokSemi) {
		st.Cond = p.parseExpr()
	}
	p.expect(TokSemi)
	if !p.at(TokRParen) {
		st.Post = p.parseSimpleStmt()
	}
	p.expect(TokRParen)
	st.Body = p.parseBlock()
	return st
}

func (p *Parser) parseWhile() *WhileStmt {
	kw := p.expect(TokWhile)
	st := &WhileStmt{base: base{pos: kw.Pos, id: p.id()}}
	p.expect(TokLParen)
	st.Cond = p.parseExpr()
	p.expect(TokRParen)
	st.Body = p.parseBlock()
	return st
}

// Binary operator precedence, loosest first.
var binPrec = map[TokKind]int{
	TokOrOr:    1,
	TokAndAnd:  2,
	TokEq:      3,
	TokNe:      3,
	TokLt:      4,
	TokLe:      4,
	TokGt:      4,
	TokGe:      4,
	TokPlus:    5,
	TokMinus:   5,
	TokStar:    6,
	TokSlash:   6,
	TokPercent: 6,
}

func (p *Parser) parseExpr() Expr { return p.parseBinary(1) }

func (p *Parser) parseBinary(minPrec int) Expr {
	lhs := p.parseUnary()
	for {
		op := p.cur().Kind
		prec, ok := binPrec[op]
		if !ok || prec < minPrec {
			return lhs
		}
		opTok := p.next()
		rhs := p.parseBinary(prec + 1)
		lhs = &BinaryExpr{base: base{pos: opTok.Pos, id: p.id()}, Op: op, L: lhs, R: rhs}
	}
}

func (p *Parser) parseUnary() Expr {
	switch p.cur().Kind {
	case TokMinus, TokNot:
		opTok := p.next()
		x := p.parseUnary()
		return &UnaryExpr{base: base{pos: opTok.Pos, id: p.id()}, Op: opTok.Kind, X: x}
	case TokAmp:
		amp := p.next()
		name := p.expect(TokIdent)
		return &FuncRefExpr{base: base{pos: amp.Pos, id: p.id()}, Name: name.Text}
	}
	return p.parsePrimary()
}

func (p *Parser) parsePrimary() Expr {
	switch p.cur().Kind {
	case TokNumber:
		t := p.next()
		return &NumLit{base: base{pos: t.Pos, id: p.id()}, Value: t.Num}
	case TokString:
		t := p.next()
		return &StrLit{base: base{pos: t.Pos, id: p.id()}, Value: t.Text}
	case TokLParen:
		p.next()
		e := p.parseExpr()
		p.expect(TokRParen)
		return e
	case TokIdent:
		name := p.next()
		switch p.cur().Kind {
		case TokLParen:
			p.next()
			call := &CallExpr{base: base{pos: name.Pos, id: p.id()}, Name: name.Text}
			for !p.at(TokRParen) && !p.at(TokEOF) {
				call.Args = append(call.Args, p.parseExpr())
				if _, ok := p.accept(TokComma); !ok {
					break
				}
			}
			p.expect(TokRParen)
			return call
		case TokLBracket:
			p.next()
			idx := p.parseExpr()
			p.expect(TokRBracket)
			return &IndexExpr{base: base{pos: name.Pos, id: p.id()}, Name: name.Text, Idx: idx}
		}
		return &VarRef{base: base{pos: name.Pos, id: p.id()}, Name: name.Text}
	default:
		t := p.next()
		p.errorf(t.Pos, "expected expression, found %s", t)
		return &NumLit{base: base{pos: t.Pos, id: p.id()}}
	}
}
