package minilang

import (
	"strings"
	"testing"
)

func benchProgram() string {
	var sb strings.Builder
	sb.WriteString("func main() {\n\tvar total = 0;\n")
	for i := 0; i < 60; i++ {
		sb.WriteString("\tfor (var i = 0; i < 10; i = i + 1) { total = total + i * 2 - 1; }\n")
	}
	sb.WriteString("}\n")
	return sb.String()
}

// BenchmarkTokenize measures raw lexer throughput.
func BenchmarkTokenize(b *testing.B) {
	src := benchProgram()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, errs := Tokenize("bench.mp", src); len(errs) != 0 {
			b.Fatal(errs)
		}
	}
}

// BenchmarkParse measures the complete front end (lex + parse + check).
func BenchmarkParse(b *testing.B) {
	src := benchProgram()
	b.SetBytes(int64(len(src)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Parse("bench.mp", src); err != nil {
			b.Fatal(err)
		}
	}
}
