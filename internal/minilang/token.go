// Package minilang implements the front end for MiniMP, a small C-like
// message-passing language. The ScalAna paper analyzes C/Fortran MPI programs
// through LLVM; this repository substitutes MiniMP so that the same static
// analyses (CFG construction, loop detection, inter-procedural inlining,
// graph contraction) run on real program structure with source positions.
//
// The package provides the lexer, parser, AST, and semantic checker.
package minilang

import "fmt"

// TokKind enumerates lexical token kinds.
type TokKind int

// Token kinds.
const (
	TokEOF TokKind = iota
	TokIdent
	TokNumber
	TokString

	// Keywords.
	TokFunc
	TokVar
	TokIf
	TokElse
	TokFor
	TokWhile
	TokReturn
	TokBreak
	TokContinue

	// Punctuation and operators.
	TokLParen   // (
	TokRParen   // )
	TokLBrace   // {
	TokRBrace   // }
	TokLBracket // [
	TokRBracket // ]
	TokComma    // ,
	TokSemi     // ;
	TokAssign   // =
	TokPlus     // +
	TokMinus    // -
	TokStar     // *
	TokSlash    // /
	TokPercent  // %
	TokEq       // ==
	TokNe       // !=
	TokLt       // <
	TokLe       // <=
	TokGt       // >
	TokGe       // >=
	TokAndAnd   // &&
	TokOrOr     // ||
	TokNot      // !
	TokAmp      // & (function reference)
)

var tokNames = map[TokKind]string{
	TokEOF:      "EOF",
	TokIdent:    "identifier",
	TokNumber:   "number",
	TokString:   "string",
	TokFunc:     "func",
	TokVar:      "var",
	TokIf:       "if",
	TokElse:     "else",
	TokFor:      "for",
	TokWhile:    "while",
	TokReturn:   "return",
	TokBreak:    "break",
	TokContinue: "continue",
	TokLParen:   "(",
	TokRParen:   ")",
	TokLBrace:   "{",
	TokRBrace:   "}",
	TokLBracket: "[",
	TokRBracket: "]",
	TokComma:    ",",
	TokSemi:     ";",
	TokAssign:   "=",
	TokPlus:     "+",
	TokMinus:    "-",
	TokStar:     "*",
	TokSlash:    "/",
	TokPercent:  "%",
	TokEq:       "==",
	TokNe:       "!=",
	TokLt:       "<",
	TokLe:       "<=",
	TokGt:       ">",
	TokGe:       ">=",
	TokAndAnd:   "&&",
	TokOrOr:     "||",
	TokNot:      "!",
	TokAmp:      "&",
}

func (k TokKind) String() string {
	if s, ok := tokNames[k]; ok {
		return s
	}
	return fmt.Sprintf("TokKind(%d)", int(k))
}

var keywords = map[string]TokKind{
	"func":     TokFunc,
	"var":      TokVar,
	"if":       TokIf,
	"else":     TokElse,
	"for":      TokFor,
	"while":    TokWhile,
	"return":   TokReturn,
	"break":    TokBreak,
	"continue": TokContinue,
}

// Pos is a source position.
type Pos struct {
	File string
	Line int
	Col  int
}

func (p Pos) String() string {
	return fmt.Sprintf("%s:%d:%d", p.File, p.Line, p.Col)
}

// Token is a lexical token.
type Token struct {
	Kind TokKind
	Text string
	Num  float64
	Pos  Pos
}

func (t Token) String() string {
	switch t.Kind {
	case TokIdent, TokNumber, TokString:
		return fmt.Sprintf("%s(%q)", t.Kind, t.Text)
	default:
		return t.Kind.String()
	}
}
