package psg

import (
	"fmt"
	"sync"

	"scalana/internal/ir"
	"scalana/internal/minilang"
)

// Options control PSG construction.
type Options struct {
	// MaxLoopDepth bounds the nesting depth of loops that contain no MPI
	// invocation; deeper loops are contracted into Comp vertices (paper
	// §III-A, user parameter MaxLoopDepth; the evaluation uses 10).
	MaxLoopDepth int
	// Contract enables graph contraction. Disable only for ablation.
	Contract bool
}

// DefaultOptions mirror the paper's evaluation setup.
func DefaultOptions() Options { return Options{MaxLoopDepth: 10, Contract: true} }

// Normalize canonicalizes user-supplied options: the zero value means
// "paper defaults" (the contract of RunConfig.PSGOptions), and any other
// value with a non-positive MaxLoopDepth gets the default depth. Run and
// Engine.Compile normalize through this method before building or cache
// keying, so Options{Contract: true} and DefaultOptions() are the same
// compilation — and the same cache entry.
func (o Options) Normalize() Options {
	if o == (Options{}) {
		return DefaultOptions()
	}
	if o.MaxLoopDepth <= 0 {
		o.MaxLoopDepth = DefaultOptions().MaxLoopDepth
	}
	return o
}

// Stats summarizes the built graph (paper Table II columns).
type Stats struct {
	VerticesBefore int // #VBC
	VerticesAfter  int // #VAC
	Loops          int
	Branches       int
	Comps          int
	MPIs           int
	Calls          int
}

// Graph is a Program Structure Graph.
type Graph struct {
	// Prog is the program the graph was built from.
	Prog *minilang.Program
	// Root is the synthetic root vertex above main's body.
	Root *Vertex
	// Vertices is the dense preorder vertex list, indexed by Vertex.ID.
	Vertices []*Vertex
	// Main is the instance of the program's main function.
	Main *Instance
	// Opts records the options the graph was built with.
	Opts Options
	// Stats summarizes construction (paper Table II columns).
	Stats Stats

	mu        sync.RWMutex
	byKey     map[string]*Vertex
	instances []*Instance
	parents   map[*Instance]*Instance // for recursion detection at runtime

	// Symbol table (see symtab.go): vids is the dense VID -> vertex
	// binding, vidOf interns stable keys. Both are append-only across
	// re-finalization.
	vids  []*Vertex
	vidOf map[string]VID

	// Executable-form cache (see CompileExec). psg cannot depend on the
	// bytecode VM, so the cached value is opaque here; scalana stores the
	// vm.Program compiled for this graph.
	execOnce sync.Once
	execProg any
	execErr  error
}

// CompileExec memoizes an executable form of the graph's program (the
// bytecode VM's linked Program). The build function runs at most once
// per graph, with single-flight semantics under concurrent callers;
// every run sharing this graph then shares the one compiled artifact,
// mirroring how the Engine shares the graph itself.
func (g *Graph) CompileExec(build func() (any, error)) (any, error) {
	g.execOnce.Do(func() {
		g.execProg, g.execErr = build()
	})
	return g.execProg, g.execErr
}

// Build constructs the PSG of prog: intra-procedural graphs per function,
// inter-procedural inlining from main over the program call graph, then
// contraction (if enabled).
func Build(prog *minilang.Program, opts Options) (*Graph, error) {
	if opts.MaxLoopDepth <= 0 {
		opts.MaxLoopDepth = DefaultOptions().MaxLoopDepth
	}
	// The call graph validates call targets and provides the PCG the paper
	// traverses top-down; inlining below performs that traversal.
	cg := ir.BuildCallGraph(prog, nil)
	if _, err := cg.TopDownOrder(); err != nil {
		return nil, err
	}
	g := &Graph{
		Prog:    prog,
		Opts:    opts,
		byKey:   map[string]*Vertex{},
		parents: map[*Instance]*Instance{},
	}
	g.Root = &Vertex{Kind: KindRoot, Name: "root", Key: "root", Pos: minilang.Pos{File: prog.File, Line: 1, Col: 1}}

	mainFn := prog.Func("main")
	if mainFn == nil {
		return nil, fmt.Errorf("psg: program has no main")
	}
	g.Main = g.newInstance(nil, mainFn, "main")
	b := &builder{g: g}
	b.walkBlock(g.Main, mainFn.Body, g.Root)

	// Pre-materialize every possible indirect-call target so the graph is
	// immutable during execution and can be shared by concurrent runs
	// (see the package comment in resolve.go).
	if err := g.materializeAllIndirect(); err != nil {
		return nil, err
	}

	g.Stats.VerticesBefore = countVertices(g.Root)
	if opts.Contract {
		g.contractSubtree(g.Root, g.Root.LoopDepth())
	}
	g.finalize()
	return g, nil
}

// MustBuild builds the PSG with default options and panics on error.
func MustBuild(prog *minilang.Program) *Graph {
	g, err := Build(prog, DefaultOptions())
	if err != nil {
		panic(fmt.Sprintf("psg.MustBuild: %v", err))
	}
	return g
}

// BuildLocal builds the intra-procedural local graph of a single function
// (paper Fig. 4(a)): direct calls stay as Call vertices and no contraction
// is applied. Its vertices are not meant for profiling attribution — use
// Build for that — but for inspecting the per-function analysis stage.
func BuildLocal(prog *minilang.Program, fnName string) (*Graph, error) {
	fn := prog.Func(fnName)
	if fn == nil {
		return nil, fmt.Errorf("psg: no function %q", fnName)
	}
	g := &Graph{
		Prog:    prog,
		Opts:    Options{MaxLoopDepth: DefaultOptions().MaxLoopDepth, Contract: false},
		byKey:   map[string]*Vertex{},
		parents: map[*Instance]*Instance{},
	}
	g.Root = &Vertex{Kind: KindRoot, Name: fnName, Key: "root", Pos: fn.Pos()}
	g.Main = g.newInstance(nil, fn, fnName)
	b := &builder{g: g, noInline: true}
	b.walkBlock(g.Main, fn.Body, g.Root)
	g.Stats.VerticesBefore = countVertices(g.Root)
	g.finalize()
	return g, nil
}

func (g *Graph) newInstance(parent *Instance, fn *minilang.FuncDecl, path string) *Instance {
	in := &Instance{
		ID:         len(g.instances),
		Fn:         fn,
		Path:       path,
		vertexOf:   map[minilang.NodeID]*Vertex{},
		calls:      map[minilang.NodeID]*Instance{},
		indirect:   map[minilang.NodeID]map[string]*Instance{},
		siteVertex: map[minilang.NodeID]*Vertex{},
	}
	g.instances = append(g.instances, in)
	g.parents[in] = parent
	return in
}

// VertexByKey returns the vertex with the given stable key, or nil.
func (g *Graph) VertexByKey(key string) *Vertex {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return g.byKey[key]
}

// Instances returns all function instances (inlined copies).
func (g *Graph) Instances() []*Instance {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]*Instance, len(g.instances))
	copy(out, g.instances)
	return out
}

// builder performs the intra- plus inter-procedural walk. Inlining happens
// on the fly: entering a direct call to a function not already on the
// inlining stack creates a new Instance and splices the callee's local
// graph in place of the call (paper Fig. 4(b)).
type builder struct {
	g *Graph
	// stack of active (function name -> instance) for recursion detection.
	stack []stackEntry
	// noInline keeps direct calls as Call vertices instead of splicing in
	// the callee (intra-procedural local graphs, paper Fig. 4(a)).
	noInline bool
}

type stackEntry struct {
	name string
	inst *Instance
}

func (b *builder) findOnStack(name string) *Instance {
	for i := len(b.stack) - 1; i >= 0; i-- {
		if b.stack[i].name == name {
			return b.stack[i].inst
		}
	}
	return nil
}

func (b *builder) addChild(parent *Vertex, v *Vertex) *Vertex {
	v.Parent = parent
	parent.Children = append(parent.Children, v)
	return v
}

// compVertex returns a fresh Comp vertex for node n in instance inst.
func (b *builder) compVertex(inst *Instance, n minilang.Node) *Vertex {
	return &Vertex{
		Kind:        KindComp,
		Name:        "comp",
		Pos:         n.Pos(),
		Inst:        inst,
		SiteNode:    n.ID(),
		MergedNodes: []minilang.NodeID{n.ID()},
		Key:         fmt.Sprintf("%s:%d", inst.Path, n.ID()),
	}
}

func (b *builder) walkBlock(inst *Instance, blk *minilang.Block, parent *Vertex) {
	inst.vertexOf[blk.ID()] = parent
	for _, s := range blk.Stmts {
		b.walkStmt(inst, s, parent)
	}
}

func (b *builder) walkStmt(inst *Instance, s minilang.Stmt, parent *Vertex) {
	switch st := s.(type) {
	case *minilang.VarDecl:
		b.walkExpr(inst, st.Init, parent)
		v := b.addChild(parent, b.compVertex(inst, st))
		inst.vertexOf[st.ID()] = v
	case *minilang.AssignStmt:
		if st.Idx != nil {
			b.walkExpr(inst, st.Idx, parent)
		}
		b.walkExpr(inst, st.Val, parent)
		v := b.addChild(parent, b.compVertex(inst, st))
		inst.vertexOf[st.ID()] = v
	case *minilang.ExprStmt:
		b.walkExpr(inst, st.X, parent)
		if _, isCall := st.X.(*minilang.CallExpr); !isCall {
			v := b.addChild(parent, b.compVertex(inst, st))
			inst.vertexOf[st.ID()] = v
		} else {
			// A bare call statement: attribution of the statement itself
			// follows the call's vertex mapping set in walkExpr.
			if inst.vertexOf[st.ID()] == nil {
				inst.vertexOf[st.ID()] = parent
			}
		}
	case *minilang.ReturnStmt:
		if st.Value != nil {
			b.walkExpr(inst, st.Value, parent)
		}
		v := b.addChild(parent, b.compVertex(inst, st))
		inst.vertexOf[st.ID()] = v
	case *minilang.BreakStmt, *minilang.ContinueStmt:
		inst.vertexOf[s.ID()] = parent
	case *minilang.Block:
		b.walkBlock(inst, st, parent)
	case *minilang.IfStmt:
		b.walkExpr(inst, st.Cond, parent)
		v := b.addChild(parent, &Vertex{
			Kind:     KindBranch,
			Name:     "branch",
			Pos:      st.Pos(),
			Inst:     inst,
			SiteNode: st.ID(),
			Key:      fmt.Sprintf("%s:%d", inst.Path, st.ID()),
		})
		inst.vertexOf[st.ID()] = v
		b.walkBlock(inst, st.Then, v)
		v.ElseStart = len(v.Children)
		if st.Else != nil {
			b.walkBlock(inst, st.Else, v)
		}
	case *minilang.ForStmt:
		if st.Init != nil {
			b.walkStmt(inst, st.Init, parent)
		}
		v := b.addChild(parent, &Vertex{
			Kind:     KindLoop,
			Name:     "loop",
			Pos:      st.Pos(),
			Inst:     inst,
			SiteNode: st.ID(),
			Key:      fmt.Sprintf("%s:%d", inst.Path, st.ID()),
		})
		inst.vertexOf[st.ID()] = v
		if st.Cond != nil {
			b.walkExpr(inst, st.Cond, v)
		}
		b.walkBlock(inst, st.Body, v)
		if st.Post != nil {
			// The post statement is loop bookkeeping: attribute it to the
			// loop vertex itself rather than a separate Comp.
			b.mapStmtTo(inst, st.Post, v)
			b.walkExprsOf(inst, st.Post, v)
		}
		v.ElseStart = len(v.Children)
	case *minilang.WhileStmt:
		v := b.addChild(parent, &Vertex{
			Kind:     KindLoop,
			Name:     "loop",
			Pos:      st.Pos(),
			Inst:     inst,
			SiteNode: st.ID(),
			Key:      fmt.Sprintf("%s:%d", inst.Path, st.ID()),
		})
		inst.vertexOf[st.ID()] = v
		b.walkExpr(inst, st.Cond, v)
		b.walkBlock(inst, st.Body, v)
		v.ElseStart = len(v.Children)
	default:
		panic(fmt.Sprintf("psg: unknown statement %T", s))
	}
}

// mapStmtTo attributes a simple statement node (and nothing nested) to v.
func (b *builder) mapStmtTo(inst *Instance, s minilang.Stmt, v *Vertex) {
	inst.vertexOf[s.ID()] = v
}

// walkExprsOf walks call-like subexpressions of a simple statement.
func (b *builder) walkExprsOf(inst *Instance, s minilang.Stmt, parent *Vertex) {
	switch st := s.(type) {
	case *minilang.VarDecl:
		b.walkExpr(inst, st.Init, parent)
	case *minilang.AssignStmt:
		if st.Idx != nil {
			b.walkExpr(inst, st.Idx, parent)
		}
		b.walkExpr(inst, st.Val, parent)
	case *minilang.ExprStmt:
		b.walkExpr(inst, st.X, parent)
	}
}

// walkExpr emits vertices for call-like subexpressions in evaluation order.
func (b *builder) walkExpr(inst *Instance, e minilang.Expr, parent *Vertex) {
	switch ex := e.(type) {
	case *minilang.NumLit, *minilang.StrLit, *minilang.VarRef, *minilang.FuncRefExpr:
	case *minilang.IndexExpr:
		b.walkExpr(inst, ex.Idx, parent)
	case *minilang.UnaryExpr:
		b.walkExpr(inst, ex.X, parent)
	case *minilang.BinaryExpr:
		b.walkExpr(inst, ex.L, parent)
		b.walkExpr(inst, ex.R, parent)
	case *minilang.CallExpr:
		for _, a := range ex.Args {
			b.walkExpr(inst, a, parent)
		}
		b.walkCall(inst, ex, parent)
	}
}

func (b *builder) walkCall(inst *Instance, call *minilang.CallExpr, parent *Vertex) {
	switch {
	case call.Indirect:
		v := b.addChild(parent, &Vertex{
			Kind:         KindCall,
			Name:         "indirect:" + call.Name,
			Pos:          call.Pos(),
			Inst:         inst,
			SiteNode:     call.ID(),
			Key:          fmt.Sprintf("%s:%d", inst.Path, call.ID()),
			IndirectSite: true,
		})
		inst.vertexOf[call.ID()] = v
		inst.siteVertex[call.ID()] = v

	case call.Builtin == nil: // direct user call
		if b.noInline {
			v := b.addChild(parent, &Vertex{
				Kind:     KindCall,
				Name:     "call:" + call.Name,
				Pos:      call.Pos(),
				Inst:     inst,
				SiteNode: call.ID(),
				Key:      fmt.Sprintf("%s:%d", inst.Path, call.ID()),
			})
			inst.vertexOf[call.ID()] = v
			return
		}
		callee := b.g.Prog.Func(call.Name)
		if rec := b.findOnStack(call.Name); rec != nil {
			// Recursion: the PSG forms a cycle back to the active instance
			// (paper §III-A, "a circle is formed in the PSG").
			v := b.addChild(parent, &Vertex{
				Kind:        KindCall,
				Name:        "recurse:" + call.Name,
				Pos:         call.Pos(),
				Inst:        inst,
				SiteNode:    call.ID(),
				Key:         fmt.Sprintf("%s:%d", inst.Path, call.ID()),
				RecursiveTo: rec,
			})
			inst.vertexOf[call.ID()] = v
			inst.calls[call.ID()] = rec
			return
		}
		child := b.g.newInstance(inst, callee, fmt.Sprintf("%s/%d@%s", inst.Path, call.ID(), call.Name))
		inst.calls[call.ID()] = child
		inst.vertexOf[call.ID()] = parent
		b.stack = append(b.stack, stackEntry{name: call.Name, inst: child})
		b.walkBlock(child, callee.Body, parent)
		b.stack = b.stack[:len(b.stack)-1]

	case call.Builtin.Kind == minilang.BuiltinComm:
		v := b.addChild(parent, &Vertex{
			Kind:       KindMPI,
			Name:       call.Name,
			Pos:        call.Pos(),
			Inst:       inst,
			SiteNode:   call.ID(),
			Key:        fmt.Sprintf("%s:%d", inst.Path, call.ID()),
			Builtin:    call.Builtin,
			Collective: call.Builtin.Collective,
		})
		inst.vertexOf[call.ID()] = v

	case call.Builtin.Kind == minilang.BuiltinCompute:
		v := b.addChild(parent, b.compVertex(inst, call))
		v.Name = "compute"
		inst.vertexOf[call.ID()] = v

	default:
		// Math/query/alloc/IO builtins fold into the surrounding statement.
	}
}

func countVertices(root *Vertex) int {
	n := 0
	var walk func(v *Vertex)
	walk = func(v *Vertex) {
		n++
		for _, c := range v.Children {
			walk(c)
		}
	}
	walk(root)
	return n
}

// finalize assigns dense IDs in preorder, indexes keys, and recomputes
// after-contraction statistics.
func (g *Graph) finalize() {
	g.mu.Lock()
	defer g.mu.Unlock()
	g.finalizeLocked()
}

func (g *Graph) finalizeLocked() {
	g.Vertices = g.Vertices[:0]
	g.byKey = map[string]*Vertex{}
	st := Stats{VerticesBefore: g.Stats.VerticesBefore}
	var walk func(v *Vertex)
	walk = func(v *Vertex) {
		v.ID = len(g.Vertices)
		g.Vertices = append(g.Vertices, v)
		if prev, dup := g.byKey[v.Key]; dup {
			panic(fmt.Sprintf("psg: duplicate vertex key %q (%s vs %s)", v.Key, prev, v))
		}
		g.byKey[v.Key] = v
		switch v.Kind {
		case KindLoop:
			st.Loops++
		case KindBranch:
			st.Branches++
		case KindComp:
			st.Comps++
		case KindMPI:
			st.MPIs++
		case KindCall:
			st.Calls++
		}
		for _, c := range v.Children {
			walk(c)
		}
	}
	walk(g.Root)
	st.VerticesAfter = len(g.Vertices)
	g.Stats = st
	g.assignVIDs()
}
