package psg

import (
	"strings"
	"sync"
	"testing"
	"testing/quick"

	"scalana/internal/minilang"
)

const fig3 = `
func foo() {
	if (mpi_rank() % 2 == 0) {
		mpi_send(mpi_rank() + 1, 0, 64);
	} else {
		mpi_recv(mpi_rank() - 1, 0, 64);
	}
}
func main() {
	var N = 16;
	var sum = 0;
	var product = 1;
	var A = alloc(N);
	for (var i = 0; i < N; i = i + 1) {
		A[i] = rand();
		for (var j = 0; j < i; j = j + 1) {
			sum = sum + A[j];
		}
		for (var k = 0; k < i; k = k + 1) {
			product = product * A[k];
		}
	}
	foo();
	mpi_bcast(0, 64);
}
`

func build(t *testing.T, src string, opts Options) *Graph {
	t.Helper()
	prog, err := minilang.Parse("t.mp", src)
	if err != nil {
		t.Fatalf("parse: %v", err)
	}
	g, err := Build(prog, opts)
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("invariants: %v", err)
	}
	return g
}

func kindsOf(vs []*Vertex) []Kind {
	out := make([]Kind, len(vs))
	for i, v := range vs {
		out[i] = v.Kind
	}
	return out
}

// TestFig4Contraction reproduces the paper's Fig. 4(c): with
// MaxLoopDepth=1, the contracted PSG is
// Root -> [Comp, Loop1[Comp], Branch[Send|Recv], Bcast].
func TestFig4Contraction(t *testing.T) {
	g := build(t, fig3, Options{MaxLoopDepth: 1, Contract: true})
	got := kindsOf(g.Root.Children)
	want := []Kind{KindComp, KindLoop, KindBranch, KindMPI}
	if len(got) != len(want) {
		t.Fatalf("root children kinds = %v, want %v\n%s", got, want, g.Render())
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("root child %d = %v, want %v\n%s", i, got[i], want[i], g.Render())
		}
	}
	loop := g.Root.Children[1]
	if len(loop.Children) != 1 || loop.Children[0].Kind != KindComp {
		t.Errorf("Loop1 children = %v; Loop1.1/1.2 should merge into one Comp", kindsOf(loop.Children))
	}
	branch := g.Root.Children[2]
	if len(branch.Children) != 2 || branch.ElseStart != 1 {
		t.Errorf("Branch children = %v ElseStart=%d", kindsOf(branch.Children), branch.ElseStart)
	}
	if branch.Children[0].Name != "mpi_send" || branch.Children[1].Name != "mpi_recv" {
		t.Errorf("branch arms = %s, %s", branch.Children[0].Name, branch.Children[1].Name)
	}
	if g.Root.Children[3].Name != "mpi_bcast" {
		t.Errorf("tail vertex = %s", g.Root.Children[3].Name)
	}
}

// TestFig4NoContraction checks the full inter-procedural graph keeps the
// nested loops.
func TestFig4NoContraction(t *testing.T) {
	g := build(t, fig3, Options{MaxLoopDepth: 10, Contract: false})
	loops := 0
	for _, v := range g.Vertices {
		if v.Kind == KindLoop {
			loops++
		}
	}
	if loops != 3 {
		t.Errorf("uncontracted graph has %d loops, want 3", loops)
	}
	if g.Stats.VerticesBefore != g.Stats.VerticesAfter {
		t.Errorf("no-contract build changed vertex count: %d -> %d",
			g.Stats.VerticesBefore, g.Stats.VerticesAfter)
	}
}

// TestMaxLoopDepthKeepsLoopsWithin checks loops within the depth bound
// survive even without MPI.
func TestMaxLoopDepthKeepsLoopsWithin(t *testing.T) {
	g := build(t, fig3, Options{MaxLoopDepth: 2, Contract: true})
	loops := 0
	for _, v := range g.Vertices {
		if v.Kind == KindLoop {
			loops++
		}
	}
	if loops != 3 {
		t.Errorf("MaxLoopDepth=2 kept %d loops, want 3\n%s", loops, g.Render())
	}
}

// TestBranchWithMPIPreserved: control structures enclosing MPI never
// contract.
func TestBranchWithMPIPreserved(t *testing.T) {
	g := build(t, `
func main() {
	for (var i = 0; i < 4; i = i + 1) {
		for (var j = 0; j < 4; j = j + 1) {
			if (mpi_rank() == 0) {
				mpi_barrier();
			}
		}
	}
}`, Options{MaxLoopDepth: 1, Contract: true})
	// Even with MaxLoopDepth=1, both loops and the branch survive because
	// the barrier is beneath them.
	var loops, branches, mpis int
	for _, v := range g.Vertices {
		switch v.Kind {
		case KindLoop:
			loops++
		case KindBranch:
			branches++
		case KindMPI:
			mpis++
		}
	}
	if loops != 2 || branches != 1 || mpis != 1 {
		t.Errorf("loops=%d branches=%d mpis=%d, want 2/1/1\n%s", loops, branches, mpis, g.Render())
	}
}

// TestBranchHoistingKeepsLoops: a non-MPI branch disappears but loops
// inside it survive (the Zeus-MP bval3d pattern).
func TestBranchHoistingKeepsLoops(t *testing.T) {
	g := build(t, `
func main() {
	if (mpi_rank() % 4 == 0) {
		for (var j = 0; j < 8; j = j + 1) {
			compute(1e3, 10, 10, 64);
		}
	}
	mpi_barrier();
}`, DefaultOptions())
	var branches, loops int
	for _, v := range g.Vertices {
		switch v.Kind {
		case KindBranch:
			branches++
		case KindLoop:
			loops++
		}
	}
	if branches != 0 {
		t.Errorf("non-MPI branch should be contracted, got %d\n%s", branches, g.Render())
	}
	if loops != 1 {
		t.Errorf("loop inside contracted branch must survive, got %d\n%s", loops, g.Render())
	}
}

func TestConsecutiveCompsMerge(t *testing.T) {
	g := build(t, `
func main() {
	var a = 1;
	var b = 2;
	var c = a + b;
	mpi_barrier();
	var d = c * 2;
	var e = d + 1;
}`, DefaultOptions())
	got := kindsOf(g.Root.Children)
	want := []Kind{KindComp, KindMPI, KindComp}
	if len(got) != len(want) {
		t.Fatalf("children = %v, want %v", got, want)
	}
	first := g.Root.Children[0]
	if len(first.MergedNodes) != 3 {
		t.Errorf("first Comp merged %d statements, want 3", len(first.MergedNodes))
	}
}

func TestRecursionFormsCycle(t *testing.T) {
	g := build(t, `
func fib(n) {
	if (n < 2) { return n; }
	return fib(n - 1) + fib(n - 2);
}
func main() {
	var x = fib(10);
	mpi_barrier();
}`, DefaultOptions())
	var rec []*Vertex
	for _, v := range g.Vertices {
		if v.Kind == KindCall && v.RecursiveTo != nil {
			rec = append(rec, v)
		}
	}
	if len(rec) != 2 {
		t.Fatalf("found %d recursive call vertices, want 2 (fib calls itself twice)\n%s", len(rec), g.Render())
	}
	for _, v := range rec {
		if v.RecursiveTo.Fn.Name != "fib" {
			t.Errorf("recursive target = %s", v.RecursiveTo.Fn.Name)
		}
	}
}

func TestMultipleCallSitesGetSeparateInstances(t *testing.T) {
	prog := minilang.MustParse("t.mp", `
func work(n) {
	for (var i = 0; i < n; i = i + 1) { compute(10, 1, 1, 64); }
}
func main() {
	work(5);
	mpi_barrier();
	work(10);
}`)
	g := MustBuild(prog)
	var loops []*Vertex
	for _, v := range g.Vertices {
		if v.Kind == KindLoop {
			loops = append(loops, v)
		}
	}
	if len(loops) != 2 {
		t.Fatalf("%d loop vertices, want 2 (one per call site)", len(loops))
	}
	if loops[0].Key == loops[1].Key {
		t.Error("two inlined instances share a vertex key")
	}
	if loops[0].Inst == loops[1].Inst {
		t.Error("two call sites share an instance")
	}
}

func TestKeysStableAcrossBuilds(t *testing.T) {
	prog := minilang.MustParse("t.mp", fig3)
	g1 := MustBuild(prog)
	g2 := MustBuild(prog)
	if len(g1.Vertices) != len(g2.Vertices) {
		t.Fatalf("vertex counts differ: %d vs %d", len(g1.Vertices), len(g2.Vertices))
	}
	for i := range g1.Vertices {
		if g1.Vertices[i].Key != g2.Vertices[i].Key {
			t.Errorf("vertex %d key differs: %q vs %q", i, g1.Vertices[i].Key, g2.Vertices[i].Key)
		}
	}
}

func TestVertexNavigation(t *testing.T) {
	g := build(t, fig3, Options{MaxLoopDepth: 1, Contract: true})
	loop := g.Root.Children[1]
	if loop.PrevSibling() != g.Root.Children[0] {
		t.Error("PrevSibling wrong")
	}
	if g.Root.Children[0].PrevSibling() != nil {
		t.Error("first child PrevSibling should be nil")
	}
	if loop.LastChild() == nil || loop.LastChild().Kind != KindComp {
		t.Error("LastChild wrong")
	}
	if loop.LoopDepth() != 1 {
		t.Errorf("LoopDepth = %d", loop.LoopDepth())
	}
	path := loop.Children[0].Path()
	if len(path) != 3 || path[0] != g.Root || path[2] != loop.Children[0] {
		t.Errorf("Path = %v", path)
	}
	if !g.Root.IsRoot() || loop.IsRoot() {
		t.Error("IsRoot wrong")
	}
}

func TestVertexByKeyAndIDs(t *testing.T) {
	g := build(t, fig3, DefaultOptions())
	for _, v := range g.Vertices {
		if got := g.VertexByKey(v.Key); got != v {
			t.Errorf("VertexByKey(%q) = %v, want %v", v.Key, got, v)
		}
	}
	if g.VertexByKey("nope") != nil {
		t.Error("unknown key should return nil")
	}
}

func TestBuildLocal(t *testing.T) {
	prog := minilang.MustParse("t.mp", fig3)
	local, err := BuildLocal(prog, "main")
	if err != nil {
		t.Fatal(err)
	}
	var calls, mpis int
	for _, v := range local.Vertices {
		switch v.Kind {
		case KindCall:
			calls++
			if !strings.HasPrefix(v.Name, "call:") {
				t.Errorf("local call vertex name = %q", v.Name)
			}
		case KindMPI:
			mpis++
		}
	}
	if calls != 1 {
		t.Errorf("local graph of main has %d Call vertices, want 1 (foo not inlined)", calls)
	}
	if mpis != 1 {
		t.Errorf("local graph of main has %d MPI vertices, want 1 (bcast)", mpis)
	}
	if _, err := BuildLocal(prog, "nosuch"); err == nil {
		t.Error("BuildLocal of unknown function should error")
	}
}

func TestResolveIndirect(t *testing.T) {
	prog := minilang.MustParse("t.mp", `
func double(x) { return x * 2; }
func triple(x) {
	for (var i = 0; i < 3; i = i + 1) { compute(10, 1, 1, 64); }
	return x * 3;
}
func main() {
	var f = &double;
	var y = f(2);
	mpi_barrier();
}`)
	g := MustBuild(prog)
	inst := g.Main
	var site minilang.NodeID
	for _, v := range g.Vertices {
		if v.IndirectSite {
			site = v.SiteNode
		}
	}
	if site == 0 {
		t.Fatal("no indirect site found")
	}
	before := len(g.Vertices)
	child, err := g.ResolveIndirect(inst, site, "triple")
	if err != nil {
		t.Fatal(err)
	}
	if child == nil || child.Fn.Name != "triple" {
		t.Fatalf("resolved instance wrong: %+v", child)
	}
	if len(g.Vertices) <= before {
		t.Error("materialization should add vertices")
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatalf("invariants after refinement: %v", err)
	}
	// Idempotent.
	again, err := g.ResolveIndirect(inst, site, "triple")
	if err != nil {
		t.Fatal(err)
	}
	if again != child {
		t.Error("second resolution returned a different instance")
	}
	// The loop inside triple must be materialized under the call vertex.
	foundLoop := false
	for _, v := range g.Vertices {
		if v.Kind == KindLoop && strings.Contains(v.Key, "@triple") {
			foundLoop = true
		}
	}
	if !foundLoop {
		t.Error("triple's loop not materialized")
	}
	// Errors.
	if _, err := g.ResolveIndirect(inst, site, "nosuch"); err == nil {
		t.Error("unknown target should error")
	}
	if _, err := g.ResolveIndirect(inst, minilang.NodeID(99999), "double"); err == nil {
		t.Error("bad site should error")
	}
}

func TestResolveIndirectConcurrent(t *testing.T) {
	prog := minilang.MustParse("t.mp", `
func a(x) { return x + 1; }
func b(x) { return x + 2; }
func main() {
	var f = &a;
	var y = f(1);
	mpi_barrier();
}`)
	g := MustBuild(prog)
	var site minilang.NodeID
	for _, v := range g.Vertices {
		if v.IndirectSite {
			site = v.SiteNode
		}
	}
	var wg sync.WaitGroup
	results := make([]*Instance, 32)
	for i := 0; i < 32; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			target := "a"
			if i%2 == 1 {
				target = "b"
			}
			inst, err := g.ResolveIndirect(g.Main, site, target)
			if err != nil {
				t.Error(err)
				return
			}
			results[i] = inst
		}(i)
	}
	wg.Wait()
	for i := 2; i < 32; i++ {
		if results[i] != results[i%2] {
			t.Fatalf("concurrent resolution returned different instances for the same target")
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}

func TestStatsMatchRenderedGraph(t *testing.T) {
	g := build(t, fig3, DefaultOptions())
	st := g.Stats
	if st.VerticesAfter != len(g.Vertices) {
		t.Errorf("VerticesAfter=%d but %d vertices", st.VerticesAfter, len(g.Vertices))
	}
	if st.VerticesBefore < st.VerticesAfter {
		t.Errorf("before=%d < after=%d", st.VerticesBefore, st.VerticesAfter)
	}
	total := st.Loops + st.Branches + st.Comps + st.MPIs + st.Calls + 1 // +1 root
	if total != st.VerticesAfter {
		t.Errorf("kind counts sum to %d, want %d", total, st.VerticesAfter)
	}
}

func TestDTOAndJSON(t *testing.T) {
	g := build(t, fig3, DefaultOptions())
	dto := g.ToDTO()
	if len(dto.Vertices) != len(g.Vertices) {
		t.Fatalf("DTO has %d vertices", len(dto.Vertices))
	}
	if dto.Vertices[0].Parent != -1 {
		t.Errorf("root parent = %d", dto.Vertices[0].Parent)
	}
	data, err := g.MarshalJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(data), "mpi_bcast") {
		t.Error("JSON missing mpi_bcast vertex")
	}
	if g.SizeBytes() != 32*len(g.Vertices) {
		t.Errorf("SizeBytes = %d", g.SizeBytes())
	}
}

// Property: for any MaxLoopDepth, invariants hold, all MPI vertices
// survive contraction, and contraction never increases vertex count.
func TestContractionProperty(t *testing.T) {
	prog := minilang.MustParse("t.mp", fig3)
	full, err := Build(prog, Options{MaxLoopDepth: 10, Contract: false})
	if err != nil {
		t.Fatal(err)
	}
	mpiCount := full.Stats.MPIs
	f := func(depthRaw uint8) bool {
		depth := int(depthRaw%12) + 1
		g, err := Build(prog, Options{MaxLoopDepth: depth, Contract: true})
		if err != nil {
			return false
		}
		if g.CheckInvariants() != nil {
			return false
		}
		if g.Stats.MPIs != mpiCount {
			return false
		}
		return g.Stats.VerticesAfter <= g.Stats.VerticesBefore
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

// Property: every AST loop statement maps to a vertex, and the mapping
// respects contraction (the vertex is a Loop when kept, a Comp when
// flattened).
func TestAttributionTotality(t *testing.T) {
	prog := minilang.MustParse("t.mp", fig3)
	g := MustBuild(prog)
	for _, inst := range g.Instances() {
		var walk func(s minilang.Stmt)
		walk = func(s minilang.Stmt) {
			if inst.VertexOf(s.ID()) == nil {
				t.Errorf("instance %s: statement %T at %s has no vertex", inst.Path, s, s.Pos())
			}
			switch st := s.(type) {
			case *minilang.IfStmt:
				walk(st.Then)
				if st.Else != nil {
					walk(st.Else)
				}
			case *minilang.ForStmt:
				walk(st.Body)
			case *minilang.WhileStmt:
				walk(st.Body)
			case *minilang.Block:
				for _, inner := range st.Stmts {
					walk(inner)
				}
			}
		}
		walk(inst.Fn.Body)
	}
}

// TestBuildPrematerializesIndirectTargets: address-taken functions are
// inlined under every indirect site at compile time, so resolving them
// at run time is a pure lookup that never grows the graph. This is what
// makes a compiled graph shareable by concurrent runs.
func TestBuildPrematerializesIndirectTargets(t *testing.T) {
	prog := minilang.MustParse("t.mp", `
func taken(x) {
	var a = x + 1;
	var b = a * 2;
	return b;
}
func main() {
	var f = &taken;
	var y = f(2);
	mpi_barrier();
}`)
	g := MustBuild(prog)
	found := false
	var site minilang.NodeID
	for _, v := range g.Vertices {
		if v.IndirectSite {
			site = v.SiteNode
		}
		if strings.Contains(v.Key, "@taken") {
			found = true
		}
	}
	if !found {
		t.Fatal("address-taken target not pre-materialized at build time")
	}
	if g.Main.IndirectTargets(site)["taken"] == nil {
		t.Fatal("pre-materialized instance not registered for the site")
	}
	before := len(g.Vertices)
	child, err := g.ResolveIndirect(g.Main, site, "taken")
	if err != nil {
		t.Fatal(err)
	}
	if child == nil || child.Fn.Name != "taken" {
		t.Fatalf("resolved instance wrong: %+v", child)
	}
	if len(g.Vertices) != before {
		t.Errorf("runtime resolution of a pre-materialized target grew the graph: %d -> %d vertices",
			before, len(g.Vertices))
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
