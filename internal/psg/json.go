package psg

import (
	"encoding/json"
	"fmt"
)

// VertexDTO is the serialized form of one vertex, emitted by
// scalana-static and consumed by scalana-detect.
type VertexDTO struct {
	ID         int    `json:"id"`
	Key        string `json:"key"`
	Kind       string `json:"kind"`
	Name       string `json:"name"`
	File       string `json:"file"`
	Line       int    `json:"line"`
	Parent     int    `json:"parent"` // -1 for root
	ElseStart  int    `json:"elseStart,omitempty"`
	Collective bool   `json:"collective,omitempty"`
	Stmts      int    `json:"stmts,omitempty"`
}

// GraphDTO is the serialized PSG.
type GraphDTO struct {
	File     string      `json:"file"`
	Stats    Stats       `json:"stats"`
	Vertices []VertexDTO `json:"vertices"`
}

// ToDTO converts the graph to its serializable form.
func (g *Graph) ToDTO() GraphDTO {
	g.mu.RLock()
	defer g.mu.RUnlock()
	dto := GraphDTO{File: g.Prog.File, Stats: g.Stats}
	for _, v := range g.Vertices {
		parent := -1
		if v.Parent != nil {
			parent = v.Parent.ID
		}
		dto.Vertices = append(dto.Vertices, VertexDTO{
			ID:         v.ID,
			Key:        v.Key,
			Kind:       v.Kind.String(),
			Name:       v.Name,
			File:       v.Pos.File,
			Line:       v.Pos.Line,
			Parent:     parent,
			ElseStart:  v.ElseStart,
			Collective: v.Collective,
			Stmts:      len(v.MergedNodes),
		})
	}
	return dto
}

// MarshalJSON serializes the PSG.
func (g *Graph) MarshalJSON() ([]byte, error) {
	return json.Marshal(g.ToDTO())
}

// SizeBytes estimates the in-memory footprint of the serialized graph,
// used for the static-overhead experiment (paper Table III's memory note:
// "each vertex of the PSG occupies 32B of memory").
func (g *Graph) SizeBytes() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	const perVertex = 32
	return len(g.Vertices) * perVertex
}

// CheckInvariants validates structural invariants of the graph; tests and
// property checks call it after construction and refinement. It returns an
// error describing the first violation found.
func (g *Graph) CheckInvariants() error {
	g.mu.RLock()
	defer g.mu.RUnlock()
	seen := map[*Vertex]bool{}
	var walk func(v *Vertex) error
	walk = func(v *Vertex) error {
		if seen[v] {
			return fmt.Errorf("vertex %s appears twice in tree", v)
		}
		seen[v] = true
		if v.ElseStart < 0 || v.ElseStart > len(v.Children) {
			return fmt.Errorf("vertex %s has ElseStart %d out of range [0,%d]", v, v.ElseStart, len(v.Children))
		}
		if v.Kind == KindMPI && len(v.Children) != 0 {
			return fmt.Errorf("MPI vertex %s has children", v)
		}
		if v.Kind == KindComp && len(v.Children) != 0 {
			return fmt.Errorf("Comp vertex %s has children", v)
		}
		for i, c := range v.Children {
			if c.Parent != v {
				return fmt.Errorf("child %d of %s has wrong parent", i, v)
			}
			if err := walk(c); err != nil {
				return err
			}
		}
		// Consecutive Comp siblings must have been merged (when the graph
		// is contracted), except across a Branch's then/else boundary.
		if g.Opts.Contract {
			for i := 1; i < len(v.Children); i++ {
				if i == v.ElseStart {
					continue
				}
				if v.Children[i].Kind == KindComp && v.Children[i-1].Kind == KindComp {
					return fmt.Errorf("unmerged consecutive Comp children under %s", v)
				}
			}
		}
		return nil
	}
	if err := walk(g.Root); err != nil {
		return err
	}
	for i, v := range g.Vertices {
		if v.ID != i {
			return fmt.Errorf("vertex %s has ID %d at index %d", v, v.ID, i)
		}
		if g.byKey[v.Key] != v {
			return fmt.Errorf("vertex %s not indexed by key", v)
		}
		if int(v.VID) >= len(g.vids) || g.vids[v.VID] != v {
			return fmt.Errorf("vertex %s not bound in symbol table (VID %d)", v, v.VID)
		}
		if g.vidOf[v.Key] != v.VID {
			return fmt.Errorf("vertex %s key interned as VID %d, vertex carries %d", v, g.vidOf[v.Key], v.VID)
		}
	}
	if g.Root.VID != VIDRoot {
		return fmt.Errorf("root vertex has VID %d, want %d", g.Root.VID, VIDRoot)
	}
	return nil
}
