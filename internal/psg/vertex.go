// Package psg builds ScalAna's Program Structure Graph (paper §III-A).
//
// A PSG is a per-process sketch of the parallel program: vertices are the
// main computation and communication components plus control structures
// (Loop, Branch, Comp, MPI); edges are execution order within a process.
// It is built in three phases, exactly as the paper describes:
//
//  1. intra-procedural analysis: a local graph per function derived from
//     its control-flow structure;
//  2. inter-procedural analysis: a top-down traversal of the program call
//     graph from main, replacing user-defined calls by the callee's local
//     graph (recursion forms a cycle; indirect calls are left as Call
//     vertices and refined with runtime information);
//  3. graph contraction: MPI invocations and their enclosing control
//     structures are always preserved; branches without MPI collapse into
//     Comp vertices; loops without MPI nested deeper than MaxLoopDepth are
//     flattened; consecutive Comp vertices merge.
package psg

import (
	"fmt"

	"scalana/internal/minilang"
)

// Kind is the vertex kind.
type Kind int

// Vertex kinds (paper: Branch, Loop, Function call, Comp, MPI, plus Root).
const (
	KindRoot Kind = iota
	KindLoop
	KindBranch
	KindComp
	KindMPI
	KindCall // unresolved indirect call site or recursive back-reference
)

func (k Kind) String() string {
	switch k {
	case KindRoot:
		return "Root"
	case KindLoop:
		return "Loop"
	case KindBranch:
		return "Branch"
	case KindComp:
		return "Comp"
	case KindMPI:
		return "MPI"
	case KindCall:
		return "Call"
	}
	return fmt.Sprintf("Kind(%d)", int(k))
}

// Vertex is one PSG vertex. Children are in execution order; the implicit
// edge from child i to child i+1 is the data/control-flow execution-order
// edge the paper draws, and the edge from a Loop/Branch parent into its
// children is the control-dependence edge used by backtracking.
type Vertex struct {
	ID   int    // dense index in Graph.Vertices, assigned after contraction
	VID  VID    // interned symbol-table ID, stable across re-finalization
	Key  string // stable identifier across runs and scales
	Kind Kind
	Name string // display name: builtin name, "loop", "branch", ...
	Pos  minilang.Pos

	Parent   *Vertex
	Children []*Vertex
	// ElseStart is the index in Children where the else-arm begins for a
	// Branch vertex (== len(Children) when there is no else arm).
	ElseStart int

	// Builtin is set for MPI vertices.
	Builtin *minilang.Builtin
	// Collective mirrors Builtin.Collective for quick checks.
	Collective bool

	// Inst is the function instance this vertex belongs to.
	Inst *Instance
	// SiteNode is the AST node that created this vertex (first merged node
	// for contracted Comp vertices).
	SiteNode minilang.NodeID
	// MergedNodes lists all AST statement nodes attributed to this vertex
	// after contraction (only maintained for Comp vertices).
	MergedNodes []minilang.NodeID

	// RecursiveTo is set on KindCall vertices that close a recursion cycle:
	// it names the ancestor instance executing the callee.
	RecursiveTo *Instance
	// IndirectSite marks KindCall vertices for indirect calls pending
	// runtime refinement.
	IndirectSite bool
}

// IsRoot reports whether v is the root vertex.
func (v *Vertex) IsRoot() bool { return v.Kind == KindRoot }

// IndexInParent returns v's position among its parent's children, or -1.
func (v *Vertex) IndexInParent() int {
	if v.Parent == nil {
		return -1
	}
	for i, c := range v.Parent.Children {
		if c == v {
			return i
		}
	}
	return -1
}

// PrevSibling returns the previous child of v's parent, or nil.
func (v *Vertex) PrevSibling() *Vertex {
	i := v.IndexInParent()
	if i <= 0 {
		return nil
	}
	return v.Parent.Children[i-1]
}

// LastChild returns the final child of v, or nil.
func (v *Vertex) LastChild() *Vertex {
	if len(v.Children) == 0 {
		return nil
	}
	return v.Children[len(v.Children)-1]
}

// LoopDepth counts enclosing Loop vertices including v itself when v is a
// loop.
func (v *Vertex) LoopDepth() int {
	d := 0
	for x := v; x != nil; x = x.Parent {
		if x.Kind == KindLoop {
			d++
		}
	}
	return d
}

// Path returns the chain of vertices from the root down to v.
func (v *Vertex) Path() []*Vertex {
	var rev []*Vertex
	for x := v; x != nil; x = x.Parent {
		rev = append(rev, x)
	}
	out := make([]*Vertex, len(rev))
	for i := range rev {
		out[i] = rev[len(rev)-1-i]
	}
	return out
}

func (v *Vertex) String() string {
	return fmt.Sprintf("%s %s @%s:%d", v.Kind, v.Name, v.Pos.File, v.Pos.Line)
}

// Instance is one inlined copy of a function on a particular call path.
// The inter-procedural phase creates one instance per (call path, callee);
// the interpreter walks the same instances at run time so that performance
// data lands on the right vertex even when a function is called from many
// places.
type Instance struct {
	// ID is the instance's creation index within its graph.
	ID int
	// Fn is the function this instance is a copy of.
	Fn *minilang.FuncDecl
	// Path names the call path: "main", "main/17@foo", ...
	Path string

	// vertexOf maps AST node -> the retained vertex that attributes it.
	vertexOf map[minilang.NodeID]*Vertex
	// calls maps direct call-site nodes to the callee instance.
	calls map[minilang.NodeID]*Instance
	// indirect maps indirect call-site nodes to the materialized target
	// instances, by callee name (pre-filled by Build for every
	// address-taken function; Graph.ResolveIndirect adds the rest).
	indirect map[minilang.NodeID]map[string]*Instance
	// siteVertex maps indirect call-site nodes to their Call vertex.
	siteVertex map[minilang.NodeID]*Vertex
}

// VertexOf returns the vertex attributing the given AST node in this
// instance, or nil if the node does not belong to this instance.
func (in *Instance) VertexOf(id minilang.NodeID) *Vertex { return in.vertexOf[id] }

// CalleeInstance returns the instance entered by the direct call at the
// given site node, or nil.
func (in *Instance) CalleeInstance(site minilang.NodeID) *Instance { return in.calls[site] }
