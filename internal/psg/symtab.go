package psg

// Symbol table: dense interned vertex IDs (ISSUE 2, DESIGN.md §7).
//
// Every materialized vertex gets a VID, a dense uint32 index into the
// graph's symbol table. Downstream layers (prof, ppg, detect, trace)
// attribute performance data by VID — a slice index — instead of hashing
// the vertex's string key; the string keys survive only in the JSON wire
// formats and in rendering.
//
// Assignment rules:
//
//   - VIDs are assigned at finalize time in preorder, so the first
//     finalize of a Build gives VID == Vertex.ID. The root vertex is
//     always VIDRoot (0).
//   - The table is append-only. A re-finalize (the write-locked slow path
//     of ResolveIndirect) may add vertices and may renumber preorder IDs,
//     but an assigned VID is never reused or remapped to a different key:
//     lookups go through the vertex's stable key, so a vertex replaced by
//     contraction under the same key keeps its VID.
//   - Profiles written against a graph therefore stay valid for the
//     lifetime of that graph, and dense per-VID storage only ever grows.

// VID is a dense interned vertex ID, valid for one *Graph.
type VID uint32

// VIDRoot is the VID of the synthetic root vertex (always 0).
const VIDRoot VID = 0

// VIDNone marks "no vertex" (e.g. a communication record whose dependence
// has no responsible peer vertex).
const VIDNone VID = ^VID(0)

// assignVIDs gives every vertex reachable from the root a VID, reusing
// the VID already interned for the vertex's key when one exists. Called
// from finalizeLocked with g.mu held.
func (g *Graph) assignVIDs() {
	if g.vidOf == nil {
		g.vidOf = make(map[string]VID, len(g.Vertices))
	}
	for _, v := range g.Vertices {
		id, ok := g.vidOf[v.Key]
		if !ok {
			id = VID(len(g.vids))
			g.vidOf[v.Key] = id
			g.vids = append(g.vids, nil)
		}
		v.VID = id
		g.vids[id] = v
	}
}

// NumVIDs returns the size of the symbol table; valid VIDs are
// [0, NumVIDs). Dense per-VID storage should be sized to this.
func (g *Graph) NumVIDs() int {
	g.mu.RLock()
	defer g.mu.RUnlock()
	return len(g.vids)
}

// KeyOf returns the stable string key interned for a VID, or "" when the
// VID is out of range (including VIDNone).
func (g *Graph) KeyOf(id VID) string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if int(id) >= len(g.vids) {
		return ""
	}
	return g.vids[id].Key
}

// VIDOf returns the VID interned for a stable vertex key.
func (g *Graph) VIDOf(key string) (VID, bool) {
	g.mu.RLock()
	defer g.mu.RUnlock()
	id, ok := g.vidOf[key]
	return id, ok
}

// VertexByVID returns the vertex currently bound to a VID, or nil when
// the VID is out of range.
func (g *Graph) VertexByVID(id VID) *Vertex {
	g.mu.RLock()
	defer g.mu.RUnlock()
	if int(id) >= len(g.vids) {
		return nil
	}
	return g.vids[id]
}

// Keys returns a snapshot of the symbol table's keys indexed by VID.
// Callers that must not take the graph lock per lookup (parallel PPG
// assembly) grab one snapshot up front; the graph is immutable during
// execution, so the snapshot cannot go stale mid-build.
func (g *Graph) Keys() []string {
	g.mu.RLock()
	defer g.mu.RUnlock()
	out := make([]string, len(g.vids))
	for i, v := range g.vids {
		out[i] = v.Key
	}
	return out
}
