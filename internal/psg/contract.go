package psg

import "scalana/internal/minilang"

// Graph contraction (paper §III-A "PSG Contraction"): communication is
// normally the main scalability bottleneck, so every MPI invocation and
// its enclosing control structures are preserved. Structures without MPI
// are reduced: branches collapse (their loops are hoisted and kept), loops
// nested deeper than MaxLoopDepth flatten, and consecutive Comp vertices
// merge into one.

// containsComm reports whether v's subtree contains an MPI vertex or a
// Call vertex (indirect/recursive call sites may reach MPI at run time,
// so they are conservatively preserved).
func containsComm(v *Vertex, memo map[*Vertex]bool) bool {
	if r, ok := memo[v]; ok {
		return r
	}
	r := v.Kind == KindMPI || v.Kind == KindCall
	if !r {
		for _, c := range v.Children {
			if containsComm(c, memo) {
				r = true
				break
			}
		}
	}
	memo[v] = r
	return r
}

// contractSubtree contracts the subtree rooted at v in place. baseDepth is
// the number of Loop vertices enclosing v (0 for the root). After the
// transformation, every instance's node attribution is redirected to the
// surviving vertices.
func (g *Graph) contractSubtree(v *Vertex, baseDepth int) {
	memo := map[*Vertex]bool{}
	replaced := map[*Vertex]*Vertex{}
	g.transformChildren(v, baseDepth, memo, replaced)
	if len(replaced) == 0 {
		return
	}
	chase := func(x *Vertex) *Vertex {
		for {
			r, ok := replaced[x]
			if !ok {
				return x
			}
			x = r
		}
	}
	for _, inst := range g.instances {
		for k, vx := range inst.vertexOf {
			inst.vertexOf[k] = chase(vx)
		}
	}
}

func (g *Graph) transformChildren(v *Vertex, loopDepth int, memo map[*Vertex]bool, replaced map[*Vertex]*Vertex) {
	process := func(children []*Vertex) []*Vertex {
		var kept []*Vertex
		for _, c := range children {
			switch c.Kind {
			case KindLoop:
				if !containsComm(c, memo) && loopDepth+1 > g.Opts.MaxLoopDepth {
					kept = append(kept, g.flatten(c, replaced))
					continue
				}
				g.transformChildren(c, loopDepth+1, memo, replaced)
				kept = append(kept, c)
			case KindCall:
				// Indirect call sites carry pre-materialized target
				// subtrees; contract them in place (the Call vertex itself
				// is always preserved).
				g.transformChildren(c, loopDepth, memo, replaced)
				kept = append(kept, c)
			case KindBranch:
				if !containsComm(c, memo) {
					// A branch without MPI is not preserved, but loops
					// inside it are ("we only preserve Loop because
					// computation produced by loop iterations may dominate
					// performance"): contract the branch body, then hoist
					// its children in place of the branch. The branch's own
					// bookkeeping collapses into a Comp vertex.
					g.transformChildren(c, loopDepth, memo, replaced)
					comp := &Vertex{
						Kind:        KindComp,
						Name:        "comp",
						Pos:         c.Pos,
						Inst:        c.Inst,
						SiteNode:    c.SiteNode,
						Key:         c.Key,
						MergedNodes: append([]minilang.NodeID{c.SiteNode}, c.MergedNodes...),
					}
					replaced[c] = comp
					kept = append(kept, comp)
					kept = append(kept, c.Children...)
					continue
				}
				g.transformChildren(c, loopDepth, memo, replaced)
				kept = append(kept, c)
			default:
				kept = append(kept, c)
			}
		}
		// Merge consecutive Comp vertices (paper: "merge continuous
		// vertices into a larger vertex").
		var merged []*Vertex
		for _, c := range kept {
			if c.Kind == KindComp && len(merged) > 0 && merged[len(merged)-1].Kind == KindComp {
				last := merged[len(merged)-1]
				last.MergedNodes = append(last.MergedNodes, c.MergedNodes...)
				replaced[c] = last
				continue
			}
			c.Parent = v
			merged = append(merged, c)
		}
		return merged
	}

	if v.Kind == KindBranch {
		// Never merge Comp vertices across the then/else boundary.
		then := process(v.Children[:v.ElseStart])
		els := process(v.Children[v.ElseStart:])
		v.Children = append(then, els...)
		v.ElseStart = len(then)
	} else {
		v.Children = process(v.Children)
		v.ElseStart = len(v.Children)
	}
}

// flatten replaces a structure vertex (and its whole subtree) by a single
// Comp vertex carrying the structure's key and source position.
func (g *Graph) flatten(c *Vertex, replaced map[*Vertex]*Vertex) *Vertex {
	comp := &Vertex{
		Kind:     KindComp,
		Name:     "comp",
		Pos:      c.Pos,
		Inst:     c.Inst,
		SiteNode: c.SiteNode,
		Key:      c.Key,
	}
	var walk func(x *Vertex)
	walk = func(x *Vertex) {
		replaced[x] = comp
		comp.MergedNodes = append(comp.MergedNodes, x.MergedNodes...)
		for _, ch := range x.Children {
			walk(ch)
		}
	}
	walk(c)
	return comp
}
