package psg

import "testing"

// TestOptionsNormalize pins the canonicalization rules Run and
// Engine.Compile rely on: the zero value means paper defaults, a
// non-positive MaxLoopDepth is replaced by the default depth, and fully
// specified options pass through untouched.
func TestOptionsNormalize(t *testing.T) {
	for _, tc := range []struct {
		name string
		in   Options
		want Options
	}{
		{"zero value is defaults", Options{}, DefaultOptions()},
		{"contract-only gets default depth", Options{Contract: true}, DefaultOptions()},
		{"negative depth gets default depth", Options{MaxLoopDepth: -3, Contract: true}, DefaultOptions()},
		{"explicit depth kept", Options{MaxLoopDepth: 3, Contract: true}, Options{MaxLoopDepth: 3, Contract: true}},
		{"uncontracted kept", Options{MaxLoopDepth: 10, Contract: false}, Options{MaxLoopDepth: 10, Contract: false}},
	} {
		if got := tc.in.Normalize(); got != tc.want {
			t.Errorf("%s: %+v.Normalize() = %+v, want %+v", tc.name, tc.in, got, tc.want)
		}
	}
}

// TestNormalizedOptionsBuildIdenticalGraphs asserts the heuristic fix:
// Options{Contract: true, MaxLoopDepth: 0} used to slip past defaulting;
// normalized, it must build the same contracted graph as DefaultOptions.
func TestNormalizedOptionsBuildIdenticalGraphs(t *testing.T) {
	a := build(t, fig3, Options{Contract: true}.Normalize())
	b := build(t, fig3, DefaultOptions())
	if a.Opts != b.Opts {
		t.Errorf("normalized options diverge: %+v vs %+v", a.Opts, b.Opts)
	}
	if a.Stats != b.Stats {
		t.Errorf("graph stats diverge: %+v vs %+v", a.Stats, b.Stats)
	}
}
