package psg

import (
	"testing"

	"scalana/internal/minilang"
)

var benchSrc = `
func halo(next, prev, bytes) {
	var r1 = mpi_irecv(prev, 3, bytes);
	var r2 = mpi_irecv(next, 4, bytes);
	mpi_isend(next, 3, bytes);
	mpi_isend(prev, 4, bytes);
	mpi_waitall();
}
func kernel(w) {
	for (var i = 0; i < 8; i = i + 1) {
		for (var j = 0; j < 8; j = j + 1) {
			compute(w, w / 8, w / 16, 65536);
		}
	}
}
func main() {
	var rank = mpi_rank();
	var np = mpi_size();
	var next = (rank + 1) % np;
	var prev = (rank - 1 + np) % np;
	for (var it = 0; it < 10; it = it + 1) {
		kernel(1e6);
		if (it % 2 == 0) {
			halo(next, prev, 8192);
		}
		mpi_allreduce(8);
	}
}`

// BenchmarkBuildContracted measures full PSG construction with contraction.
func BenchmarkBuildContracted(b *testing.B) {
	prog := minilang.MustParse("bench.mp", benchSrc)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(prog, DefaultOptions()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkBuildUncontracted isolates the intra/inter-procedural phases.
func BenchmarkBuildUncontracted(b *testing.B) {
	prog := minilang.MustParse("bench.mp", benchSrc)
	opts := Options{MaxLoopDepth: 10, Contract: false}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Build(prog, opts); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkVertexOf measures the runtime attribution lookup the
// interpreter performs per statement.
func BenchmarkVertexOf(b *testing.B) {
	prog := minilang.MustParse("bench.mp", benchSrc)
	g := MustBuild(prog)
	inst := g.Main
	id := prog.Func("main").Body.Stmts[0].ID()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if inst.VertexOf(id) == nil {
			b.Fatal("lost attribution")
		}
	}
}
