package psg

import (
	"testing"

	"scalana/internal/minilang"
)

func TestSymbolTableBasics(t *testing.T) {
	prog := minilang.MustParse("t.mp", `
func main() {
	compute(1e5, 1e3, 1e3, 64);
	for (var i = 0; i < 4; i = i + 1) {
		mpi_allreduce(8);
	}
}`)
	g := MustBuild(prog)
	if g.Root.VID != VIDRoot {
		t.Errorf("root VID = %d, want %d", g.Root.VID, VIDRoot)
	}
	if g.NumVIDs() != len(g.Vertices) {
		t.Errorf("NumVIDs = %d, vertices = %d", g.NumVIDs(), len(g.Vertices))
	}
	for _, v := range g.Vertices {
		if got := g.KeyOf(v.VID); got != v.Key {
			t.Errorf("KeyOf(%d) = %q, want %q", v.VID, got, v.Key)
		}
		if vid, ok := g.VIDOf(v.Key); !ok || vid != v.VID {
			t.Errorf("VIDOf(%q) = %d,%v, want %d", v.Key, vid, ok, v.VID)
		}
		if got := g.VertexByVID(v.VID); got != v {
			t.Errorf("VertexByVID(%d) = %v, want %v", v.VID, got, v)
		}
	}
	// First finalize assigns VIDs in preorder, so VID == preorder ID.
	for _, v := range g.Vertices {
		if int(v.VID) != v.ID {
			t.Errorf("vertex %s: VID %d != preorder ID %d after first finalize", v, v.VID, v.ID)
		}
	}
	if _, ok := g.VIDOf("nope"); ok {
		t.Error("unknown key should not resolve")
	}
	if g.KeyOf(VIDNone) != "" {
		t.Error("KeyOf(VIDNone) should be empty")
	}
	if g.VertexByVID(VID(1<<30)) != nil {
		t.Error("out-of-range VID should return nil vertex")
	}
	keys := g.Keys()
	if len(keys) != g.NumVIDs() {
		t.Fatalf("Keys() length = %d, want %d", len(keys), g.NumVIDs())
	}
	for i, key := range keys {
		if g.KeyOf(VID(i)) != key {
			t.Errorf("Keys()[%d] = %q disagrees with KeyOf", i, key)
		}
	}
}

// TestSymbolTableStableAcrossRefinement is the append-only guarantee the
// dense profile storage depends on: the write-locked slow path of
// ResolveIndirect may renumber preorder IDs, but every already-assigned
// VID keeps its key.
func TestSymbolTableStableAcrossRefinement(t *testing.T) {
	prog := minilang.MustParse("t.mp", `
func double(x) { return x * 2; }
func never(x) {
	for (var i = 0; i < 3; i = i + 1) { compute(10, 1, 1, 64); }
	return x * 3;
}
func main() {
	var f = &double;
	var y = f(2);
	mpi_barrier();
}`)
	g := MustBuild(prog)
	var site minilang.NodeID
	for _, v := range g.Vertices {
		if v.IndirectSite {
			site = v.SiteNode
		}
	}
	if site == 0 {
		t.Fatal("no indirect site found")
	}
	before := g.NumVIDs()
	keyByVID := make(map[VID]string, before)
	for _, v := range g.Vertices {
		keyByVID[v.VID] = v.Key
	}
	// "never" is not address-taken, so this exercises the mutating slow
	// path: materialize, contract, re-finalize.
	if _, err := g.ResolveIndirect(g.Main, site, "never"); err != nil {
		t.Fatal(err)
	}
	if g.NumVIDs() <= before {
		t.Errorf("symbol table did not grow: %d -> %d", before, g.NumVIDs())
	}
	for vid, key := range keyByVID {
		if got := g.KeyOf(vid); got != key {
			t.Errorf("VID %d remapped across refinement: %q -> %q", vid, key, got)
		}
	}
	for _, v := range g.Vertices {
		if int(v.VID) >= g.NumVIDs() {
			t.Errorf("vertex %s has out-of-table VID %d", v, v.VID)
		}
	}
	if err := g.CheckInvariants(); err != nil {
		t.Fatal(err)
	}
}
