package psg

import (
	"fmt"
	"strings"
)

// Render returns an ASCII drawing of the PSG tree, used by scalana-static,
// the viewer, and the Fig. 4 experiment. Execution-order edges are implied
// top-to-bottom among siblings; indentation shows control dependence.
func (g *Graph) Render() string {
	var sb strings.Builder
	g.renderVertex(&sb, g.Root, 0)
	return sb.String()
}

func (g *Graph) renderVertex(sb *strings.Builder, v *Vertex, depth int) {
	indent := strings.Repeat("  ", depth)
	switch v.Kind {
	case KindRoot:
		fmt.Fprintf(sb, "%sRoot\n", indent)
	case KindMPI:
		fmt.Fprintf(sb, "%sMPI %s (%s:%d)\n", indent, v.Name, v.Pos.File, v.Pos.Line)
	case KindComp:
		fmt.Fprintf(sb, "%sComp (%s:%d, %d stmts)\n", indent, v.Pos.File, v.Pos.Line, len(v.MergedNodes))
	case KindLoop:
		fmt.Fprintf(sb, "%sLoop (%s:%d)\n", indent, v.Pos.File, v.Pos.Line)
	case KindBranch:
		fmt.Fprintf(sb, "%sBranch (%s:%d)\n", indent, v.Pos.File, v.Pos.Line)
	case KindCall:
		fmt.Fprintf(sb, "%sCall %s (%s:%d)\n", indent, v.Name, v.Pos.File, v.Pos.Line)
	}
	if v.Kind == KindBranch {
		for i, c := range v.Children {
			if i == 0 && v.ElseStart > 0 {
				fmt.Fprintf(sb, "%s then:\n", indent)
			}
			if i == v.ElseStart {
				fmt.Fprintf(sb, "%s else:\n", indent)
			}
			g.renderVertex(sb, c, depth+1)
		}
		return
	}
	for _, c := range v.Children {
		g.renderVertex(sb, c, depth+1)
	}
}
