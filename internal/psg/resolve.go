package psg

import (
	"fmt"
	"sort"

	"scalana/internal/minilang"
)

// Indirect-call materialization.
//
// The paper (§III-B3) leaves indirect call sites as Call vertices and
// fills them in with runtime information. In MiniMP the possible targets
// are statically enumerable — a function value can only originate from
// an address-of expression (&name) — so Build pre-materializes the
// subtree for every (indirect site, address-taken function) pair at
// compile time. The payoff is concurrency: a compiled graph shared by
// many simultaneous runs (the sweep engine's compile cache) is immutable
// during execution, because every target the interpreter can produce is
// already present and ResolveIndirect reduces to a read-locked lookup.

// addressTakenFuncs returns the sorted names of functions whose address
// is taken (&name) anywhere in the program. These are exactly the
// possible targets of indirect calls.
func addressTakenFuncs(prog *minilang.Program) []string {
	set := map[string]bool{}
	var walkExpr func(e minilang.Expr)
	var walkStmt func(s minilang.Stmt)
	walkExpr = func(e minilang.Expr) {
		switch ex := e.(type) {
		case *minilang.FuncRefExpr:
			set[ex.Name] = true
		case *minilang.IndexExpr:
			walkExpr(ex.Idx)
		case *minilang.UnaryExpr:
			walkExpr(ex.X)
		case *minilang.BinaryExpr:
			walkExpr(ex.L)
			walkExpr(ex.R)
		case *minilang.CallExpr:
			for _, a := range ex.Args {
				walkExpr(a)
			}
		}
	}
	walkStmt = func(s minilang.Stmt) {
		switch st := s.(type) {
		case *minilang.VarDecl:
			walkExpr(st.Init)
		case *minilang.AssignStmt:
			if st.Idx != nil {
				walkExpr(st.Idx)
			}
			walkExpr(st.Val)
		case *minilang.ExprStmt:
			walkExpr(st.X)
		case *minilang.ReturnStmt:
			if st.Value != nil {
				walkExpr(st.Value)
			}
		case *minilang.Block:
			for _, c := range st.Stmts {
				walkStmt(c)
			}
		case *minilang.IfStmt:
			walkExpr(st.Cond)
			walkStmt(st.Then)
			if st.Else != nil {
				walkStmt(st.Else)
			}
		case *minilang.ForStmt:
			if st.Init != nil {
				walkStmt(st.Init)
			}
			if st.Cond != nil {
				walkExpr(st.Cond)
			}
			if st.Post != nil {
				walkStmt(st.Post)
			}
			walkStmt(st.Body)
		case *minilang.WhileStmt:
			walkExpr(st.Cond)
			walkStmt(st.Body)
		}
	}
	for _, fn := range prog.Funcs {
		walkStmt(fn.Body)
	}
	out := make([]string, 0, len(set))
	for name := range set {
		out = append(out, name)
	}
	sort.Strings(out)
	return out
}

// materializeLocked inlines target's local PSG underneath the indirect
// call vertex at (inst, site), or returns the cached/ancestor instance.
// created reports whether new vertices were added. The caller must hold
// g.mu exclusively (or be the single-threaded Build).
func (g *Graph) materializeLocked(inst *Instance, site minilang.NodeID, target string) (child *Instance, created bool, err error) {
	if m := inst.indirect[site]; m != nil {
		if c, ok := m[target]; ok {
			return c, false, nil
		}
	}
	fn := g.Prog.Func(target)
	if fn == nil {
		return nil, false, fmt.Errorf("psg: indirect call to unknown function %q", target)
	}
	cv := inst.siteVertex[site]
	if cv == nil {
		return nil, false, fmt.Errorf("psg: node %d in %s is not an indirect call site", site, inst.Path)
	}

	// Recursion through function pointers: reuse the active ancestor
	// instance, forming a cycle like direct recursion does.
	for p := inst; p != nil; p = g.parents[p] {
		if p.Fn != nil && p.Fn.Name == target {
			g.rememberIndirect(inst, site, target, p)
			return p, false, nil
		}
	}

	child = g.newInstance(inst, fn, fmt.Sprintf("%s/%d@%s", inst.Path, site, target))
	b := &builder{g: g}
	// Seed the inlining stack with the ancestry so that direct recursion
	// inside the materialized subtree is still detected.
	for p := inst; p != nil; p = g.parents[p] {
		if p.Fn != nil {
			b.stack = append(b.stack, stackEntry{name: p.Fn.Name, inst: p})
		}
	}
	b.stack = append(b.stack, stackEntry{name: target, inst: child})
	b.walkBlock(child, fn.Body, cv)
	g.rememberIndirect(inst, site, target, child)
	return child, true, nil
}

// maxMaterializedInstances bounds pre-materialization. The fixpoint must
// run to completion — a partially materialized graph would push deep
// indirect sites back onto the mutating runtime path and void the
// immutable-shared-graph guarantee — so the pathological case (k
// address-taken functions that each contain an indirect site, giving one
// instance chain per ordered target sequence, O(k!) growth that no real
// workload exhibits) is rejected at compile time instead of silently
// degraded. Real programs sit orders of magnitude below this.
const maxMaterializedInstances = 65536

// materializeAllIndirect pre-materializes every (indirect site, address-
// taken function) pair, processing instances created along the way until
// fixpoint. Runs inside Build, before contraction, single-threaded.
//
// Every site acquires a subtree per possible target, including targets
// it never invokes at run time; unsampled vertices stay out of profiles
// and reports, so over-approximation costs graph memory only.
func (g *Graph) materializeAllIndirect() error {
	targets := addressTakenFuncs(g.Prog)
	if len(targets) == 0 {
		return nil
	}
	// g.instances grows while materializing; the index loop doubles as
	// the worklist. Sites and targets are visited in sorted order so
	// instance IDs, paths, and vertex order are deterministic.
	for i := 0; i < len(g.instances); i++ {
		if len(g.instances) > maxMaterializedInstances {
			return fmt.Errorf("psg: indirect-call materialization exceeded %d instances; nesting of the %d address-taken functions is too deep",
				maxMaterializedInstances, len(targets))
		}
		inst := g.instances[i]
		sites := make([]minilang.NodeID, 0, len(inst.siteVertex))
		for s := range inst.siteVertex {
			sites = append(sites, s)
		}
		sort.Slice(sites, func(a, b int) bool { return sites[a] < sites[b] })
		for _, s := range sites {
			for _, t := range targets {
				if _, _, err := g.materializeLocked(inst, s, t); err != nil {
					return err
				}
			}
		}
	}
	return nil
}

// ResolveIndirect returns the PSG subtree for an indirect call observed
// at run time (paper §III-B3). inst/site identify the Call vertex of the
// indirect call site; target is the function actually invoked.
//
// Targets the interpreter can produce are always address-taken and
// therefore pre-materialized by Build, making this a read-locked cache
// lookup — runs never mutate a shared graph. The slow path below only
// fires for direct API callers naming a function that is never
// address-taken; it materializes under the write lock, applying the
// usual contraction and re-finalizing vertex IDs.
func (g *Graph) ResolveIndirect(inst *Instance, site minilang.NodeID, target string) (*Instance, error) {
	g.mu.RLock()
	if m := inst.indirect[site]; m != nil {
		if child, ok := m[target]; ok {
			g.mu.RUnlock()
			return child, nil
		}
	}
	g.mu.RUnlock()

	g.mu.Lock()
	defer g.mu.Unlock()
	child, created, err := g.materializeLocked(inst, site, target)
	if err != nil {
		return nil, err
	}
	if created {
		if g.Opts.Contract {
			cv := inst.siteVertex[site]
			g.contractSubtree(cv, cv.LoopDepth())
		}
		g.finalizeLocked()
	}
	return child, nil
}

func (g *Graph) rememberIndirect(inst *Instance, site minilang.NodeID, target string, child *Instance) {
	m := inst.indirect[site]
	if m == nil {
		m = map[string]*Instance{}
		inst.indirect[site] = m
	}
	m[target] = child
}

// IndirectTargets reports the materialized targets of an indirect site.
func (in *Instance) IndirectTargets(site minilang.NodeID) map[string]*Instance {
	return in.indirect[site]
}
