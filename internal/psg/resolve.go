package psg

import (
	"fmt"

	"scalana/internal/minilang"
)

// ResolveIndirect materializes the PSG subtree for an indirect call
// observed at run time (paper §III-B3: "collect the calling information of
// indirect calls at runtime and fill such information into the graph").
//
// inst/site identify the Call vertex of the indirect call site; target is
// the function actually invoked. The first call for a (site, target) pair
// inlines the target's local PSG underneath the Call vertex (applying the
// usual contraction) and re-finalizes vertex IDs; subsequent calls return
// the cached instance. Safe for concurrent use by all simulated ranks.
func (g *Graph) ResolveIndirect(inst *Instance, site minilang.NodeID, target string) (*Instance, error) {
	g.mu.RLock()
	if m := inst.indirect[site]; m != nil {
		if child, ok := m[target]; ok {
			g.mu.RUnlock()
			return child, nil
		}
	}
	g.mu.RUnlock()

	g.mu.Lock()
	defer g.mu.Unlock()
	if m := inst.indirect[site]; m != nil { // re-check under write lock
		if child, ok := m[target]; ok {
			return child, nil
		}
	}

	fn := g.Prog.Func(target)
	if fn == nil {
		return nil, fmt.Errorf("psg: indirect call to unknown function %q", target)
	}
	cv := inst.siteVertex[site]
	if cv == nil {
		return nil, fmt.Errorf("psg: node %d in %s is not an indirect call site", site, inst.Path)
	}

	// Recursion through function pointers: reuse the active ancestor
	// instance, forming a cycle like direct recursion does.
	for p := inst; p != nil; p = g.parents[p] {
		if p.Fn != nil && p.Fn.Name == target {
			g.rememberIndirect(inst, site, target, p)
			return p, nil
		}
	}

	child := g.newInstance(inst, fn, fmt.Sprintf("%s/%d@%s", inst.Path, site, target))
	b := &builder{g: g}
	// Seed the inlining stack with the dynamic ancestry so that direct
	// recursion inside the materialized subtree is still detected.
	for p := inst; p != nil; p = g.parents[p] {
		if p.Fn != nil {
			b.stack = append(b.stack, stackEntry{name: p.Fn.Name, inst: p})
		}
	}
	b.stack = append(b.stack, stackEntry{name: target, inst: child})
	b.walkBlock(child, fn.Body, cv)
	if g.Opts.Contract {
		g.contractSubtree(cv, cv.LoopDepth())
	}
	g.rememberIndirect(inst, site, target, child)
	g.finalizeLocked()
	return child, nil
}

func (g *Graph) rememberIndirect(inst *Instance, site minilang.NodeID, target string, child *Instance) {
	m := inst.indirect[site]
	if m == nil {
		m = map[string]*Instance{}
		inst.indirect[site] = m
	}
	m[target] = child
}

// IndirectTargets reports the materialized targets of an indirect site.
func (in *Instance) IndirectTargets(site minilang.NodeID) map[string]*Instance {
	return in.indirect[site]
}
