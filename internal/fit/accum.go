package fit

// Incremental log-log fitting (ISSUE 10). The streaming regression
// tracker extends a fitted model by one scale whenever a new profile set
// arrives; refitting from scratch would force it to re-merge every
// stored run's per-rank samples first. LogLogAccum keeps the regression
// sufficient statistics so extending a fit costs O(1), while producing
// exactly the coefficients FitLogLog computes over the full sweep: the
// sums accumulate in Add order, which is the same order FitLogLog's loop
// uses, so a point-at-a-time accumulator and a full refit agree to the
// last bit, not just within tolerance.

import (
	"fmt"
	"math"
)

// LogLogAccum incrementally fits y = exp(a) * p^b over (log p, log y)
// points added one at a time. The zero value is an empty accumulator;
// copies are independent (extending a copy does not disturb the
// original), which is how a rolling baseline forks "fit without the
// newest run" from "fit with it".
type LogLogAccum struct {
	n                int
	sx, sy, sxx, sxy float64
	// The raw points are retained for the residual pass: R² needs the
	// fitted coefficients, which do not exist until Model is called, and
	// computing it from closed-form sums alone loses precision exactly
	// when the fit is good (catastrophic cancellation in syy - sy²/n).
	// A sweep has a handful of scales, so this stays tiny.
	ps, ys []float64
}

// N returns the number of points added so far.
func (ac *LogLogAccum) N() int { return ac.n }

// Add extends the accumulator with one (scale, sample) point. It
// enforces the same input rules as FitLogLog — NaN scales, non-positive
// scales, and NaN samples are errors — and clamps non-positive samples
// to the same tiny epsilon. A failed Add leaves the accumulator
// unchanged.
func (ac *LogLogAccum) Add(p, y float64) error {
	if math.IsNaN(p) {
		return fmt.Errorf("fit: NaN scale at index %d", ac.n)
	}
	if p <= 0 {
		return fmt.Errorf("fit: non-positive scale %g", p)
	}
	if math.IsNaN(y) {
		return fmt.Errorf("fit: NaN sample at scale %g", p)
	}
	const eps = 1e-12
	x := math.Log(p)
	ly := math.Log(math.Max(y, eps))
	ac.n++
	ac.sx += x
	ac.sy += ly
	ac.sxx += x * x
	ac.sxy += x * ly
	ac.ps = append(ac.ps, p)
	ac.ys = append(ac.ys, y)
	return nil
}

// Clone returns an independent copy of the accumulator. The slice
// backing is duplicated, so Add on the clone never aliases the
// original's points (append could otherwise share capacity).
func (ac *LogLogAccum) Clone() *LogLogAccum {
	cp := *ac
	cp.ps = append([]float64(nil), ac.ps...)
	cp.ys = append([]float64(nil), ac.ys...)
	return &cp
}

// Model fits the accumulated points. It fails under the same conditions
// as FitLogLog: fewer than two points, or all scales identical.
func (ac *LogLogAccum) Model() (LogLog, error) {
	if ac.n < 2 {
		return LogLog{}, fmt.Errorf("fit: need at least 2 points, got %d", ac.n)
	}
	n := float64(ac.n)
	den := n*ac.sxx - ac.sx*ac.sx
	if den == 0 {
		return LogLog{}, fmt.Errorf("fit: all scales identical")
	}
	b := (n*ac.sxy - ac.sx*ac.sy) / den
	a := (ac.sy - b*ac.sx) / n

	// Residual pass in insertion order — identical arithmetic to
	// FitLogLog's second loop.
	const eps = 1e-12
	meanY := ac.sy / n
	var ssTot, ssRes float64
	for i := range ac.ps {
		x := math.Log(ac.ps[i])
		y := math.Log(math.Max(ac.ys[i], eps))
		pred := a + b*x
		ssTot += (y - meanY) * (y - meanY)
		ssRes += (y - pred) * (y - pred)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LogLog{A: a, B: b, R2: r2}, nil
}
