// Package fit provides the statistical machinery behind ScalAna's
// problematic-vertex detection: log-log regression for non-scalable vertex
// detection (paper §IV-A cites Barnes et al.'s regression-based scalability
// prediction), merge strategies for aggregating per-rank metrics, 1-D
// k-means clustering, and basic descriptive statistics.
package fit

import (
	"fmt"
	"math"
	"sort"
)

// LogLog is a fitted power-law model y = exp(a) * p^b, obtained by least
// squares on (log p, log y).
type LogLog struct {
	A float64 // intercept in log space
	B float64 // slope: the "changing rate" used to rank vertices
	// R2 is the coefficient of determination of the fit in log space.
	R2 float64
}

// Eval evaluates the model at p.
func (m LogLog) Eval(p float64) float64 { return math.Exp(m.A) * math.Pow(p, m.B) }

func (m LogLog) String() string {
	return fmt.Sprintf("y = %.3g * p^%.3f (R2=%.3f)", math.Exp(m.A), m.B, m.R2)
}

// FitLogLog fits a log-log model to (ps, ys). Non-positive samples are
// clamped to a tiny epsilon so vertices that vanish at some scale do not
// poison the fit. It returns an error when fewer than two distinct scales
// are present.
func FitLogLog(ps, ys []float64) (LogLog, error) {
	if len(ps) != len(ys) {
		return LogLog{}, fmt.Errorf("fit: length mismatch %d vs %d", len(ps), len(ys))
	}
	if len(ps) < 2 {
		return LogLog{}, fmt.Errorf("fit: need at least 2 points, got %d", len(ps))
	}
	const eps = 1e-12
	n := float64(len(ps))
	var sx, sy, sxx, sxy float64
	for i := range ps {
		if math.IsNaN(ps[i]) {
			return LogLog{}, fmt.Errorf("fit: NaN scale at index %d", i)
		}
		if ps[i] <= 0 {
			return LogLog{}, fmt.Errorf("fit: non-positive scale %g", ps[i])
		}
		if math.IsNaN(ys[i]) {
			return LogLog{}, fmt.Errorf("fit: NaN sample at scale %g", ps[i])
		}
		x := math.Log(ps[i])
		y := math.Log(math.Max(ys[i], eps))
		sx += x
		sy += y
		sxx += x * x
		sxy += x * y
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return LogLog{}, fmt.Errorf("fit: all scales identical")
	}
	b := (n*sxy - sx*sy) / den
	a := (sy - b*sx) / n

	// R² in log space.
	meanY := sy / n
	var ssTot, ssRes float64
	for i := range ps {
		x := math.Log(ps[i])
		y := math.Log(math.Max(ys[i], eps))
		pred := a + b*x
		ssTot += (y - meanY) * (y - meanY)
		ssRes += (y - pred) * (y - pred)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return LogLog{A: a, B: b, R2: r2}, nil
}

// MergeStrategy aggregates one vertex's per-rank metric values into a
// single number per scale (paper §IV-A discusses single-process, mean,
// median, and clustering strategies; the implementation "tests all
// strategies").
type MergeStrategy int

// Merge strategies.
const (
	MergeMedian MergeStrategy = iota
	MergeMean
	MergeMax
	MergeSingle  // rank 0 only
	MergeCluster // mean of the largest k-means cluster
)

// ParseMergeStrategy is the inverse of MergeStrategy.String, for CLI
// flags and wire formats that carry the strategy by name.
func ParseMergeStrategy(name string) (MergeStrategy, error) {
	for _, s := range []MergeStrategy{MergeMedian, MergeMean, MergeMax, MergeSingle, MergeCluster} {
		if s.String() == name {
			return s, nil
		}
	}
	return 0, fmt.Errorf("fit: unknown merge strategy %q (median, mean, max, single, cluster)", name)
}

func (s MergeStrategy) String() string {
	switch s {
	case MergeMedian:
		return "median"
	case MergeMean:
		return "mean"
	case MergeMax:
		return "max"
	case MergeSingle:
		return "single"
	case MergeCluster:
		return "cluster"
	}
	return "unknown"
}

// Merge applies the strategy to values (one entry per rank). NaN
// entries are treated as missing samples and ignored; with no non-NaN
// entries at all the merge is a defined 0 rather than NaN.
func Merge(values []float64, s MergeStrategy) float64 {
	values = dropNaN(values)
	if len(values) == 0 {
		return 0
	}
	switch s {
	case MergeMean:
		return Mean(values)
	case MergeMax:
		return Max(values)
	case MergeSingle:
		return values[0]
	case MergeCluster:
		centers, assign := KMeans1D(values, 2, 32)
		if len(centers) < 2 {
			return Mean(values)
		}
		// Use the cluster holding the majority of ranks.
		count := [2]int{}
		for _, a := range assign {
			count[a]++
		}
		major := 0
		if count[1] > count[0] {
			major = 1
		}
		var sum float64
		n := 0
		for i, a := range assign {
			if a == major {
				sum += values[i]
				n++
			}
		}
		return sum / float64(n)
	default:
		return Median(values)
	}
}

// Mean returns the arithmetic mean.
func Mean(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	var s float64
	for _, v := range values {
		s += v
	}
	return s / float64(len(values))
}

// Median returns the median (average of middle two for even length).
func Median(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	cp := append([]float64(nil), values...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return (cp[n/2-1] + cp[n/2]) / 2
}

// Variance returns the population variance, ignoring NaN entries
// (fewer than two non-NaN entries give 0 rather than NaN).
func Variance(values []float64) float64 {
	values = dropNaN(values)
	if len(values) < 2 {
		return 0
	}
	m := Mean(values)
	var s float64
	for _, v := range values {
		s += (v - m) * (v - m)
	}
	return s / float64(len(values))
}

// dropNaN returns values without NaN entries, reusing the input slice
// when it is already clean.
func dropNaN(values []float64) []float64 {
	clean := true
	for _, v := range values {
		if math.IsNaN(v) {
			clean = false
			break
		}
	}
	if clean {
		return values
	}
	out := make([]float64, 0, len(values))
	for _, v := range values {
		if !math.IsNaN(v) {
			out = append(out, v)
		}
	}
	return out
}

// Stddev returns the population standard deviation.
func Stddev(values []float64) float64 { return math.Sqrt(Variance(values)) }

// Max returns the maximum value (0 for empty input).
func Max(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	mx := values[0]
	for _, v := range values[1:] {
		if v > mx {
			mx = v
		}
	}
	return mx
}

// Min returns the minimum value (0 for empty input).
func Min(values []float64) float64 {
	if len(values) == 0 {
		return 0
	}
	mn := values[0]
	for _, v := range values[1:] {
		if v < mn {
			mn = v
		}
	}
	return mn
}

// KMeans1D clusters values into k clusters with at most iters Lloyd
// iterations, using deterministic quantile initialization. It returns the
// cluster centers (ascending) and each value's cluster assignment.
func KMeans1D(values []float64, k, iters int) ([]float64, []int) {
	n := len(values)
	if n == 0 || k <= 0 {
		return nil, nil
	}
	if k > n {
		k = n
	}
	sorted := append([]float64(nil), values...)
	sort.Float64s(sorted)
	centers := make([]float64, k)
	for i := 0; i < k; i++ {
		q := (float64(i) + 0.5) / float64(k)
		centers[i] = sorted[int(q*float64(n-1))]
	}
	assign := make([]int, n)
	for it := 0; it < iters; it++ {
		changed := false
		for i, v := range values {
			best, bestD := 0, math.Abs(v-centers[0])
			for c := 1; c < k; c++ {
				if d := math.Abs(v - centers[c]); d < bestD {
					best, bestD = c, d
				}
			}
			if assign[i] != best {
				assign[i] = best
				changed = true
			}
		}
		sums := make([]float64, k)
		counts := make([]int, k)
		for i, v := range values {
			sums[assign[i]] += v
			counts[assign[i]]++
		}
		for c := 0; c < k; c++ {
			if counts[c] > 0 {
				centers[c] = sums[c] / float64(counts[c])
			}
		}
		if !changed {
			break
		}
	}
	return centers, assign
}
