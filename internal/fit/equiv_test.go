package fit_test

// Incremental-vs-full fit equivalence (ISSUE 10 acceptance): extending
// a LogLogAccum one scale at a time must reproduce FitLogLog over the
// full sweep within 1e-12 on every coefficient, across every case of
// the committed synth corpus. The external test package breaks the
// import cycle fit -> scalana -> fit would otherwise form.

import (
	"math"
	"testing"

	"scalana/internal/fit"
	"scalana/internal/prof"
	"scalana/internal/psg"
	"scalana/internal/synth"

	scalana "scalana"
)

const equivTol = 1e-12

// closeEnough compares coefficients under the acceptance tolerance,
// treating a shared NaN (degenerate fit) as agreement.
func closeEnough(a, b float64) bool {
	if math.IsNaN(a) && math.IsNaN(b) {
		return true
	}
	return math.Abs(a-b) <= equivTol
}

func TestIncrementalFitMatchesFullRefit(t *testing.T) {
	corpus, err := synth.Generate(synth.GenConfig{Seed: 1, Cases: 25})
	if err != nil {
		t.Fatal(err)
	}
	eng := scalana.NewEngine()
	allNPs := []int{4, 8, 16}
	profCfg := prof.DefaultConfig()
	profCfg.SampleHz = 1000

	fitsChecked := 0
	for _, c := range corpus.Cases {
		nps, _ := synthUsable(allNPs, c.MinNP)
		if len(nps) < 2 {
			t.Fatalf("case %s: fewer than 2 usable scales out of %v (min_np=%d)", c.Name, allNPs, c.MinNP)
		}
		runs, err := eng.Sweep(c.App(), nps, scalana.SweepConfig{
			Parallelism: 1,
			Prof:        profCfg,
			Seed:        corpus.Seed,
		})
		if err != nil {
			t.Fatalf("sweep %s: %v", c.Name, err)
		}
		nvids := runs[0].PPG.NumVIDs()
		for vid := 0; vid < nvids; vid++ {
			ps := make([]float64, len(runs))
			ys := make([]float64, len(runs))
			skip := false
			for i, run := range runs {
				ps[i] = float64(run.NP)
				ys[i] = fit.Merge(run.PPG.TimeSeries(psg.VID(vid)), fit.MergeMedian)
				if math.IsNaN(ys[i]) {
					skip = true // vertex absent at this scale: FitLogLog rejects NaN
					break
				}
			}
			if skip {
				continue
			}
			full, err := fit.FitLogLog(ps, ys)
			if err != nil {
				t.Fatalf("%s vid %d: full refit: %v", c.Name, vid, err)
			}

			// Point-at-a-time accumulation over the whole sweep.
			var ac fit.LogLogAccum
			for i := range ps {
				if err := ac.Add(ps[i], ys[i]); err != nil {
					t.Fatalf("%s vid %d: Add(%g, %g): %v", c.Name, vid, ps[i], ys[i], err)
				}
			}
			inc, err := ac.Model()
			if err != nil {
				t.Fatalf("%s vid %d: incremental model: %v", c.Name, vid, err)
			}
			if !closeEnough(full.A, inc.A) || !closeEnough(full.B, inc.B) || !closeEnough(full.R2, inc.R2) {
				t.Fatalf("%s vid %d: incremental fit diverged:\nfull %+v\nincr %+v", c.Name, vid, full, inc)
			}

			// The rolling-baseline path: fit all-but-last, then extend a
			// clone by the frontier point. The clone must match the full
			// refit and the original must be undisturbed.
			var old fit.LogLogAccum
			for i := 0; i < len(ps)-1; i++ {
				if err := old.Add(ps[i], ys[i]); err != nil {
					t.Fatal(err)
				}
			}
			ext := old.Clone()
			if err := ext.Add(ps[len(ps)-1], ys[len(ps)-1]); err != nil {
				t.Fatal(err)
			}
			got, err := ext.Model()
			if err != nil {
				t.Fatalf("%s vid %d: extended model: %v", c.Name, vid, err)
			}
			if !closeEnough(full.A, got.A) || !closeEnough(full.B, got.B) || !closeEnough(full.R2, got.R2) {
				t.Fatalf("%s vid %d: clone+extend diverged from full refit:\nfull %+v\next  %+v", c.Name, vid, full, got)
			}
			if old.N() != len(ps)-1 {
				t.Fatalf("%s vid %d: extending the clone disturbed the original (n=%d)", c.Name, vid, old.N())
			}
			fitsChecked++
		}
	}
	if fitsChecked == 0 {
		t.Fatal("no fits compared: the corpus produced no usable vertex series")
	}
	t.Logf("compared %d per-vertex fits across %d cases", fitsChecked, len(corpus.Cases))
}

// synthUsable mirrors scales.SplitMin without importing it (keeps this
// test's dependencies to the packages under comparison).
func synthUsable(nps []int, minNP int) (kept, dropped []int) {
	for _, np := range nps {
		if np >= minNP {
			kept = append(kept, np)
		} else {
			dropped = append(dropped, np)
		}
	}
	return kept, dropped
}
