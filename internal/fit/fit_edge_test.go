package fit

// Edge-case coverage for the statistical helpers: empty, single-element,
// and NaN-bearing inputs. Profiles can legitimately produce NaN metrics
// (0/0 rate divisions downstream); the merge and dispersion helpers must
// yield defined values instead of propagating NaN into detection.

import (
	"math"
	"testing"
)

var nan = math.NaN()

func TestMergeEmptyAndSingle(t *testing.T) {
	strategies := []MergeStrategy{MergeMedian, MergeMean, MergeMax, MergeSingle, MergeCluster}
	for _, s := range strategies {
		if got := Merge(nil, s); got != 0 {
			t.Errorf("Merge(nil, %v) = %g, want 0", s, got)
		}
		if got := Merge([]float64{3.5}, s); got != 3.5 {
			t.Errorf("Merge([3.5], %v) = %g, want 3.5", s, got)
		}
	}
}

func TestMergeIgnoresNaN(t *testing.T) {
	vals := []float64{1, nan, 3}
	cases := []struct {
		s    MergeStrategy
		want float64
	}{
		{MergeMedian, 2},
		{MergeMean, 2},
		{MergeMax, 3},
		{MergeSingle, 1},
		{MergeCluster, 2},
	}
	for _, c := range cases {
		if got := Merge(vals, c.s); got != c.want {
			t.Errorf("Merge([1 NaN 3], %v) = %g, want %g", c.s, got, c.want)
		}
	}
	for _, s := range []MergeStrategy{MergeMedian, MergeMean, MergeMax, MergeSingle, MergeCluster} {
		if got := Merge([]float64{nan, nan}, s); got != 0 {
			t.Errorf("Merge(all-NaN, %v) = %g, want 0", s, got)
		}
	}
	// The input slice must not be mutated by the NaN filtering.
	if !math.IsNaN(vals[1]) {
		t.Error("Merge mutated its input")
	}
}

func TestVarianceEdges(t *testing.T) {
	if got := Variance(nil); got != 0 {
		t.Errorf("Variance(nil) = %g, want 0", got)
	}
	if got := Variance([]float64{7}); got != 0 {
		t.Errorf("Variance([7]) = %g, want 0", got)
	}
	if got := Variance([]float64{nan, nan, nan}); got != 0 {
		t.Errorf("Variance(all-NaN) = %g, want 0", got)
	}
	// NaN entries are dropped, not propagated: variance of {2, 4} is 1.
	if got := Variance([]float64{2, nan, 4}); got != 1 {
		t.Errorf("Variance([2 NaN 4]) = %g, want 1", got)
	}
	if got := Stddev([]float64{2, nan, 4}); got != 1 {
		t.Errorf("Stddev([2 NaN 4]) = %g, want 1", got)
	}
	if got := Variance([]float64{5, nan}); got != 0 {
		t.Errorf("Variance([5 NaN]) = %g, want 0 (one finite sample)", got)
	}
}

func TestFitLogLogRejectsNaN(t *testing.T) {
	if _, err := FitLogLog([]float64{4, 8}, []float64{1, nan}); err == nil {
		t.Error("FitLogLog accepted a NaN sample")
	}
	if _, err := FitLogLog([]float64{nan, 8}, []float64{1, 2}); err == nil {
		t.Error("FitLogLog accepted a NaN scale")
	}
	// Zero samples are still clamped, not rejected: vanishing vertices
	// must not poison the fit.
	m, err := FitLogLog([]float64{4, 8}, []float64{1, 0})
	if err != nil {
		t.Fatalf("FitLogLog with a zero sample: %v", err)
	}
	if math.IsNaN(m.B) {
		t.Error("zero sample produced a NaN slope")
	}
}
