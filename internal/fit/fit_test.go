package fit

import (
	"math"
	"testing"
	"testing/quick"
)

func TestFitLogLogExactPowerLaw(t *testing.T) {
	ps := []float64{4, 8, 16, 32, 64}
	for _, b := range []float64{-1, -0.5, 0, 0.7, 2} {
		ys := make([]float64, len(ps))
		for i, p := range ps {
			ys[i] = 3.7 * math.Pow(p, b)
		}
		m, err := FitLogLog(ps, ys)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(m.B-b) > 1e-9 {
			t.Errorf("slope = %g, want %g", m.B, b)
		}
		if m.R2 < 0.999999 {
			t.Errorf("R2 = %g for exact power law", m.R2)
		}
		if math.Abs(m.Eval(16)-3.7*math.Pow(16, b)) > 1e-6 {
			t.Errorf("Eval(16) = %g", m.Eval(16))
		}
	}
}

func TestFitLogLogErrors(t *testing.T) {
	if _, err := FitLogLog([]float64{1}, []float64{1}); err == nil {
		t.Error("single point should error")
	}
	if _, err := FitLogLog([]float64{1, 2}, []float64{1}); err == nil {
		t.Error("length mismatch should error")
	}
	if _, err := FitLogLog([]float64{0, 2}, []float64{1, 1}); err == nil {
		t.Error("non-positive scale should error")
	}
	if _, err := FitLogLog([]float64{4, 4}, []float64{1, 2}); err == nil {
		t.Error("identical scales should error")
	}
}

func TestFitLogLogToleratesZeroSamples(t *testing.T) {
	// A vertex absent at one scale: zero time must not produce NaN.
	m, err := FitLogLog([]float64{4, 8, 16}, []float64{1.0, 0, 0.25})
	if err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(m.B) || math.IsInf(m.B, 0) {
		t.Errorf("slope = %g", m.B)
	}
}

func TestStats(t *testing.T) {
	vals := []float64{4, 1, 3, 2}
	if Mean(vals) != 2.5 {
		t.Errorf("mean = %g", Mean(vals))
	}
	if Median(vals) != 2.5 {
		t.Errorf("median = %g", Median(vals))
	}
	if Median([]float64{5, 1, 3}) != 3 {
		t.Errorf("odd median = %g", Median([]float64{5, 1, 3}))
	}
	if Max(vals) != 4 || Min(vals) != 1 {
		t.Errorf("max/min = %g/%g", Max(vals), Min(vals))
	}
	if v := Variance([]float64{2, 2, 2}); v != 0 {
		t.Errorf("variance of constant = %g", v)
	}
	if v := Variance([]float64{1, 3}); v != 1 {
		t.Errorf("variance = %g, want 1", v)
	}
	if s := Stddev([]float64{1, 3}); s != 1 {
		t.Errorf("stddev = %g, want 1", s)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || Max(nil) != 0 || Min(nil) != 0 {
		t.Error("empty-input stats should be 0")
	}
}

func TestMergeStrategies(t *testing.T) {
	vals := []float64{1, 2, 3, 100}
	if got := Merge(vals, MergeMedian); got != 2.5 {
		t.Errorf("median merge = %g", got)
	}
	if got := Merge(vals, MergeMean); got != 26.5 {
		t.Errorf("mean merge = %g", got)
	}
	if got := Merge(vals, MergeMax); got != 100 {
		t.Errorf("max merge = %g", got)
	}
	if got := Merge(vals, MergeSingle); got != 1 {
		t.Errorf("single merge = %g", got)
	}
	// Cluster merge picks the majority cluster {1,2,3}.
	if got := Merge(vals, MergeCluster); math.Abs(got-2) > 1e-9 {
		t.Errorf("cluster merge = %g, want 2", got)
	}
	if Merge(nil, MergeMean) != 0 {
		t.Error("empty merge should be 0")
	}
}

func TestMergeStrategyNames(t *testing.T) {
	names := map[MergeStrategy]string{
		MergeMedian: "median", MergeMean: "mean", MergeMax: "max",
		MergeSingle: "single", MergeCluster: "cluster",
	}
	for s, want := range names {
		if s.String() != want {
			t.Errorf("%d.String() = %q, want %q", s, s.String(), want)
		}
	}
}

func TestKMeans1D(t *testing.T) {
	vals := []float64{1, 1.1, 0.9, 10, 10.2, 9.8}
	centers, assign := KMeans1D(vals, 2, 50)
	if len(centers) != 2 {
		t.Fatalf("%d centers", len(centers))
	}
	// The first three points must share a cluster, the last three another.
	if assign[0] != assign[1] || assign[1] != assign[2] {
		t.Errorf("low cluster split: %v", assign)
	}
	if assign[3] != assign[4] || assign[4] != assign[5] {
		t.Errorf("high cluster split: %v", assign)
	}
	if assign[0] == assign[3] {
		t.Error("clusters not separated")
	}
}

func TestKMeansEdgeCases(t *testing.T) {
	if c, a := KMeans1D(nil, 2, 10); c != nil || a != nil {
		t.Error("empty input should return nil")
	}
	c, a := KMeans1D([]float64{5}, 3, 10)
	if len(c) != 1 || len(a) != 1 {
		t.Errorf("k>n should clamp: %v %v", c, a)
	}
}

// Property: the fitted slope of y = c*p^b recovers b for random c, b.
func TestFitLogLogProperty(t *testing.T) {
	f := func(cRaw, bRaw int16) bool {
		c := 0.1 + math.Abs(float64(cRaw))/1000
		b := float64(bRaw) / 8192 // in [-4, 4)
		ps := []float64{2, 4, 8, 16, 32, 64, 128}
		ys := make([]float64, len(ps))
		for i, p := range ps {
			ys[i] = c * math.Pow(p, b)
		}
		m, err := FitLogLog(ps, ys)
		if err != nil {
			return false
		}
		return math.Abs(m.B-b) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 400}); err != nil {
		t.Error(err)
	}
}

// Property: Median lies between Min and Max; Variance is non-negative.
func TestStatsProperty(t *testing.T) {
	f := func(raw []float64) bool {
		vals := make([]float64, 0, len(raw))
		for _, v := range raw {
			if !math.IsNaN(v) && !math.IsInf(v, 0) {
				vals = append(vals, math.Mod(v, 1e6))
			}
		}
		if len(vals) == 0 {
			return true
		}
		med := Median(vals)
		if med < Min(vals) || med > Max(vals) {
			return false
		}
		return Variance(vals) >= 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}
