package report

import (
	"strings"
	"testing"
)

func TestTableAlignment(t *testing.T) {
	out := Table("title", []string{"A", "Blong"}, [][]string{
		{"x", "1"},
		{"ylonger", "22"},
	})
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if lines[0] != "title" {
		t.Errorf("title line = %q", lines[0])
	}
	// All data lines must share the header's column start for column 2.
	idx := strings.Index(lines[1], "Blong")
	for _, l := range lines[3:] {
		if len(l) <= idx {
			t.Errorf("short row %q", l)
			continue
		}
		if l[idx] == ' ' {
			t.Errorf("column 2 misaligned in %q", l)
		}
	}
	if !strings.Contains(lines[2], "---") {
		t.Errorf("separator missing: %q", lines[2])
	}
}

func TestBars(t *testing.T) {
	out := Bars("chart", []string{"a", "bb"}, []float64{10, 5}, nil)
	if !strings.Contains(out, "chart") {
		t.Error("title missing")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	hashes := func(s string) int { return strings.Count(s, "#") }
	if hashes(lines[1]) != 2*hashes(lines[2]) {
		t.Errorf("bar lengths not proportional: %q vs %q", lines[1], lines[2])
	}
	// Tiny non-zero values still show one mark.
	out = Bars("", []string{"x", "y"}, []float64{1000, 0.0001}, nil)
	for _, l := range strings.Split(out, "\n") {
		if strings.Contains(l, "y ") && !strings.Contains(l, "#") {
			t.Error("tiny value lost its bar")
		}
	}
}

func TestSeries(t *testing.T) {
	out := Series("s", "np", []float64{4, 8}, []NamedSeries{
		{Name: "a", Values: []float64{1, 2}},
		{Name: "b", Values: []float64{3}},
	})
	if !strings.Contains(out, "np") || !strings.Contains(out, "a") {
		t.Error("headers missing")
	}
	if !strings.Contains(out, "-") {
		t.Error("missing value placeholder absent")
	}
}

func TestBytes(t *testing.T) {
	cases := map[int64]string{
		512:             "512 B",
		2048:            "2.00 KB",
		3 << 20:         "3.00 MB",
		5 << 30:         "5.00 GB",
		(3 << 20) + 512: "3.00 MB",
	}
	for n, want := range cases {
		if got := Bytes(n); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", n, got, want)
		}
	}
}

func TestPctAndSeconds(t *testing.T) {
	if Pct(3.456) != "3.46%" {
		t.Errorf("Pct = %q", Pct(3.456))
	}
	if Seconds(2.5) != "2.500 s" {
		t.Errorf("Seconds = %q", Seconds(2.5))
	}
	if Seconds(0.0025) != "2.500 ms" {
		t.Errorf("ms = %q", Seconds(0.0025))
	}
	if Seconds(2.5e-6) != "2.5 us" {
		t.Errorf("us = %q", Seconds(2.5e-6))
	}
}
