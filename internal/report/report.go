// Package report renders experiment outputs as aligned text tables, bar
// charts, and series — the textual equivalents of the paper's tables and
// figures, emitted by scalana-bench and the bench harness.
package report

import (
	"fmt"
	"math"
	"strings"
)

// Table renders an aligned text table.
func Table(title string, headers []string, rows [][]string) string {
	widths := make([]int, len(headers))
	for i, h := range headers {
		widths[i] = len(h)
	}
	for _, row := range rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	var sb strings.Builder
	if title != "" {
		fmt.Fprintf(&sb, "%s\n", title)
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				sb.WriteString("  ")
			}
			fmt.Fprintf(&sb, "%-*s", widths[i], c)
		}
		sb.WriteByte('\n')
	}
	line(headers)
	sep := make([]string, len(headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range rows {
		line(row)
	}
	return sb.String()
}

// Bars renders a horizontal bar chart with one bar per label, scaled to
// the maximum value.
func Bars(title string, labels []string, values []float64, format func(float64) string) string {
	if format == nil {
		format = func(v float64) string { return fmt.Sprintf("%.3g", v) }
	}
	const width = 46
	maxV := 0.0
	maxL := 0
	for i, v := range values {
		if v > maxV {
			maxV = v
		}
		if len(labels[i]) > maxL {
			maxL = len(labels[i])
		}
	}
	var sb strings.Builder
	if title != "" {
		fmt.Fprintf(&sb, "%s\n", title)
	}
	for i, v := range values {
		n := 0
		if maxV > 0 {
			n = int(math.Round(v / maxV * width))
		}
		if n == 0 && v > 0 {
			n = 1
		}
		fmt.Fprintf(&sb, "  %-*s |%-*s| %s\n", maxL, labels[i], width, strings.Repeat("#", n), format(v))
	}
	return sb.String()
}

// Series renders multiple named lines sampled at shared x positions.
func Series(title, xlabel string, xs []float64, lines []NamedSeries) string {
	headers := []string{xlabel}
	for _, l := range lines {
		headers = append(headers, l.Name)
	}
	var rows [][]string
	for i, x := range xs {
		row := []string{fmt.Sprintf("%g", x)}
		for _, l := range lines {
			if i < len(l.Values) {
				row = append(row, fmt.Sprintf("%.4g", l.Values[i]))
			} else {
				row = append(row, "-")
			}
		}
		rows = append(rows, row)
	}
	return Table(title, headers, rows)
}

// NamedSeries is one line of a Series rendering.
type NamedSeries struct {
	Name   string
	Values []float64
}

// Bytes formats a byte count with binary units.
func Bytes(n int64) string {
	switch {
	case n >= 1<<30:
		return fmt.Sprintf("%.2f GB", float64(n)/(1<<30))
	case n >= 1<<20:
		return fmt.Sprintf("%.2f MB", float64(n)/(1<<20))
	case n >= 1<<10:
		return fmt.Sprintf("%.2f KB", float64(n)/(1<<10))
	default:
		return fmt.Sprintf("%d B", n)
	}
}

// Pct formats a percentage.
func Pct(x float64) string { return fmt.Sprintf("%.2f%%", x) }

// Seconds formats a duration given in seconds with sensible units.
func Seconds(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.3f s", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.3f ms", s*1e3)
	default:
		return fmt.Sprintf("%.1f us", s*1e6)
	}
}
