// Package hpctk implements the profiling-based baseline the paper compares
// against (HPCToolkit): pure call-path sampling. It attributes samples to
// full calling-context paths and reports the hottest contexts — but it
// records no inter-process dependence, which is exactly why the paper's
// case studies find it needs "significant human efforts" to get from the
// hot spots it reports to the root cause.
package hpctk

import (
	"sort"
	"strings"

	"scalana/internal/machine"
	"scalana/internal/mpisim"
	"scalana/internal/psg"
)

// Config controls the call-path profiler.
type Config struct {
	// SampleHz is the timer frequency (the paper pins both tools at 200 Hz).
	SampleHz float64
	// SampleCost is the virtual cost of one interrupt + stack unwind.
	// Unwinding a full call path costs a bit more than ScalAna's
	// graph-pointer lookup.
	SampleCost float64
	// TraceLine enables hpctraceviewer-style per-sample trace lines,
	// which is where most of HPCToolkit's storage goes.
	TraceLine bool
}

// DefaultConfig mirrors hpcrun defaults with tracing enabled.
func DefaultConfig() Config {
	return Config{SampleHz: 200, SampleCost: 2.2e-6, TraceLine: true}
}

// CtxData is the metric payload of one calling-context-tree node.
type CtxData struct {
	Samples int64
	Time    float64
	PMU     machine.Vec
}

// RankProfile is one rank's calling-context-tree profile.
type RankProfile struct {
	Rank int
	// Ctx maps a calling-context path (joined vertex keys) to metrics.
	Ctx map[string]*CtxData
	// TraceSamples counts hpctrace records (one per sample).
	TraceSamples int64
}

// StorageBytes reports the measurement-file size: a per-rank file header
// (load map, metric descriptors — hpcrun files carry several KB of
// metadata each), CCT nodes with a metric vector each, plus the
// per-sample trace line.
func (rp *RankProfile) StorageBytes() int64 {
	const fileHeader = 6 << 10                                // load map + metric table per rank
	const cctNode = 8 + 8 + 8*int64(machine.NumCounters) + 32 // ids, parent link, metrics, frame info
	const traceRec = 12                                       // timestamp + cct id
	var pathBytes int64
	for path := range rp.Ctx {
		pathBytes += int64(len(path)) / 4 // dictionary-compressed frames
	}
	s := int64(len(rp.Ctx))*cctNode + pathBytes
	if rp.TraceSamples > 0 {
		s += rp.TraceSamples * traceRec
	}
	return fileHeader + s
}

// Profiler is the per-rank hook implementing mpisim.Hook.
type Profiler struct {
	cfg        Config
	profile    *RankProfile
	period     float64
	pendingPMU machine.Vec
	// paths caches the rendered calling-context string per leaf vertex,
	// indexed by interned psg.VID: the parent walk and string join run
	// once per distinct context instead of once per sample.
	paths []string
}

// New creates the call-path profiler for one rank.
func New(cfg Config, rank int) *Profiler {
	if cfg.SampleHz <= 0 {
		cfg = DefaultConfig()
	}
	return &Profiler{
		cfg:     cfg,
		profile: &RankProfile{Rank: rank, Ctx: map[string]*CtxData{}},
		period:  1 / cfg.SampleHz,
	}
}

// Profile returns the collected profile.
func (pr *Profiler) Profile() *RankProfile { return pr.profile }

// callPath renders the calling context of ctx by walking vertex parents —
// the moral equivalent of unwinding the stack at an interrupt. The walk
// memoizes per interned VID, so repeated samples in the same context are
// a slice index.
func (pr *Profiler) callPath(ctx any) string {
	v, ok := ctx.(*psg.Vertex)
	if !ok || v == nil {
		return "root"
	}
	if int(v.VID) < len(pr.paths) && pr.paths[v.VID] != "" {
		return pr.paths[v.VID]
	}
	var parts []string
	for _, x := range v.Path() {
		parts = append(parts, x.Key)
	}
	path := strings.Join(parts, ";")
	if int(v.VID) >= len(pr.paths) {
		grown := make([]string, int(v.VID)+1)
		copy(grown, pr.paths)
		pr.paths = grown
	}
	pr.paths[v.VID] = path
	return path
}

// Advance implements timer sampling against the calling context.
func (pr *Profiler) Advance(p *mpisim.Proc, from, to float64, kind mpisim.AdvanceKind, ctx any, pmu machine.Vec) float64 {
	pr.pendingPMU.Add(pmu)
	crossings := int64(to/pr.period) - int64(from/pr.period)
	if crossings <= 0 {
		return 0
	}
	path := pr.callPath(ctx)
	cd := pr.profile.Ctx[path]
	if cd == nil {
		cd = &CtxData{}
		pr.profile.Ctx[path] = cd
	}
	cd.Samples += crossings
	cd.Time += float64(crossings) * pr.period
	cd.PMU.Add(pr.pendingPMU)
	pr.pendingPMU = machine.Vec{}
	if pr.cfg.TraceLine {
		pr.profile.TraceSamples += crossings
	}
	if kind == mpisim.AdvPerturb {
		return 0
	}
	return float64(crossings) * pr.cfg.SampleCost
}

// MPIEvent is a no-op: a pure sampling profiler does not interpose on MPI.
func (pr *Profiler) MPIEvent(p *mpisim.Proc, ev *mpisim.Event) float64 { return 0 }

var _ mpisim.Hook = (*Profiler)(nil)

// HotPath is one entry of the profiler's report.
type HotPath struct {
	Path    string
	Time    float64
	Samples int64
}

// TopPaths aggregates profiles across ranks and returns the hottest n
// calling contexts — the flat "here are your bottlenecks, good luck"
// output that the paper contrasts with root-cause paths.
func TopPaths(profiles []*RankProfile, n int) []HotPath {
	agg := map[string]*HotPath{}
	for _, rp := range profiles {
		for path, cd := range rp.Ctx {
			hp := agg[path]
			if hp == nil {
				hp = &HotPath{Path: path}
				agg[path] = hp
			}
			hp.Time += cd.Time
			hp.Samples += cd.Samples
		}
	}
	paths := make([]string, 0, len(agg))
	for path := range agg {
		paths = append(paths, path)
	}
	sort.Strings(paths)
	out := make([]HotPath, 0, len(paths))
	for _, path := range paths {
		out = append(out, *agg[path])
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time > out[j].Time
		}
		return out[i].Path < out[j].Path
	})
	if len(out) > n {
		out = out[:n]
	}
	return out
}
