package hpctk

import (
	"strings"
	"testing"

	"scalana/internal/machine"
	"scalana/internal/minilang"
	"scalana/internal/mpisim"
	"scalana/internal/psg"
)

func fakeProc(t *testing.T) *mpisim.Proc {
	t.Helper()
	return mpisim.NewWorld(mpisim.Config{NP: 1}).Proc(0)
}

func testVertex(t *testing.T) *psg.Vertex {
	t.Helper()
	prog := minilang.MustParse("t.mp", `
func main() {
	for (var i = 0; i < 2; i = i + 1) {
		compute(1e3, 10, 10, 64);
	}
	mpi_barrier();
}`)
	g := psg.MustBuild(prog)
	for _, v := range g.Vertices {
		if v.Kind == psg.KindComp && v.Parent.Kind == psg.KindLoop {
			return v
		}
	}
	t.Fatal("no nested comp vertex")
	return nil
}

func TestCallPathAttribution(t *testing.T) {
	v := testVertex(t)
	pr := New(DefaultConfig(), 0)
	p := fakeProc(t)
	pr.Advance(p, 0, 0.1, mpisim.AdvCompute, v, machine.Vec{50, 100, 25, 0, 40})
	prof := pr.Profile()
	if len(prof.Ctx) != 1 {
		t.Fatalf("contexts = %d, want 1", len(prof.Ctx))
	}
	for path, cd := range prof.Ctx {
		// The path includes the full vertex chain: root > loop > comp.
		if !strings.Contains(path, ";") {
			t.Errorf("path %q has no nesting", path)
		}
		if cd.Samples != 20 { // 0.1s at 200Hz
			t.Errorf("samples = %d, want 20", cd.Samples)
		}
		if cd.PMU[0] != 50 {
			t.Errorf("PMU = %v", cd.PMU)
		}
	}
	if prof.TraceSamples != 20 {
		t.Errorf("trace samples = %d", prof.TraceSamples)
	}
}

func TestNilContextAttribution(t *testing.T) {
	pr := New(DefaultConfig(), 0)
	p := fakeProc(t)
	pr.Advance(p, 0, 0.01, mpisim.AdvCompute, nil, machine.Vec{})
	if _, ok := pr.Profile().Ctx["root"]; !ok {
		t.Errorf("nil ctx should attribute to root: %v", pr.Profile().Ctx)
	}
}

func TestMPIEventIsNoOp(t *testing.T) {
	pr := New(DefaultConfig(), 0)
	p := fakeProc(t)
	if owed := pr.MPIEvent(p, &mpisim.Event{Op: "mpi_recv"}); owed != 0 {
		t.Error("pure sampler should not charge MPI events")
	}
	if len(pr.Profile().Ctx) != 0 {
		t.Error("pure sampler should not record MPI events")
	}
}

func TestSamplerCost(t *testing.T) {
	pr := New(DefaultConfig(), 0)
	p := fakeProc(t)
	owed := pr.Advance(p, 0, 0.1, mpisim.AdvCompute, nil, machine.Vec{})
	if owed != 20*DefaultConfig().SampleCost {
		t.Errorf("owed = %g", owed)
	}
	if owed2 := pr.Advance(p, 0.1, 0.2, mpisim.AdvPerturb, nil, machine.Vec{}); owed2 != 0 {
		t.Error("perturb advances must not be charged")
	}
}

func TestTopPaths(t *testing.T) {
	p1 := &RankProfile{Rank: 0, Ctx: map[string]*CtxData{
		"a;b": {Samples: 10, Time: 1.0},
		"a;c": {Samples: 5, Time: 0.5},
	}}
	p2 := &RankProfile{Rank: 1, Ctx: map[string]*CtxData{
		"a;b": {Samples: 10, Time: 1.0},
		"a;d": {Samples: 1, Time: 0.1},
	}}
	top := TopPaths([]*RankProfile{p1, p2}, 2)
	if len(top) != 2 {
		t.Fatalf("%d paths", len(top))
	}
	if top[0].Path != "a;b" || top[0].Time != 2.0 || top[0].Samples != 20 {
		t.Errorf("top = %+v", top[0])
	}
	if top[1].Path != "a;c" {
		t.Errorf("second = %+v", top[1])
	}
}

func TestStorageGrowsWithContextsAndSamples(t *testing.T) {
	rp := &RankProfile{Rank: 0, Ctx: map[string]*CtxData{}}
	empty := rp.StorageBytes()
	rp.Ctx["root;x;y"] = &CtxData{Samples: 100}
	rp.TraceSamples = 100
	if rp.StorageBytes() <= empty {
		t.Error("storage should grow")
	}
	noTrace := &RankProfile{Rank: 0, Ctx: map[string]*CtxData{"a": {}}}
	withTrace := &RankProfile{Rank: 0, Ctx: map[string]*CtxData{"a": {}}, TraceSamples: 1000}
	if withTrace.StorageBytes() <= noTrace.StorageBytes() {
		t.Error("trace lines should add storage")
	}
}
