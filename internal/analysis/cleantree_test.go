package analysis

import "testing"

// TestLintCleanTree is the repo-wide invariant gate: the full analyzer
// suite over every package in the module must report nothing. A failure
// here means a determinism or hot-path contract regressed; fix the code
// or add a justified //scalana:allow, never weaken the analyzer.
func TestLintCleanTree(t *testing.T) {
	root, err := ModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./...")
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) == 0 {
		t.Fatal("loaded no packages")
	}
	total := 0
	for _, pkg := range pkgs {
		diags, err := RunAnalyzers(pkg, All())
		if err != nil {
			t.Fatal(err)
		}
		for _, d := range diags {
			t.Errorf("%s", d)
			total++
		}
	}
	if total > 0 {
		t.Errorf("%d invariant violations; scalana-lint must stay clean", total)
	}
}
