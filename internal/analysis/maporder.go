package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// MapOrder enforces the byte-identical-output invariant (DESIGN.md §6):
// Go map iteration order is deliberately randomized, so a `range` over a
// map may not feed anything order-sensitive. Flagged loop bodies are
// ones that reach an encoder/renderer/writer, accumulate into a float
// (FP addition is not associative — the sum depends on visit order), or
// append into a slice that outlives the loop.
//
// The sanctioned idiom is: collect the keys, sort them, then index the
// map while ranging over the sorted keys. Appending *keys* and sorting
// that slice afterwards is therefore allowed; appending records and
// sorting *those* is not — that is exactly the PR 6 commLess bug class,
// where a non-total record comparator silently preserved map order for
// tied elements and randomized the wire bytes.
var MapOrder = &Analyzer{
	Name: "maporder",
	Doc: "flags range-over-map whose body is iteration-order sensitive " +
		"(reaches an encoder/renderer, accumulates floats, or appends records " +
		"into an escaping slice) — iterate over sorted keys instead",
	Run: runMapOrder,
}

func runMapOrder(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			fn := enclosingBody(n)
			if fn == nil {
				return true
			}
			checkMapRanges(pass, fn)
			return false
		})
	}
	return nil
}

// enclosingBody returns the body of a function declaration; FuncLits are
// handled recursively while walking the declaration.
func enclosingBody(n ast.Node) *ast.BlockStmt {
	if decl, ok := n.(*ast.FuncDecl); ok {
		return decl.Body
	}
	return nil
}

// checkMapRanges walks one function body. funcBody is the scope searched
// for post-loop sort calls; it narrows to the innermost FuncLit body.
func checkMapRanges(pass *Pass, funcBody *ast.BlockStmt) {
	if funcBody == nil {
		return
	}
	var walk func(n ast.Node, body *ast.BlockStmt)
	walk = func(n ast.Node, body *ast.BlockStmt) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.FuncLit:
				walk(m.Body, m.Body)
				return false
			case *ast.RangeStmt:
				if isMapType(pass.TypesInfo.TypeOf(m.X)) {
					checkOneMapRange(pass, m, body)
				}
				// Keep descending: nested map ranges inside this body are
				// checked against the same enclosing function body.
			}
			return true
		})
	}
	// Top-level call: walk statements, not the body node itself, to avoid
	// infinite recursion on the FuncLit case.
	for _, st := range funcBody.List {
		walk(st, funcBody)
	}
}

func isMapType(t types.Type) bool {
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkOneMapRange inspects a single range-over-map statement.
func checkOneMapRange(pass *Pass, rng *ast.RangeStmt, funcBody *ast.BlockStmt) {
	keyObj := rangeVarObject(pass, rng.Key)
	ast.Inspect(rng.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if name, ok := orderSensitiveSink(pass, n); ok {
				pass.Reportf(n.Pos(), "map iteration order reaches %s; iterate over sorted keys instead", name)
			}
			if sliceVar, keyOnly := appendToOuter(pass, n, rng, keyObj); sliceVar != nil {
				if !keyOnly {
					pass.Reportf(n.Pos(), "append to %s inside a map range captures map iteration order; "+
						"collect the keys, sort them, then index the map — sorting the appended records afterwards "+
						"is the commLess bug class (a non-total comparator silently preserves map order)", sliceVar.Name())
				} else if !sortedAfter(pass, funcBody, rng, sliceVar) {
					pass.Reportf(n.Pos(), "map keys appended to %s are never sorted before use", sliceVar.Name())
				}
			}
		case *ast.AssignStmt:
			checkFloatAccum(pass, n, rng)
		}
		return true
	})
}

// rangeVarObject resolves the key variable of `for k := range m`.
func rangeVarObject(pass *Pass, e ast.Expr) types.Object {
	id, ok := e.(*ast.Ident)
	if !ok {
		return nil
	}
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

// sinkPrefixes match callee names that serialize, render, or write —
// order-sensitive because their output is a sequence of bytes.
var sinkPrefixes = []string{"encode", "marshal", "render", "write", "print", "fprint", "sprint", "append"}

// orderSensitiveSink classifies a call as an encoder/renderer/writer.
func orderSensitiveSink(pass *Pass, call *ast.CallExpr) (string, bool) {
	var name string
	var pkgPath string
	switch fun := call.Fun.(type) {
	case *ast.SelectorExpr:
		name = fun.Sel.Name
		if obj, ok := pass.TypesInfo.Uses[fun.Sel].(*types.Func); ok && obj.Pkg() != nil {
			pkgPath = obj.Pkg().Path()
		}
	case *ast.Ident:
		name = fun.Name
		if obj, ok := pass.TypesInfo.Uses[fun].(*types.Func); ok && obj.Pkg() != nil {
			pkgPath = obj.Pkg().Path()
		} else {
			return "", false // builtins (append, delete, ...) are not sinks
		}
	default:
		return "", false
	}
	if strings.HasPrefix(pkgPath, "encoding/") || pkgPath == "fmt" {
		return pkgPath + "." + name, true
	}
	lower := strings.ToLower(name)
	for _, p := range sinkPrefixes {
		if p == "append" {
			continue // handled separately with escape analysis
		}
		if strings.HasPrefix(lower, p) {
			return name, true
		}
	}
	return "", false
}

// appendToOuter recognizes `s = append(s, x)` where s is declared
// outside the range statement. keyOnly reports whether every appended
// value is the range key itself (possibly via a conversion).
func appendToOuter(pass *Pass, call *ast.CallExpr, rng *ast.RangeStmt, keyObj types.Object) (sliceVar *types.Var, keyOnly bool) {
	fun, ok := call.Fun.(*ast.Ident)
	if !ok || fun.Name != "append" {
		return nil, false
	}
	if _, isBuiltin := pass.TypesInfo.Uses[fun].(*types.Builtin); !isBuiltin {
		return nil, false // shadowed: not the builtin
	}
	if len(call.Args) < 2 {
		return nil, false
	}
	base := rootIdent(call.Args[0])
	if base == nil {
		return nil, false
	}
	obj, ok := pass.TypesInfo.Uses[base].(*types.Var)
	if !ok || declaredWithin(obj, rng) {
		return nil, false
	}
	keyOnly = keyObj != nil
	for _, arg := range call.Args[1:] {
		if !isKeyExpr(pass, arg, keyObj) {
			keyOnly = false
		}
	}
	return obj, keyOnly
}

// isKeyExpr reports whether e is the range key variable, optionally
// wrapped in a type conversion.
func isKeyExpr(pass *Pass, e ast.Expr, keyObj types.Object) bool {
	if keyObj == nil {
		return false
	}
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return pass.TypesInfo.Uses[x] == keyObj
		case *ast.CallExpr:
			// A conversion like string(k).
			if len(x.Args) == 1 && pass.TypesInfo.Types[x.Fun].IsType() {
				e = x.Args[0]
				continue
			}
			return false
		case *ast.ParenExpr:
			e = x.X
		default:
			return false
		}
	}
}

// declaredWithin reports whether obj's declaration lies inside node.
func declaredWithin(obj types.Object, node ast.Node) bool {
	return obj.Pos() >= node.Pos() && obj.Pos() < node.End()
}

// sortedAfter reports whether funcBody contains, after the range loop, a
// sort.* or slices.* call that mentions sliceVar.
func sortedAfter(pass *Pass, funcBody *ast.BlockStmt, rng *ast.RangeStmt, sliceVar *types.Var) bool {
	found := false
	ast.Inspect(funcBody, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok || call.Pos() < rng.End() {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkgName, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		pn, ok := pass.TypesInfo.Uses[pkgName].(*types.PkgName)
		if !ok {
			return true
		}
		if p := pn.Imported().Path(); p != "sort" && p != "slices" {
			return true
		}
		for _, arg := range call.Args {
			mentions := false
			ast.Inspect(arg, func(m ast.Node) bool {
				if id, ok := m.(*ast.Ident); ok && pass.TypesInfo.Uses[id] == sliceVar {
					mentions = true
				}
				return !mentions
			})
			if mentions {
				found = true
				break
			}
		}
		return !found
	})
	return found
}

// checkFloatAccum flags `x += v`, `x -= v`, `x *= v`, `x /= v`, and
// `x = x + v` where x is a float declared outside the loop.
func checkFloatAccum(pass *Pass, as *ast.AssignStmt, rng *ast.RangeStmt) {
	switch as.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	case token.ASSIGN:
		// x = x + v (or x - v): the LHS must reappear as an operand.
		if len(as.Lhs) != 1 || len(as.Rhs) != 1 {
			return
		}
		bin, ok := as.Rhs[0].(*ast.BinaryExpr)
		if !ok || (bin.Op != token.ADD && bin.Op != token.SUB) {
			return
		}
		lhsID, ok := as.Lhs[0].(*ast.Ident)
		if !ok {
			return
		}
		opID, ok := bin.X.(*ast.Ident)
		if !ok || pass.TypesInfo.Uses[opID] != pass.TypesInfo.Uses[lhsID] {
			return
		}
	default:
		return
	}
	for _, lhs := range as.Lhs {
		t := pass.TypesInfo.TypeOf(lhs)
		basic, ok := t.(*types.Basic)
		if !ok || basic.Info()&types.IsFloat == 0 {
			continue
		}
		root := rootIdent(lhs)
		if root == nil {
			continue
		}
		obj := pass.TypesInfo.Uses[root]
		if obj == nil || declaredWithin(obj, rng) {
			continue
		}
		pass.Reportf(as.Pos(), "float accumulation into %s inside a map range is iteration-order dependent "+
			"(FP addition is not associative); accumulate over sorted keys", obj.Name())
	}
}

// rootIdent returns the base identifier of x, x.f, x[i], etc.
func rootIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}
