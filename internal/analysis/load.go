package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package — the linter's stand-in
// for go/packages.Package. Only non-test Go files are loaded: the
// invariants the suite enforces are contracts on shipped code, and the
// walltime/seededrand passes explicitly exempt tests.
type Package struct {
	// Path is the import path ("scalana/internal/mpisim").
	Path string
	// Dir is the package directory on disk.
	Dir string
	// Fset positions all Files.
	Fset *token.FileSet
	// Files are the parsed non-test sources, with comments.
	Files []*ast.File
	// Types is the type-checked package.
	Types *types.Package
	// Info carries the type-checker's fact tables.
	Info *types.Info
}

// listedPackage is the subset of `go list -json` output the loader uses.
type listedPackage struct {
	ImportPath string
	Name       string
	Dir        string
	GoFiles    []string
	Export     string
	DepOnly    bool
	Error      *struct{ Err string }
}

// Load lists patterns with the go tool (compiling export data for every
// dependency) and type-checks each matched package from source. dir is
// the directory to run the go tool in — normally the module root.
func Load(dir string, patterns ...string) ([]*Package, error) {
	args := append([]string{
		"list", "-e", "-export", "-deps",
		"-json=ImportPath,Name,Dir,GoFiles,Export,DepOnly,Error",
	}, patterns...)
	cmd := exec.Command("go", args...)
	cmd.Dir = dir
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	exports := map[string]string{}
	var roots []*listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("parse go list output: %w", err)
		}
		if lp.Error != nil {
			return nil, fmt.Errorf("go list: package %s: %s", lp.ImportPath, lp.Error.Err)
		}
		if lp.Export != "" {
			exports[lp.ImportPath] = lp.Export
		}
		if !lp.DepOnly {
			p := lp
			roots = append(roots, &p)
		}
	}

	var pkgs []*Package
	for _, lp := range roots {
		if len(lp.GoFiles) == 0 {
			continue
		}
		pkg, err := typeCheck(lp.ImportPath, lp.Dir, absFiles(lp.Dir, lp.GoFiles), exports, nil)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func absFiles(dir string, names []string) []string {
	out := make([]string, len(names))
	for i, n := range names {
		if filepath.IsAbs(n) {
			out[i] = n
		} else {
			out[i] = filepath.Join(dir, n)
		}
	}
	return out
}

// exportLookup adapts an import-path -> export-file map (plus an
// optional import-path rewrite map, as in vet configs) to the lookup
// function the standard library's gc importer accepts.
func exportLookup(exports map[string]string, importMap map[string]string) func(path string) (io.ReadCloser, error) {
	return func(path string) (io.ReadCloser, error) {
		if importMap != nil {
			if mapped, ok := importMap[path]; ok {
				path = mapped
			}
		}
		file, ok := exports[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
}

// typeCheck parses and type-checks one package whose dependencies are
// all available as gc export data.
func typeCheck(importPath, dir string, files []string, exports, importMap map[string]string) (*Package, error) {
	fset := token.NewFileSet()
	var astFiles []*ast.File
	for _, name := range files {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("parse %s: %w", name, err)
		}
		astFiles = append(astFiles, f)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{
		Importer: importer.ForCompiler(fset, "gc", exportLookup(exports, importMap)),
	}
	tpkg, err := conf.Check(importPath, fset, astFiles, info)
	if err != nil {
		return nil, fmt.Errorf("type-check %s: %w", importPath, err)
	}
	return &Package{
		Path:  importPath,
		Dir:   dir,
		Fset:  fset,
		Files: astFiles,
		Types: tpkg,
		Info:  info,
	}, nil
}

// TypeCheckVetUnit type-checks one package from a go vet -vettool
// config: source files plus the export-data and import-path maps the go
// command computed for the build.
func TypeCheckVetUnit(importPath, dir string, goFiles []string, packageFile, importMap map[string]string) (*Package, error) {
	return typeCheck(importPath, dir, goFiles, packageFile, importMap)
}

// ModuleRoot walks up from dir to the directory containing go.mod.
func ModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod above %s", dir)
		}
		dir = parent
	}
}
