package analysis

import (
	"go/ast"
	"go/types"
	"strings"
)

// SeededRand forbids the global math/rand top-level functions in
// non-test code, everywhere. The package-level source is process-wide
// mutable state: any draw perturbs every other consumer's stream, which
// breaks the byte-reproducibility contract (same config + seed => same
// bytes) that the synth corpus, the determinism tests, and the wire
// fixtures all rely on. Randomness must flow from an explicit seeded
// *rand.Rand threaded out of a Config (see mpisim.Config.Seed and
// prof.Config.Seed for the pattern); rand.New/rand.NewSource are
// therefore allowed — they are how such streams are built.
var SeededRand = &Analyzer{
	Name: "seededrand",
	Doc: "forbids global math/rand top-level functions (rand.Intn, rand.Float64, " +
		"rand.Shuffle, ...) outside tests; thread a seeded *rand.Rand from config instead",
	Run: runSeededRand,
}

func runSeededRand(pass *Pass) error {
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			path := fn.Pkg().Path()
			if path != "math/rand" && path != "math/rand/v2" {
				return true
			}
			sig, ok := fn.Type().(*types.Signature)
			if !ok || sig.Recv() != nil {
				return true // methods on *rand.Rand are the sanctioned API
			}
			if strings.HasPrefix(fn.Name(), "New") {
				return true // constructors build the seeded streams we want
			}
			pass.Reportf(sel.Pos(), "global %s.%s draws from process-wide shared state and breaks seeded "+
				"reproducibility; thread a seeded *rand.Rand from config instead", path, fn.Name())
			return true
		})
	}
	return nil
}
