// Package analysis is the invariant linter: a small, dependency-free
// counterpart of golang.org/x/tools/go/analysis that machine-checks the
// contracts this codebase lives by — deterministic wire output
// (maporder), a virtual-time-only simulator core (walltime), seeded
// randomness threaded from config (seededrand), and allocation-free
// annotated hot paths (hotpath).
//
// The framework deliberately mirrors the go/analysis surface (Analyzer,
// Pass, Reportf) so the passes could be ported onto x/tools verbatim if
// the dependency ever becomes available; the loader (load.go) and the
// cmd/scalana-lint driver stand in for go/packages and multichecker
// using only the standard library plus the go tool itself.
//
// # Suppressions
//
// A diagnostic can be silenced with a control comment on the flagged
// line or on the line directly above it:
//
//	//scalana:allow maporder keys are render-only, order checked by golden test
//
// The first word after "allow" names the analyzer; everything after it
// is a mandatory human-readable justification. Suppressions without a
// justification are themselves reported.
//
// # The //scalana:hot annotation
//
// A function whose doc comment contains a line "//scalana:hot" opts into
// the hotpath analyzer's allocation contract; see hotpath.go for the
// checked construct list and DESIGN.md §12 for the grammar.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer is one invariant check. The shape mirrors
// golang.org/x/tools/go/analysis.Analyzer.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics and suppressions.
	Name string
	// Doc is the one-paragraph description the driver prints.
	Doc string
	// Run inspects the package and reports findings via pass.Reportf.
	Run func(*Pass) error
}

// Diagnostic is one reported finding.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s: %s", d.Pos, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one type-checked package.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	diags *[]Diagnostic
	allow allowIndex
}

// Reportf records a diagnostic at pos unless a //scalana:allow control
// comment suppresses it.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	posn := p.Fset.Position(pos)
	if p.allow.allows(posn, p.Analyzer.Name) {
		return
	}
	*p.diags = append(*p.diags, Diagnostic{
		Pos:      posn,
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	})
}

// allowIndex maps file -> line -> analyzer names suppressed on that line.
type allowIndex map[string]map[int]map[string]bool

func (ai allowIndex) allows(posn token.Position, analyzer string) bool {
	lines := ai[posn.Filename]
	if lines == nil {
		return false
	}
	set := lines[posn.Line]
	return set != nil && (set[analyzer] || set["*"])
}

const (
	allowPrefix = "scalana:allow"
	hotMarker   = "scalana:hot"
)

// buildAllowIndex scans every comment for //scalana:allow directives. A
// directive suppresses the named analyzer on its own line and on the
// line immediately below it (so it can sit above the flagged statement).
// Malformed directives (no analyzer, or no justification) are reported
// as diagnostics themselves so they cannot rot silently.
func buildAllowIndex(fset *token.FileSet, files []*ast.File, diags *[]Diagnostic) allowIndex {
	ai := allowIndex{}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimSpace(text)
				if !strings.HasPrefix(text, allowPrefix) {
					continue
				}
				fields := strings.Fields(strings.TrimPrefix(text, allowPrefix))
				posn := fset.Position(c.Pos())
				if len(fields) < 2 {
					*diags = append(*diags, Diagnostic{
						Pos:      posn,
						Analyzer: "allow",
						Message:  "malformed //scalana:allow: want \"//scalana:allow <analyzer> <justification>\"",
					})
					continue
				}
				lines := ai[posn.Filename]
				if lines == nil {
					lines = map[int]map[string]bool{}
					ai[posn.Filename] = lines
				}
				for _, line := range []int{posn.Line, posn.Line + 1} {
					set := lines[line]
					if set == nil {
						set = map[string]bool{}
						lines[line] = set
					}
					set[fields[0]] = true
				}
			}
		}
	}
	return ai
}

// IsHot reports whether the function declaration carries the
// //scalana:hot annotation in its doc comment.
func IsHot(decl *ast.FuncDecl) bool {
	if decl.Doc == nil {
		return false
	}
	for _, c := range decl.Doc.List {
		text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
		if text == hotMarker {
			return true
		}
	}
	return false
}

// RunAnalyzers executes the given analyzers over one loaded package and
// returns the surviving diagnostics sorted by position.
func RunAnalyzers(pkg *Package, analyzers []*Analyzer) ([]Diagnostic, error) {
	var diags []Diagnostic
	allow := buildAllowIndex(pkg.Fset, pkg.Files, &diags)
	for _, a := range analyzers {
		pass := &Pass{
			Analyzer:  a,
			Fset:      pkg.Fset,
			Files:     pkg.Files,
			Pkg:       pkg.Types,
			TypesInfo: pkg.Info,
			diags:     &diags,
			allow:     allow,
		}
		if err := a.Run(pass); err != nil {
			return nil, fmt.Errorf("%s: analyzer %s: %w", pkg.Path, a.Name, err)
		}
	}
	SortDiagnostics(diags)
	return diags, nil
}

// SortDiagnostics orders diagnostics by file, line, column, analyzer.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
}

// All returns the full analyzer suite in deterministic order.
func All() []*Analyzer {
	return []*Analyzer{MapOrder, WallTime, SeededRand, HotPath}
}
