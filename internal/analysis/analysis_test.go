package analysis

import (
	"go/ast"
	"go/parser"
	"go/token"
	"strings"
	"testing"
)

// Malformed //scalana:allow directives (missing analyzer name or
// justification) must be reported, not silently ignored: a suppression
// without a reason rots into permanent blindness.
func TestMalformedAllowReported(t *testing.T) {
	const src = `package p

func f() {
	//scalana:allow maporder
	_ = 0
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	ai := buildAllowIndex(fset, []*ast.File{f}, &diags)
	if len(diags) != 1 {
		t.Fatalf("got %d diagnostics, want 1: %v", len(diags), diags)
	}
	if !strings.Contains(diags[0].Message, "malformed //scalana:allow") {
		t.Errorf("unexpected message: %s", diags[0].Message)
	}
	if ai.allows(token.Position{Filename: "p.go", Line: 5}, "maporder") {
		t.Error("malformed directive must not register a suppression")
	}
}

// A well-formed directive suppresses the named analyzer on its own line
// and the line below, and nothing else.
func TestAllowIndexScope(t *testing.T) {
	const src = `package p

func f() {
	//scalana:allow walltime justified for the test harness
	_ = 0
}
`
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "p.go", src, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var diags []Diagnostic
	ai := buildAllowIndex(fset, []*ast.File{f}, &diags)
	if len(diags) != 0 {
		t.Fatalf("unexpected diagnostics: %v", diags)
	}
	for _, line := range []int{4, 5} {
		if !ai.allows(token.Position{Filename: "p.go", Line: line}, "walltime") {
			t.Errorf("line %d: walltime should be suppressed", line)
		}
	}
	if ai.allows(token.Position{Filename: "p.go", Line: 5}, "maporder") {
		t.Error("suppression must be analyzer-specific")
	}
	if ai.allows(token.Position{Filename: "p.go", Line: 6}, "walltime") {
		t.Error("suppression must not extend two lines down")
	}
}
