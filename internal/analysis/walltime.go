package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// WallTime enforces the PR 7 cooperative-scheduler contract: inside the
// simulator core, time is virtual and scheduling is a baton handoff over
// per-rank condition variables. Wall-clock reads, timers, channels, and
// select would reintroduce the nondeterminism (goroutine wakeup order,
// timer jitter) the scheduler was built to eliminate, so none of them
// may appear in the restricted packages' non-test code.
var WallTime = &Analyzer{
	Name: "walltime",
	Doc: "forbids wall-clock time (time.Now/After/Sleep/Timer/Ticker) and " +
		"channel/select constructs in the simulator core packages " +
		"(" + strings.Join(WallTimePackages, ", ") + "): simulation runs on " +
		"virtual time under the cooperative scheduler only",
	Run: runWallTime,
}

// WallTimePackages lists the final import-path segments of the packages
// the walltime contract covers.
var WallTimePackages = []string{"mpisim", "vm"}

// forbiddenTimeNames are the wall-clock members of package time.
// time.Duration stays legal: it is a unit, not a clock.
var forbiddenTimeNames = map[string]bool{
	"Now": true, "Since": true, "Until": true, "After": true,
	"AfterFunc": true, "Tick": true, "NewTimer": true, "NewTicker": true,
	"Sleep": true, "Timer": true, "Ticker": true,
}

func walltimeRestricted(pkgPath string) bool {
	seg := pkgPath
	if i := strings.LastIndexByte(pkgPath, '/'); i >= 0 {
		seg = pkgPath[i+1:]
	}
	for _, p := range WallTimePackages {
		if seg == p {
			return true
		}
	}
	return false
}

func runWallTime(pass *Pass) error {
	if !walltimeRestricted(pass.Pkg.Path()) {
		return nil
	}
	pkg := pass.Pkg.Name()
	for _, file := range pass.Files {
		ast.Inspect(file, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ChanType:
				pass.Reportf(n.Pos(), "channel type in package %s: the cooperative scheduler contract allows "+
					"no channels in the simulator core (use the baton handoff / sync.Cond machinery)", pkg)
			case *ast.SelectStmt:
				pass.Reportf(n.Pos(), "select in package %s: the cooperative scheduler contract allows no "+
					"channel operations in the simulator core", pkg)
			case *ast.SendStmt:
				pass.Reportf(n.Pos(), "channel send in package %s: the cooperative scheduler contract allows "+
					"no channel operations in the simulator core", pkg)
			case *ast.UnaryExpr:
				if n.Op == token.ARROW {
					pass.Reportf(n.Pos(), "channel receive in package %s: the cooperative scheduler contract "+
						"allows no channel operations in the simulator core", pkg)
				}
			case *ast.SelectorExpr:
				if id, ok := n.X.(*ast.Ident); ok {
					if pn, ok := pass.TypesInfo.Uses[id].(*types.PkgName); ok &&
						pn.Imported().Path() == "time" && forbiddenTimeNames[n.Sel.Name] {
						pass.Reportf(n.Pos(), "time.%s in package %s: simulation must run on virtual time only "+
							"(wall clocks and timers reintroduce the nondeterminism the scheduler removed)",
							n.Sel.Name, pkg)
					}
				}
			}
			return true
		})
	}
	return nil
}
