// Package hotpath exercises the hotpath analyzer: functions annotated
// //scalana:hot are checked for allocation-prone constructs; panic
// arguments are failure-path exempt; //scalana:allow suppresses with a
// justification.
package hotpath

import "fmt"

type state struct {
	name string
}

// cold is unannotated: nothing here is checked.
func cold() string {
	return fmt.Sprintf("%d", 42)
}

// step is on the steady-state path.
//
//scalana:hot
func step(s *state, n int) {
	msg := fmt.Sprintf("step %d", n) // want `fmt.Sprintf in hot path step allocates`
	_ = msg
	s.name = s.name + "!" // want `string concatenation in hot path step allocates`
	m := map[int]int{}    // want `map literal in hot path step allocates`
	_ = m
	sl := []int{n} // want `slice literal in hot path step allocates`
	_ = sl
	f := func() int { return n } // want `closure in hot path step captures n`
	_ = f
	var sink interface{}
	sink = n // want `assignment boxes a non-pointer value into an interface in hot path step`
	_ = sink
}

// crash may build its message: panic arguments are failure-path exempt
// (a once-per-process crash message is not a steady-state allocation).
//
//scalana:hot
func crash(s *state) {
	if s == nil {
		panic(fmt.Sprintf("nil state at step %s", "init"))
	}
	_ = s.name
}

// suppressed demonstrates the //scalana:allow escape hatch: analyzer
// name plus a mandatory justification silences the diagnostic on the
// line below.
//
//scalana:hot
func suppressed(n int) {
	//scalana:allow hotpath one-time warmup path, measured alloc-free afterwards
	_ = fmt.Sprint(n)
}
