// Package maporder exercises the maporder analyzer: range-over-map
// feeding order-sensitive consumers. The expectations in the `want`
// comments are regular expressions matched against diagnostics reported
// on the same line.
package maporder

import (
	"fmt"
	"sort"
)

type record struct {
	Key   string
	Count int
}

// commLessBug reconstructs the PR 6 commLess bug shape: records are
// appended in map iteration order and then sorted with a comparator that
// is not total over the records (ties on Count keep their insertion —
// i.e. map — order), so the output bytes differ run to run.
func commLessBug(m map[string]record) []record {
	var out []record
	for _, rec := range m {
		out = append(out, rec) // want `append to out inside a map range captures map iteration order`
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Count < out[j].Count })
	return out
}

// encodeUnsorted prints straight out of the map.
func encodeUnsorted(m map[string]int) {
	for k, v := range m {
		fmt.Printf("%s=%d\n", k, v) // want `map iteration order reaches fmt.Printf`
	}
}

// sumUnsorted accumulates a float across the map: FP addition is not
// associative, so the total depends on visit order.
func sumUnsorted(m map[string]float64) float64 {
	total := 0.0
	for _, v := range m {
		total += v // want `float accumulation into total`
	}
	return total
}

// keysNeverSorted collects the keys but never sorts them.
func keysNeverSorted(m map[string]int) []string {
	var keys []string
	for k := range m {
		keys = append(keys, k) // want `map keys appended to keys are never sorted`
	}
	return keys
}

// sortedKeys is the sanctioned idiom — collect the keys, sort them, then
// index the map — and must stay diagnostic-free.
func sortedKeys(m map[string]int) []int {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]int, 0, len(keys))
	for _, k := range keys {
		out = append(out, m[k])
	}
	return out
}
