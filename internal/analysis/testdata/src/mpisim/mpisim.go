// Package mpisim exercises the walltime analyzer: the directory name
// matches a restricted simulator-core package segment, so wall-clock
// reads and channel machinery are forbidden here.
package mpisim

import "time"

// virtualDelay is legal: time.Duration is a unit, not a clock.
func virtualDelay(d time.Duration) float64 { return d.Seconds() }

func wallClock() time.Time {
	return time.Now() // want `time.Now in package mpisim`
}

func sleeps() {
	time.Sleep(1) // want `time.Sleep in package mpisim`
}

func makesChannel() {
	ch := make(chan int) // want `channel type in package mpisim`
	ch <- 1              // want `channel send in package mpisim`
	<-ch                 // want `channel receive in package mpisim`
}

func selects(ch chan int) { // want `channel type in package mpisim`
	select { // want `select in package mpisim`
	case <-ch: // want `channel receive in package mpisim`
	default:
	}
}
