// Package seededrand exercises the seededrand analyzer: global
// math/rand draws are forbidden; explicit seeded streams are the
// sanctioned replacement.
package seededrand

import "math/rand"

func globalDraws() (int, float64) {
	n := rand.Intn(10)  // want `global math/rand.Intn draws from process-wide shared state`
	f := rand.Float64() // want `global math/rand.Float64 draws from process-wide shared state`
	return n, f
}

// seeded is the sanctioned pattern: an explicit stream built from a
// config-provided seed. Constructors and *rand.Rand methods are legal.
func seeded(seed int64) float64 {
	r := rand.New(rand.NewSource(seed))
	return r.Float64()
}
