package analysis

// Fixture-driven analyzer tests in the style of x/tools' analysistest:
// each package under testdata/src carries `// want `regexp`` comments on
// the lines where diagnostics are expected. The runner loads the fixture
// module with the real loader, runs the full analyzer suite, and demands
// an exact match: every diagnostic needs a want, every want needs a
// diagnostic.

import (
	"fmt"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var wantArgRe = regexp.MustCompile("`([^`]*)`")

func TestFixtures(t *testing.T) {
	for _, dir := range []string{"maporder", "mpisim", "seededrand", "hotpath"} {
		t.Run(dir, func(t *testing.T) { runFixture(t, dir) })
	}
}

func runFixture(t *testing.T, dir string) {
	root, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := Load(root, "./"+dir)
	if err != nil {
		t.Fatalf("load fixture %s: %v", dir, err)
	}
	if len(pkgs) != 1 {
		t.Fatalf("load fixture %s: got %d packages, want 1", dir, len(pkgs))
	}
	pkg := pkgs[0]

	wants := collectWants(t, pkg)
	diags, err := RunAnalyzers(pkg, All())
	if err != nil {
		t.Fatal(err)
	}

	matched := map[string][]bool{}
	for key, res := range wants {
		matched[key] = make([]bool, len(res))
	}
	for _, d := range diags {
		key := fmt.Sprintf("%s:%d", filepath.Base(d.Pos.Filename), d.Pos.Line)
		ok := false
		for i, re := range wants[key] {
			if !matched[key][i] && re.MatchString(d.Message) {
				matched[key][i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("unexpected diagnostic at %s: %s: %s", key, d.Analyzer, d.Message)
		}
	}
	for key, res := range wants {
		for i, re := range res {
			if !matched[key][i] {
				t.Errorf("no diagnostic at %s matching %q", key, re)
			}
		}
	}
}

// collectWants gathers `// want `re` `re`...` expectations keyed by
// "file.go:line".
func collectWants(t *testing.T, pkg *Package) map[string][]*regexp.Regexp {
	t.Helper()
	wants := map[string][]*regexp.Regexp{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if !strings.HasPrefix(text, "want ") {
					continue
				}
				posn := pkg.Fset.Position(c.Pos())
				key := fmt.Sprintf("%s:%d", filepath.Base(posn.Filename), posn.Line)
				args := wantArgRe.FindAllStringSubmatch(text, -1)
				if len(args) == 0 {
					t.Fatalf("%s: want comment without a backquoted pattern: %s", key, c.Text)
				}
				for _, m := range args {
					re, err := regexp.Compile(m[1])
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", key, m[1], err)
					}
					wants[key] = append(wants[key], re)
				}
			}
		}
	}
	return wants
}
