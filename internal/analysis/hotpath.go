package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
)

// HotPath checks functions annotated with a `//scalana:hot` doc-comment
// line against the steady-state zero-allocation contract the AllocsPerRun
// gates assert dynamically (sampler Advance, scheduler heap, VM dispatch,
// mpisim emit). The pass is syntactic and per-function: it flags the
// allocation-prone constructs that have historically crept into these
// paths —
//
//   - calls into package fmt (every call allocates for its variadic box);
//   - string concatenation (+ / +=) — builds a new backing array;
//   - map and slice composite literals (struct and array literals are
//     stack-friendly and stay legal);
//   - closures that capture variables (the captured environment and
//     often the variable itself move to the heap);
//   - boxing a non-pointer-shaped value into an interface, whether by
//     explicit conversion, assignment, or argument passing.
//
// Failure paths are exempt: any expression that is (transitively) an
// argument of panic(...) is skipped, since a once-per-process crash
// message is not a steady-state allocation. Outline the panic into a
// //go:noinline helper instead when the hot function must stay within
// the inlining budget (see vm.badNum).
var HotPath = &Analyzer{
	Name: "hotpath",
	Doc: "checks //scalana:hot annotated functions for allocation-prone constructs: " +
		"fmt calls, string concatenation, map/slice literals, capturing closures, " +
		"and interface boxing of non-pointer values",
	Run: runHotPath,
}

func runHotPath(pass *Pass) error {
	for _, file := range pass.Files {
		for _, decl := range file.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || !IsHot(fd) {
				continue
			}
			checkHotFunc(pass, fd)
		}
	}
	return nil
}

func checkHotFunc(pass *Pass, fd *ast.FuncDecl) {
	name := fd.Name.Name
	var walk func(n ast.Node)
	walk = func(n ast.Node) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.CallExpr:
				if isPanicCall(pass, m) {
					return false // failure path: arguments feed a crash message
				}
				checkHotCall(pass, m, name)
			case *ast.BinaryExpr:
				if m.Op == token.ADD && isStringType(pass.TypesInfo.TypeOf(m)) {
					pass.Reportf(m.Pos(), "string concatenation in hot path %s allocates; "+
						"precompute the string or write into a reused buffer", name)
				}
			case *ast.AssignStmt:
				checkHotAssign(pass, m, name)
			case *ast.CompositeLit:
				switch pass.TypesInfo.TypeOf(m).Underlying().(type) {
				case *types.Map:
					pass.Reportf(m.Pos(), "map literal in hot path %s allocates; hoist it to a package "+
						"variable or reuse per-instance state", name)
				case *types.Slice:
					pass.Reportf(m.Pos(), "slice literal in hot path %s allocates; hoist it to a package "+
						"variable or reuse per-instance state", name)
				}
			case *ast.FuncLit:
				if captured := capturedVar(pass, m); captured != nil {
					pass.Reportf(m.Pos(), "closure in hot path %s captures %s, forcing a heap allocation "+
						"for the environment; pass state explicitly or hoist the function", name, captured.Name())
				}
				walk(m.Body)
				return false
			}
			return true
		})
	}
	walk(fd.Body)
}

func isPanicCall(pass *Pass, call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "panic" {
		return false
	}
	_, isBuiltin := pass.TypesInfo.Uses[id].(*types.Builtin)
	return isBuiltin
}

func isStringType(t types.Type) bool {
	basic, ok := t.(*types.Basic)
	return ok && basic.Info()&types.IsString != 0
}

// checkHotCall flags fmt.* calls and interface boxing of arguments.
func checkHotCall(pass *Pass, call *ast.CallExpr, name string) {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
		if fn, ok := pass.TypesInfo.Uses[sel.Sel].(*types.Func); ok &&
			fn.Pkg() != nil && fn.Pkg().Path() == "fmt" {
			pass.Reportf(call.Pos(), "fmt.%s in hot path %s allocates (variadic boxing plus formatting "+
				"buffers); outline it behind a //go:noinline helper or precompute", fn.Name(), name)
			return // don't double-report its args as interface boxing
		}
	}
	// Explicit conversion to an interface type.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if boxes(pass.TypesInfo.TypeOf(call.Fun), pass.TypesInfo.TypeOf(call.Args[0])) {
			pass.Reportf(call.Pos(), "conversion to interface in hot path %s boxes a non-pointer value "+
				"on the heap", name)
		}
		return
	}
	// Implicit boxing at call boundaries: concrete non-pointer argument
	// passed to an interface-typed parameter.
	sig, ok := pass.TypesInfo.TypeOf(call.Fun).(*types.Signature)
	if !ok {
		return
	}
	params := sig.Params()
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case i < params.Len()-1 || (i < params.Len() && !sig.Variadic()):
			pt = params.At(i).Type()
		case sig.Variadic() && params.Len() > 0:
			if call.Ellipsis != token.NoPos {
				continue // s... passes the slice through, no per-element boxing
			}
			pt = params.At(params.Len() - 1).Type().(*types.Slice).Elem()
		default:
			continue
		}
		if boxes(pt, pass.TypesInfo.TypeOf(arg)) {
			pass.Reportf(arg.Pos(), "argument boxes a non-pointer value into interface parameter in hot "+
				"path %s; use a concrete parameter type or pass a pointer", name)
		}
	}
}

// checkHotAssign flags string += and interface boxing through assignment.
func checkHotAssign(pass *Pass, as *ast.AssignStmt, name string) {
	if as.Tok == token.ADD_ASSIGN && len(as.Lhs) == 1 && isStringType(pass.TypesInfo.TypeOf(as.Lhs[0])) {
		pass.Reportf(as.Pos(), "string concatenation in hot path %s allocates; "+
			"precompute the string or write into a reused buffer", name)
		return
	}
	if as.Tok != token.ASSIGN && as.Tok != token.DEFINE {
		return
	}
	if len(as.Lhs) != len(as.Rhs) {
		return
	}
	for i := range as.Lhs {
		if boxes(pass.TypesInfo.TypeOf(as.Lhs[i]), pass.TypesInfo.TypeOf(as.Rhs[i])) {
			pass.Reportf(as.Rhs[i].Pos(), "assignment boxes a non-pointer value into an interface in hot "+
				"path %s; store a pointer or a concrete type", name)
		}
	}
}

// boxes reports whether assigning a value of type from to a location of
// type to heap-boxes it: to is an interface, from is concrete, and from
// is not pointer-shaped (pointers, channels, maps, funcs, and unsafe
// pointers fit in the interface word without allocating).
func boxes(to, from types.Type) bool {
	if to == nil || from == nil {
		return false
	}
	if _, ok := to.Underlying().(*types.Interface); !ok {
		return false
	}
	if _, ok := from.Underlying().(*types.Interface); ok {
		return false // interface-to-interface copies the word pair
	}
	switch u := from.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature:
		return false
	case *types.Basic:
		if u.Kind() == types.UnsafePointer || u.Kind() == types.UntypedNil {
			return false
		}
	}
	return true
}

// capturedVar returns a variable the closure captures from an enclosing
// scope (package-level state is not a capture), or nil.
func capturedVar(pass *Pass, lit *ast.FuncLit) *types.Var {
	var captured *types.Var
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		if v.Parent() == nil || v.Parent() == pass.Pkg.Scope() || v.Parent() == types.Universe {
			return true
		}
		if declaredWithin(v, lit) {
			return true
		}
		captured = v
		return false
	})
	return captured
}
