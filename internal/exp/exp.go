// Package exp regenerates every table and figure of the paper's
// evaluation (§VI) plus the illustrative figures (§II-III), using the
// full pipeline: MiniMP apps on the simulator, the three tools, PPG
// assembly, and detection. Each experiment renders a textual table or
// chart and returns machine-readable values for the bench harness.
package exp

import (
	"fmt"
	"sort"
	"strings"

	"scalana/internal/detect"
	"scalana/internal/par"
	"scalana/internal/prof"
	"scalana/internal/psg"

	scalana "scalana"
)

// eng is the package-wide sweep engine. Every experiment compiles
// through its cache, so each (app, PSG options) pair is parsed and
// contracted once per process no matter how many experiments — possibly
// running concurrently via RunAll — touch it.
var eng = scalana.NewEngine()

// Result is one regenerated experiment.
type Result struct {
	ID    string
	Title string
	Text  string
	// Values holds headline numbers keyed by metric name, for benches and
	// tests (e.g. "overhead_scalana_pct").
	Values map[string]float64
}

func newResult(id, title string) *Result {
	return &Result{ID: id, Title: title, Values: map[string]float64{}}
}

func (r *Result) addf(format string, args ...any) {
	r.Text += fmt.Sprintf(format, args...)
}

// Experiment is a registered experiment generator.
type Experiment struct {
	ID    string
	Title string
	Run   func() (*Result, error)
}

var experiments []Experiment

func registerExp(id, title string, run func() (*Result, error)) {
	experiments = append(experiments, Experiment{ID: id, Title: title, Run: run})
}

// All returns every registered experiment in paper order.
func All() []Experiment {
	out := append([]Experiment(nil), experiments...)
	sort.SliceStable(out, func(i, j int) bool { return orderOf(out[i].ID) < orderOf(out[j].ID) })
	return out
}

// Get returns the experiment with the given id, or nil.
func Get(id string) *Experiment {
	for i := range experiments {
		if experiments[i].ID == id {
			return &experiments[i]
		}
	}
	return nil
}

// RunAll executes the given experiments on at most parallelism workers
// (0 = one per CPU, 1 = one experiment at a time) and returns their
// results in input order. All experiments share the package engine's compile cache.
// Experiments are independent, so a failure does not stop the others:
// on error, the returned slice still carries every completed result
// (failed slots are nil) alongside the lowest-indexed failure.
func RunAll(exps []Experiment, parallelism int) ([]*Result, error) {
	results := make([]*Result, len(exps))
	errs := make([]error, len(exps))
	par.ForEach(len(exps), parallelism, func(i int) {
		res, err := exps[i].Run()
		if err != nil {
			errs[i] = fmt.Errorf("%s: %w", exps[i].ID, err)
			return
		}
		results[i] = res
	})
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

func orderOf(id string) int {
	order := []string{"table1", "fig2", "fig4", "fig6", "fig7", "fig8",
		"table2", "table3", "fig10", "fig11", "table4",
		"fig12", "fig13", "fig14", "fig15", "fig16", "synth"}
	for i, x := range order {
		if x == id {
			return i
		}
	}
	return len(order)
}

// ---- shared helpers ----

// sweepProf is the profiling configuration used for detection-quality
// experiments: a higher sampling rate than the paper's 200 Hz keeps the
// short simulated runs statistically stable (overhead experiments use the
// paper's 200 Hz instead).
func sweepProf() prof.Config {
	cfg := prof.DefaultConfig()
	cfg.SampleHz = 5000
	return cfg
}

// sweep runs a multi-scale profiling sweep through the shared engine:
// one compile per app, scales fanned out across the CPU-bounded pool.
func sweep(app *scalana.App, nps []int) ([]detect.ScaleRun, error) {
	return eng.Sweep(app, nps, scalana.SweepConfig{Prof: sweepProf()})
}

// runTools executes app at np with no tool and with each of the three
// registry-resolved comparison tools, returning overhead percentages and
// storage bytes keyed by registered tool name.
func runTools(app *scalana.App, np int) (ovh map[string]float64, storage map[string]int64, err error) {
	base, err := eng.Run(scalana.RunConfig{App: app, NP: np})
	if err != nil {
		return nil, nil, err
	}
	ovh = map[string]float64{}
	storage = map[string]int64{}
	for _, name := range []string{"scalana", "hpctk", "tracer"} {
		out, err := eng.Run(scalana.RunConfig{App: app, NP: np, ToolName: name})
		if err != nil {
			return nil, nil, fmt.Errorf("%s with %s: %w", app.Name, name, err)
		}
		ovh[name] = 100 * (out.Result.Elapsed - base.Result.Elapsed) / base.Result.Elapsed
		storage[name] = out.StorageBytes()
	}
	return ovh, storage, nil
}

// scalesFor returns the np sweep for an app, honoring its minimum.
func scalesFor(app *scalana.App, nps []int) []int {
	var out []int
	for _, np := range nps {
		if np >= app.MinNP {
			out = append(out, np)
		}
	}
	return out
}

// describeVertex renders a vertex with its source position and snippet.
func describeVertex(v *psg.Vertex, app *scalana.App) string {
	prog, err := app.Parse()
	line := ""
	if err == nil {
		line = strings.TrimSpace(prog.SourceLine(v.Pos.Line))
	}
	return fmt.Sprintf("%s %s at %s:%d  | %s", v.Kind, v.Name, v.Pos.File, v.Pos.Line, line)
}

// renderPaths renders backtracking paths with source lines.
func renderPaths(rep *detect.Report, app *scalana.App, maxPaths int) string {
	var sb strings.Builder
	prog, _ := app.Parse()
	for i, p := range rep.Paths {
		if i >= maxPaths {
			fmt.Fprintf(&sb, "  ... and %d more paths\n", len(rep.Paths)-maxPaths)
			break
		}
		fmt.Fprintf(&sb, "  path %d:\n", i+1)
		for _, s := range p.Steps {
			snippet := ""
			if prog != nil {
				snippet = strings.TrimSpace(prog.SourceLine(s.Vertex.Pos.Line))
			}
			extra := ""
			if s.Via == detect.ViaComm {
				extra = fmt.Sprintf(" (waited %.3fms)", s.Wait*1e3)
			}
			fmt.Fprintf(&sb, "    %-7s rank %-3d %-6s %s:%d%s  | %s\n",
				s.Via, s.Rank, s.Vertex.Kind, s.Vertex.Pos.File, s.Vertex.Pos.Line, extra, snippet)
		}
		if p.Cause != nil {
			fmt.Fprintf(&sb, "    => cause: %s\n", describeVertex(p.Cause.Vertex, app))
		}
	}
	return sb.String()
}
