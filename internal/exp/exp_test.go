package exp

import (
	"strings"
	"testing"
)

func runExp(t *testing.T, id string) *Result {
	t.Helper()
	e := Get(id)
	if e == nil {
		t.Fatalf("experiment %q not registered", id)
	}
	res, err := e.Run()
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	if res.Text == "" {
		t.Fatalf("%s produced no output", id)
	}
	return res
}

func TestRegistryCompleteAndOrdered(t *testing.T) {
	want := []string{"table1", "fig2", "fig4", "fig6", "fig7", "fig8",
		"table2", "table3", "fig10", "fig11", "table4",
		"fig12", "fig13", "fig14", "fig15", "fig16", "synth"}
	all := All()
	if len(all) != len(want) {
		t.Fatalf("%d experiments registered, want %d", len(all), len(want))
	}
	for i, e := range all {
		if e.ID != want[i] {
			t.Errorf("experiment %d = %s, want %s", i, e.ID, want[i])
		}
	}
	if Get("nope") != nil {
		t.Error("unknown id should be nil")
	}
}

func TestFig4Experiment(t *testing.T) {
	res := runExp(t, "fig4")
	if res.Values["vertices_after"] >= res.Values["vertices_before"] {
		t.Errorf("contraction did not shrink the example graph: %v", res.Values)
	}
	if res.Values["loops_after"] != 1 {
		t.Errorf("contracted example should keep exactly Loop 1: %v", res.Values)
	}
	for _, want := range []string{"local PSGs", "complete PSG", "contracted PSG"} {
		if !strings.Contains(res.Text, want) {
			t.Errorf("fig4 output missing %q", want)
		}
	}
}

func TestTable2Experiment(t *testing.T) {
	res := runExp(t, "table2")
	if res.Values["contraction_reduction_pct"] <= 0 {
		t.Errorf("no contraction reduction: %v", res.Values)
	}
	if res.Values["comp_mpi_share_pct"] < 50 {
		t.Errorf("Comp+MPI share too low: %v", res.Values)
	}
	for _, name := range []string{"cg", "zeusmp", "nekbone"} {
		if res.Values["vac_"+name] <= 0 {
			t.Errorf("missing vertex count for %s", name)
		}
	}
}

func TestFig2Experiment(t *testing.T) {
	res := runExp(t, "fig2")
	if res.Values["delay_found"] != 1 {
		t.Errorf("injected delay not found:\n%s", res.Text)
	}
}

func TestSynthExperiment(t *testing.T) {
	res := runExp(t, "synth")
	if res.Values["top1_accuracy"] < 0.8 {
		t.Errorf("synthetic-corpus top-1 localization accuracy %.2f below 0.8:\n%s",
			res.Values["top1_accuracy"], res.Text)
	}
	if !strings.Contains(res.Text, "localization accuracy by defect archetype") {
		t.Error("synth experiment output missing the accuracy table")
	}
}

func TestFig8Experiment(t *testing.T) {
	res := runExp(t, "fig8")
	if res.Values["paths"] == 0 {
		t.Error("no backtracking paths")
	}
	if res.Values["abnormal"] == 0 {
		t.Error("imbalanced stencil produced no abnormal vertices")
	}
}
