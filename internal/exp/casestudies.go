package exp

import (
	"fmt"
	"math"
	"strings"

	"scalana/internal/detect"
	"scalana/internal/fit"
	"scalana/internal/machine"
	"scalana/internal/psg"
	"scalana/internal/report"

	scalana "scalana"
)

func init() {
	registerExp("fig2", "Fig. 2: motivating example, injected delay in NPB-CG found by backtracking", fig2)
	registerExp("fig7", "Fig. 7: non-scalable and abnormal vertex examples", fig7)
	registerExp("fig8", "Fig. 8: problematic vertices and backtracking on the PPG", fig8)
	registerExp("fig12", "Fig. 12: Zeus-MP root-cause paths and optimization speedup", fig12)
	registerExp("fig13", "Fig. 13: Zeus-MP runtime/storage overhead of the three tools", fig13)
	registerExp("fig14", "Fig. 14: SST root-cause paths and optimization", fig14)
	registerExp("fig15", "Fig. 15: SST per-rank TOT_INS before/after the fix", fig15)
	registerExp("fig16", "Fig. 16: Nekbone PMU data before/after the fix", fig16)
}

// caseStudy runs detection for an app and returns the report plus the
// largest-scale run output.
func caseStudy(name string, nps []int) (*detect.Report, []detect.ScaleRun, error) {
	app := scalana.GetApp(name)
	runs, err := sweep(app, scalesFor(app, nps))
	if err != nil {
		return nil, nil, err
	}
	rep, err := scalana.DetectScalingLoss(runs, detect.Config{})
	if err != nil {
		return nil, nil, err
	}
	return rep, runs, nil
}

func fig2() (*Result, error) {
	r := newResult("fig2", "Fig. 2: injected delay on rank 4 of NPB-CG, np=8")
	app := scalana.GetApp("cg-delay")
	rep, _, err := caseStudy("cg-delay", []int{4, 8})
	if err != nil {
		return nil, err
	}
	r.addf("abnormal vertices (cross-process comparison):\n")
	for _, ab := range rep.Abnormal {
		r.addf("  %-34s ratio=%-8s outlier ranks=%v\n", ab.VertexKey, ratioStr(ab.Ratio), ab.OutlierRanks)
	}
	r.addf("\nbacktracking root cause detection:\n%s", renderPaths(rep, app, 4))

	found := 0.0
	for _, c := range rep.Causes {
		if c.Vertex.Kind == psg.KindComp {
			prog, _ := app.Parse()
			// The cause vertex merges the rank-4 branch with the injected
			// compute; either source line identifies it.
			for l := c.Vertex.Pos.Line; l <= c.Vertex.Pos.Line+1 && found == 0; l++ {
				if strings.Contains(prog.SourceLine(l), "injected") {
					found = 1
					r.addf("\n=> injected delay located: %s\n", describeVertex(c.Vertex, app))
				}
			}
		}
	}
	r.Values["delay_found"] = found
	return r, nil
}

func fig7() (*Result, error) {
	r := newResult("fig7", "Fig. 7: problematic vertex examples")
	// (a) non-scalable vertex: CG sweep; the rho Allreduce stops scaling
	// while compute vertices shrink with np.
	app := scalana.GetApp("cg")
	nps := []int{4, 8, 16, 32, 64}
	runs, err := sweep(app, nps)
	if err != nil {
		return nil, err
	}
	rep, err := scalana.DetectScalingLoss(runs, detect.Config{})
	if err != nil {
		return nil, err
	}
	if len(rep.NonScalable) == 0 {
		return nil, fmt.Errorf("fig7: no non-scalable vertex found in CG sweep")
	}
	ns := rep.NonScalable[0]
	xs := make([]float64, len(nps))
	nsLine := make([]float64, len(nps))
	var compLine []float64
	// Contrast vertex: the heaviest well-scaling Comp vertex.
	compV, _ := heaviestVertex(runs[len(runs)-1], psg.KindComp, machine.TotCyc)
	if compV == nil {
		return nil, fmt.Errorf("fig7: no Comp vertex with attributed time in the CG sweep")
	}
	for i, run := range runs {
		xs[i] = float64(run.NP)
		nsLine[i] = fit.Median(run.PPG.TimeSeries(ns.Vertex.VID)) * 1e3
		compLine = append(compLine, fit.Median(run.PPG.TimeSeries(compV.VID))*1e3)
	}
	r.addf("%s\n", report.Series(
		fmt.Sprintf("(a) median per-rank time (ms) vs np; non-scalable: %s (slope %.2f), scalable: %s",
			ns.VertexKey, ns.Model.B, compV.Key),
		"np", xs, []report.NamedSeries{
			{Name: "non-scalable", Values: nsLine},
			{Name: "scalable comp", Values: compLine},
		}))
	r.Values["nonscalable_slope"] = ns.Model.B

	// (b) abnormal vertex: per-rank times on the imbalanced stencil.
	demo := scalana.GetApp("stencil-demo-imbalanced")
	out, err := eng.Run(scalana.RunConfig{App: demo, NP: 16, Tool: scalana.ToolScalAna, Prof: sweepProf()})
	if err != nil {
		return nil, err
	}
	abV, vals := heaviestVertex(detect.ScaleRun{NP: 16, PPG: out.PPG()}, psg.KindComp, machine.TotCyc)
	if abV == nil {
		return nil, fmt.Errorf("fig7: no Comp vertex with attributed time in the imbalanced stencil run")
	}
	labels := make([]string, len(vals))
	ms := make([]float64, len(vals))
	for i, v := range vals {
		labels[i] = fmt.Sprintf("rank %d", i)
		ms[i] = v * 1e3
	}
	r.addf("%s", report.Bars(fmt.Sprintf("(b) per-rank time (ms) of %s at np=16 (even ranks are abnormal)", abV.Key),
		labels, ms, func(v float64) string { return fmt.Sprintf("%.2f ms", v) }))
	r.Values["abnormal_ratio"] = fit.Max(vals) / fit.Median(vals)
	return r, nil
}

// heaviestVertex returns the vertex of the given kind with the largest
// summed time, plus its per-rank time series.
func heaviestVertex(run detect.ScaleRun, kind psg.Kind, c machine.Counter) (*psg.Vertex, []float64) {
	var best *psg.Vertex
	bestSum := -1.0
	for _, vid := range run.PPG.PresentVIDs() {
		v := run.PPG.PSG.VertexByVID(vid)
		if v == nil || v.Kind != kind {
			continue
		}
		// Skip imbalanced vertices when hunting a "scalable" contrast.
		s := 0.0
		for _, x := range run.PPG.TimeSeries(vid) {
			s += x
		}
		if s > bestSum {
			best, bestSum = v, s
		}
	}
	if best == nil {
		return nil, make([]float64, run.PPG.NP)
	}
	return best, run.PPG.TimeSeries(best.VID)
}

func fig8() (*Result, error) {
	r := newResult("fig8", "Fig. 8: problematic vertices and backtracking, imbalanced stencil, np=8")
	app := scalana.GetApp("stencil-demo-imbalanced")
	rep, _, err := caseStudy("stencil-demo-imbalanced", []int{4, 8})
	if err != nil {
		return nil, err
	}
	r.addf("problematic vertices:\n")
	for _, ns := range rep.NonScalable {
		r.addf("  non-scalable: %-34s slope=%.2f share=%.1f%%\n", ns.VertexKey, ns.Model.B, 100*ns.Share)
	}
	for _, ab := range rep.Abnormal {
		r.addf("  abnormal:     %-34s ratio=%-8s outliers=%v\n", ab.VertexKey, ratioStr(ab.Ratio), ab.OutlierRanks)
	}
	r.addf("\nbacktracking paths:\n%s", renderPaths(rep, app, 4))
	r.Values["paths"] = float64(len(rep.Paths))
	r.Values["abnormal"] = float64(len(rep.Abnormal))
	return r, nil
}

func fig12() (*Result, error) {
	r := newResult("fig12", "Fig. 12: Zeus-MP scaling loss diagnosis and fix")
	app := scalana.GetApp("zeusmp")
	rep, _, err := caseStudy("zeusmp", []int{8, 16, 32, 64, 128})
	if err != nil {
		return nil, err
	}
	r.addf("detected scaling issues (non-scalable vertices):\n")
	for _, ns := range rep.NonScalable {
		r.addf("  %s  slope=%.2f share=%.1f%%\n", describeVertex(ns.Vertex, app), ns.Model.B, 100*ns.Share)
	}
	r.addf("\nbacktracking on the PPG (np=%d):\n%s", rep.NP, renderPaths(rep, app, 3))

	bval := 0.0
	for _, c := range rep.Causes {
		if strings.Contains(c.VertexKey, "@bval3d") {
			bval = 1
			r.addf("\n=> root cause: %s (the paper's bval3d.F:155 analog)\n", describeVertex(c.Vertex, app))
		}
	}
	r.Values["bval3d_found"] = bval

	// Optimization: speedups relative to the smallest scale (the paper
	// uses a 1-process baseline; the port's minimum is 4 ranks).
	imp, err := speedupComparison(r, "zeusmp", "zeusmp-opt", []int{4, 16, 64, 128})
	if err != nil {
		return nil, err
	}
	r.Values["improvement_pct"] = imp
	return r, nil
}

// speedupComparison renders original-vs-optimized speedup curves and
// returns the performance improvement (%) at the largest scale.
func speedupComparison(r *Result, orig, opt string, nps []int) (float64, error) {
	a, b := scalana.GetApp(orig), scalana.GetApp(opt)
	nps = scalesFor(a, nps)
	var tOrig, tOpt []float64
	for _, np := range nps {
		o, err := eng.Run(scalana.RunConfig{App: a, NP: np})
		if err != nil {
			return 0, err
		}
		p, err := eng.Run(scalana.RunConfig{App: b, NP: np})
		if err != nil {
			return 0, err
		}
		tOrig = append(tOrig, o.Result.Elapsed)
		tOpt = append(tOpt, p.Result.Elapsed)
	}
	xs := make([]float64, len(nps))
	sOrig := make([]float64, len(nps))
	sOpt := make([]float64, len(nps))
	for i := range nps {
		xs[i] = float64(nps[i])
		sOrig[i] = tOrig[0] / tOrig[i]
		sOpt[i] = tOpt[0] / tOpt[i]
	}
	r.addf("\n%s", report.Series(
		fmt.Sprintf("speedup vs np (baseline np=%d of the original)", nps[0]),
		"np", xs, []report.NamedSeries{
			{Name: "original", Values: sOrig},
			{Name: "optimized", Values: sOpt},
		}))
	last := len(nps) - 1
	imp := 100 * (tOrig[last] - tOpt[last]) / tOrig[last]
	r.addf("performance improvement at np=%d: %.2f%%\n", nps[last], imp)
	return imp, nil
}

func fig13() (*Result, error) {
	r := newResult("fig13", "Fig. 13: Zeus-MP tool overhead and storage, np=64")
	ovh, storage, err := runTools(scalana.GetApp("zeusmp"), 64)
	if err != nil {
		return nil, err
	}
	rows := [][]string{
		{"Scalasca-like", report.Pct(ovh["tracer"]), report.Bytes(storage["tracer"])},
		{"HPCToolkit-like", report.Pct(ovh["hpctk"]), report.Bytes(storage["hpctk"])},
		{"ScalAna", report.Pct(ovh["scalana"]), report.Bytes(storage["scalana"])},
	}
	r.Text = report.Table(r.Title, []string{"Tool", "Runtime overhead", "Storage"}, rows)
	r.Values["zeusmp_overhead_tracer_pct"] = ovh["tracer"]
	r.Values["zeusmp_overhead_scalana_pct"] = ovh["scalana"]
	r.Values["zeusmp_storage_ratio"] = float64(storage["tracer"]) / float64(storage["scalana"])
	return r, nil
}

func fig14() (*Result, error) {
	r := newResult("fig14", "Fig. 14: SST root-cause paths and optimization, np=32")
	app := scalana.GetApp("sst")
	rep, _, err := caseStudy("sst", []int{4, 8, 16, 32})
	if err != nil {
		return nil, err
	}
	r.addf("backtracking on the PPG (np=%d):\n%s", rep.NP, renderPaths(rep, app, 3))
	found := 0.0
	for _, c := range rep.Causes {
		if strings.Contains(c.VertexKey, "@handleEvent") {
			found = 1
			r.addf("\n=> root cause: %s (the paper's mirandaCPU.cc:247 analog)\n", describeVertex(c.Vertex, app))
		}
	}
	r.Values["handleevent_found"] = found
	imp, err := speedupComparison(r, "sst", "sst-opt", []int{4, 8, 16, 32})
	if err != nil {
		return nil, err
	}
	r.Values["improvement_pct"] = imp
	return r, nil
}

func fig15() (*Result, error) {
	r := newResult("fig15", "Fig. 15: SST per-rank TOT_INS in handleEvent before/after the fix, np=32")
	origIns, err := handleEventSeries("sst", machine.TotIns)
	if err != nil {
		return nil, err
	}
	optIns, err := handleEventSeries("sst-opt", machine.TotIns)
	if err != nil {
		return nil, err
	}
	labels := make([]string, len(origIns))
	for i := range labels {
		labels[i] = fmt.Sprintf("rank %d", i)
	}
	r.addf("%s\n", report.Bars("original TOT_INS per rank", labels, origIns, engFmt))
	r.addf("%s\n", report.Bars("optimized TOT_INS per rank", labels, optIns, engFmt))
	redIns := 100 * (1 - fit.Mean(optIns)/fit.Mean(origIns))
	origCyc, err := handleEventSeries("sst", machine.TotCyc)
	if err != nil {
		return nil, err
	}
	optCyc, err := handleEventSeries("sst-opt", machine.TotCyc)
	if err != nil {
		return nil, err
	}
	redCyc := 100 * (1 - fit.Mean(optCyc)/fit.Mean(origCyc))
	r.addf("TOT_INS reduction: %.2f%% (paper: 99.92%%)\nTOT_CYC reduction: %.2f%% (paper: 99.78%%)\n", redIns, redCyc)
	r.Values["tot_ins_reduction_pct"] = redIns
	r.Values["tot_cyc_reduction_pct"] = redCyc
	return r, nil
}

// handleEventSeries extracts the per-rank counter for SST's handleEvent
// instance, summed over its vertices.
func handleEventSeries(appName string, c machine.Counter) ([]float64, error) {
	out, err := eng.Run(scalana.RunConfig{
		App: scalana.GetApp(appName), NP: 32, Tool: scalana.ToolScalAna, Prof: sweepProf()})
	if err != nil {
		return nil, err
	}
	sum := make([]float64, out.NP)
	keys := out.PPG().PSG.Keys()
	for _, vid := range out.PPG().PresentVIDs() {
		if !strings.Contains(keys[vid], "@handleEvent") {
			continue
		}
		for i, v := range out.PPG().PMUSeries(vid, c) {
			sum[i] += v
		}
	}
	return sum, nil
}

func fig16() (*Result, error) {
	r := newResult("fig16", "Fig. 16: Nekbone dgemm PMU data before/after the fix, np=32")
	series := func(appName string, c machine.Counter) ([]float64, error) {
		out, err := eng.Run(scalana.RunConfig{
			App: scalana.GetApp(appName), NP: 32, Tool: scalana.ToolScalAna, Prof: sweepProf()})
		if err != nil {
			return nil, err
		}
		sum := make([]float64, out.NP)
		keys := out.PPG().PSG.Keys()
		for _, vid := range out.PPG().PresentVIDs() {
			if !strings.Contains(keys[vid], "@dgemm") {
				continue
			}
			for i, v := range out.PPG().PMUSeries(vid, c) {
				sum[i] += v
			}
		}
		return sum, nil
	}
	origLst, err := series("nekbone", machine.TotLstIns)
	if err != nil {
		return nil, err
	}
	optLst, err := series("nekbone-opt", machine.TotLstIns)
	if err != nil {
		return nil, err
	}
	origCyc, err := series("nekbone", machine.TotCyc)
	if err != nil {
		return nil, err
	}
	optCyc, err := series("nekbone-opt", machine.TotCyc)
	if err != nil {
		return nil, err
	}
	r.addf("original:  TOT_LST_INS mean %.3g (uniform across ranks), TOT_CYC stddev/mean %.1f%%\n",
		fit.Mean(origLst), 100*fit.Stddev(origCyc)/fit.Mean(origCyc))
	r.addf("optimized: TOT_LST_INS mean %.3g, TOT_CYC stddev/mean %.1f%%\n",
		fit.Mean(optLst), 100*fit.Stddev(optCyc)/fit.Mean(optCyc))
	redLst := 100 * (1 - fit.Mean(optLst)/fit.Mean(origLst))
	varOrig := fit.Variance(origCyc)
	varOpt := fit.Variance(optCyc)
	redVar := 100 * (1 - varOpt/varOrig)
	r.addf("TOT_LST_INS reduction: %.2f%% (paper: 89.78%%)\n", redLst)
	r.addf("TOT_CYC variance reduction: %.2f%% (paper: 94.03%%)\n", redVar)
	imp, err := speedupComparison(r, "nekbone", "nekbone-opt", []int{4, 8, 16, 32, 64})
	if err != nil {
		return nil, err
	}
	r.Values["improvement_pct"] = imp
	r.Values["tot_lst_reduction_pct"] = redLst
	r.Values["tot_cyc_var_reduction_pct"] = redVar
	return r, nil
}

func ratioStr(x float64) string {
	if math.IsInf(x, 1) {
		return "inf"
	}
	return fmt.Sprintf("%.2f", x)
}

func engFmt(v float64) string { return fmt.Sprintf("%.3g", v) }
