package exp

import (
	"fmt"
	"sort"

	"scalana/internal/ppg"
	"scalana/internal/psg"
	"scalana/internal/report"

	scalana "scalana"
)

func init() {
	registerExp("fig4", "Fig. 4: PSG construction stages for the Fig. 3 example", fig4)
	registerExp("fig6", "Fig. 6: a PPG running with 8 processes", fig6)
	registerExp("table2", "Table II: PSG size and vertex mix for all programs", table2)
}

// fig4 renders the three construction stages of the paper's Fig. 4: the
// per-function local graphs, the complete inter-procedural graph, and the
// contracted graph with MaxLoopDepth=1 (which merges Loop 1.1/1.2).
func fig4() (*Result, error) {
	r := newResult("fig4", "Fig. 4: static PSG generation stages")
	app := scalana.GetApp("fig3")
	prog, err := app.Parse()
	if err != nil {
		return nil, err
	}

	r.addf("(a) local PSGs from intra-procedural analysis\n\n")
	for _, fn := range []string{"main", "foo"} {
		local, err := psg.BuildLocal(prog, fn)
		if err != nil {
			return nil, err
		}
		r.addf("%s:\n%s\n", fn, local.Render())
	}

	full, err := psg.Build(prog, psg.Options{MaxLoopDepth: 99, Contract: false})
	if err != nil {
		return nil, err
	}
	r.addf("(b) complete PSG from inter-procedural analysis (%d vertices)\n\n%s\n",
		full.Stats.VerticesAfter, full.Render())

	contracted, err := psg.Build(prog, psg.Options{MaxLoopDepth: 1, Contract: true})
	if err != nil {
		return nil, err
	}
	r.addf("(c) contracted PSG with MaxLoopDepth=1 (%d vertices; Loop 1.1 and 1.2 merged into one Comp)\n\n%s",
		contracted.Stats.VerticesAfter, contracted.Render())

	r.Values["vertices_before"] = float64(full.Stats.VerticesAfter)
	r.Values["vertices_after"] = float64(contracted.Stats.VerticesAfter)
	loops := 0
	for _, v := range contracted.Vertices {
		if v.Kind == psg.KindLoop {
			loops++
		}
	}
	r.Values["loops_after"] = float64(loops)
	return r, nil
}

// fig6 runs the Fig. 6 stencil on 8 processes and shows the assembled PPG:
// vertices with their performance vectors plus the inter-process
// dependence edges.
func fig6() (*Result, error) {
	r := newResult("fig6", "Fig. 6: PPG of the stencil demo, np=8")
	app := scalana.GetApp("stencil-demo")
	out, err := eng.Run(scalana.RunConfig{App: app, NP: 8, Tool: scalana.ToolScalAna, Prof: sweepProf()})
	if err != nil {
		return nil, err
	}
	r.addf("per-process PSG (replicated across 8 ranks):\n%s\n", out.Graph.Render())

	headers := []string{"Vertex", "Kind", "Line", "Time(rank0)", "TOT_INS(rank0)", "TOT_LST(rank0)"}
	var rows [][]string
	for _, v := range out.Graph.Vertices {
		if !out.PPG().Present(v.VID) || v.Kind == psg.KindRoot {
			continue
		}
		pd := out.PPG().PerfAt(v.VID, 0)
		rows = append(rows, []string{v.Key, v.Kind.String(), fmt.Sprintf("%d", v.Pos.Line),
			report.Seconds(pd.Time), fmt.Sprintf("%.3g", pd.PMU[0]), fmt.Sprintf("%.3g", pd.PMU[2])})
	}
	r.addf("%s\n", report.Table("vertex performance data (rank 0)", headers, rows))

	froms := make([]ppg.EdgeFrom, 0, len(out.PPG().Edges))
	for from := range out.PPG().Edges {
		froms = append(froms, from)
	}
	sort.Slice(froms, func(i, j int) bool {
		if froms[i].VID != froms[j].VID {
			return froms[i].VID < froms[j].VID
		}
		return froms[i].Rank < froms[j].Rank
	})
	var erows [][]string
	for _, from := range froms {
		for _, e := range out.PPG().Edges[from] {
			erows = append(erows, []string{out.Graph.KeyOf(from.VID), fmt.Sprintf("%d", from.Rank),
				out.Graph.KeyOf(e.PeerVID), fmt.Sprintf("%d", e.PeerRank),
				fmt.Sprintf("%d", e.Count), report.Seconds(e.TotalWait)})
		}
	}
	sortRows(erows)
	if len(erows) > 24 {
		erows = erows[:24]
	}
	r.addf("%s", report.Table("inter-process dependence edges (first 24)",
		[]string{"From vertex", "Rank", "To vertex", "To rank", "Count", "Total wait"}, erows))
	r.Values["edges"] = float64(out.PPG().NumEdges())
	r.Values["vertices"] = float64(len(out.Graph.Vertices))
	return r, nil
}

// table2 reproduces Table II: per-program vertex counts before/after
// contraction and the vertex-kind mix.
func table2() (*Result, error) {
	r := newResult("table2", "Table II: code size and PSG vertices for evaluated programs")
	headers := []string{"Program", "Paper KLoc", "#VBC", "#VAC", "#Loop", "#Branch", "#Comp", "#MPI"}
	var rows [][]string
	var sumBefore, sumAfter float64
	var compMPI, totalAfter float64
	for _, name := range scalana.EvaluationNames() {
		app := scalana.GetApp(name)
		_, g, err := scalana.Compile(app)
		if err != nil {
			return nil, err
		}
		st := g.Stats
		rows = append(rows, []string{
			name, fmt.Sprintf("%.1f", app.PaperKLoc),
			fmt.Sprintf("%d", st.VerticesBefore), fmt.Sprintf("%d", st.VerticesAfter),
			fmt.Sprintf("%d", st.Loops), fmt.Sprintf("%d", st.Branches),
			fmt.Sprintf("%d", st.Comps), fmt.Sprintf("%d", st.MPIs),
		})
		sumBefore += float64(st.VerticesBefore)
		sumAfter += float64(st.VerticesAfter)
		compMPI += float64(st.Comps + st.MPIs)
		totalAfter += float64(st.VerticesAfter)
		r.Values["vac_"+name] = float64(st.VerticesAfter)
	}
	r.Text = report.Table(r.Title, headers, rows)
	reduction := 100 * (1 - sumAfter/sumBefore)
	share := 100 * compMPI / totalAfter
	r.addf("\ncontraction reduces vertices by %.1f%% on average (paper: 68%%);"+
		" Comp+MPI vertices are %.1f%% of the contracted graph (paper: >73%%)\n", reduction, share)
	r.Values["contraction_reduction_pct"] = reduction
	r.Values["comp_mpi_share_pct"] = share
	return r, nil
}

func sortRows(rows [][]string) {
	for i := 1; i < len(rows); i++ {
		for j := i; j > 0 && less(rows[j], rows[j-1]); j-- {
			rows[j], rows[j-1] = rows[j-1], rows[j]
		}
	}
}

func less(a, b []string) bool {
	for i := range a {
		if i >= len(b) {
			return false
		}
		if a[i] != b[i] {
			return a[i] < b[i]
		}
	}
	return false
}
