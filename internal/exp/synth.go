package exp

// The ground-truth accuracy case study: the repo's analog of the paper's
// injected-defect localization evaluation (§VI-B reports ScalAna finding
// the injected Fig. 2 delay; the synthetic corpus generalizes that to
// five defect archetypes across five program families).

import (
	"fmt"

	"scalana/internal/synth"
)

func init() {
	registerExp("synth", "Accuracy: root-cause localization on the synthetic ground-truth corpus", synthAccuracy)
}

// synthGateSeed/synthGateCases mirror the committed fixed-seed corpus
// the CI accuracy gate pins (internal/synth/testdata/corpus-seed1.json).
const (
	synthGateSeed  = 1
	synthGateCases = 25
)

func synthAccuracy() (*Result, error) {
	r := newResult("synth", "Root-cause localization accuracy on the seeded synthetic corpus")
	corpus, err := synth.Generate(synth.GenConfig{Seed: synthGateSeed, Cases: synthGateCases})
	if err != nil {
		return nil, err
	}
	res, err := synth.Evaluate(corpus, synth.EvalConfig{Engine: eng})
	if err != nil {
		return nil, err
	}
	r.addf("%s", res.Render())
	r.Values["top1_accuracy"] = res.Top1Accuracy
	r.Values["topk_accuracy"] = res.TopKAccuracy
	r.Values["recall"] = res.Recall
	r.Values["precision"] = res.Precision
	for i := range res.Kinds {
		m := &res.Kinds[i]
		r.Values[fmt.Sprintf("top1_%s", m.Kind)] = m.Top1Accuracy()
	}
	return r, nil
}
