package exp

import (
	"fmt"
	"strings"
	"time"

	"scalana/internal/detect"
	"scalana/internal/ir"
	"scalana/internal/minilang"
	"scalana/internal/psg"
	"scalana/internal/report"

	scalana "scalana"
)

func init() {
	registerExp("table1", "Table I: tool comparison on NPB-CG, 128 processes", table1)
	registerExp("table3", "Table III: static (compile-time) overhead of PSG construction", table3)
	registerExp("fig10", "Fig. 10: average runtime overhead of the three tools, 4-128 processes", fig10)
	registerExp("fig11", "Fig. 11: storage cost of the three tools, 128 processes", fig11)
	registerExp("table4", "Table IV: post-mortem detection cost, 128 processes", table4)
}

// table1 reproduces the paper's headline comparison (Scalasca 25.3% /
// 6.77GB, HPCToolkit 8.41% / 11.45MB, ScalAna 3.53% / 314KB on NPB-CG
// with 128 processes).
func table1() (*Result, error) {
	r := newResult("table1", "Table I: qualitative performance and storage analysis, NPB-CG, np=128")
	app := scalana.GetApp("cg")
	ovh, storage, err := runTools(app, 128)
	if err != nil {
		return nil, err
	}
	rows := [][]string{
		{"Scalasca-like", "Tracing-based", report.Pct(ovh["tracer"]), report.Bytes(storage["tracer"])},
		{"HPCToolkit-like", "Profiling-based", report.Pct(ovh["hpctk"]), report.Bytes(storage["hpctk"])},
		{"ScalAna", "Graph-based", report.Pct(ovh["scalana"]), report.Bytes(storage["scalana"])},
	}
	r.Text = report.Table(r.Title, []string{"Tool", "Approach", "Time Overhead", "Storage Cost"}, rows)
	r.Values["overhead_tracer_pct"] = ovh["tracer"]
	r.Values["overhead_hpctk_pct"] = ovh["hpctk"]
	r.Values["overhead_scalana_pct"] = ovh["scalana"]
	r.Values["storage_tracer_bytes"] = float64(storage["tracer"])
	r.Values["storage_hpctk_bytes"] = float64(storage["hpctk"])
	r.Values["storage_scalana_bytes"] = float64(storage["scalana"])
	return r, nil
}

// table3 measures PSG-construction cost relative to the plain front-end
// compile (parse + semantic check), the analog of the paper's "overhead
// compared to the original LLVM compilation".
func table3() (*Result, error) {
	r := newResult("table3", "Table III: static overhead of PSG construction vs plain compilation")
	headers := []string{"Program", "Compile", "PSG build", "Overhead", "PSG memory"}
	var rows [][]string
	for _, name := range scalana.AppNames() {
		app := scalana.GetApp(name)
		if app.PaperKLoc == 0 || name == "cg-delay" || strings.HasSuffix(name, "-opt") {
			continue // demo programs and variants are not in Table III
		}
		const reps = 200
		// The plain compile parses, lowers to IR, and runs the standard
		// loop analyses, like any optimizing compiler would.
		compileOnce := func() *minilang.Program {
			prog, err := app.Parse()
			if err != nil {
				panic(err)
			}
			fns := ir.LowerProgram(prog)
			for _, fn := range fns {
				dt := ir.ComputeDominators(fn)
				ir.FindLoops(fn, dt)
			}
			return prog
		}
		prog := compileOnce() // warm-up
		start := time.Now()
		for i := 0; i < reps; i++ {
			prog = compileOnce()
		}
		compile := time.Since(start).Seconds() / reps

		g, err := psg.Build(prog, psg.DefaultOptions()) // warm-up
		if err != nil {
			return nil, err
		}
		start = time.Now()
		for i := 0; i < reps; i++ {
			g, err = psg.Build(prog, psg.DefaultOptions())
			if err != nil {
				return nil, err
			}
		}
		build := time.Since(start).Seconds() / reps
		ovd := 100 * build / compile
		rows = append(rows, []string{name, report.Seconds(compile), report.Seconds(build),
			report.Pct(ovd), report.Bytes(int64(g.SizeBytes()))})
		r.Values["static_ovd_"+name+"_pct"] = ovd
	}
	r.Text = report.Table(r.Title, headers, rows)
	return r, nil
}

// fig10 averages per-tool runtime overhead over the scale sweep for every
// evaluated program (paper: ScalAna 0.72-9.73%, avg 3.52% on Gorgon;
// Scalasca far higher).
func fig10() (*Result, error) {
	r := newResult("fig10", "Fig. 10: average runtime overhead (%), np in {4,16,64,128}")
	headers := []string{"Program", "Scalasca-like", "HPCToolkit-like", "ScalAna"}
	var rows [][]string
	sumS, sumH, sumT, n := 0.0, 0.0, 0.0, 0
	for _, name := range scalana.EvaluationNames() {
		app := scalana.GetApp(name)
		var aT, aH, aS float64
		scales := scalesFor(app, []int{4, 16, 64, 128})
		for _, np := range scales {
			ovh, _, err := runTools(app, np)
			if err != nil {
				return nil, err
			}
			aT += ovh["tracer"]
			aH += ovh["hpctk"]
			aS += ovh["scalana"]
		}
		k := float64(len(scales))
		aT, aH, aS = aT/k, aH/k, aS/k
		rows = append(rows, []string{name, report.Pct(aT), report.Pct(aH), report.Pct(aS)})
		r.Values["ovh_scalana_"+name+"_pct"] = aS
		sumT += aT
		sumH += aH
		sumS += aS
		n++
	}
	rows = append(rows, []string{"average", report.Pct(sumT / float64(n)),
		report.Pct(sumH / float64(n)), report.Pct(sumS / float64(n))})
	r.Values["avg_overhead_scalana_pct"] = sumS / float64(n)
	r.Values["avg_overhead_hpctk_pct"] = sumH / float64(n)
	r.Values["avg_overhead_tracer_pct"] = sumT / float64(n)
	r.Text = report.Table(r.Title, headers, rows)
	return r, nil
}

// fig11 compares the tools' storage at 128 processes for every program
// (paper: ScalAna KBs, HPCToolkit MBs, Scalasca MBs-GBs).
func fig11() (*Result, error) {
	r := newResult("fig11", "Fig. 11: storage cost at np=128")
	headers := []string{"Program", "Scalasca-like", "HPCToolkit-like", "ScalAna"}
	var rows [][]string
	for _, name := range scalana.EvaluationNames() {
		app := scalana.GetApp(name)
		_, storage, err := runTools(app, 128)
		if err != nil {
			return nil, err
		}
		rows = append(rows, []string{name, report.Bytes(storage["tracer"]),
			report.Bytes(storage["hpctk"]), report.Bytes(storage["scalana"])})
		r.Values["storage_scalana_"+name+"_bytes"] = float64(storage["scalana"])
		r.Values["storage_tracer_"+name+"_bytes"] = float64(storage["tracer"])
	}
	r.Text = report.Table(r.Title, headers, rows)
	return r, nil
}

// table4 measures the post-mortem cost of scaling-loss detection at 128
// processes (paper: 0.29-11.81 s).
func table4() (*Result, error) {
	r := newResult("table4", "Table IV: post-mortem detection cost at np=128")
	headers := []string{"Program", "Detection cost", "Paths", "Causes"}
	var rows [][]string
	for _, name := range scalana.EvaluationNames() {
		app := scalana.GetApp(name)
		runs, err := sweep(app, scalesFor(app, []int{16, 32, 64, 128}))
		if err != nil {
			return nil, err
		}
		start := time.Now()
		rep, err := scalana.DetectScalingLoss(runs, detect.Config{})
		if err != nil {
			return nil, err
		}
		cost := time.Since(start).Seconds()
		rows = append(rows, []string{name, report.Seconds(cost),
			fmt.Sprintf("%d", len(rep.Paths)), fmt.Sprintf("%d", len(rep.Causes))})
		r.Values["detect_cost_"+name+"_sec"] = cost
	}
	r.Text = report.Table(r.Title, headers, rows)
	return r, nil
}
