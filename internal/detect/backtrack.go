package detect

import (
	"math"
	"sort"

	"scalana/internal/ppg"
	"scalana/internal/psg"
)

// Backtracking root cause detection (paper Algorithm 1). Starting from
// each problematic vertex, the walk moves backwards:
//
//   - at an MPI vertex whose operations waited on a remote rank, it
//     follows the dominant inter-process dependence edge to that rank
//     (edges without wait states are pruned);
//   - at a Loop or Branch vertex not yet scanned, it follows the control
//     dependence edge into the structure (its last child);
//   - otherwise it follows the data dependence edge: the previous vertex
//     in execution order, or the parent when at the head of a block.
//
// The walk stops at the Root vertex, or when a collective vertex is
// reached through local (control/data) edges — the previous global
// synchronization bounds where the delay can have originated. Collectives
// reached through a communication edge (the straggler's side of the same
// collective) are walked through, which is what lets the Zeus-MP path of
// paper Fig. 12 continue from the slow Allreduce into the straggler's
// preceding Waitalls.

type backtracker struct {
	pg  *ppg.Graph
	cfg Config
	// scanned is dense per-VID state: the graph is immutable during
	// detection, so the symbol table bounds every vertex a walk can see.
	scanned []bool
}

func backtrackAll(rep *Report, largest ScaleRun, cfg Config) {
	bt := &backtracker{pg: largest.PPG, cfg: cfg, scanned: make([]bool, largest.PPG.PSG.NumVIDs())}
	for _, ns := range rep.NonScalable {
		rank := argmaxRank(largest.PPG, ns.Vertex.VID)
		if p := bt.walk(ns.Vertex, rank); len(p.Steps) > 0 {
			rep.Paths = append(rep.Paths, p)
		}
	}
	// Abnormal vertices not covered by any previous path get their own
	// walks (Algorithm 1, lines 9-12).
	for _, ab := range rep.Abnormal {
		if bt.scanned[ab.Vertex.VID] {
			continue
		}
		rank := argmaxRank(largest.PPG, ab.Vertex.VID)
		if p := bt.walk(ab.Vertex, rank); len(p.Steps) > 0 {
			rep.Paths = append(rep.Paths, p)
		}
	}
}

// argmaxRank picks the rank most affected by the vertex: the one with the
// largest sampled time.
func argmaxRank(pg *ppg.Graph, vid psg.VID) int {
	vals := pg.TimeSeries(vid)
	best, bestV := 0, math.Inf(-1)
	for r, v := range vals {
		if v > bestV {
			best, bestV = r, v
		}
	}
	return best
}

type pv struct {
	vid  psg.VID
	rank int
}

func (bt *backtracker) walk(start *psg.Vertex, rank int) Path {
	var path Path
	visited := map[pv]bool{}
	v, r := start, rank
	via := ViaStart
	var wait float64

	for steps := 0; steps < bt.cfg.MaxSteps; steps++ {
		if v == nil || v.IsRoot() {
			break
		}
		// Collectives reached through local edges terminate the walk; the
		// starting vertex and communication-edge targets are walked through.
		if v.Collective && (via == ViaControl || via == ViaData) {
			break
		}
		id := pv{v.VID, r}
		if visited[id] {
			break
		}
		visited[id] = true

		firstVisit := !bt.scanned[v.VID]
		bt.scanned[v.VID] = true
		path.Steps = append(path.Steps, PathStep{VertexKey: v.Key, Vertex: v, Rank: r, Via: via, Wait: wait})
		wait = 0

		// Candidate edges in priority order; the first one leading to an
		// unvisited vertex wins, so a dead end on one dependence kind
		// falls back to the next instead of truncating the path.

		// 1. MPI vertices: follow the inter-process dependence edge.
		if v.Kind == psg.KindMPI {
			if e := bt.pg.BestEdge(v.VID, r, bt.cfg.PruneWaitless, bt.cfg.WaitEps); e != nil {
				if peer := bt.pg.PSG.VertexByVID(e.PeerVID); peer != nil && !visited[pv{peer.VID, e.PeerRank}] {
					v, r, via, wait = peer, e.PeerRank, ViaComm, e.TotalWait
					continue
				}
			}
			// Pruned or unmatched: fall through to the data dependence edge.
		}

		// 2. Unscanned Loop/Branch vertices: control dependence edge into
		// the structure ("the traversal continues from the end vertex of
		// this loop").
		if (v.Kind == psg.KindLoop || v.Kind == psg.KindBranch) && firstVisit {
			if last := v.LastChild(); last != nil && !visited[pv{last.VID, r}] {
				v, via = last, ViaControl
				continue
			}
		}

		// 3. Data dependence edge: previous vertex in execution order.
		if prev := v.PrevSibling(); prev != nil {
			v, via = prev, ViaData
		} else {
			v, via = v.Parent, ViaData
		}
	}
	return path
}

// rankCauses scores the Comp/Loop vertices on each path and aggregates
// them into the report's ranked cause list ("the root causes can be
// further sorted according to the length of execution time and the
// imbalance among different parallel processes", paper §V). With
// Config.CommCauses, MPI vertices flagged non-scalable also qualify.
func rankCauses(rep *Report, largest ScaleRun, cfg Config) {
	total := largest.PPG.TotalTime()
	if total <= 0 {
		return
	}
	abn := map[psg.VID]float64{}
	for _, ab := range rep.Abnormal {
		abn[ab.Vertex.VID] = score(ab.Ratio)
	}
	nonScalable := map[psg.VID]bool{}
	if cfg.CommCauses {
		for _, ns := range rep.NonScalable {
			nonScalable[ns.Vertex.VID] = true
		}
	}
	agg := map[psg.VID]*Cause{}
	for i := range rep.Paths {
		p := &rep.Paths[i]
		var best *Cause
		for _, st := range p.Steps {
			candidate := st.Vertex.Kind == psg.KindComp || st.Vertex.Kind == psg.KindLoop ||
				(cfg.CommCauses && st.Vertex.Collective && nonScalable[st.Vertex.VID])
			if !candidate {
				continue
			}
			var share float64
			if st.Vertex.Kind == psg.KindMPI {
				// A collective is only as culpable as its intrinsic cost:
				// time spent waiting for stragglers is inherited — the walk
				// already followed those dependence edges — so it must not
				// also score here.
				share = intrinsicShare(largest.PPG, st.Vertex.VID, total)
			} else {
				share = sum(largest.PPG.TimeSeries(st.Vertex.VID)) / total
			}
			imb := abn[st.Vertex.VID]
			if imb == 0 {
				imb = 1
			}
			c := &Cause{VertexKey: st.VertexKey, Vertex: st.Vertex, Share: share, Imbalance: imb, Score: share * imb}
			if best == nil || c.Score > best.Score {
				best = c
			}
		}
		if best == nil && len(p.Steps) > 0 {
			last := p.Steps[len(p.Steps)-1]
			share := sum(largest.PPG.TimeSeries(last.Vertex.VID)) / total
			best = &Cause{VertexKey: last.VertexKey, Vertex: last.Vertex, Share: share, Imbalance: 1, Score: share}
		}
		if best == nil {
			continue
		}
		p.Cause = best
		if prev, ok := agg[best.Vertex.VID]; ok {
			prev.Paths++
			if best.Score > prev.Score {
				prev.Score = best.Score
			}
		} else {
			cp := *best
			cp.Paths = 1
			agg[best.Vertex.VID] = &cp
		}
	}
	vids := make([]psg.VID, 0, len(agg))
	for vid := range agg {
		vids = append(vids, vid)
	}
	sort.Slice(vids, func(i, j int) bool { return vids[i] < vids[j] })
	for _, vid := range vids {
		rep.Causes = append(rep.Causes, *agg[vid])
	}
	sort.Slice(rep.Causes, func(i, j int) bool {
		if rep.Causes[i].Score != rep.Causes[j].Score {
			return rep.Causes[i].Score > rep.Causes[j].Score
		}
		return rep.Causes[i].VertexKey < rep.Causes[j].VertexKey
	})
}

// intrinsicShare is a vertex's time share minus the part explained by
// its outgoing dependence edges (time blocked on other ranks).
func intrinsicShare(pg *ppg.Graph, vid psg.VID, total float64) float64 {
	t := 0.0
	for _, v := range pg.TimeSeries(vid) {
		t += v
	}
	for r := 0; r < pg.NP; r++ {
		for _, e := range pg.Edges[ppg.EdgeFrom{VID: vid, Rank: r}] {
			t -= e.TotalWait
		}
	}
	if t < 0 {
		t = 0
	}
	return t / total
}
