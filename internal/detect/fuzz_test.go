package detect

// Native fuzz target for the Report wire format: decoding arbitrary
// bytes must never panic, any decoded report must render, and one
// decode -> encode pass is a normalization fixpoint (encoding again is
// byte-identical). Seed corpus: f.Add below plus the committed files
// under testdata/fuzz/FuzzDecodeReport/.

import (
	"bytes"
	"math"
	"testing"

	"scalana/internal/fit"
	"scalana/internal/minilang"
	"scalana/internal/psg"
)

// fuzzSeedReport builds a report exercising every wire feature:
// non-scalable fits, an infinite abnormal ratio, multi-step paths with
// waits, and ranked causes.
func fuzzSeedReport() *Report {
	v := func(key, name string, kind psg.Kind, line int) *psg.Vertex {
		return &psg.Vertex{Key: key, Kind: kind, Name: name, Pos: minilang.Pos{File: "seed.mp", Line: line}}
	}
	loop := v("main:10", "loop", psg.KindLoop, 4)
	comp := v("main:12", "compute", psg.KindComp, 5)
	coll := v("main:20", "mpi_allreduce", psg.KindMPI, 9)
	cause := &Cause{VertexKey: comp.Key, Vertex: comp, Score: 0.5, Share: 0.25, Imbalance: 2, Paths: 1}
	return &Report{
		NP: 8,
		NonScalable: []NonScalable{{
			VertexKey: coll.Key, Vertex: coll,
			Model: fit.LogLog{A: -2.5, B: 1.25, R2: 0.99},
			Share: 0.5, Times: map[int]float64{4: 0.01, 8: 0.025},
		}},
		Abnormal: []Abnormal{{
			VertexKey: comp.Key, Vertex: comp, Ratio: math.Inf(1), OutlierRanks: []int{0, 2}, Share: 0.25,
		}},
		Paths: []Path{{
			Steps: []PathStep{
				{VertexKey: coll.Key, Vertex: coll, Rank: 3, Via: ViaStart},
				{VertexKey: comp.Key, Vertex: comp, Rank: 1, Via: ViaComm, Wait: 0.0125},
				{VertexKey: loop.Key, Vertex: loop, Rank: 1, Via: ViaData},
			},
			Cause: cause,
		}},
		Causes: []Cause{*cause},
	}
}

func FuzzDecodeReport(f *testing.F) {
	seed, err := fuzzSeedReport().EncodeJSON()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte("{}"))
	f.Add([]byte("null"))
	f.Add([]byte(`{"np":-1,"abnormal":[{"vertex":{"key":"x"},"ratio":"inf"}]}`))
	f.Add([]byte(`{"paths":[{"steps":[{"vertex":{"kind":"weird"}}],"cause":null}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		rep, err := DecodeReport(data, nil)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		_ = rep.Render(nil) // detached reports must still render
		enc, err := rep.EncodeJSON()
		if err != nil {
			t.Fatalf("decoded report does not re-encode: %v", err)
		}
		rep2, err := DecodeReport(enc, nil)
		if err != nil {
			t.Fatalf("re-encoded report does not decode: %v\n%s", err, enc)
		}
		enc2, err := rep2.EncodeJSON()
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("decode/encode is not a fixpoint:\n--- first ---\n%s\n--- second ---\n%s", enc, enc2)
		}
	})
}

// TestReportJSONRoundTripLossless pins the attached-graph contract: a
// report built from live vertices encodes, decodes, and re-encodes to
// identical bytes, with every field surviving.
func TestReportJSONRoundTripLossless(t *testing.T) {
	rep := fuzzSeedReport()
	enc, err := rep.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeReport(enc, nil)
	if err != nil {
		t.Fatal(err)
	}
	if dec.NP != rep.NP || len(dec.NonScalable) != 1 || len(dec.Abnormal) != 1 || len(dec.Paths) != 1 || len(dec.Causes) != 1 {
		t.Fatalf("decoded report lost structure: %+v", dec)
	}
	if !math.IsInf(dec.Abnormal[0].Ratio, 1) {
		t.Errorf("infinite ratio did not survive: %v", dec.Abnormal[0].Ratio)
	}
	if dec.NonScalable[0].Times[8] != 0.025 {
		t.Errorf("per-scale times did not survive: %v", dec.NonScalable[0].Times)
	}
	if dec.Paths[0].Cause == nil || dec.Paths[0].Cause.VertexKey != "main:12" {
		t.Errorf("path cause did not survive: %+v", dec.Paths[0].Cause)
	}
	if dec.Paths[0].Steps[1].Wait != 0.0125 || dec.Paths[0].Steps[1].Via != ViaComm {
		t.Errorf("step fields did not survive: %+v", dec.Paths[0].Steps[1])
	}
	enc2, err := dec.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Errorf("encode-decode-encode differs:\n%s\nvs\n%s", enc, enc2)
	}
}
