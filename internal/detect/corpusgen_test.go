package detect

// TestWriteFuzzSeedCorpus regenerates the committed fuzz seed corpus
// when SCALANA_WRITE_FUZZ_CORPUS=1 (a maintenance hook, not a test).
import (
	"fmt"
	"os"
	"path/filepath"
	"testing"
)

func TestWriteFuzzSeedCorpus(t *testing.T) {
	if os.Getenv("SCALANA_WRITE_FUZZ_CORPUS") == "" {
		t.Skip("set SCALANA_WRITE_FUZZ_CORPUS=1 to regenerate the committed seed corpus")
	}
	rich, err := fuzzSeedReport().EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	seeds := [][]byte{
		rich,
		[]byte("{}"),
		[]byte(`{"np":-1,"abnormal":[{"vertex":{"key":"x"},"ratio":"inf"}]}`),
		[]byte(`{"paths":[{"steps":[{"vertex":{"kind":"weird"}}],"cause":null}]}`),
	}
	dir := filepath.Join("testdata", "fuzz", "FuzzDecodeReport")
	for i, s := range seeds {
		body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", s)
		if err := os.WriteFile(filepath.Join(dir, fmt.Sprintf("seed%d", i)), []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
	}
}
