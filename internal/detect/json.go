package detect

// JSON wire format for detection reports. Reports cross process
// boundaries in two places — the scalana-synth accuracy harness writes
// them for CI gates, and scripts consume scalana-detect output — so the
// format must be deterministic (stable field order, sorted scale lists)
// and total (non-finite floats survive the trip: IEEE specials encode as
// the strings "inf", "-inf", "nan", which encoding/json would otherwise
// reject).
//
// DecodeReport rebuilds a *Report. When a compiled PSG is supplied the
// vertex references re-attach to live *psg.Vertex values (required by
// Render); without one the report is "detached": every VertexKey and
// position survives, but Vertex pointers stay nil.

import (
	"encoding/json"
	"fmt"
	"math"
	"sort"

	"scalana/internal/fit"
	"scalana/internal/minilang"
	"scalana/internal/psg"
)

// WireFloat is a float64 that survives JSON encoding even when
// non-finite: +Inf, -Inf, and NaN marshal as the strings "inf", "-inf",
// and "nan" (encoding/json errors on the bare values).
type WireFloat float64

// MarshalJSON implements json.Marshaler.
func (f WireFloat) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsInf(v, 1):
		return []byte(`"inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-inf"`), nil
	case math.IsNaN(v):
		return []byte(`"nan"`), nil
	}
	return json.Marshal(v)
}

// UnmarshalJSON implements json.Unmarshaler.
func (f *WireFloat) UnmarshalJSON(data []byte) error {
	var s string
	if err := json.Unmarshal(data, &s); err == nil {
		switch s {
		case "inf":
			*f = WireFloat(math.Inf(1))
		case "-inf":
			*f = WireFloat(math.Inf(-1))
		case "nan":
			*f = WireFloat(math.NaN())
		default:
			return fmt.Errorf("detect: bad float string %q", s)
		}
		return nil
	}
	var v float64
	if err := json.Unmarshal(data, &v); err != nil {
		return err
	}
	*f = WireFloat(v)
	return nil
}

// VertexRefJSON identifies one PSG vertex on the wire: the stable key
// plus enough position information to be useful without the graph.
type VertexRefJSON struct {
	Key  string `json:"key"`
	Kind string `json:"kind,omitempty"`
	Name string `json:"name,omitempty"`
	File string `json:"file,omitempty"`
	Line int    `json:"line,omitempty"`
}

type scaleTimeJSON struct {
	NP   int       `json:"np"`
	Time WireFloat `json:"time"`
}

type nonScalableJSON struct {
	Vertex  VertexRefJSON   `json:"vertex"`
	ModelA  WireFloat       `json:"model_a"`
	ModelB  WireFloat       `json:"model_b"`
	ModelR2 WireFloat       `json:"model_r2"`
	Share   WireFloat       `json:"share"`
	Times   []scaleTimeJSON `json:"times,omitempty"`
}

type abnormalJSON struct {
	Vertex       VertexRefJSON `json:"vertex"`
	Ratio        WireFloat     `json:"ratio"`
	OutlierRanks []int         `json:"outlier_ranks,omitempty"`
	Share        WireFloat     `json:"share"`
}

type stepJSON struct {
	Vertex VertexRefJSON `json:"vertex"`
	Rank   int           `json:"rank"`
	Via    string        `json:"via"`
	Wait   WireFloat     `json:"wait"`
}

type causeJSON struct {
	Vertex    VertexRefJSON `json:"vertex"`
	Score     WireFloat     `json:"score"`
	Share     WireFloat     `json:"share"`
	Imbalance WireFloat     `json:"imbalance"`
	Paths     int           `json:"paths"`
}

type pathJSON struct {
	Steps []stepJSON `json:"steps,omitempty"`
	Cause *causeJSON `json:"cause,omitempty"`
}

type reportJSON struct {
	NP          int               `json:"np"`
	NonScalable []nonScalableJSON `json:"non_scalable,omitempty"`
	Abnormal    []abnormalJSON    `json:"abnormal,omitempty"`
	Paths       []pathJSON        `json:"paths,omitempty"`
	Causes      []causeJSON       `json:"causes,omitempty"`
}

// vertexRef renders a vertex reference from a live vertex (preferred) or
// a bare key.
func vertexRef(v *psg.Vertex, key string) VertexRefJSON {
	if v == nil {
		return VertexRefJSON{Key: key}
	}
	return VertexRefJSON{Key: v.Key, Kind: v.Kind.String(), Name: v.Name, File: v.Pos.File, Line: v.Pos.Line}
}

func causeToJSON(c *Cause) *causeJSON {
	if c == nil {
		return nil
	}
	return &causeJSON{
		Vertex:    vertexRef(c.Vertex, c.VertexKey),
		Score:     WireFloat(c.Score),
		Share:     WireFloat(c.Share),
		Imbalance: WireFloat(c.Imbalance),
		Paths:     c.Paths,
	}
}

// EncodeJSON serializes the report deterministically (indented, scale
// lists sorted by np).
func (rep *Report) EncodeJSON() ([]byte, error) {
	dto := reportJSON{NP: rep.NP}
	for _, ns := range rep.NonScalable {
		j := nonScalableJSON{
			Vertex:  vertexRef(ns.Vertex, ns.VertexKey),
			ModelA:  WireFloat(ns.Model.A),
			ModelB:  WireFloat(ns.Model.B),
			ModelR2: WireFloat(ns.Model.R2),
			Share:   WireFloat(ns.Share),
		}
		nps := make([]int, 0, len(ns.Times))
		for np := range ns.Times {
			nps = append(nps, np)
		}
		sort.Ints(nps)
		for _, np := range nps {
			j.Times = append(j.Times, scaleTimeJSON{NP: np, Time: WireFloat(ns.Times[np])})
		}
		dto.NonScalable = append(dto.NonScalable, j)
	}
	for _, ab := range rep.Abnormal {
		dto.Abnormal = append(dto.Abnormal, abnormalJSON{
			Vertex:       vertexRef(ab.Vertex, ab.VertexKey),
			Ratio:        WireFloat(ab.Ratio),
			OutlierRanks: ab.OutlierRanks,
			Share:        WireFloat(ab.Share),
		})
	}
	for _, p := range rep.Paths {
		pj := pathJSON{Cause: causeToJSON(p.Cause)}
		for _, st := range p.Steps {
			pj.Steps = append(pj.Steps, stepJSON{
				Vertex: vertexRef(st.Vertex, st.VertexKey),
				Rank:   st.Rank,
				Via:    string(st.Via),
				Wait:   WireFloat(st.Wait),
			})
		}
		dto.Paths = append(dto.Paths, pj)
	}
	for i := range rep.Causes {
		dto.Causes = append(dto.Causes, *causeToJSON(&rep.Causes[i]))
	}
	return json.MarshalIndent(dto, "", " ")
}

// kindFromString reverses psg.Kind.String for the wire format. Unknown
// strings normalize to KindComp; one encode/decode pass is a fixpoint.
func kindFromString(s string) psg.Kind {
	for _, k := range []psg.Kind{psg.KindRoot, psg.KindLoop, psg.KindBranch, psg.KindComp, psg.KindMPI, psg.KindCall} {
		if k.String() == s {
			return k
		}
	}
	return psg.KindComp
}

// attach resolves a vertex reference against the compiled graph. Keys the
// graph does not contain — or any key when the graph is nil — get a
// detached placeholder vertex carrying the wire position, so decoded
// reports always render and re-encode without loss.
func attach(g *psg.Graph, ref VertexRefJSON) *psg.Vertex {
	if g != nil {
		if v := g.VertexByKey(ref.Key); v != nil {
			return v
		}
	}
	return &psg.Vertex{
		Key:  ref.Key,
		Kind: kindFromString(ref.Kind),
		Name: ref.Name,
		Pos:  minilang.Pos{File: ref.File, Line: ref.Line},
	}
}

func causeFromJSON(g *psg.Graph, j *causeJSON) *Cause {
	if j == nil {
		return nil
	}
	return &Cause{
		VertexKey: j.Vertex.Key,
		Vertex:    attach(g, j.Vertex),
		Score:     float64(j.Score),
		Share:     float64(j.Share),
		Imbalance: float64(j.Imbalance),
		Paths:     j.Paths,
	}
}

// DecodeReport parses a report written by EncodeJSON. The graph is
// optional: when non-nil, vertex references re-attach to it (keys the
// graph does not contain stay detached rather than erroring, so a report
// from a different build of the app still loads).
func DecodeReport(data []byte, g *psg.Graph) (*Report, error) {
	var dto reportJSON
	if err := json.Unmarshal(data, &dto); err != nil {
		return nil, fmt.Errorf("detect: parse report: %w", err)
	}
	rep := &Report{NP: dto.NP}
	for _, j := range dto.NonScalable {
		ns := NonScalable{
			VertexKey: j.Vertex.Key,
			Vertex:    attach(g, j.Vertex),
			Model:     fit.LogLog{A: float64(j.ModelA), B: float64(j.ModelB), R2: float64(j.ModelR2)},
			Share:     float64(j.Share),
		}
		if len(j.Times) > 0 {
			ns.Times = make(map[int]float64, len(j.Times))
			for _, st := range j.Times {
				ns.Times[st.NP] = float64(st.Time)
			}
		}
		rep.NonScalable = append(rep.NonScalable, ns)
	}
	for _, j := range dto.Abnormal {
		rep.Abnormal = append(rep.Abnormal, Abnormal{
			VertexKey:    j.Vertex.Key,
			Vertex:       attach(g, j.Vertex),
			Ratio:        float64(j.Ratio),
			OutlierRanks: j.OutlierRanks,
			Share:        float64(j.Share),
		})
	}
	for _, pj := range dto.Paths {
		p := Path{Cause: causeFromJSON(g, pj.Cause)}
		for _, sj := range pj.Steps {
			p.Steps = append(p.Steps, PathStep{
				VertexKey: sj.Vertex.Key,
				Vertex:    attach(g, sj.Vertex),
				Rank:      sj.Rank,
				Via:       StepVia(sj.Via),
				Wait:      float64(sj.Wait),
			})
		}
		rep.Paths = append(rep.Paths, p)
	}
	for i := range dto.Causes {
		rep.Causes = append(rep.Causes, *causeFromJSON(g, &dto.Causes[i]))
	}
	return rep, nil
}
