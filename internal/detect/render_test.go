package detect

import (
	"strings"
	"testing"
)

// TestFmtSecBoundaries pins the unit switchover points of the waiting
// time formatter.
func TestFmtSecBoundaries(t *testing.T) {
	cases := []struct {
		in   float64
		want string
	}{
		{0, "0.0us"},
		{5e-7, "0.5us"},
		{9.99e-4, "999.0us"},
		{1e-3, "1.00ms"},
		{0.5, "500.00ms"},
		{0.9999, "999.90ms"},
		{1, "1.000s"},
		{12.3456, "12.346s"},
	}
	for _, c := range cases {
		if got := fmtSec(c.in); got != c.want {
			t.Errorf("fmtSec(%g) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestRenderEmptyReport: a report with no findings renders every section
// header with zero counts and no panic, with or without a program for
// source snippets.
func TestRenderEmptyReport(t *testing.T) {
	rep := &Report{NP: 16}
	out := rep.Render(nil)
	for _, want := range []string{
		"largest scale np=16",
		"non-scalable vertices (0):",
		"abnormal vertices (0):",
		"backtracking paths (0):",
		"root causes (ranked):",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("empty report output missing %q:\n%s", want, out)
		}
	}
}

// TestRenderDecodedReport: a report decoded without a graph (detached
// placeholder vertices) must render the wire positions.
func TestRenderDecodedReport(t *testing.T) {
	enc, err := fuzzSeedReport().EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	rep, err := DecodeReport(enc, nil)
	if err != nil {
		t.Fatal(err)
	}
	out := rep.Render(nil)
	for _, want := range []string{"main:20", "seed.mp:9", "ratio=inf", "(waited 12.50ms)"} {
		if !strings.Contains(out, want) {
			t.Errorf("decoded report render missing %q:\n%s", want, out)
		}
	}
}
