package detect

import (
	"math"
	"strings"
	"testing"

	"scalana/internal/fit"
	"scalana/internal/machine"
	"scalana/internal/minilang"
	"scalana/internal/ppg"
	"scalana/internal/prof"
	"scalana/internal/psg"
)

// synthetic builds a PPG for the given program with fabricated per-vertex,
// per-rank times and optional dependence edges — letting detection logic
// be tested in isolation from the simulator.
type synthetic struct {
	t     *testing.T
	graph *psg.Graph
	np    int
	profs []*prof.RankProfile
}

func newSynthetic(t *testing.T, src string, np int) *synthetic {
	t.Helper()
	prog := minilang.MustParse("t.mp", src)
	g := psg.MustBuild(prog)
	s := &synthetic{t: t, graph: g, np: np}
	for r := 0; r < np; r++ {
		s.profs = append(s.profs, prof.NewRankProfile(g, r, np))
	}
	return s
}

func (s *synthetic) vertex(substr string, kind psg.Kind) *psg.Vertex {
	s.t.Helper()
	for _, v := range s.graph.Vertices {
		if v.Kind == kind && strings.Contains(v.Key, substr) {
			return v
		}
	}
	s.t.Fatalf("no %v vertex matching %q", kind, substr)
	return nil
}

func (s *synthetic) setTime(v *psg.Vertex, rank int, time float64) {
	s.profs[rank].Vertex[v.VID] = prof.PerfData{Time: time, Samples: int64(time * 1e4),
		PMU: machine.Vec{time * 1e7, time * 2e7, time * 1e6, 0, 0}}
}

func (s *synthetic) addEdge(from *psg.Vertex, rank int, to *psg.Vertex, peerRank int, wait float64) {
	key := prof.CommKey{VID: from.VID, Op: from.Name, DepRank: peerRank, DepVID: to.VID}
	s.profs[rank].Comm[key] = &prof.CommRecord{CommKey: key, Count: 1, TotalWait: wait, MaxWait: wait}
}

func (s *synthetic) ppg() *ppg.Graph {
	s.t.Helper()
	pg, err := ppg.Build(s.graph, s.profs)
	if err != nil {
		s.t.Fatal(err)
	}
	return pg
}

const simpleSrc = `
func main() {
	compute(1, 1, 1, 64);
	for (var i = 0; i < 2; i = i + 1) {
		compute(2, 1, 1, 64);
	}
	mpi_waitall();
	mpi_allreduce(8);
}`

func TestNonScalableDetection(t *testing.T) {
	// Three scales: the Comp scales perfectly (1/p), the Allreduce grows.
	var runs []ScaleRun
	for _, np := range []int{4, 8, 16} {
		s := newSynthetic(t, simpleSrc, np)
		comp := s.vertex("main", psg.KindComp)
		coll := s.vertex("main", psg.KindMPI)
		for r := 0; r < np; r++ {
			s.setTime(comp, r, 1.0/float64(np))
			s.setTime(coll, r, 0.01*math.Log2(float64(np)))
		}
		runs = append(runs, ScaleRun{NP: np, PPG: s.ppg()})
	}
	rep, err := Detect(runs, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.NonScalable) != 1 {
		t.Fatalf("non-scalable = %+v, want exactly the collective", rep.NonScalable)
	}
	ns := rep.NonScalable[0]
	if ns.Vertex.Kind != psg.KindMPI {
		t.Errorf("non-scalable vertex kind = %v", ns.Vertex.Kind)
	}
	if ns.Model.B < 0 {
		t.Errorf("slope = %g, want positive (log growth)", ns.Model.B)
	}
}

func TestNonScalableRespectsMinShare(t *testing.T) {
	var runs []ScaleRun
	for _, np := range []int{4, 8} {
		s := newSynthetic(t, simpleSrc, np)
		comp := s.vertex("main", psg.KindComp)
		coll := s.vertex("main", psg.KindMPI)
		for r := 0; r < np; r++ {
			s.setTime(comp, r, 1.0/float64(np))
			s.setTime(coll, r, 1e-7) // non-scalable but negligible
		}
		runs = append(runs, ScaleRun{NP: np, PPG: s.ppg()})
	}
	cfg := DefaultConfig()
	cfg.MinShare = 0.05
	rep, err := Detect(runs, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.NonScalable) != 0 {
		t.Errorf("negligible vertex flagged: %+v", rep.NonScalable)
	}
}

func TestAbnormalDetection(t *testing.T) {
	s := newSynthetic(t, simpleSrc, 8)
	comp := s.vertex("main", psg.KindComp)
	for r := 0; r < 8; r++ {
		tm := 0.1
		if r == 4 || r == 6 {
			tm = 0.2 // beyond 1.3x the median
		}
		s.setTime(comp, r, tm)
	}
	rep, err := Detect([]ScaleRun{{NP: 8, PPG: s.ppg()}}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Abnormal) != 1 {
		t.Fatalf("abnormal = %+v", rep.Abnormal)
	}
	ab := rep.Abnormal[0]
	if math.Abs(ab.Ratio-2.0) > 1e-9 {
		t.Errorf("ratio = %g, want 2", ab.Ratio)
	}
	if len(ab.OutlierRanks) != 2 || ab.OutlierRanks[0] != 4 || ab.OutlierRanks[1] != 6 {
		t.Errorf("outliers = %v, want [4 6]", ab.OutlierRanks)
	}
}

func TestAbnormalMinorityExecution(t *testing.T) {
	// Only 2 of 8 ranks execute the vertex at all: infinite ratio.
	s := newSynthetic(t, simpleSrc, 8)
	comp := s.vertex("main", psg.KindComp)
	other := s.vertex("main", psg.KindLoop)
	for r := 0; r < 8; r++ {
		s.setTime(other, r, 0.1) // background time so shares are finite
	}
	s.setTime(comp, 0, 0.3)
	s.setTime(comp, 3, 0.3)
	rep, err := Detect([]ScaleRun{{NP: 8, PPG: s.ppg()}}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	var found *Abnormal
	for i := range rep.Abnormal {
		if rep.Abnormal[i].VertexKey == comp.Key {
			found = &rep.Abnormal[i]
		}
	}
	if found == nil {
		t.Fatalf("minority-execution vertex not flagged: %+v", rep.Abnormal)
	}
	if !math.IsInf(found.Ratio, 1) {
		t.Errorf("ratio = %g, want +Inf", found.Ratio)
	}
	if len(found.OutlierRanks) != 2 {
		t.Errorf("outliers = %v", found.OutlierRanks)
	}
}

func TestAbnormThdTunable(t *testing.T) {
	s := newSynthetic(t, simpleSrc, 4)
	comp := s.vertex("main", psg.KindComp)
	for r := 0; r < 4; r++ {
		tm := 0.1
		if r == 0 {
			tm = 0.14 // 1.4x
		}
		s.setTime(comp, r, tm)
	}
	strict := DefaultConfig()
	strict.AbnormThd = 1.5
	rep, _ := Detect([]ScaleRun{{NP: 4, PPG: s.ppg()}}, strict)
	if len(rep.Abnormal) != 0 {
		t.Errorf("1.4x outlier flagged at threshold 1.5: %+v", rep.Abnormal)
	}
	loose := DefaultConfig()
	loose.AbnormThd = 1.3
	rep, _ = Detect([]ScaleRun{{NP: 4, PPG: s.ppg()}}, loose)
	if len(rep.Abnormal) != 1 {
		t.Errorf("1.4x outlier missed at threshold 1.3: %+v", rep.Abnormal)
	}
}

// TestBacktrackFollowsCommEdge builds the canonical shape: rank 0's
// waitall waits on rank 1, whose extra time comes from a loop.
func TestBacktrackFollowsCommEdge(t *testing.T) {
	const src = `
func main() {
	for (var i = 0; i < 2; i = i + 1) {
		compute(2, 1, 1, 64);
	}
	mpi_waitall();
	mpi_allreduce(8);
}`
	s := newSynthetic(t, src, 2)
	loop := s.vertex("main", psg.KindLoop)
	var waitall, allreduce *psg.Vertex
	for _, v := range s.graph.Vertices {
		switch v.Name {
		case "mpi_waitall":
			waitall = v
		case "mpi_allreduce":
			allreduce = v
		}
	}
	// Rank 1 is busy in the loop; rank 0 waits for it.
	s.setTime(loop, 0, 0.05)
	s.setTime(loop, 1, 0.50)
	s.setTime(waitall, 0, 0.45)
	s.setTime(allreduce, 0, 0.02)
	s.setTime(allreduce, 1, 0.02)
	s.addEdge(waitall, 0, waitall, 1, 0.45)

	cfg := DefaultConfig()
	rep, err := Detect([]ScaleRun{{NP: 2, PPG: s.ppg()}}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Paths) == 0 {
		t.Fatal("no paths")
	}
	// Some path must hop to rank 1 and reach the loop.
	reached := false
	for _, p := range rep.Paths {
		for _, st := range p.Steps {
			if st.VertexKey == loop.Key && st.Rank == 1 {
				reached = true
			}
		}
	}
	if !reached {
		for _, p := range rep.Paths {
			for _, st := range p.Steps {
				t.Logf("  %s rank=%d %s", st.Via, st.Rank, st.VertexKey)
			}
		}
		t.Fatal("backtracking did not reach the busy loop on rank 1")
	}
	// And the loop must be the ranked cause.
	if len(rep.Causes) == 0 || rep.Causes[0].VertexKey != loop.Key {
		t.Errorf("causes = %+v, want loop first", rep.Causes)
	}
}

func TestBacktrackPruningControlsCommEdges(t *testing.T) {
	s := newSynthetic(t, simpleSrc, 2)
	var waitall *psg.Vertex
	for _, v := range s.graph.Vertices {
		if v.Name == "mpi_waitall" {
			waitall = v
		}
	}
	comp := s.vertex("main", psg.KindComp)
	for r := 0; r < 2; r++ {
		s.setTime(comp, r, 0.1)
		s.setTime(waitall, r, 0.1)
	}
	// Edge with negligible wait: pruned by default.
	s.addEdge(waitall, 0, waitall, 1, 1e-9)

	pg := s.ppg()
	if e := pg.BestEdge(waitall.VID, 0, true, 1e-6); e != nil {
		t.Errorf("waitless edge survived pruning: %+v", e)
	}
	if e := pg.BestEdge(waitall.VID, 0, false, 1e-6); e == nil {
		t.Error("unpruned lookup should find the edge")
	}
}

func TestBacktrackTerminatesAtCollectiveViaLocalEdge(t *testing.T) {
	// Start vertex is after a collective in program order; the data-dep
	// walk must stop AT the collective, not walk through it.
	const src = `
func main() {
	mpi_allreduce(8);
	compute(2, 1, 1, 64);
	mpi_waitall();
}`
	s := newSynthetic(t, src, 2)
	var waitall, allreduce *psg.Vertex
	for _, v := range s.graph.Vertices {
		switch v.Name {
		case "mpi_waitall":
			waitall = v
		case "mpi_allreduce":
			allreduce = v
		}
	}
	comp := s.vertex("main", psg.KindComp)
	for r := 0; r < 2; r++ {
		s.setTime(comp, r, 0.2)
		s.setTime(waitall, r, 0.2)
		s.setTime(allreduce, r, 0.01)
	}
	bt := &backtracker{pg: s.ppg(), cfg: DefaultConfig(), scanned: make([]bool, s.graph.NumVIDs())}
	p := bt.walk(waitall, 0)
	for _, st := range p.Steps {
		if st.VertexKey == allreduce.Key {
			t.Errorf("walk passed through a collective reached by data dependence: %+v", p.Steps)
		}
	}
}

func TestBacktrackStepBudget(t *testing.T) {
	s := newSynthetic(t, simpleSrc, 2)
	comp := s.vertex("main", psg.KindComp)
	s.setTime(comp, 0, 1)
	s.setTime(comp, 1, 1)
	cfg := DefaultConfig()
	cfg.MaxSteps = 2
	bt := &backtracker{pg: s.ppg(), cfg: cfg, scanned: make([]bool, s.graph.NumVIDs())}
	p := bt.walk(comp, 0)
	if len(p.Steps) > 2 {
		t.Errorf("walk exceeded MaxSteps: %d steps", len(p.Steps))
	}
}

func TestDetectErrors(t *testing.T) {
	if _, err := Detect(nil, DefaultConfig()); err == nil {
		t.Error("no runs should error")
	}
}

func TestDetectSingleScaleSkipsNonScalable(t *testing.T) {
	s := newSynthetic(t, simpleSrc, 2)
	comp := s.vertex("main", psg.KindComp)
	s.setTime(comp, 0, 1)
	s.setTime(comp, 1, 1)
	rep, err := Detect([]ScaleRun{{NP: 2, PPG: s.ppg()}}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.NonScalable) != 0 {
		t.Error("single scale cannot yield non-scalable vertices")
	}
}

func TestMergeStrategyAffectsDetection(t *testing.T) {
	// A vertex that only rank 0 executes, with constant time: under
	// MergeSingle it looks non-scalable (slope 0 at full weight); under
	// MergeMedian it vanishes (median is 0).
	var runsSingle, runsMedian []ScaleRun
	for _, np := range []int{4, 8} {
		s := newSynthetic(t, simpleSrc, np)
		comp := s.vertex("main", psg.KindComp)
		loop := s.vertex("main", psg.KindLoop)
		s.setTime(comp, 0, 0.5)
		for r := 0; r < np; r++ {
			s.setTime(loop, r, 1.0/float64(np))
		}
		pg := s.ppg()
		runsSingle = append(runsSingle, ScaleRun{NP: np, PPG: pg})
		runsMedian = append(runsMedian, ScaleRun{NP: np, PPG: pg})
	}
	cfgS := DefaultConfig()
	cfgS.Merge = fit.MergeSingle
	repS, err := Detect(runsSingle, cfgS)
	if err != nil {
		t.Fatal(err)
	}
	foundSingle := false
	for _, ns := range repS.NonScalable {
		if strings.Contains(ns.VertexKey, "main") && ns.Vertex.Kind == psg.KindComp {
			foundSingle = true
		}
	}
	if !foundSingle {
		t.Error("MergeSingle should flag the rank-0-only vertex")
	}
}

func TestRenderReport(t *testing.T) {
	s := newSynthetic(t, simpleSrc, 2)
	comp := s.vertex("main", psg.KindComp)
	s.setTime(comp, 0, 0.5)
	s.setTime(comp, 1, 0.1)
	rep, err := Detect([]ScaleRun{{NP: 2, PPG: s.ppg()}}, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	prog := minilang.MustParse("t.mp", simpleSrc)
	out := rep.Render(prog)
	for _, want := range []string{"abnormal vertices", "backtracking paths", "root causes"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered report missing %q:\n%s", want, out)
		}
	}
	// Render without a program must not panic.
	_ = rep.Render(nil)
}
