// Package detect implements ScalAna's scaling loss detection (paper §IV):
// location-aware problematic vertex detection — non-scalable vertices via
// log-log fitting across job scales, abnormal vertices via cross-process
// comparison at one scale — and the backtracking root cause algorithm
// (Algorithm 1) over the Program Performance Graph.
package detect

import (
	"fmt"
	"math"
	"sort"

	"scalana/internal/fit"
	"scalana/internal/ppg"
	"scalana/internal/psg"
)

// Config holds the user-tunable detection parameters from paper §V.
type Config struct {
	// AbnormThd flags a vertex as abnormal when its slowest rank exceeds
	// AbnormThd times the cross-rank median (paper evaluation: 1.3).
	AbnormThd float64
	// SlopeThd is the log-log changing-rate threshold: with fixed total
	// problem size, a perfectly scaling vertex's per-rank time has slope
	// ~-1; vertices with slope above SlopeThd are non-scalable candidates.
	SlopeThd float64
	// MinShare filters vertices whose time share at the largest scale is
	// negligible ("when the execution time ... accounts for a large
	// proportion of the total time, they will become a scaling issue").
	MinShare float64
	// TopK caps the number of non-scalable vertices reported.
	TopK int
	// Merge selects the cross-rank aggregation strategy.
	Merge fit.MergeStrategy
	// PruneWaitless drops communication dependence edges with no waiting
	// event (paper §IV-B). Disable only for the ablation benchmark.
	PruneWaitless bool
	// WaitEps is the minimum waiting time that counts as a wait state.
	WaitEps float64
	// MaxSteps bounds one backtracking walk.
	MaxSteps int
	// CommCauses additionally admits collective MPI vertices as root-cause
	// candidates when they were themselves flagged non-scalable — a
	// collective whose message volume grows with the job scale is its own
	// root cause, not the computation that happens to precede it.
	// Point-to-point vertices never qualify: their waiting time is
	// inherited from a peer, which the backtracking walk already follows.
	// Off by default: the paper's Algorithm 1 attributes causes to
	// Comp/Loop vertices only.
	CommCauses bool
}

// DefaultConfig mirrors the paper's evaluation parameters.
func DefaultConfig() Config {
	return Config{
		AbnormThd:     1.3,
		SlopeThd:      -0.25,
		MinShare:      0.01,
		TopK:          10,
		Merge:         fit.MergeMedian,
		PruneWaitless: true,
		WaitEps:       1e-6,
		MaxSteps:      4096,
	}
}

// ScaleRun is one profiled execution at one job scale.
type ScaleRun struct {
	// NP is the job's process count.
	NP int
	// PPG is the Program Performance Graph assembled from that job's
	// per-rank profiles.
	PPG *ppg.Graph
}

// NonScalable is one vertex whose performance scales badly with the
// process count.
type NonScalable struct {
	// VertexKey is the stable PSG key of the flagged vertex.
	VertexKey string
	// Vertex is the flagged vertex in the largest scale's PSG.
	Vertex *psg.Vertex
	// Model is the fitted log-log time-vs-np model; Model.B is the
	// changing rate compared against Config.SlopeThd.
	Model fit.LogLog
	// Share is the vertex's fraction of total time at the largest scale.
	Share float64
	// Times maps np -> merged per-rank time.
	Times map[int]float64
}

// Abnormal is one vertex whose performance differs markedly across ranks
// at the largest scale.
type Abnormal struct {
	// VertexKey is the stable PSG key of the flagged vertex.
	VertexKey string
	// Vertex is the flagged vertex.
	Vertex *psg.Vertex
	// Ratio is max over median time across ranks (may be +Inf when only
	// some ranks execute the vertex at all).
	Ratio float64
	// OutlierRanks lists the ranks exceeding the threshold.
	OutlierRanks []int
	// Share is the vertex's fraction of total time at this scale.
	Share float64
}

// StepVia says how the backtracking walk reached a step.
type StepVia string

// Step provenance values.
const (
	ViaStart   StepVia = "start"
	ViaComm    StepVia = "comm"
	ViaControl StepVia = "control"
	ViaData    StepVia = "data"
)

// PathStep is one hop of a root-cause path.
type PathStep struct {
	// VertexKey is the stable PSG key of the vertex visited by this hop.
	VertexKey string
	// Vertex is the visited vertex.
	Vertex *psg.Vertex
	// Rank is the process the walk is on at this hop.
	Rank int
	// Via says how the walk arrived here (start, comm, control, data).
	Via StepVia
	// Wait is the waiting time of the communication edge taken to leave
	// this step (0 for control/data hops).
	Wait float64
}

// Path is one backtracking walk (paper Fig. 8's colored chains).
type Path struct {
	// Steps are the hops in walk order, starting at a problematic vertex.
	Steps []PathStep
	// Cause is the root-cause candidate the walk terminated on, nil when
	// the walk exhausted its step budget without converging.
	Cause *Cause
}

// Cause is one root-cause candidate.
type Cause struct {
	// VertexKey is the stable PSG key of the candidate vertex.
	VertexKey string
	// Vertex is the candidate vertex.
	Vertex *psg.Vertex
	// Score ranks causes: time share at the largest scale times the
	// cross-rank imbalance ratio.
	Score float64
	// Share is the candidate's fraction of total time at the largest scale.
	Share float64
	// Imbalance is the candidate's cross-rank max-over-median time ratio.
	Imbalance float64
	// Paths counts the backtracking paths terminating on this cause.
	Paths int
}

// Report is the complete detection output.
type Report struct {
	// NP is the largest profiled scale; abnormal detection and
	// backtracking ran on its PPG.
	NP int
	// NonScalable lists vertices whose time scales badly with np,
	// worst (slope x share) first.
	NonScalable []NonScalable
	// Abnormal lists vertices imbalanced across ranks at the largest
	// scale, worst (ratio x share) first.
	Abnormal []Abnormal
	// Paths holds one backtracking walk per problematic vertex.
	Paths []Path
	// Causes ranks the distinct root-cause candidates by Score.
	Causes []Cause
}

// Detect runs the full pipeline over profiled runs at multiple scales.
// The largest scale's PPG hosts abnormal detection and backtracking.
func Detect(runs []ScaleRun, cfg Config) (*Report, error) {
	if len(runs) == 0 {
		return nil, fmt.Errorf("detect: no runs")
	}
	if cfg.MaxSteps == 0 {
		cfg = fillDefaults(cfg)
	}
	sorted := append([]ScaleRun(nil), runs...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].NP < sorted[j].NP })
	largest := sorted[len(sorted)-1]

	rep := &Report{NP: largest.NP}
	if len(sorted) >= 2 {
		rep.NonScalable = findNonScalable(sorted, cfg)
	}
	rep.Abnormal = findAbnormal(largest, cfg)
	backtrackAll(rep, largest, cfg)
	rankCauses(rep, largest, cfg)
	return rep, nil
}

func fillDefaults(cfg Config) Config {
	def := DefaultConfig()
	if cfg.AbnormThd == 0 {
		cfg.AbnormThd = def.AbnormThd
	}
	if cfg.SlopeThd == 0 {
		cfg.SlopeThd = def.SlopeThd
	}
	if cfg.MinShare == 0 {
		cfg.MinShare = def.MinShare
	}
	if cfg.TopK == 0 {
		cfg.TopK = def.TopK
	}
	if cfg.WaitEps == 0 {
		cfg.WaitEps = def.WaitEps
	}
	if cfg.MaxSteps == 0 {
		cfg.MaxSteps = def.MaxSteps
	}
	return cfg
}

// findNonScalable fits each vertex's merged time across scales and ranks
// vertices by their changing rate (paper §IV-A, Fig. 7(a)).
func findNonScalable(sorted []ScaleRun, cfg Config) []NonScalable {
	largest := sorted[len(sorted)-1]
	total := largest.PPG.TotalTime()
	if total <= 0 {
		return nil
	}
	var out []NonScalable
	for _, vid := range largest.PPG.PresentVIDs() {
		v := largest.PPG.PSG.VertexByVID(vid)
		if v == nil || v.Kind == psg.KindRoot {
			continue
		}
		var ps, ys []float64
		times := map[int]float64{}
		for _, run := range sorted {
			if !run.PPG.Present(vid) {
				continue
			}
			merged := fit.Merge(run.PPG.TimeSeries(vid), cfg.Merge)
			ps = append(ps, float64(run.NP))
			ys = append(ys, merged)
			times[run.NP] = merged
		}
		if len(ps) < 2 {
			continue
		}
		model, err := fit.FitLogLog(ps, ys)
		if err != nil {
			continue
		}
		share := sum(largest.PPG.TimeSeries(vid)) / total
		if model.B <= cfg.SlopeThd || share < cfg.MinShare {
			continue
		}
		out = append(out, NonScalable{VertexKey: v.Key, Vertex: v, Model: model, Share: share, Times: times})
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := out[i].Model.B*out[i].Share, out[j].Model.B*out[j].Share
		if si != sj {
			return si > sj
		}
		return out[i].VertexKey < out[j].VertexKey
	})
	if len(out) > cfg.TopK {
		out = out[:cfg.TopK]
	}
	return out
}

// findAbnormal compares each vertex's time across ranks at one scale
// (paper §IV-A, Fig. 7(b)).
func findAbnormal(run ScaleRun, cfg Config) []Abnormal {
	total := run.PPG.TotalTime()
	if total <= 0 {
		return nil
	}
	var out []Abnormal
	for _, vid := range run.PPG.PresentVIDs() {
		v := run.PPG.PSG.VertexByVID(vid)
		if v == nil || v.Kind == psg.KindRoot {
			continue
		}
		vals := run.PPG.TimeSeries(vid)
		share := sum(vals) / total
		if share < cfg.MinShare {
			continue
		}
		med := fit.Median(vals)
		mx := fit.Max(vals)
		var ratio float64
		switch {
		case med > 0:
			ratio = mx / med
		case mx > 0:
			ratio = math.Inf(1) // executed by a strict minority of ranks
		default:
			continue
		}
		if ratio <= cfg.AbnormThd {
			continue
		}
		var outliers []int
		for r, t := range vals {
			if (med > 0 && t > cfg.AbnormThd*med) || (med == 0 && t > 0) {
				outliers = append(outliers, r)
			}
		}
		out = append(out, Abnormal{VertexKey: v.Key, Vertex: v, Ratio: ratio, OutlierRanks: outliers, Share: share})
	}
	sort.Slice(out, func(i, j int) bool {
		si, sj := score(out[i].Ratio)*out[i].Share, score(out[j].Ratio)*out[j].Share
		if si != sj {
			return si > sj
		}
		return out[i].VertexKey < out[j].VertexKey
	})
	return out
}

func score(ratio float64) float64 {
	if math.IsInf(ratio, 1) {
		return 100
	}
	return ratio
}

func sum(vals []float64) float64 {
	var s float64
	for _, v := range vals {
		s += v
	}
	return s
}
