package detect

import (
	"fmt"
	"math"
	"strings"

	"scalana/internal/minilang"
)

// Render formats the report for terminal output; prog (optional) supplies
// source snippets for the viewer.
func (rep *Report) Render(prog *minilang.Program) string {
	var sb strings.Builder
	line := func(l int) string {
		if prog == nil {
			return ""
		}
		s := strings.TrimSpace(prog.SourceLine(l))
		if s == "" {
			return ""
		}
		return "  | " + s
	}

	fmt.Fprintf(&sb, "=== ScalAna scaling loss report (largest scale np=%d) ===\n\n", rep.NP)
	fmt.Fprintf(&sb, "non-scalable vertices (%d):\n", len(rep.NonScalable))
	for _, ns := range rep.NonScalable {
		fmt.Fprintf(&sb, "  %-40s slope=%+.2f share=%4.1f%%  %s:%d%s\n",
			ns.VertexKey, ns.Model.B, 100*ns.Share, ns.Vertex.Pos.File, ns.Vertex.Pos.Line, line(ns.Vertex.Pos.Line))
	}
	fmt.Fprintf(&sb, "\nabnormal vertices (%d):\n", len(rep.Abnormal))
	for _, ab := range rep.Abnormal {
		ratio := fmt.Sprintf("%.2f", ab.Ratio)
		if math.IsInf(ab.Ratio, 1) {
			ratio = "inf"
		}
		fmt.Fprintf(&sb, "  %-40s ratio=%-6s outliers=%v  %s:%d%s\n",
			ab.VertexKey, ratio, ab.OutlierRanks, ab.Vertex.Pos.File, ab.Vertex.Pos.Line, line(ab.Vertex.Pos.Line))
	}
	fmt.Fprintf(&sb, "\nbacktracking paths (%d):\n", len(rep.Paths))
	for i, p := range rep.Paths {
		fmt.Fprintf(&sb, "  path %d:\n", i+1)
		for _, s := range p.Steps {
			extra := ""
			if s.Via == ViaComm {
				extra = fmt.Sprintf(" (waited %s)", fmtSec(s.Wait))
			}
			fmt.Fprintf(&sb, "    %-7s rank %-4d %-6s %s:%d%s%s\n",
				s.Via, s.Rank, s.Vertex.Kind, s.Vertex.Pos.File, s.Vertex.Pos.Line, extra, line(s.Vertex.Pos.Line))
		}
	}
	fmt.Fprintf(&sb, "\nroot causes (ranked):\n")
	for i, c := range rep.Causes {
		fmt.Fprintf(&sb, "  %d. %s %s at %s:%d  score=%.3f share=%.1f%% imbalance=%.1f paths=%d%s\n",
			i+1, c.Vertex.Kind, c.Vertex.Name, c.Vertex.Pos.File, c.Vertex.Pos.Line,
			c.Score, 100*c.Share, c.Imbalance, c.Paths, line(c.Vertex.Pos.Line))
	}
	return sb.String()
}

func fmtSec(s float64) string {
	switch {
	case s >= 1:
		return fmt.Sprintf("%.3fs", s)
	case s >= 1e-3:
		return fmt.Sprintf("%.2fms", s*1e3)
	default:
		return fmt.Sprintf("%.1fus", s*1e6)
	}
}
