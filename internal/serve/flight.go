package serve

import "sync"

// flight is one in-progress computation and its eventual result.
type flight struct {
	done chan struct{}
	data []byte
	err  error
}

// flightGroup gives request-level dedup (single-flight): concurrent
// calls with one key run the function once and share its result. Unlike
// a cache, nothing outlives the computation — the entry is removed as
// soon as the result is published, so a later identical request
// recomputes (detection inputs are content-addressed, but detect
// configs and simulate parameters are not worth caching speculatively).
type flightGroup struct {
	mu sync.Mutex
	m  map[string]*flight
}

// Do runs fn under key, coalescing concurrent duplicates. The joined
// callback (optional) fires on a caller that found an in-flight
// computation, before it blocks waiting — that ordering is what lets
// tests deterministically observe "a second request has coalesced"
// while the first is still computing. Returns the shared result and
// whether this call joined rather than computed.
func (g *flightGroup) Do(key string, joined func(), fn func() ([]byte, error)) ([]byte, bool, error) {
	g.mu.Lock()
	if g.m == nil {
		g.m = map[string]*flight{}
	}
	if f, ok := g.m[key]; ok {
		g.mu.Unlock()
		if joined != nil {
			joined()
		}
		<-f.done
		return f.data, true, f.err
	}
	f := &flight{done: make(chan struct{})}
	g.m[key] = f
	g.mu.Unlock()

	f.data, f.err = fn()

	g.mu.Lock()
	delete(g.m, key)
	g.mu.Unlock()
	close(f.done)
	return f.data, false, f.err
}
