package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"scalana/internal/detect"
	"scalana/internal/ppg"
	"scalana/internal/prof"
	"scalana/internal/store"
	"scalana/internal/synth"

	scalana "scalana"
)

// newTestServer builds a server over a temp store with serial
// simulation (deterministic and CI-friendly on one CPU).
func newTestServer(t *testing.T) (*Server, *httptest.Server) {
	t.Helper()
	st, err := store.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv, err := New(Config{Store: st, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return srv, ts
}

func post(t *testing.T, url, contentType string, body []byte) (int, []byte) {
	t.Helper()
	resp, err := http.Post(url, contentType, bytes.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("POST %s: read body: %v", url, err)
	}
	return resp.StatusCode, data
}

func get(t *testing.T, url string) (int, []byte) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatalf("GET %s: read body: %v", url, err)
	}
	return resp.StatusCode, data
}

// encodeSets profiles an app at each scale and returns the wire bytes
// per scale — what a client would upload.
func encodeSets(t *testing.T, eng *scalana.Engine, app *scalana.App, nps []int, hz float64) map[int][]byte {
	t.Helper()
	pcfg := prof.DefaultConfig()
	pcfg.SampleHz = hz
	sets := make(map[int][]byte, len(nps))
	for _, np := range nps {
		out, err := eng.Run(scalana.RunConfig{App: app, NP: np, ToolName: "scalana", Prof: pcfg})
		if err != nil {
			t.Fatalf("profile %s np=%d: %v", app.Name, np, err)
		}
		ps := &prof.ProfileSet{App: app.Name, NP: np, Elapsed: out.Result.Elapsed, Profiles: out.Profiles()}
		data, err := prof.EncodeProfileSet(ps)
		if err != nil {
			t.Fatalf("encode np=%d: %v", np, err)
		}
		sets[np] = data
	}
	return sets
}

// offlineReport reproduces scalana-detect's -profiles code path in
// process: decode the wire bytes, assemble PPGs, detect, encode — the
// bytes the CLI would write with -json.
func offlineReport(t *testing.T, app *scalana.App, nps []int, sets map[int][]byte, dcfg detect.Config) []byte {
	t.Helper()
	_, graph, err := scalana.Compile(app)
	if err != nil {
		t.Fatal(err)
	}
	var runs []detect.ScaleRun
	for _, np := range nps {
		ps, err := prof.DecodeProfileSet(sets[np], graph)
		if err != nil {
			t.Fatalf("decode np=%d: %v", np, err)
		}
		pg, err := ppg.Build(graph, ps.Profiles)
		if err != nil {
			t.Fatalf("build PPG np=%d: %v", np, err)
		}
		runs = append(runs, detect.ScaleRun{NP: np, PPG: pg})
	}
	rep, err := scalana.DetectScalingLoss(runs, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	data, err := rep.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	return append(data, '\n')
}

// TestServedDetectByteIdenticalSynthCase is the acceptance harness: a
// synth-corpus case is registered with the server, its profile sets are
// uploaded, and the served detect report must be byte-identical to the
// offline scalana-detect -json pipeline over the same wire bytes.
func TestServedDetectByteIdenticalSynthCase(t *testing.T) {
	corpus, err := synth.Generate(synth.GenConfig{Seed: 1, Cases: 1})
	if err != nil {
		t.Fatal(err)
	}
	c := corpus.Cases[0]
	app := c.App()
	nps := []int{c.MinNP, c.MinNP * 2}

	srv, ts := newTestServer(t)
	eng := scalana.NewEngine()
	sets := encodeSets(t, eng, app, nps, 1000)
	offline := offlineReport(t, app, nps, sets, detect.DefaultConfig())

	// Register the case's source, then upload its profile sets.
	appBody, _ := json.Marshal(appUploadJSON{Name: app.Name, Source: app.Source, MinNP: app.MinNP})
	if code, body := post(t, ts.URL+"/v1/apps", "application/json", appBody); code != http.StatusCreated {
		t.Fatalf("register app: %d %s", code, body)
	}
	for _, np := range nps {
		if code, body := post(t, ts.URL+"/v1/profiles", "application/json", sets[np]); code != http.StatusCreated {
			t.Fatalf("upload np=%d: %d %s", np, code, body)
		}
	}

	req, _ := json.Marshal(detectRequest{App: app.Name, Scales: nps})
	code, served := post(t, ts.URL+"/v1/detect", "application/json", req)
	if code != http.StatusOK {
		t.Fatalf("detect: %d %s", code, served)
	}
	if !bytes.Equal(served, offline) {
		t.Fatalf("served report differs from offline scalana-detect -json output\nserved %d bytes, offline %d bytes", len(served), len(offline))
	}

	// Omitting scales selects every stored scale ascending — same report.
	req2, _ := json.Marshal(detectRequest{App: app.Name})
	if code, served2 := post(t, ts.URL+"/v1/detect", "application/json", req2); code != http.StatusOK || !bytes.Equal(served2, served) {
		t.Fatalf("detect without scales: %d, identical=%t", code, bytes.Equal(served2, served))
	}

	// The shared engine compiled the uploaded app once: registration,
	// two uploads, and two detect queries all hit one cache entry.
	if cs := srv.engine.CacheStats(); cs.Misses != 1 {
		t.Fatalf("expected one compile miss across uploads+queries, got %+v", cs)
	}
}

// TestStoredBytesByteIdentical uploads the committed cg fixtures over
// HTTP and reads them back unchanged, and checks the served detect
// report against the offline pipeline over those same fixtures.
func TestStoredBytesByteIdentical(t *testing.T) {
	_, ts := newTestServer(t)
	app := scalana.GetApp("cg")
	sets := map[int][]byte{}
	for _, np := range []int{4, 8} {
		data, err := os.ReadFile(filepath.Join("..", "..", "testdata", fmt.Sprintf("cg.%d.json", np)))
		if err != nil {
			t.Fatal(err)
		}
		sets[np] = data
		code, body := post(t, ts.URL+"/v1/profiles", "application/json", data)
		if code != http.StatusCreated {
			t.Fatalf("upload cg.%d: %d %s", np, code, body)
		}
		var res struct {
			store.Key
			Size int64 `json:"size"`
		}
		if err := json.Unmarshal(body, &res); err != nil {
			t.Fatal(err)
		}
		if res.Hash != store.HashOf(data) || res.NP != np || res.App != "cg" {
			t.Fatalf("upload result %+v", res)
		}
		code, back := get(t, fmt.Sprintf("%s/v1/profiles/cg/%d/%s", ts.URL, np, res.Hash))
		if code != http.StatusOK || !bytes.Equal(back, data) {
			t.Fatalf("GET stored cg.%d: %d, identical=%t", np, code, bytes.Equal(back, data))
		}
	}

	offline := offlineReport(t, app, []int{4, 8}, sets, detect.DefaultConfig())
	req, _ := json.Marshal(detectRequest{App: "cg", Scales: []int{4, 8}})
	code, served := post(t, ts.URL+"/v1/detect", "application/json", req)
	if code != http.StatusOK || !bytes.Equal(served, offline) {
		t.Fatalf("served cg report: %d, identical=%t", code, bytes.Equal(served, offline))
	}
}

// TestDetectCoalescing is the acceptance test for request dedup: two
// concurrent identical detect requests must trigger exactly one
// simulation. The detectGate hook holds the first computation open
// until the second request has verifiably joined the flight.
func TestDetectCoalescing(t *testing.T) {
	srv, ts := newTestServer(t)
	gate := make(chan struct{})
	srv.detectGate = gate

	body, _ := json.Marshal(detectRequest{App: "cg", Scales: []int{4, 8}, Simulate: true})
	type result struct {
		code int
		data []byte
	}
	results := make(chan result, 2)
	var wg sync.WaitGroup
	launch := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, data := post(t, ts.URL+"/v1/detect", "application/json", body)
			results <- result{code, data}
		}()
	}

	waitFor := func(desc string, pred func() bool) {
		t.Helper()
		for i := 0; i < 1000; i++ {
			if pred() {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", desc)
	}

	launch() // first request starts computing and blocks on the gate
	waitFor("first compute to start", func() bool { return srv.detectComputes.Load() == 1 })
	launch() // second identical request must join, not compute
	waitFor("second request to coalesce", func() bool { return srv.detectCoalesced.Load() == 1 })
	close(gate)
	wg.Wait()
	close(results)

	var bodies [][]byte
	for r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("detect: %d %s", r.code, r.data)
		}
		bodies = append(bodies, r.data)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatal("coalesced responses differ")
	}
	if got := srv.detectComputes.Load(); got != 1 {
		t.Fatalf("expected exactly one detect computation, got %d", got)
	}
	if st := srv.Stats(); st.DetectComputes != 1 || st.DetectCoalesced != 1 {
		t.Fatalf("stats %+v", st)
	}

	// A third identical request after completion recomputes (the flight
	// group dedups in-flight work, it is not a response cache) — and the
	// report is byte-identical, which is the determinism contract.
	code, third := post(t, ts.URL+"/v1/detect", "application/json", body)
	if code != http.StatusOK || !bytes.Equal(third, bodies[0]) {
		t.Fatalf("post-flight request: %d, identical=%t", code, bytes.Equal(third, bodies[0]))
	}
	if got := srv.detectComputes.Load(); got != 2 {
		t.Fatalf("expected a second computation after the flight drained, got %d", got)
	}
}

// TestSimulateMatchesStored: simulate-mode detect over (app, scales)
// equals stored-mode detect over uploads produced at the same hz/seed.
func TestSimulateMatchesStored(t *testing.T) {
	_, ts := newTestServer(t)
	app := scalana.GetApp("cg")
	nps := []int{4, 8}
	sets := encodeSets(t, scalana.NewEngine(), app, nps, 1000)
	for _, np := range nps {
		if code, body := post(t, ts.URL+"/v1/profiles", "application/json", sets[np]); code != http.StatusCreated {
			t.Fatalf("upload np=%d: %d %s", np, code, body)
		}
	}
	storedReq, _ := json.Marshal(detectRequest{App: "cg", Scales: nps})
	simReq, _ := json.Marshal(detectRequest{App: "cg", Scales: nps, Simulate: true})
	codeA, stored := post(t, ts.URL+"/v1/detect", "application/json", storedReq)
	codeB, simulated := post(t, ts.URL+"/v1/detect", "application/json", simReq)
	if codeA != http.StatusOK || codeB != http.StatusOK {
		t.Fatalf("detect: stored=%d simulated=%d", codeA, codeB)
	}
	if !bytes.Equal(stored, simulated) {
		t.Fatal("simulate-mode report differs from stored-mode report for identical inputs")
	}
}

func TestDetectValidation(t *testing.T) {
	_, ts := newTestServer(t)
	cases := []struct {
		name string
		req  detectRequest
		code int
	}{
		{"unknown app", detectRequest{App: "no-such-app", Scales: []int{4}}, http.StatusNotFound},
		{"duplicate scales", detectRequest{App: "cg", Scales: []int{4, 4}}, http.StatusBadRequest},
		{"zero scale", detectRequest{App: "cg", Scales: []int{0}}, http.StatusBadRequest},
		{"nothing stored", detectRequest{App: "cg", Scales: []int{4}}, http.StatusNotFound},
		{"empty store, no scales", detectRequest{App: "cg"}, http.StatusNotFound},
		{"simulate needs scales", detectRequest{App: "cg", Simulate: true}, http.StatusBadRequest},
		{"simulate below MinNP", detectRequest{App: "cg", Simulate: true, Scales: []int{1, 4}}, http.StatusBadRequest},
		{"scales and hashes", detectRequest{App: "cg", Scales: []int{4}, Hashes: []string{"ab"}}, http.StatusBadRequest},
		{"simulate with hashes", detectRequest{App: "cg", Simulate: true, Scales: []int{4}, Hashes: []string{"ab"}}, http.StatusBadRequest},
	}
	for _, tc := range cases {
		body, _ := json.Marshal(tc.req)
		if code, resp := post(t, ts.URL+"/v1/detect", "application/json", body); code != tc.code {
			t.Errorf("%s: got %d (%s), want %d", tc.name, code, resp, tc.code)
		}
	}
}

func TestAmbiguousScaleNeedsHash(t *testing.T) {
	srv, ts := newTestServer(t)
	app := scalana.GetApp("cg")
	nps := []int{4}
	// Two different uploads for one (app, np): different sampling rates.
	a := encodeSets(t, srv.engine, app, nps, 1000)[4]
	b := encodeSets(t, srv.engine, app, nps, 500)[4]
	if bytes.Equal(a, b) {
		t.Fatal("test needs two distinct profile sets")
	}
	for _, data := range [][]byte{a, b} {
		if code, body := post(t, ts.URL+"/v1/profiles", "application/json", data); code != http.StatusCreated {
			t.Fatalf("upload: %d %s", code, body)
		}
	}
	req, _ := json.Marshal(detectRequest{App: "cg", Scales: []int{4}})
	if code, _ := post(t, ts.URL+"/v1/detect", "application/json", req); code != http.StatusConflict {
		t.Fatalf("ambiguous scale: got %d, want 409", code)
	}
	// Naming the hash (a unique prefix) disambiguates.
	req2, _ := json.Marshal(detectRequest{App: "cg", Hashes: []string{store.HashOf(a)[:16]}})
	if code, body := post(t, ts.URL+"/v1/detect", "application/json", req2); code != http.StatusOK {
		t.Fatalf("hash-selected detect: %d %s", code, body)
	}
}

func TestUploadValidation(t *testing.T) {
	_, ts := newTestServer(t)
	if code, _ := post(t, ts.URL+"/v1/profiles", "application/json", []byte(`{"app":"no-such-app","np":4}`)); code != http.StatusNotFound {
		t.Fatalf("unknown app upload: got %d, want 404", code)
	}
	if code, _ := post(t, ts.URL+"/v1/profiles", "application/json", []byte(`not json`)); code != http.StatusBadRequest {
		t.Fatalf("malformed upload: got %d, want 400", code)
	}
	// Valid envelope, but profiles naming vertices cg does not have.
	bad := []byte(`{"app":"cg","np":4,"elapsed":1,"profiles":[{"rank":0,"np":4,"vertex":{"bogus@1":{}},"comm":[],"indirect":[]}]}`)
	if code, _ := post(t, ts.URL+"/v1/profiles", "application/json", bad); code != http.StatusBadRequest {
		t.Fatalf("mismatched profile upload: got %d, want 400", code)
	}
	// Nothing invalid may have landed in the store.
	if code, body := get(t, ts.URL+"/v1/profiles"); code != http.StatusOK || !bytes.Contains(body, []byte(`"sets": null`)) {
		t.Fatalf("store not empty after rejected uploads: %d %s", code, body)
	}
}

func TestAppUploadValidation(t *testing.T) {
	_, ts := newTestServer(t)
	// Bundled name collision.
	body, _ := json.Marshal(appUploadJSON{Name: "cg", Source: "def main() {}"})
	if code, _ := post(t, ts.URL+"/v1/apps", "application/json", body); code != http.StatusConflict {
		t.Fatal("bundled-name registration did not 409")
	}
	// Bad source fails compilation.
	body, _ = json.Marshal(appUploadJSON{Name: "broken", Source: "def ("})
	if code, _ := post(t, ts.URL+"/v1/apps", "application/json", body); code != http.StatusBadRequest {
		t.Fatal("uncompilable source did not 400")
	}
	// Re-registering identical source is idempotent; different source conflicts.
	src := scalana.GetApp("cg").Source
	body, _ = json.Marshal(appUploadJSON{Name: "cg-copy", Source: src, MinNP: 2})
	if code, _ := post(t, ts.URL+"/v1/apps", "application/json", body); code != http.StatusCreated {
		t.Fatal("first registration failed")
	}
	if code, _ := post(t, ts.URL+"/v1/apps", "application/json", body); code != http.StatusOK {
		t.Fatal("idempotent re-registration failed")
	}
	body2, _ := json.Marshal(appUploadJSON{Name: "cg-copy", Source: src + "\n", MinNP: 2})
	if code, _ := post(t, ts.URL+"/v1/apps", "application/json", body2); code != http.StatusConflict {
		t.Fatal("conflicting re-registration did not 409")
	}
}

func TestSweepEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	app := scalana.GetApp("cg")
	nps := []int{4, 8}
	sets := encodeSets(t, srv.engine, app, nps, 1000)
	for _, np := range nps {
		post(t, ts.URL+"/v1/profiles", "application/json", sets[np])
	}
	code, body := get(t, ts.URL+"/v1/sweep?app=cg")
	if code != http.StatusOK {
		t.Fatalf("sweep: %d %s", code, body)
	}
	var resp sweepResponseJSON
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if len(resp.Runs) != 2 || resp.Runs[0].NP != 4 || resp.Runs[1].NP != 8 {
		t.Fatalf("sweep runs %+v", resp.Runs)
	}
	if resp.Runs[0].Speedup != 1 || resp.Runs[0].Efficiency != 1 {
		t.Fatalf("base scale not normalized: %+v", resp.Runs[0])
	}
	if resp.Model == nil {
		t.Fatal("sweep over two scales has no fitted model")
	}
	// Identical query twice: deterministic bytes.
	_, body2 := get(t, ts.URL+"/v1/sweep?app=cg")
	if !bytes.Equal(body, body2) {
		t.Fatal("sweep response is not deterministic")
	}
	if code, _ := get(t, ts.URL+"/v1/sweep?app=cg&scales=4,4"); code != http.StatusBadRequest {
		t.Fatal("duplicate scales in sweep query did not 400")
	}
}

func TestCommEndpoint(t *testing.T) {
	_, ts := newTestServer(t)
	code, body := get(t, ts.URL+"/v1/comm?app=cg&np=4")
	if code != http.StatusOK {
		t.Fatalf("comm: %d %s", code, body)
	}
	var resp commResponseJSON
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.NP != 4 || len(resp.Bytes) != 16 || len(resp.Msgs) != 16 {
		t.Fatalf("comm matrix shape: np=%d bytes=%d msgs=%d", resp.NP, len(resp.Bytes), len(resp.Msgs))
	}
	if resp.TotalBytes <= 0 || len(resp.TopFlows) == 0 {
		t.Fatalf("comm matrix empty: total=%v flows=%d", resp.TotalBytes, len(resp.TopFlows))
	}
	_, body2 := get(t, ts.URL+"/v1/comm?app=cg&np=4")
	if !bytes.Equal(body, body2) {
		t.Fatal("comm response is not deterministic")
	}
	if code, _ := get(t, ts.URL+"/v1/comm?app=cg&np=1"); code != http.StatusBadRequest {
		t.Fatal("np below MinNP did not 400")
	}
}

func TestHealthAndStats(t *testing.T) {
	_, ts := newTestServer(t)
	if code, body := get(t, ts.URL+"/healthz"); code != http.StatusOK || string(body) != "ok\n" {
		t.Fatalf("healthz: %d %q", code, body)
	}
	code, body := get(t, ts.URL+"/v1/stats")
	if code != http.StatusOK {
		t.Fatalf("stats: %d", code)
	}
	var st Stats
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatal(err)
	}
	if code, _ := get(t, ts.URL+"/v1/apps"); code != http.StatusOK {
		t.Fatal("apps listing failed")
	}
}
