// Package serve implements detection-as-a-service: the HTTP core behind
// cmd/scalana-serve. The paper's four-step workflow (profile → build
// PPG → detect → report, §V) is exactly a request/response shape, and a
// production deployment runs it continuously against many applications
// at many scales — so profile sets persist in a content-addressed store
// (internal/store), one scalana.Engine is shared across every request
// (PSG and bytecode compilation amortize across uploads of the same
// app), simulation work is bounded by a worker gate sized by the
// SweepConfig.Parallelism knob, and concurrent identical detect
// requests coalesce into one computation (single-flight keyed by the
// stored content hashes plus the normalized detect config).
//
// Endpoints (all JSON):
//
//	GET  /healthz                         liveness
//	GET  /v1/stats                        counters: uploads, computes, coalescing, compile cache
//	GET  /v1/apps                         bundled + uploaded application names
//	POST /v1/apps                         register an ad-hoc app {name, source, min_np}
//	POST /v1/profiles                     upload a profile set (prof.EncodeProfileSet bytes)
//	GET  /v1/profiles[?app=]              list stored sets
//	GET  /v1/profiles/{app}/{np}/{hash}   stored bytes, byte-identical to the upload
//	POST /v1/detect                       detect report (detect.EncodeJSON bytes)
//	GET  /v1/sweep?app=&scales=           per-scale elapsed/speedup/efficiency + log-log model
//	GET  /v1/comm?app=&np=                simulated rank-to-rank communication matrix
//	POST /v1/baseline                     warm/rebuild rolling baselines {app, rebuild}
//	GET  /v1/watch?app=[&np=]             newest run vs rolling baseline (baseline.EncodeJSON bytes)
//
// A detect request reads stored profile sets by default (name scales,
// or hashes, or nothing for "every stored scale"); with "simulate":
// true it sweeps the app on the simulator instead. Either way the
// response bytes are exactly what scalana-detect -json writes for the
// same inputs.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"

	"scalana/internal/baseline"
	"scalana/internal/commmatrix"
	"scalana/internal/detect"
	"scalana/internal/fit"
	"scalana/internal/ppg"
	"scalana/internal/prof"
	"scalana/internal/psg"
	"scalana/internal/scales"
	"scalana/internal/store"

	scalana "scalana"
)

// Config configures a Server.
type Config struct {
	// Store is the content-addressed profile store (required).
	Store *store.Store
	// Engine is the shared compile cache; nil creates a fresh one. One
	// engine serves every request, so PSG and bytecode compilation for an
	// app happen once no matter how many uploads and queries touch it.
	Engine *scalana.Engine
	// Parallelism is the SweepConfig.Parallelism knob, reused at the
	// service level: it bounds how many simulation/PPG computations run
	// concurrently across all requests, and each simulate-mode sweep fans
	// its scales across the same bound. 0 means one worker per CPU.
	Parallelism int
	// SampleHz is the profiler rate for simulate-mode detect runs
	// (default 1000, matching scalana-detect's flag default).
	SampleHz float64
	// Watch sets the default regression-flagging thresholds for
	// /v1/watch; zero fields take baseline.DefaultParams. Individual
	// requests may override them via query parameters.
	Watch baseline.Params
	// Merge is the cross-rank merge strategy baselines are built with.
	// It is server-wide, not per-request: samples cached under one
	// strategy are not comparable to baselines built under another.
	Merge fit.MergeStrategy
	// Logf receives one line per request (nil disables logging).
	Logf func(format string, args ...any)
}

// Server is the detection service. Create with New; safe for concurrent
// use.
type Server struct {
	st       *store.Store
	engine   *scalana.Engine
	parallel int
	sampleHz float64
	logf     func(format string, args ...any)

	// gate bounds concurrent simulation/PPG work across requests.
	gate chan struct{}

	// flights coalesces concurrent identical computations per endpoint.
	flights flightGroup

	mu       sync.Mutex
	uploaded map[string]*scalana.App

	// watch holds the server-wide default flagging thresholds; merge the
	// server-wide baseline merge strategy.
	watch baseline.Params
	merge fit.MergeStrategy

	// samples caches ingested baseline samples by store key. Entries are
	// content-addressed (derived from stored bytes + compiled graph +
	// server-wide merge strategy only), so the cache never invalidates.
	sampleMu sync.Mutex
	samples  map[store.Key]*baseline.Sample

	uploads         atomic.Int64
	detectComputes  atomic.Int64
	detectCoalesced atomic.Int64
	sweepComputes   atomic.Int64
	sweepCoalesced  atomic.Int64
	commComputes    atomic.Int64
	commCoalesced   atomic.Int64
	watchComputes   atomic.Int64
	watchCoalesced  atomic.Int64
	sampleIngests   atomic.Int64

	// detectGate, when non-nil, blocks every detect computation until the
	// channel closes. Test hook: it lets the coalescing test hold the
	// first computation open until a second request has verifiably
	// joined. Set before the server starts handling requests.
	detectGate chan struct{}
	// watchGate is the same hook for watch computations.
	watchGate chan struct{}
}

// New creates a server.
func New(cfg Config) (*Server, error) {
	if cfg.Store == nil {
		return nil, fmt.Errorf("serve: Config.Store is required")
	}
	eng := cfg.Engine
	if eng == nil {
		eng = scalana.NewEngine()
	}
	p := cfg.Parallelism
	if p <= 0 {
		p = runtime.NumCPU()
	}
	hz := cfg.SampleHz
	if hz <= 0 {
		hz = 1000
	}
	return &Server{
		st:       cfg.Store,
		engine:   eng,
		parallel: p,
		sampleHz: hz,
		watch:    cfg.Watch.Normalized(),
		merge:    cfg.Merge,
		samples:  map[store.Key]*baseline.Sample{},
		logf:     cfg.Logf,
		gate:     make(chan struct{}, p),
		uploaded: map[string]*scalana.App{},
	}, nil
}

// Stats is the /v1/stats payload.
type Stats struct {
	// Uploads counts accepted profile-set uploads (idempotent re-uploads
	// included).
	Uploads int64 `json:"uploads"`
	// StoredSets is the number of profile sets currently in the store.
	StoredSets int `json:"stored_sets"`
	// DetectComputes counts detect computations actually performed;
	// DetectCoalesced counts requests answered by joining an in-flight
	// identical computation.
	DetectComputes  int64 `json:"detect_computes"`
	DetectCoalesced int64 `json:"detect_coalesced"`
	SweepComputes   int64 `json:"sweep_computes"`
	SweepCoalesced  int64 `json:"sweep_coalesced"`
	CommComputes    int64 `json:"comm_computes"`
	CommCoalesced   int64 `json:"comm_coalesced"`
	WatchComputes   int64 `json:"watch_computes"`
	WatchCoalesced  int64 `json:"watch_coalesced"`
	// BaselineSamples is the number of ingested samples in the baseline
	// cache; SampleIngests counts ingestions performed (cache misses).
	BaselineSamples int   `json:"baseline_samples"`
	SampleIngests   int64 `json:"sample_ingests"`
	// CompileCache is the shared engine's PSG compile-cache counters.
	CompileCache scalana.CacheStats `json:"compile_cache"`
}

// Stats snapshots the service counters.
func (s *Server) Stats() Stats {
	entries, _ := s.st.List()
	return Stats{
		Uploads:         s.uploads.Load(),
		StoredSets:      len(entries),
		DetectComputes:  s.detectComputes.Load(),
		DetectCoalesced: s.detectCoalesced.Load(),
		SweepComputes:   s.sweepComputes.Load(),
		SweepCoalesced:  s.sweepCoalesced.Load(),
		CommComputes:    s.commComputes.Load(),
		CommCoalesced:   s.commCoalesced.Load(),
		WatchComputes:   s.watchComputes.Load(),
		WatchCoalesced:  s.watchCoalesced.Load(),
		BaselineSamples: s.sampleCount(),
		SampleIngests:   s.sampleIngests.Load(),
		CompileCache:    s.engine.CacheStats(),
	}
}

// httpError carries a status code through the compute path.
type httpError struct {
	code int
	msg  string
}

func (e *httpError) Error() string { return e.msg }

func errf(code int, format string, args ...any) error {
	return &httpError{code: code, msg: fmt.Sprintf(format, args...)}
}

// Handler returns the service's HTTP handler.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("GET /v1/stats", s.handleStats)
	mux.HandleFunc("GET /v1/apps", s.handleListApps)
	mux.HandleFunc("POST /v1/apps", s.handleUploadApp)
	mux.HandleFunc("POST /v1/profiles", s.handleUploadProfiles)
	mux.HandleFunc("GET /v1/profiles", s.handleListProfiles)
	mux.HandleFunc("GET /v1/profiles/{app}/{np}/{hash}", s.handleGetProfiles)
	mux.HandleFunc("POST /v1/detect", s.handleDetect)
	mux.HandleFunc("GET /v1/sweep", s.handleSweep)
	mux.HandleFunc("GET /v1/comm", s.handleComm)
	mux.HandleFunc("POST /v1/baseline", s.handleBaseline)
	mux.HandleFunc("GET /v1/watch", s.handleWatch)
	return s.logged(mux)
}

// logged wraps the mux with one log line per request.
func (s *Server) logged(next http.Handler) http.Handler {
	if s.logf == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		next.ServeHTTP(rec, r)
		s.logf("%s %s -> %d (%d bytes)", r.Method, r.URL.Path, rec.status, rec.bytes)
	})
}

type statusRecorder struct {
	http.ResponseWriter
	status int
	bytes  int64
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func (r *statusRecorder) Write(p []byte) (int, error) {
	n, err := r.ResponseWriter.Write(p)
	r.bytes += int64(n)
	return n, err
}

// writeJSON writes an indented JSON response (trailing newline, like
// every CLI's -json output).
func writeJSON(w http.ResponseWriter, code int, v any) {
	data, err := json.MarshalIndent(v, "", " ")
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "encode response: %v", err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

// writeRaw writes pre-encoded JSON bytes untouched — the byte-identity
// contract for stored profiles and detect reports.
func writeRaw(w http.ResponseWriter, code int, data []byte) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(data)
}

func writeErr(w http.ResponseWriter, code int, format string, args ...any) {
	type errJSON struct {
		Error string `json:"error"`
	}
	data, _ := json.MarshalIndent(errJSON{Error: fmt.Sprintf(format, args...)}, "", " ")
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(append(data, '\n'))
}

// fail maps a compute-path error onto an HTTP response. Store errors
// carry sentinel wraps, so each failure class lands on its own status
// instead of collapsing into 500: malformed client input is 400,
// missing content 404, ambiguous selections 409 (the client must name a
// hash), and corruption — server-side state gone bad — stays 500.
func fail(w http.ResponseWriter, err error) {
	var he *httpError
	if errors.As(err, &he) {
		writeErr(w, he.code, "%s", he.msg)
		return
	}
	switch {
	case errors.Is(err, os.ErrInvalid):
		writeErr(w, http.StatusBadRequest, "%v", err)
	case errors.Is(err, os.ErrNotExist):
		writeErr(w, http.StatusNotFound, "%v", err)
	case errors.Is(err, store.ErrAmbiguous):
		writeErr(w, http.StatusConflict, "%v", err)
	default:
		writeErr(w, http.StatusInternalServerError, "%v", err)
	}
}

// acquire takes one simulation-gate slot.
func (s *Server) acquire() func() {
	s.gate <- struct{}{}
	return func() { <-s.gate }
}

// lookupApp resolves an application name: uploaded apps first, then the
// bundled registry. The returned *App is stable per name for the
// server's lifetime, which is what keys the engine's compile cache.
func (s *Server) lookupApp(name string) *scalana.App {
	s.mu.Lock()
	a := s.uploaded[name]
	s.mu.Unlock()
	if a != nil {
		return a
	}
	return scalana.GetApp(name)
}

// ---- apps ----

type appUploadJSON struct {
	Name        string `json:"name"`
	Source      string `json:"source"`
	MinNP       int    `json:"min_np,omitempty"`
	Description string `json:"description,omitempty"`
}

func (s *Server) handleListApps(w http.ResponseWriter, r *http.Request) {
	type appJSON struct {
		Name  string `json:"name"`
		MinNP int    `json:"min_np"`
	}
	type listJSON struct {
		Bundled  []appJSON `json:"bundled"`
		Uploaded []appJSON `json:"uploaded"`
	}
	var out listJSON
	for _, name := range scalana.AppNames() {
		a := scalana.GetApp(name)
		out.Bundled = append(out.Bundled, appJSON{Name: a.Name, MinNP: a.MinNP})
	}
	s.mu.Lock()
	names := make([]string, 0, len(s.uploaded))
	for name := range s.uploaded {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		a := s.uploaded[name]
		out.Uploaded = append(out.Uploaded, appJSON{Name: a.Name, MinNP: a.MinNP})
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, out)
}

func (s *Server) handleUploadApp(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 16<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read request: %v", err)
		return
	}
	var req appUploadJSON
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "parse request: %v", err)
		return
	}
	if !store.ValidName(req.Name) {
		writeErr(w, http.StatusBadRequest, "invalid app name %q (letters, digits, '.', '_', '-' only)", req.Name)
		return
	}
	if req.Source == "" {
		writeErr(w, http.StatusBadRequest, "app %q has no source", req.Name)
		return
	}
	if req.MinNP < 1 {
		req.MinNP = 2
	}
	if scalana.GetApp(req.Name) != nil {
		writeErr(w, http.StatusConflict, "%q is a bundled workload; pick another name", req.Name)
		return
	}
	type resultJSON struct {
		App    string `json:"app"`
		MinNP  int    `json:"min_np"`
		Status string `json:"status"`
	}
	s.mu.Lock()
	if existing := s.uploaded[req.Name]; existing != nil {
		same := existing.Source == req.Source && existing.MinNP == req.MinNP
		s.mu.Unlock()
		if same {
			writeJSON(w, http.StatusOK, resultJSON{App: req.Name, MinNP: req.MinNP, Status: "exists"})
			return
		}
		writeErr(w, http.StatusConflict, "app %q is already registered with different source", req.Name)
		return
	}
	s.mu.Unlock()
	app := &scalana.App{
		Name:        req.Name,
		File:        req.Name + ".mp",
		Description: req.Description,
		Source:      req.Source,
		MinNP:       req.MinNP,
	}
	// Compile through the shared engine: this both validates the source
	// and warms the cache every later request for this app will hit.
	if _, _, err := s.engine.Compile(app, psg.Options{}); err != nil {
		writeErr(w, http.StatusBadRequest, "compile %s: %v", req.Name, err)
		return
	}
	s.mu.Lock()
	if existing := s.uploaded[req.Name]; existing != nil {
		// Lost a registration race: keep the winner so the engine cache
		// stays keyed by one *App per name.
		same := existing.Source == req.Source && existing.MinNP == req.MinNP
		s.mu.Unlock()
		if same {
			writeJSON(w, http.StatusOK, resultJSON{App: req.Name, MinNP: req.MinNP, Status: "exists"})
			return
		}
		writeErr(w, http.StatusConflict, "app %q is already registered with different source", req.Name)
		return
	}
	s.uploaded[req.Name] = app
	s.mu.Unlock()
	writeJSON(w, http.StatusCreated, resultJSON{App: req.Name, MinNP: req.MinNP, Status: "created"})
}

// ---- profiles ----

func (s *Server) handleUploadProfiles(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 256<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read request: %v", err)
		return
	}
	// Peek at the envelope to find the app before the full validating
	// decode (which needs the app's compiled graph).
	var head struct {
		App string `json:"app"`
		NP  int    `json:"np"`
	}
	if err := json.Unmarshal(body, &head); err != nil {
		writeErr(w, http.StatusBadRequest, "parse profile set: %v", err)
		return
	}
	if !store.ValidName(head.App) {
		writeErr(w, http.StatusBadRequest, "profile set names invalid app %q", head.App)
		return
	}
	app := s.lookupApp(head.App)
	if app == nil {
		writeErr(w, http.StatusNotFound, "unknown app %q: upload its source to /v1/apps first", head.App)
		return
	}
	if head.NP < 1 {
		writeErr(w, http.StatusBadRequest, "profile set has invalid np %d", head.NP)
		return
	}
	_, graph, err := s.engine.Compile(app, psg.Options{})
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "compile %s: %v", head.App, err)
		return
	}
	// Full validating decode against the app's symbol table: uploads that
	// would fail at detect time fail here instead, and only bytes that
	// decode cleanly are ever stored.
	ps, err := prof.DecodeProfileSet(body, graph)
	if err != nil {
		writeErr(w, http.StatusBadRequest, "invalid profile set for %s: %v", head.App, err)
		return
	}
	if ps.NP != head.NP {
		writeErr(w, http.StatusBadRequest, "profile set envelope np %d disagrees with decoded np %d", head.NP, ps.NP)
		return
	}
	key, err := s.st.Put(head.App, head.NP, body)
	if err != nil {
		writeErr(w, http.StatusInternalServerError, "store profile set: %v", err)
		return
	}
	s.uploads.Add(1)
	type resultJSON struct {
		store.Key
		Size  int64 `json:"size"`
		Ranks int   `json:"ranks"`
	}
	writeJSON(w, http.StatusCreated, resultJSON{Key: key, Size: int64(len(body)), Ranks: len(ps.Profiles)})
}

func (s *Server) handleListProfiles(w http.ResponseWriter, r *http.Request) {
	var entries []store.Entry
	var err error
	if app := r.URL.Query().Get("app"); app != "" {
		entries, err = s.st.ListApp(app)
	} else {
		entries, err = s.st.List()
	}
	if err != nil {
		fail(w, err)
		return
	}
	type listJSON struct {
		Sets []store.Entry `json:"sets"`
	}
	writeJSON(w, http.StatusOK, listJSON{Sets: entries})
}

func (s *Server) handleGetProfiles(w http.ResponseWriter, r *http.Request) {
	np, err := strconv.Atoi(r.PathValue("np"))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "bad scale %q", r.PathValue("np"))
		return
	}
	k := store.Key{App: r.PathValue("app"), NP: np, Hash: r.PathValue("hash")}
	data, err := s.st.Get(k)
	if err != nil {
		fail(w, err)
		return
	}
	writeRaw(w, http.StatusOK, data)
}

// ---- detect ----

// detectConfigJSON exposes the user-tunable detect.Config knobs. Zero
// values mean "paper default" (so a slope threshold of exactly 0 is not
// expressible — the CLI has the same property via flag defaults).
type detectConfigJSON struct {
	AbnormThd  float64 `json:"abnorm_thd,omitempty"`
	SlopeThd   float64 `json:"slope_thd,omitempty"`
	MinShare   float64 `json:"min_share,omitempty"`
	TopK       int     `json:"topk,omitempty"`
	CommCauses bool    `json:"comm_causes,omitempty"`
}

// resolve overlays the request's knobs on the paper defaults.
func (j detectConfigJSON) resolve() detect.Config {
	cfg := detect.DefaultConfig()
	if j.AbnormThd != 0 {
		cfg.AbnormThd = j.AbnormThd
	}
	if j.SlopeThd != 0 {
		cfg.SlopeThd = j.SlopeThd
	}
	if j.MinShare != 0 {
		cfg.MinShare = j.MinShare
	}
	if j.TopK != 0 {
		cfg.TopK = j.TopK
	}
	cfg.CommCauses = j.CommCauses
	return cfg
}

// configKey renders the resolved config for the single-flight key.
func configKey(cfg detect.Config) string {
	return fmt.Sprintf("%g|%g|%g|%d|%t", cfg.AbnormThd, cfg.SlopeThd, cfg.MinShare, cfg.TopK, cfg.CommCauses)
}

type detectRequest struct {
	// App names the application (bundled or uploaded).
	App string `json:"app"`
	// Scales selects stored sets by scale (exactly one stored set must
	// exist per scale), or the scales to simulate. Empty means every
	// stored scale, ascending.
	Scales []int `json:"scales,omitempty"`
	// Hashes selects stored sets by content hash (full or unique prefix),
	// mutually exclusive with Scales.
	Hashes []string `json:"hashes,omitempty"`
	// Simulate sweeps the app on the simulator instead of reading the
	// store.
	Simulate bool `json:"simulate,omitempty"`
	// SampleHz, Seed, and Interp configure simulate-mode runs.
	SampleHz float64 `json:"hz,omitempty"`
	Seed     int64   `json:"seed,omitempty"`
	Interp   bool    `json:"interp,omitempty"`
	// Config tunes detection (zero fields = paper defaults).
	Config detectConfigJSON `json:"config,omitempty"`
}

func (s *Server) handleDetect(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read request: %v", err)
		return
	}
	var req detectRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "parse request: %v", err)
		return
	}
	app := s.lookupApp(req.App)
	if app == nil {
		writeErr(w, http.StatusNotFound, "unknown app %q", req.App)
		return
	}
	dcfg := req.Config.resolve()

	key, compute, err := s.planDetect(app, &req, dcfg)
	if err != nil {
		fail(w, err)
		return
	}
	data, _, err := s.flights.Do(key,
		func() { s.detectCoalesced.Add(1) },
		func() ([]byte, error) {
			s.detectComputes.Add(1)
			if s.detectGate != nil {
				<-s.detectGate
			}
			return compute()
		})
	if err != nil {
		fail(w, err)
		return
	}
	writeRaw(w, http.StatusOK, data)
}

// planDetect validates a detect request and returns its single-flight
// key plus the deferred computation. Resolution happens up front — the
// key must name the exact stored content (or simulation parameters) so
// that "identical request" means "identical inputs".
func (s *Server) planDetect(app *scalana.App, req *detectRequest, dcfg detect.Config) (string, func() ([]byte, error), error) {
	if req.Simulate {
		if len(req.Hashes) > 0 {
			return "", nil, errf(http.StatusBadRequest, "simulate mode reads no stored sets; drop \"hashes\"")
		}
		if len(req.Scales) == 0 {
			return "", nil, errf(http.StatusBadRequest, "simulate mode needs \"scales\"")
		}
		if err := scales.Validate(req.Scales); err != nil {
			return "", nil, errf(http.StatusBadRequest, "%v", err)
		}
		for _, np := range req.Scales {
			if np < app.MinNP {
				return "", nil, errf(http.StatusBadRequest, "%s requires at least %d ranks, got %d", app.Name, app.MinNP, np)
			}
		}
		hz := req.SampleHz
		if hz <= 0 {
			hz = s.sampleHz
		}
		key := fmt.Sprintf("detect|%s|sim|%v|hz=%g|seed=%d|interp=%t|%s",
			app.Name, req.Scales, hz, req.Seed, req.Interp, configKey(dcfg))
		nps := append([]int(nil), req.Scales...)
		return key, func() ([]byte, error) {
			release := s.acquire()
			defer release()
			pcfg := prof.DefaultConfig()
			pcfg.SampleHz = hz
			runs, err := s.engine.Sweep(app, nps, scalana.SweepConfig{
				Parallelism: s.parallel,
				Prof:        pcfg,
				Seed:        req.Seed,
				Interp:      req.Interp,
			})
			if err != nil {
				return nil, err
			}
			return encodeReport(runs, dcfg)
		}, nil
	}

	entries, err := s.resolveStored(app.Name, req.Scales, req.Hashes)
	if err != nil {
		return "", nil, err
	}
	parts := make([]string, len(entries))
	for i, e := range entries {
		parts[i] = fmt.Sprintf("%d:%s", e.NP, e.Hash)
	}
	key := fmt.Sprintf("detect|%s|stored|%s|%s", app.Name, strings.Join(parts, ","), configKey(dcfg))
	return key, func() ([]byte, error) {
		runs, err := s.loadRuns(app, entries)
		if err != nil {
			return nil, err
		}
		return encodeReport(runs, dcfg)
	}, nil
}

// resolveStored maps a (scales, hashes) selection onto concrete store
// entries, in request order. With neither, every stored scale for the
// app is used in ascending order; each scale must resolve to exactly
// one stored set.
func (s *Server) resolveStored(appName string, scaleList []int, hashes []string) ([]store.Entry, error) {
	if len(scaleList) > 0 && len(hashes) > 0 {
		return nil, errf(http.StatusBadRequest, "pass \"scales\" or \"hashes\", not both")
	}
	if len(hashes) > 0 {
		entries := make([]store.Entry, 0, len(hashes))
		seenNP := map[int]bool{}
		for _, h := range hashes {
			e, err := s.st.Resolve(appName, h)
			if err != nil {
				return nil, err
			}
			if seenNP[e.NP] {
				return nil, errf(http.StatusBadRequest, "two selected sets share scale np=%d; detection needs one run per scale", e.NP)
			}
			seenNP[e.NP] = true
			entries = append(entries, e)
		}
		return entries, nil
	}
	if len(scaleList) == 0 {
		all, err := s.st.ListApp(appName)
		if err != nil {
			return nil, err
		}
		if len(all) == 0 {
			return nil, errf(http.StatusNotFound, "no profile sets stored for app %q", appName)
		}
		for _, e := range all {
			scaleList = append(scaleList, e.NP)
		}
		sort.Ints(scaleList)
		scaleList = dedupSorted(scaleList)
	} else if err := scales.Validate(scaleList); err != nil {
		return nil, errf(http.StatusBadRequest, "%v", err)
	}
	entries := make([]store.Entry, 0, len(scaleList))
	for _, np := range scaleList {
		e, err := s.st.Only(appName, np)
		if err != nil {
			return nil, err
		}
		entries = append(entries, e)
	}
	return entries, nil
}

func dedupSorted(nps []int) []int {
	out := nps[:0]
	for i, np := range nps {
		if i == 0 || np != nps[i-1] {
			out = append(out, np)
		}
	}
	return out
}

// loadRuns builds per-scale PPGs from stored profile sets. This is the
// service path that replaces the legacy scalana-detect -profiles
// directory loading: the store, not a filename convention, names the
// inputs.
func (s *Server) loadRuns(app *scalana.App, entries []store.Entry) ([]detect.ScaleRun, error) {
	release := s.acquire()
	defer release()
	_, graph, err := s.engine.Compile(app, psg.Options{})
	if err != nil {
		return nil, err
	}
	runs := make([]detect.ScaleRun, 0, len(entries))
	for _, e := range entries {
		data, err := s.st.Get(e.Key)
		if err != nil {
			return nil, err
		}
		ps, err := prof.DecodeProfileSet(data, graph)
		if err != nil {
			return nil, errf(http.StatusConflict, "stored set %s no longer decodes against %s: %v", e.Key, app.Name, err)
		}
		pg, err := ppg.Build(graph, ps.Profiles)
		if err != nil {
			return nil, fmt.Errorf("assemble PPG from %s: %w", e.Key, err)
		}
		runs = append(runs, detect.ScaleRun{NP: e.NP, PPG: pg})
	}
	return runs, nil
}

// encodeReport runs detection and renders the exact bytes scalana-detect
// -json writes (report JSON plus trailing newline).
func encodeReport(runs []detect.ScaleRun, dcfg detect.Config) ([]byte, error) {
	rep, err := scalana.DetectScalingLoss(runs, dcfg)
	if err != nil {
		return nil, err
	}
	data, err := rep.EncodeJSON()
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ---- sweep comparison ----

type sweepRunJSON struct {
	NP      int              `json:"np"`
	Hash    string           `json:"hash"`
	Elapsed detect.WireFloat `json:"elapsed"`
	// Speedup is elapsed at the smallest scale over elapsed here;
	// Efficiency normalizes by the scale ratio (1.0 = perfect strong
	// scaling).
	Speedup    detect.WireFloat `json:"speedup"`
	Efficiency detect.WireFloat `json:"efficiency"`
}

type sweepModelJSON struct {
	A  detect.WireFloat `json:"a"`
	B  detect.WireFloat `json:"b"`
	R2 detect.WireFloat `json:"r2"`
}

type sweepResponseJSON struct {
	App  string         `json:"app"`
	Runs []sweepRunJSON `json:"runs"`
	// Model is the log-log elapsed-vs-np fit (nil with fewer than two
	// scales).
	Model *sweepModelJSON `json:"model,omitempty"`
}

func (s *Server) handleSweep(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	appName := q.Get("app")
	app := s.lookupApp(appName)
	if app == nil {
		writeErr(w, http.StatusNotFound, "unknown app %q", appName)
		return
	}
	var scaleList []int
	if sl := q.Get("scales"); sl != "" {
		var err error
		scaleList, err = scales.Parse(sl)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "scales: %v", err)
			return
		}
	}
	entries, err := s.resolveStored(app.Name, scaleList, nil)
	if err != nil {
		fail(w, err)
		return
	}
	parts := make([]string, len(entries))
	for i, e := range entries {
		parts[i] = fmt.Sprintf("%d:%s", e.NP, e.Hash)
	}
	key := fmt.Sprintf("sweep|%s|%s", app.Name, strings.Join(parts, ","))
	data, _, err := s.flights.Do(key,
		func() { s.sweepCoalesced.Add(1) },
		func() ([]byte, error) {
			s.sweepComputes.Add(1)
			return s.computeSweep(app, entries)
		})
	if err != nil {
		fail(w, err)
		return
	}
	writeRaw(w, http.StatusOK, data)
}

func (s *Server) computeSweep(app *scalana.App, entries []store.Entry) ([]byte, error) {
	release := s.acquire()
	defer release()
	_, graph, err := s.engine.Compile(app, psg.Options{})
	if err != nil {
		return nil, err
	}
	resp := sweepResponseJSON{App: app.Name}
	var nps, elapsed []float64
	for _, e := range entries {
		data, err := s.st.Get(e.Key)
		if err != nil {
			return nil, err
		}
		ps, err := prof.DecodeProfileSet(data, graph)
		if err != nil {
			return nil, errf(http.StatusConflict, "stored set %s no longer decodes against %s: %v", e.Key, app.Name, err)
		}
		resp.Runs = append(resp.Runs, sweepRunJSON{NP: e.NP, Hash: e.Hash, Elapsed: detect.WireFloat(ps.Elapsed)})
		nps = append(nps, float64(e.NP))
		elapsed = append(elapsed, ps.Elapsed)
	}
	if len(resp.Runs) > 0 {
		baseNP, baseT := float64(resp.Runs[0].NP), float64(resp.Runs[0].Elapsed)
		for i := range resp.Runs {
			sp := baseT / float64(resp.Runs[i].Elapsed)
			resp.Runs[i].Speedup = detect.WireFloat(sp)
			resp.Runs[i].Efficiency = detect.WireFloat(sp * baseNP / float64(resp.Runs[i].NP))
		}
	}
	if model, err := fit.FitLogLog(nps, elapsed); err == nil {
		resp.Model = &sweepModelJSON{A: detect.WireFloat(model.A), B: detect.WireFloat(model.B), R2: detect.WireFloat(model.R2)}
	}
	data, err := json.MarshalIndent(resp, "", " ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ---- comm matrix ----

type commFlowJSON struct {
	Src   int              `json:"src"`
	Dst   int              `json:"dst"`
	Bytes detect.WireFloat `json:"bytes"`
	Msgs  int64            `json:"msgs"`
}

type commResponseJSON struct {
	App        string           `json:"app"`
	NP         int              `json:"np"`
	Seed       int64            `json:"seed"`
	TotalBytes detect.WireFloat `json:"total_bytes"`
	// Bytes and Msgs are the dense np*np traffic matrices in row-major
	// order (src*np+dst), as collected by the commmatrix tool.
	Bytes    []detect.WireFloat `json:"bytes"`
	Msgs     []int64            `json:"msgs"`
	TopFlows []commFlowJSON     `json:"top_flows"`
}

func (s *Server) handleComm(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	appName := q.Get("app")
	app := s.lookupApp(appName)
	if app == nil {
		writeErr(w, http.StatusNotFound, "unknown app %q", appName)
		return
	}
	np, err := strconv.Atoi(q.Get("np"))
	if err != nil || np < 1 {
		writeErr(w, http.StatusBadRequest, "bad np %q", q.Get("np"))
		return
	}
	if np < app.MinNP {
		writeErr(w, http.StatusBadRequest, "%s requires at least %d ranks, got %d", app.Name, app.MinNP, np)
		return
	}
	var seed int64
	if sv := q.Get("seed"); sv != "" {
		seed, err = strconv.ParseInt(sv, 10, 64)
		if err != nil {
			writeErr(w, http.StatusBadRequest, "bad seed %q", sv)
			return
		}
	}
	key := fmt.Sprintf("comm|%s|np=%d|seed=%d", app.Name, np, seed)
	data, _, err := s.flights.Do(key,
		func() { s.commCoalesced.Add(1) },
		func() ([]byte, error) {
			s.commComputes.Add(1)
			return s.computeComm(app, np, seed)
		})
	if err != nil {
		fail(w, err)
		return
	}
	writeRaw(w, http.StatusOK, data)
}

func (s *Server) computeComm(app *scalana.App, np int, seed int64) ([]byte, error) {
	release := s.acquire()
	defer release()
	out, err := s.engine.Run(scalana.RunConfig{App: app, NP: np, ToolName: "commmatrix", Seed: seed})
	if err != nil {
		return nil, err
	}
	m, ok := out.Measurement.Data().(*commmatrix.Matrix)
	if !ok {
		return nil, fmt.Errorf("commmatrix tool produced no matrix")
	}
	resp := commResponseJSON{
		App: app.Name, NP: np, Seed: seed,
		TotalBytes: detect.WireFloat(m.TotalBytes()),
		Bytes:      make([]detect.WireFloat, len(m.Bytes)),
		Msgs:       m.Msgs,
	}
	for i, b := range m.Bytes {
		resp.Bytes[i] = detect.WireFloat(b)
	}
	for _, f := range m.TopFlows(10) {
		resp.TopFlows = append(resp.TopFlows, commFlowJSON{Src: f.Src, Dst: f.Dst, Bytes: detect.WireFloat(f.Bytes), Msgs: f.Msgs})
	}
	data, err := json.MarshalIndent(resp, "", " ")
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ---- stats ----

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.Stats())
}
