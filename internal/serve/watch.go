package serve

// Streaming regression endpoints. /v1/watch scores the newest stored
// run at one scale against the rolling baseline built from every
// earlier run (internal/baseline), and /v1/baseline warms or rebuilds
// the server's sample cache from the store. Watch responses are exactly
// baseline.EncodeJSON()+'\n' — byte-identical to scalana-detect -watch
// -json over the same store — and concurrent identical watch requests
// coalesce into one computation, keyed by the full run history plus the
// resolved thresholds, the same single-flight regime detect uses.

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"sort"
	"strconv"
	"strings"

	"scalana/internal/baseline"
	"scalana/internal/psg"
	"scalana/internal/store"

	scalana "scalana"
)

// sampleCount returns the baseline cache size.
func (s *Server) sampleCount() int {
	s.sampleMu.Lock()
	defer s.sampleMu.Unlock()
	return len(s.samples)
}

// dropSamples evicts cached samples for one app (rebuild support).
func (s *Server) dropSamples(appName string) int {
	s.sampleMu.Lock()
	defer s.sampleMu.Unlock()
	n := 0
	for k := range s.samples {
		if k.App == appName {
			delete(s.samples, k)
			n++
		}
	}
	return n
}

// sampleFor returns the ingested sample for one stored set, from cache
// or by decoding the stored bytes against the app's compiled graph.
// Samples are content-addressed, so a concurrent double-ingest is
// wasted work but never a wrong answer.
func (s *Server) sampleFor(app *scalana.App, e store.Entry) (*baseline.Sample, error) {
	s.sampleMu.Lock()
	smp := s.samples[e.Key]
	s.sampleMu.Unlock()
	if smp != nil {
		return smp, nil
	}
	_, graph, err := s.engine.Compile(app, psg.Options{})
	if err != nil {
		return nil, err
	}
	data, err := s.st.Get(e.Key)
	if err != nil {
		return nil, err
	}
	smp, err = baseline.IngestBytes(data, graph, e.Hash, s.merge)
	if err != nil {
		return nil, errf(http.StatusConflict, "stored set %s no longer decodes against %s: %v", e.Key, app.Name, err)
	}
	if smp.NP != e.NP {
		return nil, fmt.Errorf("stored set %s decodes to np=%d: %w", e.Key, smp.NP, store.ErrCorrupt)
	}
	s.sampleIngests.Add(1)
	s.sampleMu.Lock()
	s.samples[e.Key] = smp
	s.sampleMu.Unlock()
	return smp, nil
}

// histories lists every (np, upload-ordered entries) pair for an app,
// scales ascending. The store's History order assigns each run its
// baseline sequence number.
func (s *Server) histories(appName string) ([]int, map[int][]store.Entry, error) {
	entries, err := s.st.ListApp(appName)
	if err != nil {
		return nil, nil, err
	}
	npSet := map[int]bool{}
	for _, e := range entries {
		npSet[e.NP] = true
	}
	nps := make([]int, 0, len(npSet))
	for np := range npSet {
		nps = append(nps, np)
	}
	sort.Ints(nps)
	hists := make(map[int][]store.Entry, len(nps))
	for _, np := range nps {
		h, err := s.st.History(appName, np)
		if err != nil {
			return nil, nil, err
		}
		hists[np] = h
	}
	return nps, hists, nil
}

// buildState assembles the app's full baseline state from the store,
// every scale included (cross-scale slope fits need them all).
func (s *Server) buildState(app *scalana.App, nps []int, hists map[int][]store.Entry) (*baseline.State, error) {
	_, graph, err := s.engine.Compile(app, psg.Options{})
	if err != nil {
		return nil, err
	}
	state := baseline.NewState(app.Name, graph, s.merge)
	for _, np := range nps {
		for seq, e := range hists[np] {
			smp, err := s.sampleFor(app, e)
			if err != nil {
				return nil, err
			}
			if err := state.Add(seq, smp); err != nil {
				return nil, err
			}
		}
	}
	return state, nil
}

// parseWatchParams overlays query-parameter overrides on the server's
// configured thresholds.
func (s *Server) parseWatchParams(q url.Values) (baseline.Params, error) {
	p := s.watch
	for _, f := range []struct {
		name string
		dst  *float64
	}{
		{"z", &p.ZThd},
		{"cusum", &p.CUSUMThd},
		{"cusum-k", &p.CUSUMK},
		{"min-share", &p.MinShare},
	} {
		v := q.Get(f.name)
		if v == "" {
			continue
		}
		x, err := strconv.ParseFloat(v, 64)
		if err != nil || x < 0 {
			return p, errf(http.StatusBadRequest, "bad %s %q", f.name, v)
		}
		*f.dst = x
	}
	if v := q.Get("min-runs"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			return p, errf(http.StatusBadRequest, "bad min-runs %q", v)
		}
		p.MinRuns = n
	}
	return p.Normalized(), nil
}

func paramsKey(p baseline.Params) string {
	return fmt.Sprintf("z=%g|cusum=%g|k=%g|minruns=%d|minshare=%g",
		p.ZThd, p.CUSUMThd, p.CUSUMK, p.MinRuns, p.MinShare)
}

func (s *Server) handleWatch(w http.ResponseWriter, r *http.Request) {
	q := r.URL.Query()
	appName := q.Get("app")
	app := s.lookupApp(appName)
	if app == nil {
		writeErr(w, http.StatusNotFound, "unknown app %q", appName)
		return
	}
	p, err := s.parseWatchParams(q)
	if err != nil {
		fail(w, err)
		return
	}
	np := 0
	if v := q.Get("np"); v != "" {
		np, err = strconv.Atoi(v)
		if err != nil || np < 1 {
			writeErr(w, http.StatusBadRequest, "bad np %q", v)
			return
		}
	}
	nps, hists, err := s.histories(app.Name)
	if err != nil {
		fail(w, err)
		return
	}
	if len(nps) == 0 {
		writeErr(w, http.StatusNotFound, "no profile sets stored for app %q", appName)
		return
	}
	if np == 0 {
		np = nps[len(nps)-1] // default: watch the largest stored scale
	}
	if len(hists[np]) == 0 {
		writeErr(w, http.StatusNotFound, "no profile sets stored for app %q at np=%d", appName, np)
		return
	}

	// The flight key names the exact inputs: every scale's history in
	// upload order (slope fits read all scales) plus the resolved
	// thresholds, so "identical request" means "identical bytes out".
	var parts []string
	for _, n := range nps {
		hashes := make([]string, len(hists[n]))
		for i, e := range hists[n] {
			hashes[i] = e.Hash
		}
		parts = append(parts, fmt.Sprintf("%d:%s", n, strings.Join(hashes, ",")))
	}
	key := fmt.Sprintf("watch|%s|np=%d|%s|%s", app.Name, np, strings.Join(parts, ";"), paramsKey(p))

	data, _, err := s.flights.Do(key,
		func() { s.watchCoalesced.Add(1) },
		func() ([]byte, error) {
			s.watchComputes.Add(1)
			if s.watchGate != nil {
				<-s.watchGate
			}
			return s.computeWatch(app, np, p, nps, hists)
		})
	if err != nil {
		fail(w, err)
		return
	}
	writeRaw(w, http.StatusOK, data)
}

func (s *Server) computeWatch(app *scalana.App, np int, p baseline.Params, nps []int, hists map[int][]store.Entry) ([]byte, error) {
	release := s.acquire()
	defer release()
	state, err := s.buildState(app, nps, hists)
	if err != nil {
		return nil, err
	}
	rep, err := state.Watch(np, p)
	if err != nil {
		return nil, err
	}
	data, err := rep.EncodeJSON()
	if err != nil {
		return nil, err
	}
	return append(data, '\n'), nil
}

// ---- baseline warm/rebuild ----

type baselineRequest struct {
	// App names the application whose stored runs to ingest.
	App string `json:"app"`
	// Rebuild drops the app's cached samples first, forcing re-ingestion
	// from stored bytes.
	Rebuild bool `json:"rebuild,omitempty"`
}

type baselineScaleJSON struct {
	NP   int `json:"np"`
	Runs int `json:"runs"`
}

type baselineResponseJSON struct {
	App      string              `json:"app"`
	Merge    string              `json:"merge"`
	Scales   []baselineScaleJSON `json:"scales"`
	Runs     int                 `json:"runs"`
	Ingested int64               `json:"ingested"`
	Evicted  int                 `json:"evicted,omitempty"`
}

func (s *Server) handleBaseline(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, 1<<20))
	if err != nil {
		writeErr(w, http.StatusBadRequest, "read request: %v", err)
		return
	}
	var req baselineRequest
	if err := json.Unmarshal(body, &req); err != nil {
		writeErr(w, http.StatusBadRequest, "parse request: %v", err)
		return
	}
	app := s.lookupApp(req.App)
	if app == nil {
		writeErr(w, http.StatusNotFound, "unknown app %q", req.App)
		return
	}
	evicted := 0
	if req.Rebuild {
		evicted = s.dropSamples(app.Name)
	}
	nps, hists, err := s.histories(app.Name)
	if err != nil {
		fail(w, err)
		return
	}
	if len(nps) == 0 {
		writeErr(w, http.StatusNotFound, "no profile sets stored for app %q", req.App)
		return
	}
	release := s.acquire()
	before := s.sampleIngests.Load()
	resp := baselineResponseJSON{App: app.Name, Merge: s.merge.String(), Evicted: evicted}
	for _, np := range nps {
		for _, e := range hists[np] {
			if _, err := s.sampleFor(app, e); err != nil {
				release()
				fail(w, err)
				return
			}
		}
		resp.Scales = append(resp.Scales, baselineScaleJSON{NP: np, Runs: len(hists[np])})
		resp.Runs += len(hists[np])
	}
	release()
	resp.Ingested = s.sampleIngests.Load() - before
	writeJSON(w, http.StatusOK, resp)
}
