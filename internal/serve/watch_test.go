package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"

	"scalana/internal/baseline"
	"scalana/internal/fit"
	"scalana/internal/ppg"
	"scalana/internal/prof"
	"scalana/internal/psg"
	"scalana/internal/store"

	scalana "scalana"
)

// scaleSet rewrites a profile set with every vertex's sampled time
// multiplied by factor — run-to-run noise with a dial on it. The
// simulator is fully deterministic (identical runs produce identical
// bytes, which the content-addressed store dedups into ONE run), so a
// multi-run history needs controlled perturbation instead of seeds.
func scaleSet(t *testing.T, data []byte, graph *psg.Graph, factor float64) []byte {
	t.Helper()
	ps, err := prof.DecodeProfileSet(data, graph)
	if err != nil {
		t.Fatal(err)
	}
	for _, rp := range ps.Profiles {
		for vid := range rp.Vertex {
			rp.Vertex[vid].Time *= factor
		}
	}
	ps.Elapsed *= factor
	out, err := prof.EncodeProfileSet(ps)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// inflateVertex rewrites one profile set with a vertex's sampled time
// multiplied on every rank — a synthetic regression at a known VID.
func inflateVertex(t *testing.T, data []byte, graph *psg.Graph, vid psg.VID, factor float64) []byte {
	t.Helper()
	ps, err := prof.DecodeProfileSet(data, graph)
	if err != nil {
		t.Fatal(err)
	}
	for _, rp := range ps.Profiles {
		rp.Vertex[vid].Time *= factor
		rp.Vertex[vid].Samples = int64(float64(rp.Vertex[vid].Samples) * factor)
	}
	ps.Elapsed *= 1.1 // the regression shows up in wall clock too
	out, err := prof.EncodeProfileSet(ps)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// hottestVertex picks the non-root vertex with the largest median
// per-rank time — a regression target guaranteed to clear MinShare.
func hottestVertex(t *testing.T, data []byte, graph *psg.Graph) psg.VID {
	t.Helper()
	ps, err := prof.DecodeProfileSet(data, graph)
	if err != nil {
		t.Fatal(err)
	}
	pg, err := ppg.Build(graph, ps.Profiles)
	if err != nil {
		t.Fatal(err)
	}
	best, bestVal := psg.VID(0), math.Inf(-1)
	for vid := 0; vid < pg.NumVIDs(); vid++ {
		v := graph.VertexByVID(psg.VID(vid))
		if v == nil || v.Kind == psg.KindRoot {
			continue
		}
		if m := fit.Merge(pg.TimeSeries(psg.VID(vid)), fit.MergeMedian); m > bestVal {
			best, bestVal = psg.VID(vid), m
		}
	}
	if bestVal <= 0 {
		t.Fatal("no vertex with positive time in the fixture")
	}
	return best
}

// TestWatchEndToEnd is the tentpole acceptance test: a three-run quiet
// history stays quiet, a fourth run with a seeded 20x regression is
// flagged at the correct vertex, repeated requests are byte-identical,
// and the served bytes equal the scalana-detect -watch pipeline
// (baseline.LoadStore over the same store).
func TestWatchEndToEnd(t *testing.T) {
	srv, ts := newTestServer(t)
	app := scalana.GetApp("cg")
	_, graph, err := scalana.Compile(app)
	if err != nil {
		t.Fatal(err)
	}

	// Three baseline runs: the base profile with ±0.1% noise, newest at
	// the baseline mean so the quiet watch stays quiet.
	base := encodeSets(t, srv.engine, app, []int{4}, 1000)[4]
	for _, f := range []float64{0.999, 1.001, 1.000} {
		set := scaleSet(t, base, graph, f)
		if code, body := post(t, ts.URL+"/v1/profiles", "application/json", set); code != http.StatusCreated {
			t.Fatalf("upload factor %g: %d %s", f, code, body)
		}
	}

	// Quiet history: nothing regressed yet.
	code, body := get(t, ts.URL+"/v1/watch?app=cg")
	if code != http.StatusOK {
		t.Fatalf("watch quiet: %d %s", code, body)
	}
	rep, err := baseline.DecodeReport(body)
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Quiet() {
		t.Fatalf("quiet 3-run history flagged %d regressions (first: %+v)", len(rep.Regressions), rep.Regressions[0])
	}
	if rep.Runs != 3 || rep.NP != 4 {
		t.Fatalf("watch envelope: runs=%d np=%d", rep.Runs, rep.NP)
	}

	// Seed a 20x regression at the hottest vertex and upload it.
	target := hottestVertex(t, base, graph)
	regressed := inflateVertex(t, scaleSet(t, base, graph, 1.0005), graph, target, 20)
	if code, body := post(t, ts.URL+"/v1/profiles", "application/json", regressed); code != http.StatusCreated {
		t.Fatalf("upload regressed: %d %s", code, body)
	}

	code, flagged := get(t, ts.URL+"/v1/watch?app=cg")
	if code != http.StatusOK {
		t.Fatalf("watch flagged: %d %s", code, flagged)
	}
	rep, err = baseline.DecodeReport(flagged)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Quiet() {
		t.Fatal("seeded 20x regression was not flagged")
	}
	wantKey := graph.Keys()[target]
	if got := rep.Regressions[0].Ref.Key; got != wantKey {
		t.Fatalf("top regression at %q, want the seeded vertex %q", got, wantKey)
	}
	if rep.Runs != 4 || rep.BaselineRuns != 3 {
		t.Fatalf("regressed watch accounting: runs=%d baseline=%d", rep.Runs, rep.BaselineRuns)
	}

	// Byte determinism across repeated requests.
	if _, again := get(t, ts.URL+"/v1/watch?app=cg"); !bytes.Equal(flagged, again) {
		t.Fatal("repeated watch requests differ")
	}

	// Byte parity with the CLI path: LoadStore over the same store dir,
	// same thresholds, same merge — scalana-detect -watch -json '-' in
	// process.
	state, err := baseline.LoadStore(srv.st, "cg", graph, srv.merge)
	if err != nil {
		t.Fatal(err)
	}
	cliRep, err := state.Watch(4, srv.watch)
	if err != nil {
		t.Fatal(err)
	}
	cliBytes, err := cliRep.EncodeJSON()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(flagged, append(cliBytes, '\n')) {
		t.Fatalf("served watch differs from the offline pipeline\nserved %d bytes, offline %d bytes", len(flagged), len(cliBytes)+1)
	}

	// Threshold overrides change the flight key and the result: an
	// impossibly high min-share silences the report.
	code, quiet := get(t, ts.URL+"/v1/watch?app=cg&min-share=0.9999")
	if code != http.StatusOK {
		t.Fatalf("watch with overrides: %d %s", code, quiet)
	}
	if rep, err := baseline.DecodeReport(quiet); err != nil || !rep.Quiet() {
		t.Fatalf("min-share=0.9999 still flagged: %v", err)
	}
}

// TestWatchCoalescing mirrors TestDetectCoalescing for the watch
// endpoint: two concurrent identical requests, one computation.
func TestWatchCoalescing(t *testing.T) {
	srv, ts := newTestServer(t)
	app := scalana.GetApp("cg")
	_, graph, err := scalana.Compile(app)
	if err != nil {
		t.Fatal(err)
	}
	base := encodeSets(t, srv.engine, app, []int{4}, 1000)[4]
	for _, f := range []float64{0.999, 1.001} {
		set := scaleSet(t, base, graph, f)
		if code, body := post(t, ts.URL+"/v1/profiles", "application/json", set); code != http.StatusCreated {
			t.Fatalf("upload: %d %s", code, body)
		}
	}
	gate := make(chan struct{})
	srv.watchGate = gate

	type result struct {
		code int
		data []byte
	}
	results := make(chan result, 2)
	var wg sync.WaitGroup
	launch := func() {
		wg.Add(1)
		go func() {
			defer wg.Done()
			code, data := get(t, ts.URL+"/v1/watch?app=cg")
			results <- result{code, data}
		}()
	}
	waitFor := func(desc string, pred func() bool) {
		t.Helper()
		for i := 0; i < 1000; i++ {
			if pred() {
				return
			}
			time.Sleep(5 * time.Millisecond)
		}
		t.Fatalf("timed out waiting for %s", desc)
	}

	launch()
	waitFor("first watch compute to start", func() bool { return srv.watchComputes.Load() == 1 })
	launch()
	waitFor("second request to coalesce", func() bool { return srv.watchCoalesced.Load() == 1 })
	close(gate)
	wg.Wait()
	close(results)

	var bodies [][]byte
	for r := range results {
		if r.code != http.StatusOK {
			t.Fatalf("watch: %d %s", r.code, r.data)
		}
		bodies = append(bodies, r.data)
	}
	if !bytes.Equal(bodies[0], bodies[1]) {
		t.Fatal("coalesced watch responses differ")
	}
	if got := srv.watchComputes.Load(); got != 1 {
		t.Fatalf("expected exactly one watch computation, got %d", got)
	}
	if st := srv.Stats(); st.WatchComputes != 1 || st.WatchCoalesced != 1 {
		t.Fatalf("stats %+v", st)
	}
}

// TestBaselineEndpoint: POST /v1/baseline warms the sample cache (runs
// counted per scale), re-warming ingests nothing, and rebuild evicts
// then re-ingests.
func TestBaselineEndpoint(t *testing.T) {
	srv, ts := newTestServer(t)
	app := scalana.GetApp("cg")
	_, graph, err := scalana.Compile(app)
	if err != nil {
		t.Fatal(err)
	}
	bases := encodeSets(t, srv.engine, app, []int{4, 8}, 1000)
	for _, np := range []int{4, 8} {
		for _, f := range []float64{0.999, 1.001} {
			set := scaleSet(t, bases[np], graph, f)
			if code, body := post(t, ts.URL+"/v1/profiles", "application/json", set); code != http.StatusCreated {
				t.Fatalf("upload np=%d: %d %s", np, code, body)
			}
		}
	}
	var resp baselineResponseJSON
	code, body := post(t, ts.URL+"/v1/baseline", "application/json", []byte(`{"app":"cg"}`))
	if code != http.StatusOK {
		t.Fatalf("baseline warm: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Runs != 4 || resp.Ingested != 4 || resp.Evicted != 0 || len(resp.Scales) != 2 {
		t.Fatalf("warm response %+v", resp)
	}
	if st := srv.Stats(); st.BaselineSamples != 4 || st.SampleIngests != 4 {
		t.Fatalf("stats after warm: %+v", st)
	}

	// Second warm: everything cached already.
	code, body = post(t, ts.URL+"/v1/baseline", "application/json", []byte(`{"app":"cg"}`))
	if code != http.StatusOK {
		t.Fatalf("baseline rewarm: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Ingested != 0 {
		t.Fatalf("rewarm ingested %d, want 0", resp.Ingested)
	}

	// Rebuild: evict then re-ingest.
	code, body = post(t, ts.URL+"/v1/baseline", "application/json", []byte(`{"app":"cg","rebuild":true}`))
	if code != http.StatusOK {
		t.Fatalf("baseline rebuild: %d %s", code, body)
	}
	if err := json.Unmarshal(body, &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Evicted != 4 || resp.Ingested != 4 {
		t.Fatalf("rebuild response %+v", resp)
	}
}

// TestServeErrorClasses locks the HTTP status for every failure class
// the satellite names: malformed JSON, unknown app, ambiguous hash
// prefix, scales below MinNP, and bad watch parameters. Store
// corruption (500) has its own test below.
func TestServeErrorClasses(t *testing.T) {
	srv, ts := newTestServer(t)
	app := scalana.GetApp("cg")
	// Two sets at np=4 (ambiguous scale), plus enough sets at np=8 that
	// some pair of stored hashes must share a first hex character — a
	// guaranteed-ambiguous one-char prefix for the Resolve path.
	var hashes []string
	for _, hz := range []float64{1000, 500} {
		set := encodeSets(t, srv.engine, app, []int{4}, hz)[4]
		if code, body := post(t, ts.URL+"/v1/profiles", "application/json", set); code != http.StatusCreated {
			t.Fatalf("upload: %d %s", code, body)
		}
		hashes = append(hashes, store.HashOf(set))
	}
	_, graph, err := scalana.Compile(app)
	if err != nil {
		t.Fatal(err)
	}
	base8 := encodeSets(t, srv.engine, app, []int{8}, 1000)[8]
	ambiguousPrefix := ""
	for i := 0; ambiguousPrefix == "" && i < 20; i++ {
		set := scaleSet(t, base8, graph, 1-0.0001*float64(i))
		if code, body := post(t, ts.URL+"/v1/profiles", "application/json", set); code != http.StatusCreated {
			t.Fatalf("upload np=8: %d %s", code, body)
		}
		hashes = append(hashes, store.HashOf(set))
		seen := map[byte]bool{}
		for _, h := range hashes {
			if seen[h[0]] {
				ambiguousPrefix = h[:1]
			}
			seen[h[0]] = true
		}
	}
	if ambiguousPrefix == "" {
		t.Fatal("no ambiguous hash prefix after 20 distinct uploads (pigeonhole says near-impossible)")
	}

	cases := []struct {
		name   string
		method string
		path   string
		body   string
		code   int
	}{
		{"detect malformed JSON", "POST", "/v1/detect", `not json`, http.StatusBadRequest},
		{"detect unknown app", "POST", "/v1/detect", `{"app":"no-such-app"}`, http.StatusNotFound},
		{"detect ambiguous scale", "POST", "/v1/detect", `{"app":"cg","scales":[4]}`, http.StatusConflict},
		{"detect ambiguous hash prefix", "POST", "/v1/detect", fmt.Sprintf(`{"app":"cg","hashes":[%q]}`, ambiguousPrefix), http.StatusConflict},
		{"detect non-hex hash", "POST", "/v1/detect", `{"app":"cg","hashes":["zz"]}`, http.StatusBadRequest},
		{"detect below MinNP", "POST", "/v1/detect", `{"app":"cg","simulate":true,"scales":[1]}`, http.StatusBadRequest},
		{"baseline malformed JSON", "POST", "/v1/baseline", `{`, http.StatusBadRequest},
		{"baseline unknown app", "POST", "/v1/baseline", `{"app":"no-such-app"}`, http.StatusNotFound},
		{"watch unknown app", "GET", "/v1/watch?app=no-such-app", "", http.StatusNotFound},
		{"watch bad z", "GET", "/v1/watch?app=cg&z=bogus", "", http.StatusBadRequest},
		{"watch negative cusum", "GET", "/v1/watch?app=cg&cusum=-1", "", http.StatusBadRequest},
		{"watch bad min-runs", "GET", "/v1/watch?app=cg&min-runs=0", "", http.StatusBadRequest},
		{"watch bad np", "GET", "/v1/watch?app=cg&np=zero", "", http.StatusBadRequest},
		{"watch unstocked scale", "GET", "/v1/watch?app=cg&np=64", "", http.StatusNotFound},
		{"profiles invalid hash", "GET", "/v1/profiles/cg/4/zz", "", http.StatusBadRequest},
		{"profiles missing set", "GET", "/v1/profiles/cg/4/" + store.HashOf([]byte("missing")), "", http.StatusNotFound},
		{"profiles bad scale", "GET", "/v1/profiles/cg/four/" + hashes[0], "", http.StatusBadRequest},
	}
	for _, tc := range cases {
		var code int
		var resp []byte
		if tc.method == "POST" {
			code, resp = post(t, ts.URL+tc.path, "application/json", []byte(tc.body))
		} else {
			code, resp = get(t, ts.URL+tc.path)
		}
		if code != tc.code {
			t.Errorf("%s: got %d (%s), want %d", tc.name, code, resp, tc.code)
		}
	}
	_ = srv

	// An empty store behind a known app is 404, not 500.
	_, ts2 := newTestServer(t)
	if code, resp := get(t, ts2.URL+"/v1/watch?app=cg"); code != http.StatusNotFound {
		t.Errorf("watch over empty store: got %d (%s), want 404", code, resp)
	}
	if code, resp := post(t, ts2.URL+"/v1/baseline", "application/json", []byte(`{"app":"cg"}`)); code != http.StatusNotFound {
		t.Errorf("baseline over empty store: got %d (%s), want 404", code, resp)
	}
}

// TestStoreCorruptionSurfacesAs500: tampered stored bytes and a history
// log naming a missing set are server-side corruption — 500, never a
// 4xx blaming the client.
func TestStoreCorruptionSurfacesAs500(t *testing.T) {
	srv, ts := newTestServer(t)
	app := scalana.GetApp("cg")
	set := encodeSets(t, srv.engine, app, []int{4}, 1000)[4]
	if code, body := post(t, ts.URL+"/v1/profiles", "application/json", set); code != http.StatusCreated {
		t.Fatalf("upload: %d %s", code, body)
	}
	hash := store.HashOf(set)

	// A history log naming a set that is not stored.
	histPath := filepath.Join(srv.st.Root(), "cg", "4", "history.log")
	ghost := store.HashOf([]byte("never stored"))
	if err := os.WriteFile(histPath, []byte(hash+"\n"+ghost+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, resp := get(t, ts.URL+"/v1/watch?app=cg"); code != http.StatusInternalServerError {
		t.Fatalf("watch over corrupt history: got %d (%s), want 500", code, resp)
	}
	if err := os.WriteFile(histPath, []byte(hash+"\n"), 0o644); err != nil {
		t.Fatal(err)
	}

	// Tampered content: the stored bytes no longer hash to their address.
	setPath := filepath.Join(srv.st.Root(), "cg", "4", hash+".json")
	if err := os.WriteFile(setPath, []byte(`{"app":"cg","np":4}`), 0o644); err != nil {
		t.Fatal(err)
	}
	if code, resp := get(t, ts.URL+"/v1/profiles/cg/4/"+hash); code != http.StatusInternalServerError {
		t.Fatalf("GET tampered set: got %d (%s), want 500", code, resp)
	}
	if code, resp := get(t, ts.URL+"/v1/watch?app=cg"); code != http.StatusInternalServerError {
		t.Fatalf("watch over tampered set: got %d (%s), want 500", code, resp)
	}
	if code, resp := post(t, ts.URL+"/v1/detect", "application/json", []byte(`{"app":"cg","scales":[4]}`)); code != http.StatusInternalServerError {
		t.Fatalf("detect over tampered set: got %d (%s), want 500", code, resp)
	}
}
