package mpisim

import (
	"errors"
	"fmt"
	"strings"
	"sync"
	"sync/atomic"
)

// Cooperative virtual-time scheduling. Exactly one rank is runnable at a
// time; every other rank goroutine is parked on its per-rank condition
// variable. A rank runs until it reaches a blocking point — a receive
// whose matching send has not been posted, a wait on an unmatched
// request, or a collective still missing participants — and then yields
// the baton back to the scheduler, which resumes the ready rank with the
// smallest virtual clock (rank index breaks ties). Unblocking is a plain
// function call made by the currently-running rank (postSend delivering
// to a parked receiver, the last collective arriver releasing the slot):
// the woken rank is pushed back onto the ready heap and runs when its
// clock comes up.
//
// Because the execution order is a pure function of virtual clocks and
// rank indices, runs are deterministic by construction — no goroutine
// preemption, channel wakeup order, or wall-clock timer ever influences
// matching or timing. It also makes deadlock detection exact: when the
// ready heap is empty while unfinished ranks remain, those ranks can
// never make progress, and the scheduler reports each of them with the
// operation it is blocked in.

// blockKind classifies why a rank is parked.
type blockKind uint8

const (
	blockNone blockKind = iota
	blockRecv
	blockRecvAny
	blockColl
)

// blockState describes the operation a parked rank is blocked in; it is
// what the exact deadlock report prints per rank.
type blockState struct {
	kind     blockKind
	src, tag int
	seq      int
	op       string
}

func (b blockState) String() string {
	switch b.kind {
	case blockRecv:
		return fmt.Sprintf("recv from rank %d tag %d (message #%d never sent)", b.src, b.tag, b.seq)
	case blockRecvAny:
		return fmt.Sprintf("recv from any source tag %d (no matching send)", b.tag)
	case blockColl:
		return fmt.Sprintf("%s #%d (collective missing participants)", b.op, b.seq)
	}
	return "unknown operation"
}

// reverseTieBreak is a test hook: when set, equal virtual clocks resolve
// to the highest rank instead of the lowest. Determinism tests flip it to
// prove that reports do not depend on the tie-breaking discipline —
// outputs are byte-identical either way because all matching and timing
// derive from virtual clocks alone.
var reverseTieBreak atomic.Bool

// SetReverseTieBreak flips the scheduler's tie-breaking order between
// equal virtual clocks. It exists for determinism tests only.
func SetReverseTieBreak(v bool) { reverseTieBreak.Store(v) }

// rankEnt is one ready-heap entry.
type rankEnt struct {
	clock float64
	rank  int32
}

type scheduler struct {
	w *World
	// mu guards the baton handoff (current, aborted) and the parked
	// ranks' condition variables. The ready heap and block states are
	// only ever touched by the single running rank (or by World.Run
	// before any rank starts), so the baton handoff's lock/unlock pair
	// is the one synchronization point per yield.
	mu      sync.Mutex
	ready   []rankEnt
	current int
	started bool
	live    int
	aborted bool
}

const abortMsg = "mpisim: run aborted by failure on another rank"

func newScheduler(w *World) *scheduler {
	return &scheduler{w: w, current: -1}
}

// less orders the ready heap: smallest virtual clock first, rank index as
// the deterministic tie-break (reversed under the test hook).
//
//scalana:hot
func (s *scheduler) less(a, b rankEnt) bool {
	if a.clock != b.clock {
		return a.clock < b.clock
	}
	if reverseTieBreak.Load() {
		return a.rank > b.rank
	}
	return a.rank < b.rank
}

// pushReady sifts a newly runnable rank into the ready heap.
//
//scalana:hot
func (s *scheduler) pushReady(clock float64, rank int32) {
	s.ready = append(s.ready, rankEnt{clock, rank})
	i := len(s.ready) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if !s.less(s.ready[i], s.ready[parent]) {
			break
		}
		s.ready[i], s.ready[parent] = s.ready[parent], s.ready[i]
		i = parent
	}
}

// popReady removes and returns the minimum entry's rank, or -1 when the
// heap is empty.
//
//scalana:hot
func (s *scheduler) popReady() int {
	n := len(s.ready)
	if n == 0 {
		return -1
	}
	top := s.ready[0].rank
	s.ready[0] = s.ready[n-1]
	s.ready = s.ready[:n-1]
	n--
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		min := i
		if l < n && s.less(s.ready[l], s.ready[min]) {
			min = l
		}
		if r < n && s.less(s.ready[r], s.ready[min]) {
			min = r
		}
		if min == i {
			break
		}
		s.ready[i], s.ready[min] = s.ready[min], s.ready[i]
		i = min
	}
	return int(top)
}

// begin arms the scheduler for one World.Run: every rank is ready at its
// current clock and the baton is pre-granted to the minimum. Called
// before the rank goroutines spawn, so no locking is contended.
func (s *scheduler) begin() {
	s.mu.Lock()
	s.started = true
	s.aborted = false
	s.live = s.w.np
	s.ready = s.ready[:0]
	for r := 0; r < s.w.np; r++ {
		s.w.procs[r].block = blockState{}
		s.pushReady(s.w.procs[r].Clock, int32(r))
	}
	s.current = s.popReady()
	s.mu.Unlock()
}

// end disarms the scheduler after World.Run completes.
func (s *scheduler) end() {
	s.mu.Lock()
	s.started = false
	s.current = -1
	s.mu.Unlock()
}

// acquire parks the calling rank until the scheduler grants it the baton
// for the first time.
func (s *scheduler) acquire(p *Proc) {
	s.mu.Lock()
	for s.current != p.Rank && !s.aborted {
		p.cond.Wait()
	}
	ab := s.aborted
	s.mu.Unlock()
	if ab {
		panic(abortMsg)
	}
}

// yieldBlocked parks the calling rank on its recorded block state and
// hands the baton to the next ready rank. The caller must have set
// p.block; the waker clears it and stores any wake payload before
// pushing the rank back onto the ready heap.
func (s *scheduler) yieldBlocked(p *Proc) {
	s.mu.Lock()
	if !s.started {
		b := p.block
		p.block = blockState{}
		s.mu.Unlock()
		panic(fmt.Sprintf("mpisim: rank %d would block forever in %s — blocking operations outside World.Run have no peers to wake them", p.Rank, b))
	}
	if s.aborted {
		s.mu.Unlock()
		panic(abortMsg)
	}
	s.handoffLocked()
	for s.current != p.Rank && !s.aborted {
		p.cond.Wait()
	}
	ab := s.aborted
	s.mu.Unlock()
	if ab {
		panic(abortMsg)
	}
}

// wake marks a parked rank ready again at its current clock. Called by
// the running rank (a matching send, the last collective arriver); the
// woken goroutine stays parked until the scheduler picks it.
func (s *scheduler) wake(rank int) {
	p := s.w.procs[rank]
	p.block = blockState{}
	s.pushReady(p.Clock, int32(rank))
}

// exit retires the calling rank after its body returned (or panicked and
// was recovered) and passes the baton on.
func (s *scheduler) exit(p *Proc) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.live--
	if s.aborted {
		return
	}
	if s.live == 0 {
		s.started = false
		s.current = -1
		return
	}
	s.handoffLocked()
}

// handoffLocked grants the baton to the minimum-clock ready rank, or —
// when no rank is ready while unfinished ranks remain — declares an
// exact deadlock. Caller holds s.mu.
func (s *scheduler) handoffLocked() {
	next := s.popReady()
	if next < 0 {
		s.deadlockLocked()
		return
	}
	s.current = next
	s.w.procs[next].cond.Signal()
}

// deadlockLocked reports the exact deadlock: every unfinished rank with
// the operation it is blocked in, then aborts the run. Caller holds s.mu.
func (s *scheduler) deadlockLocked() {
	var sb strings.Builder
	n := 0
	for _, p := range s.w.procs {
		if p.block.kind == blockNone {
			continue
		}
		fmt.Fprintf(&sb, "\n  rank %d: blocked in %s", p.Rank, p.block)
		n++
	}
	s.w.fail(errors.New("mpisim: deadlock: no rank can make progress; " +
		fmt.Sprintf("%d rank(s) blocked forever:", n) + sb.String()))
	s.abortLocked()
}

// abortAll wakes every parked rank so it unwinds with an abort panic.
// Called after World.fail when a rank dies.
func (s *scheduler) abortAll() {
	s.mu.Lock()
	s.abortLocked()
	s.mu.Unlock()
}

func (s *scheduler) abortLocked() {
	s.aborted = true
	for _, p := range s.w.procs {
		p.cond.Signal()
	}
}
