package mpisim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"sync"

	"scalana/internal/machine"
)

// NetConfig is the LogGP-style interconnect cost model.
type NetConfig struct {
	Latency  float64 // L: wire latency per message (seconds)
	PerByte  float64 // G: per-byte transfer/copy time (seconds)
	Overhead float64 // o: CPU overhead per MPI operation (seconds)
}

// DefaultNet resembles a 100 Gb/s EDR InfiniBand fabric.
func DefaultNet() NetConfig {
	return NetConfig{
		Latency:  1.8e-6,
		PerByte:  1.0 / 10e9,
		Overhead: 0.6e-6,
	}
}

// Config configures a World.
type Config struct {
	NP   int
	Net  NetConfig
	Core machine.Config
	// Seed seeds the per-rank deterministic RNGs.
	Seed int64
	// HookFactory creates per-rank tool hooks; nil means no tools.
	HookFactory func(rank int) []Hook
}

// World is one simulated MPI job.
type World struct {
	cfg     Config
	np      int
	procs   []*Proc
	matcher *matcher
	colls   *collectives
	sched   *scheduler
	failMu  sync.Mutex
	abErr   error
}

// NewWorld creates a world with np ranks.
func NewWorld(cfg Config) *World {
	if cfg.NP <= 0 {
		panic("mpisim: NP must be positive")
	}
	if cfg.Net == (NetConfig{}) {
		cfg.Net = DefaultNet()
	}
	if cfg.Core.ClockHz == 0 {
		mem := cfg.Core.MemSpeed
		cfg.Core = machine.DefaultConfig()
		cfg.Core.MemSpeed = mem
	}
	w := &World{
		cfg: cfg,
		np:  cfg.NP,
	}
	w.sched = newScheduler(w)
	w.matcher = newMatcher(w)
	w.colls = newCollectives(w)
	w.procs = make([]*Proc, cfg.NP)
	for r := 0; r < cfg.NP; r++ {
		p := &Proc{
			world: w,
			Rank:  r,
			Core:  machine.NewCore(cfg.Core, r),
		}
		p.cond.L = &w.sched.mu
		if cfg.HookFactory != nil {
			p.rawHooks = cfg.HookFactory(r)
		}
		w.procs[r] = p
	}
	return w
}

// NP returns the number of ranks.
func (w *World) NP() int { return w.np }

// Proc returns the given rank's process state.
func (w *World) Proc(rank int) *Proc { return w.procs[rank] }

// RunResult summarizes a completed run.
type RunResult struct {
	// Elapsed is the job's virtual makespan: the maximum rank clock.
	Elapsed float64
	// Clocks holds each rank's final virtual clock.
	Clocks []float64
	// PerturbTotal is the summed virtual tool overhead across ranks.
	PerturbTotal float64
}

// Run executes body once per rank under the cooperative virtual-time
// scheduler: each rank gets a goroutine for its stack, but exactly one
// rank runs at a time, and control passes at blocking points to the
// ready rank with the smallest virtual clock. A panic in any rank aborts
// the whole job and is returned as an error; a deadlock (no rank can
// make progress) fails the run immediately with a per-rank diagnostic.
func (w *World) Run(body func(p *Proc)) (RunResult, error) {
	s := w.sched
	s.begin()
	var wg sync.WaitGroup
	wg.Add(w.np)
	for r := 0; r < w.np; r++ {
		p := w.procs[r]
		go func() {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					w.fail(fmt.Errorf("rank %d: %v", p.Rank, rec))
					s.abortAll()
				}
				s.exit(p)
			}()
			s.acquire(p)
			body(p)
		}()
	}
	wg.Wait()
	s.end()
	w.failMu.Lock()
	err := w.abErr
	w.failMu.Unlock()
	res := RunResult{Clocks: make([]float64, w.np)}
	for r, p := range w.procs {
		res.Clocks[r] = p.Clock
		res.PerturbTotal += p.PerturbTotal
		if p.Clock > res.Elapsed {
			res.Elapsed = p.Clock
		}
	}
	if err != nil {
		return res, err
	}
	return res, nil
}

func (w *World) fail(err error) {
	w.failMu.Lock()
	if w.abErr == nil {
		w.abErr = err
	}
	w.failMu.Unlock()
}

// Proc is the per-rank execution state: the virtual clock, the PMU core,
// outstanding requests, tool hooks, and the attribution context (the PSG
// vertex currently executing, set by the interpreter).
type Proc struct {
	world *World
	Rank  int
	// Clock is the rank's virtual time in seconds.
	Clock float64
	Core  *machine.Core
	// Ctx is the current attribution context (opaque to the simulator;
	// the interpreter stores the current *psg.Vertex here).
	Ctx any
	// PerturbTotal accumulates virtual tool overhead (AdvPerturb).
	PerturbTotal float64

	rawHooks []Hook
	// rng is seeded lazily on the first Rand call: most workloads never
	// draw randomness, and seeding math/rand's source per rank is
	// expensive enough to show up in np=1024 sweeps.
	rng     *rand.Rand
	reqs    []*Request
	nextReq int
	collSeq int

	// cond parks the rank's goroutine while another rank holds the
	// scheduler baton; block describes the operation it is blocked in
	// (exact deadlock diagnostics print it) and wakeInfo carries the
	// matched send delivered by the waker.
	cond     sync.Cond
	block    blockState
	wakeInfo *sendInfo

	// evScratch stages events for emit: hooks receive a pointer into it,
	// valid only for the duration of the callback, so steady-state
	// simulation emits events without allocating.
	evScratch Event
	// freeReqs recycles completed request handles. Touched only while
	// the rank holds the scheduler baton.
	freeReqs []*Request
}

// NP returns the job size.
func (p *Proc) NP() int { return p.world.np }

// World returns the owning world.
func (p *Proc) World() *World { return p.world }

// Rand returns a deterministic per-rank pseudo-random float64 in [0,1).
func (p *Proc) Rand() float64 {
	if p.rng == nil {
		p.rng = rand.New(rand.NewSource(p.world.cfg.Seed*7919 + int64(p.Rank) + 1))
	}
	return p.rng.Float64()
}

// Hooks returns the rank's tool hooks.
func (p *Proc) Hooks() []Hook { return p.rawHooks }

// advance moves the clock forward and notifies hooks. Overhead requested
// by hooks is charged as a follow-up AdvPerturb advance.
//
//scalana:hot
func (p *Proc) advance(dt float64, kind AdvanceKind, pmu machine.Vec) {
	if dt < 0 {
		if dt > -1e-12 {
			dt = 0
		} else {
			panic(fmt.Sprintf("mpisim: rank %d time going backwards by %g", p.Rank, -dt))
		}
	}
	from := p.Clock
	p.Clock += dt
	var owed float64
	for _, h := range p.rawHooks {
		owed += h.Advance(p, from, p.Clock, kind, p.Ctx, pmu)
	}
	if owed > 0 && kind != AdvPerturb {
		p.Perturb(owed)
	}
}

// emit reports one completed MPI operation to the rank's hooks. The
// event is staged in per-rank scratch storage that the next operation
// overwrites; hooks must copy any fields they keep (see Hook).
//
//scalana:hot
func (p *Proc) emit(ev Event) {
	ev.Rank = p.Rank
	ev.Ctx = p.Ctx
	if ev.Kind != EvSendrecv {
		ev.SendPeer = -1
	}
	p.evScratch = ev
	var owed float64
	for _, h := range p.rawHooks {
		owed += h.MPIEvent(p, &p.evScratch)
	}
	if owed > 0 {
		p.Perturb(owed)
	}
}

// Compute executes application computation through the machine model.
func (p *Proc) Compute(flops, loads, stores, ws float64) {
	dt, pmu := p.Core.Compute(flops, loads, stores, ws)
	p.advance(dt, AdvCompute, pmu)
}

// Glue charges n abstract bookkeeping instructions (interpreter overhead).
func (p *Proc) Glue(n float64) {
	dt, pmu := p.Core.Overhead(n)
	p.advance(dt, AdvGlue, pmu)
}

// Perturb charges virtual measurement-tool overhead. The overhead
// experiments (paper Table I, Figs. 10/13) compare job makespans with and
// without tools attached; tools call Perturb for their per-sample or
// per-record costs so the comparison captures the same mechanism as on
// real hardware.
func (p *Proc) Perturb(dt float64) {
	p.PerturbTotal += dt
	p.advance(dt, AdvPerturb, machine.Vec{})
}

// mpiOverhead charges the CPU entry cost of one MPI operation.
func (p *Proc) mpiOverhead() {
	p.advance(p.world.cfg.Net.Overhead, AdvMPIOverhead, machine.Vec{})
}

// waitUntil blocks virtual time until t (no-op if already past).
func (p *Proc) waitUntil(t float64) float64 {
	if t <= p.Clock {
		return 0
	}
	w := t - p.Clock
	p.advance(w, AdvWait, machine.Vec{})
	return w
}

// takeWake consumes the matched send a waker delivered before resuming
// this rank.
func (p *Proc) takeWake() *sendInfo {
	info := p.wakeInfo
	p.wakeInfo = nil
	return info
}

func ceilLog2(n int) float64 {
	if n <= 1 {
		return 0
	}
	return math.Ceil(math.Log2(float64(n)))
}

// Barrier synchronizes all ranks.
func (p *Proc) Barrier() { p.collective("mpi_barrier", -1, 0) }

// Bcast broadcasts bytes from root.
func (p *Proc) Bcast(root int, bytes float64) { p.collective("mpi_bcast", root, bytes) }

// Reduce reduces bytes to root.
func (p *Proc) Reduce(root int, bytes float64) { p.collective("mpi_reduce", root, bytes) }

// Allreduce reduces bytes to all ranks.
func (p *Proc) Allreduce(bytes float64) { p.collective("mpi_allreduce", -1, bytes) }

// Alltoall exchanges bytes with every rank.
func (p *Proc) Alltoall(bytes float64) { p.collective("mpi_alltoall", -1, bytes) }

// Allgather gathers bytes from every rank to all.
func (p *Proc) Allgather(bytes float64) { p.collective("mpi_allgather", -1, bytes) }

// SortedRanksByClock is a debugging helper returning ranks ordered by
// their current virtual clocks.
func (w *World) SortedRanksByClock() []int {
	idx := make([]int, w.np)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return w.procs[idx[a]].Clock < w.procs[idx[b]].Clock })
	return idx
}
