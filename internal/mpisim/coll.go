package mpisim

import (
	"fmt"
	"math"
)

// Collective synchronization. All ranks must invoke collectives in the
// same program order (SPMD); the k-th collective of every rank meets in
// one slot. The last-arriving rank computes the completion time, and every
// participant learns who the straggler was — the inter-process dependence
// edge ScalAna's backtracking follows out of a slow collective.
//
// Under run-to-block scheduling a slot is a plain arrival counter: each
// rank that arrives before the last parks on the slot, and the last
// arriver computes the result and readies all of them. No mutex or
// completion channel is needed — only the baton-holding rank ever
// touches a slot.

type arrival struct {
	t   float64
	ctx any
}

type collSlot struct {
	op       string
	root     int
	bytes    float64
	arrivals []arrival
	got      int
	// waiters are the ranks parked on this slot, readied by the last
	// arriver.
	waiters []int
	// computed by the last arriver:
	done     bool
	tMax     float64
	depRank  int
	depCtx   any
	complete float64
	reads    int
}

type collectives struct {
	w     *World
	slots map[int]*collSlot
	// free recycles retired slots. A slot retires only after every rank
	// has read its results (reads == np), so reuse cannot confuse
	// readers; the arrivals slice is reused as-is because all np entries
	// are rewritten before the last arriver inspects them.
	free []*collSlot
}

func newCollectives(w *World) *collectives {
	return &collectives{w: w, slots: map[int]*collSlot{}}
}

// newSlot allocates or recycles a slot.
func (c *collectives) newSlot(op string, root int, bytes float64) *collSlot {
	var slot *collSlot
	if n := len(c.free); n > 0 {
		slot = c.free[n-1]
		c.free = c.free[:n-1]
		arr, wtr := slot.arrivals, slot.waiters[:0]
		*slot = collSlot{arrivals: arr, waiters: wtr}
	} else {
		slot = &collSlot{arrivals: make([]arrival, c.w.np)}
	}
	slot.op, slot.root, slot.bytes = op, root, bytes
	slot.depRank = -1
	return slot
}

// cost returns the collective's completion cost beyond the last arrival,
// using tree/butterfly algorithm shapes over the LogGP parameters.
func (w *World) collCost(op string, bytes float64, n int) float64 {
	net := w.cfg.Net
	logn := ceilLog2b(n)
	switch op {
	case "mpi_barrier":
		return logn * (net.Latency + net.Overhead)
	case "mpi_bcast", "mpi_reduce":
		return logn * (net.Latency + bytes*net.PerByte + net.Overhead)
	case "mpi_allreduce":
		// reduce-scatter + allgather butterfly: 2 log n stages.
		return 2 * logn * (net.Latency + bytes*net.PerByte + net.Overhead)
	case "mpi_alltoall":
		return float64(n-1)*(net.Overhead+bytes*net.PerByte) + net.Latency*logn
	case "mpi_allgather":
		return logn*net.Latency + float64(n-1)*bytes*net.PerByte
	}
	panic(fmt.Sprintf("mpisim: unknown collective %q", op))
}

func ceilLog2b(n int) float64 {
	if n <= 1 {
		return 1
	}
	return math.Ceil(math.Log2(float64(n)))
}

// collective executes one collective operation on the calling rank.
func (p *Proc) collective(op string, root int, bytes float64) {
	t0 := p.Clock
	p.mpiOverhead()
	seq := p.collSeq
	p.collSeq++

	c := p.world.colls
	slot := c.slots[seq]
	if slot == nil {
		slot = c.newSlot(op, root, bytes)
		c.slots[seq] = slot
	}
	if slot.op != op {
		panic(fmt.Sprintf("mpisim: rank %d called %s where other ranks called %s (collective #%d mismatch)", p.Rank, op, slot.op, seq))
	}
	if slot.root != root {
		panic(fmt.Sprintf("mpisim: rank %d used root %d where other ranks used %d in %s", p.Rank, root, slot.root, op))
	}
	slot.arrivals[p.Rank] = arrival{t: p.Clock, ctx: p.Ctx}
	slot.got++
	if slot.got == p.world.np {
		for r, a := range slot.arrivals {
			if a.t > slot.tMax || slot.depRank == -1 {
				slot.tMax = a.t
				slot.depRank = r
				slot.depCtx = a.ctx
			}
		}
		slot.complete = slot.tMax + p.world.collCost(op, bytes, p.world.np)
		slot.done = true
		for _, r := range slot.waiters {
			p.world.sched.wake(r)
		}
		slot.waiters = slot.waiters[:0]
	} else {
		slot.waiters = append(slot.waiters, p.Rank)
		p.block = blockState{kind: blockColl, op: op, seq: seq}
		p.world.sched.yieldBlocked(p)
	}

	myArrival := p.Clock
	wait := slot.tMax - myArrival
	if wait < 0 {
		wait = 0
	}
	p.waitUntil(slot.complete)

	depRank := slot.depRank
	depCtx := slot.depCtx
	if depRank == p.Rank {
		// This rank was the straggler; it depends on no one here.
		depRank, depCtx = -1, nil
	}
	p.emit(Event{Kind: EvCollective, Op: op, Peer: -1, Bytes: bytes,
		TStart: t0, TEnd: p.Clock, Wait: wait, DepRank: depRank, DepCtx: depCtx,
		Collective: true, Root: root})

	slot.reads++
	if slot.reads == p.world.np {
		delete(c.slots, seq)
		c.free = append(c.free, slot)
	}
}
