// Package mpisim is a deterministic message-passing runtime simulator.
//
// The ScalAna paper runs MPI applications on Tianhe-2 and an InfiniBand
// cluster; offline pure-Go has neither MPI nor an interconnect, so this
// package substitutes a discrete-event simulator: every rank has its own
// virtual clock and PMU (internal/machine), and a cooperative scheduler
// runs exactly one rank at a time, picked from a min-heap ordered by
// virtual clock (rank index breaks ties). Ranks yield at blocking points
// — an unmatched receive, a wait on a pending request, a collective still
// missing participants — and resume when the operation can complete.
// Point-to-point messages match by sequence number per (src,dst,tag)
// channel, collectives synchronize on arrival of all ranks, and
// completion times follow a LogGP-style cost model. Reports are
// byte-identical across runs by construction: no goroutine preemption,
// wakeup order, or wall-clock timer influences matching or timing, and
// deadlocks are detected exactly — the moment no rank can progress, the
// run fails with each blocked rank's pending operation.
//
// Crucially for the paper's subject matter, the simulator produces *wait
// states*: a receive that blocks on a late sender, or a collective that
// waits for a straggler, records how long it waited and on whom — exactly
// the inter-process dependence that ScalAna's backtracking walks.
package mpisim

import "scalana/internal/machine"

// EventKind classifies MPI events reported to tool hooks.
type EventKind int

// Event kinds.
const (
	EvSend EventKind = iota
	EvRecv
	EvIsend
	EvIrecv
	EvWait
	EvWaitall
	EvSendrecv
	EvCollective
)

func (k EventKind) String() string {
	switch k {
	case EvSend:
		return "send"
	case EvRecv:
		return "recv"
	case EvIsend:
		return "isend"
	case EvIrecv:
		return "irecv"
	case EvWait:
		return "wait"
	case EvWaitall:
		return "waitall"
	case EvSendrecv:
		return "sendrecv"
	case EvCollective:
		return "collective"
	}
	return "event"
}

// AnySource is the wildcard source rank for mpi_recv_any.
const AnySource = -1

// Event describes one completed MPI operation on one rank. Tool hooks
// (the ScalAna PMPI layer, the tracer, the profiler) receive every event.
type Event struct {
	Kind EventKind
	Op   string // MiniMP builtin name (mpi_send, mpi_allreduce, ...)
	Rank int
	Peer int // matched peer rank; -1 for collectives/none
	Tag  int
	// Bytes is the message payload (per peer for collectives).
	Bytes float64
	// TStart/TEnd bracket the operation in virtual time.
	TStart, TEnd float64
	// Wait is the blocked time spent inside the operation waiting for
	// remote progress. Backtracking prunes communication dependence edges
	// with no waiting (paper §IV-B).
	Wait float64
	// DepRank is the rank whose lateness this operation waited on: the
	// matched sender for receives, the last-arriving rank for collectives.
	// -1 when the operation did not depend on a remote rank.
	DepRank int
	// DepCtx is the peer's attribution context (PSG vertex) at the
	// operation that satisfied the dependence.
	DepCtx any
	// Ctx is the local attribution context when the event completed.
	Ctx any
	// Collective marks collective operations; Root is the collective root
	// (or -1).
	Collective bool
	Root       int
	// Requests is the number of requests completed (for waitall; counts
	// send and receive requests alike).
	Requests int
	// RecvRequests is the number of completed receive requests (for
	// waitall; Bytes aggregates exactly these).
	RecvRequests int
	// SendPeer and SendBytes carry the send half of a combined sendrecv
	// (EvSendrecv only, where Peer/Bytes describe the whole exchange:
	// Peer is the matched receive source and Bytes the combined payload).
	// SendPeer is -1 for every other event kind.
	SendPeer  int
	SendBytes float64
	// ReqID is the request handle for isend/irecv/wait events (0 if none);
	// the ScalAna PMPI layer keys its request-converter map on it
	// (paper Fig. 5).
	ReqID int
}

// AdvanceKind classifies virtual-time advances for hook attribution.
type AdvanceKind int

// Advance kinds.
const (
	// AdvCompute is application computation (machine model time).
	AdvCompute AdvanceKind = iota
	// AdvGlue is interpreter/program bookkeeping overhead.
	AdvGlue
	// AdvMPIOverhead is the CPU cost of entering an MPI operation.
	AdvMPIOverhead
	// AdvTransfer is local message copy cost.
	AdvTransfer
	// AdvWait is blocked time inside an MPI operation.
	AdvWait
	// AdvPerturb is virtual overhead charged by a measurement tool.
	AdvPerturb
)

func (k AdvanceKind) String() string {
	switch k {
	case AdvCompute:
		return "compute"
	case AdvGlue:
		return "glue"
	case AdvMPIOverhead:
		return "mpi-overhead"
	case AdvTransfer:
		return "transfer"
	case AdvWait:
		return "wait"
	case AdvPerturb:
		return "perturb"
	}
	return "advance"
}

// Hook observes one rank's execution. Each rank gets its own hook
// instances, so implementations need no internal locking.
//
// Both callbacks return the virtual measurement overhead (seconds) the
// tool wants charged for the observation — the per-sample interrupt cost
// or the per-record logging cost. The simulator applies the charge as an
// AdvPerturb advance after the callback returns; overhead returned while
// observing an AdvPerturb advance is ignored to keep the charge finite.
type Hook interface {
	// Advance is called for every virtual-time advance on the rank.
	// pmu holds the PMU counter deltas accrued during the advance (zero
	// for waits and perturbation).
	Advance(p *Proc, from, to float64, kind AdvanceKind, ctx any, pmu machine.Vec) (overhead float64)
	// MPIEvent is called after each MPI operation completes. The Event
	// points into per-rank scratch storage that is reused by the next
	// operation: it is valid only for the duration of the call, and
	// implementations that keep event data must copy the fields out.
	MPIEvent(p *Proc, ev *Event) (overhead float64)
}
