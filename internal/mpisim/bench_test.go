package mpisim

import "testing"

// BenchmarkP2PRoundtrip measures matcher throughput for blocking pairs.
func BenchmarkP2PRoundtrip(b *testing.B) {
	w := NewWorld(Config{NP: 2})
	b.ResetTimer()
	_, err := w.Run(func(p *Proc) {
		for i := 0; i < b.N; i++ {
			if p.Rank == 0 {
				p.Send(1, 0, 1024)
				p.Recv(1, 1, 1024)
			} else {
				p.Recv(0, 0, 1024)
				p.Send(0, 1, 1024)
			}
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkNonBlockingExchange measures the isend/irecv/waitall path.
func BenchmarkNonBlockingExchange(b *testing.B) {
	w := NewWorld(Config{NP: 4})
	b.ResetTimer()
	_, err := w.Run(func(p *Proc) {
		next := (p.Rank + 1) % 4
		prev := (p.Rank + 3) % 4
		for i := 0; i < b.N; i++ {
			p.Irecv(prev, 0, 4096)
			p.Irecv(next, 1, 4096)
			p.Isend(next, 0, 4096)
			p.Isend(prev, 1, 4096)
			p.Waitall()
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkAllreduce measures collective synchronization cost at np=16.
func BenchmarkAllreduce(b *testing.B) {
	w := NewWorld(Config{NP: 16})
	b.ResetTimer()
	_, err := w.Run(func(p *Proc) {
		for i := 0; i < b.N; i++ {
			p.Allreduce(8)
		}
	})
	if err != nil {
		b.Fatal(err)
	}
}

// BenchmarkComputeAdvance measures the machine-model hot path including
// hook-free clock advancement.
func BenchmarkComputeAdvance(b *testing.B) {
	w := NewWorld(Config{NP: 1})
	p := w.Proc(0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Compute(1000, 100, 50, 4096)
	}
}
