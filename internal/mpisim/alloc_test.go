package mpisim

import "testing"

// Steady-state allocation regression tests for the event arena work: the
// per-rank event scratch, the sendInfo slab, request pooling, and the
// collective slot freelist. All ops here run direct-drive on the test
// goroutine (sends are eager and post before their receives, so nothing
// blocks and the scheduler baton is never needed), which keeps
// testing.AllocsPerRun meaningful on the 1-CPU CI container.

func TestSteadyStateP2PAllocs(t *testing.T) {
	w := NewWorld(Config{NP: 2, Seed: 1})
	s, r := w.Proc(0), w.Proc(1)
	pair := func() {
		s.Send(1, 7, 64)
		r.Recv(0, 7, 64)
		sq := s.Isend(1, 8, 32)
		rq := r.Irecv(0, 8, 32)
		r.Wait(rq.ID())
		s.Wait(sq.ID())
	}
	for i := 0; i < 100; i++ {
		pair() // warm the slab, pools, and channel maps
	}
	// 4 messages per run: the only allocations left are the amortized
	// sendInfo slab chunks and rare growth of the per-channel send lists.
	if allocs := testing.AllocsPerRun(200, pair); allocs > 0.5 {
		t.Errorf("steady-state p2p ops average %.2f allocs/run, want ~0 (slab amortization only)", allocs)
	}
}

func TestSteadyStateWaitallAllocs(t *testing.T) {
	w := NewWorld(Config{NP: 2, Seed: 1})
	s, r := w.Proc(0), w.Proc(1)
	round := func() {
		for i := 0; i < 8; i++ {
			s.Isend(1, i, 16)
			r.Irecv(0, i, 16)
		}
		s.Waitall()
		r.Waitall()
	}
	for i := 0; i < 50; i++ {
		round()
	}
	// Waitall must not copy the request order and must recycle every
	// request it completes.
	if allocs := testing.AllocsPerRun(100, round); allocs > 0.5 {
		t.Errorf("steady-state waitall rounds average %.2f allocs/run, want ~0", allocs)
	}
}

func TestSteadyStateP2PAllocsNP256(t *testing.T) {
	// Same gate at np=256: per-channel state, the ready heap, and the
	// request pools must not start allocating as the rank count grows.
	// Every rank posts its ring send before any recv claims it, so the
	// whole round stays direct-drive (nothing blocks).
	const np = 256
	w := NewWorld(Config{NP: np, Seed: 1})
	round := func() {
		for r := 0; r < np; r++ {
			w.Proc(r).Send((r+1)%np, 3, 64)
		}
		for r := 0; r < np; r++ {
			w.Proc(r).Recv((r+np-1)%np, 3, 64)
		}
	}
	// Warm past the per-channel send/claim list capacity boundaries (70
	// rounds puts every list on the 128-cap plateau, so the 20 measured
	// rounds trigger no append growth). Each round carves exactly one
	// sendSlabChunk (256 messages), which is the one allocation allowed.
	for i := 0; i < 70; i++ {
		round()
	}
	if allocs := testing.AllocsPerRun(20, round); allocs > 1.5 {
		t.Errorf("steady-state np=256 ring rounds average %.2f allocs/run, want <= 1 (slab chunk amortization only)", allocs)
	}
}

func TestSteadyStateCollectiveAllocs(t *testing.T) {
	// An NP=1 world completes collectives inline, so the freelist path
	// runs without goroutine coordination.
	w := NewWorld(Config{NP: 1, Seed: 1})
	p := w.Proc(0)
	round := func() {
		p.Allreduce(64)
		p.Barrier()
	}
	for i := 0; i < 20; i++ {
		round()
	}
	// Slots, their arrivals, and their waiter lists recycle through the
	// freelist. The old implementation allocated a fresh done channel per
	// collective; run-to-block slots are plain counters, so steady state
	// is allocation-free.
	if allocs := testing.AllocsPerRun(100, round); allocs > 0 {
		t.Errorf("steady-state collective rounds average %.2f allocs/run, want 0", allocs)
	}
}

func TestEmitDoesNotAllocate(t *testing.T) {
	w := NewWorld(Config{NP: 1, Seed: 1, HookFactory: func(rank int) []Hook {
		return []Hook{&chargingHook{}}
	}})
	p := w.Proc(0)
	ev := Event{Kind: EvSend, Op: "mpi_send", Peer: 0, Tag: 1, Bytes: 64, DepRank: -1, Root: -1}
	p.emit(ev)
	if allocs := testing.AllocsPerRun(100, func() { p.emit(ev) }); allocs > 0 {
		t.Errorf("emit averages %.2f allocs, want 0 (events stage in per-rank scratch)", allocs)
	}
}
