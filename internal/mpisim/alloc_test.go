package mpisim

import "testing"

// Steady-state allocation regression tests for the event arena work: the
// per-rank event scratch, the sendInfo slab, request/claim-channel
// pooling, and the collective slot freelist. All ops here run on the
// test goroutine (sends are eager and post before their receives, so
// nothing blocks), which keeps testing.AllocsPerRun meaningful on the
// 1-CPU CI container.

func TestSteadyStateP2PAllocs(t *testing.T) {
	w := NewWorld(Config{NP: 2, Seed: 1})
	s, r := w.Proc(0), w.Proc(1)
	pair := func() {
		s.Send(1, 7, 64)
		r.Recv(0, 7, 64)
		sq := s.Isend(1, 8, 32)
		rq := r.Irecv(0, 8, 32)
		r.Wait(rq.ID())
		s.Wait(sq.ID())
	}
	for i := 0; i < 100; i++ {
		pair() // warm the slab, pools, and channel maps
	}
	// 4 messages per run: the only allocations left are the amortized
	// sendInfo slab chunks and rare growth of the per-channel send lists.
	if allocs := testing.AllocsPerRun(200, pair); allocs > 0.5 {
		t.Errorf("steady-state p2p ops average %.2f allocs/run, want ~0 (slab amortization only)", allocs)
	}
}

func TestSteadyStateWaitallAllocs(t *testing.T) {
	w := NewWorld(Config{NP: 2, Seed: 1})
	s, r := w.Proc(0), w.Proc(1)
	round := func() {
		for i := 0; i < 8; i++ {
			s.Isend(1, i, 16)
			r.Irecv(0, i, 16)
		}
		s.Waitall()
		r.Waitall()
	}
	for i := 0; i < 50; i++ {
		round()
	}
	// Waitall must not copy the request order and must recycle every
	// request and claim channel it completes.
	if allocs := testing.AllocsPerRun(100, round); allocs > 0.5 {
		t.Errorf("steady-state waitall rounds average %.2f allocs/run, want ~0", allocs)
	}
}

func TestSteadyStateCollectiveAllocs(t *testing.T) {
	// An NP=1 world completes collectives inline, so the freelist path
	// runs without goroutine coordination.
	w := NewWorld(Config{NP: 1, Seed: 1})
	p := w.Proc(0)
	round := func() {
		p.Allreduce(64)
		p.Barrier()
	}
	for i := 0; i < 20; i++ {
		round()
	}
	// Slots and their arrivals recycle through the freelist; the one
	// allocation left per collective is its fresh done channel (closed
	// channels cannot be reused).
	if allocs := testing.AllocsPerRun(100, round); allocs > 2.5 {
		t.Errorf("steady-state collective rounds average %.2f allocs/run, want <= 2 (done channels only)", allocs)
	}
}

func TestEmitDoesNotAllocate(t *testing.T) {
	w := NewWorld(Config{NP: 1, Seed: 1, HookFactory: func(rank int) []Hook {
		return []Hook{&chargingHook{}}
	}})
	p := w.Proc(0)
	ev := Event{Kind: EvSend, Op: "mpi_send", Peer: 0, Tag: 1, Bytes: 64, DepRank: -1, Root: -1}
	p.emit(ev)
	if allocs := testing.AllocsPerRun(100, func() { p.emit(ev) }); allocs > 0 {
		t.Errorf("emit averages %.2f allocs, want 0 (events stage in per-rank scratch)", allocs)
	}
}
