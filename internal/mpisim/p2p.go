package mpisim

import (
	"fmt"

	"scalana/internal/machine"
)

// Point-to-point matching. Messages on one (src,dst,tag) channel match in
// program order on both sides (sequence numbers), so matching is a pure
// function of the programs, and completion times are computed purely from
// virtual clocks.
//
// Under run-to-block scheduling the matcher is a plain single-threaded
// data structure: only the rank holding the scheduler baton touches it.
// A receive whose send has not been posted records a waiter on the
// channel and yields; the matching postSend later delivers the record
// straight into the parked rank's wake slot and marks it ready. No
// locks, waiter channels, or wall-clock timers are involved.
//
// Wildcard receives (mpi_recv_any) match the unconsumed send with the
// earliest virtual arrival among all channels targeting (dst,tag). Mixing
// wildcard and specific receives on the same channel is rejected, which
// keeps wildcard matching well-defined.

type p2pKey struct{ src, dst, tag int }

type sendInfo struct {
	from    int
	seq     int
	bytes   float64
	tArrive float64 // virtual arrival time at the receiver
	ctx     any     // sender's attribution context at the send
	matched bool
}

type channel struct {
	sends       []*sendInfo
	recvClaims  int  // sequence numbers claimed by specific receives
	hasSpecific bool // a specific receive has used this channel
	// waiter is the rank parked until the send with sequence number
	// waiterSeq is posted (-1 when none). At most one rank can wait per
	// channel: only the destination rank receives on it, and a rank
	// blocks in one operation at a time.
	waiter    int
	waiterSeq int
}

type anyKey struct{ dst, tag int }

type matcher struct {
	w     *World
	chans map[p2pKey]*channel
	// anyWaiter maps (dst,tag) to the rank parked in a wildcard receive.
	anyWaiter map[anyKey]int
	// slab is the current sendInfo allocation chunk. Records live for the
	// whole run (channels keep them for matching), so the slab only grows;
	// chunks are never appended past capacity, keeping pointers stable.
	slab []sendInfo
}

const sendSlabChunk = 256

// newSendInfo carves one record out of the slab.
func (m *matcher) newSendInfo() *sendInfo {
	if len(m.slab) == cap(m.slab) {
		m.slab = make([]sendInfo, 0, sendSlabChunk)
	}
	m.slab = append(m.slab, sendInfo{})
	return &m.slab[len(m.slab)-1]
}

func newMatcher(w *World) *matcher {
	return &matcher{
		w:         w,
		chans:     map[p2pKey]*channel{},
		anyWaiter: map[anyKey]int{},
	}
}

func (m *matcher) chanFor(k p2pKey) *channel {
	ch := m.chans[k]
	if ch == nil {
		ch = &channel{waiter: -1}
		m.chans[k] = ch
	}
	return ch
}

// postSend registers a message from src to dst and readies a matching
// parked receiver, if any.
func (m *matcher) postSend(src, dst, tag int, bytes, tArrive float64, ctx any) {
	k := p2pKey{src, dst, tag}
	ch := m.chanFor(k)
	info := m.newSendInfo()
	*info = sendInfo{from: src, seq: len(ch.sends), bytes: bytes, tArrive: tArrive, ctx: ctx}
	ch.sends = append(ch.sends, info)
	if ch.waiter >= 0 && ch.waiterSeq == info.seq {
		r := ch.waiter
		ch.waiter = -1
		info.matched = true
		m.w.procs[r].wakeInfo = info
		m.w.sched.wake(r)
		return
	}
	ak := anyKey{dst, tag}
	if r, ok := m.anyWaiter[ak]; ok && !ch.hasSpecific {
		delete(m.anyWaiter, ak)
		info.matched = true
		m.w.procs[r].wakeInfo = info
		m.w.sched.wake(r)
	}
}

// claimRecv obtains the matching send for the next specific receive
// posted by dst on (src,tag); if the send has not been posted yet the
// rank parks until it is.
func (m *matcher) claimRecv(p *Proc, src, dst, tag int) *sendInfo {
	k := p2pKey{src, dst, tag}
	ch := m.chanFor(k)
	ch.hasSpecific = true
	seq := ch.recvClaims
	ch.recvClaims++
	if seq < len(ch.sends) {
		info := ch.sends[seq]
		if info.matched {
			panic(fmt.Sprintf("mpisim: send %d->%d tag %d seq %d already consumed by a wildcard receive (mixed wildcard/specific matching is not supported)", src, dst, tag, seq))
		}
		info.matched = true
		return info
	}
	ch.waiter = p.Rank
	ch.waiterSeq = seq
	p.block = blockState{kind: blockRecv, src: src, tag: tag, seq: seq}
	m.w.sched.yieldBlocked(p)
	return p.takeWake()
}

// claimRecvAny matches the next wildcard receive on (dst,tag): the
// unconsumed send with the earliest virtual arrival, or — when none is
// posted — the first send a peer posts for (dst,tag).
func (m *matcher) claimRecvAny(p *Proc, dst, tag int) *sendInfo {
	var best *sendInfo
	for k, ch := range m.chans {
		if k.dst != dst || k.tag != tag || ch.hasSpecific {
			continue
		}
		for _, s := range ch.sends {
			if s.matched {
				continue
			}
			if best == nil || s.tArrive < best.tArrive || (s.tArrive == best.tArrive && s.from < best.from) {
				best = s
			}
			break // sends are in order; only the first unmatched can match
		}
	}
	if best != nil {
		best.matched = true
		return best
	}
	m.anyWaiter[anyKey{dst, tag}] = p.Rank
	p.block = blockState{kind: blockRecvAny, tag: tag}
	m.w.sched.yieldBlocked(p)
	return p.takeWake()
}

// Request is a non-blocking communication handle.
type Request struct {
	id     int
	isSend bool
	src    int // AnySource for wildcard receives
	tag    int
	bytes  float64
	// seq is the matching sequence number claimed at post time for
	// specific receives; wildcard receives resolve at wait time.
	seq     int
	claimed *sendInfo
	postCtx any
}

// ID returns the request handle value exposed to the application.
func (r *Request) ID() int { return r.id }

func (p *Proc) validPeer(peer int) {
	if peer < 0 || peer >= p.world.np {
		panic(fmt.Sprintf("mpisim: rank %d: peer %d out of range [0,%d)", p.Rank, peer, p.world.np))
	}
}

// Send is an eager blocking send: the sender pays overhead plus injection
// cost and proceeds; the message arrives after the wire latency.
func (p *Proc) Send(dst, tag int, bytes float64) {
	p.validPeer(dst)
	t0 := p.Clock
	p.mpiOverhead()
	p.advance(bytes*p.world.cfg.Net.PerByte, AdvTransfer, zeroVec)
	p.world.matcher.postSend(p.Rank, dst, tag, bytes, p.Clock+p.world.cfg.Net.Latency, p.Ctx)
	p.emit(Event{Kind: EvSend, Op: "mpi_send", Peer: dst, Tag: tag, Bytes: bytes, TStart: t0, TEnd: p.Clock, DepRank: -1, Root: -1})
}

// Recv is a blocking receive from a specific source.
func (p *Proc) Recv(src, tag int, bytes float64) {
	p.validPeer(src)
	t0 := p.Clock
	p.mpiOverhead()
	info := p.world.matcher.claimRecv(p, src, p.Rank, tag)
	wait := p.waitUntil(info.tArrive)
	p.advance(info.bytes*p.world.cfg.Net.PerByte, AdvTransfer, zeroVec)
	p.emit(Event{Kind: EvRecv, Op: "mpi_recv", Peer: info.from, Tag: tag, Bytes: info.bytes,
		TStart: t0, TEnd: p.Clock, Wait: wait, DepRank: info.from, DepCtx: info.ctx, Root: -1})
}

// RecvAny is a blocking wildcard-source receive; it returns the matched
// source rank (the MPI_Status.MPI_SOURCE of paper Fig. 5).
func (p *Proc) RecvAny(tag int, bytes float64) int {
	t0 := p.Clock
	p.mpiOverhead()
	info := p.world.matcher.claimRecvAny(p, p.Rank, tag)
	wait := p.waitUntil(info.tArrive)
	p.advance(info.bytes*p.world.cfg.Net.PerByte, AdvTransfer, zeroVec)
	p.emit(Event{Kind: EvRecv, Op: "mpi_recv_any", Peer: info.from, Tag: tag, Bytes: info.bytes,
		TStart: t0, TEnd: p.Clock, Wait: wait, DepRank: info.from, DepCtx: info.ctx, Root: -1})
	return info.from
}

// Isend posts a non-blocking send. Eager semantics: the payload is
// buffered immediately, so the returned request completes instantly.
func (p *Proc) Isend(dst, tag int, bytes float64) *Request {
	p.validPeer(dst)
	t0 := p.Clock
	p.mpiOverhead()
	p.advance(bytes*p.world.cfg.Net.PerByte, AdvTransfer, zeroVec)
	p.world.matcher.postSend(p.Rank, dst, tag, bytes, p.Clock+p.world.cfg.Net.Latency, p.Ctx)
	req := p.newRequest(true, dst, tag, bytes)
	p.emit(Event{Kind: EvIsend, Op: "mpi_isend", Peer: dst, Tag: tag, Bytes: bytes, TStart: t0, TEnd: p.Clock, DepRank: -1, Root: -1, ReqID: req.id})
	return req
}

// Irecv posts a non-blocking receive from a specific source. The matching
// sequence number is claimed at post time, preserving program order.
func (p *Proc) Irecv(src, tag int, bytes float64) *Request {
	p.validPeer(src)
	t0 := p.Clock
	p.mpiOverhead()
	req := p.newRequest(false, src, tag, bytes)
	req.seq = p.claimSeq(src, tag)
	p.emit(Event{Kind: EvIrecv, Op: "mpi_irecv", Peer: src, Tag: tag, Bytes: bytes, TStart: t0, TEnd: p.Clock, DepRank: -1, Root: -1, ReqID: req.id})
	return req
}

// IrecvAny posts a non-blocking wildcard receive; the source is uncertain
// until completion (paper Fig. 5's status-based resolution).
func (p *Proc) IrecvAny(tag int, bytes float64) *Request {
	t0 := p.Clock
	p.mpiOverhead()
	req := p.newRequest(false, AnySource, tag, bytes)
	p.emit(Event{Kind: EvIrecv, Op: "mpi_irecv_any", Peer: AnySource, Tag: tag, Bytes: bytes, TStart: t0, TEnd: p.Clock, DepRank: -1, Root: -1, ReqID: req.id})
	return req
}

// claimSeq claims the next matching sequence number for (src -> p.Rank,
// tag); the send is looked up (or waited for) when the request resolves.
func (p *Proc) claimSeq(src, tag int) int {
	ch := p.world.matcher.chanFor(p2pKey{src, p.Rank, tag})
	ch.hasSpecific = true
	seq := ch.recvClaims
	ch.recvClaims++
	return seq
}

func (p *Proc) newRequest(isSend bool, src, tag int, bytes float64) *Request {
	var r *Request
	if n := len(p.freeReqs); n > 0 {
		r = p.freeReqs[n-1]
		p.freeReqs = p.freeReqs[:n-1]
		*r = Request{}
	} else {
		r = &Request{}
	}
	r.isSend, r.src, r.tag, r.bytes, r.postCtx = isSend, src, tag, bytes, p.Ctx
	p.nextReq++
	r.id = p.nextReq
	p.reqs = append(p.reqs, r)
	return r
}

// FindRequest resolves an application-level request handle. Outstanding
// requests are few, so a linear scan beats a map here.
func (p *Proc) FindRequest(id int) *Request {
	for _, r := range p.reqs {
		if r.id == id {
			return r
		}
	}
	return nil
}

// resolve obtains the matched sendInfo for a receive request, parking
// the rank if the matching send has not been posted yet.
func (p *Proc) resolve(r *Request) *sendInfo {
	if r.claimed != nil {
		return r.claimed
	}
	if r.isSend {
		return nil
	}
	if r.src == AnySource {
		r.claimed = p.world.matcher.claimRecvAny(p, p.Rank, r.tag)
		return r.claimed
	}
	m := p.world.matcher
	ch := m.chanFor(p2pKey{r.src, p.Rank, r.tag})
	if r.seq < len(ch.sends) {
		info := ch.sends[r.seq]
		if info.matched {
			panic(fmt.Sprintf("mpisim: send %d->%d tag %d seq %d already consumed by a wildcard receive (mixed wildcard/specific matching is not supported)", r.src, p.Rank, r.tag, r.seq))
		}
		info.matched = true
		r.claimed = info
		return info
	}
	ch.waiter = p.Rank
	ch.waiterSeq = r.seq
	p.block = blockState{kind: blockRecv, src: r.src, tag: r.tag, seq: r.seq}
	p.world.sched.yieldBlocked(p)
	r.claimed = p.takeWake()
	return r.claimed
}

// dropRequest removes a completed request from the outstanding list and
// recycles the handle.
func (p *Proc) dropRequest(id int) {
	for i, r := range p.reqs {
		if r.id == id {
			p.reqs = append(p.reqs[:i], p.reqs[i+1:]...)
			p.freeReqs = append(p.freeReqs, r)
			return
		}
	}
}

// Wait completes one outstanding request (paper Fig. 5: the communication
// dependence of a non-blocking receive is recorded here, where source and
// tag become certain).
func (p *Proc) Wait(id int) {
	r := p.FindRequest(id)
	if r == nil {
		panic(fmt.Sprintf("mpisim: rank %d: mpi_wait on unknown request %d", p.Rank, id))
	}
	t0 := p.Clock
	p.mpiOverhead()
	if r.isSend {
		p.dropRequest(id)
		p.emit(Event{Kind: EvWait, Op: "mpi_wait", Peer: r.src, Tag: r.tag, Bytes: r.bytes,
			TStart: t0, TEnd: p.Clock, DepRank: -1, Root: -1, Requests: 1, ReqID: id})
		return
	}
	info := p.resolve(r)
	wait := p.waitUntil(info.tArrive)
	p.advance(info.bytes*p.world.cfg.Net.PerByte, AdvTransfer, zeroVec)
	tag := r.tag
	p.dropRequest(id)
	p.emit(Event{Kind: EvWait, Op: "mpi_wait", Peer: info.from, Tag: tag, Bytes: info.bytes,
		TStart: t0, TEnd: p.Clock, Wait: wait, DepRank: info.from, DepCtx: info.ctx, Root: -1, Requests: 1, ReqID: id})
}

// Waitall completes every outstanding request of the rank. The dependence
// recorded is the request whose message arrived last — the rank that kept
// this rank waiting.
func (p *Proc) Waitall() {
	t0 := p.Clock
	p.mpiOverhead()
	var lastArrive float64
	depRank := -1
	var depCtx any
	var totalBytes float64
	n, nRecv := 0, 0
	// Completing everything lets the loop walk the outstanding list in
	// order and release it wholesale afterwards instead of splicing per
	// request.
	for _, r := range p.reqs {
		n++
		if !r.isSend {
			nRecv++
			info := p.resolve(r)
			totalBytes += info.bytes
			if info.tArrive > lastArrive {
				lastArrive = info.tArrive
				depRank = info.from
				depCtx = info.ctx
			}
		}
		p.freeReqs = append(p.freeReqs, r)
	}
	p.reqs = p.reqs[:0]
	wait := p.waitUntil(lastArrive)
	if totalBytes > 0 {
		p.advance(totalBytes*p.world.cfg.Net.PerByte, AdvTransfer, zeroVec)
	}
	p.emit(Event{Kind: EvWaitall, Op: "mpi_waitall", Peer: depRank, Tag: 0, Bytes: totalBytes,
		TStart: t0, TEnd: p.Clock, Wait: wait, DepRank: depRank, DepCtx: depCtx, Root: -1,
		Requests: n, RecvRequests: nRecv})
}

// Sendrecv performs a combined exchange: both transfers proceed
// concurrently and the call completes when the incoming message arrives.
func (p *Proc) Sendrecv(dst, stag int, sbytes float64, src, rtag int, rbytes float64) {
	p.validPeer(dst)
	p.validPeer(src)
	t0 := p.Clock
	p.mpiOverhead()
	p.advance(sbytes*p.world.cfg.Net.PerByte, AdvTransfer, zeroVec)
	p.world.matcher.postSend(p.Rank, dst, stag, sbytes, p.Clock+p.world.cfg.Net.Latency, p.Ctx)
	info := p.world.matcher.claimRecv(p, src, p.Rank, rtag)
	wait := p.waitUntil(info.tArrive)
	p.advance(info.bytes*p.world.cfg.Net.PerByte, AdvTransfer, zeroVec)
	p.emit(Event{Kind: EvSendrecv, Op: "mpi_sendrecv", Peer: info.from, Tag: rtag, Bytes: sbytes + info.bytes,
		TStart: t0, TEnd: p.Clock, Wait: wait, DepRank: info.from, DepCtx: info.ctx, Root: -1,
		SendPeer: dst, SendBytes: sbytes})
}

// Outstanding reports the number of pending requests (testing aid).
func (p *Proc) Outstanding() int { return len(p.reqs) }

var zeroVec machine.Vec
