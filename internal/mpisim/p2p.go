package mpisim

import (
	"fmt"
	"time"

	"scalana/internal/machine"
)

// Point-to-point matching. Messages on one (src,dst,tag) channel match in
// program order on both sides (sequence numbers), so matching is
// deterministic regardless of real goroutine scheduling: completion times
// are computed purely from virtual clocks.
//
// Wildcard receives (mpi_recv_any) match the unconsumed send with the
// earliest virtual arrival among all channels targeting (dst,tag). Mixing
// wildcard and specific receives on the same channel is rejected, which
// keeps wildcard matching well-defined.

type p2pKey struct{ src, dst, tag int }

type sendInfo struct {
	from    int
	seq     int
	bytes   float64
	tArrive float64 // virtual arrival time at the receiver
	ctx     any     // sender's attribution context at the send
	matched bool
}

type channel struct {
	sends       []*sendInfo
	recvClaims  int                    // sequence numbers claimed by specific receives
	hasSpecific bool                   // a specific receive has used this channel
	waiters     map[int]chan *sendInfo // specific waiters by sequence
}

type anyKey struct{ dst, tag int }

type matcher struct {
	w          *World
	mu         chan struct{} // 1-buffered channel used as a mutex with abort support
	chans      map[p2pKey]*channel
	anyWaiters map[anyKey][]chan *sendInfo
	// slab is the current sendInfo allocation chunk. Records live for the
	// whole run (channels keep them for matching), so the slab only grows;
	// chunks are never appended past capacity, keeping pointers stable.
	slab []sendInfo
}

const sendSlabChunk = 256

// newSendInfo carves one record out of the slab. Caller holds m.mu.
func (m *matcher) newSendInfo() *sendInfo {
	if len(m.slab) == cap(m.slab) {
		m.slab = make([]sendInfo, 0, sendSlabChunk)
	}
	m.slab = append(m.slab, sendInfo{})
	return &m.slab[len(m.slab)-1]
}

func newMatcher(w *World) *matcher {
	m := &matcher{
		w:          w,
		mu:         make(chan struct{}, 1),
		chans:      map[p2pKey]*channel{},
		anyWaiters: map[anyKey][]chan *sendInfo{},
	}
	m.mu <- struct{}{}
	return m
}

func (m *matcher) lock()   { <-m.mu }
func (m *matcher) unlock() { m.mu <- struct{}{} }

func (m *matcher) chanFor(k p2pKey) *channel {
	ch := m.chans[k]
	if ch == nil {
		ch = &channel{waiters: map[int]chan *sendInfo{}}
		m.chans[k] = ch
	}
	return ch
}

// postSend registers a message from src to dst and wakes a matching waiter.
func (m *matcher) postSend(src, dst, tag int, bytes, tArrive float64, ctx any) {
	m.lock()
	k := p2pKey{src, dst, tag}
	ch := m.chanFor(k)
	info := m.newSendInfo()
	*info = sendInfo{from: src, seq: len(ch.sends), bytes: bytes, tArrive: tArrive, ctx: ctx}
	ch.sends = append(ch.sends, info)
	if wtr, ok := ch.waiters[info.seq]; ok {
		delete(ch.waiters, info.seq)
		info.matched = true
		m.unlock()
		wtr <- info
		return
	}
	ak := anyKey{dst, tag}
	if ws := m.anyWaiters[ak]; len(ws) > 0 && !ch.hasSpecific {
		wtr := ws[0]
		m.anyWaiters[ak] = ws[1:]
		info.matched = true
		m.unlock()
		wtr <- info
		return
	}
	m.unlock()
}

// claimRecv obtains the matching send for the next specific receive posted
// by dst on (src,tag); it blocks (in real time) until the send is posted.
func (m *matcher) claimRecv(p *Proc, src, dst, tag int) *sendInfo {
	m.lock()
	k := p2pKey{src, dst, tag}
	ch := m.chanFor(k)
	ch.hasSpecific = true
	seq := ch.recvClaims
	ch.recvClaims++
	if seq < len(ch.sends) {
		info := ch.sends[seq]
		if info.matched {
			m.unlock()
			panic(fmt.Sprintf("mpisim: send %d->%d tag %d seq %d already consumed by a wildcard receive (mixed wildcard/specific matching is not supported)", src, dst, tag, seq))
		}
		info.matched = true
		m.unlock()
		return info
	}
	wtr := p.claimChan()
	ch.waiters[seq] = wtr
	m.unlock()
	info := m.await(p, wtr, fmt.Sprintf("recv from %d tag %d", src, tag))
	p.freeClaims = append(p.freeClaims, wtr)
	return info
}

// claimRecvAny matches the next wildcard receive on (dst,tag).
func (m *matcher) claimRecvAny(p *Proc, dst, tag int) *sendInfo {
	m.lock()
	var best *sendInfo
	for k, ch := range m.chans {
		if k.dst != dst || k.tag != tag || ch.hasSpecific {
			continue
		}
		for _, s := range ch.sends {
			if s.matched {
				continue
			}
			if best == nil || s.tArrive < best.tArrive || (s.tArrive == best.tArrive && s.from < best.from) {
				best = s
			}
			break // sends are in order; only the first unmatched can match
		}
	}
	if best != nil {
		best.matched = true
		m.unlock()
		return best
	}
	ak := anyKey{dst, tag}
	wtr := p.claimChan()
	m.anyWaiters[ak] = append(m.anyWaiters[ak], wtr)
	m.unlock()
	info := m.await(p, wtr, fmt.Sprintf("recv from any tag %d", tag))
	p.freeClaims = append(p.freeClaims, wtr)
	return info
}

func (m *matcher) await(p *Proc, wtr chan *sendInfo, what string) *sendInfo {
	select {
	case info := <-wtr:
		// Fast path: matched between registration and here; skip the
		// allocating timer select.
		return info
	default:
	}
	select {
	case info := <-wtr:
		return info
	case <-m.w.abort:
		panic("mpisim: run aborted by failure on another rank")
	case <-time.After(m.w.cfg.DeadlockTimeout):
		panic(fmt.Sprintf("mpisim: rank %d deadlocked in %s (no matching send after %v)", p.Rank, what, m.w.cfg.DeadlockTimeout))
	}
}

// Request is a non-blocking communication handle.
type Request struct {
	id     int
	isSend bool
	src    int // AnySource for wildcard receives
	tag    int
	bytes  float64
	// For receives matched at post time (specific source), info arrives
	// through claim; wildcard receives resolve at wait time.
	claim   chan *sendInfo
	claimed *sendInfo
	postCtx any
}

// ID returns the request handle value exposed to the application.
func (r *Request) ID() int { return r.id }

func (p *Proc) validPeer(peer int) {
	if peer < 0 || peer >= p.world.np {
		panic(fmt.Sprintf("mpisim: rank %d: peer %d out of range [0,%d)", p.Rank, peer, p.world.np))
	}
}

// Send is an eager blocking send: the sender pays overhead plus injection
// cost and proceeds; the message arrives after the wire latency.
func (p *Proc) Send(dst, tag int, bytes float64) {
	p.validPeer(dst)
	t0 := p.Clock
	p.mpiOverhead()
	p.advance(bytes*p.world.cfg.Net.PerByte, AdvTransfer, zeroVec)
	p.world.matcher.postSend(p.Rank, dst, tag, bytes, p.Clock+p.world.cfg.Net.Latency, p.Ctx)
	p.emit(Event{Kind: EvSend, Op: "mpi_send", Peer: dst, Tag: tag, Bytes: bytes, TStart: t0, TEnd: p.Clock, DepRank: -1, Root: -1})
}

// Recv is a blocking receive from a specific source.
func (p *Proc) Recv(src, tag int, bytes float64) {
	p.validPeer(src)
	t0 := p.Clock
	p.mpiOverhead()
	info := p.world.matcher.claimRecv(p, src, p.Rank, tag)
	wait := p.waitUntil(info.tArrive)
	p.advance(info.bytes*p.world.cfg.Net.PerByte, AdvTransfer, zeroVec)
	p.emit(Event{Kind: EvRecv, Op: "mpi_recv", Peer: info.from, Tag: tag, Bytes: info.bytes,
		TStart: t0, TEnd: p.Clock, Wait: wait, DepRank: info.from, DepCtx: info.ctx, Root: -1})
}

// RecvAny is a blocking wildcard-source receive; it returns the matched
// source rank (the MPI_Status.MPI_SOURCE of paper Fig. 5).
func (p *Proc) RecvAny(tag int, bytes float64) int {
	t0 := p.Clock
	p.mpiOverhead()
	info := p.world.matcher.claimRecvAny(p, p.Rank, tag)
	wait := p.waitUntil(info.tArrive)
	p.advance(info.bytes*p.world.cfg.Net.PerByte, AdvTransfer, zeroVec)
	p.emit(Event{Kind: EvRecv, Op: "mpi_recv_any", Peer: info.from, Tag: tag, Bytes: info.bytes,
		TStart: t0, TEnd: p.Clock, Wait: wait, DepRank: info.from, DepCtx: info.ctx, Root: -1})
	return info.from
}

// Isend posts a non-blocking send. Eager semantics: the payload is
// buffered immediately, so the returned request completes instantly.
func (p *Proc) Isend(dst, tag int, bytes float64) *Request {
	p.validPeer(dst)
	t0 := p.Clock
	p.mpiOverhead()
	p.advance(bytes*p.world.cfg.Net.PerByte, AdvTransfer, zeroVec)
	p.world.matcher.postSend(p.Rank, dst, tag, bytes, p.Clock+p.world.cfg.Net.Latency, p.Ctx)
	req := p.newRequest(true, dst, tag, bytes)
	p.emit(Event{Kind: EvIsend, Op: "mpi_isend", Peer: dst, Tag: tag, Bytes: bytes, TStart: t0, TEnd: p.Clock, DepRank: -1, Root: -1, ReqID: req.id})
	return req
}

// Irecv posts a non-blocking receive from a specific source. The matching
// sequence number is claimed at post time, preserving program order.
func (p *Proc) Irecv(src, tag int, bytes float64) *Request {
	p.validPeer(src)
	t0 := p.Clock
	p.mpiOverhead()
	req := p.newRequest(false, src, tag, bytes)
	req.claim = p.claimAsync(src, tag)
	p.emit(Event{Kind: EvIrecv, Op: "mpi_irecv", Peer: src, Tag: tag, Bytes: bytes, TStart: t0, TEnd: p.Clock, DepRank: -1, Root: -1, ReqID: req.id})
	return req
}

// IrecvAny posts a non-blocking wildcard receive; the source is uncertain
// until completion (paper Fig. 5's status-based resolution).
func (p *Proc) IrecvAny(tag int, bytes float64) *Request {
	t0 := p.Clock
	p.mpiOverhead()
	req := p.newRequest(false, AnySource, tag, bytes)
	p.emit(Event{Kind: EvIrecv, Op: "mpi_irecv_any", Peer: AnySource, Tag: tag, Bytes: bytes, TStart: t0, TEnd: p.Clock, DepRank: -1, Root: -1, ReqID: req.id})
	return req
}

// claimAsync claims the next sequence number for (src -> p.Rank, tag) and
// returns a channel that will deliver the matching send.
func (p *Proc) claimAsync(src, tag int) chan *sendInfo {
	out := p.claimChan()
	m := p.world.matcher
	m.lock()
	k := p2pKey{src, p.Rank, tag}
	ch := m.chanFor(k)
	ch.hasSpecific = true
	seq := ch.recvClaims
	ch.recvClaims++
	if seq < len(ch.sends) {
		info := ch.sends[seq]
		info.matched = true
		out <- info
		m.unlock()
		return out
	}
	ch.waiters[seq] = out
	m.unlock()
	return out
}

// claimChan returns a 1-buffered delivery channel, reusing a drained one
// from the rank's pool when available.
func (p *Proc) claimChan() chan *sendInfo {
	if n := len(p.freeClaims); n > 0 {
		ch := p.freeClaims[n-1]
		p.freeClaims = p.freeClaims[:n-1]
		return ch
	}
	return make(chan *sendInfo, 1)
}

func (p *Proc) newRequest(isSend bool, src, tag int, bytes float64) *Request {
	var r *Request
	if n := len(p.freeReqs); n > 0 {
		r = p.freeReqs[n-1]
		p.freeReqs = p.freeReqs[:n-1]
		*r = Request{}
	} else {
		r = &Request{}
	}
	r.isSend, r.src, r.tag, r.bytes, r.postCtx = isSend, src, tag, bytes, p.Ctx
	p.nextReq++
	r.id = p.nextReq
	p.reqs[r.id] = r
	p.reqOrder = append(p.reqOrder, r.id)
	return r
}

// recycleRequest returns a completed request (already removed from
// p.reqs) to the rank's pool, along with its claim channel when the
// claim has been consumed (a consumed claim channel is empty and no
// longer registered with the matcher).
func (p *Proc) recycleRequest(r *Request) {
	if r.claim != nil && r.claimed != nil {
		p.freeClaims = append(p.freeClaims, r.claim)
	}
	p.freeReqs = append(p.freeReqs, r)
}

// FindRequest resolves an application-level request handle.
func (p *Proc) FindRequest(id int) *Request {
	return p.reqs[id]
}

// resolve obtains the matched sendInfo for a receive request.
func (p *Proc) resolve(r *Request) *sendInfo {
	if r.claimed != nil {
		return r.claimed
	}
	if r.isSend {
		return nil
	}
	if r.src == AnySource {
		r.claimed = p.world.matcher.claimRecvAny(p, p.Rank, r.tag)
		return r.claimed
	}
	select {
	case info := <-r.claim:
		// Fast path: the matching send is already buffered; skip the
		// timer select below, whose time.After allocates even when unused.
		r.claimed = info
	default:
		select {
		case info := <-r.claim:
			r.claimed = info
		case <-p.world.abort:
			panic("mpisim: run aborted by failure on another rank")
		case <-time.After(p.world.cfg.DeadlockTimeout):
			panic(fmt.Sprintf("mpisim: rank %d deadlocked waiting for irecv from %d tag %d", p.Rank, r.src, r.tag))
		}
	}
	return r.claimed
}

func (p *Proc) dropRequest(id int) {
	r := p.reqs[id]
	delete(p.reqs, id)
	for i, x := range p.reqOrder {
		if x == id {
			p.reqOrder = append(p.reqOrder[:i], p.reqOrder[i+1:]...)
			break
		}
	}
	if r != nil {
		p.recycleRequest(r)
	}
}

// Wait completes one outstanding request (paper Fig. 5: the communication
// dependence of a non-blocking receive is recorded here, where source and
// tag become certain).
func (p *Proc) Wait(id int) {
	r := p.reqs[id]
	if r == nil {
		panic(fmt.Sprintf("mpisim: rank %d: mpi_wait on unknown request %d", p.Rank, id))
	}
	t0 := p.Clock
	p.mpiOverhead()
	if r.isSend {
		p.dropRequest(id)
		p.emit(Event{Kind: EvWait, Op: "mpi_wait", Peer: r.src, Tag: r.tag, Bytes: r.bytes,
			TStart: t0, TEnd: p.Clock, DepRank: -1, Root: -1, Requests: 1, ReqID: id})
		return
	}
	info := p.resolve(r)
	wait := p.waitUntil(info.tArrive)
	p.advance(info.bytes*p.world.cfg.Net.PerByte, AdvTransfer, zeroVec)
	p.dropRequest(id)
	p.emit(Event{Kind: EvWait, Op: "mpi_wait", Peer: info.from, Tag: r.tag, Bytes: info.bytes,
		TStart: t0, TEnd: p.Clock, Wait: wait, DepRank: info.from, DepCtx: info.ctx, Root: -1, Requests: 1, ReqID: id})
}

// Waitall completes every outstanding request of the rank. The dependence
// recorded is the request whose message arrived last — the rank that kept
// this rank waiting.
func (p *Proc) Waitall() {
	t0 := p.Clock
	p.mpiOverhead()
	var lastArrive float64
	depRank := -1
	var depCtx any
	var totalBytes float64
	n, nRecv := 0, 0
	// Completing everything lets the loop walk reqOrder in place (only the
	// rank's own goroutine mutates it) and release the slice wholesale
	// afterwards instead of splicing per request.
	for _, id := range p.reqOrder {
		r := p.reqs[id]
		if r == nil {
			continue
		}
		n++
		if !r.isSend {
			nRecv++
			info := p.resolve(r)
			totalBytes += info.bytes
			if info.tArrive > lastArrive {
				lastArrive = info.tArrive
				depRank = info.from
				depCtx = info.ctx
			}
		}
		delete(p.reqs, id)
		p.recycleRequest(r)
	}
	p.reqOrder = p.reqOrder[:0]
	wait := p.waitUntil(lastArrive)
	if totalBytes > 0 {
		p.advance(totalBytes*p.world.cfg.Net.PerByte, AdvTransfer, zeroVec)
	}
	p.emit(Event{Kind: EvWaitall, Op: "mpi_waitall", Peer: depRank, Tag: 0, Bytes: totalBytes,
		TStart: t0, TEnd: p.Clock, Wait: wait, DepRank: depRank, DepCtx: depCtx, Root: -1,
		Requests: n, RecvRequests: nRecv})
}

// Sendrecv performs a combined exchange: both transfers proceed
// concurrently and the call completes when the incoming message arrives.
func (p *Proc) Sendrecv(dst, stag int, sbytes float64, src, rtag int, rbytes float64) {
	p.validPeer(dst)
	p.validPeer(src)
	t0 := p.Clock
	p.mpiOverhead()
	p.advance(sbytes*p.world.cfg.Net.PerByte, AdvTransfer, zeroVec)
	p.world.matcher.postSend(p.Rank, dst, stag, sbytes, p.Clock+p.world.cfg.Net.Latency, p.Ctx)
	info := p.world.matcher.claimRecv(p, src, p.Rank, rtag)
	wait := p.waitUntil(info.tArrive)
	p.advance(info.bytes*p.world.cfg.Net.PerByte, AdvTransfer, zeroVec)
	p.emit(Event{Kind: EvSendrecv, Op: "mpi_sendrecv", Peer: info.from, Tag: rtag, Bytes: sbytes + info.bytes,
		TStart: t0, TEnd: p.Clock, Wait: wait, DepRank: info.from, DepCtx: info.ctx, Root: -1,
		SendPeer: dst, SendBytes: sbytes})
}

// Outstanding reports the number of pending requests (testing aid).
func (p *Proc) Outstanding() int { return len(p.reqs) }

var zeroVec machine.Vec
