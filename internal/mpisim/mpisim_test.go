package mpisim

import (
	"fmt"
	"math"
	"strings"
	"testing"
	"time"

	"scalana/internal/machine"
)

func newTestWorld(np int) *World {
	return NewWorld(Config{NP: np, Seed: 1})
}

func TestSendRecvTiming(t *testing.T) {
	w := newTestWorld(2)
	net := w.cfg.Net
	const bytes = 1 << 20
	_, err := w.Run(func(p *Proc) {
		if p.Rank == 0 {
			p.Send(1, 0, bytes)
		} else {
			p.Recv(0, 0, bytes)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	r1 := w.Proc(1).Clock
	// Receiver time: its own entry overhead is absorbed while waiting for
	// the arrival (sender overhead + injection copy + latency), then the
	// local copy: o + G*bytes + L + G*bytes.
	want := net.Overhead + bytes*net.PerByte + net.Latency + bytes*net.PerByte
	if math.Abs(r1-want) > 1e-12 {
		t.Errorf("recv completion = %g, want %g", r1, want)
	}
}

func TestMessagesMatchInOrder(t *testing.T) {
	// Two sends on the same channel must match the receives in order:
	// the second recv cannot complete before the second send's arrival.
	w := newTestWorld(2)
	var waits []float64
	w.cfg.HookFactory = nil
	_, err := w.Run(func(p *Proc) {
		if p.Rank == 0 {
			p.Send(1, 7, 100)
			p.Compute(1e7, 0, 0, 64) // delay before second send
			p.Send(1, 7, 100)
		} else {
			p.Recv(0, 7, 100)
			t0 := p.Clock
			p.Recv(0, 7, 100)
			waits = append(waits, p.Clock-t0)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(waits) != 1 || waits[0] <= 1e-3 {
		t.Errorf("second recv should wait for the delayed second send: %v", waits)
	}
}

func TestEagerSendDoesNotBlock(t *testing.T) {
	w := newTestWorld(2)
	_, err := w.Run(func(p *Proc) {
		if p.Rank == 0 {
			p.Send(1, 0, 64)
			// Sender proceeds immediately; its clock is just overhead+copy.
			if p.Clock > 1e-4 {
				t.Errorf("eager send blocked: clock %g", p.Clock)
			}
			p.Barrier()
		} else {
			p.Compute(1e8, 0, 0, 64) // receive very late
			p.Recv(0, 0, 64)
			p.Barrier()
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestNonBlockingWaitall(t *testing.T) {
	w := newTestWorld(3)
	_, err := w.Run(func(p *Proc) {
		next := (p.Rank + 1) % 3
		prev := (p.Rank + 2) % 3
		p.Irecv(prev, 1, 4096)
		p.Irecv(next, 2, 4096)
		p.Isend(next, 1, 4096)
		p.Isend(prev, 2, 4096)
		if p.Outstanding() != 4 {
			t.Errorf("rank %d: %d outstanding, want 4", p.Rank, p.Outstanding())
		}
		p.Waitall()
		if p.Outstanding() != 0 {
			t.Errorf("rank %d: %d outstanding after waitall", p.Rank, p.Outstanding())
		}
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestWaitallDependsOnLatestArrival(t *testing.T) {
	var events []*Event
	cfg := Config{NP: 3, Seed: 1}
	cfg.HookFactory = func(rank int) []Hook {
		if rank != 0 {
			return nil
		}
		return []Hook{&captureHook{events: &events}}
	}
	w := NewWorld(cfg)
	_, err := w.Run(func(p *Proc) {
		switch p.Rank {
		case 0:
			p.Irecv(1, 0, 64)
			p.Irecv(2, 0, 64)
			p.Waitall()
		case 1:
			p.Send(0, 0, 64) // fast sender
		case 2:
			p.Compute(5e7, 0, 0, 64) // slow sender
			p.Send(0, 0, 64)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var wa *Event
	for _, ev := range events {
		if ev.Kind == EvWaitall {
			wa = ev
		}
	}
	if wa == nil {
		t.Fatal("no waitall event captured")
	}
	if wa.DepRank != 2 {
		t.Errorf("waitall dependence = rank %d, want 2 (the slow sender)", wa.DepRank)
	}
	if wa.Wait <= 0 {
		t.Errorf("waitall wait = %g, want > 0", wa.Wait)
	}
	if wa.Requests != 2 {
		t.Errorf("waitall completed %d requests, want 2", wa.Requests)
	}
}

type captureHook struct {
	events *[]*Event
}

func (h *captureHook) Advance(p *Proc, from, to float64, kind AdvanceKind, ctx any, pmu machine.Vec) float64 {
	return 0
}
func (h *captureHook) MPIEvent(p *Proc, ev *Event) float64 {
	cp := *ev
	*h.events = append(*h.events, &cp)
	return 0
}

func TestCollectiveStragglerDependence(t *testing.T) {
	var events []*Event
	cfg := Config{NP: 4, Seed: 1}
	cfg.HookFactory = func(rank int) []Hook {
		if rank != 0 {
			return nil
		}
		return []Hook{&captureHook{events: &events}}
	}
	w := NewWorld(cfg)
	_, err := w.Run(func(p *Proc) {
		if p.Rank == 2 {
			p.Compute(1e8, 0, 0, 64)
		}
		p.Allreduce(8)
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(events) != 1 {
		t.Fatalf("%d events", len(events))
	}
	ev := events[0]
	if !ev.Collective || ev.Op != "mpi_allreduce" {
		t.Errorf("event = %+v", ev)
	}
	if ev.DepRank != 2 {
		t.Errorf("collective dependence = rank %d, want straggler 2", ev.DepRank)
	}
	if ev.Wait <= 0 {
		t.Errorf("wait = %g", ev.Wait)
	}
}

func TestCollectiveEqualizesClocks(t *testing.T) {
	w := newTestWorld(5)
	_, err := w.Run(func(p *Proc) {
		p.Compute(float64(p.Rank+1)*1e6, 0, 0, 64)
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	first := w.Proc(0).Clock
	for r := 1; r < 5; r++ {
		if math.Abs(w.Proc(r).Clock-first) > 1e-12 {
			t.Errorf("rank %d clock %g != rank 0 clock %g after barrier", r, w.Proc(r).Clock, first)
		}
	}
}

func TestCollectiveOpMismatchFails(t *testing.T) {
	w := newTestWorld(2)
	_, err := w.Run(func(p *Proc) {
		if p.Rank == 0 {
			p.Barrier()
		} else {
			p.Allreduce(8)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "mismatch") {
		t.Errorf("expected collective mismatch error, got %v", err)
	}
}

func TestCollectiveRootMismatchFails(t *testing.T) {
	w := newTestWorld(2)
	_, err := w.Run(func(p *Proc) {
		p.Bcast(p.Rank, 64) // different roots
	})
	if err == nil || !strings.Contains(err.Error(), "root") {
		t.Errorf("expected root mismatch error, got %v", err)
	}
}

func TestCollectiveCostGrowsWithScale(t *testing.T) {
	cost4 := NewWorld(Config{NP: 4}).collCost("mpi_allreduce", 8, 4)
	cost64 := NewWorld(Config{NP: 64}).collCost("mpi_allreduce", 8, 64)
	if cost64 <= cost4 {
		t.Errorf("allreduce cost should grow with np: %g <= %g", cost64, cost4)
	}
	a2a4 := NewWorld(Config{NP: 4}).collCost("mpi_alltoall", 1024, 4)
	a2a64 := NewWorld(Config{NP: 64}).collCost("mpi_alltoall", 1024, 64)
	if a2a64 <= a2a4*4 {
		t.Errorf("alltoall cost should grow ~linearly with np: %g vs %g", a2a64, a2a4)
	}
}

func TestSendrecvExchange(t *testing.T) {
	w := newTestWorld(4)
	_, err := w.Run(func(p *Proc) {
		next := (p.Rank + 1) % 4
		prev := (p.Rank + 3) % 4
		for i := 0; i < 3; i++ {
			p.Sendrecv(next, 5, 2048, prev, 5, 2048)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	for r := 0; r < 4; r++ {
		if w.Proc(r).Clock <= 0 {
			t.Errorf("rank %d made no progress", r)
		}
	}
}

func TestRecvAnyMatchesOnlySender(t *testing.T) {
	w := newTestWorld(3)
	got := -1
	_, err := w.Run(func(p *Proc) {
		switch p.Rank {
		case 0:
			got = p.RecvAny(9, 128)
		case 2:
			p.Send(0, 9, 128)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	if got != 2 {
		t.Errorf("RecvAny matched rank %d, want 2", got)
	}
}

func TestIrecvAnyResolvedAtWait(t *testing.T) {
	var events []*Event
	cfg := Config{NP: 2, Seed: 1}
	cfg.HookFactory = func(rank int) []Hook {
		if rank != 0 {
			return nil
		}
		return []Hook{&captureHook{events: &events}}
	}
	w := NewWorld(cfg)
	_, err := w.Run(func(p *Proc) {
		if p.Rank == 0 {
			req := p.IrecvAny(3, 256)
			p.Wait(req.ID())
		} else {
			p.Send(0, 3, 256)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var wait *Event
	for _, ev := range events {
		if ev.Kind == EvWait {
			wait = ev
		}
	}
	if wait == nil {
		t.Fatal("no wait event")
	}
	if wait.Peer != 1 || wait.DepRank != 1 {
		t.Errorf("wildcard wait resolved to peer %d dep %d, want 1", wait.Peer, wait.DepRank)
	}
}

func TestPanicOnOneRankAbortsRun(t *testing.T) {
	w := newTestWorld(4)
	start := time.Now()
	_, err := w.Run(func(p *Proc) {
		if p.Rank == 3 {
			panic("boom")
		}
		p.Barrier() // would deadlock forever without abort propagation
	})
	if err == nil || !strings.Contains(err.Error(), "boom") {
		t.Errorf("expected boom error, got %v", err)
	}
	if time.Since(start) > 10*time.Second {
		t.Error("abort took too long; propagation broken")
	}
}

func TestDeadlockDetection(t *testing.T) {
	// Detection is exact and instant: the test completes the moment the
	// ready heap drains (no timeout knob exists anymore — the deprecated
	// DeadlockTimeout no-op was removed; see DESIGN.md §11).
	w := NewWorld(Config{NP: 2})
	_, err := w.Run(func(p *Proc) {
		if p.Rank == 0 {
			p.Recv(1, 0, 64) // rank 1 never sends
		}
	})
	if err == nil || !strings.Contains(err.Error(), "deadlock") {
		t.Errorf("expected deadlock error, got %v", err)
	}
}

func TestDeadlockDiagnosticNamesEveryBlockedRank(t *testing.T) {
	// Two ranks in a recv cycle: each waits for a message the other never
	// sends. The exact detector must fire the moment the ready heap
	// drains and name both ranks with their pending operations.
	start := time.Now()
	w := NewWorld(Config{NP: 2})
	_, err := w.Run(func(p *Proc) {
		p.Recv(1-p.Rank, 7, 64)
	})
	if err == nil {
		t.Fatal("expected deadlock error, got nil")
	}
	msg := err.Error()
	for _, want := range []string{
		"deadlock",
		"2 rank(s) blocked forever",
		"rank 0: blocked in recv from rank 1 tag 7",
		"rank 1: blocked in recv from rank 0 tag 7",
	} {
		if !strings.Contains(msg, want) {
			t.Errorf("deadlock diagnostic missing %q:\n%s", want, msg)
		}
	}
	// Exact detection replaces the old wall-clock timeout: the report must
	// arrive without waiting anything like the deprecated 60s default.
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Errorf("deadlock detection took %v, want immediate", elapsed)
	}
}

func TestDeadlockDiagnosticCollective(t *testing.T) {
	// Rank 1 joins the barrier; rank 0 blocks in a recv first, so the
	// collective never completes. The report must show both block states.
	w := NewWorld(Config{NP: 2})
	_, err := w.Run(func(p *Proc) {
		if p.Rank == 0 {
			p.Recv(1, 3, 64) // rank 1 is already in the barrier
		}
		p.Barrier()
	})
	if err == nil {
		t.Fatal("expected deadlock error, got nil")
	}
	msg := err.Error()
	if !strings.Contains(msg, "rank 0: blocked in recv from rank 1 tag 3") {
		t.Errorf("diagnostic missing rank 0 recv block:\n%s", msg)
	}
	if !strings.Contains(msg, "rank 1: blocked in mpi_barrier #0 (collective missing participants)") {
		t.Errorf("diagnostic missing rank 1 collective block:\n%s", msg)
	}
}

func TestDirectDriveBlockingPanics(t *testing.T) {
	// Outside World.Run there is no scheduler and no peer to wake a
	// blocked rank; a blocking operation must fail loudly instead of
	// parking forever.
	w := NewWorld(Config{NP: 2})
	defer func() {
		rec := recover()
		if rec == nil {
			t.Fatal("expected panic from blocking recv outside World.Run")
		}
		if msg := fmt.Sprint(rec); !strings.Contains(msg, "outside World.Run") {
			t.Errorf("panic message %q does not explain the direct-drive restriction", msg)
		}
	}()
	w.Proc(0).Recv(1, 0, 64) // no matching send posted: would block
}

func TestInvalidPeerFails(t *testing.T) {
	w := newTestWorld(2)
	_, err := w.Run(func(p *Proc) {
		if p.Rank == 0 {
			p.Send(5, 0, 64)
		}
	})
	if err == nil || !strings.Contains(err.Error(), "out of range") {
		t.Errorf("expected peer range error, got %v", err)
	}
}

func TestWaitUnknownRequestFails(t *testing.T) {
	w := newTestWorld(1)
	_, err := w.Run(func(p *Proc) {
		p.Wait(42)
	})
	if err == nil || !strings.Contains(err.Error(), "unknown request") {
		t.Errorf("expected unknown-request error, got %v", err)
	}
}

func TestMixedWildcardSpecificRejected(t *testing.T) {
	w := NewWorld(Config{NP: 2})
	_, err := w.Run(func(p *Proc) {
		if p.Rank == 0 {
			// Specific recv claims seq 0, then a wildcard tries to steal
			// from the same channel: rejected by design.
			p.Recv(1, 4, 64)
			p.RecvAny(4, 64)
		} else {
			p.Send(0, 4, 64)
			p.Send(0, 4, 64)
		}
	})
	// Either a deadlock (wildcard never matches a specific-claimed
	// channel) or an explicit mixing panic is acceptable; silence is not.
	if err == nil {
		t.Error("mixing wildcard and specific receives should fail loudly")
	}
}

func TestDeterminismUnderConcurrency(t *testing.T) {
	run := func() []float64 {
		w := newTestWorld(8)
		_, err := w.Run(func(p *Proc) {
			next := (p.Rank + 1) % 8
			prev := (p.Rank + 7) % 8
			for i := 0; i < 10; i++ {
				p.Compute(float64(1+p.Rank)*1e5, 1e3, 1e3, 4096)
				p.Irecv(prev, 1, 2048)
				p.Isend(next, 1, 2048)
				p.Waitall()
				if i%3 == 0 {
					p.Allreduce(8)
				}
			}
		})
		if err != nil {
			t.Fatal(err)
		}
		out := make([]float64, 8)
		for r := range out {
			out[r] = w.Proc(r).Clock
		}
		return out
	}
	first := run()
	for trial := 0; trial < 5; trial++ {
		got := run()
		for r := range got {
			if got[r] != first[r] {
				t.Fatalf("trial %d rank %d clock %g != %g", trial, r, got[r], first[r])
			}
		}
	}
}

func TestPerturbAccounting(t *testing.T) {
	w := newTestWorld(1)
	res, err := w.Run(func(p *Proc) {
		p.Compute(1e6, 0, 0, 64)
		p.Perturb(0.5)
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.PerturbTotal-0.5) > 1e-12 {
		t.Errorf("PerturbTotal = %g", res.PerturbTotal)
	}
	if res.Elapsed < 0.5 {
		t.Errorf("perturbation must advance the clock: %g", res.Elapsed)
	}
}

func TestHookOverheadCharged(t *testing.T) {
	charge := &chargingHook{}
	cfg := Config{NP: 1, Seed: 1}
	cfg.HookFactory = func(rank int) []Hook { return []Hook{charge} }
	w := NewWorld(cfg)
	res, err := w.Run(func(p *Proc) {
		p.Compute(1e6, 0, 0, 64)
		p.Barrier()
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.PerturbTotal <= 0 {
		t.Error("hook-returned overhead was not charged")
	}
	if charge.sawPerturb == 0 {
		t.Error("hooks should observe perturb advances")
	}
}

type chargingHook struct {
	sawPerturb int
}

func (h *chargingHook) Advance(p *Proc, from, to float64, kind AdvanceKind, ctx any, pmu machine.Vec) float64 {
	if kind == AdvPerturb {
		h.sawPerturb++
		return 1e9 // must be ignored, or the run would never finish
	}
	return 1e-6
}
func (h *chargingHook) MPIEvent(p *Proc, ev *Event) float64 { return 2e-6 }

func TestRandDeterministicPerRank(t *testing.T) {
	w1 := newTestWorld(2)
	w2 := newTestWorld(2)
	var a, b [2]float64
	w1.Run(func(p *Proc) { a[p.Rank] = p.Rand() })
	w2.Run(func(p *Proc) { b[p.Rank] = p.Rand() })
	if a != b {
		t.Errorf("per-rank RNG not deterministic: %v vs %v", a, b)
	}
	if a[0] == a[1] {
		t.Error("ranks should have different RNG streams")
	}
}

func TestEventKindAndAdvanceKindStrings(t *testing.T) {
	for _, k := range []EventKind{EvSend, EvRecv, EvIsend, EvIrecv, EvWait, EvWaitall, EvSendrecv, EvCollective} {
		if k.String() == "event" {
			t.Errorf("EventKind %d has no name", k)
		}
	}
	for _, k := range []AdvanceKind{AdvCompute, AdvGlue, AdvMPIOverhead, AdvTransfer, AdvWait, AdvPerturb} {
		if k.String() == "advance" {
			t.Errorf("AdvanceKind %d has no name", k)
		}
	}
}

func TestSortedRanksByClock(t *testing.T) {
	w := newTestWorld(3)
	w.Run(func(p *Proc) {
		p.Compute(float64(3-p.Rank)*1e6, 0, 0, 64)
	})
	order := w.SortedRanksByClock()
	if order[0] != 2 || order[2] != 0 {
		t.Errorf("order = %v", order)
	}
}
