package prof

import (
	"os"
	"path/filepath"
	"testing"

	"scalana/internal/machine"
	"scalana/internal/minilang"
	"scalana/internal/mpisim"
	"scalana/internal/psg"
)

func testGraph(t *testing.T) *psg.Graph {
	t.Helper()
	prog := minilang.MustParse("t.mp", `
func main() {
	compute(1e6, 1e4, 1e4, 4096);
	mpi_barrier();
}`)
	return psg.MustBuild(prog)
}

// fakeProc builds a minimal Proc for direct hook unit tests.
func fakeProc(t *testing.T) *mpisim.Proc {
	t.Helper()
	w := mpisim.NewWorld(mpisim.Config{NP: 1})
	return w.Proc(0)
}

func TestSamplerCrossingCounts(t *testing.T) {
	g := testGraph(t)
	pr := New(DefaultConfig(), g, 0, 1) // 200 Hz -> period 5 ms
	p := fakeProc(t)
	v := g.Root.Children[0] // the Comp vertex

	// Advance 12 ms in one go: crosses t=5ms and t=10ms -> 2 samples.
	owed := pr.Advance(p, 0, 0.012, mpisim.AdvCompute, v, machine.Vec{100, 200, 50, 1, 80})
	pd := pr.Profile().PerfAt(v.VID)
	if pd == nil || pd.Samples != 2 {
		t.Fatalf("samples = %+v, want 2", pd)
	}
	if pd.Time != 2.0/200 {
		t.Errorf("sampled time = %g, want %g", pd.Time, 2.0/200)
	}
	if pd.PMU[0] != 100 {
		t.Errorf("PMU attributed = %v", pd.PMU)
	}
	if owed != 2*DefaultConfig().SampleCost {
		t.Errorf("owed = %g", owed)
	}

	// Sub-period advances accumulate pending PMU without sampling...
	owed = pr.Advance(p, 0.012, 0.013, mpisim.AdvCompute, v, machine.Vec{7, 0, 0, 0, 0})
	if owed != 0 {
		t.Errorf("sub-period advance owed %g", owed)
	}
	if pr.Profile().Vertex[v.VID].PMU[0] != 100 {
		t.Error("pending PMU flushed too early")
	}
	// ...and the next crossing flushes them.
	pr.Advance(p, 0.013, 0.016, mpisim.AdvCompute, v, machine.Vec{3, 0, 0, 0, 0})
	if got := pr.Profile().Vertex[v.VID].PMU[0]; got != 110 {
		t.Errorf("PMU after flush = %g, want 110", got)
	}
}

func TestSamplerNoChargeOnPerturb(t *testing.T) {
	g := testGraph(t)
	pr := New(DefaultConfig(), g, 0, 1)
	p := fakeProc(t)
	owed := pr.Advance(p, 0, 1.0, mpisim.AdvPerturb, g.Root.Children[0], machine.Vec{})
	if owed != 0 {
		t.Errorf("perturb advance charged %g", owed)
	}
}

func TestCommCompression(t *testing.T) {
	g := testGraph(t)
	pr := New(DefaultConfig(), g, 0, 4)
	p := fakeProc(t)
	v := g.Root.Children[1] // MPI vertex
	ev := &mpisim.Event{
		Kind: mpisim.EvRecv, Op: "mpi_recv", Rank: 0, Peer: 1, Tag: 7,
		Bytes: 1024, Wait: 0.001, DepRank: 1, DepCtx: v, Ctx: v,
	}
	for i := 0; i < 50; i++ {
		pr.MPIEvent(p, ev)
	}
	prof := pr.Profile()
	if len(prof.Comm) != 1 {
		t.Fatalf("compressed records = %d, want 1", len(prof.Comm))
	}
	for _, rec := range prof.Comm {
		if rec.Count != 50 {
			t.Errorf("count = %d, want 50", rec.Count)
		}
		if rec.TotalWait < 0.05-1e-9 || rec.TotalWait > 0.05+1e-9 {
			t.Errorf("total wait = %g", rec.TotalWait)
		}
		if rec.MaxWait != 0.001 {
			t.Errorf("max wait = %g", rec.MaxWait)
		}
	}

	// Different parameters produce a second record.
	ev2 := *ev
	ev2.Bytes = 2048
	pr.MPIEvent(p, &ev2)
	if len(prof.Comm) != 2 {
		t.Errorf("records after different params = %d, want 2", len(prof.Comm))
	}
}

func TestCommCompressionDisabled(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultConfig()
	cfg.Compress = false
	pr := New(cfg, g, 0, 4)
	p := fakeProc(t)
	v := g.Root.Children[1]
	ev := &mpisim.Event{Kind: mpisim.EvRecv, Op: "mpi_recv", Peer: 1, Tag: 7,
		Bytes: 1024, DepRank: 1, DepCtx: v, Ctx: v}
	for i := 0; i < 20; i++ {
		pr.MPIEvent(p, ev)
	}
	if len(pr.Profile().Comm) != 20 {
		t.Errorf("uncompressed records = %d, want 20", len(pr.Profile().Comm))
	}
}

func TestCommSamplingProbability(t *testing.T) {
	g := testGraph(t)
	cfg := DefaultConfig()
	cfg.CommSampleProb = 0.25
	cfg.Compress = false
	pr := New(cfg, g, 0, 4)
	p := fakeProc(t)
	v := g.Root.Children[1]
	ev := &mpisim.Event{Kind: mpisim.EvRecv, Op: "mpi_recv", Peer: 1, Tag: 7,
		Bytes: 1024, DepRank: 1, DepCtx: v, Ctx: v}
	const n = 2000
	for i := 0; i < n; i++ {
		pr.MPIEvent(p, ev)
	}
	sampled := pr.Profile().EventsSampled
	if sampled < n/8 || sampled > n/2 {
		t.Errorf("sampled %d of %d events at p=0.25", sampled, n)
	}
	if pr.Profile().EventsSeen != n {
		t.Errorf("seen = %d", pr.Profile().EventsSeen)
	}
}

// TestRequestConverterFig5 exercises the wildcard path of paper Fig. 5:
// an irecv with uncertain source resolved from the status at wait time.
func TestRequestConverterFig5(t *testing.T) {
	prog := minilang.MustParse("t.mp", `
func main() {
	if (mpi_rank() == 0) {
		var r = mpi_irecv_any(3, 256);
		mpi_wait(r);
	} else {
		mpi_send(0, 3, 256);
	}
}`)
	g := psg.MustBuild(prog)
	profilers := make([]*Profiler, 2)
	cfg := mpisim.Config{NP: 2, HookFactory: func(rank int) []mpisim.Hook {
		profilers[rank] = New(DefaultConfig(), g, rank, 2)
		return []mpisim.Hook{profilers[rank]}
	}}
	w := mpisim.NewWorld(cfg)
	_, err := w.Run(func(p *mpisim.Proc) {
		// Execute the scenario manually (the interpreter integration is
		// covered elsewhere): set MPI vertex contexts like interp would.
		if p.Rank == 0 {
			req := p.IrecvAny(3, 256)
			p.Wait(req.ID())
		} else {
			p.Send(0, 3, 256)
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	var waitRec *CommRecord
	for _, rec := range profilers[0].Profile().Comm {
		if rec.Op == "mpi_wait" {
			waitRec = rec
		}
	}
	if waitRec == nil {
		t.Fatal("no wait record")
	}
	if waitRec.DepRank != 1 {
		t.Errorf("wildcard source resolved to %d, want 1", waitRec.DepRank)
	}
}

func TestObserveIndirect(t *testing.T) {
	g := testGraph(t)
	pr := New(DefaultConfig(), g, 0, 1)
	pr.ObserveIndirect(0, g.Main, 5, "foo")
	pr.ObserveIndirect(0, g.Main, 5, "foo")
	pr.ObserveIndirect(0, g.Main, 5, "bar")
	if len(pr.Profile().Indirect) != 2 {
		t.Fatalf("indirect records = %d, want 2", len(pr.Profile().Indirect))
	}
	for _, rec := range pr.Profile().Indirect {
		if rec.Target == "foo" && rec.Count != 2 {
			t.Errorf("foo count = %d", rec.Count)
		}
	}
}

func TestStorageBytesGrowsWithRecords(t *testing.T) {
	g := testGraph(t)
	pr := New(DefaultConfig(), g, 0, 1)
	empty := pr.Profile().StorageBytes()
	p := fakeProc(t)
	v := g.Root.Children[1]
	pr.MPIEvent(p, &mpisim.Event{Kind: mpisim.EvRecv, Op: "mpi_recv", Peer: 1,
		Bytes: 64, DepRank: 1, DepCtx: v, Ctx: v})
	pr.Advance(p, 0, 1, mpisim.AdvCompute, g.Root.Children[0], machine.Vec{})
	if pr.Profile().StorageBytes() <= empty {
		t.Error("storage should grow with records")
	}
}

func TestProfileSetRoundTrip(t *testing.T) {
	g := testGraph(t)
	pr := New(DefaultConfig(), g, 0, 1)
	p := fakeProc(t)
	v := g.Root.Children[1]
	pr.Advance(p, 0, 0.1, mpisim.AdvCompute, g.Root.Children[0], machine.Vec{10, 20, 5, 1, 8})
	pr.MPIEvent(p, &mpisim.Event{Kind: mpisim.EvRecv, Op: "mpi_recv", Peer: 1, Tag: 3,
		Bytes: 64, Wait: 0.01, DepRank: 1, DepCtx: v, Ctx: v})
	pr.ObserveIndirect(0, g.Main, 7, "target")

	ps := &ProfileSet{App: "test", NP: 1, Elapsed: 0.1, Profiles: []*RankProfile{pr.Profile()}}
	dir := t.TempDir()
	path := filepath.Join(dir, "p.json")
	if err := ps.Save(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadProfileSet(path, g)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.App != "test" || loaded.NP != 1 || len(loaded.Profiles) != 1 {
		t.Fatalf("loaded = %+v", loaded)
	}
	lp := loaded.Profiles[0]
	if lp.NumVertexEntries() != pr.Profile().NumVertexEntries() {
		t.Errorf("vertex entries = %d, want %d", lp.NumVertexEntries(), pr.Profile().NumVertexEntries())
	}
	if len(lp.Comm) != 1 {
		t.Fatalf("comm records = %d", len(lp.Comm))
	}
	for k, rec := range lp.Comm {
		if k.Op != "mpi_recv" || rec.TotalWait != 0.01 {
			t.Errorf("restored record = %+v", rec)
		}
	}
	if len(lp.Indirect) != 1 {
		t.Errorf("indirect records = %d", len(lp.Indirect))
	}
}

func TestLoadProfileSetErrors(t *testing.T) {
	g := testGraph(t)
	if _, err := LoadProfileSet("/nonexistent/file.json", g); err == nil {
		t.Error("missing file should error")
	}
	dir := t.TempDir()
	bad := filepath.Join(dir, "bad.json")
	os.WriteFile(bad, []byte("{not json"), 0o644)
	if _, err := LoadProfileSet(bad, g); err == nil {
		t.Error("bad JSON should error")
	}
	// A profile naming a vertex the graph does not contain is a
	// profile/app mismatch, not silently-dropped data.
	mismatch := filepath.Join(dir, "mismatch.json")
	os.WriteFile(mismatch, []byte(`{"app":"x","np":1,"profiles":[{"rank":0,"np":1,"vertex":{"nope:99":{"Samples":1,"Time":0.1,"PMU":[0,0,0,0,0]}}}]}`), 0o644)
	if _, err := LoadProfileSet(mismatch, g); err == nil {
		t.Error("unknown vertex key should error")
	}
}
