package prof

// Native fuzz targets for the ProfileSet wire format: decoding arbitrary
// bytes must never panic, and any input that decodes must round-trip
// losslessly (decode -> encode -> decode -> encode is byte-stable).
// Seed corpus: f.Add below plus the committed files under
// testdata/fuzz/FuzzDecodeProfileSet/.

import (
	"bytes"
	"testing"

	"scalana/internal/machine"
	"scalana/internal/minilang"
	"scalana/internal/psg"
)

// fuzzProgram is the tiny program whose compiled symbol table fuzz
// inputs are re-interned against.
const fuzzProgram = `func main() {
	var rank = mpi_rank();
	var np = mpi_size();
	for (var i = 0; i < 4; i = i + 1) {
		compute(1e6, 1e4, 1e4, 4096);
		mpi_sendrecv((rank + 1) % np, 1, 64, (rank - 1 + np) % np, 1, 64);
	}
	mpi_allreduce(8);
}
`

func fuzzGraph(tb testing.TB) *psg.Graph {
	tb.Helper()
	prog, err := minilang.Parse("fuzz.mp", fuzzProgram)
	if err != nil {
		tb.Fatal(err)
	}
	g, err := psg.Build(prog, psg.DefaultOptions())
	if err != nil {
		tb.Fatal(err)
	}
	return g
}

// fuzzSeedSet builds a small but fully-populated profile set against the
// fuzz graph: per-vertex performance vectors, p2p and collective
// communication records with waits, and an indirect-call record.
func fuzzSeedSet(tb testing.TB, g *psg.Graph) *ProfileSet {
	tb.Helper()
	ps := &ProfileSet{App: "fuzz", NP: 2, Elapsed: 0.25}
	for rank := 0; rank < 2; rank++ {
		rp := NewRankProfile(g, rank, 2)
		var mpiVID, compVID psg.VID = psg.VIDNone, psg.VIDNone
		for _, v := range g.Vertices {
			switch {
			case v.Kind == psg.KindMPI && mpiVID == psg.VIDNone:
				mpiVID = v.VID
			case v.Kind == psg.KindComp && compVID == psg.VIDNone:
				compVID = v.VID
			}
		}
		if mpiVID == psg.VIDNone || compVID == psg.VIDNone {
			tb.Fatal("fuzz graph lacks MPI or Comp vertices")
		}
		rp.Vertex[compVID] = PerfData{Samples: 10 + int64(rank), Time: 0.125}
		rp.Vertex[compVID].PMU[machine.TotCyc] = 1e6
		key := CommKey{VID: mpiVID, Op: "mpi_sendrecv", DepRank: 1 - rank, DepVID: compVID, Tag: 1, Bytes: 64}
		rp.Comm[key] = &CommRecord{CommKey: key, Count: 4, TotalWait: 0.01, MaxWait: 0.004}
		ckey := CommKey{VID: mpiVID, Op: "mpi_allreduce", DepRank: 1 - rank, DepVID: compVID, Collective: true, Bytes: 8}
		rp.Comm[ckey] = &CommRecord{CommKey: ckey, Count: 1, TotalWait: 0.002, MaxWait: 0.002}
		rp.Indirect["main:1#foo"] = &IndirectRecord{InstancePath: "main", Site: 1, Target: "foo", Count: 2}
		ps.Profiles = append(ps.Profiles, rp)
	}
	return ps
}

func FuzzDecodeProfileSet(f *testing.F) {
	g := fuzzGraph(f)
	seed, err := fuzzSeedSet(f, g).Encode()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(seed)
	f.Add([]byte("{}"))
	f.Add([]byte("null"))
	f.Add([]byte(`{"app":"x","np":-3,"profiles":[null]}`))
	f.Add([]byte(`{"profiles":[{"rank":-1,"vertex":{"root":null}}]}`))

	f.Fuzz(func(t *testing.T, data []byte) {
		ps, err := DecodeProfileSet(data, g)
		if err != nil {
			return // rejected input is fine; panicking is not
		}
		enc, err := ps.Encode()
		if err != nil {
			t.Fatalf("decoded set does not re-encode: %v", err)
		}
		ps2, err := DecodeProfileSet(enc, g)
		if err != nil {
			t.Fatalf("re-encoded set does not decode: %v\n%s", err, enc)
		}
		enc2, err := ps2.Encode()
		if err != nil {
			t.Fatalf("second encode failed: %v", err)
		}
		if !bytes.Equal(enc, enc2) {
			t.Fatalf("round trip is not lossless:\n--- first ---\n%s\n--- second ---\n%s", enc, enc2)
		}
	})
}

// TestProfileSetRoundTripLossless pins the non-fuzz contract directly: a
// populated set encodes, decodes, and re-encodes to identical bytes.
func TestProfileSetRoundTripLossless(t *testing.T) {
	g := fuzzGraph(t)
	ps := fuzzSeedSet(t, g)
	enc, err := ps.Encode()
	if err != nil {
		t.Fatal(err)
	}
	dec, err := DecodeProfileSet(enc, g)
	if err != nil {
		t.Fatal(err)
	}
	if len(dec.Profiles) != 2 || dec.App != "fuzz" || dec.NP != 2 {
		t.Fatalf("decoded set lost data: %+v", dec)
	}
	enc2, err := dec.Encode()
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(enc, enc2) {
		t.Errorf("encode-decode-encode differs:\n%s\nvs\n%s", enc, enc2)
	}
}
