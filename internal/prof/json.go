package prof

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"
)

// ProfileSet is the serialized output of one scalana-prof run: all rank
// profiles for one app at one scale.
type ProfileSet struct {
	App      string         `json:"app"`
	NP       int            `json:"np"`
	Elapsed  float64        `json:"elapsed"`
	Profiles []*RankProfile `json:"profiles"`
}

// rankProfileDTO flattens the maps for stable serialization.
type rankProfileDTO struct {
	Rank     int                  `json:"rank"`
	NP       int                  `json:"np"`
	Vertex   map[string]*PerfData `json:"vertex"`
	Comm     []*CommRecord        `json:"comm"`
	Indirect []*IndirectRecord    `json:"indirect"`
}

// MarshalJSON serializes with deterministic ordering.
func (rp *RankProfile) MarshalJSON() ([]byte, error) {
	dto := rankProfileDTO{Rank: rp.Rank, NP: rp.NP, Vertex: rp.Vertex}
	for _, rec := range rp.Comm {
		dto.Comm = append(dto.Comm, rec)
	}
	sort.Slice(dto.Comm, func(i, j int) bool { return commLess(dto.Comm[i], dto.Comm[j]) })
	for _, rec := range rp.Indirect {
		dto.Indirect = append(dto.Indirect, rec)
	}
	sort.Slice(dto.Indirect, func(i, j int) bool {
		a, b := dto.Indirect[i], dto.Indirect[j]
		if a.InstancePath != b.InstancePath {
			return a.InstancePath < b.InstancePath
		}
		return a.Target < b.Target
	})
	return json.Marshal(dto)
}

// UnmarshalJSON restores the map form.
func (rp *RankProfile) UnmarshalJSON(data []byte) error {
	var dto rankProfileDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return err
	}
	rp.Rank = dto.Rank
	rp.NP = dto.NP
	rp.Vertex = dto.Vertex
	if rp.Vertex == nil {
		rp.Vertex = map[string]*PerfData{}
	}
	rp.Comm = map[CommKey]*CommRecord{}
	for _, rec := range dto.Comm {
		rp.Comm[rec.CommKey] = rec
	}
	rp.Indirect = map[string]*IndirectRecord{}
	for _, rec := range dto.Indirect {
		rp.Indirect[fmt.Sprintf("%s:%d#%s", rec.InstancePath, rec.Site, rec.Target)] = rec
	}
	return nil
}

func commLess(a, b *CommRecord) bool {
	if a.VertexKey != b.VertexKey {
		return a.VertexKey < b.VertexKey
	}
	if a.Op != b.Op {
		return a.Op < b.Op
	}
	if a.DepRank != b.DepRank {
		return a.DepRank < b.DepRank
	}
	if a.DepVertex != b.DepVertex {
		return a.DepVertex < b.DepVertex
	}
	return a.Bytes < b.Bytes
}

// Save writes the profile set to a JSON file.
func (ps *ProfileSet) Save(path string) error {
	data, err := json.MarshalIndent(ps, "", " ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// LoadProfileSet reads a profile set written by Save.
func LoadProfileSet(path string) (*ProfileSet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var ps ProfileSet
	if err := json.Unmarshal(data, &ps); err != nil {
		return nil, fmt.Errorf("prof: parse %s: %w", path, err)
	}
	return &ps, nil
}
