package prof

// JSON wire format. This is one of the two places where stable string
// vertex keys survive the VID interning refactor (the other is report
// rendering): profiles on disk must outlive the process whose symbol
// table assigned the VIDs, so every VID converts back to its interned
// key on the way out and re-interns on the way in. The byte format is
// unchanged from the pre-VID representation — profile directories
// written by older builds still load.

import (
	"encoding/json"
	"fmt"
	"os"
	"sort"

	"scalana/internal/psg"
)

// ProfileSet is the serialized output of one scalana-prof run: all rank
// profiles for one app at one scale.
type ProfileSet struct {
	App      string         `json:"app"`
	NP       int            `json:"np"`
	Elapsed  float64        `json:"elapsed"`
	Profiles []*RankProfile `json:"profiles"`
}

// rankProfileDTO flattens the dense VID-indexed storage back to the
// string-keyed maps of the wire format.
type rankProfileDTO struct {
	Rank     int                  `json:"rank"`
	NP       int                  `json:"np"`
	Vertex   map[string]*PerfData `json:"vertex"`
	Comm     []*commRecordDTO     `json:"comm"`
	Indirect []*IndirectRecord    `json:"indirect"`
}

// commRecordDTO is one communication record on the wire; field names and
// order reproduce the pre-VID CommRecord layout exactly.
type commRecordDTO struct {
	VertexKey  string
	Op         string
	DepRank    int
	DepVertex  string
	Tag        int
	Bytes      float64
	Collective bool
	Count      int64
	TotalWait  float64
	MaxWait    float64
}

// MarshalJSON serializes with deterministic ordering, converting interned
// VIDs back to stable string keys.
func (rp *RankProfile) MarshalJSON() ([]byte, error) {
	if rp.Graph == nil {
		return nil, fmt.Errorf("prof: rank %d profile has no symbol table (RankProfile.Graph is nil)", rp.Rank)
	}
	keys := rp.Graph.Keys()
	keyOf := func(vid psg.VID) (string, error) {
		if int(vid) >= len(keys) {
			return "", fmt.Errorf("prof: rank %d profile references VID %d outside the symbol table (%d entries)", rp.Rank, vid, len(keys))
		}
		return keys[vid], nil
	}

	dto := rankProfileDTO{Rank: rp.Rank, NP: rp.NP, Vertex: make(map[string]*PerfData, len(rp.Vertex))}
	for i := range rp.Vertex {
		if !rp.Vertex[i].Active() {
			continue
		}
		key, err := keyOf(psg.VID(i))
		if err != nil {
			return nil, err
		}
		dto.Vertex[key] = &rp.Vertex[i]
	}
	// Wire order must not derive from map iteration order (the maporder
	// invariant): collect the keys, validate them, sort them with a
	// comparator total over distinct CommKeys, and only then build the
	// record list. Sorting built records instead is how the PR 6 commLess
	// bug hid — its record comparator skipped Tag and Collective, so tied
	// records silently serialized in map order.
	ckeys := make([]CommKey, 0, len(rp.Comm))
	for ck := range rp.Comm {
		if _, err := keyOf(ck.VID); err != nil {
			return nil, err
		}
		if ck.DepVID != psg.VIDNone {
			if _, err := keyOf(ck.DepVID); err != nil {
				return nil, err
			}
		}
		ckeys = append(ckeys, ck)
	}
	sort.Slice(ckeys, func(i, j int) bool { return commKeyLess(keys, ckeys[i], ckeys[j]) })
	for _, ck := range ckeys {
		rec := rp.Comm[ck]
		dep := ""
		if ck.DepVID != psg.VIDNone {
			dep = keys[ck.DepVID]
		}
		dto.Comm = append(dto.Comm, &commRecordDTO{
			VertexKey: keys[ck.VID], Op: ck.Op, DepRank: ck.DepRank, DepVertex: dep,
			Tag: ck.Tag, Bytes: ck.Bytes, Collective: ck.Collective,
			Count: rec.Count, TotalWait: rec.TotalWait, MaxWait: rec.MaxWait,
		})
	}
	ikeys := make([]string, 0, len(rp.Indirect))
	for k := range rp.Indirect {
		ikeys = append(ikeys, k)
	}
	sort.Strings(ikeys)
	for _, k := range ikeys {
		dto.Indirect = append(dto.Indirect, rp.Indirect[k])
	}
	return json.Marshal(dto)
}

// fromDTO re-interns a wire profile against g's symbol table.
func (dto *rankProfileDTO) fromDTO(g *psg.Graph) (*RankProfile, error) {
	rp := NewRankProfile(g, dto.Rank, dto.NP)
	vidOf := func(key string) (psg.VID, error) {
		vid, ok := g.VIDOf(key)
		if !ok {
			return 0, fmt.Errorf("rank %d profile names vertex %q, which the compiled graph does not contain (profile/app mismatch?)", dto.Rank, key)
		}
		return vid, nil
	}
	vkeys := make([]string, 0, len(dto.Vertex))
	for key := range dto.Vertex {
		vkeys = append(vkeys, key)
	}
	sort.Strings(vkeys)
	for _, key := range vkeys {
		vid, err := vidOf(key)
		if err != nil {
			return nil, err
		}
		pd := dto.Vertex[key]
		if pd == nil {
			return nil, fmt.Errorf("rank %d profile has a null record for vertex %q", dto.Rank, key)
		}
		rp.Vertex[vid] = *pd
	}
	for _, rec := range dto.Comm {
		if rec == nil {
			return nil, fmt.Errorf("rank %d profile has a null communication record", dto.Rank)
		}
		vid, err := vidOf(rec.VertexKey)
		if err != nil {
			return nil, err
		}
		dep := psg.VIDNone
		if rec.DepVertex != "" {
			if dep, err = vidOf(rec.DepVertex); err != nil {
				return nil, err
			}
		}
		key := CommKey{
			VID: vid, Op: rec.Op, DepRank: rec.DepRank, DepVID: dep,
			Tag: rec.Tag, Bytes: rec.Bytes, Collective: rec.Collective,
		}
		rp.Comm[key] = &CommRecord{CommKey: key, Count: rec.Count, TotalWait: rec.TotalWait, MaxWait: rec.MaxWait}
	}
	for _, rec := range dto.Indirect {
		if rec == nil {
			return nil, fmt.Errorf("rank %d profile has a null indirect-call record", dto.Rank)
		}
		rp.Indirect[fmt.Sprintf("%s:%d#%s", rec.InstancePath, rec.Site, rec.Target)] = rec
	}
	return rp, nil
}

// commKeyLess orders communication records on the wire. It compares the
// same fields, in the same order and direction, as the old record-level
// commLess did — the on-disk byte sequence is unchanged — but it is
// total over distinct CommKeys by construction: every CommKey field
// participates, so no tie can fall through to map iteration order.
func commKeyLess(keys []string, a, b CommKey) bool {
	if ak, bk := keys[a.VID], keys[b.VID]; ak != bk {
		return ak < bk
	}
	if a.Op != b.Op {
		return a.Op < b.Op
	}
	if a.DepRank != b.DepRank {
		return a.DepRank < b.DepRank
	}
	var ad, bd string
	if a.DepVID != psg.VIDNone {
		ad = keys[a.DepVID]
	}
	if b.DepVID != psg.VIDNone {
		bd = keys[b.DepVID]
	}
	if ad != bd {
		return ad < bd
	}
	if a.Tag != b.Tag {
		return a.Tag < b.Tag
	}
	if a.Collective != b.Collective {
		return !a.Collective
	}
	return a.Bytes < b.Bytes
}

// Encode serializes the profile set to the JSON wire format — exactly
// the bytes Save writes.
func (ps *ProfileSet) Encode() ([]byte, error) {
	return json.MarshalIndent(ps, "", " ")
}

// EncodeProfileSet is the package-level spelling of Encode, the inverse
// of DecodeProfileSet. The pair is the service wire contract:
// scalana-serve accepts exactly these bytes as uploads and the
// content-addressed store preserves them byte-for-byte.
func EncodeProfileSet(ps *ProfileSet) ([]byte, error) {
	if ps == nil {
		return nil, fmt.Errorf("prof: EncodeProfileSet: nil profile set")
	}
	return ps.Encode()
}

// Save writes the profile set to a JSON file.
func (ps *ProfileSet) Save(path string) error {
	data, err := ps.Encode()
	if err != nil {
		return err
	}
	return os.WriteFile(path, data, 0o644)
}

// profileSetDTO is the wire form of a ProfileSet.
type profileSetDTO struct {
	App      string            `json:"app"`
	NP       int               `json:"np"`
	Elapsed  float64           `json:"elapsed"`
	Profiles []*rankProfileDTO `json:"profiles"`
}

// DecodeProfileSet parses wire-format bytes written by Encode (by this
// build or a pre-VID one — the wire format is unchanged) and re-interns
// them against the compiled graph's symbol table.
func DecodeProfileSet(data []byte, g *psg.Graph) (*ProfileSet, error) {
	var dto profileSetDTO
	if err := json.Unmarshal(data, &dto); err != nil {
		return nil, fmt.Errorf("parse profile set: %w", err)
	}
	ps := &ProfileSet{App: dto.App, NP: dto.NP, Elapsed: dto.Elapsed}
	for _, pdto := range dto.Profiles {
		if pdto == nil {
			return nil, fmt.Errorf("profile set has a null rank profile")
		}
		rp, err := pdto.fromDTO(g)
		if err != nil {
			return nil, err
		}
		ps.Profiles = append(ps.Profiles, rp)
	}
	return ps, nil
}

// LoadProfileSet reads a profile set file written by Save.
func LoadProfileSet(path string, g *psg.Graph) (*ProfileSet, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	ps, err := DecodeProfileSet(data, g)
	if err != nil {
		return nil, fmt.Errorf("prof: load %s: %w", path, err)
	}
	return ps, nil
}
