// Package prof implements ScalAna's runtime module (paper §III-B):
// sampling-based performance profiling plus PMPI-style communication
// dependence collection with random sampling-based instrumentation and
// graph-guided compression. Its output, one RankProfile per process, is
// what scalana-detect assembles into a Program Performance Graph.
package prof

import (
	"fmt"
	"math/rand"

	"scalana/internal/machine"
	"scalana/internal/minilang"
	"scalana/internal/mpisim"
	"scalana/internal/psg"
)

// Config controls the profiler.
type Config struct {
	// SampleHz is the timer sampling frequency (paper evaluation: 200 Hz,
	// matched to HPCToolkit for fairness).
	SampleHz float64
	// SampleCost is the virtual CPU cost of one sampling interrupt
	// (signal delivery + unwind + counter read).
	SampleCost float64
	// CommSampleProb is the probability that one communication operation's
	// parameters are recorded (random sampling-based instrumentation,
	// paper §III-B2). 1.0 records every operation.
	CommSampleProb float64
	// CommRecordCost is the virtual CPU cost of recording one
	// communication operation.
	CommRecordCost float64
	// Compress enables graph-guided communication compression: repeated
	// operations with identical parameters collapse into one record.
	// Disable only for the ablation benchmark.
	Compress bool
	// Seed seeds the per-rank instrumentation-sampling RNG.
	Seed int64
}

// DefaultConfig mirrors the paper's evaluation setup.
func DefaultConfig() Config {
	return Config{
		SampleHz:       200,
		SampleCost:     1.8e-6,
		CommSampleProb: 1.0,
		CommRecordCost: 0.25e-6,
		Compress:       true,
	}
}

// PerfData is the performance vector attached to one PSG vertex on one
// rank (paper Fig. 6 shows Time/TOT_INS/TOT_LST on a vertex).
type PerfData struct {
	// Samples counts timer interrupts attributed to the vertex.
	Samples int64
	// Time is the sampled execution time: Samples / SampleHz.
	Time float64
	// PMU holds the hardware counters accumulated while the vertex ran.
	PMU machine.Vec
}

// CommKey identifies one communication record after compression: the
// PSG vertex plus the operation parameters. Repeated communications with
// the same key collapse into a single record (paper §III-B2). Vertices
// are carried as interned VIDs; the JSON wire format converts them back
// to stable string keys (see json.go), so saved profiles stay portable.
type CommKey struct {
	// VID is the interned ID of the MPI vertex that issued the operation.
	VID psg.VID
	// Op is the MPI operation name (mpi_send, mpi_allreduce, ...).
	Op string
	// DepRank is the peer this operation depended on (-1 when none).
	DepRank int
	// DepVID is the interned ID of the peer's responsible vertex
	// (psg.VIDNone when the dependence has no responsible vertex).
	DepVID psg.VID
	// Tag is the message tag (p2p operations).
	Tag int
	// Bytes is the per-operation message size.
	Bytes float64
	// Collective marks collective operations.
	Collective bool
}

// CommRecord is one (possibly aggregated) communication dependence record.
type CommRecord struct {
	CommKey
	// Count is how many operations collapsed into this record.
	Count int64
	// TotalWait is the summed waiting time across those operations.
	TotalWait float64
	// MaxWait is the largest single waiting time observed.
	MaxWait float64
}

// IndirectRecord is one runtime-resolved indirect call (paper §III-B3).
type IndirectRecord struct {
	// InstancePath is the PSG instance path of the calling function.
	InstancePath string
	// Site is the AST node of the indirect call site.
	Site minilang.NodeID
	// Target is the function name the call resolved to.
	Target string
	// Count is how many times this (site, target) resolution fired.
	Count int64
}

// RankProfile is the profiler output for one rank.
type RankProfile struct {
	// Rank is the process this profile was collected on.
	Rank int
	// NP is the job size the profile belongs to.
	NP int
	// Graph is the PSG whose symbol table Vertex is indexed by. It is
	// required to serialize the profile (VIDs convert back to stable
	// string keys on the wire) and is never serialized itself.
	Graph *psg.Graph
	// Vertex is dense per-vertex performance data indexed by psg.VID; a
	// zero-valued entry means the vertex was never sampled on this rank.
	Vertex []PerfData
	// Comm holds the compressed communication dependence records.
	Comm map[CommKey]*CommRecord
	// Indirect holds runtime indirect-call resolutions.
	Indirect map[string]*IndirectRecord
	// Raw counts for storage accounting.
	EventsSeen    int64
	EventsSampled int64
	SamplesTaken  int64
}

// NewRankProfile returns an empty profile whose dense vertex storage is
// pre-sized to g's symbol table.
func NewRankProfile(g *psg.Graph, rank, np int) *RankProfile {
	return &RankProfile{
		Rank:     rank,
		NP:       np,
		Graph:    g,
		Vertex:   make([]PerfData, g.NumVIDs()),
		Comm:     map[CommKey]*CommRecord{},
		Indirect: map[string]*IndirectRecord{},
	}
}

// Active reports whether a dense vertex slot carries attributed data (the
// equivalent of key presence in the old map representation: a zero-valued
// slot means the vertex was never sampled).
func (pd *PerfData) Active() bool {
	return pd.Samples != 0 || pd.Time != 0 || pd.PMU != (machine.Vec{})
}

// PerfAt returns the performance data attributed to a vertex on this
// rank, or nil when the vertex was never sampled (VIDs past the profile's
// dense storage were materialized after collection and carry no data).
func (rp *RankProfile) PerfAt(vid psg.VID) *PerfData {
	if int(vid) >= len(rp.Vertex) {
		return nil
	}
	if pd := &rp.Vertex[vid]; pd.Active() {
		return pd
	}
	return nil
}

// NumVertexEntries counts the vertices with attributed data — the number
// of per-vertex records a binary profile writes, and the exact count the
// old map representation stored.
func (rp *RankProfile) NumVertexEntries() int {
	n := 0
	for i := range rp.Vertex {
		if rp.Vertex[i].Active() {
			n++
		}
	}
	return n
}

// StorageBytes returns the bytes this rank's profile occupies on disk,
// for the storage-cost experiments (Table I, Fig. 11, Fig. 13). Sizes per
// record reflect the binary layout scalana-prof writes: a vertex perf
// entry is key hash + samples + 5 counters; a comm record is parameters +
// counters; an indirect record is two hashes and a count.
func (rp *RankProfile) StorageBytes() int64 {
	const (
		vertexEntry   = 8 + 8 + 8*int64(machine.NumCounters)
		commEntry     = 8 + 4 + 4 + 8 + 4 + 8 + 8 + 8
		indirectEntry = 8 + 8 + 8
		header        = 64
	)
	return header +
		int64(rp.NumVertexEntries())*vertexEntry +
		int64(len(rp.Comm))*commEntry +
		int64(len(rp.Indirect))*indirectEntry
}

// Profiler is the per-rank tool hook. It implements mpisim.Hook.
type Profiler struct {
	cfg     Config
	graph   *psg.Graph
	profile *RankProfile

	period float64
	// lastBucket caches int64(to/period) from the previous Advance call.
	// Advances on a rank are contiguous (each from equals the prior to,
	// starting at virtual time zero), so the cached value equals
	// int64(from/period) exactly and saves one division per advance.
	lastBucket int64
	pendingPMU machine.Vec
	rng        *rand.Rand

	// requestConverter reproduces paper Fig. 5: request handle ->
	// (source, tag) captured at MPI_Irecv, consumed at MPI_Wait.
	requestConverter map[int]srcTag
}

type srcTag struct {
	src int
	tag int
}

// New creates the profiler hook for one rank.
func New(cfg Config, graph *psg.Graph, rank, np int) *Profiler {
	if cfg.SampleHz <= 0 {
		cfg.SampleHz = DefaultConfig().SampleHz
	}
	return &Profiler{
		cfg:              cfg,
		graph:            graph,
		profile:          NewRankProfile(graph, rank, np),
		period:           1 / cfg.SampleHz,
		requestConverter: map[int]srcTag{},
	}
}

// sampleRand lazily seeds the instrumentation-sampling RNG on first draw.
// The stream is identical to eager seeding in New, but the default
// CommSampleProb of 1 never draws, and math/rand source initialization is
// costly enough to matter across 1024 ranks.
func (pr *Profiler) sampleRand() float64 {
	if pr.rng == nil {
		pr.rng = rand.New(rand.NewSource(pr.cfg.Seed*31 + int64(pr.profile.Rank)*2654435761 + 17))
	}
	return pr.rng.Float64()
}

// Profile returns the collected rank profile.
func (pr *Profiler) Profile() *RankProfile { return pr.profile }

// perf returns the dense slot for a vertex. The pre-sizing in New makes
// the common case a bare bounds check plus index; the growth path only
// fires when ResolveIndirect's slow path materialized vertices after this
// profiler was created.
func (pr *Profiler) perf(vid psg.VID) *PerfData {
	if int(vid) >= len(pr.profile.Vertex) {
		grown := make([]PerfData, pr.graph.NumVIDs())
		copy(grown, pr.profile.Vertex)
		pr.profile.Vertex = grown
	}
	return &pr.profile.Vertex[vid]
}

func ctxVID(ctx any) psg.VID {
	if v, ok := ctx.(*psg.Vertex); ok && v != nil {
		return v.VID
	}
	return psg.VIDRoot
}

// Advance implements the timer sampler. PMU deltas accumulate in a pending
// vector; each period crossing "fires an interrupt" that attributes the
// pending counters and one sample period of time to the current vertex —
// the same attribution PAPI overflow sampling performs via the call stack.
//
//scalana:hot
func (pr *Profiler) Advance(p *mpisim.Proc, from, to float64, kind mpisim.AdvanceKind, ctx any, pmu machine.Vec) float64 {
	pr.pendingPMU.Add(pmu)
	bucket := int64(to / pr.period)
	crossings := bucket - pr.lastBucket
	pr.lastBucket = bucket
	if crossings <= 0 {
		return 0
	}
	pd := pr.perf(ctxVID(ctx))
	pd.Samples += crossings
	pd.Time += float64(crossings) * pr.period
	pd.PMU.Add(pr.pendingPMU)
	pr.pendingPMU = machine.Vec{}
	pr.profile.SamplesTaken += crossings
	if kind == mpisim.AdvPerturb {
		return 0
	}
	return float64(crossings) * pr.cfg.SampleCost
}

// MPIEvent implements the PMPI interposition layer.
//
//scalana:hot
func (pr *Profiler) MPIEvent(p *mpisim.Proc, ev *mpisim.Event) float64 {
	pr.profile.EventsSeen++

	// Fig. 5: capture (source, tag) at Irecv; resolve at Wait. When the
	// posted source was a wildcard, the completed event's Peer plays the
	// role of status.MPI_SOURCE.
	switch ev.Kind {
	case mpisim.EvIrecv:
		pr.requestConverter[ev.ReqID] = srcTag{src: ev.Peer, tag: ev.Tag}
		return 0 // dependence is recorded at completion time
	case mpisim.EvIsend:
		return 0
	case mpisim.EvWait:
		if st, ok := pr.requestConverter[ev.ReqID]; ok {
			delete(pr.requestConverter, ev.ReqID)
			if st.src == mpisim.AnySource {
				// Source was uncertain; use the completed status.
				st.src = ev.Peer
			}
		}
	}

	// Random sampling-based instrumentation (paper §III-B2): record the
	// parameters of this operation with probability CommSampleProb.
	if pr.cfg.CommSampleProb < 1 && pr.sampleRand() >= pr.cfg.CommSampleProb {
		return 0
	}
	pr.profile.EventsSampled++

	key := CommKey{
		VID:        ctxVID(ev.Ctx),
		Op:         ev.Op,
		DepRank:    ev.DepRank,
		DepVID:     ctxVID(ev.DepCtx),
		Tag:        ev.Tag,
		Bytes:      ev.Bytes,
		Collective: ev.Collective,
	}
	if ev.DepCtx == nil {
		key.DepVID = psg.VIDNone
	}
	if !pr.cfg.Compress {
		// Without graph-guided compression every record is unique.
		key.Tag = int(pr.profile.EventsSampled)<<8 | key.Tag
	}
	rec := pr.profile.Comm[key]
	if rec == nil {
		rec = &CommRecord{CommKey: key}
		pr.profile.Comm[key] = rec
	}
	rec.Count++
	rec.TotalWait += ev.Wait
	if ev.Wait > rec.MaxWait {
		rec.MaxWait = ev.Wait
	}
	return pr.cfg.CommRecordCost
}

// ObserveIndirect records a runtime indirect-call resolution; wire it to
// interp.Runner.OnIndirect.
func (pr *Profiler) ObserveIndirect(rank int, inst *psg.Instance, site minilang.NodeID, target string) {
	key := fmt.Sprintf("%s:%d#%s", inst.Path, site, target)
	rec := pr.profile.Indirect[key]
	if rec == nil {
		rec = &IndirectRecord{InstancePath: inst.Path, Site: site, Target: target}
		pr.profile.Indirect[key] = rec
	}
	rec.Count++
}

var _ mpisim.Hook = (*Profiler)(nil)
