package prof

import (
	"fmt"
	"strings"
	"testing"

	"scalana/internal/machine"
	"scalana/internal/minilang"
	"scalana/internal/mpisim"
	"scalana/internal/psg"
)

// benchGraph builds a PSG with nMPI distinct MPI vertices interleaved with
// compute, the shape a real profiled run attributes events against.
func benchGraph(nMPI int) *psg.Graph {
	var sb strings.Builder
	sb.WriteString("func main() {\n")
	for i := 0; i < nMPI; i++ {
		fmt.Fprintf(&sb, "\tcompute(1e6, 1e4, 1e4, 4096);\n")
		fmt.Fprintf(&sb, "\tmpi_allreduce(%d);\n", 8*(i+1))
	}
	sb.WriteString("}\n")
	return psg.MustBuild(minilang.MustParse("bench.mp", sb.String()))
}

// mpiVertices returns the graph's MPI vertices in preorder.
func mpiVertices(g *psg.Graph) []*psg.Vertex {
	var out []*psg.Vertex
	for _, v := range g.Vertices {
		if v.Kind == psg.KindMPI {
			out = append(out, v)
		}
	}
	return out
}

// BenchmarkProfilerEvents is the sampler + PMPI hot path end to end: one
// op is a fresh per-rank profiler handling rounds of timer advances (each
// crossing a sample period) and MPI events across 16 distinct vertices —
// the first-touch storage cost plus the steady-state attribution cost.
// Allocation counts are deterministic and recorded in DESIGN.md §5.
func BenchmarkProfilerEvents(b *testing.B) {
	g := benchGraph(16)
	vs := mpiVertices(g)
	w := mpisim.NewWorld(mpisim.Config{NP: 1})
	p := w.Proc(0)
	evs := make([]mpisim.Event, len(vs))
	for i, v := range vs {
		evs[i] = mpisim.Event{
			Kind: mpisim.EvRecv, Op: "mpi_recv", Rank: 0, Peer: 1, Tag: i,
			Bytes: 1024, Wait: 1e-4, DepRank: 1, DepCtx: v, Ctx: v,
		}
	}
	const rounds = 8
	period := 1 / DefaultConfig().SampleHz
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pr := New(DefaultConfig(), g, 0, 4)
		for j := 0; j < rounds*len(vs); j++ {
			v := vs[j%len(vs)]
			t0 := float64(j) * period
			pr.Advance(p, t0, t0+period, mpisim.AdvCompute, v, machine.Vec{100, 50, 10, 1, 5})
			pr.MPIEvent(p, &evs[j%len(evs)])
		}
	}
}

// BenchmarkProfilerEventSteady is the steady-state per-event cost with all
// storage already touched: pure attribution, no first-touch allocation.
func BenchmarkProfilerEventSteady(b *testing.B) {
	g := benchGraph(16)
	vs := mpiVertices(g)
	w := mpisim.NewWorld(mpisim.Config{NP: 1})
	p := w.Proc(0)
	pr := New(DefaultConfig(), g, 0, 4)
	evs := make([]mpisim.Event, len(vs))
	for i, v := range vs {
		evs[i] = mpisim.Event{
			Kind: mpisim.EvRecv, Op: "mpi_recv", Rank: 0, Peer: 1, Tag: i,
			Bytes: 1024, Wait: 1e-4, DepRank: 1, DepCtx: v, Ctx: v,
		}
	}
	period := 1 / pr.cfg.SampleHz
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		v := vs[i%len(vs)]
		t0 := float64(i) * period
		pr.Advance(p, t0, t0+period, mpisim.AdvCompute, v, machine.Vec{100, 50, 10, 1, 5})
		pr.MPIEvent(p, &evs[i%len(evs)])
	}
}

// BenchmarkProfilerSampleOnly isolates the timer-sampling path (Advance
// with a period crossing, no MPI work).
func BenchmarkProfilerSampleOnly(b *testing.B) {
	g := benchGraph(4)
	vs := mpiVertices(g)
	w := mpisim.NewWorld(mpisim.Config{NP: 1})
	p := w.Proc(0)
	pr := New(DefaultConfig(), g, 0, 4)
	period := 1 / pr.cfg.SampleHz
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t0 := float64(i) * period
		pr.Advance(p, t0, t0+period, mpisim.AdvCompute, vs[i%len(vs)], machine.Vec{100, 50, 10, 1, 5})
	}
}

// TestSamplerHotPathAllocFree asserts the steady-state per-event cost of
// the interned hot path: once a vertex's dense slot and comm record
// exist, attributing further samples and events allocates nothing.
// Allocation counts are deterministic, so this asserts cleanly even on a
// single-CPU runner where timing comparisons cannot.
func TestSamplerHotPathAllocFree(t *testing.T) {
	g := benchGraph(4)
	vs := mpiVertices(g)
	w := mpisim.NewWorld(mpisim.Config{NP: 1})
	p := w.Proc(0)
	pr := New(DefaultConfig(), g, 0, 4)
	evs := make([]mpisim.Event, len(vs))
	for i, v := range vs {
		evs[i] = mpisim.Event{
			Kind: mpisim.EvRecv, Op: "mpi_recv", Rank: 0, Peer: 1, Tag: i,
			Bytes: 1024, Wait: 1e-4, DepRank: 1, DepCtx: v, Ctx: v,
		}
	}
	period := 1 / pr.cfg.SampleHz
	// Warm every slot and record once.
	for i := range vs {
		t0 := float64(i) * period
		pr.Advance(p, t0, t0+period, mpisim.AdvCompute, vs[i], machine.Vec{1, 1, 1, 1, 1})
		pr.MPIEvent(p, &evs[i])
	}
	iter := len(vs)
	allocs := testing.AllocsPerRun(200, func() {
		i := iter % len(vs)
		t0 := float64(iter) * period
		pr.Advance(p, t0, t0+period, mpisim.AdvCompute, vs[i], machine.Vec{1, 1, 1, 1, 1})
		pr.MPIEvent(p, &evs[i])
		iter++
	})
	if allocs != 0 {
		t.Errorf("steady-state sample+event path allocates %.1f objects/op, want 0", allocs)
	}
}
