module scalana

go 1.22
