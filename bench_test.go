// Benchmarks regenerating every table and figure of the paper's evaluation
// (one benchmark per experiment; headline numbers are attached as custom
// metrics), plus ablation benchmarks for the design choices called out in
// DESIGN.md §5. Run with:
//
//	go test -bench=. -benchmem
package scalana_test

import (
	"testing"

	"scalana/internal/detect"
	"scalana/internal/exp"
	"scalana/internal/fit"
	"scalana/internal/prof"
	"scalana/internal/psg"

	scalana "scalana"
)

func fitStrategy(i int) fit.MergeStrategy { return fit.MergeStrategy(i) }

// benchExp runs one registered experiment per iteration and republishes
// its headline values as benchmark metrics.
func benchExp(b *testing.B, id string) {
	e := exp.Get(id)
	if e == nil {
		b.Fatalf("unknown experiment %q", id)
	}
	var last *exp.Result
	for i := 0; i < b.N; i++ {
		res, err := e.Run()
		if err != nil {
			b.Fatal(err)
		}
		last = res
	}
	for name, v := range last.Values {
		b.ReportMetric(v, name)
	}
}

func BenchmarkTable1ToolComparison(b *testing.B)    { benchExp(b, "table1") }
func BenchmarkFig2InjectedDelay(b *testing.B)       { benchExp(b, "fig2") }
func BenchmarkFig4PSGStages(b *testing.B)           { benchExp(b, "fig4") }
func BenchmarkFig6PPG(b *testing.B)                 { benchExp(b, "fig6") }
func BenchmarkFig7ProblematicVertices(b *testing.B) { benchExp(b, "fig7") }
func BenchmarkFig8Backtracking(b *testing.B)        { benchExp(b, "fig8") }
func BenchmarkTable2PSGSizes(b *testing.B)          { benchExp(b, "table2") }
func BenchmarkTable3StaticOverhead(b *testing.B)    { benchExp(b, "table3") }
func BenchmarkFig10RuntimeOverhead(b *testing.B)    { benchExp(b, "fig10") }
func BenchmarkFig11StorageCost(b *testing.B)        { benchExp(b, "fig11") }
func BenchmarkTable4DetectionCost(b *testing.B)     { benchExp(b, "table4") }
func BenchmarkFig12ZeusMP(b *testing.B)             { benchExp(b, "fig12") }
func BenchmarkFig13ZeusMPTools(b *testing.B)        { benchExp(b, "fig13") }
func BenchmarkFig14SST(b *testing.B)                { benchExp(b, "fig14") }
func BenchmarkFig15SSTPMU(b *testing.B)             { benchExp(b, "fig15") }
func BenchmarkFig16NekbonePMU(b *testing.B)         { benchExp(b, "fig16") }

// ---- ablations (DESIGN.md §5) ----

// BenchmarkAblationContraction compares PSG size and build cost with
// contraction enabled vs disabled.
func BenchmarkAblationContraction(b *testing.B) {
	app := scalana.GetApp("zeusmp")
	prog, err := app.Parse()
	if err != nil {
		b.Fatal(err)
	}
	for _, on := range []bool{true, false} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var g *psg.Graph
			for i := 0; i < b.N; i++ {
				g, err = psg.Build(prog, psg.Options{MaxLoopDepth: 10, Contract: on})
				if err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(g.Stats.VerticesAfter), "vertices")
		})
	}
}

// BenchmarkAblationCompression compares profile storage with graph-guided
// communication compression on vs off (paper §III-B2).
func BenchmarkAblationCompression(b *testing.B) {
	// One engine across variants: compile once, time execution only.
	e := scalana.NewEngine()
	for _, on := range []bool{true, false} {
		name := "off"
		if on {
			name = "on"
		}
		b.Run(name, func(b *testing.B) {
			var storage int64
			for i := 0; i < b.N; i++ {
				cfg := prof.DefaultConfig()
				cfg.Compress = on
				out, err := e.Run(scalana.RunConfig{
					App: scalana.GetApp("cg"), NP: 32, Tool: scalana.ToolScalAna, Prof: cfg})
				if err != nil {
					b.Fatal(err)
				}
				storage = out.StorageBytes()
			}
			b.ReportMetric(float64(storage), "storage_bytes")
		})
	}
}

// BenchmarkAblationMerge compares the cross-rank merge strategies for
// non-scalable vertex detection (paper §IV-A discusses all four).
func BenchmarkAblationMerge(b *testing.B) {
	cfg := prof.DefaultConfig()
	cfg.SampleHz = 2000
	runs, err := scalana.Sweep(scalana.GetApp("zeusmp"), []int{8, 16, 32}, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, strat := range []struct {
		name string
		m    int
	}{{"median", 0}, {"mean", 1}, {"max", 2}, {"single", 3}, {"cluster", 4}} {
		b.Run(strat.name, func(b *testing.B) {
			var found float64
			for i := 0; i < b.N; i++ {
				dcfg := detect.DefaultConfig()
				dcfg.Merge = fitStrategy(strat.m)
				rep, err := scalana.DetectScalingLoss(runs, dcfg)
				if err != nil {
					b.Fatal(err)
				}
				found = float64(len(rep.NonScalable))
			}
			b.ReportMetric(found, "nonscalable_found")
		})
	}
}

// BenchmarkAblationSampling sweeps the sampling frequency and reports the
// measured runtime overhead (the precision/overhead trade-off of §V).
func BenchmarkAblationSampling(b *testing.B) {
	app := scalana.GetApp("cg")
	// One engine across frequencies: compile once, time execution only.
	e := scalana.NewEngine()
	base, err := e.Run(scalana.RunConfig{App: app, NP: 32})
	if err != nil {
		b.Fatal(err)
	}
	for _, hz := range []float64{100, 200, 1000, 5000} {
		b.Run(hzName(hz), func(b *testing.B) {
			var ovh float64
			for i := 0; i < b.N; i++ {
				cfg := prof.DefaultConfig()
				cfg.SampleHz = hz
				out, err := e.Run(scalana.RunConfig{
					App: app, NP: 32, Tool: scalana.ToolScalAna, Prof: cfg})
				if err != nil {
					b.Fatal(err)
				}
				ovh = 100 * (out.Result.Elapsed - base.Result.Elapsed) / base.Result.Elapsed
			}
			b.ReportMetric(ovh, "overhead_pct")
		})
	}
}

// BenchmarkAblationPruning compares backtracking with and without
// wait-state pruning of communication dependence edges (paper §IV-B).
func BenchmarkAblationPruning(b *testing.B) {
	cfg := prof.DefaultConfig()
	cfg.SampleHz = 2000
	runs, err := scalana.Sweep(scalana.GetApp("zeusmp"), []int{8, 16, 32}, cfg)
	if err != nil {
		b.Fatal(err)
	}
	for _, prune := range []bool{true, false} {
		name := "pruned"
		if !prune {
			name = "unpruned"
		}
		b.Run(name, func(b *testing.B) {
			var steps float64
			for i := 0; i < b.N; i++ {
				dcfg := detect.DefaultConfig()
				dcfg.PruneWaitless = prune
				rep, err := scalana.DetectScalingLoss(runs, dcfg)
				if err != nil {
					b.Fatal(err)
				}
				steps = 0
				for _, p := range rep.Paths {
					steps += float64(len(p.Steps))
				}
			}
			b.ReportMetric(steps, "path_steps")
		})
	}
}

// BenchmarkScale2048 exercises the largest-scale claim: Zeus-MP profiled
// by ScalAna at 2,048 simulated ranks (paper §VI-C reports 1.73% average
// overhead at this scale on Tianhe-2).
func BenchmarkScale2048(b *testing.B) {
	app := scalana.GetApp("zeusmp")
	// One engine for both runs of every iteration: compile once, time
	// execution only.
	e := scalana.NewEngine()
	for i := 0; i < b.N; i++ {
		base, err := e.Run(scalana.RunConfig{App: app, NP: 2048})
		if err != nil {
			b.Fatal(err)
		}
		out, err := e.Run(scalana.RunConfig{App: app, NP: 2048, Tool: scalana.ToolScalAna})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*(out.Result.Elapsed-base.Result.Elapsed)/base.Result.Elapsed, "overhead_pct")
		b.ReportMetric(float64(out.StorageBytes()), "storage_bytes")
	}
}

func hzName(hz float64) string {
	switch hz {
	case 100:
		return "100Hz"
	case 200:
		return "200Hz"
	case 1000:
		return "1000Hz"
	default:
		return "5000Hz"
	}
}
