// Command scalana-static is step 1 of the ScalAna workflow (paper §V):
// it compiles a MiniMP program and emits its Program Structure Graph.
//
// Usage:
//
//	scalana-static -app cg                # a bundled workload
//	scalana-static -file prog.mp          # any MiniMP source file
//	scalana-static -app cg -json psg.json # also write the serialized PSG
//	scalana-static -app cg -maxloopdepth 1 -contract=false
//	scalana-static -app cg -lint          # np-scaled collective lint only
//
// -lint runs the static scalability check instead of emitting the PSG:
// any MPI collective whose enclosing loop trip count grows with np is
// reported, and the exit status is 2 when findings exist.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"scalana/internal/apps"
	"scalana/internal/ir"
	"scalana/internal/minilang"
	"scalana/internal/psg"
)

func main() {
	appName := flag.String("app", "", "bundled workload name (see -list)")
	file := flag.String("file", "", "MiniMP source file to analyze")
	jsonOut := flag.String("json", "", "write the serialized PSG to this file")
	maxDepth := flag.Int("maxloopdepth", 10, "MaxLoopDepth contraction parameter")
	contract := flag.Bool("contract", true, "enable graph contraction")
	lint := flag.Bool("lint", false, "report collectives inside np-dependent loops and exit")
	list := flag.Bool("list", false, "list bundled workloads")
	flag.Parse()

	if *list {
		for _, n := range apps.Names() {
			fmt.Printf("%-26s %s\n", n, apps.Get(n).Description)
		}
		return
	}

	var prog *minilang.Program
	var err error
	switch {
	case *appName != "":
		app := apps.Get(*appName)
		if app == nil {
			fatalf("unknown app %q (try -list)", *appName)
		}
		prog, err = app.Parse()
	case *file != "":
		data, rerr := os.ReadFile(*file)
		if rerr != nil {
			fatalf("%v", rerr)
		}
		prog, err = minilang.Parse(*file, string(data))
	default:
		fatalf("one of -app or -file is required")
	}
	if err != nil {
		fatalf("compile: %v", err)
	}

	if *lint {
		findings := ir.LintScaledCollectives(prog)
		if len(findings) == 0 {
			fmt.Printf("%s: no collectives inside np-dependent loops\n", prog.File)
			return
		}
		for _, f := range findings {
			fmt.Printf("%s: %s\n", prog.File, f)
		}
		os.Exit(2)
	}

	g, err := psg.Build(prog, psg.Options{MaxLoopDepth: *maxDepth, Contract: *contract})
	if err != nil {
		fatalf("PSG: %v", err)
	}
	st := g.Stats
	fmt.Printf("Program Structure Graph for %s\n", prog.File)
	fmt.Printf("vertices: %d before contraction, %d after (%d Loop, %d Branch, %d Comp, %d MPI, %d Call)\n\n",
		st.VerticesBefore, st.VerticesAfter, st.Loops, st.Branches, st.Comps, st.MPIs, st.Calls)
	fmt.Print(g.Render())

	if *jsonOut != "" {
		data, err := json.MarshalIndent(g.ToDTO(), "", " ")
		if err != nil {
			fatalf("serialize: %v", err)
		}
		if err := os.WriteFile(*jsonOut, data, 0o644); err != nil {
			fatalf("write: %v", err)
		}
		fmt.Printf("\nPSG written to %s\n", *jsonOut)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scalana-static: "+format+"\n", args...)
	os.Exit(1)
}
