// Command scalana-prof is step 2 of the ScalAna workflow (paper §V): it
// runs an instrumented application at one scale and collects per-rank
// profiles (sampled performance vectors plus compressed communication
// dependence).
//
// Usage:
//
//	scalana-prof -app cg -np 64 -o cg.64.json
//	scalana-prof -app zeusmp -np 128 -hz 1000 -o zeusmp.128.json
package main

import (
	"flag"
	"fmt"
	"os"

	"scalana/internal/prof"
	"scalana/internal/report"

	scalana "scalana"
)

func main() {
	appName := flag.String("app", "", "workload name (scalana-static -list shows all)")
	np := flag.Int("np", 16, "number of simulated MPI ranks")
	hz := flag.Float64("hz", 200, "sampling frequency (the paper uses 200 Hz)")
	commProb := flag.Float64("comm-prob", 1.0, "communication instrumentation sampling probability")
	compress := flag.Bool("compress", true, "graph-guided communication compression")
	out := flag.String("o", "", "write the profile set to this JSON file")
	seed := flag.Int64("seed", 0, "simulation seed")
	flag.Parse()

	app := scalana.GetApp(*appName)
	if app == nil {
		fatalf("unknown app %q", *appName)
	}
	cfg := prof.DefaultConfig()
	cfg.SampleHz = *hz
	cfg.CommSampleProb = *commProb
	cfg.Compress = *compress
	cfg.Seed = *seed

	res, err := scalana.Run(scalana.RunConfig{
		App: app, NP: *np, Tool: scalana.ToolScalAna, Prof: cfg, Seed: *seed,
	})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("ran %s with %d ranks: %.4fs virtual time\n", app.Name, *np, res.Result.Elapsed)
	fmt.Printf("profile storage: %s across %d ranks (%s per rank)\n",
		report.Bytes(res.StorageBytes), *np, report.Bytes(res.StorageBytes/int64(*np)))
	fmt.Printf("dependence edges: %d\n", res.PPG.NumEdges())

	if *out != "" {
		ps := &prof.ProfileSet{App: app.Name, NP: *np, Elapsed: res.Result.Elapsed, Profiles: res.Profiles}
		if err := ps.Save(*out); err != nil {
			fatalf("save: %v", err)
		}
		fmt.Printf("profiles written to %s\n", *out)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scalana-prof: "+format+"\n", args...)
	os.Exit(1)
}
