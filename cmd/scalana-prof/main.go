// Command scalana-prof is step 2 of the ScalAna workflow (paper §V): it
// runs an instrumented application at one scale and collects per-rank
// measurement data with the selected tool. The default tool is the
// ScalAna graph-based profiler (sampled performance vectors plus
// compressed communication dependence); any tool registered with
// scalana.RegisterTool — including the tracing and call-path baselines
// and the comm-matrix collector — can be attached via -tool.
//
// Usage:
//
//	scalana-prof -app cg -np 64 -o cg.64.json
//	scalana-prof -app zeusmp -np 128 -hz 1000 -o zeusmp.128.json
//	scalana-prof -app cg -np 32 -tool commmatrix
//	scalana-prof -list-tools
package main

import (
	"flag"
	"fmt"
	"os"

	"scalana/internal/commmatrix"
	"scalana/internal/prof"
	"scalana/internal/report"

	scalana "scalana"
)

func main() {
	appName := flag.String("app", "", "workload name (scalana-static -list shows all)")
	np := flag.Int("np", 16, "number of simulated MPI ranks")
	tool := flag.String("tool", "scalana", "registered measurement tool (see -list-tools)")
	listTools := flag.Bool("list-tools", false, "list registered measurement tools and exit")
	hz := flag.Float64("hz", 200, "sampling frequency (the paper uses 200 Hz)")
	commProb := flag.Float64("comm-prob", 1.0, "communication instrumentation sampling probability")
	compress := flag.Bool("compress", true, "graph-guided communication compression")
	out := flag.String("o", "", "write the profile set to this JSON file (scalana tool only)")
	seed := flag.Int64("seed", 0, "simulation seed")
	useInterp := flag.Bool("interp", false, "execute on the tree-walking interpreter instead of the bytecode VM")
	flag.Parse()

	if *listTools {
		for _, name := range scalana.Tools() {
			t, _ := scalana.LookupTool(name)
			fmt.Printf("%-12s %s\n", name, t.Description())
		}
		return
	}

	app := scalana.GetApp(*appName)
	if app == nil {
		fatalf("unknown app %q", *appName)
	}
	if _, ok := scalana.LookupTool(*tool); !ok {
		fatalf("unknown tool %q (registered: %v)", *tool, scalana.Tools())
	}
	cfg := prof.DefaultConfig()
	cfg.SampleHz = *hz
	cfg.CommSampleProb = *commProb
	cfg.Compress = *compress
	cfg.Seed = *seed

	res, err := scalana.Run(scalana.RunConfig{
		App: app, NP: *np, ToolName: *tool, Prof: cfg, Seed: *seed, Interp: *useInterp,
	})
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("ran %s with %d ranks: %.4fs virtual time\n", app.Name, *np, res.Result.Elapsed)
	fmt.Printf("%s storage: %s across %d ranks (%s per rank)\n", *tool,
		report.Bytes(res.StorageBytes()), *np, report.Bytes(res.StorageBytes()/int64(*np)))
	if pg := res.PPG(); pg != nil {
		fmt.Printf("dependence edges: %d\n", pg.NumEdges())
	}
	if m, ok := res.Measurement.Data().(*commmatrix.Matrix); ok {
		fmt.Printf("p2p traffic: %s total\n", report.Bytes(int64(m.TotalBytes())))
		for _, f := range m.TopFlows(5) {
			fmt.Printf("  rank %3d <-> %3d  %8s in %d msgs\n", f.Src, f.Dst, report.Bytes(int64(f.Bytes)), f.Msgs)
		}
	}

	if *out != "" {
		profiles := res.Profiles()
		if profiles == nil {
			fatalf("-o needs the scalana tool's profiles; tool %q produces none", *tool)
		}
		ps := &prof.ProfileSet{App: app.Name, NP: *np, Elapsed: res.Result.Elapsed, Profiles: profiles}
		if err := ps.Save(*out); err != nil {
			fatalf("save: %v", err)
		}
		fmt.Printf("profiles written to %s\n", *out)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scalana-prof: "+format+"\n", args...)
	os.Exit(1)
}
