// Command scalana-detect is step 3 of the ScalAna workflow (paper §V): it
// profiles an application across job scales, assembles Program Performance
// Graphs, detects problematic vertices, and runs backtracking root cause
// detection.
//
// Usage:
//
//	scalana-detect -app zeusmp -scales 8,16,32,64
//	scalana-detect -app zeusmp -scales 8,16,32,64 -parallel 4
//	scalana-detect -app cg -scales 4,8,16 -abnorm-thd 1.5 -profiles dir/
//	scalana-detect -app zeusmp -scales 8,16,32 -expect-cause bval3d
//	scalana-detect -app cg -scales 4,8,16 -json report.json
//	scalana-detect -app cg -scales 4,8 -store /var/lib/scalana
//	scalana-detect -app cg -store /var/lib/scalana -watch
//
// With -expect-cause, the command exits non-zero unless some reported
// root cause matches the substring (vertex key, name, or file:line) —
// and, in particular, whenever the report contains no causes at all —
// so CI gates and scripts can assert detection results directly.
//
// The app is compiled once for the whole sweep and the scales execute
// concurrently on -parallel workers (0 = one per CPU, 1 = one scale at
// a time; each scale's own rank simulation and finalization still use
// goroutines). The report is identical regardless of parallelism.
//
// With -profiles, previously saved scalana-prof outputs named
// <app>.<np>.json are loaded from the directory instead of re-running.
// With -store, profile sets come from a scalana-serve content-addressed
// store instead; each requested scale must resolve to exactly one
// stored set.
//
// With -watch (requires -store), the command switches to streaming
// regression mode: the newest stored run at -np (default: the largest
// stored scale) is scored against the rolling per-vertex baseline built
// from every earlier run, exactly as scalana-serve's GET /v1/watch —
// with -json '-', the bytes are identical to the served response.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"scalana/internal/baseline"
	"scalana/internal/detect"
	"scalana/internal/fit"
	"scalana/internal/ppg"
	"scalana/internal/prof"
	"scalana/internal/scales"
	"scalana/internal/store"

	scalana "scalana"
)

func main() {
	appName := flag.String("app", "", "workload name")
	scaleList := flag.String("scales", "4,8,16,32", "comma-separated rank counts")
	hz := flag.Float64("hz", 1000, "sampling frequency for profiling runs")
	abnormThd := flag.Float64("abnorm-thd", 1.3, "AbnormThd detection parameter")
	topK := flag.Int("topk", 10, "maximum non-scalable vertices reported")
	profilesDir := flag.String("profiles", "", "directory of saved scalana-prof outputs")
	storeDir := flag.String("store", "", "scalana-serve profile store to load sets from")
	parallel := flag.Int("parallel", 0, "scales profiled concurrently (0 = one per CPU, 1 = one scale at a time)")
	expectCause := flag.String("expect-cause", "", "exit non-zero unless a reported root cause matches this substring")
	commCauses := flag.Bool("comm-causes", false, "admit non-scalable collectives as root-cause candidates (detect.Config.CommCauses)")
	jsonOut := flag.String("json", "", "also write the report as JSON to this file ('-' for stdout)")
	useInterp := flag.Bool("interp", false, "execute on the tree-walking interpreter instead of the bytecode VM")
	watch := flag.Bool("watch", false, "streaming regression mode: score the newest stored run against the rolling baseline (requires -store)")
	watchNP := flag.Int("np", 0, "scale to watch (0 = largest stored scale; -watch only)")
	watchZ := flag.Float64("z", 3, "z-score flagging threshold (-watch only)")
	watchCUSUM := flag.Float64("cusum", 5, "CUSUM flagging threshold (-watch only)")
	watchK := flag.Float64("cusum-k", 0.5, "CUSUM slack per run (-watch only)")
	watchMinRuns := flag.Int("min-runs", 2, "minimum baseline runs before a vertex is scored (-watch only)")
	watchMinShare := flag.Float64("min-share", 0.01, "minimum share of total time for flagging (-watch only)")
	watchMerge := flag.String("merge", "median", "cross-rank merge strategy for baselines (-watch only)")
	flag.Parse()

	app := scalana.GetApp(*appName)
	if app == nil {
		fatalf("unknown app %q", *appName)
	}
	if *watch {
		p := baseline.Params{
			ZThd: *watchZ, CUSUMThd: *watchCUSUM, CUSUMK: *watchK,
			MinRuns: *watchMinRuns, MinShare: *watchMinShare,
		}
		runWatch(app, *storeDir, *watchNP, p, *watchMerge, *jsonOut)
		return
	}
	all, err := scales.Parse(*scaleList)
	if err != nil {
		fatalf("-scales: %v", err)
	}
	nps, dropped := scales.SplitMin(all, app.MinNP)
	if len(dropped) > 0 {
		fmt.Fprintf(os.Stderr, "scalana-detect: dropping scales %v: %s requires at least %d ranks\n",
			dropped, app.Name, app.MinNP)
	}
	if len(nps) == 0 {
		fatalf("no usable scales: all of %v are below the %d-rank minimum of %s", dropped, app.MinNP, app.Name)
	}
	if *profilesDir != "" && *storeDir != "" {
		fatalf("-profiles and -store are mutually exclusive")
	}

	var runs []detect.ScaleRun
	switch {
	case *storeDir != "":
		st, err := store.Open(*storeDir)
		if err != nil {
			fatalf("%v", err)
		}
		_, graph, err := scalana.Compile(app)
		if err != nil {
			fatalf("%v", err)
		}
		for _, np := range nps {
			entry, err := st.Only(app.Name, np)
			if err != nil {
				fatalf("%v", err)
			}
			data, err := st.Get(entry.Key)
			if err != nil {
				fatalf("%v", err)
			}
			ps, err := prof.DecodeProfileSet(data, graph)
			if err != nil {
				fatalf("decode %s: %v", entry.Key, err)
			}
			pg, err := ppg.Build(graph, ps.Profiles)
			if err != nil {
				fatalf("assemble PPG from %s: %v", entry.Key, err)
			}
			runs = append(runs, detect.ScaleRun{NP: np, PPG: pg})
		}
	case *profilesDir != "":
		_, graph, err := scalana.Compile(app)
		if err != nil {
			fatalf("%v", err)
		}
		for _, np := range nps {
			path := filepath.Join(*profilesDir, fmt.Sprintf("%s.%d.json", app.Name, np))
			ps, err := prof.LoadProfileSet(path, graph)
			if err != nil {
				fatalf("load %s: %v", path, err)
			}
			pg, err := ppg.Build(graph, ps.Profiles)
			if err != nil {
				fatalf("assemble PPG from %s: %v", path, err)
			}
			runs = append(runs, detect.ScaleRun{NP: np, PPG: pg})
		}
	default:
		cfg := prof.DefaultConfig()
		cfg.SampleHz = *hz
		var err error
		runs, err = scalana.SweepWithConfig(app, nps, scalana.SweepConfig{
			Parallelism: *parallel,
			Prof:        cfg,
			Interp:      *useInterp,
		})
		if err != nil {
			fatalf("%v", err)
		}
	}

	dcfg := detect.DefaultConfig()
	dcfg.AbnormThd = *abnormThd
	dcfg.TopK = *topK
	dcfg.CommCauses = *commCauses
	rep, err := scalana.DetectScalingLoss(runs, dcfg)
	if err != nil {
		fatalf("%v", err)
	}
	prog, err := app.Parse()
	if err != nil {
		prog = nil
	}
	// With -json '-' stdout must stay parseable JSON; the rendered text
	// report moves to stderr.
	rendered := os.Stdout
	if *jsonOut == "-" {
		rendered = os.Stderr
	}
	fmt.Fprint(rendered, rep.Render(prog))

	if *jsonOut != "" {
		data, err := rep.EncodeJSON()
		if err != nil {
			fatalf("encode report: %v", err)
		}
		if *jsonOut == "-" {
			os.Stdout.Write(append(data, '\n'))
		} else if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fatalf("write report: %v", err)
		}
	}

	if *expectCause != "" {
		if len(rep.Causes) == 0 {
			fatalf("expectation %q not met: the report contains no root causes at all", *expectCause)
		}
		if !causeMatches(rep, *expectCause) {
			fatalf("expectation %q not met: none of the %d reported causes match (top cause: %s)",
				*expectCause, len(rep.Causes), describeCause(&rep.Causes[0]))
		}
		fmt.Fprintf(os.Stderr, "scalana-detect: expectation %q met\n", *expectCause)
	}
}

// runWatch is the -watch mode: load the store's full run history into a
// rolling-baseline state and score the newest run at one scale. The
// JSON bytes written with -json are exactly what GET /v1/watch serves
// for the same store and thresholds.
func runWatch(app *scalana.App, storeDir string, np int, p baseline.Params, mergeName, jsonOut string) {
	if storeDir == "" {
		fatalf("-watch requires -store")
	}
	merge, err := fit.ParseMergeStrategy(mergeName)
	if err != nil {
		fatalf("-merge: %v", err)
	}
	st, err := store.Open(storeDir)
	if err != nil {
		fatalf("%v", err)
	}
	_, graph, err := scalana.Compile(app)
	if err != nil {
		fatalf("%v", err)
	}
	state, err := baseline.LoadStore(st, app.Name, graph, merge)
	if err != nil {
		fatalf("%v", err)
	}
	nps := state.NPs()
	if len(nps) == 0 {
		fatalf("no profile sets stored for app %q in %s", app.Name, storeDir)
	}
	if np == 0 {
		np = nps[len(nps)-1]
	}
	rep, err := state.Watch(np, p)
	if err != nil {
		fatalf("%v", err)
	}
	rendered := os.Stdout
	if jsonOut == "-" {
		rendered = os.Stderr
	}
	fmt.Fprint(rendered, rep.Render())
	if jsonOut != "" {
		data, err := rep.EncodeJSON()
		if err != nil {
			fatalf("encode report: %v", err)
		}
		if jsonOut == "-" {
			os.Stdout.Write(append(data, '\n'))
		} else if err := os.WriteFile(jsonOut, append(data, '\n'), 0o644); err != nil {
			fatalf("write report: %v", err)
		}
	}
	if !rep.Quiet() {
		os.Exit(2) // regressions found: distinct from usage/runtime failures (1)
	}
}

// causeMatches reports whether any reported root cause matches the
// substring by vertex key, vertex name, or source position.
func causeMatches(rep *detect.Report, substr string) bool {
	for i := range rep.Causes {
		if strings.Contains(describeCause(&rep.Causes[i]), substr) {
			return true
		}
	}
	return false
}

func describeCause(c *detect.Cause) string {
	if c.Vertex == nil {
		return c.VertexKey
	}
	return fmt.Sprintf("%s %s %s at %s:%d", c.VertexKey, c.Vertex.Kind, c.Vertex.Name, c.Vertex.Pos.File, c.Vertex.Pos.Line)
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scalana-detect: "+format+"\n", args...)
	os.Exit(1)
}
