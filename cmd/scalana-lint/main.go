// Command scalana-lint runs the invariant analyzers of internal/analysis
// over Go packages. It is the machine-checked form of the contracts
// DESIGN.md §12 catalogues: deterministic wire output (maporder), the
// virtual-time-only simulator core (walltime), seeded randomness
// (seededrand), and the //scalana:hot allocation contract (hotpath).
//
// Standalone:
//
//	scalana-lint ./...              # lint the whole module
//	scalana-lint -list              # describe the analyzers
//	scalana-lint -json ./internal/prof
//
// As a go vet tool (the unitchecker protocol: go vet hands the tool one
// *.cfg file per package and caches on the -V=full output):
//
//	go build -o bin/scalana-lint ./cmd/scalana-lint
//	go vet -vettool=$(pwd)/bin/scalana-lint ./...
//
// Exit status is 0 when the tree is clean, 1 on usage or load errors,
// and 2 when diagnostics were reported (matching go vet's convention).
package main

import (
	"crypto/sha256"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"scalana/internal/analysis"
)

func main() {
	// The unitchecker protocol probes the tool before handing it work:
	// `tool -V=full` must print a stable version line (the vet cache
	// key), and `tool -flags` must print the tool's flag schema.
	for _, arg := range os.Args[1:] {
		switch arg {
		case "-V=full", "--V=full":
			printVersion()
			return
		case "-flags", "--flags":
			fmt.Println("[]")
			return
		}
	}

	jsonOut := flag.Bool("json", false, "emit diagnostics as JSON")
	list := flag.Bool("list", false, "list the analyzers and exit")
	flag.Usage = func() {
		fmt.Fprintf(os.Stderr, "usage: scalana-lint [-json] packages...\n       scalana-lint -list\n")
		flag.PrintDefaults()
	}
	flag.Parse()

	if *list {
		for _, a := range analysis.All() {
			fmt.Printf("%-12s %s\n", a.Name, a.Doc)
		}
		return
	}

	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(1)
	}

	// go vet invokes the tool with exactly one argument: the package
	// config file it wrote into the build cache.
	if len(args) == 1 && strings.HasSuffix(args[0], ".cfg") {
		os.Exit(runVetUnit(args[0]))
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatalf("%v", err)
	}
	root, err := analysis.ModuleRoot(cwd)
	if err != nil {
		root = cwd
	}
	pkgs, err := analysis.Load(root, args...)
	if err != nil {
		fatalf("%v", err)
	}
	var diags []analysis.Diagnostic
	for _, pkg := range pkgs {
		ds, err := analysis.RunAnalyzers(pkg, analysis.All())
		if err != nil {
			fatalf("%v", err)
		}
		diags = append(diags, ds...)
	}
	analysis.SortDiagnostics(diags)
	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", " ")
		if err := enc.Encode(diags); err != nil {
			fatalf("%v", err)
		}
	} else {
		for _, d := range diags {
			fmt.Fprintf(os.Stderr, "%s\n", d)
		}
	}
	if len(diags) > 0 {
		os.Exit(2)
	}
}

// printVersion mimics x/tools' unitchecker -V=full output: the binary's
// own content hash keys go vet's result cache, so rebuilding the tool
// invalidates stale vet verdicts.
func printVersion() {
	name := "scalana-lint"
	h := sha256.New()
	if exe, err := os.Executable(); err == nil {
		if f, err := os.Open(exe); err == nil {
			_, _ = io.Copy(h, f)
			f.Close()
		}
	}
	fmt.Printf("%s version devel buildID=%x\n", name, h.Sum(nil))
}

// vetConfig is the package description go vet writes for -vettool
// drivers; field names follow x/tools/go/analysis/unitchecker.Config.
type vetConfig struct {
	ID                        string
	Compiler                  string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one package under the go vet protocol and returns
// the process exit code.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "scalana-lint: %v\n", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "scalana-lint: parse %s: %v\n", cfgPath, err)
		return 1
	}

	// The analyzers keep no cross-package facts, so a facts-only request
	// for a dependency has nothing to compute. Test units are skipped
	// outright: the invariants are contracts on shipped code, and the
	// walltime/seededrand passes explicitly exempt tests (a test may time
	// itself with wall clocks, for example). The standalone loader makes
	// the same choice by loading only GoFiles.
	if !cfg.VetxOnly && !isTestUnit(cfg) {
		pkg, err := analysis.TypeCheckVetUnit(cfg.ImportPath, cfg.Dir, cfg.GoFiles, cfg.PackageFile, cfg.ImportMap)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return writeVetx(cfg.VetxOutput)
			}
			fmt.Fprintf(os.Stderr, "scalana-lint: %v\n", err)
			return 1
		}
		diags, err := analysis.RunAnalyzers(pkg, analysis.All())
		if err != nil {
			fmt.Fprintf(os.Stderr, "scalana-lint: %v\n", err)
			return 1
		}
		if len(diags) > 0 {
			for _, d := range diags {
				fmt.Fprintf(os.Stderr, "%s: %s (%s)\n", d.Pos, d.Message, d.Analyzer)
			}
			return 2
		}
	}
	return writeVetx(cfg.VetxOutput)
}

// isTestUnit reports whether a vet config describes a test package: an
// external test package ("pkg_test", or go vet's bracketed recompiled
// variant "pkg [pkg.test]"), or a unit whose file list includes _test.go
// sources.
func isTestUnit(cfg vetConfig) bool {
	if strings.HasSuffix(cfg.ImportPath, "_test") ||
		strings.HasSuffix(cfg.ImportPath, ".test") ||
		strings.Contains(cfg.ImportPath, " [") {
		return true
	}
	for _, f := range cfg.GoFiles {
		if strings.HasSuffix(f, "_test.go") {
			return true
		}
	}
	return false
}

// writeVetx writes the (empty) serialized-facts file go vet expects to
// find after a successful run.
func writeVetx(path string) int {
	if path == "" {
		return 0
	}
	if err := os.WriteFile(path, []byte{}, 0o666); err != nil {
		fmt.Fprintf(os.Stderr, "scalana-lint: write vetx: %v\n", err)
		return 1
	}
	return 0
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scalana-lint: "+format+"\n", args...)
	os.Exit(1)
}
