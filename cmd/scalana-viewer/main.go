// Command scalana-viewer is step 4 of the ScalAna workflow (paper §V): a
// terminal rendition of the GUI in paper Fig. 9. The upper panel lists the
// diagnosed root-cause vertices with their calling paths; the lower panel
// shows the source code around each root cause.
//
// Usage:
//
//	scalana-viewer -app zeusmp -scales 8,16,32,64
//	scalana-viewer -app sst -scales 4,8,16,32 -context 3
//	scalana-viewer -app cg -scales 4,8,16 -parallel 2 -interp
//
// The sweep runs through the standard engine: the app compiles once for
// every scale, the scales fan out across -parallel workers, and -interp
// selects the tree-walking interpreter — the same knobs every other
// command exposes.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"scalana/internal/detect"
	"scalana/internal/prof"
	"scalana/internal/scales"

	scalana "scalana"
)

func main() {
	appName := flag.String("app", "", "workload name")
	scaleList := flag.String("scales", "4,8,16,32", "comma-separated rank counts")
	context := flag.Int("context", 2, "source lines of context around each root cause")
	hz := flag.Float64("hz", 1000, "sampling frequency for profiling runs")
	parallel := flag.Int("parallel", 0, "scales profiled concurrently (0 = one per CPU, 1 = one scale at a time)")
	useInterp := flag.Bool("interp", false, "execute on the tree-walking interpreter instead of the bytecode VM")
	flag.Parse()

	app := scalana.GetApp(*appName)
	if app == nil {
		fatalf("unknown app %q", *appName)
	}
	all, err := scales.Parse(*scaleList)
	if err != nil {
		fatalf("-scales: %v", err)
	}
	nps, dropped := scales.SplitMin(all, app.MinNP)
	if len(dropped) > 0 {
		fmt.Fprintf(os.Stderr, "scalana-viewer: dropping scales %v: %s requires at least %d ranks\n",
			dropped, app.Name, app.MinNP)
	}
	if len(nps) == 0 {
		fatalf("no usable scales: all of %v are below the %d-rank minimum of %s", dropped, app.MinNP, app.Name)
	}
	cfg := prof.DefaultConfig()
	cfg.SampleHz = *hz
	runs, err := scalana.SweepWithConfig(app, nps, scalana.SweepConfig{
		Parallelism: *parallel,
		Prof:        cfg,
		Interp:      *useInterp,
	})
	if err != nil {
		fatalf("%v", err)
	}
	rep, err := scalana.DetectScalingLoss(runs, detect.Config{})
	if err != nil {
		fatalf("%v", err)
	}
	prog, err := app.Parse()
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("┌─ root cause vertices and calling paths ─ %s (np=%d) ─┐\n", app.Name, rep.NP)
	for i, c := range rep.Causes {
		var callPath []string
		for _, v := range c.Vertex.Path() {
			callPath = append(callPath, fmt.Sprintf("%s@%d", v.Kind, v.Pos.Line))
		}
		fmt.Printf("│ %d. %-6s %s:%d  score=%.3f  path: %s\n",
			i+1, c.Vertex.Kind, c.Vertex.Pos.File, c.Vertex.Pos.Line, c.Score, strings.Join(callPath, " > "))
	}
	fmt.Printf("└%s┘\n\n", strings.Repeat("─", 58))

	for i, c := range rep.Causes {
		fmt.Printf("── code for root cause %d (%s:%d) ──\n", i+1, c.Vertex.Pos.File, c.Vertex.Pos.Line)
		for l := c.Vertex.Pos.Line - *context; l <= c.Vertex.Pos.Line+*context; l++ {
			src := prog.SourceLine(l)
			if src == "" && l != c.Vertex.Pos.Line {
				continue
			}
			marker := "  "
			if l == c.Vertex.Pos.Line {
				marker = "=>"
			}
			fmt.Printf(" %s %4d  %s\n", marker, l, src)
		}
		fmt.Println()
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scalana-viewer: "+format+"\n", args...)
	os.Exit(1)
}
