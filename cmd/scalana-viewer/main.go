// Command scalana-viewer is step 4 of the ScalAna workflow (paper §V): a
// terminal rendition of the GUI in paper Fig. 9. The upper panel lists the
// diagnosed root-cause vertices with their calling paths; the lower panel
// shows the source code around each root cause.
//
// Usage:
//
//	scalana-viewer -app zeusmp -scales 8,16,32,64
//	scalana-viewer -app sst -scales 4,8,16,32 -context 3
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"scalana/internal/detect"
	"scalana/internal/prof"

	scalana "scalana"
)

func main() {
	appName := flag.String("app", "", "workload name")
	scales := flag.String("scales", "4,8,16,32", "comma-separated rank counts")
	context := flag.Int("context", 2, "source lines of context around each root cause")
	flag.Parse()

	app := scalana.GetApp(*appName)
	if app == nil {
		fatalf("unknown app %q", *appName)
	}
	var nps []int
	for _, s := range strings.Split(*scales, ",") {
		np, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			fatalf("bad scale %q", s)
		}
		if np >= app.MinNP {
			nps = append(nps, np)
		}
	}
	cfg := prof.DefaultConfig()
	cfg.SampleHz = 1000
	runs, err := scalana.Sweep(app, nps, cfg)
	if err != nil {
		fatalf("%v", err)
	}
	rep, err := scalana.DetectScalingLoss(runs, detect.Config{})
	if err != nil {
		fatalf("%v", err)
	}
	prog, err := app.Parse()
	if err != nil {
		fatalf("%v", err)
	}

	fmt.Printf("┌─ root cause vertices and calling paths ─ %s (np=%d) ─┐\n", app.Name, rep.NP)
	for i, c := range rep.Causes {
		var callPath []string
		for _, v := range c.Vertex.Path() {
			callPath = append(callPath, fmt.Sprintf("%s@%d", v.Kind, v.Pos.Line))
		}
		fmt.Printf("│ %d. %-6s %s:%d  score=%.3f  path: %s\n",
			i+1, c.Vertex.Kind, c.Vertex.Pos.File, c.Vertex.Pos.Line, c.Score, strings.Join(callPath, " > "))
	}
	fmt.Printf("└%s┘\n\n", strings.Repeat("─", 58))

	for i, c := range rep.Causes {
		fmt.Printf("── code for root cause %d (%s:%d) ──\n", i+1, c.Vertex.Pos.File, c.Vertex.Pos.Line)
		for l := c.Vertex.Pos.Line - *context; l <= c.Vertex.Pos.Line+*context; l++ {
			src := prog.SourceLine(l)
			if src == "" && l != c.Vertex.Pos.Line {
				continue
			}
			marker := "  "
			if l == c.Vertex.Pos.Line {
				marker = "=>"
			}
			fmt.Printf(" %s %4d  %s\n", marker, l, src)
		}
		fmt.Println()
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scalana-viewer: "+format+"\n", args...)
	os.Exit(1)
}
