// Command scalana-bench regenerates the paper's tables and figures.
//
// Usage:
//
//	scalana-bench -list              # show all experiments
//	scalana-bench -tools             # show registered measurement tools
//	scalana-bench -exp table1        # one experiment
//	scalana-bench -all               # everything, in paper order
//	scalana-bench -all -parallel 4   # up to 4 experiments concurrently
//	scalana-bench -all -o results/   # also write one .txt per experiment
//
// With -parallel above 1 (or 0 for one worker per CPU), experiments
// execute concurrently on the shared sweep engine; output is still
// printed in paper order once all of them finish. Results are identical
// either way — each simulated run is deterministic.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"scalana/internal/exp"

	scalana "scalana"

	// The comparison tools the experiments dispatch on are resolved
	// through the registry; the blank import adds the comm-matrix
	// collector to the -tools listing.
	_ "scalana/internal/commmatrix"
)

func main() {
	id := flag.String("exp", "", "experiment id (see -list)")
	all := flag.Bool("all", false, "run every experiment")
	list := flag.Bool("list", false, "list experiments")
	tools := flag.Bool("tools", false, "list registered measurement tools")
	outDir := flag.String("o", "", "directory to write per-experiment .txt files")
	parallel := flag.Int("parallel", 1, "experiments run concurrently (0 = one per CPU)")
	flag.Parse()

	if *list {
		for _, e := range exp.All() {
			fmt.Printf("%-8s %s\n", e.ID, e.Title)
		}
		return
	}
	if *tools {
		for _, name := range scalana.Tools() {
			t, _ := scalana.LookupTool(name)
			fmt.Printf("%-12s %s\n", name, t.Description())
		}
		return
	}

	var toRun []exp.Experiment
	switch {
	case *all:
		toRun = exp.All()
	case *id != "":
		e := exp.Get(*id)
		if e == nil {
			fatalf("unknown experiment %q (try -list)", *id)
		}
		toRun = []exp.Experiment{*e}
	default:
		fatalf("one of -exp or -all is required (try -list)")
	}

	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			fatalf("%v", err)
		}
	}
	if *parallel == 1 {
		for _, e := range toRun {
			start := time.Now()
			res, err := e.Run()
			if err != nil {
				fatalf("%s: %v", e.ID, err)
			}
			fmt.Printf("==== %s: %s (took %.1fs) ====\n\n%s\n", res.ID, e.Title, time.Since(start).Seconds(), res.Text)
			writeResult(*outDir, res)
		}
		return
	}

	start := time.Now()
	results, err := exp.RunAll(toRun, *parallel)
	// Completed experiments are printed and written even when one failed.
	done := 0
	for i, res := range results {
		if res == nil {
			continue
		}
		fmt.Printf("==== %s: %s ====\n\n%s\n", res.ID, toRun[i].Title, res.Text)
		writeResult(*outDir, res)
		done++
	}
	if err != nil {
		fatalf("%v (%d of %d experiments completed)", err, done, len(toRun))
	}
	fmt.Printf("%d experiments in %.1fs\n", done, time.Since(start).Seconds())
}

func writeResult(outDir string, res *exp.Result) {
	if outDir == "" {
		return
	}
	path := filepath.Join(outDir, res.ID+".txt")
	if err := os.WriteFile(path, []byte(res.Text), 0o644); err != nil {
		fatalf("write %s: %v", path, err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scalana-bench: "+format+"\n", args...)
	os.Exit(1)
}
