// Command scalana-serve runs the detection service: the paper's
// profile → PPG → detect → report workflow (§V) as a long-running HTTP
// server over a content-addressed profile store. Clients upload
// profile-set wire files (scalana-prof -o output, the
// prof.EncodeProfileSet format) and query detect reports, sweep
// comparisons, and communication matrices as JSON; one shared engine
// compiles each app once no matter how many uploads and queries touch
// it, and concurrent identical detect requests coalesce into a single
// computation.
//
// Usage:
//
//	scalana-serve -store /var/lib/scalana
//	scalana-serve -addr 127.0.0.1:8135 -store ./store -parallel 4
//
// Quickstart against a running server:
//
//	scalana-prof -app cg -np 4 -hz 1000 -o cg.4.json
//	curl --data-binary @cg.4.json http://localhost:8135/v1/profiles
//	curl -X POST -d '{"app":"cg"}' http://localhost:8135/v1/detect
//
// With several uploads stored per (app, np), GET /v1/watch scores the
// newest against the rolling baseline of its predecessors; the
// -watch-* flags set the default thresholds (overridable per request
// via query parameters).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"scalana/internal/baseline"
	"scalana/internal/fit"
	"scalana/internal/serve"
	"scalana/internal/store"

	scalana "scalana"
)

func main() {
	addr := flag.String("addr", "localhost:8135", "listen address")
	storeDir := flag.String("store", "", "profile store directory (required; created if missing)")
	parallel := flag.Int("parallel", 0, "bound on concurrent simulation/PPG work (0 = one per CPU); also fans simulate-mode sweeps")
	hz := flag.Float64("hz", 1000, "profiler sampling frequency for simulate-mode detect runs")
	watchZ := flag.Float64("watch-z", 3, "default z-score flagging threshold for /v1/watch")
	watchCUSUM := flag.Float64("watch-cusum", 5, "default CUSUM flagging threshold for /v1/watch")
	watchK := flag.Float64("watch-cusum-k", 0.5, "default CUSUM slack per run for /v1/watch")
	watchMinRuns := flag.Int("watch-min-runs", 2, "default minimum baseline runs before a vertex is scored")
	watchMinShare := flag.Float64("watch-min-share", 0.01, "default minimum share of total time for flagging")
	watchMerge := flag.String("watch-merge", "median", "cross-rank merge strategy baselines are built with (server-wide)")
	quiet := flag.Bool("quiet", false, "suppress the per-request log")
	flag.Parse()

	if *storeDir == "" {
		fatalf("-store is required")
	}
	st, err := store.Open(*storeDir)
	if err != nil {
		fatalf("%v", err)
	}
	merge, err := fit.ParseMergeStrategy(*watchMerge)
	if err != nil {
		fatalf("-watch-merge: %v", err)
	}
	logger := log.New(os.Stderr, "scalana-serve: ", log.LstdFlags)
	cfg := serve.Config{
		Store:       st,
		Engine:      scalana.NewEngine(),
		Parallelism: *parallel,
		SampleHz:    *hz,
		Watch: baseline.Params{
			ZThd: *watchZ, CUSUMThd: *watchCUSUM, CUSUMK: *watchK,
			MinRuns: *watchMinRuns, MinShare: *watchMinShare,
		},
		Merge: merge,
	}
	if !*quiet {
		cfg.Logf = logger.Printf
	}
	srv, err := serve.New(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	logger.Printf("listening on %s (store: %s)", *addr, st.Root())
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scalana-serve: "+format+"\n", args...)
	os.Exit(1)
}
