// Command scalana-serve runs the detection service: the paper's
// profile → PPG → detect → report workflow (§V) as a long-running HTTP
// server over a content-addressed profile store. Clients upload
// profile-set wire files (scalana-prof -o output, the
// prof.EncodeProfileSet format) and query detect reports, sweep
// comparisons, and communication matrices as JSON; one shared engine
// compiles each app once no matter how many uploads and queries touch
// it, and concurrent identical detect requests coalesce into a single
// computation.
//
// Usage:
//
//	scalana-serve -store /var/lib/scalana
//	scalana-serve -addr 127.0.0.1:8135 -store ./store -parallel 4
//
// Quickstart against a running server:
//
//	scalana-prof -app cg -np 4 -hz 1000 -o cg.4.json
//	curl --data-binary @cg.4.json http://localhost:8135/v1/profiles
//	curl -X POST -d '{"app":"cg"}' http://localhost:8135/v1/detect
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"

	"scalana/internal/serve"
	"scalana/internal/store"

	scalana "scalana"
)

func main() {
	addr := flag.String("addr", "localhost:8135", "listen address")
	storeDir := flag.String("store", "", "profile store directory (required; created if missing)")
	parallel := flag.Int("parallel", 0, "bound on concurrent simulation/PPG work (0 = one per CPU); also fans simulate-mode sweeps")
	hz := flag.Float64("hz", 1000, "profiler sampling frequency for simulate-mode detect runs")
	quiet := flag.Bool("quiet", false, "suppress the per-request log")
	flag.Parse()

	if *storeDir == "" {
		fatalf("-store is required")
	}
	st, err := store.Open(*storeDir)
	if err != nil {
		fatalf("%v", err)
	}
	logger := log.New(os.Stderr, "scalana-serve: ", log.LstdFlags)
	cfg := serve.Config{
		Store:       st,
		Engine:      scalana.NewEngine(),
		Parallelism: *parallel,
		SampleHz:    *hz,
	}
	if !*quiet {
		cfg.Logf = logger.Printf
	}
	srv, err := serve.New(cfg)
	if err != nil {
		fatalf("%v", err)
	}
	logger.Printf("listening on %s (store: %s)", *addr, st.Root())
	if err := http.ListenAndServe(*addr, srv.Handler()); err != nil {
		fatalf("%v", err)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scalana-serve: "+format+"\n", args...)
	os.Exit(1)
}
