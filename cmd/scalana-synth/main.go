// Command scalana-synth generates a seeded corpus of synthetic MiniMP
// workloads with injected, labeled scaling defects, runs the full
// ScalAna pipeline over every case, and scores root-cause localization
// against the ground truth — the repo's analog of the paper's
// injected-defect accuracy evaluation.
//
// Usage:
//
//	scalana-synth -seed 1 -cases 25
//	scalana-synth -seed 1 -cases 25 -json report.json -corpus corpus.json
//	scalana-synth -archetypes imbalance,collective -np-list 4,8,16
//	scalana-synth -generate-only -corpus corpus.json
//
// Everything derives from -seed: the same seed reproduces the identical
// corpus and report byte-for-byte, run to run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"scalana/internal/scales"
	"scalana/internal/synth"
)

func main() {
	seed := flag.Int64("seed", 1, "corpus seed; equal seeds reproduce identical corpora")
	cases := flag.Int("cases", 25, "number of cases to generate")
	archetypes := flag.String("archetypes", "", "comma-separated defect archetypes (default: all of "+joinKinds()+")")
	templatesFlag := flag.String("templates", "", "comma-separated structural templates (default: all)")
	npList := flag.String("np-list", "4,8,16,32", "comma-separated job scales each case is swept across")
	topK := flag.Int("topk", 3, "cause-rank cutoff for top-k metrics")
	parallel := flag.Int("parallel", 0, "cases evaluated concurrently (0 = one per CPU)")
	hz := flag.Float64("hz", 5000, "profiler sampling frequency")
	corpusOut := flag.String("corpus", "", "write the generated corpus (with ground-truth labels) to this JSON file")
	jsonOut := flag.String("json", "", "write the scored evaluation to this JSON file ('-' for stdout)")
	genOnly := flag.Bool("generate-only", false, "generate and write the corpus without evaluating it")
	useInterp := flag.Bool("interp", false, "evaluate on the tree-walking interpreter instead of the bytecode VM")
	flag.Parse()

	if *genOnly && *corpusOut == "" {
		fatalf("-generate-only needs -corpus")
	}
	gcfg := synth.GenConfig{Seed: *seed, Cases: *cases}
	if *archetypes != "" {
		for _, a := range strings.Split(*archetypes, ",") {
			gcfg.Archetypes = append(gcfg.Archetypes, synth.DefectKind(strings.TrimSpace(a)))
		}
	}
	if *templatesFlag != "" {
		for _, tn := range strings.Split(*templatesFlag, ",") {
			gcfg.Templates = append(gcfg.Templates, strings.TrimSpace(tn))
		}
	}
	corpus, err := synth.Generate(gcfg)
	if err != nil {
		fatalf("%v", err)
	}
	if *corpusOut != "" {
		if err := corpus.Save(*corpusOut); err != nil {
			fatalf("save corpus: %v", err)
		}
		fmt.Fprintf(os.Stderr, "scalana-synth: corpus (%d cases) written to %s\n", len(corpus.Cases), *corpusOut)
	}
	if *genOnly {
		return
	}

	ecfg := synth.EvalConfig{Parallelism: *parallel, SampleHz: *hz, TopK: *topK, Interp: *useInterp}
	ecfg.NPs, err = scales.Parse(*npList)
	if err != nil {
		fatalf("-np-list: %v", err)
	}
	res, err := synth.Evaluate(corpus, ecfg)
	if err != nil {
		fatalf("%v", err)
	}
	// With -json '-' stdout must stay parseable JSON; the rendered text
	// report moves to stderr.
	rendered := os.Stdout
	if *jsonOut == "-" {
		rendered = os.Stderr
	}
	fmt.Fprint(rendered, res.Render())
	if *jsonOut != "" {
		data, err := res.EncodeJSON()
		if err != nil {
			fatalf("encode report: %v", err)
		}
		if *jsonOut == "-" {
			os.Stdout.Write(append(data, '\n'))
		} else if err := os.WriteFile(*jsonOut, append(data, '\n'), 0o644); err != nil {
			fatalf("write report: %v", err)
		}
	}
}

func joinKinds() string {
	var names []string
	for _, k := range synth.AllDefects() {
		names = append(names, string(k))
	}
	return strings.Join(names, ",")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "scalana-synth: "+format+"\n", args...)
	os.Exit(1)
}
