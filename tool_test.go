package scalana_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"scalana/internal/prof"
	"scalana/internal/psg"

	scalana "scalana"

	// Registers the comm-matrix collector purely through the public
	// registry — the listing test below proves it arrived.
	_ "scalana/internal/commmatrix"
)

// stubTool is a minimal MeasurementTool for registry-behavior tests.
type stubTool struct{ name string }

func (s stubTool) Name() string        { return s.name }
func (s stubTool) Description() string { return "stub" }
func (s stubTool) NewRun(scalana.ToolContext) (scalana.ToolRun, error) {
	return nil, nil
}

func mustPanic(t *testing.T, what string, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Errorf("%s did not panic", what)
		}
	}()
	f()
}

func TestRegisterToolRejectsDuplicatesAndEmptyNames(t *testing.T) {
	scalana.RegisterTool(stubTool{name: "stub-dup-test"})
	mustPanic(t, "duplicate registration", func() {
		scalana.RegisterTool(stubTool{name: "stub-dup-test"})
	})
	mustPanic(t, "empty name", func() {
		scalana.RegisterTool(stubTool{name: ""})
	})
	mustPanic(t, "nil tool", func() {
		scalana.RegisterTool(nil)
	})
}

func TestToolsListingAndLookup(t *testing.T) {
	names := scalana.Tools()
	for _, want := range []string{"scalana", "tracer", "hpctk", "commmatrix"} {
		tool, ok := scalana.LookupTool(want)
		if !ok {
			t.Errorf("tool %q not registered (have %v)", want, names)
			continue
		}
		if tool.Name() != want || tool.Description() == "" {
			t.Errorf("tool %q: name=%q description=%q", want, tool.Name(), tool.Description())
		}
		found := false
		for _, n := range names {
			if n == want {
				found = true
			}
		}
		if !found {
			t.Errorf("Tools() = %v is missing %q", names, want)
		}
	}
	if _, ok := scalana.LookupTool("no-such-tool"); ok {
		t.Error("unknown name should not resolve")
	}
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Errorf("Tools() not sorted: %v", names)
		}
	}
}

func TestRunUnknownToolNameErrors(t *testing.T) {
	_, err := scalana.Run(scalana.RunConfig{App: scalana.GetApp("cg"), NP: 4, ToolName: "no-such-tool"})
	if err == nil || !strings.Contains(err.Error(), "no-such-tool") {
		t.Errorf("unknown tool name should error naming the tool, got: %v", err)
	}
}

// TestRunNilToolRunErrors: a registered tool whose NewRun returns
// (nil, nil) — an easy implementer mistake — must surface as an error,
// not a panic inside Run.
func TestRunNilToolRunErrors(t *testing.T) {
	scalana.RegisterTool(stubTool{name: "stub-nil-run"})
	_, err := scalana.Run(scalana.RunConfig{App: scalana.GetApp("cg"), NP: 4, ToolName: "stub-nil-run"})
	if err == nil || !strings.Contains(err.Error(), "returned no run") {
		t.Errorf("nil ToolRun should error, got: %v", err)
	}
}

// TestToolEnumResolvesToRegisteredNames pins the legacy enum's sugar
// mapping onto the registry, and that every resolved name is actually
// registered.
func TestToolEnumResolvesToRegisteredNames(t *testing.T) {
	for tool, want := range map[scalana.Tool]string{
		scalana.ToolNone:     "",
		scalana.ToolScalAna:  "scalana",
		scalana.ToolTracer:   "tracer",
		scalana.ToolCallPath: "hpctk",
		scalana.Tool(99):     "",
	} {
		if got := tool.ToolName(); got != want {
			t.Errorf("Tool(%d).ToolName() = %q, want %q", int(tool), got, want)
		}
		if want != "" {
			if _, ok := scalana.LookupTool(want); !ok {
				t.Errorf("enum resolves to %q but nothing is registered under it", want)
			}
		}
	}
	if _, err := scalana.Run(scalana.RunConfig{App: scalana.GetApp("cg"), NP: 4, Tool: scalana.Tool(99)}); err == nil {
		t.Error("out-of-range enum value should error rather than run bare")
	}
}

// TestEnumAndNameRunsIdentical proves the enum really is sugar: for each
// legacy tool, a run selected by enum and a run selected by registered
// name produce identical results — same virtual makespan, same storage,
// and (for the profiler) byte-identical wire JSON.
func TestEnumAndNameRunsIdentical(t *testing.T) {
	app := scalana.GetApp("cg")
	for _, tc := range []struct {
		enum scalana.Tool
		name string
	}{
		{scalana.ToolScalAna, "scalana"},
		{scalana.ToolTracer, "tracer"},
		{scalana.ToolCallPath, "hpctk"},
	} {
		byEnum, err := scalana.Run(scalana.RunConfig{App: app, NP: 8, Tool: tc.enum, Seed: 3})
		if err != nil {
			t.Fatalf("%s via enum: %v", tc.name, err)
		}
		byName, err := scalana.Run(scalana.RunConfig{App: app, NP: 8, ToolName: tc.name, Seed: 3})
		if err != nil {
			t.Fatalf("%s via name: %v", tc.name, err)
		}
		if byEnum.Tool != tc.name || byName.Tool != tc.name {
			t.Errorf("%s: resolved tool names %q / %q", tc.name, byEnum.Tool, byName.Tool)
		}
		if byEnum.Result.Elapsed != byName.Result.Elapsed {
			t.Errorf("%s: elapsed differs: %g vs %g", tc.name, byEnum.Result.Elapsed, byName.Result.Elapsed)
		}
		if byEnum.StorageBytes() != byName.StorageBytes() {
			t.Errorf("%s: storage differs: %d vs %d", tc.name, byEnum.StorageBytes(), byName.StorageBytes())
		}
		if byEnum.Measurement.ToolName() != byName.Measurement.ToolName() {
			t.Errorf("%s: measurement tool names differ", tc.name)
		}
		if tc.name == "scalana" {
			a, b := saveWire(t, byEnum), saveWire(t, byName)
			if a != b {
				t.Errorf("%s: wire JSON differs between enum and name selection", tc.name)
			}
		}
	}
}

func saveWire(t *testing.T, out *scalana.RunOutput) string {
	t.Helper()
	ps := &prof.ProfileSet{App: out.App.Name, NP: out.NP, Elapsed: out.Result.Elapsed, Profiles: out.Profiles()}
	path := filepath.Join(t.TempDir(), "wire.json")
	if err := ps.Save(path); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}

// TestRunWireJSONMatchesCommittedFixtures is the redesign's byte-identity
// anchor: a live registry-dispatched run at the fixtures' settings (1 kHz,
// seed 0) must serialize to exactly the bytes the pre-registry build
// committed under testdata/.
func TestRunWireJSONMatchesCommittedFixtures(t *testing.T) {
	app := scalana.GetApp("cg")
	cfg := prof.DefaultConfig()
	cfg.SampleHz = 1000
	for _, np := range []int{4, 8} {
		out, err := scalana.Run(scalana.RunConfig{App: app, NP: np, ToolName: "scalana", Prof: cfg})
		if err != nil {
			t.Fatal(err)
		}
		got := saveWire(t, out)
		want, err := os.ReadFile(filepath.Join("testdata", fixtureName("cg", np)))
		if err != nil {
			t.Fatal(err)
		}
		if got != string(want) {
			t.Errorf("np=%d: live run wire JSON diverged from the pre-registry fixture (%d vs %d bytes)",
				np, len(got), len(want))
		}
	}
}

// TestMeasurementAccessorsNilSafe: a bare run carries no Measurement and
// every accessor must degrade to zero values.
func TestMeasurementAccessorsNilSafe(t *testing.T) {
	out, err := scalana.Run(scalana.RunConfig{App: scalana.GetApp("cg"), NP: 4})
	if err != nil {
		t.Fatal(err)
	}
	if out.Measurement != nil || out.Tool != "" {
		t.Fatalf("bare run should carry no measurement, got tool %q", out.Tool)
	}
	if out.Profiles() != nil || out.Traces() != nil || out.CtxProfiles() != nil ||
		out.PPG() != nil || out.StorageBytes() != 0 {
		t.Error("nil-Measurement accessors should return zero values")
	}
	if out.Measurement.Data() != nil || out.Measurement.ToolName() != "" {
		t.Error("nil *Measurement methods should be callable")
	}
}

// TestPSGOptionsNormalizeSharedAcrossSpellings covers the old
// resolvePSGOptions hole: Options{Contract: true, MaxLoopDepth: 0} must
// mean paper defaults everywhere — same compiled graph, same engine
// cache entry as DefaultOptions().
func TestPSGOptionsNormalizeSharedAcrossSpellings(t *testing.T) {
	e := scalana.NewEngine()
	app := scalana.GetApp("cg")
	_, g1, err := e.Compile(app, psg.Options{Contract: true})
	if err != nil {
		t.Fatal(err)
	}
	_, g2, err := e.Compile(app, psg.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, g3, err := e.Compile(app, psg.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if g1 != g2 || g2 != g3 {
		t.Error("spellings of the default options should share one compiled graph")
	}
	stats := e.CacheStats()
	if stats.Entries != 1 || stats.Misses != 1 || stats.Hits != 2 {
		t.Errorf("cache entries=%d misses=%d hits=%d, want 1/1/2", stats.Entries, stats.Misses, stats.Hits)
	}

	out, err := scalana.Run(scalana.RunConfig{App: app, NP: 4, PSGOptions: psg.Options{Contract: true}})
	if err != nil {
		t.Fatal(err)
	}
	if out.Graph.Opts != psg.DefaultOptions() {
		t.Errorf("Run left options un-normalized: %+v", out.Graph.Opts)
	}
}
