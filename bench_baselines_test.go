package scalana_test

// Guards for the committed benchmark snapshots (scripts/bench-snapshot.sh):
// BENCH_baseline.json captures the tree-walking interpreter before the
// bytecode VM landed, BENCH_vm.json the VM on the same benchmarks, and
// BENCH_sched.json the VM under the cooperative run-to-block scheduler.
// The test keeps the files loadable and enforces the headline gates on
// the zeusmp np=64 sweep benchmark: the VM at least 2x faster than the
// interpreter with at least an 80% allocation reduction, and the
// scheduler at least another 2x over the pre-scheduler VM, with the
// np=1024 scale present (the free-running core could not finish it
// inside CI budgets).

import (
	"encoding/json"
	"os"
	"strings"
	"testing"
)

type benchSnapshot struct {
	Created string `json:"created"`
	Go      string `json:"go"`
	Exec    string `json:"exec"`
	// GOMAXPROCS, CPUs, and GitSHA identify the machine state behind the
	// numbers. Snapshots predating the fields decode them as zero values.
	GOMAXPROCS int              `json:"gomaxprocs"`
	CPUs       int              `json:"cpus"`
	GitSHA     string           `json:"git_sha"`
	Benchmarks []benchSnapEntry `json:"benchmarks"`
}

type benchSnapEntry struct {
	Name        string  `json:"name"`
	Iters       int64   `json:"iters"`
	NsPerOp     float64 `json:"ns_per_op"`
	BytesPerOp  float64 `json:"bytes_per_op"`
	AllocsPerOp float64 `json:"allocs_per_op"`
}

func loadSnapshot(t *testing.T, path, wantExec string) *benchSnapshot {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read snapshot: %v", err)
	}
	var snap benchSnapshot
	if err := json.Unmarshal(data, &snap); err != nil {
		t.Fatalf("%s is not valid snapshot JSON: %v", path, err)
	}
	if snap.Exec != wantExec {
		t.Fatalf("%s records exec mode %q, want %q", path, snap.Exec, wantExec)
	}
	if len(snap.Benchmarks) == 0 {
		t.Fatalf("%s holds no benchmarks", path)
	}
	for _, b := range snap.Benchmarks {
		if b.Name == "" || b.Iters <= 0 || b.NsPerOp <= 0 {
			t.Fatalf("%s holds a malformed entry: %+v", path, b)
		}
	}
	return &snap
}

// findBench matches by name prefix so snapshots taken on multi-core
// machines (where go test appends a -N GOMAXPROCS suffix) still resolve.
func findBench(t *testing.T, snap *benchSnapshot, path, name string) *benchSnapEntry {
	t.Helper()
	for i := range snap.Benchmarks {
		if strings.HasPrefix(snap.Benchmarks[i].Name, name) {
			return &snap.Benchmarks[i]
		}
	}
	t.Fatalf("%s holds no %s entry", path, name)
	return nil
}

func TestBenchBaselinesParse(t *testing.T) {
	base := loadSnapshot(t, "BENCH_baseline.json", "interp")
	vm := loadSnapshot(t, "BENCH_vm.json", "vm")

	bNP64 := findBench(t, base, "BENCH_baseline.json", "BenchmarkSweepNP64")
	vNP64 := findBench(t, vm, "BENCH_vm.json", "BenchmarkSweepNP64")
	if vNP64.NsPerOp > bNP64.NsPerOp/2 {
		t.Errorf("np=64 sweep: VM %.0f ns/op vs interpreter %.0f ns/op — the committed snapshots no longer show the >=2x speedup",
			vNP64.NsPerOp, bNP64.NsPerOp)
	}
	if vNP64.AllocsPerOp > bNP64.AllocsPerOp/5 {
		t.Errorf("np=64 sweep: VM %.0f allocs/op vs interpreter %.0f allocs/op — the committed snapshots no longer show the >=80%% allocation reduction",
			vNP64.AllocsPerOp, bNP64.AllocsPerOp)
	}

	sched := loadSnapshot(t, "BENCH_sched.json", "sched")
	sNP64 := findBench(t, sched, "BENCH_sched.json", "BenchmarkSweepNP64")
	if sNP64.NsPerOp > vNP64.NsPerOp/2 {
		t.Errorf("np=64 sweep: scheduler %.0f ns/op vs pre-scheduler VM %.0f ns/op — the committed snapshots no longer show the >=2x scheduler speedup",
			sNP64.NsPerOp, vNP64.NsPerOp)
	}
	// The scheduler snapshot must carry the large scales: np=1024 finishing
	// a benchtime run at all is the headline claim.
	findBench(t, sched, "BENCH_sched.json", "BenchmarkSweepNP256")
	findBench(t, sched, "BENCH_sched.json", "BenchmarkSweepNP1024")
	// Snapshots written by the extended script identify their machine
	// state; the older committed files predate the fields and may omit
	// them, so only the sched snapshot is held to it.
	if sched.GOMAXPROCS <= 0 || sched.CPUs <= 0 || sched.GitSHA == "" {
		t.Errorf("BENCH_sched.json lacks machine identification (gomaxprocs=%d cpus=%d git_sha=%q)",
			sched.GOMAXPROCS, sched.CPUs, sched.GitSHA)
	}
}
