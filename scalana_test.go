package scalana

import (
	"strings"
	"testing"

	"scalana/internal/detect"
	"scalana/internal/prof"
	"scalana/internal/psg"
)

// detectCfg is the detection setup used by the end-to-end tests: a higher
// sampling rate than the paper's 200 Hz keeps the short simulated runs
// statistically stable.
func sweepCfg() prof.Config {
	cfg := prof.DefaultConfig()
	cfg.SampleHz = 5000
	return cfg
}

func runCaseStudy(t *testing.T, app string, nps []int) *detect.Report {
	t.Helper()
	a := GetApp(app)
	if a == nil {
		t.Fatalf("app %q not registered", app)
	}
	runs, err := Sweep(a, nps, sweepCfg())
	if err != nil {
		t.Fatalf("sweep: %v", err)
	}
	rep, err := DetectScalingLoss(runs, detect.Config{})
	if err != nil {
		t.Fatalf("detect: %v", err)
	}
	return rep
}

func reportHasCause(rep *detect.Report, substr string) bool {
	for _, c := range rep.Causes {
		if strings.Contains(c.VertexKey, substr) {
			return true
		}
	}
	return false
}

func pathTouches(rep *detect.Report, substr string) bool {
	for _, p := range rep.Paths {
		for _, s := range p.Steps {
			if strings.Contains(s.VertexKey, substr) {
				return true
			}
		}
	}
	return false
}

// TestZeusMPRootCause reproduces the paper's §VI-D1 diagnosis: the dt
// Allreduce (nudt.F:361 analog) shows the scaling loss, and backtracking
// lands on the busy-rank bval3d loop as the root cause.
func TestZeusMPRootCause(t *testing.T) {
	rep := runCaseStudy(t, "zeusmp", []int{4, 8, 16, 32})

	if len(rep.NonScalable) == 0 {
		t.Fatal("no non-scalable vertices found")
	}
	if len(rep.Paths) == 0 {
		t.Fatal("no backtracking paths produced")
	}
	// The bval3d loop lives in the instance main/...@bval3d.
	if !pathTouches(rep, "@bval3d") {
		for _, p := range rep.Paths {
			t.Logf("path (cause=%v):", p.Cause)
			for _, s := range p.Steps {
				t.Logf("  %-8s rank=%-3d %s", s.Via, s.Rank, s.VertexKey)
			}
		}
		t.Fatal("no backtracking path reaches the bval3d loop")
	}
	if !reportHasCause(rep, "@bval3d") {
		for _, c := range rep.Causes {
			t.Logf("cause: %s score=%.4f share=%.4f imb=%.1f", c.VertexKey, c.Score, c.Share, c.Imbalance)
		}
		t.Fatal("bval3d loop not ranked as a root cause")
	}
}

// TestSSTRootCause reproduces §VI-D2: backtracking from the epoch-sync
// Allreduce/Waitall reaches the handleEvent loop.
func TestSSTRootCause(t *testing.T) {
	rep := runCaseStudy(t, "sst", []int{4, 8, 16, 32})
	if !pathTouches(rep, "@handleEvent") {
		for _, p := range rep.Paths {
			t.Logf("path:")
			for _, s := range p.Steps {
				t.Logf("  %-8s rank=%-3d %s", s.Via, s.Rank, s.VertexKey)
			}
		}
		t.Fatal("no backtracking path reaches the handleEvent loop")
	}
	if !reportHasCause(rep, "@handleEvent") {
		t.Fatal("handleEvent loop not ranked as a root cause")
	}
}

// TestNekboneRootCause reproduces §VI-D3: the comm_wait Waitall is the
// symptom; the dgemm loop on heterogeneous-memory cores is the cause.
func TestNekboneRootCause(t *testing.T) {
	rep := runCaseStudy(t, "nekbone", []int{4, 8, 16, 32})
	if !pathTouches(rep, "@dgemm") {
		for _, p := range rep.Paths {
			t.Logf("path:")
			for _, s := range p.Steps {
				t.Logf("  %-8s rank=%-3d %s", s.Via, s.Rank, s.VertexKey)
			}
		}
		t.Fatal("no backtracking path reaches the dgemm loop")
	}
	if !reportHasCause(rep, "@dgemm") {
		t.Fatal("dgemm loop not ranked as a root cause")
	}
}

// TestOptimizedVariantsFaster verifies the paper's fixes pay off in the
// simulation: each -opt variant outruns its original at the same scale.
func TestOptimizedVariantsFaster(t *testing.T) {
	for _, pair := range [][2]string{{"zeusmp", "zeusmp-opt"}, {"sst", "sst-opt"}, {"nekbone", "nekbone-opt"}} {
		orig, err := Run(RunConfig{App: GetApp(pair[0]), NP: 16})
		if err != nil {
			t.Fatalf("%s: %v", pair[0], err)
		}
		opt, err := Run(RunConfig{App: GetApp(pair[1]), NP: 16})
		if err != nil {
			t.Fatalf("%s: %v", pair[1], err)
		}
		if opt.Result.Elapsed >= orig.Result.Elapsed {
			t.Errorf("%s: optimized (%.4fs) not faster than original (%.4fs)",
				pair[0], opt.Result.Elapsed, orig.Result.Elapsed)
		} else {
			t.Logf("%s: %.4fs -> %.4fs (%.1f%% faster)", pair[0], orig.Result.Elapsed,
				opt.Result.Elapsed, 100*(orig.Result.Elapsed-opt.Result.Elapsed)/orig.Result.Elapsed)
		}
	}
}

// TestInjectedDelayFound reproduces the Fig. 2 motivating example: a delay
// injected on rank 4 of CG is located by abnormal-vertex detection plus
// backtracking.
func TestInjectedDelayFound(t *testing.T) {
	rep := runCaseStudy(t, "cg-delay", []int{8})
	found := false
	for _, ab := range rep.Abnormal {
		v := ab.Vertex
		if v.Kind == psg.KindComp {
			for _, r := range ab.OutlierRanks {
				if r == 4 {
					found = true
				}
			}
		}
	}
	if !found {
		for _, ab := range rep.Abnormal {
			t.Logf("abnormal: %s ratio=%.2f outliers=%v", ab.VertexKey, ab.Ratio, ab.OutlierRanks)
		}
		t.Fatal("injected delay on rank 4 not flagged as abnormal")
	}
}

// TestToolOverheadOrdering verifies the central overhead claim (paper
// Table I): tracing costs much more than sampling-based tools, and
// ScalAna's storage is far below both.
func TestToolOverheadOrdering(t *testing.T) {
	app := GetApp("cg")
	base, err := Run(RunConfig{App: app, NP: 16})
	if err != nil {
		t.Fatal(err)
	}
	scal, err := Run(RunConfig{App: app, NP: 16, Tool: ToolScalAna})
	if err != nil {
		t.Fatal(err)
	}
	trc, err := Run(RunConfig{App: app, NP: 16, Tool: ToolTracer})
	if err != nil {
		t.Fatal(err)
	}
	hpc, err := Run(RunConfig{App: app, NP: 16, Tool: ToolCallPath})
	if err != nil {
		t.Fatal(err)
	}
	ovh := func(o *RunOutput) float64 {
		return 100 * (o.Result.Elapsed - base.Result.Elapsed) / base.Result.Elapsed
	}
	t.Logf("overhead%%: scalana=%.2f hpctk=%.2f tracer=%.2f", ovh(scal), ovh(hpc), ovh(trc))
	t.Logf("storage: scalana=%d hpctk=%d tracer=%d", scal.StorageBytes(), hpc.StorageBytes(), trc.StorageBytes())
	if !(ovh(trc) > ovh(scal)) {
		t.Errorf("tracer overhead (%.2f%%) should exceed ScalAna (%.2f%%)", ovh(trc), ovh(scal))
	}
	if !(scal.StorageBytes() < hpc.StorageBytes() && hpc.StorageBytes() < trc.StorageBytes()) {
		t.Errorf("storage ordering violated: scalana=%d hpctk=%d tracer=%d",
			scal.StorageBytes(), hpc.StorageBytes(), trc.StorageBytes())
	}
}
