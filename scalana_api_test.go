package scalana

import (
	"strings"
	"testing"

	"scalana/internal/detect"
	"scalana/internal/psg"
)

func TestRunConfigValidation(t *testing.T) {
	if _, err := Run(RunConfig{}); err == nil {
		t.Error("nil app should error")
	}
	if _, err := Run(RunConfig{App: GetApp("zeusmp"), NP: 2}); err == nil {
		t.Error("np below MinNP should error")
	}
}

func TestGetAppAndNames(t *testing.T) {
	if GetApp("nope") != nil {
		t.Error("unknown app should be nil")
	}
	names := AppNames()
	if len(names) < 16 {
		t.Errorf("only %d apps registered", len(names))
	}
	if len(EvaluationNames()) != 11 {
		t.Errorf("evaluation names = %v", EvaluationNames())
	}
}

func TestToolString(t *testing.T) {
	for tool, want := range map[Tool]string{
		ToolNone:     "none",
		ToolScalAna:  "ScalAna",
		ToolTracer:   "Scalasca-like tracer",
		ToolCallPath: "HPCToolkit-like profiler",
		Tool(99):     "unknown",
	} {
		if tool.String() != want {
			t.Errorf("%d.String() = %q, want %q", tool, tool.String(), want)
		}
	}
}

func TestCompileOptionsRespected(t *testing.T) {
	app := GetApp("cg")
	_, contracted, err := CompileOptions(app, psg.Options{MaxLoopDepth: 10, Contract: true})
	if err != nil {
		t.Fatal(err)
	}
	_, full, err := CompileOptions(app, psg.Options{MaxLoopDepth: 10, Contract: false})
	if err != nil {
		t.Fatal(err)
	}
	if full.Stats.VerticesAfter <= contracted.Stats.VerticesAfter {
		t.Errorf("uncontracted %d <= contracted %d", full.Stats.VerticesAfter, contracted.Stats.VerticesAfter)
	}
}

func TestRunProducesToolOutputs(t *testing.T) {
	app := GetApp("cg")
	for _, tc := range []struct {
		tool Tool
		has  func(*RunOutput) bool
	}{
		{ToolNone, func(o *RunOutput) bool {
			return o.Profiles() == nil && o.Traces() == nil && o.CtxProfiles() == nil && o.StorageBytes() == 0
		}},
		{ToolScalAna, func(o *RunOutput) bool { return len(o.Profiles()) == 8 && o.PPG() != nil && o.StorageBytes() > 0 }},
		{ToolTracer, func(o *RunOutput) bool { return len(o.Traces()) == 8 && o.StorageBytes() > 0 }},
		{ToolCallPath, func(o *RunOutput) bool { return len(o.CtxProfiles()) == 8 && o.StorageBytes() > 0 }},
	} {
		out, err := Run(RunConfig{App: app, NP: 8, Tool: tc.tool})
		if err != nil {
			t.Fatalf("%v: %v", tc.tool, err)
		}
		if !tc.has(out) {
			t.Errorf("%v: outputs missing or unexpected: %+v", tc.tool, out)
		}
	}
}

func TestRunsAreReproducibleWithSeed(t *testing.T) {
	app := GetApp("mg")
	a, err := Run(RunConfig{App: app, NP: 8, Tool: ToolScalAna, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(RunConfig{App: app, NP: 8, Tool: ToolScalAna, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.Result.Elapsed != b.Result.Elapsed {
		t.Errorf("elapsed differs: %g vs %g", a.Result.Elapsed, b.Result.Elapsed)
	}
	if a.StorageBytes() != b.StorageBytes() {
		t.Errorf("storage differs: %d vs %d", a.StorageBytes(), b.StorageBytes())
	}
}

// TestSweepAndDetectSmoke covers the facade path end to end on a tiny app.
func TestSweepAndDetectSmoke(t *testing.T) {
	runs, err := Sweep(GetApp("is"), []int{4, 8}, sweepCfg())
	if err != nil {
		t.Fatal(err)
	}
	if len(runs) != 2 || runs[0].NP != 4 || runs[1].NP != 8 {
		t.Fatalf("runs = %+v", runs)
	}
	rep, err := DetectScalingLoss(runs, detect.Config{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.NP != 8 {
		t.Errorf("report NP = %d", rep.NP)
	}
}

// TestIndirectCallProfiledEndToEnd: an app using function pointers runs
// under the ScalAna profiler; the PSG is refined at run time and the
// callee's work is attributed to the materialized vertices.
func TestIndirectCallProfiledEndToEnd(t *testing.T) {
	app := &App{
		Name: "indirect-e2e", File: "ind.mp", MinNP: 1,
		Source: `
func lightKernel(w) {
	for (var i = 0; i < 2; i = i + 1) { compute(w / 2, w / 20, w / 40, 4096); }
}
func heavyKernel(w) {
	for (var i = 0; i < 8; i = i + 1) { compute(w, w / 10, w / 20, 65536); }
}
func main() {
	var k = &lightKernel;
	if (mpi_rank() % 2 == 1) {
		k = &heavyKernel;
	}
	k(1e7);
	mpi_barrier();
}`,
	}
	out, err := Run(RunConfig{App: app, NP: 4, Tool: ToolScalAna})
	if err != nil {
		t.Fatal(err)
	}
	// Both targets observed at run time.
	targets := map[string]bool{}
	for _, rp := range out.Profiles() {
		for _, rec := range rp.Indirect {
			targets[rec.Target] = true
		}
	}
	if !targets["lightKernel"] || !targets["heavyKernel"] {
		t.Errorf("indirect targets observed = %v", targets)
	}
	// The refined PSG contains vertices for both kernels, with samples on
	// the heavy one.
	heavyTime := 0.0
	keys := out.PPG().PSG.Keys()
	for _, vid := range out.PPG().PresentVIDs() {
		if strings.Contains(keys[vid], "@heavyKernel") {
			for _, tm := range out.PPG().TimeSeries(vid) {
				heavyTime += tm
			}
		}
	}
	if heavyTime <= 0 {
		t.Error("no time attributed to the runtime-materialized heavyKernel vertices")
	}
}
