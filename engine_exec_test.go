package scalana_test

import (
	"bytes"
	"sync"
	"testing"

	"scalana/internal/prof"

	scalana "scalana"
)

// TestEngineExecSelection hammers one Engine from concurrent goroutines
// that alternate between the bytecode VM and the tree-walking
// interpreter on the same app. Under -race this exercises the compile
// cache plus the graph's single-flight bytecode compilation
// (psg.Graph.CompileExec) when the first VM execution races other
// selections, and it asserts every goroutine — either engine — produces
// byte-identical encoded profiles.
func TestEngineExecSelection(t *testing.T) {
	app := scalana.GetApp("cg")
	cfg := prof.DefaultConfig()
	e := scalana.NewEngine()

	const workers = 8
	encodings := make([][]byte, workers)
	errs := make([]error, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			out, err := e.Run(scalana.RunConfig{
				App: app, NP: 16, ToolName: "scalana", Prof: cfg,
				Interp: w%2 == 1,
			})
			if err != nil {
				errs[w] = err
				return
			}
			ps := &prof.ProfileSet{App: app.Name, NP: 16, Elapsed: out.Result.Elapsed, Profiles: out.Profiles()}
			encodings[w], errs[w] = ps.Encode()
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			t.Fatalf("worker %d (interp=%v): %v", w, w%2 == 1, err)
		}
	}
	for w := 1; w < workers; w++ {
		if !bytes.Equal(encodings[0], encodings[w]) {
			t.Fatalf("worker %d (interp=%v) profiles diverge from worker 0 (interp=false)", w, w%2 == 1)
		}
	}
}
