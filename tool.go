package scalana

import (
	"fmt"
	"sort"
	"sync"

	"scalana/internal/minilang"
	"scalana/internal/mpisim"
	"scalana/internal/psg"
)

// MeasurementTool is one pluggable measurement backend. The paper's
// evaluation (§VI, Table II) is a comparison *between* such tools —
// graph-based profiling versus tracing versus call-path profiling — so
// the run API treats the tool as an open extension point: implementations
// register under a stable name with RegisterTool, and Run/RunCompiled
// dispatch purely through the registry. The bundled backends ("scalana",
// "tracer", "hpctk", and the comm-matrix collector) are ordinary
// registered implementations with no special-cased dispatch.
//
// Implementations must be deterministic: given equal (App, NP, Seed,
// tool config), every hook decision and every finalized result must be
// identical across runs and across host parallelism. Randomness must
// come from seeds derived from ToolContext, never from time or global
// state (see DESIGN.md §8 for the full contract).
type MeasurementTool interface {
	// Name is the registry key: short, lowercase, stable across releases
	// (it appears in CLI flags and reports).
	Name() string
	// Description is a one-line human-readable summary for tool listings.
	Description() string
	// NewRun prepares the collection state for one execution. It is
	// called once per run, before any rank starts, and must not mutate
	// the shared ToolContext.Graph.
	NewRun(tc ToolContext) (ToolRun, error)
}

// ToolContext carries the per-run inputs a MeasurementTool needs to set
// up collection.
type ToolContext struct {
	// Config is the full run configuration: App, NP, Seed, the typed
	// config sections of the bundled tools, and ToolOptions for
	// externally registered ones.
	Config RunConfig
	// Graph is the compiled PSG the run executes against. It is shared
	// and immutable during execution; tools may read it freely.
	Graph *psg.Graph
}

// ToolRun is one run's collection state. The lifecycle is fixed:
//
//  1. HooksForRank is called once per rank, sequentially in rank order,
//     during world construction (before any rank executes).
//  2. The simulation runs; hooks observe their own rank only.
//  3. FinalizeRank is called once per rank, concurrently across ranks,
//     after the run completes. It must touch rank-local state only.
//  4. Finish is called once, after every FinalizeRank returned, to
//     assemble the cross-rank payload stored in the Measurement.
type ToolRun interface {
	// HooksForRank returns the simulator hooks attached to one rank.
	HooksForRank(rank int) []mpisim.Hook
	// FinalizeRank extracts the rank's measurement data and returns its
	// storage size in bytes (the tool-comparison experiments sum these).
	FinalizeRank(rank int) (storageBytes int64)
	// Finish returns the tool-specific payload for Measurement.Data —
	// e.g. per-rank profiles plus an assembled Program Performance Graph.
	Finish() (data any, err error)
}

// IndirectObserver is optionally implemented by a ToolRun that wants
// runtime indirect-call resolutions (paper §III-B3). When implemented,
// the interpreter reports every resolved indirect call; rank is the
// resolving rank, and calls arrive concurrently across ranks (but in
// order within one rank).
type IndirectObserver interface {
	ObserveIndirect(rank int, inst *psg.Instance, site minilang.NodeID, target string)
}

var toolRegistry = struct {
	sync.RWMutex
	m map[string]MeasurementTool
}{m: map[string]MeasurementTool{}}

// RegisterTool makes a measurement tool selectable by name through
// RunConfig.ToolName. It panics if the tool is nil, its name is empty,
// or the name is already taken — duplicate registration is always a
// programming error (two packages claiming one name), never a runtime
// condition, mirroring database/sql.Register.
func RegisterTool(t MeasurementTool) {
	if t == nil {
		panic("scalana: RegisterTool: tool is nil")
	}
	name := t.Name()
	if name == "" {
		panic("scalana: RegisterTool: tool has an empty name")
	}
	toolRegistry.Lock()
	defer toolRegistry.Unlock()
	if _, dup := toolRegistry.m[name]; dup {
		panic(fmt.Sprintf("scalana: RegisterTool: tool %q already registered", name))
	}
	toolRegistry.m[name] = t
}

// LookupTool returns the tool registered under name.
func LookupTool(name string) (MeasurementTool, bool) {
	toolRegistry.RLock()
	defer toolRegistry.RUnlock()
	t, ok := toolRegistry.m[name]
	return t, ok
}

// Tools returns the registered tool names in sorted order.
func Tools() []string {
	toolRegistry.RLock()
	defer toolRegistry.RUnlock()
	names := make([]string, 0, len(toolRegistry.m))
	for name := range toolRegistry.m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}
