package scalana_test

import (
	"bytes"
	"reflect"
	"testing"

	"scalana/internal/commmatrix"
	"scalana/internal/detect"
	"scalana/internal/mpisim"
	"scalana/internal/prof"

	scalana "scalana"
)

// TestSchedulerOrderDeterminism proves the determinism contract of the
// cooperative scheduler: simulated output is a pure function of virtual
// clocks, never of the order ranks happen to run in. The test perturbs
// the one discretionary choice the scheduler makes — the rank-index
// tie-break between equal virtual clocks — by reversing it, reruns the
// whole pipeline, and demands byte-identical encoded profiles, rendered
// and JSON detect reports, and identical communication matrices.
func TestSchedulerOrderDeterminism(t *testing.T) {
	defer mpisim.SetReverseTieBreak(false)

	app := scalana.GetApp("zeusmp")
	nps := []int{8, 16}
	prog, graph, err := scalana.Compile(app)
	if err != nil {
		t.Fatal(err)
	}
	profCfg := prof.DefaultConfig()
	profCfg.SampleHz = 2000

	type pipelineOut struct {
		profiles [][]byte
		render   string
		json     []byte
		mat      *commmatrix.Matrix
	}
	runPipeline := func() pipelineOut {
		var out pipelineOut
		var runs []detect.ScaleRun
		for _, np := range nps {
			ro, err := scalana.RunCompiled(prog, graph, scalana.RunConfig{
				App: app, NP: np, ToolName: "scalana", Prof: profCfg, Seed: 11,
			})
			if err != nil {
				t.Fatalf("np=%d: %v", np, err)
			}
			ps := &prof.ProfileSet{App: app.Name, NP: np, Elapsed: ro.Result.Elapsed, Profiles: ro.Profiles()}
			enc, err := ps.Encode()
			if err != nil {
				t.Fatalf("np=%d: encode profiles: %v", np, err)
			}
			out.profiles = append(out.profiles, enc)
			runs = append(runs, detect.ScaleRun{NP: np, PPG: ro.PPG()})
		}
		dcfg := detect.DefaultConfig()
		dcfg.CommCauses = true
		rep, err := scalana.DetectScalingLoss(runs, dcfg)
		if err != nil {
			t.Fatal(err)
		}
		out.render = rep.Render(prog)
		if out.json, err = rep.EncodeJSON(); err != nil {
			t.Fatal(err)
		}
		ro, err := scalana.RunCompiled(prog, graph, scalana.RunConfig{
			App: app, NP: nps[0], ToolName: "commmatrix", Seed: 11,
		})
		if err != nil {
			t.Fatal(err)
		}
		out.mat = ro.Measurement.Data().(*commmatrix.Matrix)
		return out
	}

	mpisim.SetReverseTieBreak(false)
	forward := runPipeline()
	mpisim.SetReverseTieBreak(true)
	reversed := runPipeline()

	for i, np := range nps {
		if !bytes.Equal(forward.profiles[i], reversed.profiles[i]) {
			t.Errorf("np=%d: encoded profiles differ under reversed tie-break", np)
		}
	}
	if forward.render != reversed.render {
		t.Errorf("rendered detect reports differ under reversed tie-break:\n--- forward ---\n%s\n--- reversed ---\n%s",
			forward.render, reversed.render)
	}
	if !bytes.Equal(forward.json, reversed.json) {
		t.Errorf("detect report JSON differs under reversed tie-break")
	}
	if forward.mat.NP != reversed.mat.NP ||
		!reflect.DeepEqual(forward.mat.Bytes, reversed.mat.Bytes) ||
		!reflect.DeepEqual(forward.mat.Msgs, reversed.mat.Msgs) {
		t.Errorf("communication matrices differ under reversed tie-break")
	}
}
