// Synthetic ground-truth corpus walkthrough: generate seeded workloads
// with injected, labeled scaling defects, look inside one case, then
// score the full pipeline's root-cause localization against the labels.
//
//	go run ./examples/synth-corpus
//
// This is the repo's answer to "how do we know detection finds the
// *right* vertex?" — every generated program carries a GroundTruth
// record naming the culprit source span and PSG vertex keys, so
// accuracy is measurable instead of anecdotal.
package main

import (
	"fmt"
	"log"
	"strings"

	"scalana/internal/synth"
)

func main() {
	// Generate a small corpus. Everything derives from the seed: the same
	// seed reproduces the identical corpus byte-for-byte.
	corpus, err := synth.Generate(synth.GenConfig{Seed: 42, Cases: 10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("generated %d cases (seed %d) across archetypes %v\n\n",
		len(corpus.Cases), corpus.Seed, corpus.Archetypes)

	// Look inside one case: the generated MiniMP program with the injected
	// defect region, and the ground-truth label pointing at it.
	c := corpus.Cases[0]
	fmt.Printf("--- %s (%s template) ---\n", c.Name, c.Template)
	for i, line := range strings.Split(strings.TrimRight(c.Source, "\n"), "\n") {
		marker := "  "
		for _, gt := range c.Truth {
			if i+1 >= gt.LineStart && i+1 <= gt.LineEnd {
				marker = ">>"
			}
		}
		fmt.Printf("%s %3d  %s\n", marker, i+1, line)
	}
	for _, gt := range c.Truth {
		fmt.Printf("\nground truth: %s defect at lines %d-%d (%s), PSG vertices %v\n",
			gt.Kind, gt.LineStart, gt.LineEnd, gt.AffectedRanks, gt.VertexKeys)
	}

	// Sweep every case across job scales, run detection, and match the
	// ranked root causes against the labels.
	res, err := synth.Evaluate(corpus, synth.EvalConfig{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\n%s", res.Render())
}
