// Quickstart: the complete ScalAna pipeline on NPB-CG in ~30 lines.
//
//	go run ./examples/quickstart
//
// It compiles the program to a Program Structure Graph, profiles it at
// four job scales on the simulator, and prints the scaling-loss report.
package main

import (
	"fmt"
	"log"

	"scalana/internal/commmatrix"
	"scalana/internal/detect"
	"scalana/internal/prof"

	scalana "scalana"
)

func main() {
	app := scalana.GetApp("cg")

	// Step 1: static analysis — build the Program Structure Graph.
	prog, graph, err := scalana.Compile(app)
	if err != nil {
		log.Fatal(err)
	}
	st := graph.Stats
	fmt.Printf("PSG for %s: %d vertices -> %d after contraction (%d MPI, %d Loop)\n\n",
		app.Name, st.VerticesBefore, st.VerticesAfter, st.MPIs, st.Loops)

	// Step 2: profile across job scales (each run samples time + PMU
	// counters per vertex and records communication dependence).
	cfg := prof.DefaultConfig()
	cfg.SampleHz = 2000
	runs, err := scalana.Sweep(app, []int{4, 8, 16, 32}, cfg)
	if err != nil {
		log.Fatal(err)
	}

	// Step 3: detect problematic vertices and backtrack to root causes.
	report, err := scalana.DetectScalingLoss(runs, detect.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(report.Render(prog))

	// Bonus: any registered measurement tool attaches by name — here the
	// comm-matrix collector, which registers itself on import and which
	// the run API dispatches to without knowing it exists.
	out, err := scalana.Run(scalana.RunConfig{App: app, NP: 16, ToolName: "commmatrix"})
	if err != nil {
		log.Fatal(err)
	}
	m := out.Measurement.Data().(*commmatrix.Matrix)
	fmt.Printf("\np2p traffic at np=16: %.1f MB across %d rank pairs (tools: %v)\n",
		m.TotalBytes()/1e6, len(m.TopFlows(1<<30)), scalana.Tools())
}
