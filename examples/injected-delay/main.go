// Injected-delay demo: the paper's Fig. 2 motivating example.
//
//	go run ./examples/injected-delay
//
// NPB-CG runs with a delay injected on rank 4. The delay propagates to
// other ranks through the sendrecv chains of the conjugate-gradient
// butterfly; pure hot-spot profiling sees busy sendrecvs everywhere, while
// ScalAna's backtracking follows the waits across ranks to the injected
// computation.
package main

import (
	"fmt"
	"log"

	"scalana/internal/detect"
	"scalana/internal/prof"

	scalana "scalana"
)

func main() {
	app := scalana.GetApp("cg-delay")
	prog, _, err := scalana.Compile(app)
	if err != nil {
		log.Fatal(err)
	}

	cfg := prof.DefaultConfig()
	cfg.SampleHz = 5000
	runs, err := scalana.Sweep(app, []int{8}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := scalana.DetectScalingLoss(runs, detect.Config{})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("ScalAna report for NPB-CG with a delay injected on rank 4:")
	fmt.Println()
	fmt.Print(rep.Render(prog))

	fmt.Println()
	for _, ab := range rep.Abnormal {
		for _, r := range ab.OutlierRanks {
			if r == 4 {
				fmt.Printf("=> the injected delay on rank 4 was found: %s:%d\n",
					ab.Vertex.Pos.File, ab.Vertex.Pos.Line)
				return
			}
		}
	}
	fmt.Println("(delay not flagged — try a higher sampling rate)")
}
