// SST case study (paper §VI-D2).
//
//	go run ./examples/sst
//
// Diagnoses the O(n) pending-request scan in handleEvent behind SST's
// epoch-synchronization waits, shows the per-rank TOT_INS imbalance the
// PMU data exposes, and verifies the array -> map fix.
package main

import (
	"fmt"
	"log"
	"strings"

	"scalana/internal/detect"
	"scalana/internal/machine"
	"scalana/internal/prof"

	scalana "scalana"
)

func main() {
	app := scalana.GetApp("sst")
	prog, _, err := scalana.Compile(app)
	if err != nil {
		log.Fatal(err)
	}

	cfg := prof.DefaultConfig()
	cfg.SampleHz = 2000
	runs, err := scalana.Sweep(app, []int{4, 8, 16, 32}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := scalana.DetectScalingLoss(runs, detect.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Render(prog))

	// PMU evidence: TOT_INS in handleEvent per rank, before and after.
	fmt.Println("\nper-rank TOT_INS in handleEvent (np=32):")
	for _, name := range []string{"sst", "sst-opt"} {
		out, err := scalana.Run(scalana.RunConfig{
			App: scalana.GetApp(name), NP: 32, Tool: scalana.ToolScalAna, Prof: cfg})
		if err != nil {
			log.Fatal(err)
		}
		var lo, hi, sum float64
		keys := out.PPG().PSG.Keys()
		for _, vid := range out.PPG().PresentVIDs() {
			if !strings.Contains(keys[vid], "@handleEvent") {
				continue
			}
			for _, v := range out.PPG().PMUSeries(vid, machine.TotIns) {
				if lo == 0 || v < lo {
					lo = v
				}
				if v > hi {
					hi = v
				}
				sum += v
			}
		}
		fmt.Printf("  %-8s min=%.3g max=%.3g total=%.3g (max/min %.1fx)\n", name, lo, hi, sum, hi/lo)
	}
}
