// Nekbone case study (paper §VI-D3).
//
//	go run ./examples/nekbone
//
// Diagnoses the memory-bound dgemm loop running on cores with unequal
// memory speed: TOT_LST_INS is uniform across ranks while TOT_CYC is not,
// so the imbalance is architectural, not algorithmic. The fix (a blocked
// BLAS) removes the memory sensitivity.
package main

import (
	"fmt"
	"log"
	"strings"

	"scalana/internal/detect"
	"scalana/internal/fit"
	"scalana/internal/machine"
	"scalana/internal/prof"

	scalana "scalana"
)

func main() {
	app := scalana.GetApp("nekbone")
	prog, _, err := scalana.Compile(app)
	if err != nil {
		log.Fatal(err)
	}

	cfg := prof.DefaultConfig()
	cfg.SampleHz = 2000
	runs, err := scalana.Sweep(app, []int{4, 8, 16, 32}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := scalana.DetectScalingLoss(runs, detect.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Render(prog))

	fmt.Println("\nPMU evidence in dgemm (np=32):")
	dgemmStats := func(name string) (lst, cycCV float64) {
		out, err := scalana.Run(scalana.RunConfig{
			App: scalana.GetApp(name), NP: 32, Tool: scalana.ToolScalAna, Prof: cfg})
		if err != nil {
			log.Fatal(err)
		}
		lstSum := make([]float64, out.NP)
		cycSum := make([]float64, out.NP)
		keys := out.PPG().PSG.Keys()
		for _, vid := range out.PPG().PresentVIDs() {
			if !strings.Contains(keys[vid], "@dgemm") {
				continue
			}
			for i, v := range out.PPG().PMUSeries(vid, machine.TotLstIns) {
				lstSum[i] += v
			}
			for i, v := range out.PPG().PMUSeries(vid, machine.TotCyc) {
				cycSum[i] += v
			}
		}
		return fit.Mean(lstSum), fit.Stddev(cycSum) / fit.Mean(cycSum)
	}
	origLst, origCV := dgemmStats("nekbone")
	optLst, optCV := dgemmStats("nekbone-opt")
	fmt.Printf("  original:  TOT_LST_INS mean %.3g, TOT_CYC coefficient of variation %.1f%%\n", origLst, 100*origCV)
	fmt.Printf("  optimized: TOT_LST_INS mean %.3g (%.1f%% fewer), TOT_CYC CV %.1f%%\n",
		optLst, 100*(1-optLst/origLst), 100*optCV)
}
