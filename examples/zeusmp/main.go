// Zeus-MP case study (paper §VI-D1).
//
//	go run ./examples/zeusmp
//
// Diagnoses the busy-rank bval3d boundary loop behind the dt-Allreduce
// scaling loss, then verifies the paper's fix (MPI+OpenMP bval3d, tiled
// hsmoc) by comparing the original and optimized ports.
package main

import (
	"fmt"
	"log"

	"scalana/internal/detect"
	"scalana/internal/prof"

	scalana "scalana"
)

func main() {
	app := scalana.GetApp("zeusmp")
	prog, _, err := scalana.Compile(app)
	if err != nil {
		log.Fatal(err)
	}

	cfg := prof.DefaultConfig()
	cfg.SampleHz = 2000
	runs, err := scalana.Sweep(app, []int{8, 16, 32, 64}, cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := scalana.DetectScalingLoss(runs, detect.Config{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Print(rep.Render(prog))

	// Verify the fix at np=64.
	orig, err := scalana.Run(scalana.RunConfig{App: app, NP: 64})
	if err != nil {
		log.Fatal(err)
	}
	opt, err := scalana.Run(scalana.RunConfig{App: scalana.GetApp("zeusmp-opt"), NP: 64})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\napplying the paper's fixes (OpenMP bval3d + tiled hsmoc) at np=64:\n")
	fmt.Printf("  original:  %.4fs\n  optimized: %.4fs (%.1f%% faster)\n",
		orig.Result.Elapsed, opt.Result.Elapsed,
		100*(orig.Result.Elapsed-opt.Result.Elapsed)/orig.Result.Elapsed)
}
