// Package scalana is a Go reproduction of ScalAna (Jin et al., SC 2020):
// automated scaling-loss detection for message-passing programs with graph
// analysis at profiling-level overhead.
//
// The pipeline mirrors the paper's four user steps (§V):
//
//	prog, graph, _ := scalana.Compile(app)            // scalana-static
//	out, _ := scalana.Run(scalana.RunConfig{...})     // scalana-prof
//	runs, _ := scalana.Sweep(app, []int{4,...,128})   // one run per scale
//	report, _ := scalana.DetectScalingLoss(runs, cfg) // scalana-detect
//
// Compile builds the Program Structure Graph from MiniMP source with
// intra-/inter-procedural analysis and contraction. Run executes the
// program on the deterministic MPI simulator with the selected measurement
// tool attached (the ScalAna profiler, or the tracing/profiling baselines
// used for comparison). DetectScalingLoss assembles Program Performance
// Graphs, finds non-scalable and abnormal vertices, and runs backtracking
// root-cause detection.
package scalana

import (
	"fmt"
	"io"

	"scalana/internal/apps"
	"scalana/internal/detect"
	"scalana/internal/hpctk"
	"scalana/internal/interp"
	"scalana/internal/minilang"
	"scalana/internal/mpisim"
	"scalana/internal/par"
	"scalana/internal/ppg"
	"scalana/internal/prof"
	"scalana/internal/psg"
	"scalana/internal/trace"
	"scalana/internal/vm"
)

// Tool is legacy sugar for selecting a bundled measurement tool. The run
// API dispatches on registered tool names (RunConfig.ToolName,
// RegisterTool); the enum constants below resolve to those names via
// ToolName, so existing call sites keep working unchanged.
type Tool int

// Available tools.
const (
	// ToolNone runs the application bare (the overhead baseline).
	ToolNone Tool = iota
	// ToolScalAna attaches the graph-based profiler (paper's tool).
	ToolScalAna
	// ToolTracer attaches the Scalasca-like full tracer.
	ToolTracer
	// ToolCallPath attaches the HPCToolkit-like call-path profiler.
	ToolCallPath
)

func (t Tool) String() string {
	switch t {
	case ToolNone:
		return "none"
	case ToolScalAna:
		return "ScalAna"
	case ToolTracer:
		return "Scalasca-like tracer"
	case ToolCallPath:
		return "HPCToolkit-like profiler"
	}
	return "unknown"
}

// ToolName resolves the enum value to the registered tool name it is
// sugar for ("" for ToolNone and for values outside the enum).
func (t Tool) ToolName() string {
	switch t {
	case ToolScalAna:
		return "scalana"
	case ToolTracer:
		return "tracer"
	case ToolCallPath:
		return "hpctk"
	}
	return ""
}

// App re-exports the workload type.
type App = apps.App

// GetApp looks up a registered workload (NPB kernels, zeusmp, sst,
// nekbone, and their -opt variants).
func GetApp(name string) *App { return apps.Get(name) }

// AppNames lists all registered workloads.
func AppNames() []string { return apps.Names() }

// EvaluationNames lists the programs of the paper's evaluation in Table II
// order: the NPB suite plus SST, Nekbone, and Zeus-MP.
func EvaluationNames() []string { return apps.EvaluationNames() }

// Compile parses the app and builds its contracted PSG (the
// scalana-static step).
func Compile(app *App) (*minilang.Program, *psg.Graph, error) {
	return CompileOptions(app, psg.DefaultOptions())
}

// CompileOptions is Compile with explicit PSG options.
func CompileOptions(app *App, opts psg.Options) (*minilang.Program, *psg.Graph, error) {
	prog, err := app.Parse()
	if err != nil {
		return nil, nil, fmt.Errorf("scalana: parse %s: %w", app.Name, err)
	}
	graph, err := psg.Build(prog, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("scalana: build PSG for %s: %w", app.Name, err)
	}
	return prog, graph, nil
}

// RunConfig configures one profiled execution.
type RunConfig struct {
	App *App
	NP  int
	// ToolName selects a registered measurement tool by name (see
	// RegisterTool / Tools). Empty means no tool unless the legacy Tool
	// enum below selects one.
	ToolName string
	// Tool is the legacy enum selector, kept as sugar: it resolves to a
	// registered name via Tool.ToolName. ToolName wins when both are set.
	Tool Tool
	// Prof configures the ScalAna profiler (zero value = paper defaults).
	Prof prof.Config
	// Trace configures the tracer baseline (zero value = defaults).
	Trace trace.Config
	// CallPath configures the call-path profiler baseline.
	CallPath hpctk.Config
	// ToolOptions carries configuration for externally registered tools;
	// their NewRun type-asserts it (nil = tool defaults).
	ToolOptions any
	// Seed makes runs reproducible; runs with equal seeds are identical.
	Seed int64
	// Stdout receives application print() output (nil discards).
	Stdout io.Writer
	// PSGOptions overrides contraction settings (zero value = defaults).
	PSGOptions psg.Options
	// Interp executes on the tree-walking interpreter instead of the
	// bytecode VM. The two are behaviorally identical (the differential
	// harness in internal/vm/difftest holds them to byte-identical
	// reports); the interpreter survives as the oracle and escape hatch.
	Interp bool
}

// resolveTool maps the config's tool selection to a registered name:
// ToolName wins, otherwise the legacy enum resolves through
// Tool.ToolName. Empty means a bare run.
func (cfg RunConfig) resolveTool() (string, error) {
	if cfg.ToolName != "" {
		return cfg.ToolName, nil
	}
	if cfg.Tool == ToolNone {
		return "", nil
	}
	name := cfg.Tool.ToolName()
	if name == "" {
		return "", fmt.Errorf("scalana: Tool(%d) is not a known tool enum value", int(cfg.Tool))
	}
	return name, nil
}

// RunOutput is the result of one execution.
type RunOutput struct {
	App *App
	NP  int
	// Tool is the resolved registered tool name ("" for a bare run).
	Tool   string
	Result mpisim.RunResult
	Graph  *psg.Graph
	// Measurement is the attached tool's collected result (nil for bare
	// runs). The typed accessors below forward to it, so pre-registry
	// callers migrate by adding parentheses.
	Measurement *Measurement
}

// Profiles returns the per-rank ScalAna profiles ("scalana" tool runs
// only). Compatibility accessor for Measurement.Profiles.
func (o *RunOutput) Profiles() []*prof.RankProfile { return o.Measurement.Profiles() }

// Traces returns the per-rank traces ("tracer" tool runs only).
// Compatibility accessor for Measurement.Traces.
func (o *RunOutput) Traces() []*trace.RankTrace { return o.Measurement.Traces() }

// CtxProfiles returns the per-rank call-path profiles ("hpctk" tool runs
// only). Compatibility accessor for Measurement.CtxProfiles.
func (o *RunOutput) CtxProfiles() []*hpctk.RankProfile { return o.Measurement.CtxProfiles() }

// PPG returns the assembled Program Performance Graph ("scalana" tool
// runs only). Compatibility accessor for Measurement.PPG.
func (o *RunOutput) PPG() *ppg.Graph { return o.Measurement.PPG() }

// StorageBytes is the tool's total measurement data size (0 for bare
// runs). Compatibility accessor for Measurement.StorageBytes.
func (o *RunOutput) StorageBytes() int64 { return o.Measurement.StorageBytes() }

// validateRunConfig checks the parts of a RunConfig that both Run and
// RunCompiled depend on.
func validateRunConfig(cfg RunConfig) error {
	if cfg.App == nil {
		return fmt.Errorf("scalana: RunConfig.App is nil")
	}
	if cfg.NP < cfg.App.MinNP {
		return fmt.Errorf("scalana: %s requires at least %d ranks, got %d", cfg.App.Name, cfg.App.MinNP, cfg.NP)
	}
	return nil
}

// Run executes the app at one scale with the configured tool. It is the
// compile phase (CompileOptions) followed by the execute phase
// (RunCompiled); multi-run workloads should compile once — through an
// Engine, whose cache keys on (app, PSG options) — and call RunCompiled
// per execution.
func Run(cfg RunConfig) (*RunOutput, error) {
	if err := validateRunConfig(cfg); err != nil {
		return nil, err
	}
	prog, graph, err := CompileOptions(cfg.App, cfg.PSGOptions.Normalize())
	if err != nil {
		return nil, err
	}
	return RunCompiled(prog, graph, cfg)
}

// RunCompiled is the execute phase of Run: it runs an already-compiled
// program on the simulator with the configured tool attached. The graph
// may be shared between concurrent RunCompiled calls: a compiled graph
// is immutable during execution — every indirect-call target a program
// can produce is pre-materialized at compile time (psg.Build), so runs
// only read it, and sharing one graph across a sweep changes neither
// profiles nor detection output.
//
// The tool is resolved through the registry (RegisterTool); RunCompiled
// itself knows nothing about individual tools — it drives the generic
// ToolRun lifecycle (HooksForRank before execution, concurrent
// FinalizeRank after, one Finish at the end).
func RunCompiled(prog *minilang.Program, graph *psg.Graph, cfg RunConfig) (*RunOutput, error) {
	if err := validateRunConfig(cfg); err != nil {
		return nil, err
	}
	if prog == nil || graph == nil {
		return nil, fmt.Errorf("scalana: RunCompiled needs a compiled program and graph")
	}
	name, err := cfg.resolveTool()
	if err != nil {
		return nil, err
	}

	out := &RunOutput{App: cfg.App, NP: cfg.NP, Tool: name, Graph: graph}
	wcfg := mpisim.Config{NP: cfg.NP, Seed: cfg.Seed}
	if cfg.App.CoreConfig != nil {
		wcfg.Core = cfg.App.CoreConfig(cfg.NP)
	}

	var trun ToolRun
	if name != "" {
		tool, ok := LookupTool(name)
		if !ok {
			return nil, fmt.Errorf("scalana: no measurement tool registered as %q (registered: %v)", name, Tools())
		}
		trun, err = tool.NewRun(ToolContext{Config: cfg, Graph: graph})
		if err != nil {
			return nil, fmt.Errorf("scalana: set up tool %s: %w", name, err)
		}
		if trun == nil {
			return nil, fmt.Errorf("scalana: tool %s returned no run", name)
		}
		wcfg.HookFactory = trun.HooksForRank
	}

	var observe interp.IndirectObserver
	if obs, ok := trun.(IndirectObserver); ok {
		observe = obs.ObserveIndirect
	}
	body, err := executionBody(prog, graph, cfg, observe)
	if err != nil {
		return nil, err
	}

	world := mpisim.NewWorld(wcfg)
	res, err := world.Run(body)
	if err != nil {
		return nil, fmt.Errorf("scalana: run %s np=%d: %w", cfg.App.Name, cfg.NP, err)
	}
	out.Result = res

	if trun == nil {
		return out, nil
	}
	// Per-rank finalization (profile extraction and storage sizing) is
	// independent across ranks; fan it out and reduce the byte counts in
	// rank order so the sum is reproducible.
	storage := make([]int64, cfg.NP)
	par.ForEach(cfg.NP, 0, func(r int) {
		storage[r] = trun.FinalizeRank(r)
	})
	data, err := trun.Finish()
	if err != nil {
		return nil, fmt.Errorf("scalana: finalize %s: %w", name, err)
	}
	m := &Measurement{tool: name, data: data}
	for _, s := range storage {
		m.storage += s
	}
	out.Measurement = m
	return out, nil
}

// executionBody selects the execution path for one run: the bytecode VM
// by default, the tree-walking interpreter when cfg.Interp is set. The
// VM's compiled program is cached on the graph (psg.Graph.CompileExec),
// so the sweep-wide sharing the Engine arranges for graphs extends to
// bytecode: compile once, execute at every scale.
func executionBody(prog *minilang.Program, graph *psg.Graph, cfg RunConfig, observe interp.IndirectObserver) (func(*mpisim.Proc), error) {
	if cfg.Interp {
		runner := interp.NewRunner(prog, graph)
		runner.Stdout = cfg.Stdout
		runner.OnIndirect = observe
		return runner.Execute, nil
	}
	cached, err := graph.CompileExec(func() (any, error) {
		return vm.Compile(prog, graph)
	})
	if err != nil {
		return nil, fmt.Errorf("scalana: compile bytecode for %s: %w", cfg.App.Name, err)
	}
	runner := vm.NewRunner(cached.(*vm.Program))
	runner.Stdout = cfg.Stdout
	runner.OnIndirect = observe
	return runner.Execute, nil
}

// Sweep profiles the app with ScalAna at each scale in nps and returns the
// per-scale runs ready for DetectScalingLoss. profCfg zero value uses
// paper defaults. The app is compiled once for the whole sweep and the
// scales execute on a CPU-bounded worker pool; use SweepWithConfig (or
// an Engine) to control parallelism, seeding, and PSG options.
func Sweep(app *App, nps []int, profCfg prof.Config) ([]detect.ScaleRun, error) {
	return SweepWithConfig(app, nps, SweepConfig{Prof: profCfg})
}

// SweepWithConfig is Sweep with explicit sweep configuration. Each call
// uses a fresh Engine; reuse one Engine directly to share its compile
// cache across sweeps.
func SweepWithConfig(app *App, nps []int, cfg SweepConfig) ([]detect.ScaleRun, error) {
	return NewEngine().Sweep(app, nps, cfg)
}

// DetectScalingLoss runs problematic-vertex detection and backtracking
// root-cause analysis over profiled runs at multiple scales.
func DetectScalingLoss(runs []detect.ScaleRun, cfg detect.Config) (*detect.Report, error) {
	if cfg == (detect.Config{}) {
		cfg = detect.DefaultConfig()
	}
	return detect.Detect(runs, cfg)
}
