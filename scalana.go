// Package scalana is a Go reproduction of ScalAna (Jin et al., SC 2020):
// automated scaling-loss detection for message-passing programs with graph
// analysis at profiling-level overhead.
//
// The pipeline mirrors the paper's four user steps (§V):
//
//	prog, graph, _ := scalana.Compile(app)            // scalana-static
//	out, _ := scalana.Run(scalana.RunConfig{...})     // scalana-prof
//	runs, _ := scalana.Sweep(app, []int{4,...,128})   // one run per scale
//	report, _ := scalana.DetectScalingLoss(runs, cfg) // scalana-detect
//
// Compile builds the Program Structure Graph from MiniMP source with
// intra-/inter-procedural analysis and contraction. Run executes the
// program on the deterministic MPI simulator with the selected measurement
// tool attached (the ScalAna profiler, or the tracing/profiling baselines
// used for comparison). DetectScalingLoss assembles Program Performance
// Graphs, finds non-scalable and abnormal vertices, and runs backtracking
// root-cause detection.
package scalana

import (
	"fmt"
	"io"

	"scalana/internal/apps"
	"scalana/internal/detect"
	"scalana/internal/hpctk"
	"scalana/internal/interp"
	"scalana/internal/minilang"
	"scalana/internal/mpisim"
	"scalana/internal/par"
	"scalana/internal/ppg"
	"scalana/internal/prof"
	"scalana/internal/psg"
	"scalana/internal/trace"
)

// Tool selects the measurement tool attached to a run.
type Tool int

// Available tools.
const (
	// ToolNone runs the application bare (the overhead baseline).
	ToolNone Tool = iota
	// ToolScalAna attaches the graph-based profiler (paper's tool).
	ToolScalAna
	// ToolTracer attaches the Scalasca-like full tracer.
	ToolTracer
	// ToolCallPath attaches the HPCToolkit-like call-path profiler.
	ToolCallPath
)

func (t Tool) String() string {
	switch t {
	case ToolNone:
		return "none"
	case ToolScalAna:
		return "ScalAna"
	case ToolTracer:
		return "Scalasca-like tracer"
	case ToolCallPath:
		return "HPCToolkit-like profiler"
	}
	return "unknown"
}

// App re-exports the workload type.
type App = apps.App

// GetApp looks up a registered workload (NPB kernels, zeusmp, sst,
// nekbone, and their -opt variants).
func GetApp(name string) *App { return apps.Get(name) }

// AppNames lists all registered workloads.
func AppNames() []string { return apps.Names() }

// EvaluationNames lists the programs of the paper's evaluation in Table II
// order: the NPB suite plus SST, Nekbone, and Zeus-MP.
func EvaluationNames() []string { return apps.EvaluationNames() }

// Compile parses the app and builds its contracted PSG (the
// scalana-static step).
func Compile(app *App) (*minilang.Program, *psg.Graph, error) {
	return CompileOptions(app, psg.DefaultOptions())
}

// CompileOptions is Compile with explicit PSG options.
func CompileOptions(app *App, opts psg.Options) (*minilang.Program, *psg.Graph, error) {
	prog, err := app.Parse()
	if err != nil {
		return nil, nil, fmt.Errorf("scalana: parse %s: %w", app.Name, err)
	}
	graph, err := psg.Build(prog, opts)
	if err != nil {
		return nil, nil, fmt.Errorf("scalana: build PSG for %s: %w", app.Name, err)
	}
	return prog, graph, nil
}

// RunConfig configures one profiled execution.
type RunConfig struct {
	App  *App
	NP   int
	Tool Tool
	// Prof configures the ScalAna profiler (zero value = paper defaults).
	Prof prof.Config
	// Trace configures the tracer baseline (zero value = defaults).
	Trace trace.Config
	// CallPath configures the call-path profiler baseline.
	CallPath hpctk.Config
	// Seed makes runs reproducible; runs with equal seeds are identical.
	Seed int64
	// Stdout receives application print() output (nil discards).
	Stdout io.Writer
	// PSGOptions overrides contraction settings (zero value = defaults).
	PSGOptions psg.Options
}

// RunOutput is the result of one execution.
type RunOutput struct {
	App    *App
	NP     int
	Tool   Tool
	Result mpisim.RunResult
	Graph  *psg.Graph
	// Profiles holds per-rank ScalAna profiles (ToolScalAna only).
	Profiles []*prof.RankProfile
	// Traces holds per-rank traces (ToolTracer only).
	Traces []*trace.RankTrace
	// CtxProfiles holds per-rank call-path profiles (ToolCallPath only).
	CtxProfiles []*hpctk.RankProfile
	// PPG is the assembled Program Performance Graph (ToolScalAna only).
	PPG *ppg.Graph
	// StorageBytes is the tool's total measurement data size.
	StorageBytes int64
}

// validateRunConfig checks the parts of a RunConfig that both Run and
// RunCompiled depend on.
func validateRunConfig(cfg RunConfig) error {
	if cfg.App == nil {
		return fmt.Errorf("scalana: RunConfig.App is nil")
	}
	if cfg.NP < cfg.App.MinNP {
		return fmt.Errorf("scalana: %s requires at least %d ranks, got %d", cfg.App.Name, cfg.App.MinNP, cfg.NP)
	}
	return nil
}

// resolvePSGOptions applies the default PSG options when the RunConfig
// left them zero.
func resolvePSGOptions(opts psg.Options) psg.Options {
	if opts.MaxLoopDepth == 0 && !opts.Contract {
		return psg.DefaultOptions()
	}
	return opts
}

// Run executes the app at one scale with the configured tool. It is the
// compile phase (CompileOptions) followed by the execute phase
// (RunCompiled); multi-run workloads should compile once — through an
// Engine, whose cache keys on (app, PSG options) — and call RunCompiled
// per execution.
func Run(cfg RunConfig) (*RunOutput, error) {
	if err := validateRunConfig(cfg); err != nil {
		return nil, err
	}
	prog, graph, err := CompileOptions(cfg.App, resolvePSGOptions(cfg.PSGOptions))
	if err != nil {
		return nil, err
	}
	return RunCompiled(prog, graph, cfg)
}

// RunCompiled is the execute phase of Run: it runs an already-compiled
// program on the simulator with the configured tool attached. The graph
// may be shared between concurrent RunCompiled calls: a compiled graph
// is immutable during execution — every indirect-call target a program
// can produce is pre-materialized at compile time (psg.Build), so runs
// only read it, and sharing one graph across a sweep changes neither
// profiles nor detection output.
func RunCompiled(prog *minilang.Program, graph *psg.Graph, cfg RunConfig) (*RunOutput, error) {
	if err := validateRunConfig(cfg); err != nil {
		return nil, err
	}
	if prog == nil || graph == nil {
		return nil, fmt.Errorf("scalana: RunCompiled needs a compiled program and graph")
	}

	out := &RunOutput{App: cfg.App, NP: cfg.NP, Tool: cfg.Tool, Graph: graph}
	var profilers []*prof.Profiler
	var tracers []*trace.Tracer
	var ctxProfs []*hpctk.Profiler

	wcfg := mpisim.Config{NP: cfg.NP, Seed: cfg.Seed}
	if cfg.App.CoreConfig != nil {
		wcfg.Core = cfg.App.CoreConfig(cfg.NP)
	}
	switch cfg.Tool {
	case ToolScalAna:
		pc := cfg.Prof
		if pc.SampleHz == 0 {
			pc = prof.DefaultConfig()
			pc.Seed = cfg.Seed
		}
		profilers = make([]*prof.Profiler, cfg.NP)
		wcfg.HookFactory = func(rank int) []mpisim.Hook {
			pr := prof.New(pc, graph, rank, cfg.NP)
			profilers[rank] = pr
			return []mpisim.Hook{pr}
		}
	case ToolTracer:
		tc := cfg.Trace
		if tc.EventCost == 0 {
			tc = trace.DefaultConfig()
		}
		tracers = make([]*trace.Tracer, cfg.NP)
		wcfg.HookFactory = func(rank int) []mpisim.Hook {
			tr := trace.New(tc, rank)
			tracers[rank] = tr
			return []mpisim.Hook{tr}
		}
	case ToolCallPath:
		hc := cfg.CallPath
		if hc.SampleHz == 0 {
			hc = hpctk.DefaultConfig()
		}
		ctxProfs = make([]*hpctk.Profiler, cfg.NP)
		wcfg.HookFactory = func(rank int) []mpisim.Hook {
			pr := hpctk.New(hc, rank)
			ctxProfs[rank] = pr
			return []mpisim.Hook{pr}
		}
	}

	runner := interp.NewRunner(prog, graph)
	runner.Stdout = cfg.Stdout
	if cfg.Tool == ToolScalAna {
		runner.OnIndirect = func(rank int, inst *psg.Instance, site minilang.NodeID, target string) {
			profilers[rank].ObserveIndirect(rank, inst, site, target)
		}
	}

	world := mpisim.NewWorld(wcfg)
	res, err := world.Run(runner.Execute)
	if err != nil {
		return nil, fmt.Errorf("scalana: run %s np=%d: %w", cfg.App.Name, cfg.NP, err)
	}
	out.Result = res

	// Per-rank finalization (profile extraction and storage sizing) is
	// independent across ranks; fan it out and reduce the byte counts in
	// rank order so the sum is reproducible.
	storage := make([]int64, cfg.NP)
	switch cfg.Tool {
	case ToolScalAna:
		out.Profiles = make([]*prof.RankProfile, cfg.NP)
		par.ForEach(cfg.NP, 0, func(r int) {
			out.Profiles[r] = profilers[r].Profile()
			storage[r] = out.Profiles[r].StorageBytes()
		})
		pg, err := ppg.Build(graph, out.Profiles)
		if err != nil {
			return nil, fmt.Errorf("scalana: assemble PPG: %w", err)
		}
		out.PPG = pg
	case ToolTracer:
		out.Traces = make([]*trace.RankTrace, cfg.NP)
		par.ForEach(cfg.NP, 0, func(r int) {
			out.Traces[r] = tracers[r].Trace()
			storage[r] = out.Traces[r].StorageBytes()
		})
	case ToolCallPath:
		out.CtxProfiles = make([]*hpctk.RankProfile, cfg.NP)
		par.ForEach(cfg.NP, 0, func(r int) {
			out.CtxProfiles[r] = ctxProfs[r].Profile()
			storage[r] = out.CtxProfiles[r].StorageBytes()
		})
	}
	for _, s := range storage {
		out.StorageBytes += s
	}
	return out, nil
}

// Sweep profiles the app with ScalAna at each scale in nps and returns the
// per-scale runs ready for DetectScalingLoss. profCfg zero value uses
// paper defaults. The app is compiled once for the whole sweep and the
// scales execute on a CPU-bounded worker pool; use SweepWithConfig (or
// an Engine) to control parallelism, seeding, and PSG options.
func Sweep(app *App, nps []int, profCfg prof.Config) ([]detect.ScaleRun, error) {
	return SweepWithConfig(app, nps, SweepConfig{Prof: profCfg})
}

// SweepWithConfig is Sweep with explicit sweep configuration. Each call
// uses a fresh Engine; reuse one Engine directly to share its compile
// cache across sweeps.
func SweepWithConfig(app *App, nps []int, cfg SweepConfig) ([]detect.ScaleRun, error) {
	return NewEngine().Sweep(app, nps, cfg)
}

// DetectScalingLoss runs problematic-vertex detection and backtracking
// root-cause analysis over profiled runs at multiple scales.
func DetectScalingLoss(runs []detect.ScaleRun, cfg detect.Config) (*detect.Report, error) {
	if cfg == (detect.Config{}) {
		cfg = detect.DefaultConfig()
	}
	return detect.Detect(runs, cfg)
}
